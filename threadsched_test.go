package threadsched_test

import (
	"testing"

	"threadsched"
)

// TestQuickstart is the README example: threaded dot products over real
// Go slices with real address hints.
func TestQuickstart(t *testing.T) {
	const n = 32
	at := make([]float64, n*n) // Aᵀ, row i of A stored contiguously
	b := make([]float64, n*n)  // B, column j stored contiguously
	c := make([]float64, n*n)
	for i := range at {
		at[i] = float64(i % 7)
		b[i] = float64(i % 5)
	}

	s := threadsched.New(threadsched.Config{CacheSize: 1 << 16})
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.Fork(func(i, j int) {
				var sum float64
				for k := 0; k < n; k++ {
					sum += at[i*n+k] * b[j*n+k]
				}
				c[i*n+j] = sum
			}, i, j, threadsched.Hint(&at[i*n]), threadsched.Hint(&b[j*n]), 0)
		}
	}
	s.Run(false)

	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for k := 0; k < n; k++ {
				want += at[i*n+k] * b[j*n+k]
			}
			if c[i*n+j] != want {
				t.Fatalf("c[%d,%d] = %v, want %v", i, j, c[i*n+j], want)
			}
		}
	}
	st := s.Stats()
	if st.TotalRun != n*n {
		t.Fatalf("ran %d threads, want %d", st.TotalRun, n*n)
	}
}

func TestHintIsStableAndDistinct(t *testing.T) {
	xs := make([]int, 10)
	h0 := threadsched.Hint(&xs[0])
	h5 := threadsched.Hint(&xs[5])
	if h0 == 0 {
		t.Fatal("nil-looking hint")
	}
	if h5 != h0+5*8 {
		t.Fatalf("hints not layout-preserving: %d vs %d", h0, h5)
	}
	if threadsched.Hint(&xs[0]) != h0 {
		t.Fatal("hint not stable")
	}
}

func TestNewForCache(t *testing.T) {
	s := threadsched.NewForCache(1 << 20)
	if s.CacheSize() != 1<<20 {
		t.Fatalf("CacheSize = %d", s.CacheSize())
	}
	if s.BlockSize() != threadsched.DefaultBlockSize(1<<20, threadsched.MaxHints) {
		t.Fatalf("BlockSize = %d", s.BlockSize())
	}
}

func TestTourConstantsExported(t *testing.T) {
	names := map[threadsched.TourOrder]string{
		threadsched.TourAllocation: "allocation",
		threadsched.TourMorton:     "morton",
		threadsched.TourHilbert:    "hilbert",
	}
	for tour, want := range names {
		if tour.String() != want {
			t.Errorf("tour %d = %q, want %q", tour, tour.String(), want)
		}
	}
}
