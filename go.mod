module threadsched

go 1.22
