// Command tracesimd is the simulation daemon: a long-running HTTP
// service that multiplexes simulation and experiment jobs from many
// tenants onto one shared scheduler/simulator pool (internal/server).
//
//	tracesimd -addr :8080 -size quick -workers 4 -journal /var/lib/tracesimd
//
// Submit jobs with POST /v1/jobs (see internal/server.Request for the
// JSON shape), poll GET /v1/jobs/{id} or block on /v1/jobs/{id}/wait,
// scrape GET /metrics, probe GET /healthz (liveness) and /readyz
// (readiness). SIGINT/SIGTERM triggers a graceful drain: admission
// stops (503), queued and running jobs finish (bounded by
// -drain-timeout, after which they are cancelled), then the HTTP
// listener shuts down.
//
// With -journal set, every job state transition is appended to a
// crash-safe write-ahead log and replayed on the next boot: terminal
// jobs stay answerable across restarts (even kill -9), jobs that were
// in flight come back as failed(interrupted) — or requeued with
// -requeue-interrupted — and idempotency-keyed resubmits dedupe onto
// the surviving jobs. The listener comes up before replay, answering
// /healthz live and /readyz 503 until recovery completes.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"threadsched/internal/fault"
	"threadsched/internal/harness"
	"threadsched/internal/obs"
	"threadsched/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		size        = flag.String("size", "quick", "base geometry: quick or scaled")
		workers     = flag.Int("workers", 0, "simulation pool size (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 256, "admitted-job queue depth")
		rate        = flag.Float64("rate", 0, "per-tenant admission rate, jobs/s (0 = unlimited)")
		burst       = flag.Int("burst", 64, "per-tenant token-bucket burst")
		deadline    = flag.Duration("deadline", time.Minute, "default per-job deadline")
		maxDeadline = flag.Duration("max-deadline", 5*time.Minute, "per-job deadline cap")
		tracks      = flag.Int("tracks", 8, "obs metric tracks")
		drainBudget = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget before cancel-all")
		faultSeed   = flag.Uint64("fault-seed", 0, "served-job fault injection seed")
		faultProb   = flag.Float64("fault-prob", 0, "served-job panic probability (0 = injection off)")

		journalDir    = flag.String("journal", "", "job journal directory (empty = in-memory only, state lost on restart)")
		fsyncPolicy   = flag.String("fsync", "interval", "journal fsync policy: always, interval, or none")
		fsyncInterval = flag.Duration("fsync-interval", 100*time.Millisecond, "journal flush period under -fsync interval")
		compactEvery  = flag.Int("journal-compact", 4096, "journal records between snapshot compactions")
		requeue       = flag.Bool("requeue-interrupted", false, "requeue jobs that were in flight at crash time instead of failing them as interrupted")
	)
	flag.Parse()

	var base harness.Config
	switch *size {
	case "quick":
		base = harness.Quick()
	case "scaled":
		base = harness.Scaled()
	default:
		log.Fatalf("tracesimd: unknown -size %q (want quick or scaled)", *size)
	}
	var inj *fault.Injector
	if *faultProb > 0 {
		inj = fault.New(fault.Config{
			Seed: *faultSeed,
			Prob: map[fault.Site]float64{fault.ServedJob: *faultProb},
		})
		log.Printf("tracesimd: served-job fault injection on (p=%g, seed=%d)", *faultProb, *faultSeed)
	}

	srv := server.New(server.Config{
		Workers:              *workers,
		QueueDepth:           *queue,
		TenantRate:           *rate,
		TenantBurst:          *burst,
		DefaultDeadline:      *deadline,
		MaxDeadline:          *maxDeadline,
		Harness:              base,
		Obs:                  obs.New(*tracks),
		Inject:               inj,
		JournalDir:           *journalDir,
		JournalFsync:         *fsyncPolicy,
		JournalFsyncInterval: *fsyncInterval,
		JournalCompactEvery:  *compactEvery,
		RequeueInterrupted:   *requeue,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Recover in the background so the listener comes up first: during
	// replay the daemon answers /healthz (live) and 503s /readyz and the
	// job routes, which is exactly what a restart orchestrator wants.
	go func() {
		start := time.Now()
		if err := srv.Recover(); err != nil {
			// An unopenable journal is a deployment error; serving without
			// the promised durability would be worse than not serving.
			log.Fatalf("tracesimd: journal recovery: %v", err)
		}
		if *journalDir != "" {
			log.Printf("tracesimd: journal recovery complete in %v (dir %s, fsync %s)",
				time.Since(start).Round(time.Millisecond), *journalDir, *fsyncPolicy)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("tracesimd: signal received, draining (budget %v)", *drainBudget)
		dctx, cancel := context.WithTimeout(context.Background(), *drainBudget)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			log.Printf("tracesimd: drain: %v", err)
		} else {
			log.Printf("tracesimd: drain complete")
		}
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = httpSrv.Shutdown(sctx)
	}()

	log.Printf("tracesimd: serving %s geometry on %s", *size, *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("tracesimd: %v", err)
	}
}
