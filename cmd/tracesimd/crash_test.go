// The crash-smoke chaos gate: boot a real tracesimd process with a
// journal, drive a batch through it, kill -9 mid-batch, smear a torn
// half-record onto the journal tail (the write that was in flight when
// the power died), restart, and audit the recovery promise:
//
//   - every job ID accepted before the crash still resolves — terminal
//     jobs with their original results, in-flight jobs as
//     failed(interrupted);
//   - idempotent resubmits dedupe onto the surviving jobs (no job runs
//     twice);
//   - the torn final record is tolerated and counted, not fatal.
//
// The child daemon is this test binary re-exec'd (TestMain dispatches
// to main() under TRACESIMD_CRASH_CHILD=1), so `go test -race` crash-
// tests the same code the production binary runs, race detector and
// all. Gated behind CRASH_SMOKE=1 because it boots real processes and
// real disks: `make crash-smoke` (part of `make check`) sets it.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestMain(m *testing.M) {
	if os.Getenv("TRACESIMD_CRASH_CHILD") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

type smokeStatus struct {
	ID      string          `json:"id"`
	State   string          `json:"state"`
	Error   string          `json:"error"`
	Deduped bool            `json:"deduped"`
	Result  json.RawMessage `json:"result"`
}

func TestCrashSmoke(t *testing.T) {
	if os.Getenv("CRASH_SMOKE") == "" {
		t.Skip("set CRASH_SMOKE=1 (make crash-smoke) to run the kill -9 gate")
	}
	dir := t.TempDir()
	addr := freeAddr(t)
	base := "http://" + addr

	// Phase 1: boot, run a batch to completion, then get a second batch
	// in flight and kill -9 under it.
	child := startDaemon(t, addr, dir)
	waitReady(t, base)

	results := map[string]smokeStatus{} // ID -> pre-crash terminal status
	keyOf := map[string]string{}        // ID -> idempotency key
	var ids []string
	for i := 0; i < 12; i++ {
		st := smokeSubmit(t, base, fmt.Sprintf(
			`{"kind":"matmul","variant":"threaded","matmul_n":64,"tenant":"smoke","idempotency_key":"fast-%d"}`, i))
		ids = append(ids, st.ID)
		keyOf[st.ID] = fmt.Sprintf("fast-%d", i)
	}
	for _, id := range ids {
		st := smokeWait(t, base, id)
		if st.State != "done" {
			t.Fatalf("pre-crash job %s: state %s error %q", id, st.State, st.Error)
		}
		results[id] = st
	}
	// Slow enough that kill -9 lands while they are queued or running.
	var inflight []string
	for i := 0; i < 6; i++ {
		st := smokeSubmit(t, base, fmt.Sprintf(
			`{"kind":"matmul","variant":"threaded","matmul_n":512,"tenant":"smoke","idempotency_key":"slow-%d"}`, i))
		ids = append(ids, st.ID)
		inflight = append(inflight, st.ID)
		keyOf[st.ID] = fmt.Sprintf("slow-%d", i)
	}

	if err := child.Process.Kill(); err != nil { // SIGKILL: no drain, no goodbye
		t.Fatalf("kill -9: %v", err)
	}
	_ = child.Wait()

	// Phase 2: smear a torn half-record onto the journal tail — the
	// frame whose write the kill interrupted. Valid uvarint length (64),
	// then far fewer than 64 payload bytes.
	wal := filepath.Join(dir, "wal.j")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("journal missing after crash: %v", err)
	}
	if _, err := f.Write([]byte{0x40, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Phase 3: restart over the same journal and audit.
	child2 := startDaemon(t, addr, dir)
	defer func() {
		_ = child2.Process.Signal(os.Interrupt)
		_ = child2.Wait()
	}()
	waitReady(t, base)

	resolved := 0
	for _, id := range ids {
		st := smokeGet(t, base, id)
		switch {
		case st == nil:
			t.Errorf("pre-crash job %s does not resolve after restart", id)
			continue
		case st.State == "done":
			if pre, ok := results[id]; ok && !bytes.Equal(pre.Result, st.Result) {
				t.Errorf("job %s result drifted across crash:\n before %s\n after  %s", id, pre.Result, st.Result)
			}
		case st.State == "failed" && strings.HasPrefix(st.Error, "interrupted"):
			// In flight at crash time: resolved, honestly.
		default:
			t.Errorf("job %s after restart: state %s error %q", id, st.State, st.Error)
			continue
		}
		resolved++
	}
	if resolved != len(ids) {
		t.Fatalf("%d/%d pre-crash job IDs resolve after restart", resolved, len(ids))
	}

	// No job runs twice: a client retrying through the crash dedupes
	// onto the job the first accept promised.
	for _, id := range ids {
		st := smokeSubmit(t, base, fmt.Sprintf(
			`{"kind":"matmul","variant":"threaded","tenant":"smoke","idempotency_key":"%s"}`, keyOf[id]))
		if !st.Deduped || st.ID != id {
			t.Errorf("resubmit of %s: deduped=%v id=%s (job would run twice)", keyOf[id], st.Deduped, st.ID)
		}
	}

	// The torn final record was tolerated and counted.
	counters := smokeCounters(t, base)
	if counters["server.journal.torn_tail"] < 1 {
		t.Errorf("server.journal.torn_tail = %d, want >= 1", counters["server.journal.torn_tail"])
	}
	if counters["server.journal.replayed"] == 0 {
		t.Errorf("server.journal.replayed = 0 after a populated restart")
	}
	if counters["server.journal.requeued"] != 0 {
		t.Errorf("server.journal.requeued = %d without -requeue-interrupted", counters["server.journal.requeued"])
	}
}

func startDaemon(t *testing.T, addr, dir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0],
		"-addr", addr, "-journal", dir, "-fsync", "always",
		"-size", "quick", "-workers", "2", "-drain-timeout", "5s")
	cmd.Env = append(os.Environ(), "TRACESIMD_CRASH_CHILD=1")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	return cmd
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("daemon not ready within 30s")
}

func smokeSubmit(t *testing.T, base, body string) smokeStatus {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var st smokeStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("submit decode: %v", err)
	}
	return st
}

func smokeWait(t *testing.T, base, id string) smokeStatus {
	t.Helper()
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id + "/wait?timeout_ms=60000")
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		var st smokeStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("wait %s decode: %v", id, err)
		}
		switch st.State {
		case "done", "failed", "cancelled":
			return st
		}
	}
}

// smokeGet returns nil when the ID does not resolve (404 or transport
// failure) — the failure the crash gate exists to catch.
func smokeGet(t *testing.T, base, id string) *smokeStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var st smokeStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil
	}
	return &st
}

func smokeCounters(t *testing.T, base string) map[string]uint64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Total uint64 `json:"total"`
		} `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	out := make(map[string]uint64, len(snap.Counters))
	for _, c := range snap.Counters {
		out[c.Name] = c.Total
	}
	return out
}
