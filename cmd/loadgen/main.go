// Command loadgen drives a running tracesimd daemon with concurrent
// job submissions and reports the latency distribution, so the serving
// stack's admission control and backpressure can be measured rather
// than guessed at:
//
//	tracesimd -addr :8080 &
//	loadgen -addr http://127.0.0.1:8080 -jobs 1000 -concurrency 64
//
// Each worker loops: submit one job, block on /wait until it goes
// terminal, record the submit-to-terminal latency. 429 responses are
// counted and retried after the server's Retry-After hint — they are
// backpressure working, not errors. The run fails (exit 1) if fewer
// than -min-completions jobs finish in state "done".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

type counters struct {
	done, failed, cancelled, rejected, errors atomic.Uint64
}

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "daemon base URL")
		jobs        = flag.Int("jobs", 1000, "total jobs to complete or reject")
		concurrency = flag.Int("concurrency", 64, "concurrent submitters")
		kind        = flag.String("kind", "matmul", "job kind")
		variant     = flag.String("variant", "threaded", "job variant")
		size        = flag.String("size", "", "job size override (quick/scaled)")
		tenants     = flag.Int("tenants", 4, "distinct tenant names to submit under")
		waitMS      = flag.Int("wait-ms", 60000, "per-job wait timeout")
		minDone     = flag.Int("min-completions", 0, "fail unless at least this many jobs complete")
	)
	flag.Parse()

	body := map[string]any{"kind": *kind, "variant": *variant}
	if *size != "" {
		body["size"] = *size
	}

	var (
		next atomic.Int64
		cnt  counters
		mu   sync.Mutex
		lats []time.Duration
	)
	client := &http.Client{Timeout: time.Duration(*waitMS+10000) * time.Millisecond}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > int64(*jobs) {
					return
				}
				b := make(map[string]any, len(body)+1)
				for k, v := range body {
					b[k] = v
				}
				b["tenant"] = fmt.Sprintf("t%d", int(n)%*tenants)
				if d, ok := runOne(client, *addr, b, *waitMS, &cnt); ok {
					mu.Lock()
					lats = append(lats, d)
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	done := cnt.done.Load()
	fmt.Printf("loadgen: %d jobs in %v (%.1f jobs/s)\n", *jobs, wall.Round(time.Millisecond), float64(*jobs)/wall.Seconds())
	fmt.Printf("  done %d  failed %d  cancelled %d  rejected-429 %d (retried)  errors %d\n",
		done, cnt.failed.Load(), cnt.cancelled.Load(), cnt.rejected.Load(), cnt.errors.Load())
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
		fmt.Printf("  submit-to-done latency: p50 %v  p90 %v  p99 %v  max %v\n",
			pct(0.50).Round(time.Millisecond), pct(0.90).Round(time.Millisecond),
			pct(0.99).Round(time.Millisecond), lats[len(lats)-1].Round(time.Millisecond))
	}
	if int(done) < *minDone {
		log.Fatalf("loadgen: only %d completions, need %d", done, *minDone)
	}
}

// runOne submits one job (retrying through 429 backpressure) and waits
// for it to go terminal, returning its submit-to-terminal latency.
func runOne(client *http.Client, addr string, body map[string]any, waitMS int, cnt *counters) (time.Duration, bool) {
	raw, _ := json.Marshal(body)
	start := time.Now()
	var st status
	for {
		resp, err := client.Post(addr+"/v1/jobs", "application/json", strings.NewReader(string(raw)))
		if err != nil {
			cnt.errors.Add(1)
			return 0, false
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			cnt.rejected.Add(1)
			time.Sleep(retryAfter(resp))
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			log.Printf("loadgen: submit: %d %s", resp.StatusCode, strings.TrimSpace(string(b)))
			cnt.errors.Add(1)
			return 0, false
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			cnt.errors.Add(1)
			return 0, false
		}
		break
	}
	for {
		resp, err := client.Get(addr + "/v1/jobs/" + st.ID + "/wait?timeout_ms=" + strconv.Itoa(waitMS))
		if err != nil {
			cnt.errors.Add(1)
			return 0, false
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			cnt.errors.Add(1)
			return 0, false
		}
		switch st.State {
		case "done":
			cnt.done.Add(1)
			return time.Since(start), true
		case "failed":
			cnt.failed.Add(1)
			log.Printf("loadgen: job %s failed: %s", st.ID, st.Error)
			return 0, false
		case "cancelled":
			cnt.cancelled.Add(1)
			return 0, false
		}
		// still queued/running past the wait timeout: keep waiting
	}
}

func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 500 * time.Millisecond
}
