// Command loadgen drives a running tracesimd daemon with concurrent
// job submissions and reports the latency distribution, so the serving
// stack's admission control and backpressure can be measured rather
// than guessed at:
//
//	tracesimd -addr :8080 &
//	loadgen -addr http://127.0.0.1:8080 -jobs 1000 -concurrency 64
//
// Each worker loops: submit one job, block on /wait until it goes
// terminal, record the submit-to-terminal latency. 429/503 responses
// are counted and retried with capped jittered exponential backoff
// (the server's Retry-After hint is a floor) — they are backpressure
// working, not errors. Transient transport errors (connection refused
// or reset, EOF: the daemon crashing or restarting under us) are
// retried the same way, up to -retries times. With -idempotency set,
// every job carries a deterministic idempotency key, so a retry that
// crosses a daemon crash dedupes onto the surviving job instead of
// running twice. -ids-file records every accepted job ID, one per
// line, for post-restart audits (the crash-smoke gate's evidence).
// The run fails (exit 1) if fewer than -min-completions jobs finish
// in state "done".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type status struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Error   string `json:"error"`
	Deduped bool   `json:"deduped"`
}

type counters struct {
	done, failed, cancelled, rejected, retried, deduped, errors atomic.Uint64
}

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "daemon base URL")
		jobs        = flag.Int("jobs", 1000, "total jobs to complete or reject")
		concurrency = flag.Int("concurrency", 64, "concurrent submitters")
		kind        = flag.String("kind", "matmul", "job kind")
		variant     = flag.String("variant", "threaded", "job variant")
		size        = flag.String("size", "", "job size override (quick/scaled)")
		tenants     = flag.Int("tenants", 4, "distinct tenant names to submit under")
		waitMS      = flag.Int("wait-ms", 60000, "per-job wait timeout")
		minDone     = flag.Int("min-completions", 0, "fail unless at least this many jobs complete")
		retries     = flag.Int("retries", 8, "max transient transport-error retries per request")
		idemPrefix  = flag.String("idempotency", "", "idempotency key prefix: job n submits key <prefix>-<n>, so crash-retries dedupe (empty = no keys)")
		idsFile     = flag.String("ids-file", "", "append every accepted job ID to this file, one per line")
		seed        = flag.Int64("seed", 0, "backoff jitter seed (0 = time-based)")
	)
	flag.Parse()

	body := map[string]any{"kind": *kind, "variant": *variant}
	if *size != "" {
		body["size"] = *size
	}

	var recordID func(string)
	if *idsFile != "" {
		f, err := os.OpenFile(*idsFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("loadgen: ids-file: %v", err)
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		var fmu sync.Mutex
		recordID = func(id string) {
			fmu.Lock()
			fmt.Fprintln(bw, id)
			bw.Flush() // the audit file must survive our own death too
			fmu.Unlock()
		}
	}

	baseSeed := *seed
	if baseSeed == 0 {
		baseSeed = time.Now().UnixNano()
	}

	var (
		next atomic.Int64
		cnt  counters
		mu   sync.Mutex
		lats []time.Duration
	)
	client := &http.Client{Timeout: time.Duration(*waitMS+10000) * time.Millisecond}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(baseSeed + int64(w)))
			for {
				n := next.Add(1)
				if n > int64(*jobs) {
					return
				}
				b := make(map[string]any, len(body)+2)
				for k, v := range body {
					b[k] = v
				}
				b["tenant"] = fmt.Sprintf("t%d", int(n)%*tenants)
				if *idemPrefix != "" {
					b["idempotency_key"] = fmt.Sprintf("%s-%d", *idemPrefix, n)
				}
				if d, ok := runOne(client, *addr, b, *waitMS, &cnt, rng, recordID, *retries); ok {
					mu.Lock()
					lats = append(lats, d)
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	done := cnt.done.Load()
	fmt.Printf("loadgen: %d jobs in %v (%.1f jobs/s)\n", *jobs, wall.Round(time.Millisecond), float64(*jobs)/wall.Seconds())
	fmt.Printf("  done %d  failed %d  cancelled %d  rejected-429/503 %d (retried)  transport-retries %d  deduped %d  errors %d\n",
		done, cnt.failed.Load(), cnt.cancelled.Load(), cnt.rejected.Load(),
		cnt.retried.Load(), cnt.deduped.Load(), cnt.errors.Load())
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
		fmt.Printf("  submit-to-done latency: p50 %v  p90 %v  p99 %v  max %v\n",
			pct(0.50).Round(time.Millisecond), pct(0.90).Round(time.Millisecond),
			pct(0.99).Round(time.Millisecond), lats[len(lats)-1].Round(time.Millisecond))
	}
	if int(done) < *minDone {
		log.Fatalf("loadgen: only %d completions, need %d", done, *minDone)
	}
}

// runOne submits one job (retrying through 429/503 backpressure and,
// up to maxRetries times, through transient transport errors) and
// waits for it to go terminal, returning its submit-to-terminal
// latency. recordID, when non-nil, is called with every accepted or
// deduped job ID before the wait begins.
func runOne(client *http.Client, addr string, body map[string]any, waitMS int, cnt *counters, rng *rand.Rand, recordID func(string), maxRetries int) (time.Duration, bool) {
	raw, _ := json.Marshal(body)
	start := time.Now()
	var st status
	transport := 0
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(addr+"/v1/jobs", "application/json", strings.NewReader(string(raw)))
		if err != nil {
			if isTransient(err) && transport < maxRetries {
				transport++
				cnt.retried.Add(1)
				time.Sleep(backoff(attempt, 0, rng))
				continue
			}
			cnt.errors.Add(1)
			return 0, false
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			cnt.rejected.Add(1)
			time.Sleep(backoff(attempt, retryAfter(resp), rng))
			continue
		}
		// 200 = deduped onto an existing job via idempotency key.
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			log.Printf("loadgen: submit: %d %s", resp.StatusCode, strings.TrimSpace(string(b)))
			cnt.errors.Add(1)
			return 0, false
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			if isTransient(err) && transport < maxRetries {
				transport++
				cnt.retried.Add(1)
				time.Sleep(backoff(attempt, 0, rng))
				continue
			}
			cnt.errors.Add(1)
			return 0, false
		}
		if st.Deduped {
			cnt.deduped.Add(1)
		}
		break
	}
	if recordID != nil {
		recordID(st.ID)
	}
	transport = 0
	for attempt := 0; ; attempt++ {
		resp, err := client.Get(addr + "/v1/jobs/" + st.ID + "/wait?timeout_ms=" + strconv.Itoa(waitMS))
		if err != nil {
			if isTransient(err) && transport < maxRetries {
				transport++
				cnt.retried.Add(1)
				time.Sleep(backoff(attempt, 0, rng))
				continue
			}
			cnt.errors.Add(1)
			return 0, false
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Recovering after a restart: the job routes come back once
			// replay finishes.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			cnt.retried.Add(1)
			time.Sleep(backoff(attempt, retryAfter(resp), rng))
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			if isTransient(err) && transport < maxRetries {
				transport++
				cnt.retried.Add(1)
				time.Sleep(backoff(attempt, 0, rng))
				continue
			}
			cnt.errors.Add(1)
			return 0, false
		}
		switch st.State {
		case "done":
			cnt.done.Add(1)
			return time.Since(start), true
		case "failed":
			cnt.failed.Add(1)
			log.Printf("loadgen: job %s failed: %s", st.ID, st.Error)
			return 0, false
		case "cancelled":
			cnt.cancelled.Add(1)
			return 0, false
		}
		// still queued/running past the wait timeout: keep waiting
	}
}

func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 500 * time.Millisecond
}
