package main

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"syscall"
	"time"
)

// Retry backoff bounds: exponential from base, capped so a long outage
// polls every few seconds instead of growing unboundedly quiet.
const (
	backoffBase = 100 * time.Millisecond
	backoffCap  = 5 * time.Second
)

// backoff returns the sleep before retry number attempt (0-based):
// full-jitter capped exponential — uniform over (0, min(cap,
// base·2^attempt)] — with the server's Retry-After hint, when present,
// as a floor. Jitter decorrelates the retry herd after a restart;
// the floor keeps us honest about explicit backpressure.
func backoff(attempt int, floor time.Duration, rng *rand.Rand) time.Duration {
	ceil := backoffBase << uint(attempt)
	if ceil > backoffCap || ceil <= 0 { // <= 0: shift overflowed
		ceil = backoffCap
	}
	d := time.Duration(rng.Int63n(int64(ceil))) + 1
	if d < floor {
		d = floor
	}
	return d
}

// isTransient reports whether a transport error is worth retrying: the
// connection died or never opened (daemon crashed or is restarting),
// as opposed to a malformed request or a local bug. HTTP-level
// rejections never reach here — they arrive as status codes.
func isTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
