package main

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func TestBackoffCappedAndJittered(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 64; attempt++ {
		ceil := backoffBase << uint(attempt)
		if ceil > backoffCap || ceil <= 0 {
			ceil = backoffCap
		}
		for i := 0; i < 100; i++ {
			d := backoff(attempt, 0, rng)
			if d <= 0 || d > ceil {
				t.Fatalf("attempt %d: backoff %v outside (0, %v]", attempt, d, ceil)
			}
		}
	}
	// Distinct draws at the same attempt: it actually jitters.
	seen := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		seen[backoff(3, 0, rng)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("backoff(3) returned a constant across 32 draws")
	}
}

func TestBackoffHonorsRetryAfterFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		if d := backoff(0, 2*time.Second, rng); d < 2*time.Second {
			t.Fatalf("backoff below Retry-After floor: %v", d)
		}
	}
	// A floor above the cap wins: the server's hint is authoritative.
	if d := backoff(0, 10*time.Second, rng); d != 10*time.Second {
		t.Fatalf("floor above cap: got %v, want 10s", d)
	}
}

func TestIsTransient(t *testing.T) {
	transient := []error{
		io.EOF,
		io.ErrUnexpectedEOF,
		syscall.ECONNREFUSED,
		syscall.ECONNRESET,
		syscall.EPIPE,
		fmt.Errorf("wrapped: %w", syscall.ECONNREFUSED),
		&net.OpError{Op: "dial", Err: syscall.ECONNREFUSED},
	}
	for _, err := range transient {
		if !isTransient(err) {
			t.Errorf("isTransient(%v) = false, want true", err)
		}
	}
	permanent := []error{
		nil,
		errors.New("no such host"),
		syscall.EINVAL,
	}
	for _, err := range permanent {
		if isTransient(err) {
			t.Errorf("isTransient(%v) = true, want false", err)
		}
	}
}

// TestRunOneRetriesThroughRefused points runOne at a dead port until a
// real server appears there, proving transient transport errors are
// retried rather than counted as failures.
func TestRunOneRetriesThroughRefused(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // now refusing connections

	var submits atomic.Int64
	start := make(chan struct{})
	go func() {
		time.Sleep(300 * time.Millisecond)
		mux := http.NewServeMux()
		mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
			submits.Add(1)
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, `{"id":"j1","state":"queued"}`)
		})
		mux.HandleFunc("GET /v1/jobs/j1/wait", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `{"id":"j1","state":"done"}`)
		})
		srv := httptest.NewUnstartedServer(mux)
		l2, err := net.Listen("tcp", addr)
		if err != nil {
			close(start)
			return
		}
		srv.Listener = l2
		srv.Start()
		close(start)
	}()

	var cnt counters
	rng := rand.New(rand.NewSource(3))
	client := &http.Client{Timeout: 5 * time.Second}
	_, ok := runOne(client, "http://"+addr, map[string]any{"kind": "matmul"}, 1000, &cnt, rng, nil, 20)
	<-start
	if !ok {
		t.Fatalf("runOne failed despite server coming up (errors=%d)", cnt.errors.Load())
	}
	if cnt.done.Load() != 1 {
		t.Fatalf("done = %d, want 1", cnt.done.Load())
	}
	if cnt.retried.Load() == 0 {
		t.Fatalf("no transport retries counted while port was refusing")
	}
}
