package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"threadsched/internal/cache"
	"threadsched/internal/machine"
	"threadsched/internal/trace"
)

func TestParseCache(t *testing.T) {
	c, err := parseCache("2097152,128,4", "L2", true)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size != 2<<20 || c.LineSize != 128 || c.Assoc != 4 || !c.Classify || c.Name != "L2" {
		t.Fatalf("parsed %+v", c)
	}
}

func TestParseCacheErrors(t *testing.T) {
	for _, spec := range []string{"", "1,2", "a,b,c", "1024,32,1,9", "1000,32,1"} {
		if _, err := parseCache(spec, "L1", false); err == nil {
			t.Errorf("parseCache(%q) succeeded, want error", spec)
		}
	}
}

func TestParseCacheWhitespace(t *testing.T) {
	c, err := parseCache(" 1024 , 32 , 2 ", "L1D", false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size != 1024 || c.Assoc != 2 {
		t.Fatalf("parsed %+v", c)
	}
}

// Batch and serial replays of one trace must render byte-identical
// reports, and multi-file runs label each report.
func TestReplayBatchSerialIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(f)
	rng := uint64(7)
	for i := 0; i < 20000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		k := trace.Kind(rng >> 62 % 3)
		w.Record(trace.Ref{Kind: k, Addr: (rng >> 20) % (1 << 22), Size: 8})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m := machine.R8000().Scaled(64)
	setup := func() (*simSetup, error) {
		return &simSetup{h: cache.MustNewHierarchy(m.Caches, nil), cfg: m.Caches}, nil
	}
	var serial, batch, sharded bytes.Buffer
	if err := replay(context.Background(), &serial, path, false, false, 1, 1, 0, setup, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := replay(context.Background(), &batch, path, false, true, 1, 1, 0, setup, nil, 0); err != nil {
		t.Fatal(err)
	}
	if serial.String() != batch.String() {
		t.Errorf("batch replay diverges from serial:\nserial:\n%s\nbatch:\n%s", serial.String(), batch.String())
	}
	if err := replay(context.Background(), &sharded, path, false, true, 4, 1, 0, setup, nil, 0); err != nil {
		t.Fatal(err)
	}
	if serial.String() != sharded.String() {
		t.Errorf("sharded replay diverges from serial:\nserial:\n%s\nsharded:\n%s", serial.String(), sharded.String())
	}
	var labeled bytes.Buffer
	if err := replay(context.Background(), &labeled, path, true, true, 0, 1, 0, setup, nil, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(labeled.String(), "== "+path+" ==\n") {
		t.Errorf("multi-file replay not labeled:\n%s", labeled.String())
	}

	// Address-sliced simulation renders a report byte-identical to the
	// serial replay on the same (declassified) configuration.
	dcfg := m.Caches
	dcfg.L2.Classify = false
	dsetup := func() (*simSetup, error) {
		return &simSetup{h: cache.MustNewHierarchy(dcfg, nil), cfg: dcfg}, nil
	}
	var dserial, sliced bytes.Buffer
	if err := replay(context.Background(), &dserial, path, false, true, 1, 1, 0, dsetup, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := replay(context.Background(), &sliced, path, false, true, 2, 2, 0, dsetup, nil, 0); err != nil {
		t.Fatal(err)
	}
	if dserial.String() != sliced.String() {
		t.Errorf("sliced replay diverges from serial:\nserial:\n%s\nsliced:\n%s", dserial.String(), sliced.String())
	}
}

func TestReport(t *testing.T) {
	m := machine.R8000().Scaled(64)
	h := cache.MustNewHierarchy(m.Caches, nil)
	h.Record(trace.Ref{Kind: trace.IFetch, Addr: 0, Size: 4})
	h.Record(trace.Ref{Kind: trace.Load, Addr: 0x1000, Size: 8})
	h.Record(trace.Ref{Kind: trace.Store, Addr: 0x2000, Size: 8})
	var buf bytes.Buffer
	report(&buf, h, m.Caches, nil)
	out := buf.String()
	for _, want := range []string{
		"total 3 (ifetch 1, load 1, store 1)",
		"L1I", "L1D", "L2",
		"classification: compulsory 3, capacity 0, conflict 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
