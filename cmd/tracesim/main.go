// Command tracesim is a standalone trace-driven cache simulator in the
// mould of the modified DineroIII the paper used: it replays a binary
// address trace (the internal/trace format) through a two-level cache
// hierarchy and reports hit/miss counts with compulsory/capacity/conflict
// classification of the second-level misses in a single pass.
//
// Usage:
//
//	tracesim [-machine r8000|r10000] [-scale N] [-tlb entries]
//	         [-l1i size,line,assoc] [-l1d size,line,assoc] [-l2 size,line,assoc]
//	         [-pagesize N -placement identity|sequential|random|coloring]
//	         trace-file (or - for stdin)
//
// Generate traces with the trace package's Writer, e.g. from an
// instrumented workload (see examples/tracegen in the package docs).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"threadsched/internal/cache"
	"threadsched/internal/machine"
	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

func main() {
	machName := flag.String("machine", "r8000", "base machine model: r8000 or r10000")
	scale := flag.Uint64("scale", 1, "cache scale divisor (power of two)")
	l1i := flag.String("l1i", "", "override L1I as size,line,assoc (bytes)")
	l1d := flag.String("l1d", "", "override L1D as size,line,assoc")
	l2 := flag.String("l2", "", "override L2 as size,line,assoc")
	pageSize := flag.Uint64("pagesize", 0, "simulate a physically indexed L2 with this page size")
	tlbEntries := flag.Int("tlb", 0, "simulate a fully-associative data TLB with this many entries")
	placement := flag.String("placement", "identity", "page placement: identity, sequential, random, coloring")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracesim [flags] trace-file")
		flag.Usage()
		os.Exit(2)
	}

	var m machine.Machine
	switch strings.ToLower(*machName) {
	case "r8000":
		m = machine.R8000()
	case "r10000":
		m = machine.R10000()
	default:
		fatal("unknown machine %q", *machName)
	}
	if *scale > 1 {
		m = m.Scaled(*scale)
	}
	cfg := m.Caches
	for _, o := range []struct {
		spec string
		dst  *cache.Config
	}{{*l1i, &cfg.L1I}, {*l1d, &cfg.L1D}, {*l2, &cfg.L2}} {
		if o.spec == "" {
			continue
		}
		c, err := parseCache(o.spec, o.dst.Name, o.dst.Classify)
		if err != nil {
			fatal("%v", err)
		}
		*o.dst = c
	}

	var pt *vm.PageTable
	if *pageSize > 0 {
		var pol vm.Policy
		switch strings.ToLower(*placement) {
		case "identity":
			pol = vm.IdentityPolicy{}
		case "sequential":
			pol = vm.SequentialPolicy{}
		case "random":
			pol = vm.RandomPolicy{Seed: 1}
		case "coloring":
			colors := cfg.L2.Size / uint64(max(1, cfg.L2.Assoc)) / *pageSize
			pol = vm.ColoringPolicy{Colors: max64(1, colors)}
		default:
			fatal("unknown placement %q", *placement)
		}
		var err error
		pt, err = vm.NewPageTable(*pageSize, pol)
		if err != nil {
			fatal("%v", err)
		}
	}

	h, err := cache.NewHierarchy(cfg, pt)
	if err != nil {
		fatal("bad cache configuration: %v", err)
	}
	var tlb *vm.TLB
	if *tlbEntries > 0 {
		pg := *pageSize
		if pg == 0 {
			pg = vm.DefaultPageSize
		}
		tlb, err = vm.NewTLB(*tlbEntries, 0, pg)
		if err != nil {
			fatal("%v", err)
		}
		h.AttachTLB(tlb)
	}

	var in io.Reader
	if name := flag.Arg(0); name == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		in = f
	}

	r := trace.NewReader(in)
	if err := r.ForEach(func(ref trace.Ref) error {
		h.Record(ref)
		return nil
	}); err != nil {
		fatal("reading trace: %v", err)
	}

	report(os.Stdout, h, cfg, pt)
	if tlb != nil {
		fmt.Printf("dtlb: %d entries, %d accesses, %d misses, rate %.2f%%\n",
			*tlbEntries, tlb.Accesses(), tlb.Misses(), tlb.MissRate())
	}
}

func parseCache(spec, name string, classify bool) (cache.Config, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return cache.Config{}, fmt.Errorf("cache spec %q: want size,line,assoc", spec)
	}
	var vals [3]uint64
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return cache.Config{}, fmt.Errorf("cache spec %q: %v", spec, err)
		}
		vals[i] = v
	}
	c := cache.Config{Name: name, Size: vals[0], LineSize: vals[1], Assoc: int(vals[2]), Classify: classify}
	return c, c.Validate()
}

func report(w io.Writer, h *cache.Hierarchy, cfg cache.HierarchyConfig, pt *vm.PageTable) {
	refs := h.Refs()
	fmt.Fprintf(w, "references: total %d (ifetch %d, load %d, store %d)\n",
		refs.Total(), refs.IFetches(), refs.Loads(), refs.Stores())
	for _, lvl := range []*cache.Cache{h.L1I(), h.L1D(), h.L2()} {
		st := lvl.Stats()
		fmt.Fprintf(w, "%-4s %-28s accesses %12d  misses %12d  rate %6.2f%%  writebacks %d\n",
			lvl.Config().Name, lvl.Config().String(), st.Accesses, st.Misses, st.MissRate(), st.Writebacks)
	}
	st := h.L2().Stats()
	if cfg.L2.Classify {
		fmt.Fprintf(w, "L2 miss classification: compulsory %d, capacity %d, conflict %d\n",
			st.Compulsory, st.Capacity, st.Conflict)
	}
	if pt != nil {
		fmt.Fprintf(w, "vm: policy %s, %d pages mapped, %d frame collisions\n",
			pt.PolicyName(), pt.Mapped(), pt.Collisions())
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracesim: "+format+"\n", args...)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
