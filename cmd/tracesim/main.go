// Command tracesim is a standalone trace-driven cache simulator in the
// mould of the modified DineroIII the paper used: it replays a binary
// address trace (the internal/trace format) through a two-level cache
// hierarchy and reports hit/miss counts with compulsory/capacity/conflict
// classification of the second-level misses in a single pass.
//
// Usage:
//
//	tracesim [-machine r8000|r10000] [-scale N] [-tlb entries]
//	         [-l1i size,line,assoc] [-l1d size,line,assoc] [-l2 size,line,assoc]
//	         [-pagesize N -placement identity|sequential|random|coloring]
//	         [-mode batch|serial] [-shard N] [-slices N] [-parallel N]
//	         [-metrics metrics.json] [-timeline timeline.json]
//	         trace-file... (or - for stdin)
//
// Multiple trace files replay through independent hierarchies built from
// the same configuration; -parallel N replays up to N of them
// concurrently. Reports print in argument order regardless of
// parallelism, and both -mode paths produce identical counters (the
// batch path decodes and presents references in chunks, saving one
// interface dispatch per reference).
//
// In batch mode, file inputs are preloaded and decoded through the
// sharded zero-copy reader across -shard workers (default GOMAXPROCS;
// -shard 1 restores the streaming serial decoder). The hierarchy still
// observes references in exact file order — sharding overlaps the
// decode, not the simulation — so counters stay bit-identical at any
// worker count. Stdin input always streams.
//
// -slices N additionally parallelizes the simulation itself: references
// are routed by address class (set-index bits common to every cache
// level) to N independent cache-hierarchy shards that simulate
// concurrently, and the merged counters are provably bit-identical to
// the serial replay (each set's state depends only on its own reference
// subsequence, which slicing preserves in order). Slicing requires batch
// mode on file inputs and is incompatible with -pagesize and -tlb
// (translation and a global TLB couple state across slices); it disables
// L2 miss classification (a global shadow stack) with a warning.
//
// -metrics writes a JSON snapshot counting each replay's references
// (tracesim.refs, one track per input file) and replay wall times;
// -timeline writes a Chrome trace_event JSON with one span per input,
// named after it, for eyeballing how -parallel replays overlapped.
//
// Generate traces with the trace package's Writer, e.g. from an
// instrumented workload (see examples/tracegen in the package docs).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"threadsched/internal/cache"
	"threadsched/internal/machine"
	"threadsched/internal/obs"
	"threadsched/internal/sim"
	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

// simSetup is one replay's private simulator state: hierarchies and page
// tables are mutated per reference, so concurrent replays must not share
// them.
type simSetup struct {
	h   *cache.Hierarchy
	cfg cache.HierarchyConfig
	pt  *vm.PageTable
	tlb *vm.TLB
}

func main() {
	machName := flag.String("machine", "r8000", "base machine model: r8000 or r10000")
	scale := flag.Uint64("scale", 1, "cache scale divisor (power of two)")
	l1i := flag.String("l1i", "", "override L1I as size,line,assoc (bytes)")
	l1d := flag.String("l1d", "", "override L1D as size,line,assoc")
	l2 := flag.String("l2", "", "override L2 as size,line,assoc")
	pageSize := flag.Uint64("pagesize", 0, "simulate a physically indexed L2 with this page size")
	tlbEntries := flag.Int("tlb", 0, "simulate a fully-associative data TLB with this many entries")
	placement := flag.String("placement", "identity", "page placement: identity, sequential, random, coloring")
	mode := flag.String("mode", "batch", "replay path: batch (chunked decode) or serial (both bit-identical)")
	shard := flag.Int("shard", 0, "with -mode batch: preload file inputs and decode across N workers (0 = GOMAXPROCS, 1 = streaming serial decode)")
	slices := flag.Int("slices", 1, "with -mode batch: simulate across N address-sliced cache shards (merged counters bit-identical to serial; disables classification, excludes -pagesize/-tlb)")
	parallel := flag.Int("parallel", 1, "replay up to N trace files concurrently")
	metricsOut := flag.String("metrics", "", "write per-input reference counts and replay times (JSON) to this file")
	timelineOut := flag.String("timeline", "", "write a Chrome trace_event replay timeline (JSON) to this file")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: tracesim [flags] trace-file...")
		flag.Usage()
		os.Exit(2)
	}
	batch := false
	switch *mode {
	case "batch":
		batch = true
	case "serial":
	default:
		fatal("unknown -mode %q (want batch or serial)", *mode)
	}

	var m machine.Machine
	switch strings.ToLower(*machName) {
	case "r8000":
		m = machine.R8000()
	case "r10000":
		m = machine.R10000()
	default:
		fatal("unknown machine %q", *machName)
	}
	if *scale > 1 {
		m = m.Scaled(*scale)
	}
	cfg := m.Caches
	for _, o := range []struct {
		spec string
		dst  *cache.Config
	}{{*l1i, &cfg.L1I}, {*l1d, &cfg.L1D}, {*l2, &cfg.L2}} {
		if o.spec == "" {
			continue
		}
		c, err := parseCache(o.spec, o.dst.Name, o.dst.Classify)
		if err != nil {
			fatal("%v", err)
		}
		*o.dst = c
	}
	if *slices > 1 {
		if !batch {
			fatal("-slices requires -mode batch")
		}
		if *pageSize > 0 || *tlbEntries > 0 {
			fatal("-slices is incompatible with -pagesize and -tlb: translation and a global TLB couple state across address slices")
		}
		for _, name := range flag.Args() {
			if name == "-" {
				fatal("-slices requires file inputs (stdin streams)")
			}
		}
		if cfg.L1I.Classify || cfg.L1D.Classify || cfg.L2.Classify {
			fmt.Fprintln(os.Stderr, "tracesim: -slices disables miss classification (the shadow stack is global state address slicing cannot reproduce)")
			cfg.L1I.Classify, cfg.L1D.Classify, cfg.L2.Classify = false, false, false
		}
	}

	// newSetup builds a fresh hierarchy (plus page table and TLB when
	// requested) for each input, so -parallel replays share nothing.
	newSetup := func() (*simSetup, error) {
		s := &simSetup{cfg: cfg}
		if *pageSize > 0 {
			var pol vm.Policy
			switch strings.ToLower(*placement) {
			case "identity":
				pol = vm.IdentityPolicy{}
			case "sequential":
				pol = vm.SequentialPolicy{}
			case "random":
				pol = vm.RandomPolicy{Seed: 1}
			case "coloring":
				colors := cfg.L2.Size / uint64(max(1, cfg.L2.Assoc)) / *pageSize
				pol = vm.ColoringPolicy{Colors: max64(1, colors)}
			default:
				return nil, fmt.Errorf("unknown placement %q", *placement)
			}
			var err error
			s.pt, err = vm.NewPageTable(*pageSize, pol)
			if err != nil {
				return nil, err
			}
		}
		h, err := cache.NewHierarchy(cfg, s.pt)
		if err != nil {
			return nil, fmt.Errorf("bad cache configuration: %v", err)
		}
		s.h = h
		if *tlbEntries > 0 {
			pg := *pageSize
			if pg == 0 {
				pg = vm.DefaultPageSize
			}
			s.tlb, err = vm.NewTLB(*tlbEntries, 0, pg)
			if err != nil {
				return nil, err
			}
			h.AttachTLB(s.tlb)
		}
		return s, nil
	}

	names := flag.Args()
	var o *obs.Obs
	if *metricsOut != "" || *timelineOut != "" {
		o = obs.New(len(names))
		if *timelineOut != "" {
			o.WithTimeline()
		}
	}
	outs := make([]bytes.Buffer, len(names))
	errs := make([]error, len(names))
	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(names) {
		workers = len(names)
	}
	// Interrupt (or SIGTERM) cancels in-flight replays at their next
	// chunk and keeps queued ones from starting.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if errs[i] = ctx.Err(); errs[i] != nil {
				return
			}
			errs[i] = replay(ctx, &outs[i], name, len(names) > 1, batch, *shard, *slices, *tlbEntries, newSetup, o, i)
		}(i, name)
	}
	wg.Wait()
	for i := range names {
		if errs[i] != nil {
			fatal("%s: %v", names[i], errs[i])
		}
		os.Stdout.Write(outs[i].Bytes())
	}
	if o != nil {
		if *metricsOut != "" {
			if err := writeFileWith(*metricsOut, func(w io.Writer) error {
				return o.Snapshot().WriteJSON(w)
			}); err != nil {
				fatal("writing %s: %v", *metricsOut, err)
			}
		}
		if *timelineOut != "" {
			if err := writeFileWith(*timelineOut, o.Timeline().WriteJSON); err != nil {
				fatal("writing %s: %v", *timelineOut, err)
			}
		}
	}
}

func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// replay decodes one trace through a fresh hierarchy and writes its report
// to w. Output is buffered per input so -parallel replays print in
// argument order. With o attached, the replay records its reference count
// and wall time on its own track and a timeline span named after the
// input.
func replay(ctx context.Context, w io.Writer, name string, labeled, batch bool, shard, slices, tlbEntries int, newSetup func() (*simSetup, error), o *obs.Obs, track int) error {
	s, err := newSetup()
	if err != nil {
		return err
	}
	var start time.Time
	if o.Enabled() {
		o.Timeline().SetTrackName(track, name)
		start = time.Now()
	}
	sp := o.Timeline().Begin(track, name)
	// Address-sliced parallel simulation: decode fans references to
	// per-slice cache shards, merged for the report. Cancellation is
	// coarser here (the whole replay, not per chunk).
	if slices > 1 && batch && name != "-" {
		mf, err := trace.LoadFile(name)
		if err != nil {
			return fmt.Errorf("reading trace: %w", err)
		}
		sh, err := sim.NewShardedHierarchy(s.cfg, slices)
		if err != nil {
			return err
		}
		if err := sh.Replay(mf, shard); err != nil {
			return fmt.Errorf("reading trace: %w", err)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		s.h = sh.Merged()
		return finishReplay(w, s, name, labeled, tlbEntries, o, track, start, sp)
	}
	// The batch path on a file input preloads the trace and fans the
	// decode across shard workers (the hierarchy still observes file
	// order; v1 traces fall back to serial decode inside MemFile). Stdin
	// and serial mode keep the streaming reader.
	if batch && name != "-" && shard != 1 {
		mf, err := trace.LoadFile(name)
		if err != nil {
			return fmt.Errorf("reading trace: %w", err)
		}
		err = mf.ForEachBatch(shard, func(refs []trace.Ref) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			s.h.RecordBatch(refs)
			return nil
		})
		if err != nil {
			if err == ctx.Err() {
				return err
			}
			return fmt.Errorf("reading trace: %w", err)
		}
		return finishReplay(w, s, name, labeled, tlbEntries, o, track, start, sp)
	}
	var in io.Reader
	if name == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	r := trace.NewReader(in)
	if batch {
		err = r.ForEachBatch(0, func(refs []trace.Ref) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			s.h.RecordBatch(refs)
			return nil
		})
	} else {
		n := 0
		err = r.ForEach(func(ref trace.Ref) error {
			if n++; n&0xffff == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			s.h.Record(ref)
			return nil
		})
	}
	if err != nil {
		if err == ctx.Err() {
			return err
		}
		return fmt.Errorf("reading trace: %w", err)
	}
	return finishReplay(w, s, name, labeled, tlbEntries, o, track, start, sp)
}

// finishReplay closes a successful replay's timeline span, records its
// metrics, and writes its report — shared by the streaming and sharded
// decode paths.
func finishReplay(w io.Writer, s *simSetup, name string, labeled bool, tlbEntries int, o *obs.Obs, track int, start time.Time, sp obs.Span) error {
	sp.End()
	if o.Enabled() {
		refs := s.h.Refs()
		reg := o.Registry()
		reg.Counter("tracesim.refs").Add(track, refs.Total())
		reg.Histogram("tracesim.replay_ns").Observe(track, uint64(time.Since(start)))
	}
	if labeled {
		fmt.Fprintf(w, "== %s ==\n", name)
	}
	report(w, s.h, s.cfg, s.pt)
	if s.tlb != nil {
		fmt.Fprintf(w, "dtlb: %d entries, %d accesses, %d misses, rate %.2f%%\n",
			tlbEntries, s.tlb.Accesses(), s.tlb.Misses(), s.tlb.MissRate())
	}
	return nil
}

func parseCache(spec, name string, classify bool) (cache.Config, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return cache.Config{}, fmt.Errorf("cache spec %q: want size,line,assoc", spec)
	}
	var vals [3]uint64
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return cache.Config{}, fmt.Errorf("cache spec %q: %v", spec, err)
		}
		vals[i] = v
	}
	c := cache.Config{Name: name, Size: vals[0], LineSize: vals[1], Assoc: int(vals[2]), Classify: classify}
	return c, c.Validate()
}

func report(w io.Writer, h *cache.Hierarchy, cfg cache.HierarchyConfig, pt *vm.PageTable) {
	refs := h.Refs()
	fmt.Fprintf(w, "references: total %d (ifetch %d, load %d, store %d)\n",
		refs.Total(), refs.IFetches(), refs.Loads(), refs.Stores())
	for _, lvl := range []*cache.Cache{h.L1I(), h.L1D(), h.L2()} {
		st := lvl.Stats()
		fmt.Fprintf(w, "%-4s %-28s accesses %12d  misses %12d  rate %6.2f%%  writebacks %d\n",
			lvl.Config().Name, lvl.Config().String(), st.Accesses, st.Misses, st.MissRate(), st.Writebacks)
	}
	st := h.L2().Stats()
	if cfg.L2.Classify {
		fmt.Fprintf(w, "L2 miss classification: compulsory %d, capacity %d, conflict %d\n",
			st.Compulsory, st.Capacity, st.Conflict)
	}
	if pt != nil {
		fmt.Fprintf(w, "vm: policy %s, %d pages mapped, %d frame collisions\n",
			pt.PolicyName(), pt.Mapped(), pt.Collisions())
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracesim: "+format+"\n", args...)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
