package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"threadsched/internal/harness"
)

// appRecord is the machine-readable application-kernel record written by
// -appbench (see BENCH_APPS.json). Its schema string versions the format.
type appRecord struct {
	Schema string              `json:"schema"`
	Date   string              `json:"date"`
	Go     string              `json:"go"`
	CPUs   int                 `json:"cpus"`
	Reps   int                 `json:"reps"`
	Apps   []harness.AppResult `json:"apps"`
	// Note documents measurement caveats (e.g. a single-core host, where
	// parallel worker speedups measure coordination overhead, not scaling).
	Note string `json:"note,omitempty"`
}

// runAppBench benchmarks the four application kernels and writes the
// record to path.
func runAppBench(prog harness.Progress, path string, reps int) error {
	apps := harness.AppBench(reps, prog)
	rec := appRecord{
		Schema: "threadsched/bench-apps/v1",
		Date:   time.Now().UTC().Format(time.RFC3339),
		Go:     runtime.Version(),
		CPUs:   runtime.NumCPU(),
		Reps:   reps,
		Apps:   apps,
	}
	if rec.CPUs == 1 {
		rec.Note = "single-core host: parallel worker counts measure scheduler " +
			"coordination overhead, not scaling; kernel_speedup (serial vs serial) " +
			"is the meaningful comparison here"
	}
	for _, a := range apps {
		kernelRef, kernel := a.SerialRefNS, a.SerialNS
		if a.KernelNS > 0 {
			kernelRef, kernel = a.KernelRefNS, a.KernelNS
		}
		fmt.Printf("%-8s %-14s kernel %8.3fms -> %8.3fms (%.2fx)  threaded %8.3fms  "+
			"parallel w4 %8.3fms (%.2fx)  %.2f %s\n",
			a.App, a.Size,
			float64(kernelRef)/1e6, float64(kernel)/1e6, a.KernelSpeedup,
			float64(a.ThreadedNS)/1e6,
			float64(a.ParallelNS["4"])/1e6, a.ParallelSpeedup4W,
			a.Throughput, a.Unit)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d apps)\n", path, len(apps))
	return nil
}
