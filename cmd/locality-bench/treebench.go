package main

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"threadsched/internal/core"
	"threadsched/internal/harness"
	"threadsched/internal/obs"
)

// The hierarchical dispatch sweep recorded into BENCH_CORE (schema v2).
// Unlike the table experiments, which run the trace-driven simulator,
// this measures the scheduler's own dispatch layer live on the host: the
// same skewed fork workload runs through the flat segmented dispatcher
// and through the bin tree under each topology, at several worker
// counts, recording threads/sec plus the per-level steal counters the
// tree dispatcher splits out (sched.steals.l0 innermost). Flat rows have
// topology "flat" and no per-level split; they are the baseline the
// guard-tree tripwire compares against.

// topoSweepEntry is one (topology, workers) measurement.
type topoSweepEntry struct {
	Topology      string  `json:"topology"`
	Workers       int     `json:"workers"`
	StealChunk    int     `json:"steal_chunk"`
	Threads       int     `json:"threads"`
	WallNS        int64   `json:"wall_ns"`
	ThreadsPerSec float64 `json:"threads_per_sec"`
	// Steals is the total successful segment refills across workers.
	Steals uint64 `json:"steals"`
	// StealsPerLevel / StealBinsPerLevel split the steal traffic by the
	// cache level shared between thief and victim ("l0" innermost);
	// present only for multi-level topologies.
	StealsPerLevel    map[string]uint64 `json:"steals_per_level,omitempty"`
	StealBinsPerLevel map[string]uint64 `json:"steal_bins_per_level,omitempty"`
	// TreeNodes is the bubble count per level of the built bin tree.
	TreeNodes map[string]uint64 `json:"tree_nodes,omitempty"`
}

// sweepThreads sizes the dispatch workload per -size.
func sweepThreads(size string) int {
	switch size {
	case "quick":
		return 60_000
	case "full":
		return 400_000
	default:
		return 200_000
	}
}

// defaultSweepTopologies is the topology list when -topology is not
// given: a two-level and a three-level shape whose outer capacity matches
// the paper's 2 MB second-level cache.
var defaultSweepTopologies = []string{"64k:2,2m:8", "32k:2,256k:4,2m:16"}

// runTopoSweep measures the hierarchical dispatch sweep. topoSpec, when
// non-empty and not "flat", replaces the default topology list;
// stealChunk (0 = scheduler default) applies to every run.
func runTopoSweep(size, topoSpec string, stealChunk int, prog harness.Progress) ([]topoSweepEntry, error) {
	topos := defaultSweepTopologies
	if s := strings.TrimSpace(topoSpec); s != "" && !strings.EqualFold(s, "flat") {
		topos = []string{s}
	}
	var workerCounts []int
	for w := 1; w <= runtime.NumCPU(); w *= 2 {
		workerCounts = append(workerCounts, w)
	}
	if last := workerCounts[len(workerCounts)-1]; last != runtime.NumCPU() {
		workerCounts = append(workerCounts, runtime.NumCPU())
	}
	if len(workerCounts) == 1 {
		// Single-CPU host: add a 2-worker row anyway so the record still
		// exercises parallel dispatch and the per-level steal counters
		// (throughput there measures time-sliced goroutines, not scaling).
		workerCounts = append(workerCounts, 2)
	}
	n := sweepThreads(size)
	var entries []topoSweepEntry
	for _, spec := range append([]string{"flat"}, topos...) {
		topo, err := core.ParseTopology(spec)
		if err != nil {
			return nil, fmt.Errorf("topology %q: %v", spec, err)
		}
		for _, w := range workerCounts {
			e, err := measureTopo(topo, w, stealChunk, n)
			if err != nil {
				return nil, err
			}
			if prog != nil {
				prog("treebench: topology=%s workers=%d %.0f threads/sec", e.Topology, w, e.ThreadsPerSec)
			}
			entries = append(entries, e)
		}
	}
	return entries, nil
}

// measureTopo is one best-of-3 dispatch measurement.
func measureTopo(topo *core.Topology, workers, stealChunk, n int) (topoSweepEntry, error) {
	data := make([]int64, 1<<16) // read-shared
	sink := make([]int64, n)     // disjoint per-thread write slots
	e := topoSweepEntry{Topology: topo.String(), Workers: workers, Threads: n}
	for rep := 0; rep < 3; rep++ {
		o := obs.New(workers)
		s := core.New(core.Config{
			CacheSize:  2 << 20,
			BlockSize:  1 << 14,
			Workers:    workers,
			StealChunk: stealChunk,
			Topology:   topo,
			Obs:        o,
		})
		if rep == 0 {
			e.StealChunk = stealChunkInEffect(topo, stealChunk)
		}
		for i := 0; i < n; i++ {
			s.Fork(func(a1, _ int) {
				base := (a1 * 61) & (len(data) - 64)
				sum := int64(0)
				for j := 0; j < 64; j++ {
					sum += data[base+j]
				}
				sink[a1] = sum
			}, i, 0, uint64(i%(8+i%29))<<14, 0, 0)
		}
		start := time.Now()
		s.Run(false)
		wall := time.Since(start)
		s.Close()
		if e.WallNS == 0 || wall.Nanoseconds() < e.WallNS {
			e.WallNS = wall.Nanoseconds()
			e.ThreadsPerSec = float64(n) / wall.Seconds()
			fillStealCounters(&e, o.Snapshot())
		}
	}
	return e, nil
}

// stealChunkInEffect reports the innermost-level chunk the run uses, for
// the record.
func stealChunkInEffect(topo *core.Topology, configured int) int {
	if topo != nil {
		if c := topo.Level(0).StealChunk; c > 0 {
			return c
		}
	}
	if configured > 0 {
		return configured
	}
	return core.DefaultStealChunk
}

// fillStealCounters extracts the flat and per-level steal counters (and
// the tree-shape gauges) from an observability snapshot.
func fillStealCounters(e *topoSweepEntry, snap obs.Snapshot) {
	e.Steals = 0
	e.StealsPerLevel, e.StealBinsPerLevel, e.TreeNodes = nil, nil, nil
	for _, c := range snap.Counters {
		switch {
		case c.Name == "sched.steals":
			e.Steals = c.Total
		case strings.HasPrefix(c.Name, "sched.steals.l"):
			if e.StealsPerLevel == nil {
				e.StealsPerLevel = map[string]uint64{}
			}
			e.StealsPerLevel[strings.TrimPrefix(c.Name, "sched.steals.")] = c.Total
		case strings.HasPrefix(c.Name, "sched.steal_bins.l"):
			if e.StealBinsPerLevel == nil {
				e.StealBinsPerLevel = map[string]uint64{}
			}
			e.StealBinsPerLevel[strings.TrimPrefix(c.Name, "sched.steal_bins.")] = c.Total
		}
	}
	for _, g := range snap.Gauges {
		if strings.HasPrefix(g.Name, "sched.tree_nodes.l") {
			if e.TreeNodes == nil {
				e.TreeNodes = map[string]uint64{}
			}
			e.TreeNodes[strings.TrimPrefix(g.Name, "sched.tree_nodes.")] = g.Max
		}
	}
}
