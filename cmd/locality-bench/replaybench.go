package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"threadsched/internal/harness"
)

// replayRecord is the machine-readable trace-replay throughput record
// written by -replaybench (see BENCH_REPLAY.json). Its schema string
// versions the format; v2 added the address-sliced parallel-simulation
// sweep ("sliced").
type replayRecord struct {
	Schema     string                `json:"schema"`
	Date       string                `json:"date"`
	Size       string                `json:"size"`
	Go         string                `json:"go"`
	CPUs       int                   `json:"cpus"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	Reps       int                   `json:"reps"`
	Workload   string                `json:"workload"`
	Refs       uint64                `json:"refs"`
	TraceBytes int                   `json:"trace_bytes"`
	Chunks     int                   `json:"chunks"`
	Decode     []harness.ReplayStage `json:"decode"`
	EndToEnd   []harness.ReplayStage `json:"end_to_end"`
	Sliced     []harness.ReplayStage `json:"sliced"`
}

// runReplayBench measures decode-only, end-to-end, and address-sliced
// replay throughput through the serial reader and the sharded decoder,
// writing the record to path.
func runReplayBench(cfg harness.Config, prog harness.Progress, size, path string, reps int) error {
	res, err := cfg.ReplayBench(reps, prog)
	if err != nil {
		return err
	}
	rec := replayRecord{
		Schema:     "threadsched/bench-replay/v2",
		Date:       time.Now().UTC().Format(time.RFC3339),
		Size:       size,
		Go:         runtime.Version(),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Reps:       reps,
		Workload:   res.Workload,
		Refs:       res.Refs,
		TraceBytes: res.TraceBytes,
		Chunks:     res.Chunks,
		Decode:     res.Decode,
		EndToEnd:   res.EndToEnd,
		Sliced:     res.Sliced,
	}
	fmt.Printf("trace: %s — %d refs, %d chunks, %d bytes\n",
		res.Workload, res.Refs, res.Chunks, res.TraceBytes)
	print := func(label string, stages []harness.ReplayStage) {
		for _, s := range stages {
			fmt.Printf("%-10s %-8s w=%-3d %8.3fs  %12.0f refs/sec  %.2fx vs serial\n",
				label, s.Path, s.Workers, float64(s.WallNS)/1e9, s.RefsPerSec, s.SpeedupVsSerial)
		}
	}
	print("decode", rec.Decode)
	print("end-to-end", rec.EndToEnd)
	print("sliced", rec.Sliced)
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d decode + %d end-to-end + %d sliced stages)\n",
		path, len(rec.Decode), len(rec.EndToEnd), len(rec.Sliced))
	return nil
}
