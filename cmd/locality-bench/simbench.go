package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"threadsched/internal/harness"
)

// simRecord is the machine-readable pipeline-throughput record written by
// -simbench (see BENCH_SIM.json). Its schema string versions the format;
// v2 added the cores dimension (per-stage worker counts, gomaxprocs) and
// the best-of repetition count.
type simRecord struct {
	Schema     string                `json:"schema"`
	Date       string                `json:"date"`
	Size       string                `json:"size"`
	Go         string                `json:"go"`
	CPUs       int                   `json:"cpus"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	Reps       int                   `json:"reps"`
	Stages     []harness.StageResult `json:"stages"`
	// Baseline, when present, is a reference throughput measured from a
	// pre-optimization build of this repository over the same workload
	// set (see -baseline-rps); SpeedupVsBaseline compares the best stage
	// against it.
	Baseline *simBaseline `json:"baseline,omitempty"`
}

type simBaseline struct {
	RefsPerSec        float64 `json:"refs_per_sec"`
	Note              string  `json:"note,omitempty"`
	SpeedupVsBaseline float64 `json:"best_stage_speedup"`
}

// runSimBench measures refs/sec through every reference-stream path and
// writes the record to path.
func runSimBench(cfg harness.Config, prog harness.Progress, size, path string, reps int, baselineRPS float64, baselineNote string) error {
	stages := cfg.SimBench(reps, prog)
	rec := simRecord{
		Schema:     "threadsched/bench-sim/v2",
		Date:       time.Now().UTC().Format(time.RFC3339),
		Size:       size,
		Go:         runtime.Version(),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Reps:       reps,
		Stages:     stages,
	}
	best := 0.0
	for _, s := range stages {
		if s.RefsPerSec > best {
			best = s.RefsPerSec
		}
		fmt.Printf("%-10s w=%-3d %12d refs  %8.3fs  %12.0f refs/sec  %.2fx vs serial\n",
			s.Stage, s.Workers, s.Refs, float64(s.WallNS)/1e9, s.RefsPerSec, s.SpeedupVsSerial)
	}
	if baselineRPS > 0 {
		rec.Baseline = &simBaseline{
			RefsPerSec:        baselineRPS,
			Note:              baselineNote,
			SpeedupVsBaseline: best / baselineRPS,
		}
		fmt.Printf("%-10s %40s  %12.0f refs/sec  %.2fx best-stage speedup\n",
			"baseline", "", baselineRPS, rec.Baseline.SpeedupVsBaseline)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d stages)\n", path, len(stages))
	return nil
}
