// Command locality-bench regenerates the paper's evaluation — Tables 1
// through 9 and Figure 4 — using the reproduction's simulator stack.
//
// Usage:
//
//	locality-bench [-exp all|table1..table9|figure4|ablations] [-size quick|scaled|full]
//	               [-mode batch|serial|pipeline] [-parallel N]
//	               [-topology 32k:2,256k:8,8m:64] [-steal-chunk N]
//	               [-progress] [-list] [-json BENCH_CORE.json]
//	               [-simbench BENCH_SIM.json] [-appbench BENCH_APPS.json]
//	               [-replaybench BENCH_REPLAY.json]
//	               [-metrics metrics.json] [-timeline timeline.json]
//
// -json additionally writes a machine-readable record of the run — wall
// nanoseconds per experiment plus each table's attached metrics (bins
// used, threads per bin, host ns/thread), and (schema v2) a hierarchical
// dispatch sweep recording flat-vs-tree scheduler throughput with
// per-level steal counts — so the performance trajectory can be diffed
// across revisions.
//
// -topology threads a cache-hierarchy description (innermost level
// first, capacity:workers[:stealchunk] per level) into every scheduler:
// the simulated tables are single-worker and unchanged by it (the golden
// equivalence tests pin this), but the -json sweep and the -metrics
// snapshot then measure the hierarchical dispatcher under that shape
// instead of the default sweep topologies. -steal-chunk bounds how many
// bins one segment claim or narrow steal takes (0 keeps the scheduler
// default; per-level topology chunks override it).
//
// -parallel N runs each table's independent simulations on up to N
// concurrent workers; -mode selects the reference-stream path. All modes
// and parallelism levels produce byte-identical tables (the golden
// equivalence tests in internal/harness enforce this).
//
// -simbench skips the experiment tables and instead measures end-to-end
// simulation throughput (refs/sec) through each reference-stream path,
// writing the pipeline benchmark record (see results/README.md). Each
// stage reports its worker count; -simbench-reps selects the best-of
// repetition count.
//
// -replaybench measures trace-replay throughput: decode-only (the
// wire-speed ceiling) and decode-feeding-the-cache-hierarchy, through the
// streaming serial reader and the sharded zero-copy decoder at several
// worker counts, writing the replay benchmark record (see
// results/README.md). Every sharded replay is verified bit-identical to
// the serial replay before its throughput is reported.
//
// -metrics writes a merged JSON snapshot of the observability registry —
// per-worker steals, bins and threads run, segment drain times, pipeline
// ring depth and stalls, cache-sim wall time and refs/sec. -timeline
// writes a Chrome trace_event JSON worker timeline (one row per worker
// lane, spans for segment drains, pipeline drains, and harness jobs);
// load it in chrome://tracing or https://ui.perfetto.dev. Either flag
// attaches the observability layer; neither changes any table number
// (pinned by the harness equivalence tests).
//
// -appbench benchmarks the native application kernels (matmul, SOR, PDE,
// N-body) — pre-optimization vs optimized serial inner loops, and the
// threaded variants serial vs through the parallel scheduler at 1/2/4
// workers — writing the application benchmark record (see
// results/README.md).
//
// By default every experiment runs at the scaled geometry (caches ÷16,
// data sets shrunk to preserve the paper's data:cache ratios; see
// EXPERIMENTS.md). -size full uses the paper's exact problem sizes —
// expect multi-hour runs for the matmul tables.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"threadsched/internal/core"
	"threadsched/internal/harness"
	"threadsched/internal/obs"
	"threadsched/internal/tables"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1..table9, figure4, ablations (comma-separated)")
	size := flag.String("size", "scaled", "problem size: quick, scaled, or full (paper sizes; very slow)")
	progress := flag.Bool("progress", false, "print per-run progress to stderr")
	list := flag.Bool("list", false, "list experiments and exit")
	format := flag.String("format", "text", "output format: text or csv")
	jsonOut := flag.String("json", "", "also write a machine-readable benchmark record to this file (e.g. BENCH_CORE.json)")
	mode := flag.String("mode", "batch", "reference-stream path: batch, serial, or pipeline (all bit-identical)")
	parallel := flag.Int("parallel", 1, "run up to N independent simulations per table concurrently")
	simbench := flag.String("simbench", "", "measure pipeline throughput instead of running experiments; write the record to this file (e.g. BENCH_SIM.json)")
	simbenchReps := flag.Int("simbench-reps", 3, "with -simbench: best-of repetition count per stage")
	baselineRPS := flag.Float64("baseline-rps", 0, "with -simbench: refs/sec of a pre-optimization build for the same workloads, recorded as the speedup baseline")
	baselineNote := flag.String("baseline-note", "", "with -simbench: provenance note for -baseline-rps")
	replaybench := flag.String("replaybench", "", "measure trace-replay throughput (serial vs sharded decode) instead of running experiments; write the record to this file (e.g. BENCH_REPLAY.json)")
	replaybenchReps := flag.Int("replaybench-reps", 3, "with -replaybench: best-of repetition count per stage")
	appbench := flag.String("appbench", "", "benchmark the native application kernels instead of running experiments; write the record to this file (e.g. BENCH_APPS.json)")
	appbenchReps := flag.Int("appbench-reps", 5, "with -appbench: best-of repetition count per measurement")
	metricsOut := flag.String("metrics", "", "write a merged scheduler/pipeline/sim metrics snapshot (JSON) to this file")
	timelineOut := flag.String("timeline", "", "write a Chrome trace_event worker timeline (JSON, for chrome://tracing or Perfetto) to this file")
	topology := flag.String("topology", "", "cache topology for hierarchical scheduling, innermost level first, e.g. 32k:2,256k:8,8m:64 (capacity:workers[:stealchunk] per level); empty or \"flat\" keeps the flat dispatch")
	stealChunk := flag.Int("steal-chunk", 0, "max bins per segment claim / narrow steal (0 = scheduler default; per-level topology chunks override)")
	flag.Parse()

	if *list {
		listExperiments()
		return
	}

	var cfg harness.Config
	switch *size {
	case "quick":
		cfg = harness.Quick()
	case "scaled":
		cfg = harness.Scaled()
	case "full":
		cfg = harness.Full()
		fmt.Fprintln(os.Stderr, "warning: full-size trace simulation processes billions of references; expect hours")
	default:
		fmt.Fprintf(os.Stderr, "unknown -size %q (want quick, scaled, or full)\n", *size)
		os.Exit(2)
	}
	switch *mode {
	case "batch":
		cfg.Mode = harness.ModeBatched
	case "serial":
		cfg.Mode = harness.ModeSerial
	case "pipeline":
		cfg.Mode = harness.ModePipelined
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (want batch, serial, or pipeline)\n", *mode)
		os.Exit(2)
	}
	cfg.Parallel = *parallel
	topo, err := core.ParseTopology(*topology)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -topology: %v\n", err)
		os.Exit(2)
	}
	cfg.Topology = topo

	// Interrupt (or SIGTERM) stops the run at the next job boundary: no
	// new simulation starts, completed tables have already rendered, and
	// the in-progress table renders the jobs that finished. A second
	// signal kills the process via Go's default handling.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	cfg.Context = ctx

	// The observability layer attaches when either output is requested:
	// one metrics track per parallel simulation lane plus room for the
	// pipeline-drain and job lanes AcquireTrack hands out.
	var o *obs.Obs
	if *metricsOut != "" || *timelineOut != "" {
		tracks := 2 * *parallel
		if tracks < 4 {
			tracks = 4
		}
		o = obs.New(tracks)
		if *timelineOut != "" {
			o.WithTimeline()
		}
		cfg.Obs = o
	}
	writeObs := func() {
		if err := writeObsFiles(o, *metricsOut, *timelineOut); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
	}

	var prog harness.Progress
	if *progress {
		var mu sync.Mutex
		prog = func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(os.Stderr, "  [%s] %s\n", time.Now().Format("15:04:05"),
				fmt.Sprintf(format, args...))
		}
	}

	if *simbench != "" {
		if err := runSimBench(cfg, prog, *size, *simbench, *simbenchReps, *baselineRPS, *baselineNote); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			os.Exit(1)
		}
		writeObs()
		return
	}

	if *replaybench != "" {
		if err := runReplayBench(cfg, prog, *size, *replaybench, *replaybenchReps); err != nil {
			fmt.Fprintf(os.Stderr, "replaybench: %v\n", err)
			os.Exit(1)
		}
		writeObs()
		return
	}

	if *appbench != "" {
		if err := runAppBench(prog, *appbench, *appbenchReps); err != nil {
			fmt.Fprintf(os.Stderr, "appbench: %v\n", err)
			os.Exit(1)
		}
		writeObs()
		return
	}

	experiments := map[string]func() *tables.Table{
		"table1":    func() *tables.Table { return cfg.Table1() },
		"table2":    func() *tables.Table { return cfg.Table2(prog) },
		"table3":    func() *tables.Table { return cfg.Table3(prog) },
		"table4":    func() *tables.Table { return cfg.Table4(prog) },
		"table5":    func() *tables.Table { return cfg.Table5(prog) },
		"table6":    func() *tables.Table { return cfg.Table6(prog) },
		"table7":    func() *tables.Table { return cfg.Table7(prog) },
		"table8":    func() *tables.Table { return cfg.Table8(prog) },
		"table9":    func() *tables.Table { return cfg.Table9(prog) },
		"figure4":   func() *tables.Table { return cfg.Figure4(prog) },
		"ablations": func() *tables.Table { return cfg.Ablations(prog) },
		"modern":    func() *tables.Table { return cfg.Modern(prog) },
	}
	order := []string{"table1", "table2", "table3", "table4", "table5",
		"table6", "table7", "table8", "table9", "figure4", "ablations", "modern"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(strings.ToLower(name))
			if _, ok := experiments[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", name)
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}

	if *format != "csv" {
		fmt.Printf("Thread Scheduling for Cache Locality (ASPLOS 1996) — reproduction harness\n")
		fmt.Printf("size=%s (cache scale ÷%d, N-body ÷%d)\n\n", *size, cfg.Scale, cfg.NBodyScale)
	}
	record := benchRecord{
		Schema: "threadsched/bench-core/v2",
		Date:   time.Now().UTC().Format(time.RFC3339),
		Size:   *size,
		Go:     runtime.Version(),
		CPUs:   runtime.NumCPU(),
	}
	for _, name := range selected {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "interrupted; skipping remaining experiments\n")
			break
		}
		start := time.Now()
		t := experiments[name]()
		wall := time.Since(start)
		if ctx.Err() != nil {
			t.AddNote("INTERRUPTED: partial results, rows may be missing")
		}
		t.AddNote("harness wall time: %v", wall.Round(time.Millisecond))
		switch *format {
		case "csv":
			fmt.Printf("# %s: %s\n", t.ID, t.Title)
			t.RenderCSV(os.Stdout)
			fmt.Println()
		default:
			t.Render(os.Stdout)
		}
		record.Experiments = append(record.Experiments, expRecord{
			Name:    name,
			ID:      t.ID,
			Title:   t.Title,
			WallNS:  wall.Nanoseconds(),
			Metrics: t.Metrics,
		})
	}
	if *jsonOut != "" {
		// The hierarchical dispatch sweep rides along with every record
		// (schema v2): flat vs tree threads/sec plus per-level steal counts.
		if ctx.Err() == nil {
			sweep, err := runTopoSweep(*size, *topology, *stealChunk, prog)
			if err != nil {
				fmt.Fprintf(os.Stderr, "topology sweep: %v\n", err)
				os.Exit(1)
			}
			record.TopologySweep = sweep
		}
		if err := writeRecord(*jsonOut, record); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d experiments)\n", *jsonOut, len(record.Experiments))
	}
	writeObs()
}

// writeObsFiles dumps the metrics snapshot and/or timeline collected by o;
// a nil o (neither flag given) writes nothing.
func writeObsFiles(o *obs.Obs, metricsPath, timelinePath string) error {
	if o == nil {
		return nil
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		err = o.Snapshot().WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing %s: %v", metricsPath, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", metricsPath)
	}
	if timelinePath != "" {
		f, err := os.Create(timelinePath)
		if err != nil {
			return err
		}
		err = o.Timeline().WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing %s: %v", timelinePath, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (load in chrome://tracing or https://ui.perfetto.dev)\n", timelinePath)
	}
	return nil
}

// benchRecord is the machine-readable run summary written by -json; its
// schema string versions the format so cross-PR tooling can diff runs.
type benchRecord struct {
	Schema      string      `json:"schema"`
	Date        string      `json:"date"`
	Size        string      `json:"size"`
	Go          string      `json:"go"`
	CPUs        int         `json:"cpus"`
	Experiments []expRecord `json:"experiments"`
	// TopologySweep (schema v2) is the hierarchical dispatch sweep: live
	// scheduler throughput flat vs bin-tree per topology and worker count,
	// with per-level steal counts. See cmd/locality-bench/treebench.go.
	TopologySweep []topoSweepEntry `json:"topology_sweep,omitempty"`
}

type expRecord struct {
	Name    string             `json:"name"`
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	WallNS  int64              `json:"wall_ns"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func writeRecord(path string, r benchRecord) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func listExperiments() {
	rows := []struct{ id, what string }{
		{"table1", "thread fork/run overhead (µs), modelled + live host measurement"},
		{"table2", "matrix multiply times: 5 variants × 2 machines"},
		{"table3", "matrix multiply references & classified cache misses (R8000)"},
		{"table4", "red-black PDE solver times: 3 variants × 2 machines"},
		{"table5", "PDE references & classified cache misses (R8000)"},
		{"table6", "SOR kernel times: 3 variants × 2 machines"},
		{"table7", "SOR references & classified cache misses (R8000)"},
		{"table8", "Barnes-Hut N-body times: 2 variants × 2 machines"},
		{"table9", "N-body references & classified cache misses (R8000)"},
		{"figure4", "execution time vs scheduler block size, all four workloads"},
		{"ablations", "design-choice experiments: bin tours, hint folding, page placement"},
		{"modern", "the 1996 technique on a modern 3-level prefetching core"},
	}
	for _, r := range rows {
		fmt.Printf("  %-8s %s\n", r.id, r.what)
	}
}
