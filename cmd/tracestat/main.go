// Command tracestat analyzes a binary address trace without simulating
// any particular cache: one Mattson stack-distance pass yields the
// fully-associative LRU miss-ratio curve for every capacity at once,
// plus footprint and reference-mix statistics. Useful for answering the
// paper's §4.5 question — how big can a scheduling block get before a
// given cache stops absorbing its working set — directly from a trace.
//
// The trace is preloaded and decoded through the sharded zero-copy
// reader: a timed decode-only pass across -workers workers reports the
// wire-speed throughput (how fast the trace can be turned back into
// references, independent of any analysis), then the analysis pass
// replays the same in-memory image in file order. Version-1 traces fall
// back to the serial decoder automatically.
//
// Usage:
//
//	tracestat [-line 128] [-kind all|data|ifetch] [-workers N] [-mmap]
//	          [-slices N] trace-file (or - for stdin)
//
// -mmap maps the trace file read-only instead of reading it into memory
// (falling back transparently where mmap is unavailable): opening a
// multi-gigabyte trace costs an index scan, not a copy. -slices N adds a
// timed fan-out pass that routes decoded references by line address to N
// concurrent per-slice counting consumers — the hand-off machinery
// sim.ShardedHierarchy uses for parallel cache simulation — and verifies
// the merged tally against the decode-only pass.
//
// Produce traces with examples/tracegen or any trace.Writer.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"threadsched/internal/stackdist"
	"threadsched/internal/trace"
)

func main() {
	lineSize := flag.Uint64("line", 128, "cache line size in bytes (power of two)")
	kind := flag.String("kind", "data", "references to analyze: all, data, ifetch")
	workers := flag.Int("workers", 0, "sharded decode worker count (0 = GOMAXPROCS, 1 = serial)")
	useMmap := flag.Bool("mmap", false, "memory-map the trace file instead of reading it into memory")
	slices := flag.Int("slices", 0, "time an address-fanned decode across N slice consumers (0 = skip)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestat [flags] trace-file")
		flag.Usage()
		os.Exit(2)
	}
	if *lineSize == 0 || *lineSize&(*lineSize-1) != 0 {
		fatal("line size %d is not a power of two", *lineSize)
	}
	keep, err := kindFilter(*kind)
	if err != nil {
		fatal("%v", err)
	}

	var f *trace.MemFile
	if name := flag.Arg(0); name == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal("reading stdin: %v", err)
		}
		f, err = trace.NewMemFile(data)
		if err != nil {
			fatal("%v", err)
		}
	} else if *useMmap {
		f, err = trace.OpenMemFileMmap(name)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
	} else {
		f, err = trace.LoadFile(name)
		if err != nil {
			fatal("%v", err)
		}
	}

	// Decode-only pass: every byte checksummed, every record
	// materialized, nothing analyzed — the trace's wire-speed ceiling.
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	counts, err := f.CountRefs(w)
	if err != nil {
		fatal("reading trace: %v", err)
	}
	decodeWall := time.Since(start)

	// Optional sliced fan-out pass: decoded references route by line
	// address to per-slice counting consumers over the SPSC slice queues.
	// The merged tally must match the decode-only pass exactly.
	var slicedWall time.Duration
	if *slices > 1 {
		shift := uint(0)
		for l := *lineSize; l > 1; l >>= 1 {
			shift++
		}
		start = time.Now()
		merged, err := slicedTally(f, w, *slices, shift)
		if err != nil {
			fatal("reading trace: %v", err)
		}
		slicedWall = time.Since(start)
		if merged != counts {
			fatal("sliced fan-out diverged: %+v vs %+v", merged, counts)
		}
	}

	ana := stackdist.New(*lineSize)
	if err := f.ForEachBatch(w, func(refs []trace.Ref) error {
		for i := range refs {
			if keep(refs[i]) {
				ana.Record(refs[i])
			}
		}
		return nil
	}); err != nil {
		fatal("reading trace: %v", err)
	}

	fmt.Printf("trace: %d references (ifetch %d, load %d, store %d)\n",
		counts.Total(), counts.IFetches(), counts.Loads(), counts.Stores())
	fmt.Printf("decode: v%d, %d chunks, %d bytes; %.0f refs/sec decode-only (%d workers, %s)\n",
		f.Version(), f.Chunks(), f.Size(),
		float64(counts.Total())/decodeWall.Seconds(), w, decodeWall.Round(time.Microsecond))
	if slicedWall > 0 {
		fmt.Printf("sliced: %.0f refs/sec through %d slice consumers (%d workers, %s; tally verified)\n",
			float64(counts.Total())/slicedWall.Seconds(), *slices, w, slicedWall.Round(time.Microsecond))
	}
	fmt.Printf("analyzed (%s): %d refs, footprint %d lines = %s\n",
		*kind, ana.Refs(), ana.Distinct(), bytesStr(ana.Distinct()**lineSize))
	fmt.Printf("\nfully-associative LRU miss-ratio curve (line %dB):\n", *lineSize)
	fmt.Printf("  %12s  %12s  %8s\n", "capacity", "misses", "ratio")
	for _, p := range ana.Curve() {
		fmt.Printf("  %12s  %12d  %7.2f%%\n", bytesStr(p.CacheBytes), p.Misses, 100*p.Ratio)
	}
}

// slicedTally fans the trace out by line address (addr >> shift) to
// slices concurrent counting consumers and returns the merged tally —
// which must equal a serial count, whatever the routing.
func slicedTally(f *trace.MemFile, workers, slices int, shift uint) (trace.Counts, error) {
	tallies := make([]trace.Counts, slices)
	err := f.ForEachSliced(workers, slices,
		func(fan *trace.SliceFan, refs []trace.Ref) error {
			n := fan.Slices()
			for i := range refs {
				fan.Emit(int(refs[i].Addr>>shift)%n, refs[i])
			}
			return nil
		},
		func(slice int, refs []trace.Ref) error {
			tallies[slice].RecordBatch(refs)
			return nil
		})
	var merged trace.Counts
	for i := range tallies {
		merged.Add(tallies[i])
	}
	return merged, err
}

func kindFilter(kind string) (func(trace.Ref) bool, error) {
	switch kind {
	case "all":
		return func(trace.Ref) bool { return true }, nil
	case "data":
		return func(r trace.Ref) bool { return r.Kind != trace.IFetch }, nil
	case "ifetch":
		return func(r trace.Ref) bool { return r.Kind == trace.IFetch }, nil
	default:
		return nil, fmt.Errorf("unknown -kind %q (want all, data, or ifetch)", kind)
	}
}

func bytesStr(b uint64) string {
	switch {
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dM", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dK", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracestat: "+format+"\n", args...)
	os.Exit(1)
}
