package main

import (
	"testing"

	"threadsched/internal/trace"
)

func TestKindFilter(t *testing.T) {
	load := trace.Ref{Kind: trace.Load}
	fetch := trace.Ref{Kind: trace.IFetch}
	all, err := kindFilter("all")
	if err != nil || !all(load) || !all(fetch) {
		t.Error("all filter")
	}
	data, err := kindFilter("data")
	if err != nil || !data(load) || data(fetch) {
		t.Error("data filter")
	}
	ifetch, err := kindFilter("ifetch")
	if err != nil || ifetch(load) || !ifetch(fetch) {
		t.Error("ifetch filter")
	}
	if _, err := kindFilter("bogus"); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestBytesStr(t *testing.T) {
	cases := map[uint64]string{
		100:     "100B",
		1 << 10: "1K",
		1 << 20: "1M",
		3 << 20: "3M",
		1500:    "1500B",
	}
	for in, want := range cases {
		if got := bytesStr(in); got != want {
			t.Errorf("bytesStr(%d) = %q, want %q", in, got, want)
		}
	}
}
