package main

import (
	"bytes"
	"testing"

	"threadsched/internal/trace"
)

func TestKindFilter(t *testing.T) {
	load := trace.Ref{Kind: trace.Load}
	fetch := trace.Ref{Kind: trace.IFetch}
	all, err := kindFilter("all")
	if err != nil || !all(load) || !all(fetch) {
		t.Error("all filter")
	}
	data, err := kindFilter("data")
	if err != nil || !data(load) || data(fetch) {
		t.Error("data filter")
	}
	ifetch, err := kindFilter("ifetch")
	if err != nil || ifetch(load) || !ifetch(fetch) {
		t.Error("ifetch filter")
	}
	if _, err := kindFilter("bogus"); err == nil {
		t.Error("bogus kind accepted")
	}
}

// TestSlicedTally: the fanned-out count equals the serial count at any
// slice and worker mix.
func TestSlicedTally(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	rng := uint64(11)
	var want trace.Counts
	for i := 0; i < 30000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		r := trace.Ref{Kind: trace.Kind(rng >> 62 % 3), Addr: rng >> 24, Size: 8}
		w.Record(r)
		want.Record(r)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := trace.NewMemFile(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, slices := range []int{2, 5} {
		for _, workers := range []int{1, 4} {
			got, err := slicedTally(f, workers, slices, 7)
			if err != nil {
				t.Fatalf("slices=%d workers=%d: %v", slices, workers, err)
			}
			if got != want {
				t.Fatalf("slices=%d workers=%d: tally %+v, want %+v", slices, workers, got, want)
			}
		}
	}
}

func TestBytesStr(t *testing.T) {
	cases := map[uint64]string{
		100:     "100B",
		1 << 10: "1K",
		1 << 20: "1M",
		3 << 20: "3M",
		1500:    "1500B",
	}
	for in, want := range cases {
		if got := bytesStr(in); got != want {
			t.Errorf("bytesStr(%d) = %q, want %q", in, got, want)
		}
	}
}
