// Package tables renders experiment results as aligned text tables and
// records the paper's published numbers (Tables 1–9 and Figure 4) so every
// harness run can print paper-vs-measured side by side.
package tables

import (
	"fmt"
	"io"
	"strings"
)

// Table is a renderable result table.
type Table struct {
	// ID is the experiment identifier ("Table 2", "Figure 4").
	ID string
	// Title is the caption.
	Title string
	// Columns are the header cells; Columns[0] labels the row-name column.
	Columns []string
	// Rows are the body cells; each row must have len(Columns) cells.
	Rows [][]string
	// Notes are free-form lines printed under the table.
	Notes []string
	// Metrics are named machine-readable quantities attached to the
	// table (bins used, threads per bin, modelled seconds, …); the text
	// renderers ignore them, the JSON benchmark record carries them.
	Metrics map[string]float64
}

// AddRow appends a row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// AddMetric records a named machine-readable quantity.
func (t *Table) AddMetric(name string, value float64) {
	if t.Metrics == nil {
		t.Metrics = make(map[string]float64)
	}
	t.Metrics[name] = value
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "%s: %s\n", t.ID, t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i == 0 {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	total := 2
	for _, w := range widths {
		total += w + 2
	}
	fmt.Fprintf(w, "  %s\n", strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// RenderCSV writes the table as RFC-4180-style CSV (header row first,
// notes as trailing comment lines), for plotting the figures.
func (t *Table) RenderCSV(w io.Writer) {
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	header := append([]string(nil), t.Columns...)
	if len(header) > 0 && header[0] == "" {
		header[0] = "row"
	}
	writeRow(header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

// Seconds formats a duration-in-seconds value the way the paper's timing
// tables do.
func Seconds(s float64) string { return fmt.Sprintf("%.2f", s) }

// Thousands formats a count in thousands, the unit of the paper's miss
// tables.
func Thousands(v uint64) string { return fmt.Sprintf("%d", (v+500)/1000) }

// Rate formats a percentage with one decimal, as in the miss tables.
func Rate(r float64) string { return fmt.Sprintf("%.1f", r) }

// Ratio formats a speedup/shrink factor.
func Ratio(num, den float64) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", num/den)
}
