package tables

import (
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tb := &Table{
		ID:      "Table X",
		Title:   "demo",
		Columns: []string{"", "one", "two"},
	}
	tb.AddRow("short", "1", "2")
	tb.AddRow("a much longer label", "100", "20000")
	tb.AddNote("note %d", 7)
	out := tb.String()
	if !strings.Contains(out, "Table X: demo") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "note: note 7") {
		t.Errorf("missing note:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + separator + 2 rows + note = 5 lines.
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Data rows must be equal width (aligned columns): title, columns,
	// separator, then the two rows.
	if len(lines[3]) != len(lines[4]) {
		t.Errorf("rows not aligned:\n%q\n%q", lines[3], lines[4])
	}
}

func TestRenderCSV(t *testing.T) {
	tb := &Table{
		ID:      "T",
		Title:   "demo",
		Columns: []string{"", "a", "b"},
	}
	tb.AddRow("plain", "1", "2")
	tb.AddRow("needs, quoting", `has "quotes"`, "3")
	tb.AddNote("a note")
	var sb strings.Builder
	tb.RenderCSV(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "row,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "plain,1,2" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != `"needs, quoting","has ""quotes""",3` {
		t.Errorf("row 2 = %q", lines[2])
	}
	if lines[3] != "# a note" {
		t.Errorf("note = %q", lines[3])
	}
}

func TestAddRowPads(t *testing.T) {
	tb := &Table{Columns: []string{"", "a", "b"}}
	tb.AddRow("only-name")
	if len(tb.Rows[0]) != 3 {
		t.Fatalf("row not padded: %v", tb.Rows[0])
	}
	tb.AddRow("x", "1", "2", "overflow")
	if len(tb.Rows[1]) != 3 {
		t.Fatalf("row not truncated: %v", tb.Rows[1])
	}
}

func TestFormatters(t *testing.T) {
	if Seconds(1.234) != "1.23" {
		t.Error("Seconds")
	}
	if Thousands(1499) != "1" || Thousands(1500) != "2" || Thousands(0) != "0" {
		t.Errorf("Thousands: %s %s %s", Thousands(1499), Thousands(1500), Thousands(0))
	}
	if Rate(3.14159) != "3.1" {
		t.Error("Rate")
	}
	if Ratio(10, 4) != "2.50x" {
		t.Error("Ratio")
	}
	if Ratio(1, 0) != "-" {
		t.Error("Ratio by zero")
	}
}

func TestPaperDataRowOrdersComplete(t *testing.T) {
	cases := []struct {
		order []string
		data  map[string]MissRow
	}{
		{Table3Order, PaperTable3},
		{Table5Order, PaperTable5},
		{Table7Order, PaperTable7},
		{Table9Order, PaperTable9},
	}
	for i, c := range cases {
		if len(c.order) != len(c.data) {
			t.Errorf("case %d: order has %d entries, data %d", i, len(c.order), len(c.data))
		}
		for _, name := range c.order {
			if _, ok := c.data[name]; !ok {
				t.Errorf("case %d: order name %q missing from data", i, name)
			}
		}
	}
	for _, name := range Table2Order {
		if _, ok := PaperTable2[name]; !ok {
			t.Errorf("Table2 order name %q missing", name)
		}
	}
	for _, tbl := range []map[string]map[string]float64{PaperTable2, PaperTable4, PaperTable6, PaperTable8} {
		for variant, machines := range tbl {
			for _, m := range []string{"R8000", "R10000"} {
				if machines[m] <= 0 {
					t.Errorf("%s missing %s time", variant, m)
				}
			}
		}
	}
}

func TestFigure4BlockSizesSpanPaperRange(t *testing.T) {
	if Figure4BlockSizes[0] != 64<<10 {
		t.Errorf("first block size %d, want 64K", Figure4BlockSizes[0])
	}
	if Figure4BlockSizes[len(Figure4BlockSizes)-1] != 8<<20 {
		t.Errorf("last block size %d, want 8M", Figure4BlockSizes[len(Figure4BlockSizes)-1])
	}
	for i := 1; i < len(Figure4BlockSizes); i++ {
		if Figure4BlockSizes[i] != 2*Figure4BlockSizes[i-1] {
			t.Errorf("block sizes not doubling at %d", i)
		}
	}
}
