package tables

// The paper's published results, transcribed from Philbin et al., ASPLOS
// 1996. Timing values are CPU seconds; miss-table values are thousands of
// events, as printed.

// PaperTable1 is Table 1: thread overhead in microseconds.
var PaperTable1 = struct {
	Fork, Run, Total, L2Miss map[string]float64
}{
	Fork:   map[string]float64{"R8000": 1.38, "R10000": 0.95},
	Run:    map[string]float64{"R8000": 0.22, "R10000": 0.14},
	Total:  map[string]float64{"R8000": 1.60, "R10000": 1.09},
	L2Miss: map[string]float64{"R8000": 1.06, "R10000": 0.85},
}

// MissRow is one variant's row of a miss-simulation table (thousands).
type MissRow struct {
	IFetches   uint64
	DataRefs   uint64
	L1Misses   uint64
	L1Rate     float64
	L2Misses   uint64
	L2Rate     float64
	Compulsory uint64
	Capacity   uint64
	Conflict   uint64
}

// PaperTable2 is Table 2: matrix multiply times (seconds), n = 1024.
var PaperTable2 = map[string]map[string]float64{
	"Interchanged":       {"R8000": 102.98, "R10000": 36.63},
	"Transposed":         {"R8000": 95.06, "R10000": 32.96},
	"Tiled interchanged": {"R8000": 16.61, "R10000": 12.24},
	"Tiled transposed":   {"R8000": 19.73, "R10000": 18.71},
	"Threaded":           {"R8000": 20.32, "R10000": 16.85},
}

// Table2Order is the row order of Table 2.
var Table2Order = []string{
	"Interchanged", "Transposed", "Tiled interchanged", "Tiled transposed", "Threaded",
}

// PaperTable3 is Table 3: matmul references and misses (thousands), R8000.
var PaperTable3 = map[string]MissRow{
	"Untiled":  {IFetches: 5388645, DataRefs: 3222274, L1Misses: 408756, L1Rate: 4.8, L2Misses: 68225, L2Rate: 4.6, Compulsory: 199, Capacity: 68025, Conflict: 0},
	"Tiled":    {IFetches: 2184458, DataRefs: 728256, L1Misses: 215652, L1Rate: 7.4, L2Misses: 738, L2Rate: 0.3, Compulsory: 200, Capacity: 528, Conflict: 10},
	"Threaded": {IFetches: 3929858, DataRefs: 2193690, L1Misses: 414741, L1Rate: 6.8, L2Misses: 1872, L2Rate: 0.4, Compulsory: 299, Capacity: 1311, Conflict: 262},
}

// Table3Order is the row order of Table 3.
var Table3Order = []string{"Untiled", "Tiled", "Threaded"}

// PaperTable4 is Table 4: PDE times (seconds), n = 2049, 5 iterations.
var PaperTable4 = map[string]map[string]float64{
	"Regular":         {"R8000": 9.48, "R10000": 7.80},
	"Cache-conscious": {"R8000": 5.21, "R10000": 5.21},
	"Threaded":        {"R8000": 7.24, "R10000": 4.98},
}

// Table4Order is the row order of Table 4.
var Table4Order = []string{"Regular", "Cache-conscious", "Threaded"}

// PaperTable5 is Table 5: PDE cache misses (thousands), R8000, n = 2049.
var PaperTable5 = map[string]MissRow{
	"Regular":         {IFetches: 303686, DataRefs: 126044, L1Misses: 80767, L1Rate: 18.8, L2Misses: 6038, L2Rate: 5.7, Compulsory: 788, Capacity: 5251, Conflict: 0},
	"Cache-conscious": {IFetches: 277622, DataRefs: 122598, L1Misses: 85040, L1Rate: 21.2, L2Misses: 2888, L2Rate: 2.6, Compulsory: 788, Capacity: 2100, Conflict: 0},
	"Threaded":        {IFetches: 283467, DataRefs: 126385, L1Misses: 94516, L1Rate: 23.1, L2Misses: 3415, L2Rate: 2.9, Compulsory: 789, Capacity: 2627, Conflict: 0},
}

// Table5Order is the row order of Table 5.
var Table5Order = []string{"Regular", "Cache-conscious", "Threaded"}

// PaperTable6 is Table 6: SOR times (seconds), n = 2005, t = 30, s = 18.
var PaperTable6 = map[string]map[string]float64{
	"Untiled":    {"R8000": 30.54, "R10000": 12.81},
	"Hand tiled": {"R8000": 26.90, "R10000": 4.27},
	"Threaded":   {"R8000": 23.10, "R10000": 4.31},
}

// Table6Order is the row order of Table 6.
var Table6Order = []string{"Untiled", "Hand tiled", "Threaded"}

// PaperTable7 is Table 7: SOR references and misses (thousands), R8000.
var PaperTable7 = map[string]MissRow{
	"Untiled":    {IFetches: 1205767, DataRefs: 482042, L1Misses: 90451, L1Rate: 5.4, L2Misses: 7545, L2Rate: 3.6, Compulsory: 251, Capacity: 7294, Conflict: 0},
	"Hand-tiled": {IFetches: 1917178, DataRefs: 703522, L1Misses: 5259, L1Rate: 0.2, L2Misses: 282, L2Rate: 0.2, Compulsory: 268, Capacity: 0, Conflict: 13},
	"Threaded":   {IFetches: 1212039, DataRefs: 483973, L1Misses: 90631, L1Rate: 5.3, L2Misses: 263, L2Rate: 0.1, Compulsory: 258, Capacity: 6, Conflict: 0},
}

// Table7Order is the row order of Table 7.
var Table7Order = []string{"Untiled", "Hand-tiled", "Threaded"}

// PaperTable8 is Table 8: N-body times (seconds), 64,000 bodies, 4 steps.
var PaperTable8 = map[string]map[string]float64{
	"Unthreaded": {"R8000": 153.81, "R10000": 53.22},
	"Threaded":   {"R8000": 148.60, "R10000": 46.34},
}

// Table8Order is the row order of Table 8.
var Table8Order = []string{"Unthreaded", "Threaded"}

// PaperTable9 is Table 9: N-body misses (thousands), R8000, 1 iteration.
var PaperTable9 = map[string]MissRow{
	"Unthreaded": {IFetches: 1820656, DataRefs: 865713, L1Misses: 54313, L1Rate: 2.0, L2Misses: 1674, L2Rate: 0.5, Compulsory: 175, Capacity: 1131, Conflict: 369},
	"Threaded":   {IFetches: 1838089, DataRefs: 872130, L1Misses: 55035, L1Rate: 2.0, L2Misses: 778, L2Rate: 0.2, Compulsory: 190, Capacity: 495, Conflict: 93},
}

// Table9Order is the row order of Table 9.
var Table9Order = []string{"Unthreaded", "Threaded"}

// PaperSchedStats are the scheduler occupancy figures quoted in §4's text.
var PaperSchedStats = map[string]struct {
	Threads, Bins, AvgPerBin int
}{
	"matmul": {Threads: 1048576, Bins: 81, AvgPerBin: 12945},
	"sor":    {Threads: 60120, Bins: 63, AvgPerBin: 954},
	"nbody":  {Threads: 64000, Bins: 46, AvgPerBin: 1391},
}

// Figure4BlockSizes are the block dimension sizes swept in Figure 4
// (bytes): 64K to 8M on the R8000 (2 MB L2).
var Figure4BlockSizes = []uint64{
	64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20,
}

// Figure4Shape records the qualitative content of Figure 4: execution time
// is flat while the block dimension sum stays at or below the L2 size and
// degrades sharply beyond it for L2-sensitive programs (matmul most of
// all).
const Figure4Shape = "flat for block ≤ C, degrading past C; matmul most sensitive"
