package trace

// OpenMemFileMmap is LoadFile with the preload replaced by a read-only
// memory mapping where the platform supports one: the chunk index is
// built over the mapped bytes and decode runs straight out of the page
// cache, so opening a multi-gigabyte trace costs an index scan rather
// than a copy of the whole file into the heap. On platforms without mmap
// support it falls back to LoadFile (read-into-memory) transparently —
// same API, same results, different residency.
//
// Call Close on the returned MemFile when done with a mapped trace; a
// fallback (or LoadFile/NewMemFile) MemFile has a no-op Close. As with
// NewMemFile, the mapping must not be mutated; it is mapped read-only,
// so a stray write faults instead of corrupting the decode.
func OpenMemFileMmap(path string) (*MemFile, error) {
	data, unmap, err := mmapFile(path)
	if err != nil {
		return nil, err
	}
	if unmap == nil {
		// No mapping on this platform (or an empty file, which cannot be
		// mapped): the read-into-memory path is the behaviorally
		// identical fallback.
		return LoadFile(path)
	}
	f, err := NewMemFile(data)
	if err != nil {
		unmap()
		return nil, err
	}
	f.unmap = unmap
	return f, nil
}

// Close releases the MemFile's memory mapping, if it has one. It is
// idempotent and a no-op for MemFiles backed by ordinary memory. The
// MemFile must not be used after Close.
func (f *MemFile) Close() error {
	if f.unmap == nil {
		return nil
	}
	unmap := f.unmap
	f.unmap = nil
	f.data = nil
	f.chunks = nil
	return unmap()
}
