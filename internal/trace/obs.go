package trace

import (
	"time"

	"threadsched/internal/obs"
)

// pipeObs is the pipeline's observability attachment. Producer-side
// metrics (pipe.chunks shipped, pipe.stalls where the ring was full and
// the producer blocked, the pipe.depth ring-occupancy gauge) record on
// the producer's track; the consumer's drain times (pipe.drain_ns, plus
// timeline spans) record on a track of its own so the drain lane shows up
// as a separate row next to the worker rows.
type pipeObs struct {
	o       *obs.Obs
	track   int // producer-side shard
	drainTk int // consumer-side shard and timeline row
	chunks  *obs.Counter
	stalls  *obs.Counter
	depth   *obs.Gauge
	drainNS *obs.Histogram
}

// Observe attaches the observability layer to the pipeline, recording
// producer metrics on the given track, and returns the pipeline. It must
// be called before the first Record/RecordBatch: the consumer goroutine
// reads the attachment only after receiving a chunk, so the channel send
// orders the writes. A nil (or metrics-less) Obs leaves the pipeline in
// its disabled state, whose ship path is the exact pre-observability
// blocking send.
func (p *Pipeline) Observe(o *obs.Obs, track int) *Pipeline {
	if !o.Enabled() {
		return p
	}
	reg := o.Registry()
	p.met = pipeObs{
		o:       o,
		track:   track,
		drainTk: o.AcquireTrack(),
		chunks:  reg.Counter("pipe.chunks"),
		stalls:  reg.Counter("pipe.stalls"),
		depth:   reg.Gauge("pipe.depth"),
		drainNS: reg.Histogram("pipe.drain_ns"),
	}
	o.Timeline().SetTrackName(p.met.drainTk, "pipeline drain")
	return p
}

// send ships one chunk into the ring. The observed path tries a
// non-blocking send first purely to detect back-pressure: a full ring
// counts a stall, then blocks exactly as the disabled path does. With
// WithContext attached, a blocked send also watches the context, so a
// cancelled producer cannot stall indefinitely behind a full ring; once
// cancelled, chunks are discarded.
func (p *Pipeline) send(chunk []Ref) {
	if p.noteCancel() {
		return
	}
	if p.met.o == nil {
		p.sendBlocking(chunk)
		return
	}
	sent := true
	select {
	case p.ch <- chunk:
	default:
		p.met.stalls.Inc(p.met.track)
		sent = p.sendBlocking(chunk)
	}
	if !sent {
		return
	}
	p.met.chunks.Inc(p.met.track)
	p.met.depth.Set(p.met.track, uint64(len(p.ch)))
}

// sendBlocking parks the producer until the ring has room — or, with a
// context attached, until cancellation, which latches the discard state
// and drops the chunk.
func (p *Pipeline) sendBlocking(chunk []Ref) bool {
	if p.ctx == nil {
		p.ch <- chunk
		return true
	}
	select {
	case p.ch <- chunk:
		return true
	case <-p.ctx.Done():
		p.noteCancel()
		return false
	}
}

// drainChunk delivers one chunk to dst on the consumer side, timing it
// when observed.
func (p *Pipeline) drainChunk(chunk []Ref) {
	if p.met.o == nil {
		RecordBatch(p.dst, chunk)
		return
	}
	start := time.Now()
	sp := p.met.o.Timeline().Begin(p.met.drainTk, "pipe-drain")
	RecordBatch(p.dst, chunk)
	sp.End()
	p.met.drainNS.Observe(p.met.drainTk, uint64(time.Since(start)))
}
