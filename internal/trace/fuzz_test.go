package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader: arbitrary input bytes must never panic the decoder — they
// either decode as records or produce an error. Valid encodings round-trip
// through the seed corpus.
func FuzzReader(f *testing.F) {
	// Seeds: a valid small trace, truncations of it, and garbage.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Record(Ref{Kind: Load, Addr: 0x1000, Size: 8})
	w.Record(Ref{Kind: Store, Addr: 0x1008, Size: 8})
	w.Record(Ref{Kind: IFetch, Addr: 0x40_0000, Size: 4})
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:5])
	f.Add([]byte(Magic))
	f.Add([]byte("GTRC\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte{})
	f.Add([]byte("not a trace at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 1_000_000; i++ {
			_, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // any error is acceptable; panics are not
			}
		}
		t.Fatal("reader produced implausibly many records without EOF")
	})
}

// FuzzShardedDecode: the sharded decoder must agree with the serial
// Reader on arbitrary input — same records delivered in the same order
// when both succeed, a typed error when either fails, never a panic or a
// wedge. The serial reader is the oracle; divergence is the bug class
// the prefix-sum base fixup could introduce.
func FuzzShardedDecode(f *testing.F) {
	refs := make([]Ref, 2*DefaultChunk+37)
	rng := uint64(11)
	for i := range refs {
		rng = rng*6364136223846793005 + 1442695040888963407
		refs[i] = Ref{Kind: Kind(rng >> 62 % 3), Addr: rng >> 16, Size: 8}
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.RecordBatch(refs)
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid, uint32(0), byte(0))
	f.Add(valid, uint32(HeaderSize), byte(0x01))
	f.Add(valid, uint32(len(valid)-1), byte(0xff))
	f.Add(valid[:len(valid)/2], uint32(0), byte(0))
	f.Add([]byte(Magic), uint32(0), byte(0))
	f.Add([]byte{}, uint32(0), byte(0))

	f.Fuzz(func(t *testing.T, data []byte, off uint32, xor byte) {
		data = append([]byte(nil), data...)
		if len(data) > 0 {
			data[int(off)%len(data)] ^= xor
		}
		var serial []Ref
		serialErr := NewReader(bytes.NewReader(data)).ForEach(func(r Ref) error {
			serial = append(serial, r)
			return nil
		})
		mf, err := NewMemFile(data)
		if err != nil {
			// The index scan may reject what the serial reader also
			// rejects; it must never reject what decodes cleanly.
			if serialErr == nil {
				t.Fatalf("NewMemFile rejected a serially-decodable trace: %v", err)
			}
			return
		}
		var sharded []Ref
		shardErr := mf.ForEachBatch(4, func(refs []Ref) error {
			sharded = append(sharded, refs...)
			return nil
		})
		if (serialErr == nil) != (shardErr == nil) {
			t.Fatalf("oracle disagreement: serial err = %v, sharded err = %v", serialErr, shardErr)
		}
		if serialErr != nil {
			return // both detected damage; exact sentinel may differ
		}
		if len(sharded) != len(serial) {
			t.Fatalf("sharded decoded %d records, serial %d", len(sharded), len(serial))
		}
		for i := range serial {
			if sharded[i] != serial[i] {
				t.Fatalf("record %d: sharded %+v, serial %+v", i, sharded[i], serial[i])
			}
		}
	})
}

// FuzzChunkTrailer: mutating any single byte of a valid chunked trace —
// chunk framing, payload, count, checksums, or the trailer — must either
// be detected as an error or leave the decoded stream exactly intact
// (the mutation was a no-op). Silently decoding different records is the
// failure mode the chunk trailers exist to prevent.
func FuzzChunkTrailer(f *testing.F) {
	refs := make([]Ref, 2*DefaultChunk+37)
	rng := uint64(5)
	for i := range refs {
		rng = rng*6364136223846793005 + 1442695040888963407
		refs[i] = Ref{Kind: Kind(rng >> 62 % 3), Addr: rng >> 16, Size: 8}
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.RecordBatch(refs)
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	// Seed interesting positions: first chunk header, both chunk
	// trailers, and the file trailer.
	f.Add(uint32(HeaderSize), byte(0x01))
	f.Add(uint32(HeaderSize), byte(0x80))
	f.Add(uint32(len(valid)-1), byte(0xff))
	f.Add(uint32(len(valid)-5), byte(0x01))
	f.Add(uint32(len(valid)/2), byte(0x10))

	f.Fuzz(func(t *testing.T, off uint32, xor byte) {
		data := append([]byte(nil), valid...)
		pos := int(off) % len(data)
		data[pos] ^= xor
		// The header carries no checksum: mutating it may legitimately
		// reinterpret the body (e.g. as version 1), so the oracle below
		// only applies to body mutations.
		mutatedBody := xor != 0 && pos >= HeaderSize
		r := NewReader(bytes.NewReader(data))
		n := 0
		for i := 0; i < len(data); i++ {
			ref, err := r.Read()
			if err == io.EOF {
				if mutatedBody {
					t.Fatalf("mutation at %d (xor %#x) decoded cleanly", pos, xor)
				}
				if xor == 0 && n != len(refs) {
					t.Fatalf("decoded %d records, want %d", n, len(refs))
				}
				return
			}
			if err != nil {
				return // detected, as required
			}
			if mutatedBody || xor == 0 {
				// Records before a detected error must match the
				// original prefix: chunks verify before they decode.
				if n >= len(refs) {
					t.Fatalf("mutation at %d (xor %#x) grew the stream", pos, xor)
				}
				if ref != refs[n] {
					t.Fatalf("mutation at %d (xor %#x): record %d = %+v, want %+v",
						pos, xor, n, ref, refs[n])
				}
			}
			n++
		}
		t.Fatal("reader produced implausibly many records without EOF")
	})
}
