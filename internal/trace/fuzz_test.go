package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader: arbitrary input bytes must never panic the decoder — they
// either decode as records or produce an error. Valid encodings round-trip
// through the seed corpus.
func FuzzReader(f *testing.F) {
	// Seeds: a valid small trace, truncations of it, and garbage.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Record(Ref{Kind: Load, Addr: 0x1000, Size: 8})
	w.Record(Ref{Kind: Store, Addr: 0x1008, Size: 8})
	w.Record(Ref{Kind: IFetch, Addr: 0x40_0000, Size: 4})
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:5])
	f.Add([]byte(Magic))
	f.Add([]byte("GTRC\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte{})
	f.Add([]byte("not a trace at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 1_000_000; i++ {
			_, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // any error is acceptable; panics are not
			}
		}
		t.Fatal("reader produced implausibly many records without EOF")
	})
}
