package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, refs []Ref) []Ref {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range refs {
		w.Record(r)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if w.Count() != uint64(len(refs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(refs))
	}
	r := NewReader(&buf)
	var got []Ref
	if err := r.ForEach(func(ref Ref) error { got = append(got, ref); return nil }); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	return got
}

func TestFileRoundTripBasic(t *testing.T) {
	refs := []Ref{
		{Kind: IFetch, Addr: 0x1000_0000, Size: 4},
		{Kind: Load, Addr: 0x2000_0008, Size: 8},
		{Kind: Load, Addr: 0x2000_0010, Size: 8},
		{Kind: Store, Addr: 0x3000_0000, Size: 8},
		{Kind: Load, Addr: 0x1fff_fff8, Size: 4}, // backwards delta
		{Kind: IFetch, Addr: 0x1000_0004, Size: 4},
	}
	got := roundTrip(t, refs)
	if len(got) != len(refs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], refs[i])
		}
	}
}

func TestFileEmptyTrace(t *testing.T) {
	got := roundTrip(t, nil)
	if len(got) != 0 {
		t.Fatalf("decoded %d records from empty trace", len(got))
	}
}

func TestFileCompactness(t *testing.T) {
	// A sequential sweep should cost only a few bytes per reference.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 10000
	for i := 0; i < n; i++ {
		w.Record(Ref{Kind: Load, Addr: uint64(0x1000_0000 + 8*i), Size: 8})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	perRef := float64(buf.Len()) / n
	if perRef > 4 {
		t.Errorf("sequential sweep costs %.1f bytes/ref, want <= 4", perRef)
	}
}

func TestReaderBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOPE\x01\x00\x08\x00")))
	if _, err := r.Read(); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestReaderBadVersion(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte(Magic + "\x7f")))
	if _, err := r.Read(); err == nil {
		t.Fatal("expected error for bad version")
	}
}

func TestReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Record(Ref{Kind: Load, Addr: 0x1234, Size: 8})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop the last byte off the trailer.
	data := buf.Bytes()[:buf.Len()-1]
	r := NewReader(bytes.NewReader(data))
	err := r.ForEach(func(Ref) error { return nil })
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestReaderEmptyInput(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.Read(); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestWriterRejectsBadKind(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Record(Ref{Kind: Kind(200), Addr: 1, Size: 1})
	if err := w.Close(); err == nil {
		t.Fatal("expected error after recording invalid kind")
	}
}

// Property: any reference stream round-trips exactly.
func TestFileRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		refs := make([]Ref, int(n))
		for i := range refs {
			refs[i] = Ref{
				Kind: Kind(rng.Intn(3)),
				Addr: rng.Uint64(),
				Size: uint8(1 << rng.Intn(4)),
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range refs {
			w.Record(r)
		}
		if w.Close() != nil {
			return false
		}
		rd := NewReader(&buf)
		for i := range refs {
			got, err := rd.Read()
			if err != nil || got != refs[i] {
				return false
			}
		}
		_, err := rd.Read()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
