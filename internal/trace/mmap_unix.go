//go:build unix

package trace

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mmapFile maps path read-only. A nil unmap with a nil error means the
// file cannot be mapped on this platform or is empty; the caller falls
// back to reading it into memory.
func mmapFile(path string) (data []byte, unmap func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil, nil // mmap(2) rejects zero-length mappings
	}
	if size > math.MaxInt {
		return nil, nil, fmt.Errorf("trace: %s: %d bytes exceeds the addressable mapping size", path, size)
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: mmap %s: %w", path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
