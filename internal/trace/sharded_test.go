package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"threadsched/internal/fault"
)

// shardedCollect decodes data through the sharded path with the given
// worker count and returns the delivered sequence.
func shardedCollect(t *testing.T, data []byte, workers int) []Ref {
	t.Helper()
	f, err := NewMemFile(data)
	if err != nil {
		t.Fatal(err)
	}
	var got []Ref
	if err := f.ForEachBatch(workers, func(refs []Ref) error {
		got = append(got, refs...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestShardedMatchesSerial: the differential oracle — the sharded decode
// must deliver a sequence bit-identical to the serial Reader's, at every
// worker count, across chunk-boundary-straddling delta chains.
func TestShardedMatchesSerial(t *testing.T) {
	refs := integrityRefs(3*frameRecs + 129)
	data := encodeTrace(t, refs)
	want, err := decodeAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(refs) {
		t.Fatalf("serial oracle decoded %d records, want %d", len(want), len(refs))
	}
	for _, workers := range []int{0, 1, 2, 3, 4, 8, 16} {
		got := shardedCollect(t, data, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: decoded %d records, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: record %d = %+v, want %+v (sharded decode diverged)",
					workers, i, got[i], want[i])
			}
		}
	}
}

// TestShardedIndex: the chunk index reflects the file's actual geometry.
func TestShardedIndex(t *testing.T) {
	n := 2*frameRecs + 7
	data := encodeTrace(t, integrityRefs(n))
	f, err := NewMemFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Version() != FormatVersion {
		t.Errorf("Version() = %d, want %d", f.Version(), FormatVersion)
	}
	if f.Chunks() != 3 {
		t.Errorf("Chunks() = %d, want 3", f.Chunks())
	}
	if f.Records() != uint64(n) {
		t.Errorf("Records() = %d, want %d", f.Records(), n)
	}
	if f.Size() != len(data) {
		t.Errorf("Size() = %d, want %d", f.Size(), len(data))
	}
}

// TestShardedV1Fallback: version-1 files carry no chunk index; the
// MemFile must fall back to the serial path and still decode identically.
func TestShardedV1Fallback(t *testing.T) {
	refs := integrityRefs(500)
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.WriteByte(1)
	var last [numKinds]uint64
	for _, r := range refs {
		buf.WriteByte(byte(r.Kind))
		buf.WriteByte(r.Size)
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutVarint(tmp[:], int64(r.Addr-last[r.Kind]))
		buf.Write(tmp[:n])
		last[r.Kind] = r.Addr
	}
	f, err := NewMemFile(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if f.Version() != 1 || f.Chunks() != 0 {
		t.Fatalf("v1 file: Version()=%d Chunks()=%d, want 1, 0", f.Version(), f.Chunks())
	}
	got := shardedCollect(t, buf.Bytes(), 4)
	if len(got) != len(refs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], refs[i])
		}
	}
	counts, err := f.CountRefs(4)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Total() != uint64(len(refs)) {
		t.Fatalf("CountRefs total = %d, want %d", counts.Total(), len(refs))
	}
}

// TestShardedCountRefs: the decode-only path tallies exactly what the
// serial Counts recorder tallies, at every worker count.
func TestShardedCountRefs(t *testing.T) {
	refs := integrityRefs(3*frameRecs + 41)
	data := encodeTrace(t, refs)
	var want Counts
	want.RecordBatch(refs)
	f, err := NewMemFile(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4, 7} {
		got, err := f.CountRefs(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Fatalf("workers=%d: counts = %+v, want %+v", workers, got, want)
		}
	}
}

// TestShardedCorruptionTyped: flipping any bit past the header must
// surface a typed error (ErrCorrupt or ErrTruncated) from the sharded
// path, either at index-build or at decode — exactly the integrity
// property the serial reader has. In -short mode a stride samples the
// offsets; the full sweep covers every byte.
func TestShardedCorruptionTyped(t *testing.T) {
	orig := encodeTrace(t, integrityRefs(2*frameRecs+7))
	stride := 1
	if testing.Short() {
		stride = 13
	}
	data := make([]byte, len(orig))
	for off := HeaderSize; off < len(orig); off += stride {
		copy(data, orig)
		data[off] ^= 1 << (off % 8)
		err := shardedTyped(data)
		if err == nil {
			t.Fatalf("bit flip at offset %d went undetected by sharded decode", off)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("bit flip at offset %d: err = %v, want ErrCorrupt or ErrTruncated", off, err)
		}
	}
}

// shardedTyped runs the sharded decode over data and returns whichever
// error the path surfaces (index scan or parallel decode).
func shardedTyped(data []byte) error {
	f, err := NewMemFile(data)
	if err != nil {
		return err
	}
	return f.ForEachBatch(4, func([]Ref) error { return nil })
}

// TestShardedTruncationTyped: cutting the image at any byte past the
// header must surface ErrTruncated, as in the serial reader.
func TestShardedTruncationTyped(t *testing.T) {
	data := encodeTrace(t, integrityRefs(frameRecs+7))
	stride := 1
	if testing.Short() {
		stride = 13
	}
	for cut := HeaderSize; cut < len(data); cut += stride {
		if err := shardedTyped(data[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d/%d: err = %v, want ErrTruncated", cut, len(data), err)
		}
	}
}

// TestShardedHeaderErrors: the MemFile constructor types header damage
// exactly as the serial reader does.
func TestShardedHeaderErrors(t *testing.T) {
	valid := encodeTrace(t, integrityRefs(10))
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrBadMagic},
		{"partial header", valid[:3], ErrTruncated},
		{"bad magic", []byte("NOPE\x02xxxx"), ErrBadMagic},
		{"bad version", append([]byte(Magic), 9), ErrBadVersion},
	}
	for _, tc := range cases {
		if _, err := NewMemFile(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// Data after the trailer is corruption, detected at index build.
	if _, err := NewMemFile(append(append([]byte(nil), valid...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("data after trailer: err = %v, want ErrCorrupt", err)
	}
}

// TestShardedErrorPrefix: when a late chunk is damaged, every chunk
// before it is delivered before the typed error returns — matching the
// serial reader's verified-prefix semantics at chunk granularity.
func TestShardedErrorPrefix(t *testing.T) {
	data := encodeTrace(t, integrityRefs(3*frameRecs+7))
	f, err := NewMemFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Chunks() != 4 {
		t.Fatalf("Chunks() = %d, want 4", f.Chunks())
	}
	// Flip a payload byte of the last chunk (geometry survives, CRC fails).
	last := f.chunks[3]
	data[last.payload] ^= 0x40
	f2, err := NewMemFile(data)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	err = f2.ForEachBatch(4, func(refs []Ref) error {
		delivered += len(refs)
		return nil
	})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if delivered != 3*frameRecs {
		t.Fatalf("delivered %d records before the error, want %d", delivered, 3*frameRecs)
	}

	// CountRefs reports the same damage and returns a zero tally.
	if _, err := f2.CountRefs(4); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("CountRefs err = %v, want ErrCorrupt", err)
	}
}

// TestShardedFnError: an error from the callback stops the decode and is
// returned as-is, with no goroutine wedge behind it.
func TestShardedFnError(t *testing.T) {
	data := encodeTrace(t, integrityRefs(4*frameRecs))
	f, err := NewMemFile(data)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop here")
	calls := 0
	err = f.ForEachBatch(4, func([]Ref) error {
		calls++
		if calls == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("err = %v, want the callback's sentinel", err)
	}
	if calls != 2 {
		t.Fatalf("callback ran %d times after the error, want 2", calls)
	}
}

// TestShardedFaultInjection: deterministic delays at chunk boundaries
// perturb worker completion order; the delivered sequence must stay
// bit-identical and race-clean (this test is in the -race suite).
func TestShardedFaultInjection(t *testing.T) {
	refs := integrityRefs(4*frameRecs + 99)
	data := encodeTrace(t, refs)
	want, err := decodeAll(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 42, 777} {
		f, err := NewMemFile(data)
		if err != nil {
			t.Fatal(err)
		}
		f.Inject(fault.New(fault.Config{
			Seed:  seed,
			Prob:  map[fault.Site]float64{FaultSiteShardChunk: 0.6},
			Delay: 200 * time.Microsecond,
		}))
		var got []Ref
		if err := f.ForEachBatch(4, func(refs []Ref) error {
			got = append(got, refs...)
			return nil
		}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: decoded %d records, want %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: record %d = %+v, want %+v (injection changed results)",
					seed, i, got[i], want[i])
			}
		}
		counts, err := f.CountRefs(4)
		if err != nil {
			t.Fatalf("seed %d: CountRefs: %v", seed, err)
		}
		if counts.Total() != uint64(len(refs)) {
			t.Fatalf("seed %d: CountRefs total = %d, want %d", seed, counts.Total(), len(refs))
		}
	}
}

// TestShardedSingleChunk: files too small to shard (one chunk) take the
// serial fallback and still decode exactly.
func TestShardedSingleChunk(t *testing.T) {
	refs := integrityRefs(17)
	data := encodeTrace(t, refs)
	got := shardedCollect(t, data, 8)
	if len(got) != len(refs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], refs[i])
		}
	}
}
