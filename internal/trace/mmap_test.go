package trace

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestOpenMemFileMmapDifferential: the mapped MemFile must be
// indistinguishable from the read-into-memory one — same geometry, same
// decoded sequence at every worker count.
func TestOpenMemFileMmapDifferential(t *testing.T) {
	refs := integrityRefs(3*frameRecs + 57)
	data := encodeTrace(t, refs)
	path := filepath.Join(t.TempDir(), "trace.gtrc")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenMemFileMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	if mapped.Version() != loaded.Version() || mapped.Chunks() != loaded.Chunks() ||
		mapped.Records() != loaded.Records() || mapped.Size() != loaded.Size() {
		t.Fatalf("geometry differs: mapped v%d/%d chunks/%d recs/%d B, loaded v%d/%d/%d/%d",
			mapped.Version(), mapped.Chunks(), mapped.Records(), mapped.Size(),
			loaded.Version(), loaded.Chunks(), loaded.Records(), loaded.Size())
	}
	for _, workers := range []int{1, 4} {
		var want, got []Ref
		if err := loaded.ForEachBatch(workers, func(refs []Ref) error {
			want = append(want, refs...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := mapped.ForEachBatch(workers, func(refs []Ref) error {
			got = append(got, refs...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: mapped decoded %d records, loaded %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: record %d = %+v, want %+v (mmap decode diverged)",
					workers, i, got[i], want[i])
			}
		}
	}
}

// TestMemFileCloseIdempotent: Close releases the mapping once and is a
// no-op afterwards, and on never-mapped MemFiles.
func TestMemFileCloseIdempotent(t *testing.T) {
	data := encodeTrace(t, integrityRefs(frameRecs+5))
	path := filepath.Join(t.TempDir(), "trace.gtrc")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenMemFileMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mapped.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := mapped.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Close(); err != nil {
		t.Fatalf("Close on heap-backed MemFile: %v", err)
	}
}

// TestOpenMemFileMmapErrors: a missing file errors; a damaged header is
// typed exactly as LoadFile types it.
func TestOpenMemFileMmapErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenMemFileMmap(filepath.Join(dir, "nope.gtrc")); err == nil {
		t.Error("missing file: err = nil")
	}
	bad := filepath.Join(dir, "bad.gtrc")
	if err := os.WriteFile(bad, []byte("NOPE\x02garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMemFileMmap(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: err = %v, want ErrBadMagic", err)
	}
	// Empty files cannot be mapped; the fallback must type the failure the
	// same way LoadFile does.
	empty := filepath.Join(dir, "empty.gtrc")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, errM := OpenMemFileMmap(empty)
	_, errL := LoadFile(empty)
	if !errors.Is(errM, ErrBadMagic) || !errors.Is(errL, ErrBadMagic) {
		t.Errorf("empty file: mmap err = %v, load err = %v, want ErrBadMagic from both", errM, errL)
	}
}
