package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// slicedCollect fans data out by a simple address hash and returns the
// per-slice sequences in delivery order.
func slicedCollect(t *testing.T, data []byte, workers, slices int) [][]Ref {
	t.Helper()
	f, err := NewMemFile(data)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := make([][]Ref, slices)
	err = f.ForEachSliced(workers, slices,
		func(fan *SliceFan, refs []Ref) error {
			for i := range refs {
				fan.Emit(int(refs[i].Addr)%fan.Slices(), refs[i])
			}
			return nil
		},
		func(slice int, refs []Ref) error {
			mu.Lock()
			got[slice] = append(got[slice], refs...)
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestSlicedDifferential: every slice must observe exactly the references
// the serial decode routes to it, in global order — across worker and
// slice counts, with chunk-boundary-straddling delta chains.
func TestSlicedDifferential(t *testing.T) {
	refs := integrityRefs(3*frameRecs + 129)
	data := encodeTrace(t, refs)
	want, err := decodeAll(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		for _, slices := range []int{1, 2, 3, 4, 7} {
			wantSliced := make([][]Ref, slices)
			for _, r := range want {
				s := int(r.Addr) % slices
				wantSliced[s] = append(wantSliced[s], r)
			}
			got := slicedCollect(t, data, workers, slices)
			for s := 0; s < slices; s++ {
				if len(got[s]) != len(wantSliced[s]) {
					t.Fatalf("workers=%d slices=%d: slice %d got %d refs, want %d",
						workers, slices, s, len(got[s]), len(wantSliced[s]))
				}
				for i := range wantSliced[s] {
					if got[s][i] != wantSliced[s][i] {
						t.Fatalf("workers=%d slices=%d: slice %d ref %d = %+v, want %+v (order or content diverged)",
							workers, slices, s, i, got[s][i], wantSliced[s][i])
					}
				}
			}
		}
	}
}

// TestSlicedBadSliceCount: slices < 1 is rejected up front.
func TestSlicedBadSliceCount(t *testing.T) {
	f, err := NewMemFile(encodeTrace(t, integrityRefs(10)))
	if err != nil {
		t.Fatal(err)
	}
	err = f.ForEachSliced(2, 0,
		func(*SliceFan, []Ref) error { return nil },
		func(int, []Ref) error { return nil })
	if err == nil {
		t.Fatal("ForEachSliced accepted 0 slices")
	}
}

// TestSlicedScatterError: an error from the scatter callback stops the
// decode and is returned as-is.
func TestSlicedScatterError(t *testing.T) {
	f, err := NewMemFile(encodeTrace(t, integrityRefs(4*frameRecs)))
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("scatter stop")
	calls := 0
	err = f.ForEachSliced(4, 3,
		func(fan *SliceFan, refs []Ref) error {
			calls++
			if calls == 2 {
				return sentinel
			}
			for i := range refs {
				fan.Emit(0, refs[i])
			}
			return nil
		},
		func(int, []Ref) error { return nil })
	if err != sentinel {
		t.Fatalf("err = %v, want the scatter sentinel", err)
	}
}

// TestSlicedConsumeError: a consumer error stops the fan-out and is
// returned; the coordinator must not deadlock against the failed slice's
// full queue.
func TestSlicedConsumeError(t *testing.T) {
	f, err := NewMemFile(encodeTrace(t, integrityRefs(8*frameRecs)))
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("consume stop")
	err = f.ForEachSliced(4, 2,
		func(fan *SliceFan, refs []Ref) error {
			for i := range refs {
				// Everything to slice 0: its consumer fails on the first
				// buffer, and the coordinator keeps shipping until the
				// failure flag is observed — the drain must absorb it.
				fan.Emit(0, refs[i])
			}
			return nil
		},
		func(slice int, refs []Ref) error { return sentinel })
	if err != sentinel {
		t.Fatalf("err = %v, want the consumer sentinel", err)
	}
}

// TestSlicedConsumerPanic: a panicking consumer is contained and reported
// as *SliceConsumerPanicError naming the slice.
func TestSlicedConsumerPanic(t *testing.T) {
	f, err := NewMemFile(encodeTrace(t, integrityRefs(4*frameRecs)))
	if err != nil {
		t.Fatal(err)
	}
	err = f.ForEachSliced(2, 3,
		func(fan *SliceFan, refs []Ref) error {
			for i := range refs {
				fan.Emit(1, refs[i])
			}
			return nil
		},
		func(slice int, refs []Ref) error {
			panic("consumer exploded")
		})
	var pe *SliceConsumerPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *SliceConsumerPanicError", err, err)
	}
	if pe.Slice != 1 {
		t.Errorf("panic attributed to slice %d, want 1", pe.Slice)
	}
	if pe.Value != "consumer exploded" {
		t.Errorf("panic value = %v, want the consumer's", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
}

// TestSlicedDecodeErrorWins: damage in the trace surfaces as the same
// typed error the serial reader reports, taking precedence over any
// consumer error triggered by the shutdown.
func TestSlicedDecodeErrorWins(t *testing.T) {
	data := encodeTrace(t, integrityRefs(3*frameRecs+7))
	f, err := NewMemFile(data)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the last chunk: geometry survives, CRC fails.
	data[f.chunks[len(f.chunks)-1].payload] ^= 0x40
	f2, err := NewMemFile(data)
	if err != nil {
		t.Fatal(err)
	}
	err = f2.ForEachSliced(4, 2,
		func(fan *SliceFan, refs []Ref) error {
			for i := range refs {
				fan.Emit(int(refs[i].Addr)%2, refs[i])
			}
			return nil
		},
		func(int, []Ref) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestSlicedSingleSlice: slices == 1 degenerates to an ordered hand-off
// to one consumer goroutine; the full sequence must survive intact.
func TestSlicedSingleSlice(t *testing.T) {
	refs := integrityRefs(2*frameRecs + 31)
	data := encodeTrace(t, refs)
	got := slicedCollect(t, data, 4, 1)
	if len(got[0]) != len(refs) {
		t.Fatalf("delivered %d refs, want %d", len(got[0]), len(refs))
	}
	for i := range refs {
		if got[0][i] != refs[i] {
			t.Fatalf("ref %d = %+v, want %+v", i, got[0][i], refs[i])
		}
	}
}

// TestSlicedBufferRecycleClamped: a consumer that maliciously re-grows a
// delivered buffer before it is recycled must not resurrect records —
// the fan re-clamps recycled buffers. The differential check is the
// oracle: totals must match exactly.
func TestSlicedBufferRecycleClamped(t *testing.T) {
	refs := integrityRefs(6 * frameRecs)
	data := encodeTrace(t, refs)
	f, err := NewMemFile(data)
	if err != nil {
		t.Fatal(err)
	}
	var total atomic.Int64
	err = f.ForEachSliced(2, 2,
		func(fan *SliceFan, refs []Ref) error {
			for i := range refs {
				fan.Emit(int(refs[i].Addr)%2, refs[i])
			}
			return nil
		},
		func(slice int, buf []Ref) error {
			total.Add(int64(len(buf)))
			// Re-grow the buffer to full capacity before returning it;
			// stale records must not reappear in later deliveries.
			_ = buf[:cap(buf)]
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != int64(len(refs)) {
		t.Fatalf("consumers saw %d refs, want %d", total.Load(), len(refs))
	}
}

// TestSlicedV1Fallback: version-1 files (serial decode, no chunk index)
// still fan out correctly through the slice queues.
func TestSlicedV1Fallback(t *testing.T) {
	refs := integrityRefs(300)
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.WriteByte(1)
	var last [numKinds]uint64
	for _, r := range refs {
		buf.WriteByte(byte(r.Kind))
		buf.WriteByte(r.Size)
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutVarint(tmp[:], int64(r.Addr-last[r.Kind]))
		buf.Write(tmp[:n])
		last[r.Kind] = r.Addr
	}
	got := slicedCollect(t, buf.Bytes(), 4, 2)
	var n int
	for s := range got {
		n += len(got[s])
		for i, r := range got[s] {
			if int(r.Addr)%2 != s {
				t.Fatalf("slice %d ref %d misrouted: %+v", s, i, r)
			}
		}
	}
	if n != len(refs) {
		t.Fatalf("fan-out delivered %d refs, want %d", n, len(refs))
	}
}
