package trace

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{IFetch: "ifetch", Load: "load", Store: "store", Kind(9): "Kind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestCounts(t *testing.T) {
	var c Counts
	c.Record(Ref{Kind: IFetch, Addr: 0, Size: 4})
	c.Record(Ref{Kind: Load, Addr: 8, Size: 8})
	c.Record(Ref{Kind: Load, Addr: 16, Size: 8})
	c.Record(Ref{Kind: Store, Addr: 24, Size: 8})
	if c.IFetches() != 1 || c.Loads() != 2 || c.Stores() != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.DataRefs() != 3 {
		t.Errorf("DataRefs = %d, want 3", c.DataRefs())
	}
	if c.Total() != 4 {
		t.Errorf("Total = %d, want 4", c.Total())
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{ByKind: [3]uint64{1, 2, 3}}
	b := Counts{ByKind: [3]uint64{10, 20, 30}}
	a.Add(b)
	if a.ByKind != [3]uint64{11, 22, 33} {
		t.Errorf("Add = %v", a.ByKind)
	}
}

func TestTeeForwardsToAll(t *testing.T) {
	var a, b Counts
	tee := Tee{&a, &b}
	tee.Record(Ref{Kind: Store, Addr: 1, Size: 1})
	tee.Record(Ref{Kind: Load, Addr: 2, Size: 1})
	if a != b {
		t.Fatalf("tee recorders diverged: %+v vs %+v", a, b)
	}
	if a.Total() != 2 {
		t.Errorf("total = %d, want 2", a.Total())
	}
}

func TestDiscard(t *testing.T) {
	// Must simply not panic.
	Discard.Record(Ref{Kind: Load, Addr: 42, Size: 8})
}

func TestFilter(t *testing.T) {
	var c Counts
	f := &Filter{Next: &c, Keep: func(r Ref) bool { return r.Kind == Store }}
	f.Record(Ref{Kind: Load, Addr: 1})
	f.Record(Ref{Kind: Store, Addr: 2})
	f.Record(Ref{Kind: IFetch, Addr: 3})
	if c.Total() != 1 || c.Stores() != 1 {
		t.Errorf("filter passed %+v, want exactly one store", c)
	}
}

func TestFuncRecorder(t *testing.T) {
	var got []Ref
	r := FuncRecorder(func(r Ref) { got = append(got, r) })
	r.Record(Ref{Kind: Load, Addr: 7, Size: 8})
	if len(got) != 1 || got[0].Addr != 7 {
		t.Errorf("got %v", got)
	}
}

// Property: counts are invariant under any stream content — total equals
// number of records, and kind totals partition it.
func TestCountsPartitionProperty(t *testing.T) {
	f := func(kinds []uint8, addrs []uint64) bool {
		var c Counts
		n := len(kinds)
		if len(addrs) < n {
			n = len(addrs)
		}
		for i := 0; i < n; i++ {
			c.Record(Ref{Kind: Kind(kinds[i] % 3), Addr: addrs[i], Size: 8})
		}
		return c.Total() == uint64(n) && c.IFetches()+c.Loads()+c.Stores() == c.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
