package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"threadsched/internal/fault"
)

// Sharded zero-copy decode. A version-2 trace is a sequence of
// self-checking chunks, and the per-chunk framing (length, record count,
// CRC32) makes every chunk independently *locatable* by a cheap scan and
// independently *verifiable* by its checksum. The remaining coupling
// between chunks is the delta encoding: each record's address is a delta
// from the previous record of the same kind, and that chain crosses chunk
// boundaries. The sharded reader breaks the chain algebraically instead
// of changing the format: a chunk's records are decoded against
// chunk-local zero bases (address = running delta sum within the chunk),
// each worker reports its chunk's total delta sum per kind, and a serial
// prefix sum over those totals gives every chunk's true base, applied as
// one wrapping add per record at delivery. Addition is associative, so
// the result is bit-identical to the serial decode.
//
// MemFile is the entry point: the file is preloaded (one read, one
// allocation) and the chunk index built by scanning the framing without
// touching payload bytes. Decode then fans out across workers by chunk
// index — CRC verification and varint decoding, the expensive parts, run
// fully in parallel straight out of the file buffer into recycled record
// buffers — while delivery stays in file order on the calling goroutine,
// so order-sensitive consumers (cache hierarchies, stack-distance
// analyzers, re-encoders) observe exactly the serial sequence.

// FaultSiteShardChunk is the fault-injection site the sharded decoder
// checks before decoding each chunk (occurrence index = chunk index).
// Injecting delays here deterministically perturbs worker completion
// order, which is how the race suites stress the ordered-delivery merge.
const FaultSiteShardChunk fault.Site = "trace-shard-chunk"

// chunkSpan locates one verified-decodable chunk inside the file buffer.
type chunkSpan struct {
	start   int // offset of the length varint; the chunk CRC covers from here
	payload int // offset of the first payload byte
	plen    int // payload length in bytes
	count   int // records in the chunk (1..maxFrameRecs, validated at scan)
	crcOff  int // offset of the stored little-endian CRC32
}

// MemFile is a trace file loaded into memory with its chunk index built,
// ready for sharded decoding. The zero value is not usable; construct
// with LoadFile or NewMemFile. A MemFile is immutable after construction
// and safe for concurrent use.
//
// Version-1 files (no framing) carry no index; every MemFile method
// falls back to the serial Reader over the in-memory bytes for them.
type MemFile struct {
	data    []byte
	version byte
	chunks  []chunkSpan
	total   uint64 // trailer record count (v2)
	maxCnt  int    // largest chunk record count, sizes decode buffers
	inj     *fault.Injector
	// unmap releases a memory mapping backing data (OpenMemFileMmap);
	// nil for heap-backed images. See Close.
	unmap func() error
}

// LoadFile preloads the named trace file and builds its chunk index.
// The whole file is resident afterwards; for multi-gigabyte traces on
// memory-constrained hosts, the streaming Reader remains the right tool.
func LoadFile(path string) (*MemFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return NewMemFile(data)
}

// NewMemFile builds the chunk index over an in-memory trace image. The
// scan validates the header, the framing geometry (lengths, counts,
// bounds), and the trailer's total record count; chunk checksums are
// deliberately left to decode time, where they verify in parallel. The
// MemFile aliases data, which the caller must not mutate afterwards.
func NewMemFile(data []byte) (*MemFile, error) {
	f := &MemFile{data: data}
	if len(data) == 0 {
		return nil, fmt.Errorf("trace: missing header: %w", ErrBadMagic)
	}
	if len(data) < HeaderSize {
		return nil, fmt.Errorf("%w: partial header", ErrTruncated)
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	switch v := data[len(Magic)]; v {
	case 1, 2:
		f.version = v
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, data[len(Magic)])
	}
	if f.version == 1 {
		return f, nil // unframed: no index, serial fallback only
	}
	if err := f.scanChunks(); err != nil {
		return nil, err
	}
	return f, nil
}

// memUvarint decodes a uvarint at data[off:], mirroring the streaming
// reader's truncation/overflow diagnostics.
func memUvarint(data []byte, off int, what string) (uint64, int, error) {
	v, n := binary.Uvarint(data[off:])
	switch {
	case n > 0:
		return v, off + n, nil
	case n == 0:
		return 0, 0, fmt.Errorf("%w: EOF in %s", ErrTruncated, what)
	default:
		return 0, 0, fmt.Errorf("%w: varint overflow in %s", ErrCorrupt, what)
	}
}

// scanChunks walks the chunk framing once, recording spans. It reads only
// the frame fields (two varints and the fixed-size CRC per chunk), never
// the payload, so indexing a file costs a few bytes of work per chunk.
func (f *MemFile) scanChunks() error {
	data := f.data
	off := HeaderSize
	var sum uint64
	for {
		start := off
		plen, next, err := memUvarint(data, off, "chunk length")
		if err != nil {
			return err
		}
		off = next
		if plen == 0 {
			total, next, err := memUvarint(data, off, "trailer")
			if err != nil {
				return err
			}
			off = next
			if len(data)-off < 4 {
				return fmt.Errorf("%w: EOF in trailer checksum", ErrTruncated)
			}
			crc := crc32.Checksum(data[start:off], crc32.IEEETable)
			if binary.LittleEndian.Uint32(data[off:]) != crc {
				return fmt.Errorf("%w: trailer checksum mismatch", ErrCorrupt)
			}
			off += 4
			if off != len(data) {
				return fmt.Errorf("%w: data after trailer", ErrCorrupt)
			}
			if total != sum {
				return fmt.Errorf("%w: trailer records %d records, file holds %d",
					ErrCorrupt, total, sum)
			}
			f.total = total
			return nil
		}
		if plen > maxFramePayload {
			return fmt.Errorf("%w: chunk length %d exceeds bound", ErrCorrupt, plen)
		}
		if uint64(len(data)-off) < plen {
			return fmt.Errorf("%w: EOF in chunk payload", ErrTruncated)
		}
		payload := off
		off += int(plen)
		cnt, next, err := memUvarint(data, off, "chunk count")
		if err != nil {
			return err
		}
		off = next
		if cnt == 0 || cnt > maxFrameRecs {
			return fmt.Errorf("%w: chunk record count %d out of range", ErrCorrupt, cnt)
		}
		if len(data)-off < 4 {
			return fmt.Errorf("%w: EOF in chunk checksum", ErrTruncated)
		}
		f.chunks = append(f.chunks, chunkSpan{
			start:   start,
			payload: payload,
			plen:    int(plen),
			count:   int(cnt),
			crcOff:  off,
		})
		off += 4
		sum += cnt
		if int(cnt) > f.maxCnt {
			f.maxCnt = int(cnt)
		}
	}
}

// Inject attaches a deterministic fault injector, checked at the
// FaultSiteShardChunk site once per chunk on the decode workers, and
// returns the MemFile. A nil injector (the default) costs nothing. Like
// everywhere else in the repository, injection perturbs timing only —
// results stay bit-identical, which is exactly what the race suites
// assert.
func (f *MemFile) Inject(in *fault.Injector) *MemFile {
	f.inj = in
	return f
}

// Version reports the file's trace format version.
func (f *MemFile) Version() int { return int(f.version) }

// Chunks reports the number of indexed chunks (zero for version-1 files).
func (f *MemFile) Chunks() int { return len(f.chunks) }

// Records reports the trailer's total record count (zero for version-1
// files, whose format does not carry one).
func (f *MemFile) Records() uint64 { return f.total }

// Size reports the in-memory image size in bytes.
func (f *MemFile) Size() int { return len(f.data) }

// Reader returns a fresh serial Reader over the in-memory image —
// the bit-exactness oracle for the sharded paths, and the fallback for
// version-1 files.
func (f *MemFile) Reader() *Reader {
	return NewReader(bytes.NewReader(f.data))
}

// decodeChunk verifies one chunk's checksum and decodes its records into
// dst (which must hold c.count records) against chunk-local zero bases.
// The returned sums are the chunk's total address delta per kind — the
// carry the prefix-sum fixup threads through to the next chunk.
func (f *MemFile) decodeChunk(c chunkSpan, dst []Ref) (sums [numKinds]uint64, err error) {
	crc := crc32.Checksum(f.data[c.start:c.crcOff], crc32.IEEETable)
	if binary.LittleEndian.Uint32(f.data[c.crcOff:]) != crc {
		return sums, fmt.Errorf("%w: chunk checksum mismatch", ErrCorrupt)
	}
	p := f.data[c.payload : c.payload+c.plen]
	pos := 0
	for i := 0; i < c.count; i++ {
		if pos+2 > len(p) {
			return sums, fmt.Errorf("%w: chunk payload underrun", ErrCorrupt)
		}
		kb, size := p[pos], p[pos+1]
		pos += 2
		if Kind(kb) >= numKinds {
			return sums, fmt.Errorf("%w: %v", ErrCorrupt, errBadKind)
		}
		delta, n := binary.Varint(p[pos:])
		if n <= 0 {
			return sums, fmt.Errorf("%w: bad address delta", ErrCorrupt)
		}
		pos += n
		sums[kb] += uint64(delta)
		dst[i] = Ref{Kind: Kind(kb), Addr: sums[kb], Size: size}
	}
	if pos != len(p) {
		return sums, fmt.Errorf("%w: %d unconsumed chunk bytes", ErrCorrupt, len(p)-pos)
	}
	return sums, nil
}

// shardResult is one decoded chunk in flight from a worker to the merger.
type shardResult struct {
	idx  int
	refs []Ref
	sums [numKinds]uint64
	err  error
}

// ForEachBatch decodes the whole trace across workers (<=0 selects
// GOMAXPROCS) and delivers each chunk's records, in file order, to fn on
// the calling goroutine. The delivered sequence is bit-identical to the
// serial Reader's; only batch boundaries differ (one call per file
// chunk). fn must not retain the slice. A decode error (ErrCorrupt /
// ErrTruncated, typed exactly as the serial Reader types them) is
// returned after every chunk before the damaged one has been delivered;
// an error from fn stops the decode and is returned as-is.
//
// Version-1 files and single-worker calls take the serial path over the
// in-memory image.
func (f *MemFile) ForEachBatch(workers int, fn func([]Ref) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if f.version == 1 || workers == 1 || len(f.chunks) < 2 {
		return f.Reader().ForEachBatch(0, fn)
	}
	if workers > len(f.chunks) {
		workers = len(f.chunks)
	}

	// Bounded in-flight window: every claimed chunk holds a buffer, and
	// the worker on the lowest outstanding chunk always already owns one
	// (buffers are acquired before claiming), so the merger can always
	// make progress and the window can never deadlock.
	window := workers * 2
	free := make(chan []Ref, window)
	for i := 0; i < window; i++ {
		free <- make([]Ref, f.maxCnt)
	}
	results := make(chan shardResult, window)
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				buf := <-free
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(f.chunks) {
					return
				}
				f.inj.MaybeDelay(FaultSiteShardChunk, uint64(i))
				c := f.chunks[i]
				sums, err := f.decodeChunk(c, buf[:c.count])
				if err != nil {
					stop.Store(true)
				}
				results <- shardResult{idx: i, refs: buf[:c.count], sums: sums, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Ordered merge: apply the prefix-sum base fixup and deliver. pending
	// holds out-of-order arrivals; it is bounded by the window.
	var (
		base    [numKinds]uint64
		deliver = 0
		pending = make(map[int]shardResult, window)
		retErr  error
	)
	for res := range results {
		pending[res.idx] = res
		for {
			cur, ok := pending[deliver]
			if !ok {
				break
			}
			delete(pending, deliver)
			deliver++
			if retErr == nil && cur.err != nil {
				retErr = cur.err
				stop.Store(true)
			}
			if retErr == nil {
				refs := cur.refs
				for j := range refs {
					refs[j].Addr += base[refs[j].Kind]
				}
				for k := range base {
					base[k] += cur.sums[k]
				}
				if err := fn(refs); err != nil {
					retErr = err
					stop.Store(true)
				}
			}
			// Recycle even past an error: parked workers may still be
			// waiting on a buffer to notice the stop flag.
			select {
			case free <- cur.refs[:cap(cur.refs)]:
			default:
			}
		}
	}
	return retErr
}

// CountRefs decodes every chunk across workers (<=0 selects GOMAXPROCS)
// without ordered delivery and returns the reference tally by kind: the
// pure wire-speed decode measurement — every byte checksummed, every
// record materialized — with no serial merge on the critical path. The
// error contract matches ForEachBatch, with the earliest damaged chunk
// reported.
func (f *MemFile) CountRefs(workers int) (Counts, error) {
	var counts Counts
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if f.version == 1 || workers == 1 || len(f.chunks) < 2 {
		err := f.Reader().ForEachBatch(0, func(refs []Ref) error {
			counts.RecordBatch(refs)
			return nil
		})
		return counts, err
	}
	if workers > len(f.chunks) {
		workers = len(f.chunks)
	}
	var (
		next   atomic.Int64
		stop   atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
		errIdx = -1
		retErr error
	)
	parts := make([]Counts, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			buf := make([]Ref, f.maxCnt)
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(f.chunks) {
					return
				}
				f.inj.MaybeDelay(FaultSiteShardChunk, uint64(i))
				c := f.chunks[i]
				if _, err := f.decodeChunk(c, buf[:c.count]); err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, retErr = i, err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
				parts[self].RecordBatch(buf[:c.count])
			}
		}(w)
	}
	wg.Wait()
	if retErr != nil {
		return Counts{}, retErr
	}
	for i := range parts {
		counts.Add(parts[i])
	}
	return counts, nil
}
