package trace

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Slice-routed consumption. ForEachBatch parallelizes the *decode* but
// still funnels every reference through one consumer in file order — fine
// when the consumer is cheap, Amdahl's cap when the consumer is the cache
// simulation itself. ForEachSliced removes that cap for consumers that
// partition by address: the caller's scatter function routes each decoded
// reference to one of S slices, and each slice's references are delivered
// — in global file order within the slice — to a consumer goroutine of
// their own over a bounded single-producer single-consumer queue.
//
// The serial section shrinks from "simulate every reference" to "route
// every reference": chunk decode (checksums, varint decoding) fans out
// across workers exactly as in ForEachBatch, the coordinator applies the
// prefix-sum base fixup and appends each reference to its slice's current
// buffer, and the expensive consumption runs on the slice goroutines. One
// producer (the coordinator) and one consumer per queue keep every
// hand-off SPSC; full buffers block the coordinator, so a slow slice
// throttles the whole decode instead of ballooning memory.

// DefaultSliceDepth is the number of in-flight buffers each slice queue
// holds before the coordinator blocks. Like the pipeline ring, it is
// small on purpose: backpressure, not buffering, is the contract.
const DefaultSliceDepth = 4

// SliceConsumerPanicError is the error ForEachSliced reports when a slice
// consumer panicked. References routed to that slice after the panic are
// discarded, not delivered.
type SliceConsumerPanicError struct {
	// Slice is the slice whose consumer panicked.
	Slice int
	// Value is the recovered panic value.
	Value any
	// Stack is the consumer goroutine's stack, captured at recovery.
	Stack []byte
}

// Error describes the panic.
func (e *SliceConsumerPanicError) Error() string {
	return fmt.Sprintf("trace: slice %d consumer panicked: %v", e.Slice, e.Value)
}

// errSliceStop is the internal sentinel the coordinator uses to stop the
// decode once a consumer has failed; it is never returned to the caller.
var errSliceStop = fmt.Errorf("trace: slice consumer failed")

// SliceFan is the scatter side of ForEachSliced: the coordinator hands it
// to the caller's scatter function, which routes references into slices
// with Emit. A SliceFan is only valid inside the scatter callback and
// must not be used concurrently or retained.
type SliceFan struct {
	slices int
	batch  int
	cur    [][]Ref
	queues []chan []Ref
	frees  []chan []Ref
	failed atomic.Bool
}

func newSliceFan(slices, batch int) *SliceFan {
	f := &SliceFan{
		slices: slices,
		batch:  batch,
		cur:    make([][]Ref, slices),
		queues: make([]chan []Ref, slices),
		frees:  make([]chan []Ref, slices),
	}
	for s := 0; s < slices; s++ {
		f.queues[s] = make(chan []Ref, DefaultSliceDepth)
		// Capacity bounds the buffers ever minted for the slice (queue
		// depth + the coordinator's fill buffer + one being consumed), so
		// a free-list send can never block.
		f.frees[s] = make(chan []Ref, DefaultSliceDepth+2)
	}
	return f
}

// Slices reports the fan's slice count. Emit accepts 0 <= slice < Slices().
func (f *SliceFan) Slices() int { return f.slices }

// Emit appends one reference to a slice's current buffer, shipping the
// buffer to the slice's consumer when full. A full queue blocks — the
// slice consumers always drain, even after a failure, so the coordinator
// cannot deadlock against a dead consumer.
func (f *SliceFan) Emit(slice int, r Ref) {
	buf := f.cur[slice]
	if buf == nil {
		buf = f.next(slice)
	}
	buf = append(buf, r)
	if len(buf) == cap(buf) {
		f.queues[slice] <- buf
		buf = nil
	}
	f.cur[slice] = buf
}

// next returns an empty buffer for a slice: recycled when one is free,
// freshly allocated during warmup. Recycled buffers are re-clamped to
// zero length here regardless of how they were returned — the same
// defense the BufferExchanger consumers apply — so a stale length can
// never resurrect previously consumed records.
func (f *SliceFan) next(slice int) []Ref {
	select {
	case b := <-f.frees[slice]:
		return b[:0]
	default:
		return make([]Ref, 0, f.batch)
	}
}

// flush ships every partial buffer and closes the queues; consumers see
// end-of-stream once they drain what is in flight.
func (f *SliceFan) flush() {
	for s := 0; s < f.slices; s++ {
		if len(f.cur[s]) > 0 {
			f.queues[s] <- f.cur[s]
			f.cur[s] = nil
		}
		close(f.queues[s])
	}
}

// ForEachSliced decodes the whole trace across workers (<=0 selects
// GOMAXPROCS, as in ForEachBatch) and fans the decoded references out to
// slices concurrent consumers. For each decoded chunk, in file order,
// scatter is called on ForEachSliced's calling goroutine with the chunk's
// references (fully base-fixed, bit-identical to the serial sequence) and
// routes each one with fan.Emit; consume(slice, refs) then observes every
// slice's references in exactly the order they were emitted, on one
// goroutine per slice. Neither callback may retain its refs slice.
//
// The caller's routing function decides what a slice means. The intended
// use is address-sliced cache simulation (see sim.ShardedHierarchy):
// when every pair of references that can interact maps to the same slice,
// per-slice consumption in emission order is indistinguishable from
// serial consumption.
//
// Errors: a decode error (typed exactly as the serial Reader types it)
// stops the fan-out after every chunk before the damaged one has been
// scattered and wins over any later consumer error; a scatter or consume
// error stops the decode and is returned as-is; a consume panic is
// contained and returned as *SliceConsumerPanicError. On any error, some
// slices may have consumed more recent references than others — callers
// needing all-or-nothing semantics must discard consumer state on error.
//
// Version-1 files and single-worker calls decode serially (the scatter
// and consume contracts are unchanged); slices must be >= 1, and
// slices == 1 still runs the single consumer on its own goroutine.
func (f *MemFile) ForEachSliced(workers, slices int, scatter func(fan *SliceFan, refs []Ref) error, consume func(slice int, refs []Ref) error) error {
	if slices < 1 {
		return fmt.Errorf("trace: ForEachSliced: %d slices", slices)
	}
	fan := newSliceFan(slices, DefaultChunk)
	var (
		wg    sync.WaitGroup
		cerrs = make([]error, slices)
	)
	for s := 0; s < slices; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for buf := range fan.queues[s] {
				if cerrs[s] == nil {
					f.consumeSafe(fan, s, buf, consume, cerrs)
				}
				// Keep draining after a failure so the coordinator never
				// blocks; recycle with the length clamped.
				select {
				case fan.frees[s] <- buf[:0]:
				default:
				}
			}
		}(s)
	}

	err := f.ForEachBatch(workers, func(refs []Ref) error {
		if fan.failed.Load() {
			return errSliceStop
		}
		return scatter(fan, refs)
	})
	fan.flush()
	wg.Wait()

	if err != nil && err != errSliceStop {
		return err
	}
	for s := 0; s < slices; s++ {
		if cerrs[s] != nil {
			return cerrs[s]
		}
	}
	if err == errSliceStop {
		// A consumer flagged failure but cleared its error slot — cannot
		// happen (the flag is set only alongside the slot), but never
		// swallow the sentinel.
		return errSliceStop
	}
	return nil
}

// consumeSafe delivers one buffer to a slice consumer, containing a panic
// into the slice's error slot.
func (f *MemFile) consumeSafe(fan *SliceFan, s int, buf []Ref, consume func(int, []Ref) error, cerrs []error) {
	defer func() {
		if r := recover(); r != nil {
			cerrs[s] = &SliceConsumerPanicError{Slice: s, Value: r, Stack: debug.Stack()}
			fan.failed.Store(true)
		}
	}()
	if err := consume(s, buf); err != nil {
		cerrs[s] = err
		fan.failed.Store(true)
	}
}
