package trace

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

// benchRefs models the dense kernels' stream: mostly sequential loads
// with periodic ifetches and stores, the shape the delta encoder and the
// batch path are tuned for.
func benchRefs(n int) []Ref {
	refs := make([]Ref, n)
	for i := range refs {
		switch i % 8 {
		case 0:
			refs[i] = Ref{Kind: IFetch, Addr: 0x1000_0000 + uint64(i/8%64)*32, Size: 4}
		case 5:
			refs[i] = Ref{Kind: Store, Addr: 0x3000_0000 + uint64(i)*8, Size: 8}
		default:
			refs[i] = Ref{Kind: Load, Addr: 0x2000_0000 + uint64(i)*8, Size: 8}
		}
	}
	return refs
}

// BenchmarkFileRoundTrip measures encode-then-decode throughput of the
// binary trace format, per-record versus chunked, in refs per op (use
// ns/op ÷ 64k for ns/ref). The byte streams are identical; only the call
// granularity differs.
func BenchmarkFileRoundTrip(b *testing.B) {
	refs := benchRefs(1 << 16)
	b.Run("record", func(b *testing.B) {
		var buf bytes.Buffer
		b.ReportAllocs()
		b.SetBytes(int64(len(refs)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			w := NewWriter(&buf)
			for j := range refs {
				w.Record(refs[j])
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			r := NewReader(&buf)
			if err := r.ForEach(func(Ref) error { return nil }); err != nil && err != io.EOF {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		var buf bytes.Buffer
		b.ReportAllocs()
		b.SetBytes(int64(len(refs)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			w := NewWriter(&buf)
			for off := 0; off < len(refs); off += DefaultChunk {
				end := off + DefaultChunk
				if end > len(refs) {
					end = len(refs)
				}
				w.RecordBatch(refs[off:end])
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			r := NewReader(&buf)
			if err := r.ForEachBatch(0, func([]Ref) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardedDecode measures pure decode wire speed from a preloaded
// image: serial Reader versus the sharded MemFile paths at several worker
// counts. CountRefs is the ceiling (no ordered merge); ForEachBatch adds
// the in-order delivery and base fixup the simulation paths need.
func BenchmarkShardedDecode(b *testing.B) {
	refs := benchRefs(1 << 20)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.RecordBatch(refs)
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(int64(len(refs)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := NewReader(bytes.NewReader(data))
			if err := r.ForEachBatch(0, func([]Ref) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
	f, err := NewMemFile(data)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("count-w%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(refs)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.CountRefs(workers); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("ordered-w%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(refs)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.ForEachBatch(workers, func([]Ref) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipeline measures the SPSC chunk ring's producer-side cost:
// references recorded through the pipeline into a Counts sink.
func BenchmarkPipeline(b *testing.B) {
	refs := benchRefs(1 << 16)
	b.Run("direct", func(b *testing.B) {
		var c Counts
		b.SetBytes(int64(len(refs)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.RecordBatch(refs)
		}
	})
	b.Run("pipelined", func(b *testing.B) {
		var c Counts
		b.ReportAllocs()
		b.SetBytes(int64(len(refs)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := NewPipeline(&c, 0, 0)
			p.RecordBatch(refs)
			p.Close()
		}
	})
}
