package trace

import (
	"bytes"
	"io"
	"testing"
)

// benchRefs models the dense kernels' stream: mostly sequential loads
// with periodic ifetches and stores, the shape the delta encoder and the
// batch path are tuned for.
func benchRefs(n int) []Ref {
	refs := make([]Ref, n)
	for i := range refs {
		switch i % 8 {
		case 0:
			refs[i] = Ref{Kind: IFetch, Addr: 0x1000_0000 + uint64(i/8%64)*32, Size: 4}
		case 5:
			refs[i] = Ref{Kind: Store, Addr: 0x3000_0000 + uint64(i)*8, Size: 8}
		default:
			refs[i] = Ref{Kind: Load, Addr: 0x2000_0000 + uint64(i)*8, Size: 8}
		}
	}
	return refs
}

// BenchmarkFileRoundTrip measures encode-then-decode throughput of the
// binary trace format, per-record versus chunked, in refs per op (use
// ns/op ÷ 64k for ns/ref). The byte streams are identical; only the call
// granularity differs.
func BenchmarkFileRoundTrip(b *testing.B) {
	refs := benchRefs(1 << 16)
	b.Run("record", func(b *testing.B) {
		var buf bytes.Buffer
		b.ReportAllocs()
		b.SetBytes(int64(len(refs)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			w := NewWriter(&buf)
			for j := range refs {
				w.Record(refs[j])
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			r := NewReader(&buf)
			if err := r.ForEach(func(Ref) error { return nil }); err != nil && err != io.EOF {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		var buf bytes.Buffer
		b.ReportAllocs()
		b.SetBytes(int64(len(refs)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			w := NewWriter(&buf)
			for off := 0; off < len(refs); off += DefaultChunk {
				end := off + DefaultChunk
				if end > len(refs) {
					end = len(refs)
				}
				w.RecordBatch(refs[off:end])
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			r := NewReader(&buf)
			if err := r.ForEachBatch(0, func([]Ref) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPipeline measures the SPSC chunk ring's producer-side cost:
// references recorded through the pipeline into a Counts sink.
func BenchmarkPipeline(b *testing.B) {
	refs := benchRefs(1 << 16)
	b.Run("direct", func(b *testing.B) {
		var c Counts
		b.SetBytes(int64(len(refs)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.RecordBatch(refs)
		}
	})
	b.Run("pipelined", func(b *testing.B) {
		var c Counts
		b.ReportAllocs()
		b.SetBytes(int64(len(refs)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := NewPipeline(&c, 0, 0)
			p.RecordBatch(refs)
			p.Close()
		}
	})
}
