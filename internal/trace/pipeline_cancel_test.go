package trace

import (
	"context"
	"errors"
	"testing"
	"time"
)

// wedgedRecorder blocks inside Record until released — a stand-in for a
// consumer stuck in a slow destination.
type wedgedRecorder struct {
	entered chan struct{} // closed once Record has been entered
	release chan struct{}
}

func (w *wedgedRecorder) Record(Ref) {
	select {
	case <-w.entered:
	default:
		close(w.entered)
	}
	<-w.release
}

// TestPipelineCancelUnblocksProducer is the regression test for the
// producer-side cancellation gap: before WithContext, a producer blocked
// on a full ring waited for the consumer unconditionally, so a cancelled
// job wedged behind a stuck consumer could never observe ctx.Done(). The
// producer must now return promptly on cancellation and the pipeline must
// report the context error.
func TestPipelineCancelUnblocksProducer(t *testing.T) {
	dst := &wedgedRecorder{entered: make(chan struct{}), release: make(chan struct{})}
	defer close(dst.release)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Explicit depth 1 forces the concurrent ring even at GOMAXPROCS=1.
	p := NewPipeline(dst, 8, 1).WithContext(ctx)

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Enough to fill the producer's chunk, the ring slot, and block:
		// the consumer wedges on the first delivered reference.
		for i := 0; i < 10_000; i++ {
			p.Record(Ref{Kind: Load, Addr: uint64(i), Size: 8})
		}
	}()

	// Wait until the consumer is provably wedged, then give the producer a
	// moment to fill the ring and block in send.
	select {
	case <-dst.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer never entered dst")
	}
	time.Sleep(20 * time.Millisecond)
	cancel()

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("producer still blocked 5s after cancellation")
	}
	if err := p.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
	// CloseContext must not block behind the still-wedged consumer.
	if err := p.CloseContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("CloseContext = %v, want context.Canceled", err)
	}
}

// TestPipelineInlineCancelDiscards pins the inline mode's counterpart:
// after cancellation, flushes are discarded and the context error is
// reported, matching the concurrent ring's behavior.
func TestPipelineInlineCancelDiscards(t *testing.T) {
	var got Counts
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pipeline{dst: &got, chunk: 4, done: make(chan struct{}), inline: true}
	p.WithContext(ctx)
	p.RecordBatch([]Ref{{Kind: Load, Addr: 1, Size: 8}})
	before := got.Total()
	cancel()
	p.RecordBatch([]Ref{{Kind: Load, Addr: 2, Size: 8}})
	if got.Total() != before {
		t.Fatalf("inline pipeline delivered references after cancellation")
	}
	if err := p.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close = %v, want context.Canceled", err)
	}
}
