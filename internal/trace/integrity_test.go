package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// encodeTrace writes refs through a Writer and returns the full v2 byte
// stream (header, chunks, trailer).
func encodeTrace(t *testing.T, refs []Ref) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range refs {
		w.Record(r)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// integrityRefs spans two chunks so chunk boundaries, the second chunk,
// and the trailer are all inside the tested region.
func integrityRefs(n int) []Ref {
	refs := make([]Ref, n)
	rng := uint64(99)
	for i := range refs {
		rng = rng*6364136223846793005 + 1442695040888963407
		refs[i] = Ref{Kind: Kind(rng >> 62 % 3), Addr: rng >> 16, Size: 8}
	}
	return refs
}

func decodeAll(data []byte) ([]Ref, error) {
	r := NewReader(bytes.NewReader(data))
	var got []Ref
	err := r.ForEach(func(ref Ref) error { got = append(got, ref); return nil })
	return got, err
}

// TestTruncationDetectedAtEveryByte: cutting the stream at any byte past
// the header must surface ErrTruncated — the property the mandatory
// trailer buys over format version 1.
func TestTruncationDetectedAtEveryByte(t *testing.T) {
	data := encodeTrace(t, integrityRefs(frameRecs+7))
	for cut := HeaderSize; cut < len(data); cut++ {
		if _, err := decodeAll(data[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d/%d: err = %v, want ErrTruncated", cut, len(data), err)
		}
	}
}

// TestCorruptionDetectedAtEveryByte: flipping one bit in any byte past
// the header must surface an error — every post-header byte is covered by
// a chunk or trailer checksum.
func TestCorruptionDetectedAtEveryByte(t *testing.T) {
	orig := encodeTrace(t, integrityRefs(frameRecs+7))
	data := make([]byte, len(orig))
	for off := HeaderSize; off < len(orig); off++ {
		copy(data, orig)
		data[off] ^= 1 << (off % 8)
		if _, err := decodeAll(data); err == nil {
			t.Fatalf("bit flip at offset %d went undetected", off)
		}
	}
}

// TestDataAfterTrailerIsCorrupt: a complete trace followed by stray bytes
// is reported, not silently accepted.
func TestDataAfterTrailerIsCorrupt(t *testing.T) {
	data := encodeTrace(t, integrityRefs(10))
	if _, err := decodeAll(append(data, 0x00)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestFlushWithoutCloseIsTruncated: Flush makes records durable but does
// not complete the trace; the flushed records decode, then the missing
// trailer is reported as truncation.
func TestFlushWithoutCloseIsTruncated(t *testing.T) {
	refs := integrityRefs(100)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range refs {
		w.Record(r)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := decodeAll(buf.Bytes())
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if len(got) != len(refs) {
		t.Fatalf("decoded %d flushed records before the error, want %d", len(got), len(refs))
	}
}

// TestWriterCloseIdempotentAndFinal: Close twice is fine; recording after
// Close is an error.
func TestWriterCloseIdempotentAndFinal(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Record(Ref{Kind: Load, Addr: 8, Size: 8})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if buf.Len() != n {
		t.Fatal("second Close wrote bytes")
	}
	w.Record(Ref{Kind: Load, Addr: 16, Size: 8})
	if err := w.Close(); err == nil {
		t.Fatal("Record after Close was not reported")
	}
}

// TestChunkBoundariesMatchBatching: per-record and batched recording of
// the same stream produce identical bytes — chunk cuts depend only on
// record count, which the pipeline byte-identity test relies on.
func TestChunkBoundariesMatchBatching(t *testing.T) {
	refs := integrityRefs(frameRecs + 123)
	var a, b bytes.Buffer
	wa := NewWriter(&a)
	for _, r := range refs {
		wa.Record(r)
	}
	if err := wa.Close(); err != nil {
		t.Fatal(err)
	}
	wb := NewWriter(&b)
	for off := 0; off < len(refs); off += 300 {
		end := min(off+300, len(refs))
		wb.RecordBatch(refs[off:end])
	}
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("batched encoding differs from per-record (%d vs %d bytes)", b.Len(), a.Len())
	}
}

// TestLegacyV1Readable: a version-1 stream (unframed records, no trailer)
// still decodes, ending cleanly at EOF.
func TestLegacyV1Readable(t *testing.T) {
	refs := []Ref{
		{Kind: IFetch, Addr: 0x1000, Size: 4},
		{Kind: Load, Addr: 0x2000, Size: 8},
		{Kind: Load, Addr: 0x2008, Size: 8},
		{Kind: Store, Addr: 0x1ff8, Size: 8},
	}
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.WriteByte(1)
	var last [numKinds]uint64
	for _, r := range refs {
		buf.WriteByte(byte(r.Kind))
		buf.WriteByte(r.Size)
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutVarint(tmp[:], int64(r.Addr-last[r.Kind]))
		buf.Write(tmp[:n])
		last[r.Kind] = r.Addr
	}
	got, err := decodeAll(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(refs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], refs[i])
		}
	}
	// v1 truncation mid-record is still reported.
	if _, err := decodeAll(buf.Bytes()[:buf.Len()-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("v1 mid-record cut: err = %v, want ErrTruncated", err)
	}
}

// TestReadBatchSurfacesCorruption: the batch path reports the typed error
// alongside the records decoded before it.
func TestReadBatchSurfacesCorruption(t *testing.T) {
	data := encodeTrace(t, integrityRefs(2*frameRecs))
	data[len(data)-1] ^= 0xff // trailer checksum
	r := NewReader(bytes.NewReader(data))
	buf := make([]Ref, 3*frameRecs)
	var err error
	total := 0
	for {
		var n int
		n, err = r.ReadBatch(buf)
		total += n
		if err != nil {
			break
		}
	}
	if err == io.EOF || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if total != 2*frameRecs {
		t.Fatalf("decoded %d records before the error, want %d", total, 2*frameRecs)
	}
}
