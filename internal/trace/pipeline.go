package trace

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultPipelineDepth is the number of in-flight chunks a Pipeline's ring
// holds before the producer blocks. Small on purpose: the bound keeps the
// working set of buffered references cache-sized and throttles a fast
// producer to the consumer's pace instead of ballooning memory.
const DefaultPipelineDepth = 8

// Pipeline decouples reference generation from reference consumption
// inside one experiment: the producer (the traced workload) records into
// fixed-size chunks that travel over a bounded single-producer
// single-consumer ring to a goroutine draining into dst. Chunks are
// recycled through a sync.Pool, so a steady-state pipeline allocates
// nothing per reference.
//
// Ordering is the exactness contract: one producer, one consumer, and a
// FIFO ring mean dst observes exactly the recorded sequence, so results
// are bit-identical to recording into dst directly. Pipeline itself is a
// Recorder (and BatchRecorder); it is NOT safe for concurrent producers.
// Call Close to flush the final partial chunk and wait for the consumer
// to drain before reading results out of dst.
type Pipeline struct {
	dst   Recorder
	ch    chan []Ref
	pool  sync.Pool
	cur   []Ref
	done  chan struct{}
	close sync.Once
	// Consumer fault containment: a panic in dst is recovered into perr
	// and flips failed, after which the consumer keeps draining the ring
	// but discards chunks — the producer therefore never blocks against a
	// dead consumer, and Close surfaces the error once quiesced.
	failed atomic.Bool
	mu     sync.Mutex
	perr   *ConsumerPanicError
	// met is the optional observability attachment (see Observe); its
	// zero value is the disabled state.
	met pipeObs
}

// ConsumerPanicError is the error Pipeline.Close (and Err) report when
// the destination Recorder panicked on the consumer goroutine. References
// recorded after the panic are discarded, not delivered.
type ConsumerPanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the consumer goroutine's stack, captured at recovery.
	Stack []byte
}

// Error describes the panic.
func (e *ConsumerPanicError) Error() string {
	return fmt.Sprintf("trace: pipeline consumer panicked: %v", e.Value)
}

var _ BatchRecorder = (*Pipeline)(nil)

// NewPipeline starts a pipeline draining into dst. chunk is the references
// per ring slot (<=0 selects DefaultChunk) and depth the ring capacity in
// chunks (<=0 selects DefaultPipelineDepth).
func NewPipeline(dst Recorder, chunk, depth int) *Pipeline {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if depth <= 0 {
		depth = DefaultPipelineDepth
	}
	p := &Pipeline{
		dst:  dst,
		ch:   make(chan []Ref, depth),
		done: make(chan struct{}),
	}
	p.pool.New = func() any {
		s := make([]Ref, 0, chunk)
		return &s
	}
	p.cur = p.next()
	go p.consume()
	return p
}

func (p *Pipeline) next() []Ref {
	return (*(p.pool.Get().(*[]Ref)))[:0]
}

func (p *Pipeline) consume() {
	defer close(p.done)
	for chunk := range p.ch {
		if !p.failed.Load() {
			p.drainSafe(chunk)
		}
		chunk = chunk[:0]
		p.pool.Put(&chunk)
	}
}

// drainSafe delivers one chunk to dst, recovering a dst panic into the
// pipeline's error state. Only the first panic is kept; the ring keeps
// draining either way so the producer side stays unblocked.
func (p *Pipeline) drainSafe(chunk []Ref) {
	defer func() {
		if r := recover(); r != nil {
			p.mu.Lock()
			if p.perr == nil {
				p.perr = &ConsumerPanicError{Value: r, Stack: debug.Stack()}
			}
			p.mu.Unlock()
			p.failed.Store(true)
		}
	}()
	p.drainChunk(chunk)
}

// Err returns the consumer's failure, if any, without closing the
// pipeline. A non-nil return means dst panicked and every reference since
// has been discarded.
func (p *Pipeline) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.perr != nil {
		return p.perr
	}
	return nil
}

// Record implements Recorder on the producer side.
func (p *Pipeline) Record(r Ref) {
	p.cur = append(p.cur, r)
	if len(p.cur) == cap(p.cur) {
		p.ship()
	}
}

// RecordBatch implements BatchRecorder on the producer side. The caller
// keeps ownership of refs (producers reuse their buffers), so the chunk is
// copied into ring slots rather than aliased.
func (p *Pipeline) RecordBatch(refs []Ref) {
	for len(refs) > 0 {
		n := copy(p.cur[len(p.cur):cap(p.cur)], refs)
		p.cur = p.cur[:len(p.cur)+n]
		refs = refs[n:]
		if len(p.cur) == cap(p.cur) {
			p.ship()
		}
	}
}

func (p *Pipeline) ship() {
	p.send(p.cur)
	p.cur = p.next()
}

// Close flushes the partial chunk, waits for the consumer to drain the
// ring, and returns once dst has observed the full stream — or, if dst
// panicked along the way, the first *ConsumerPanicError. Idempotent; the
// Pipeline must not be recorded to afterwards. Close cannot block on a
// panicked consumer (the ring keeps draining after containment); for a
// consumer that is stuck rather than dead, use CloseContext.
func (p *Pipeline) Close() error {
	return p.CloseContext(context.Background())
}

// CloseContext is Close with a shutdown bound: if ctx expires while the
// final chunk is waiting for ring space or before the consumer finishes
// draining, it returns ctx.Err() instead of blocking forever behind a
// consumer wedged inside dst. An abandoned pipeline's consumer goroutine
// stays parked until dst returns; the references it never drained are
// lost, as the non-nil error reports.
func (p *Pipeline) CloseContext(ctx context.Context) error {
	var ctxErr error
	p.close.Do(func() {
		if len(p.cur) > 0 {
			select {
			case p.ch <- p.cur:
				if p.met.o != nil {
					p.met.chunks.Inc(p.met.track)
				}
			case <-ctx.Done():
				ctxErr = ctx.Err()
			}
			p.cur = nil
		}
		close(p.ch)
	})
	if ctxErr != nil {
		return ctxErr
	}
	select {
	case <-p.done:
		return p.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}
