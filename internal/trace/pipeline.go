package trace

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultPipelineDepth is the number of in-flight chunks a Pipeline's ring
// holds before the producer blocks. Small on purpose: the bound keeps the
// working set of buffered references cache-sized and throttles a fast
// producer to the consumer's pace instead of ballooning memory.
const DefaultPipelineDepth = 8

// Pipeline decouples reference generation from reference consumption
// inside one experiment: the producer (the traced workload) records into
// fixed-size chunks that travel over a bounded single-producer
// single-consumer ring to a goroutine draining into dst. Chunks are
// recycled through a free list, so a steady-state pipeline allocates
// nothing per reference, and a producer that speaks Exchange hands its
// buffers over without copying a single record.
//
// Ordering is the exactness contract: one producer, one consumer, and a
// FIFO ring mean dst observes exactly the recorded sequence, so results
// are bit-identical to recording into dst directly. Pipeline itself is a
// Recorder (and BatchRecorder, and BufferExchanger); it is NOT safe for
// concurrent producers. Call Close to flush the final partial chunk and
// wait for the consumer to drain before reading results out of dst.
//
// On a single-processor runtime (GOMAXPROCS=1) a consumer goroutine buys
// no overlap — producer and consumer time-slice one P and every hand-off
// is a context switch. A pipeline constructed with default depth
// (depth <= 0) detects that case and runs inline: no goroutine, no ring,
// chunks drain synchronously on the producer's call, and the consumer
// panic containment contract holds unchanged. An explicit depth > 0
// always selects the concurrent ring, whatever the processor count.
type Pipeline struct {
	dst    Recorder
	ch     chan []Ref
	free   chan []Ref
	chunk  int
	cur    []Ref
	inline bool
	done   chan struct{}
	close  sync.Once
	// Consumer fault containment: a panic in dst is recovered into perr
	// and flips failed, after which the consumer keeps draining the ring
	// but discards chunks — the producer therefore never blocks against a
	// dead consumer, and Close surfaces the error once quiesced.
	failed atomic.Bool
	mu     sync.Mutex
	perr   *ConsumerPanicError
	// Producer-side cancellation (see WithContext): once ctx expires,
	// cancelled flips, chunks are discarded instead of shipped, and cerr
	// carries ctx's error to Close/Err.
	ctx       context.Context
	cancelled atomic.Bool
	cerr      error
	// met is the optional observability attachment (see Observe); its
	// zero value is the disabled state.
	met pipeObs
}

// ConsumerPanicError is the error Pipeline.Close (and Err) report when
// the destination Recorder panicked on the consumer goroutine. References
// recorded after the panic are discarded, not delivered.
type ConsumerPanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the consumer goroutine's stack, captured at recovery.
	Stack []byte
}

// Error describes the panic.
func (e *ConsumerPanicError) Error() string {
	return fmt.Sprintf("trace: pipeline consumer panicked: %v", e.Value)
}

var _ BufferExchanger = (*Pipeline)(nil)

// NewPipeline starts a pipeline draining into dst. chunk is the references
// per ring slot (<=0 selects DefaultChunk) and depth the ring capacity in
// chunks (<=0 selects DefaultPipelineDepth — or inline draining when the
// runtime has a single processor; see the type comment).
func NewPipeline(dst Recorder, chunk, depth int) *Pipeline {
	inline := depth <= 0 && runtime.GOMAXPROCS(0) == 1
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if depth <= 0 {
		depth = DefaultPipelineDepth
	}
	// cur is allocated lazily on the first Record: producers that only
	// RecordBatch or Exchange never pay for (or zero) a chunk they will
	// not use.
	p := &Pipeline{
		dst:   dst,
		chunk: chunk,
		done:  make(chan struct{}),
	}
	if inline {
		p.inline = true
		return p
	}
	p.ch = make(chan []Ref, depth)
	// The free list holds every buffer not in the ring or the producer's
	// hand: depth in flight + the producer's current + one being drained.
	p.free = make(chan []Ref, depth+2)
	go p.consume()
	return p
}

// next returns an empty buffer for the producer: a recycled one when the
// free list has any, a fresh allocation only during warmup (or when a
// chunk was retired while the list was momentarily full).
func (p *Pipeline) next() []Ref {
	select {
	case b := <-p.free:
		return b[:0]
	default:
		return make([]Ref, 0, p.chunk)
	}
}

func (p *Pipeline) consume() {
	defer close(p.done)
	for chunk := range p.ch {
		if !p.failed.Load() {
			p.drainSafe(chunk)
		}
		select {
		case p.free <- chunk:
		default:
		}
	}
}

// drainSafe delivers one chunk to dst, recovering a dst panic into the
// pipeline's error state. Only the first panic is kept; the ring keeps
// draining either way so the producer side stays unblocked.
func (p *Pipeline) drainSafe(chunk []Ref) {
	defer func() {
		if r := recover(); r != nil {
			p.mu.Lock()
			if p.perr == nil {
				p.perr = &ConsumerPanicError{Value: r, Stack: debug.Stack()}
			}
			p.mu.Unlock()
			p.failed.Store(true)
		}
	}()
	p.drainChunk(chunk)
}

// flushInline is the inline mode's counterpart of send-then-consume: one
// chunk delivered synchronously on the producer's call, with the same
// containment (a dst panic flips failed; later chunks are discarded) and
// the same pipe.chunks accounting.
func (p *Pipeline) flushInline(chunk []Ref) {
	if p.noteCancel() {
		return
	}
	if p.met.o != nil {
		p.met.chunks.Inc(p.met.track)
	}
	if !p.failed.Load() {
		p.drainSafe(chunk)
	}
}

// WithContext bounds the producer side of the pipeline by ctx and returns
// the pipeline. Without it, a producer blocked on a full ring waits for
// the consumer indefinitely — a cancelled job could stall forever behind
// a slow or wedged destination. With it, a blocked send returns as soon
// as ctx is done, the pipeline flips to a discard state (further chunks
// are dropped, exactly as after a consumer panic), and Close/Err report
// ctx's error; a consumer panic still takes precedence, since it
// explains the state better. Like Observe, WithContext must be called
// before the first record. A nil ctx leaves cancellation off.
func (p *Pipeline) WithContext(ctx context.Context) *Pipeline {
	p.ctx = ctx
	return p
}

// noteCancel reports whether the pipeline's context is done, latching the
// error for Close/Err the first time it is observed.
func (p *Pipeline) noteCancel() bool {
	if p.ctx == nil {
		return false
	}
	if p.cancelled.Load() {
		return true
	}
	err := p.ctx.Err()
	if err == nil {
		return false
	}
	p.mu.Lock()
	if p.cerr == nil {
		p.cerr = err
	}
	p.mu.Unlock()
	p.cancelled.Store(true)
	return true
}

// Err returns the pipeline's failure, if any, without closing it. A
// *ConsumerPanicError means dst panicked; a context error means the
// producer was cancelled mid-stream. Either way every reference since has
// been discarded.
func (p *Pipeline) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.perr != nil {
		return p.perr
	}
	return p.cerr
}

// Record implements Recorder on the producer side.
func (p *Pipeline) Record(r Ref) {
	if cap(p.cur) == 0 {
		p.cur = p.next()
	}
	p.cur = append(p.cur, r)
	if len(p.cur) == cap(p.cur) {
		p.ship()
	}
}

// RecordBatch implements BatchRecorder on the producer side. The caller
// keeps ownership of refs (producers reuse their buffers), so on the
// concurrent path the chunk is copied into ring slots rather than
// aliased; producers that can give their buffer up should use Exchange
// instead and skip the copy. The inline path delivers refs to dst
// directly — no ring, no copy.
func (p *Pipeline) RecordBatch(refs []Ref) {
	if p.inline {
		p.shipCur()
		if len(refs) > 0 {
			p.flushInline(refs)
		}
		return
	}
	for len(refs) > 0 {
		if cap(p.cur) == 0 {
			p.cur = p.next()
		}
		n := copy(p.cur[len(p.cur):cap(p.cur)], refs)
		p.cur = p.cur[:len(p.cur)+n]
		refs = refs[n:]
		if len(p.cur) == cap(p.cur) {
			p.ship()
		}
	}
}

// Exchange implements BufferExchanger on the producer side: buf travels
// to the consumer as-is (after any partial chunk, preserving order) and
// the producer gets a recycled buffer back. The records cross the
// pipeline without being copied.
func (p *Pipeline) Exchange(buf []Ref) []Ref {
	if p.inline {
		p.shipCur()
		if len(buf) > 0 {
			p.flushInline(buf)
		}
		return buf[:0]
	}
	p.shipCur()
	if len(buf) == 0 {
		return buf
	}
	p.send(buf)
	return p.next()
}

// shipCur flushes the partial chunk accumulated by Record calls, keeping
// stream order when per-record and batched production interleave.
func (p *Pipeline) shipCur() {
	if len(p.cur) > 0 {
		p.ship()
	}
}

func (p *Pipeline) ship() {
	if p.inline {
		p.flushInline(p.cur)
		p.cur = p.cur[:0]
		return
	}
	p.send(p.cur)
	p.cur = p.next()
}

// Close flushes the partial chunk, waits for the consumer to drain the
// ring, and returns once dst has observed the full stream — or, if dst
// panicked along the way, the first *ConsumerPanicError. Idempotent; the
// Pipeline must not be recorded to afterwards. Close cannot block on a
// panicked consumer (the ring keeps draining after containment); for a
// consumer that is stuck rather than dead, use CloseContext.
func (p *Pipeline) Close() error {
	return p.CloseContext(context.Background())
}

// CloseContext is Close with a shutdown bound: if ctx expires while the
// final chunk is waiting for ring space or before the consumer finishes
// draining, it returns ctx.Err() instead of blocking forever behind a
// consumer wedged inside dst. An abandoned pipeline's consumer goroutine
// stays parked until dst returns; the references it never drained are
// lost, as the non-nil error reports. An inline pipeline has nothing to
// wait on; its CloseContext never blocks.
func (p *Pipeline) CloseContext(ctx context.Context) error {
	if p.inline {
		p.close.Do(func() {
			if len(p.cur) > 0 {
				p.flushInline(p.cur)
				p.cur = nil
			}
			close(p.done)
		})
		return p.Err()
	}
	var ctxErr error
	p.close.Do(func() {
		if len(p.cur) > 0 && !p.noteCancel() {
			select {
			case p.ch <- p.cur:
				if p.met.o != nil {
					p.met.chunks.Inc(p.met.track)
				}
			case <-ctx.Done():
				ctxErr = ctx.Err()
			}
		}
		p.cur = nil
		close(p.ch)
	})
	if ctxErr != nil {
		return ctxErr
	}
	select {
	case <-p.done:
		return p.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}
