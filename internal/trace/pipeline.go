package trace

import "sync"

// DefaultPipelineDepth is the number of in-flight chunks a Pipeline's ring
// holds before the producer blocks. Small on purpose: the bound keeps the
// working set of buffered references cache-sized and throttles a fast
// producer to the consumer's pace instead of ballooning memory.
const DefaultPipelineDepth = 8

// Pipeline decouples reference generation from reference consumption
// inside one experiment: the producer (the traced workload) records into
// fixed-size chunks that travel over a bounded single-producer
// single-consumer ring to a goroutine draining into dst. Chunks are
// recycled through a sync.Pool, so a steady-state pipeline allocates
// nothing per reference.
//
// Ordering is the exactness contract: one producer, one consumer, and a
// FIFO ring mean dst observes exactly the recorded sequence, so results
// are bit-identical to recording into dst directly. Pipeline itself is a
// Recorder (and BatchRecorder); it is NOT safe for concurrent producers.
// Call Close to flush the final partial chunk and wait for the consumer
// to drain before reading results out of dst.
type Pipeline struct {
	dst   Recorder
	ch    chan []Ref
	pool  sync.Pool
	cur   []Ref
	done  chan struct{}
	close sync.Once
	// met is the optional observability attachment (see Observe); its
	// zero value is the disabled state.
	met pipeObs
}

var _ BatchRecorder = (*Pipeline)(nil)

// NewPipeline starts a pipeline draining into dst. chunk is the references
// per ring slot (<=0 selects DefaultChunk) and depth the ring capacity in
// chunks (<=0 selects DefaultPipelineDepth).
func NewPipeline(dst Recorder, chunk, depth int) *Pipeline {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if depth <= 0 {
		depth = DefaultPipelineDepth
	}
	p := &Pipeline{
		dst:  dst,
		ch:   make(chan []Ref, depth),
		done: make(chan struct{}),
	}
	p.pool.New = func() any {
		s := make([]Ref, 0, chunk)
		return &s
	}
	p.cur = p.next()
	go p.consume()
	return p
}

func (p *Pipeline) next() []Ref {
	return (*(p.pool.Get().(*[]Ref)))[:0]
}

func (p *Pipeline) consume() {
	defer close(p.done)
	for chunk := range p.ch {
		p.drainChunk(chunk)
		chunk = chunk[:0]
		p.pool.Put(&chunk)
	}
}

// Record implements Recorder on the producer side.
func (p *Pipeline) Record(r Ref) {
	p.cur = append(p.cur, r)
	if len(p.cur) == cap(p.cur) {
		p.ship()
	}
}

// RecordBatch implements BatchRecorder on the producer side. The caller
// keeps ownership of refs (producers reuse their buffers), so the chunk is
// copied into ring slots rather than aliased.
func (p *Pipeline) RecordBatch(refs []Ref) {
	for len(refs) > 0 {
		n := copy(p.cur[len(p.cur):cap(p.cur)], refs)
		p.cur = p.cur[:len(p.cur)+n]
		refs = refs[n:]
		if len(p.cur) == cap(p.cur) {
			p.ship()
		}
	}
}

func (p *Pipeline) ship() {
	p.send(p.cur)
	p.cur = p.next()
}

// Close flushes the partial chunk, waits for the consumer to drain the
// ring, and returns once dst has observed the full stream. Idempotent;
// the Pipeline must not be recorded to afterwards.
func (p *Pipeline) Close() {
	p.close.Do(func() {
		if len(p.cur) > 0 {
			p.send(p.cur)
			p.cur = nil
		}
		close(p.ch)
		<-p.done
	})
}
