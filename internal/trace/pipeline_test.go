package trace

import (
	"bytes"
	"testing"
)

// pipeRefs builds a deterministic mixed-kind stream big enough to wrap
// the ring several times at the given chunk size.
func pipeRefs(n int) []Ref {
	refs := make([]Ref, n)
	rng := uint64(42)
	for i := range refs {
		rng = rng*6364136223846793005 + 1442695040888963407
		refs[i] = Ref{Kind: Kind(rng >> 62 % 3), Addr: (rng >> 16) % (1 << 30), Size: 8}
	}
	return refs
}

// The pipeline's exactness contract: dst observes exactly the recorded
// sequence, whatever the chunk geometry or producer call pattern.
func TestPipelineDeliversExactSequence(t *testing.T) {
	refs := pipeRefs(10000)
	for _, chunk := range []int{1, 7, 64, 4096} {
		var got []Ref
		sink := FuncRecorder(func(r Ref) { got = append(got, r) })
		p := NewPipeline(sink, chunk, 2)
		for i := range refs {
			p.Record(refs[i])
		}
		p.Close()
		if len(got) != len(refs) {
			t.Fatalf("chunk %d: delivered %d refs, want %d", chunk, len(got), len(refs))
		}
		for i := range refs {
			if got[i] != refs[i] {
				t.Fatalf("chunk %d: ref %d = %+v, want %+v", chunk, i, got[i], refs[i])
			}
		}
	}
}

// RecordBatch must copy: the producer's buffer is reused immediately
// after the call, so aliasing it into the ring would corrupt the stream.
func TestPipelineRecordBatchCopies(t *testing.T) {
	refs := pipeRefs(20000)
	var counts Counts
	p := NewPipeline(&counts, 128, 4)
	buf := make([]Ref, 0, 97) // deliberately mismatched with chunk size
	var want Counts
	for i := range refs {
		buf = append(buf, refs[i])
		want.ByKind[refs[i].Kind]++
		if len(buf) == cap(buf) {
			p.RecordBatch(buf)
			for j := range buf {
				buf[j] = Ref{} // scribble over the reused buffer
			}
			buf = buf[:0]
		}
	}
	p.RecordBatch(buf)
	p.Close()
	if counts != want {
		t.Errorf("pipelined counts %+v, want %+v", counts, want)
	}
}

// Counts through the pipeline equal counts recorded directly, and Close
// is idempotent.
func TestPipelineMatchesDirectAndCloseIdempotent(t *testing.T) {
	refs := pipeRefs(5000)
	var direct Counts
	for i := range refs {
		direct.Record(refs[i])
	}
	var piped Counts
	p := NewPipeline(&piped, 0, 0)
	RecordBatch(p, refs)
	p.Close()
	p.Close()
	if piped != direct {
		t.Errorf("pipelined counts %+v, want %+v", piped, direct)
	}
}

// The pipeline in front of a file Writer must produce the identical byte
// stream to recording into the Writer directly — the encoder is stateful
// (per-kind deltas), so this pins ordering through the ring.
func TestPipelineFileBytesIdentical(t *testing.T) {
	refs := pipeRefs(3000)
	var serial bytes.Buffer
	w := NewWriter(&serial)
	for i := range refs {
		w.Record(refs[i])
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var piped bytes.Buffer
	pw := NewWriter(&piped)
	p := NewPipeline(pw, 256, 3)
	RecordBatch(p, refs)
	p.Close()
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), piped.Bytes()) {
		t.Errorf("pipelined encoding differs from serial (%d vs %d bytes)",
			piped.Len(), serial.Len())
	}
}
