package trace

import (
	"bytes"
	"errors"
	"runtime"
	"testing"
)

// pipeRefs builds a deterministic mixed-kind stream big enough to wrap
// the ring several times at the given chunk size.
func pipeRefs(n int) []Ref {
	refs := make([]Ref, n)
	rng := uint64(42)
	for i := range refs {
		rng = rng*6364136223846793005 + 1442695040888963407
		refs[i] = Ref{Kind: Kind(rng >> 62 % 3), Addr: (rng >> 16) % (1 << 30), Size: 8}
	}
	return refs
}

// The pipeline's exactness contract: dst observes exactly the recorded
// sequence, whatever the chunk geometry or producer call pattern.
func TestPipelineDeliversExactSequence(t *testing.T) {
	refs := pipeRefs(10000)
	for _, chunk := range []int{1, 7, 64, 4096} {
		var got []Ref
		sink := FuncRecorder(func(r Ref) { got = append(got, r) })
		p := NewPipeline(sink, chunk, 2)
		for i := range refs {
			p.Record(refs[i])
		}
		p.Close()
		if len(got) != len(refs) {
			t.Fatalf("chunk %d: delivered %d refs, want %d", chunk, len(got), len(refs))
		}
		for i := range refs {
			if got[i] != refs[i] {
				t.Fatalf("chunk %d: ref %d = %+v, want %+v", chunk, i, got[i], refs[i])
			}
		}
	}
}

// RecordBatch must copy: the producer's buffer is reused immediately
// after the call, so aliasing it into the ring would corrupt the stream.
func TestPipelineRecordBatchCopies(t *testing.T) {
	refs := pipeRefs(20000)
	var counts Counts
	p := NewPipeline(&counts, 128, 4)
	buf := make([]Ref, 0, 97) // deliberately mismatched with chunk size
	var want Counts
	for i := range refs {
		buf = append(buf, refs[i])
		want.ByKind[refs[i].Kind]++
		if len(buf) == cap(buf) {
			p.RecordBatch(buf)
			for j := range buf {
				buf[j] = Ref{} // scribble over the reused buffer
			}
			buf = buf[:0]
		}
	}
	p.RecordBatch(buf)
	p.Close()
	if counts != want {
		t.Errorf("pipelined counts %+v, want %+v", counts, want)
	}
}

// Counts through the pipeline equal counts recorded directly, and Close
// is idempotent.
func TestPipelineMatchesDirectAndCloseIdempotent(t *testing.T) {
	refs := pipeRefs(5000)
	var direct Counts
	for i := range refs {
		direct.Record(refs[i])
	}
	var piped Counts
	p := NewPipeline(&piped, 0, 0)
	RecordBatch(p, refs)
	p.Close()
	p.Close()
	if piped != direct {
		t.Errorf("pipelined counts %+v, want %+v", piped, direct)
	}
}

// Exchange moves the producer's buffer through the ring without copying;
// the delivered sequence must still be exact, including when Exchange
// interleaves with per-record production, and the buffers handed back
// must be safe to refill immediately.
func TestPipelineExchangeDeliversExactSequence(t *testing.T) {
	refs := pipeRefs(20000)
	var got []Ref
	sink := FuncRecorder(func(r Ref) { got = append(got, r) })
	p := NewPipeline(sink, 128, 2)
	// Alternate blocks between per-record production and buffer exchange,
	// in stream order: a partial Record chunk must be flushed ahead of an
	// exchanged buffer (shipCur), so boundaries land anywhere.
	buf := make([]Ref, 0, 97)
	for off := 0; off < len(refs); {
		n := min(100+off%57, len(refs)-off)
		block := refs[off : off+n]
		if (off/100)%2 == 0 {
			for i := range block {
				p.Record(block[i])
			}
		} else {
			for i := range block {
				buf = append(buf, block[i])
				if len(buf) == cap(buf) {
					buf = p.Exchange(buf)
					if len(buf) != 0 {
						t.Fatal("Exchange returned a non-empty buffer")
					}
				}
			}
			buf = p.Exchange(buf)
		}
		off += n
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(refs) {
		t.Fatalf("delivered %d refs, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Fatalf("ref %d = %+v, want %+v", i, got[i], refs[i])
		}
	}
}

// withGOMAXPROCS runs fn with the processor count pinned, restoring it
// after — how the inline/concurrent mode split is exercised regardless of
// the host's core count.
func withGOMAXPROCS(t *testing.T, n int, fn func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	fn()
}

// Mode selection: default depth on a single-processor runtime drains
// inline; an explicit depth always takes the concurrent ring (the
// concurrency tests rely on that), and multi-processor defaults do too.
func TestPipelineModeSelection(t *testing.T) {
	withGOMAXPROCS(t, 1, func() {
		if p := NewPipeline(Discard, 0, 0); !p.inline {
			t.Error("default depth at GOMAXPROCS=1: want inline")
		}
		if p := NewPipeline(Discard, 0, 2); p.inline {
			t.Error("explicit depth at GOMAXPROCS=1: want concurrent")
		}
	})
	withGOMAXPROCS(t, 2, func() {
		if p := NewPipeline(Discard, 0, 0); p.inline {
			t.Error("default depth at GOMAXPROCS=2: want concurrent")
		}
	})
}

// The inline pipeline honors the full Pipeline contract: exact sequence
// across Record/RecordBatch/Exchange, idempotent Close, and consumer
// panic containment identical to the concurrent ring's.
func TestPipelineInlineContract(t *testing.T) {
	withGOMAXPROCS(t, 1, func() {
		refs := pipeRefs(10000)
		var got []Ref
		sink := FuncRecorder(func(r Ref) { got = append(got, r) })
		p := NewPipeline(sink, 64, 0)
		if !p.inline {
			t.Fatal("pipeline not inline at GOMAXPROCS=1")
		}
		buf := make([]Ref, 0, 81)
		for off := 0; off < len(refs); {
			n := min(90, len(refs)-off)
			block := refs[off : off+n]
			switch (off / 90) % 3 {
			case 0:
				for i := range block {
					p.Record(block[i])
				}
			case 1:
				p.RecordBatch(block)
			default:
				buf = append(buf[:0], block...)
				buf = p.Exchange(buf)
			}
			off += n
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		if err := p.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
		if len(got) != len(refs) {
			t.Fatalf("delivered %d refs, want %d", len(got), len(refs))
		}
		for i := range refs {
			if got[i] != refs[i] {
				t.Fatalf("ref %d = %+v, want %+v", i, got[i], refs[i])
			}
		}
	})
}

// Inline consumer panic containment: the panic is recovered into a
// *ConsumerPanicError, later references are discarded, and Close
// surfaces the error — same contract as the concurrent ring.
func TestPipelineInlinePanicContainment(t *testing.T) {
	withGOMAXPROCS(t, 1, func() {
		delivered := 0
		sink := FuncRecorder(func(r Ref) {
			if delivered == 100 {
				panic("inline consumer failure")
			}
			delivered++
		})
		p := NewPipeline(sink, 16, 0)
		refs := pipeRefs(1000)
		for i := range refs {
			p.Record(refs[i]) // must not panic through to the producer
		}
		err := p.Close()
		var perr *ConsumerPanicError
		if !errors.As(err, &perr) {
			t.Fatalf("Close = %v, want *ConsumerPanicError", err)
		}
		if perr.Value != "inline consumer failure" {
			t.Errorf("panic value = %v", perr.Value)
		}
		if delivered != 100 {
			t.Errorf("delivered %d refs past the panic", delivered-100)
		}
	})
}

// The pipeline in front of a file Writer must produce the identical byte
// stream to recording into the Writer directly — the encoder is stateful
// (per-kind deltas), so this pins ordering through the ring.
func TestPipelineFileBytesIdentical(t *testing.T) {
	refs := pipeRefs(3000)
	var serial bytes.Buffer
	w := NewWriter(&serial)
	for i := range refs {
		w.Record(refs[i])
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var piped bytes.Buffer
	pw := NewWriter(&piped)
	p := NewPipeline(pw, 256, 3)
	RecordBatch(p, refs)
	p.Close()
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), piped.Bytes()) {
		t.Errorf("pipelined encoding differs from serial (%d vs %d bytes)",
			piped.Len(), serial.Len())
	}
}
