// Package trace provides the address-reference layer of the reproduction:
// the moral equivalent of the Pixie instrumentation pipeline the paper used
// to feed its modified DineroIII simulator.
//
// Instrumented ("traced") kernels emit a stream of Ref records — instruction
// fetches, loads, and stores over a simulated virtual address space — to a
// Recorder. Recorders either count, forward to a cache hierarchy, or encode
// the stream to a compact binary format that cmd/tracesim can replay.
package trace

import "fmt"

// Kind discriminates reference records, mirroring the three classes a Pixie
// trace distinguishes.
type Kind uint8

const (
	// IFetch is an instruction fetch.
	IFetch Kind = iota
	// Load is a data read.
	Load
	// Store is a data write.
	Store
	numKinds
)

// String returns the conventional short name of the reference kind.
func (k Kind) String() string {
	switch k {
	case IFetch:
		return "ifetch"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Ref is a single memory reference: a kind, a virtual byte address, and the
// access size in bytes.
type Ref struct {
	Kind Kind
	Addr uint64
	Size uint8
}

// Recorder consumes a reference stream. Implementations must tolerate
// arbitrary interleavings of kinds; they are not required to be safe for
// concurrent use.
type Recorder interface {
	// Record consumes one reference.
	Record(r Ref)
}

// Counts tallies a reference stream by kind. The zero value is ready to use.
type Counts struct {
	ByKind [numKinds]uint64
}

var _ Recorder = (*Counts)(nil)

// Record implements Recorder.
func (c *Counts) Record(r Ref) { c.ByKind[r.Kind]++ }

// IFetches returns the number of instruction fetches recorded.
func (c *Counts) IFetches() uint64 { return c.ByKind[IFetch] }

// Loads returns the number of loads recorded.
func (c *Counts) Loads() uint64 { return c.ByKind[Load] }

// Stores returns the number of stores recorded.
func (c *Counts) Stores() uint64 { return c.ByKind[Store] }

// DataRefs returns loads plus stores, the paper's "D references" row.
func (c *Counts) DataRefs() uint64 { return c.Loads() + c.Stores() }

// Total returns the total number of references of all kinds.
func (c *Counts) Total() uint64 { return c.IFetches() + c.DataRefs() }

// Add accumulates another tally into c.
func (c *Counts) Add(o Counts) {
	for i := range c.ByKind {
		c.ByKind[i] += o.ByKind[i]
	}
}

// Tee forwards every reference to each of its recorders in order.
type Tee []Recorder

var _ Recorder = Tee(nil)

// Record implements Recorder.
func (t Tee) Record(r Ref) {
	for _, rec := range t {
		rec.Record(r)
	}
}

// Discard is a Recorder that drops every reference.
var Discard Recorder = discard{}

type discard struct{}

func (discard) Record(Ref) {}

// Filter forwards only references matching Keep to Next.
type Filter struct {
	Next Recorder
	Keep func(Ref) bool
}

var _ Recorder = (*Filter)(nil)

// Record implements Recorder.
func (f *Filter) Record(r Ref) {
	if f.Keep(r) {
		f.Next.Record(r)
	}
}

// FuncRecorder adapts a function to the Recorder interface.
type FuncRecorder func(Ref)

// Record implements Recorder.
func (f FuncRecorder) Record(r Ref) { f(r) }
