// Package trace provides the address-reference layer of the reproduction:
// the moral equivalent of the Pixie instrumentation pipeline the paper used
// to feed its modified DineroIII simulator.
//
// Instrumented ("traced") kernels emit a stream of Ref records — instruction
// fetches, loads, and stores over a simulated virtual address space — to a
// Recorder. Recorders either count, forward to a cache hierarchy, or encode
// the stream to a compact binary format that cmd/tracesim can replay.
package trace

import "fmt"

// Kind discriminates reference records, mirroring the three classes a Pixie
// trace distinguishes.
type Kind uint8

const (
	// IFetch is an instruction fetch.
	IFetch Kind = iota
	// Load is a data read.
	Load
	// Store is a data write.
	Store
	numKinds
)

// String returns the conventional short name of the reference kind.
func (k Kind) String() string {
	switch k {
	case IFetch:
		return "ifetch"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Ref is a single memory reference: a kind, a virtual byte address, and the
// access size in bytes.
type Ref struct {
	Kind Kind
	Addr uint64
	Size uint8
}

// Recorder consumes a reference stream. Implementations must tolerate
// arbitrary interleavings of kinds; they are not required to be safe for
// concurrent use.
type Recorder interface {
	// Record consumes one reference.
	Record(r Ref)
}

// BatchRecorder is an optional extension of Recorder for consumers that
// can process a chunk of references in one call, turning one virtual
// dispatch per reference into one per chunk. The batch must be consumed
// in slice order and produce state byte-identical to recording each
// element individually; implementations must not retain or mutate the
// slice after returning.
type BatchRecorder interface {
	Recorder
	// RecordBatch consumes refs in order.
	RecordBatch(refs []Ref)
}

// BufferExchanger is an optional extension of BatchRecorder for
// consumers that can take ownership of the producer's buffer: Exchange
// consumes buf exactly like RecordBatch would, but instead of the caller
// keeping the slice, ownership transfers to the consumer, which hands
// back a zero-length buffer (usually a previously consumed one) for the
// producer to refill. A producer/consumer pair that both speak Exchange
// moves references through a cycle of recycled buffers with no per-batch
// copy — the difference between memcpy-bound and wire-speed hand-off.
type BufferExchanger interface {
	BatchRecorder
	// Exchange consumes buf (the consumer may retain it) and returns a
	// zero-length buffer the caller now owns. The returned buffer's
	// capacity may differ from buf's.
	Exchange(buf []Ref) []Ref
}

// Exchange delivers buf to rec and returns the buffer the caller should
// record into next: a swapped buffer when rec implements BufferExchanger,
// otherwise buf itself (re-sliced empty) after a RecordBatch copy. The
// swapped buffer is re-clamped to zero length here rather than trusted:
// an exchanger that hands back a recycled buffer without re-slicing it
// would otherwise leave already-consumed records in place for the caller
// to append after — an oversized batch replaying stale references.
func Exchange(rec Recorder, buf []Ref) []Ref {
	if ex, ok := rec.(BufferExchanger); ok {
		return ex.Exchange(buf)[:0]
	}
	RecordBatch(rec, buf)
	return buf[:0]
}

// DefaultChunk is the reference-buffer size used by batching producers
// (sim.CPU, Pipeline). 4096 24-byte records is ~96 KiB — large enough to
// amortize dispatch, small enough to stay cache-resident.
const DefaultChunk = 4096

// RecordBatch delivers refs to rec in order, using the batch fast path
// when rec implements BatchRecorder and falling back to one Record call
// per reference otherwise.
func RecordBatch(rec Recorder, refs []Ref) {
	if br, ok := rec.(BatchRecorder); ok {
		br.RecordBatch(refs)
		return
	}
	for i := range refs {
		rec.Record(refs[i])
	}
}

// Counts tallies a reference stream by kind. The zero value is ready to use.
type Counts struct {
	ByKind [numKinds]uint64
}

var _ BatchRecorder = (*Counts)(nil)

// Record implements Recorder.
func (c *Counts) Record(r Ref) { c.ByKind[r.Kind]++ }

// RecordBatch implements BatchRecorder.
func (c *Counts) RecordBatch(refs []Ref) {
	for i := range refs {
		c.ByKind[refs[i].Kind]++
	}
}

// IFetches returns the number of instruction fetches recorded.
func (c *Counts) IFetches() uint64 { return c.ByKind[IFetch] }

// Loads returns the number of loads recorded.
func (c *Counts) Loads() uint64 { return c.ByKind[Load] }

// Stores returns the number of stores recorded.
func (c *Counts) Stores() uint64 { return c.ByKind[Store] }

// DataRefs returns loads plus stores, the paper's "D references" row.
func (c *Counts) DataRefs() uint64 { return c.Loads() + c.Stores() }

// Total returns the total number of references of all kinds.
func (c *Counts) Total() uint64 { return c.IFetches() + c.DataRefs() }

// Add accumulates another tally into c.
func (c *Counts) Add(o Counts) {
	for i := range c.ByKind {
		c.ByKind[i] += o.ByKind[i]
	}
}

// Tee forwards every reference to each of its recorders in order.
type Tee []Recorder

var _ BatchRecorder = Tee(nil)

// Record implements Recorder.
func (t Tee) Record(r Ref) {
	for _, rec := range t {
		rec.Record(r)
	}
}

// RecordBatch implements BatchRecorder, forwarding the chunk to each
// recorder in order (batch-capable recorders get it in one call).
func (t Tee) RecordBatch(refs []Ref) {
	for _, rec := range t {
		RecordBatch(rec, refs)
	}
}

// Discard is a Recorder that drops every reference.
var Discard Recorder = discard{}

type discard struct{}

func (discard) Record(Ref) {}

func (discard) RecordBatch([]Ref) {}

// Filter forwards only references matching Keep to Next.
type Filter struct {
	Next Recorder
	Keep func(Ref) bool
}

var _ BatchRecorder = (*Filter)(nil)

// Record implements Recorder.
func (f *Filter) Record(r Ref) {
	if f.Keep(r) {
		f.Next.Record(r)
	}
}

// RecordBatch implements BatchRecorder, forwarding maximal kept runs so a
// batch-capable Next still sees chunks rather than single records.
func (f *Filter) RecordBatch(refs []Ref) {
	start := -1
	for i := range refs {
		if f.Keep(refs[i]) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			RecordBatch(f.Next, refs[start:i])
			start = -1
		}
	}
	if start >= 0 {
		RecordBatch(f.Next, refs[start:])
	}
}

// FuncRecorder adapts a function to the Recorder interface.
type FuncRecorder func(Ref)

// Record implements Recorder.
func (f FuncRecorder) Record(r Ref) { f(r) }
