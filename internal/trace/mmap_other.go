//go:build !unix

package trace

// mmapFile on platforms without a usable mmap: always report "no
// mapping", sending OpenMemFileMmap down the read-into-memory fallback.
func mmapFile(string) ([]byte, func() error, error) {
	return nil, nil, nil
}
