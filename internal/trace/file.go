package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The on-disk trace format is a substitute for Pixie's binary trace output:
// a fixed header followed by delta-encoded records. Addresses are
// zigzag-varint encoded as deltas from the previous address of the same
// kind, which keeps sequential sweeps (the common case in the paper's
// workloads) to 2-3 bytes per reference.
//
// Version 2 frames the record stream into self-checking chunks so a
// damaged or cut-off file is diagnosed instead of silently replaying
// garbage:
//
//	header:  "GTRC" version
//	chunk:   uvarint payloadLen (>0) | payload | uvarint recordCount | crc32
//	...
//	trailer: uvarint 0 | uvarint totalRecords | crc32
//
// The payload is the version-1 record encoding (kind byte, size byte,
// zigzag-varint address delta). Each CRC32 (IEEE, little-endian) covers
// every chunk byte before it, length varint included. The zero-length
// trailer chunk is mandatory: a reader reaching EOF without it reports
// ErrTruncated, so truncation at any byte past the header is detected,
// and a flipped bit anywhere in a chunk fails its checksum (ErrCorrupt).
const (
	// Magic identifies a trace file.
	Magic = "GTRC"
	// FormatVersion is the trace file version Writer produces. Reader
	// also accepts version-1 files (unframed records, no checksums, no
	// trailer), whose truncation past a record boundary is undetectable.
	FormatVersion = 2
	// HeaderSize is the byte length of the file header (magic + version).
	HeaderSize = len(Magic) + 1
)

// Chunk geometry. Writer cuts a chunk every frameRecs records, so frames
// align with the DefaultChunk batches the simulation pipeline produces;
// Reader rejects lengths beyond the corresponding payload bound rather
// than trusting a corrupted length varint with a huge allocation.
const (
	frameRecs       = DefaultChunk
	maxFrameRecs    = 1 << 16
	maxFramePayload = maxFrameRecs * (binary.MaxVarintLen64 + 2)
)

var (
	// ErrBadMagic reports a file that is not a trace file.
	ErrBadMagic = errors.New("trace: bad magic")
	// ErrBadVersion reports an unsupported trace file version.
	ErrBadVersion = errors.New("trace: unsupported version")
	// ErrCorrupt reports a trace whose bytes are present but inconsistent:
	// a failed chunk checksum, a record count that does not match the
	// chunk payload, an invalid record kind, or data after the trailer.
	// Match with errors.Is.
	ErrCorrupt = errors.New("trace: corrupt trace file")
	// ErrTruncated reports a trace that ends before its trailer: the
	// underlying stream hit EOF mid-header, mid-chunk, or between chunks
	// without the mandatory zero-length trailer. Match with errors.Is.
	ErrTruncated = errors.New("trace: truncated trace file")
	errBadKind   = errors.New("trace: invalid record kind")
	errClosed    = errors.New("trace: write after Close")
)

// WriterBufSize is the explicit size of the encoder's buffered writer:
// 64 KiB holds several thousand encoded records, so file-backed traces
// flush to the OS in large sequential writes even on the per-ref path.
const WriterBufSize = 1 << 16

// Writer encodes a reference stream to an io.Writer. It implements
// Recorder and BatchRecorder; call Close when done — the trailer it
// writes is what lets Reader distinguish a complete trace from a
// truncated one.
type Writer struct {
	w       *bufio.Writer
	last    [numKinds]uint64
	n       uint64
	pending []byte // encoded records of the open chunk
	pendCnt int
	scratch [binary.MaxVarintLen64 + 2]byte
	err     error
	wrote   bool
	closed  bool
}

var _ BatchRecorder = (*Writer)(nil)

// NewWriter returns a Writer that encodes to w with a WriterBufSize
// buffer. The header is written lazily on the first record (or on Close).
func NewWriter(w io.Writer) *Writer {
	return NewWriterSize(w, WriterBufSize)
}

// NewWriterSize is NewWriter with an explicit output buffer size in bytes
// (values below bufio's minimum are rounded up by bufio).
func NewWriterSize(w io.Writer, size int) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, size)}
}

func (tw *Writer) writeHeader() {
	if tw.wrote {
		return
	}
	tw.wrote = true
	if _, err := tw.w.WriteString(Magic); err != nil {
		tw.err = err
		return
	}
	if err := tw.w.WriteByte(FormatVersion); err != nil {
		tw.err = err
	}
}

// Record implements Recorder, encoding one reference.
func (tw *Writer) Record(r Ref) {
	if tw.err != nil {
		return
	}
	if tw.closed {
		tw.err = errClosed
		return
	}
	tw.writeHeader()
	if tw.err != nil {
		return
	}
	if r.Kind >= numKinds {
		tw.err = errBadKind
		return
	}
	delta := int64(r.Addr - tw.last[r.Kind])
	tw.last[r.Kind] = r.Addr
	tw.pending = append(tw.pending, byte(r.Kind), r.Size)
	tw.pending = binary.AppendVarint(tw.pending, delta)
	tw.pendCnt++
	tw.n++
	if tw.pendCnt >= frameRecs {
		tw.emitChunk()
	}
}

// RecordBatch implements BatchRecorder: the whole batch is delta-encoded
// into the open chunk's buffer in one pass, cutting chunks as the record
// bound fills, so the encoder does delta bookkeeping — not I/O plumbing —
// per reference.
func (tw *Writer) RecordBatch(refs []Ref) {
	if tw.err != nil {
		return
	}
	if tw.closed {
		tw.err = errClosed
		return
	}
	tw.writeHeader()
	if tw.err != nil {
		return
	}
	if cap(tw.pending) == 0 {
		tw.pending = make([]byte, 0, frameRecs*(binary.MaxVarintLen64+2))
	}
	for i := range refs {
		r := &refs[i]
		if r.Kind >= numKinds {
			tw.err = errBadKind
			return
		}
		delta := int64(r.Addr - tw.last[r.Kind])
		tw.last[r.Kind] = r.Addr
		tw.pending = append(tw.pending, byte(r.Kind), r.Size)
		tw.pending = binary.AppendVarint(tw.pending, delta)
		tw.pendCnt++
		tw.n++
		if tw.pendCnt >= frameRecs {
			tw.emitChunk()
			if tw.err != nil {
				return
			}
		}
	}
}

// emitChunk frames and writes the open chunk: length varint, payload,
// record-count varint, then a CRC32 over all of the preceding bytes.
func (tw *Writer) emitChunk() {
	if tw.err != nil || tw.pendCnt == 0 {
		return
	}
	lenBuf := binary.AppendUvarint(tw.scratch[:0], uint64(len(tw.pending)))
	crc := crc32.Update(0, crc32.IEEETable, lenBuf)
	crc = crc32.Update(crc, crc32.IEEETable, tw.pending)
	if _, err := tw.w.Write(lenBuf); err != nil {
		tw.err = err
		return
	}
	if _, err := tw.w.Write(tw.pending); err != nil {
		tw.err = err
		return
	}
	cntBuf := binary.AppendUvarint(tw.scratch[:0], uint64(tw.pendCnt))
	crc = crc32.Update(crc, crc32.IEEETable, cntBuf)
	cntBuf = binary.LittleEndian.AppendUint32(cntBuf, crc)
	if _, err := tw.w.Write(cntBuf); err != nil {
		tw.err = err
		return
	}
	tw.pending = tw.pending[:0]
	tw.pendCnt = 0
}

// Count returns the number of records successfully encoded.
func (tw *Writer) Count() uint64 { return tw.n }

// Flush writes the header (if not yet written), frames the open chunk,
// and flushes buffered output, making everything recorded so far durable.
// The trace is still incomplete until Close writes the trailer; a reader
// of a flushed-but-unclosed trace reports ErrTruncated at its end.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	tw.writeHeader()
	tw.emitChunk()
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// Close completes the trace: it frames the open chunk, writes the
// zero-length trailer carrying the total record count, and flushes. It
// does not close the underlying io.Writer. Close is idempotent; recording
// after Close is an error.
func (tw *Writer) Close() error {
	if tw.closed {
		return tw.err
	}
	tw.closed = true
	if tw.err != nil {
		return tw.err
	}
	tw.writeHeader()
	tw.emitChunk()
	if tw.err != nil {
		return tw.err
	}
	buf := binary.AppendUvarint(tw.scratch[:0], 0)
	buf = binary.AppendUvarint(buf, tw.n)
	crc := crc32.Update(0, crc32.IEEETable, buf)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	if _, err := tw.w.Write(buf); err != nil {
		tw.err = err
		return err
	}
	return tw.w.Flush()
}

// Reader decodes a trace file produced by Writer, either version: current
// chunked files are verified chunk by chunk, and legacy version-1 files
// take the unframed path (no checksums; truncation at a record boundary
// is indistinguishable from a clean end).
type Reader struct {
	r       *bufio.Reader
	last    [numKinds]uint64
	version byte
	init    bool
	done    bool

	// Open-chunk state (version 2): records are decoded lazily out of the
	// verified payload.
	payload []byte
	pos     int
	left    int    // records remaining in the open chunk
	count   uint64 // records decoded so far, checked against the trailer
}

// NewReader returns a Reader decoding from r. The header is validated on
// the first Read call.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (tr *Reader) readHeader() error {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return fmt.Errorf("trace: missing header: %w", ErrBadMagic)
		}
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: partial header", ErrTruncated)
		}
		return err
	}
	if string(hdr[:len(Magic)]) != Magic {
		return ErrBadMagic
	}
	switch hdr[len(Magic)] {
	case 1, 2:
		tr.version = hdr[len(Magic)]
	default:
		return fmt.Errorf("%w: %d", ErrBadVersion, hdr[len(Magic)])
	}
	tr.init = true
	return nil
}

// readUvarint decodes an unsigned varint from the stream, folding its raw
// bytes into the running CRC. EOF anywhere inside it — including before
// its first byte — means the trailer was never reached.
func (tr *Reader) readUvarint(crc *uint32, what string) (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		b, err := tr.r.ReadByte()
		if err != nil {
			if err == io.EOF {
				return 0, fmt.Errorf("%w: EOF in %s", ErrTruncated, what)
			}
			return 0, err
		}
		*crc = crc32.Update(*crc, crc32.IEEETable, []byte{b})
		if i == binary.MaxVarintLen64 || (i == binary.MaxVarintLen64-1 && b > 1) {
			return 0, fmt.Errorf("%w: varint overflow in %s", ErrCorrupt, what)
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
}

// loadChunk reads and verifies the next chunk, leaving its payload ready
// for decoding. At the trailer it validates the total record count,
// rejects trailing bytes, and returns io.EOF.
func (tr *Reader) loadChunk() error {
	var crc uint32
	plen, err := tr.readUvarint(&crc, "chunk length")
	if err != nil {
		return err
	}
	if plen == 0 {
		total, err := tr.readUvarint(&crc, "trailer")
		if err != nil {
			return err
		}
		if err := tr.checkCRC(crc, "trailer"); err != nil {
			return err
		}
		if total != tr.count {
			return fmt.Errorf("%w: trailer records %d records, file holds %d",
				ErrCorrupt, total, tr.count)
		}
		if _, err := tr.r.ReadByte(); err == nil {
			return fmt.Errorf("%w: data after trailer", ErrCorrupt)
		} else if err != io.EOF {
			return err
		}
		tr.done = true
		return io.EOF
	}
	if plen > maxFramePayload {
		return fmt.Errorf("%w: chunk length %d exceeds bound", ErrCorrupt, plen)
	}
	if cap(tr.payload) < int(plen) {
		tr.payload = make([]byte, plen)
	}
	p := tr.payload[:plen]
	if _, err := io.ReadFull(tr.r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: EOF in chunk payload", ErrTruncated)
		}
		return err
	}
	crc = crc32.Update(crc, crc32.IEEETable, p)
	cnt, err := tr.readUvarint(&crc, "chunk count")
	if err != nil {
		return err
	}
	if err := tr.checkCRC(crc, "chunk"); err != nil {
		return err
	}
	if cnt == 0 || cnt > maxFrameRecs {
		return fmt.Errorf("%w: chunk record count %d out of range", ErrCorrupt, cnt)
	}
	tr.payload, tr.pos, tr.left = p, 0, int(cnt)
	return nil
}

// checkCRC reads the four stored checksum bytes and compares.
func (tr *Reader) checkCRC(crc uint32, what string) error {
	var b [4]byte
	if _, err := io.ReadFull(tr.r, b[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: EOF in %s checksum", ErrTruncated, what)
		}
		return err
	}
	if got := binary.LittleEndian.Uint32(b[:]); got != crc {
		return fmt.Errorf("%w: %s checksum mismatch", ErrCorrupt, what)
	}
	return nil
}

// Read decodes the next record. It returns io.EOF at the end of the
// trace; a trace that ends without its trailer returns an error matching
// ErrTruncated, and one whose bytes fail verification returns an error
// matching ErrCorrupt.
func (tr *Reader) Read() (Ref, error) {
	if !tr.init {
		if err := tr.readHeader(); err != nil {
			return Ref{}, err
		}
	}
	if tr.version == 1 {
		return tr.readV1()
	}
	if tr.done {
		return Ref{}, io.EOF
	}
	if tr.left == 0 {
		if err := tr.loadChunk(); err != nil {
			return Ref{}, err
		}
	}
	// Decode one record from the verified payload. The checksum already
	// passed, so a malformed record here means the count and payload
	// disagree — corruption the CRC happened to miss, or a writer bug.
	if tr.pos+2 > len(tr.payload) {
		return Ref{}, fmt.Errorf("%w: chunk payload underrun", ErrCorrupt)
	}
	kb, size := tr.payload[tr.pos], tr.payload[tr.pos+1]
	tr.pos += 2
	if Kind(kb) >= numKinds {
		return Ref{}, fmt.Errorf("%w: %v", ErrCorrupt, errBadKind)
	}
	delta, n := binary.Varint(tr.payload[tr.pos:])
	if n <= 0 {
		return Ref{}, fmt.Errorf("%w: bad address delta", ErrCorrupt)
	}
	tr.pos += n
	tr.left--
	if tr.left == 0 && tr.pos != len(tr.payload) {
		return Ref{}, fmt.Errorf("%w: %d unconsumed chunk bytes", ErrCorrupt, len(tr.payload)-tr.pos)
	}
	tr.count++
	k := Kind(kb)
	tr.last[k] += uint64(delta)
	return Ref{Kind: k, Addr: tr.last[k], Size: size}, nil
}

// readV1 is the legacy unframed decode path.
func (tr *Reader) readV1() (Ref, error) {
	kb, err := tr.r.ReadByte()
	if err != nil {
		return Ref{}, err // io.EOF here is the clean end of trace
	}
	if Kind(kb) >= numKinds {
		return Ref{}, fmt.Errorf("%w: %v", ErrCorrupt, errBadKind)
	}
	size, err := tr.r.ReadByte()
	if err != nil {
		return Ref{}, truncatedV1(err)
	}
	delta, err := binary.ReadVarint(tr.r)
	if err != nil {
		return Ref{}, truncatedV1(err)
	}
	k := Kind(kb)
	tr.last[k] += uint64(delta)
	return Ref{Kind: k, Addr: tr.last[k], Size: size}, nil
}

// ReadBatch decodes up to len(buf) records into buf, returning the number
// decoded. At the clean end of the trace it returns the final short count
// with a nil error, then (0, io.EOF) on the next call; any other error is
// returned alongside the records decoded before it.
func (tr *Reader) ReadBatch(buf []Ref) (int, error) {
	for n := range buf {
		r, err := tr.Read()
		if err != nil {
			if n > 0 && err == io.EOF {
				return n, nil
			}
			return n, err
		}
		buf[n] = r
	}
	return len(buf), nil
}

// ForEach decodes the whole remaining trace, invoking fn per record.
func (tr *Reader) ForEach(fn func(Ref) error) error {
	for {
		r, err := tr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(r); err != nil {
			return err
		}
	}
}

// ForEachBatch decodes the whole remaining trace in chunks of the given
// size (<=0 selects DefaultChunk), invoking fn once per chunk. Replaying a
// trace through a BatchRecorder this way is equivalent to ForEach but pays
// one callback per chunk instead of per record.
func (tr *Reader) ForEachBatch(chunk int, fn func([]Ref) error) error {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	buf := make([]Ref, chunk)
	for {
		n, err := tr.ReadBatch(buf)
		if n > 0 {
			if ferr := fn(buf[:n]); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func truncatedV1(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: EOF mid-record", ErrTruncated)
	}
	return err
}
