package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The on-disk trace format is a substitute for Pixie's binary trace output:
// a fixed header followed by delta-encoded records. Addresses are
// zigzag-varint encoded as deltas from the previous address of the same
// kind, which keeps sequential sweeps (the common case in the paper's
// workloads) to 2-3 bytes per reference.

const (
	// Magic identifies a trace file.
	Magic = "GTRC"
	// FormatVersion is the current trace file version.
	FormatVersion = 1
)

var (
	// ErrBadMagic reports a file that is not a trace file.
	ErrBadMagic = errors.New("trace: bad magic")
	// ErrBadVersion reports an unsupported trace file version.
	ErrBadVersion = errors.New("trace: unsupported version")
	errBadKind    = errors.New("trace: invalid record kind")
)

// WriterBufSize is the explicit size of the encoder's buffered writer:
// 64 KiB holds several thousand encoded records, so file-backed traces
// flush to the OS in large sequential writes even on the per-ref path.
const WriterBufSize = 1 << 16

// Writer encodes a reference stream to an io.Writer. It implements
// Recorder and BatchRecorder; call Flush (or Close) when done.
type Writer struct {
	w       *bufio.Writer
	last    [numKinds]uint64
	n       uint64
	scratch [binary.MaxVarintLen64 + 2]byte
	batch   []byte // reused chunk-encoding buffer for RecordBatch
	err     error
	wrote   bool
}

var _ BatchRecorder = (*Writer)(nil)

// NewWriter returns a Writer that encodes to w with a WriterBufSize
// buffer. The header is written lazily on the first record (or on Flush).
func NewWriter(w io.Writer) *Writer {
	return NewWriterSize(w, WriterBufSize)
}

// NewWriterSize is NewWriter with an explicit output buffer size in bytes
// (values below bufio's minimum are rounded up by bufio).
func NewWriterSize(w io.Writer, size int) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, size)}
}

func (tw *Writer) writeHeader() {
	if tw.wrote {
		return
	}
	tw.wrote = true
	if _, err := tw.w.WriteString(Magic); err != nil {
		tw.err = err
		return
	}
	if err := tw.w.WriteByte(FormatVersion); err != nil {
		tw.err = err
	}
}

// Record implements Recorder, encoding one reference.
func (tw *Writer) Record(r Ref) {
	if tw.err != nil {
		return
	}
	tw.writeHeader()
	if tw.err != nil {
		return
	}
	if r.Kind >= numKinds {
		tw.err = errBadKind
		return
	}
	delta := int64(r.Addr - tw.last[r.Kind])
	tw.last[r.Kind] = r.Addr
	buf := tw.scratch[:0]
	buf = append(buf, byte(r.Kind), r.Size)
	buf = binary.AppendVarint(buf, delta)
	if _, err := tw.w.Write(buf); err != nil {
		tw.err = err
		return
	}
	tw.n++
}

// RecordBatch implements BatchRecorder: the whole chunk is encoded into
// one reused scratch buffer and handed to the buffered writer in a single
// Write, so the encoder does delta bookkeeping — not I/O plumbing — per
// reference. The byte stream is identical to per-record encoding.
func (tw *Writer) RecordBatch(refs []Ref) {
	if tw.err != nil {
		return
	}
	tw.writeHeader()
	if tw.err != nil {
		return
	}
	if cap(tw.batch) == 0 {
		tw.batch = make([]byte, 0, DefaultChunk*(binary.MaxVarintLen64+2))
	}
	buf := tw.batch[:0]
	for i := range refs {
		r := &refs[i]
		if r.Kind >= numKinds {
			tw.err = errBadKind
			return
		}
		delta := int64(r.Addr - tw.last[r.Kind])
		tw.last[r.Kind] = r.Addr
		buf = append(buf, byte(r.Kind), r.Size)
		buf = binary.AppendVarint(buf, delta)
	}
	tw.batch = buf[:0]
	if _, err := tw.w.Write(buf); err != nil {
		tw.err = err
		return
	}
	tw.n += uint64(len(refs))
}

// Count returns the number of records successfully encoded.
func (tw *Writer) Count() uint64 { return tw.n }

// Flush writes the header (if no records were recorded) and flushes
// buffered output.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	tw.writeHeader()
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// Reader decodes a trace file produced by Writer.
type Reader struct {
	r    *bufio.Reader
	last [numKinds]uint64
	init bool
}

// NewReader returns a Reader decoding from r. The header is validated on
// the first Read call.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (tr *Reader) readHeader() error {
	var hdr [len(Magic) + 1]byte
	if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return fmt.Errorf("trace: missing header: %w", ErrBadMagic)
		}
		return err
	}
	if string(hdr[:len(Magic)]) != Magic {
		return ErrBadMagic
	}
	if hdr[len(Magic)] != FormatVersion {
		return fmt.Errorf("%w: %d", ErrBadVersion, hdr[len(Magic)])
	}
	tr.init = true
	return nil
}

// Read decodes the next record. It returns io.EOF at the end of the trace.
func (tr *Reader) Read() (Ref, error) {
	if !tr.init {
		if err := tr.readHeader(); err != nil {
			return Ref{}, err
		}
	}
	kb, err := tr.r.ReadByte()
	if err != nil {
		return Ref{}, err // io.EOF here is the clean end of trace
	}
	if Kind(kb) >= numKinds {
		return Ref{}, errBadKind
	}
	size, err := tr.r.ReadByte()
	if err != nil {
		return Ref{}, corrupt(err)
	}
	delta, err := binary.ReadVarint(tr.r)
	if err != nil {
		return Ref{}, corrupt(err)
	}
	k := Kind(kb)
	tr.last[k] += uint64(delta)
	return Ref{Kind: k, Addr: tr.last[k], Size: size}, nil
}

// ReadBatch decodes up to len(buf) records into buf, returning the number
// decoded. At the clean end of the trace it returns the final short count
// with a nil error, then (0, io.EOF) on the next call; any other error is
// returned alongside the records decoded before it.
func (tr *Reader) ReadBatch(buf []Ref) (int, error) {
	for n := range buf {
		r, err := tr.Read()
		if err != nil {
			if n > 0 && err == io.EOF {
				return n, nil
			}
			return n, err
		}
		buf[n] = r
	}
	return len(buf), nil
}

// ForEach decodes the whole remaining trace, invoking fn per record.
func (tr *Reader) ForEach(fn func(Ref) error) error {
	for {
		r, err := tr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(r); err != nil {
			return err
		}
	}
}

// ForEachBatch decodes the whole remaining trace in chunks of the given
// size (<=0 selects DefaultChunk), invoking fn once per chunk. Replaying a
// trace through a BatchRecorder this way is equivalent to ForEach but pays
// one callback per chunk instead of per record.
func (tr *Reader) ForEachBatch(chunk int, fn func([]Ref) error) error {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	buf := make([]Ref, chunk)
	for {
		n, err := tr.ReadBatch(buf)
		if n > 0 {
			if ferr := fn(buf[:n]); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func corrupt(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
