package trace

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// panicAfter is a Recorder that panics once it has seen n records.
type panicAfter struct {
	n    int
	seen int
}

func (r *panicAfter) Record(Ref) {
	r.seen++
	if r.seen > r.n {
		panic("injected consumer failure")
	}
}

// blockingRecorder wedges inside Record until released — a consumer that
// is stuck, not dead.
type blockingRecorder struct {
	release chan struct{}
}

func (r *blockingRecorder) Record(Ref) { <-r.release }

// countGoroutines waits out scheduler noise before sampling.
func countGoroutines() int {
	runtime.GC()
	time.Sleep(time.Millisecond)
	return runtime.NumGoroutine()
}

// TestPipelineConsumerPanicContained: a dst panic must not crash the
// process or deadlock the producer; Close reports it and the consumer
// goroutine exits.
func TestPipelineConsumerPanicContained(t *testing.T) {
	before := countGoroutines()
	dst := &panicAfter{n: 100}
	p := NewPipeline(dst, 64, 2)
	// Far more records than the ring holds, so a dead consumer without
	// drain-and-discard would deadlock this loop.
	refs := pipeRefs(64 * 100)
	for i := range refs {
		p.Record(refs[i])
	}
	err := p.Close()
	var cp *ConsumerPanicError
	if !errors.As(err, &cp) {
		t.Fatalf("Close = %v, want *ConsumerPanicError", err)
	}
	if cp.Value != "injected consumer failure" {
		t.Errorf("panic value = %v", cp.Value)
	}
	if len(cp.Stack) == 0 {
		t.Error("no stack captured")
	}
	if p.Err() == nil {
		t.Error("Err() nil after consumer panic")
	}
	// Close is idempotent and still reports the failure.
	if err := p.Close(); !errors.As(err, &cp) {
		t.Errorf("second Close = %v", err)
	}
	for i := 0; i < 100; i++ {
		if countGoroutines() <= before {
			return
		}
	}
	t.Errorf("goroutines: %d before, %d after — consumer leaked", before, runtime.NumGoroutine())
}

// TestPipelineCloseContextBoundsStuckConsumer: CloseContext gives up on a
// consumer wedged inside dst instead of blocking forever.
func TestPipelineCloseContextBoundsStuckConsumer(t *testing.T) {
	dst := &blockingRecorder{release: make(chan struct{})}
	p := NewPipeline(dst, 8, 1)
	refs := pipeRefs(8)
	for i := range refs {
		p.Record(refs[i]) // exactly one full chunk shipped; consumer wedges on it
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.CloseContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CloseContext = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("CloseContext did not respect its bound")
	}
	// Unwedge the consumer; the abandoned pipeline then drains and its
	// goroutine exits, so an unbounded Close completes.
	close(dst.release)
	if err := p.Close(); err != nil {
		t.Fatalf("Close after release: %v", err)
	}
}

// TestPipelineHealthyCloseNil: the fault paths cost a healthy pipeline
// nothing — Close returns nil and delivery is complete (the byte-identity
// test pins exactness).
func TestPipelineHealthyCloseNil(t *testing.T) {
	var sink countingRecorder
	p := NewPipeline(&sink, 32, 2)
	refs := pipeRefs(1000)
	for i := range refs {
		p.Record(refs[i])
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	if p.Err() != nil {
		t.Fatalf("Err = %v", p.Err())
	}
	if int(sink) != len(refs) {
		t.Fatalf("delivered %d records, want %d", sink, len(refs))
	}
}

type countingRecorder int

func (c *countingRecorder) Record(Ref) { *c++ }
