package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"threadsched/internal/obs"
)

func snapCounter(s obs.Snapshot, name string) (obs.CounterSnap, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c, true
		}
	}
	return obs.CounterSnap{}, false
}

func snapHistogram(s obs.Snapshot, name string) (obs.HistogramSnap, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return obs.HistogramSnap{}, false
}

// TestSchedulerObservedParallelRun checks the scheduler's metric surface
// end to end: a parallel run must account every bin and thread to some
// worker, time its segment drains, and emit worker timeline spans — and
// attaching all of that must not change what executes.
func TestSchedulerObservedParallelRun(t *testing.T) {
	o := obs.New(4).WithTimeline()
	s := New(Config{Workers: 4, BlockSize: 1 << 12, Obs: o})
	defer s.Close()
	const bins, perBin = 64, 32
	for b := 0; b < bins; b++ {
		for i := 0; i < perBin; i++ {
			s.Fork(func(int, int) {}, b, i, uint64(b)<<12, 0, 0)
		}
	}
	s.Run(false)

	snap := s.Snapshot()
	if c, ok := snapCounter(snap, "sched.bins_run"); !ok || c.Total != bins {
		t.Errorf("sched.bins_run = %+v, want total %d", c, bins)
	}
	if c, ok := snapCounter(snap, "sched.threads_run"); !ok || c.Total != bins*perBin {
		t.Errorf("sched.threads_run = %+v, want total %d", c, bins*perBin)
	}
	h, ok := snapHistogram(snap, "sched.segment_drain_ns")
	if !ok || h.Count == 0 {
		t.Errorf("sched.segment_drain_ns missing or empty: %+v", h)
	}
	if _, ok := snapCounter(snap, "sched.steals"); !ok {
		t.Error("sched.steals counter not registered")
	}

	var buf bytes.Buffer
	if err := o.Timeline().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("timeline is not valid JSON: %s", buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"drain"`)) {
		t.Errorf("timeline has no drain spans: %s", buf.String())
	}
}

// The serial execution path attributes everything to worker 0.
func TestSchedulerObservedSerialRun(t *testing.T) {
	o := obs.New(2)
	s := New(Config{BlockSize: 1 << 12, Obs: o})
	for i := 0; i < 100; i++ {
		s.Fork(func(int, int) {}, i, 0, uint64(i%10)<<12, 0, 0)
	}
	s.Run(false)
	snap := s.Snapshot()
	if c, _ := snapCounter(snap, "sched.bins_run"); c.Total != 10 || c.PerTrack[0] != 10 {
		t.Errorf("sched.bins_run = %+v, want 10 on track 0", c)
	}
	if c, _ := snapCounter(snap, "sched.threads_run"); c.Total != 100 {
		t.Errorf("sched.threads_run = %+v, want 100", c)
	}
}

// Tour overflow is observable: an overflowing Morton tour build bumps
// sched.tour_overflow.
func TestTourOverflowCounter(t *testing.T) {
	o := obs.New(1)
	s := New(Config{BlockSize: 1 << 12, Tour: TourMorton, Obs: o})
	s.Fork(func(int, int) {}, 0, 0, uint64(1)<<(curveBits+12), 0, 0)
	s.Fork(func(int, int) {}, 1, 0, 0, 0, 0)
	s.Run(false)
	if c, ok := snapCounter(s.Snapshot(), "sched.tour_overflow"); !ok || c.Total != 1 {
		t.Errorf("sched.tour_overflow = %+v, want 1", c)
	}
}

// TestDepSchedulerObservedWaves checks the wavefront metrics: a chain of
// dependent threads across two bins must report its waves and frontier
// sizes.
func TestDepSchedulerObservedWaves(t *testing.T) {
	o := obs.New(2)
	d := NewDep(Config{Workers: 2, BlockSize: 1 << 12, Obs: o})
	defer d.Close()
	ran := make([]bool, 8)
	var prev ThreadID
	for i := 0; i < 8; i++ {
		i := i
		deps := []ThreadID{}
		if i > 0 {
			deps = append(deps, prev)
		}
		prev = d.Fork(func(int, int) { ran[i] = true }, i, 0, uint64(i%2)<<12, 0, 0, deps...)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("thread %d did not run", i)
		}
	}
	snap := d.Snapshot()
	if c, ok := snapCounter(snap, "dep.waves"); !ok || c.Total != 8 {
		t.Errorf("dep.waves = %+v, want 8 (chain forces one thread per wave)", c)
	}
	if h, ok := snapHistogram(snap, "dep.frontier"); !ok || h.Count != 8 || h.Max != 1 {
		t.Errorf("dep.frontier = %+v, want 8 observations of 1", h)
	}
}

// TestObservedRunEquivalence pins the tentpole's non-interference
// contract at the scheduler level: execution order is identical with and
// without the observability layer attached.
func TestObservedRunEquivalence(t *testing.T) {
	runOrder := func(o *obs.Obs) []int {
		var order []int
		s := New(Config{BlockSize: 1 << 12, Tour: TourMorton, Obs: o})
		for i := 0; i < 200; i++ {
			i := i
			s.Fork(func(int, int) { order = append(order, i) }, i, 0, uint64((i*37)%50)<<12, 0, 0)
		}
		s.Run(false)
		return order
	}
	plain := runOrder(nil)
	observed := runOrder(obs.New(2).WithTimeline())
	if len(plain) != len(observed) {
		t.Fatalf("lengths differ: %d vs %d", len(plain), len(observed))
	}
	for i := range plain {
		if plain[i] != observed[i] {
			t.Fatalf("execution order diverges at %d: %d vs %d", i, plain[i], observed[i])
		}
	}
}
