package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func mustTopo(t *testing.T, spec string) *Topology {
	t.Helper()
	topo, err := ParseTopology(spec)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestBinTreeBoundariesNest property-checks the tree invariants over
// random shapes: every level's starts are strictly ascending, end in the
// sentinel, and are a subset of the level below's (coarser bubbles align
// on finer ones), so any walk that respects boundaries at one level
// respects them at all deeper levels.
func TestBinTreeBoundariesNest(t *testing.T) {
	topo := mustTopo(t, "32k:2,256k:8,2m:32")
	check := func(nBins uint16, binShift uint8) bool {
		n := int(nBins%4096) + 1
		binBytes := uint64(1) << (binShift % 22) // 1 B .. 2 MB
		tree := buildBinTree(n, binBytes, topo)
		for l := 0; l < topo.Levels(); l++ {
			s := tree.starts[l]
			if s[0] != 0 || s[len(s)-1] != n {
				return false
			}
			for i := 1; i < len(s); i++ {
				if s[i] <= s[i-1] {
					return false
				}
			}
			if l > 0 {
				prev := map[int]bool{}
				for _, v := range tree.starts[l-1] {
					prev[v] = true
				}
				for _, v := range s {
					if !prev[v] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTopoAssignCoversTourOnce property-checks the partition invariant
// behind "every bin appears exactly once in any tree walk": topoAssign's
// ranges are disjoint, in tour order, and their union is exactly [0, n).
func TestTopoAssignCoversTourOnce(t *testing.T) {
	topos := []*Topology{
		nil, // exercised through the flat startsToRanges path
		mustTopo(t, "64k:1"),
		mustTopo(t, "32k:2,256k:8"),
		mustTopo(t, "32k:2,256k:8,2m:32"),
	}
	check := func(seed int64, nBins uint16, workers uint8) bool {
		n := int(nBins%2048) + 1
		w := int(workers%64) + 1
		rng := rand.New(rand.NewSource(seed))
		weights := make([]int, n)
		for i := range weights {
			weights[i] = rng.Intn(100) + 1
		}
		for _, topo := range topos {
			var asn []segRange
			if topo == nil {
				asn = startsToRanges(PartitionWeights(weights, w), n)
			} else {
				asn = topoAssign(weights, w, buildBinTree(n, 1<<14, topo))
			}
			covered := make([]int, n)
			prevHi := 0
			for _, r := range asn {
				if r.lo > r.hi || r.lo < 0 || r.hi > n {
					return false
				}
				if r.lo < prevHi && r.lo != r.hi {
					return false // out of tour order or overlapping
				}
				for i := r.lo; i < r.hi; i++ {
					covered[i]++
				}
				if r.hi > prevHi {
					prevHi = r.hi
				}
			}
			for _, c := range covered {
				if c != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTopoAssignOneLevelMatchesFlat pins the degenerate-case contract:
// under a 1-level topology the tree partition is PartitionWeights, index
// for index.
func TestTopoAssignOneLevelMatchesFlat(t *testing.T) {
	topo := mustTopo(t, "1m:64")
	check := func(seed int64, nBins uint16, workers uint8) bool {
		n := int(nBins%1024) + 1
		w := int(workers%48) + 1
		rng := rand.New(rand.NewSource(seed))
		weights := make([]int, n)
		for i := range weights {
			weights[i] = rng.Intn(50) + 1
		}
		flat := startsToRanges(PartitionWeights(weights, w), n)
		tree := topoAssign(weights, w, buildBinTree(n, 1<<14, topo))
		// topoAssign pads unused workers with empty ranges; the used prefix
		// must match exactly.
		if len(tree) < len(flat) {
			return false
		}
		if !reflect.DeepEqual(tree[:len(flat)], flat) {
			return false
		}
		for _, r := range tree[len(flat):] {
			if r.lo != r.hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAlignStealStaysInside checks wide-steal cuts always land strictly
// inside the victim range, on a boundary when one exists.
func TestAlignStealStaysInside(t *testing.T) {
	topo := mustTopo(t, "16k:2,64k:8")
	tree := buildBinTree(1000, 1<<13, topo) // 2 bins per l0 node, 8 per l1
	boundary := map[int]bool{}
	for _, v := range tree.starts[0] {
		boundary[v] = true
	}
	for _, r := range [][2]int{{0, 1000}, {3, 9}, {500, 502}, {1, 3}, {997, 1000}} {
		lo, hi := r[0], r[1]
		cut := tree.alignSteal(0, lo, hi)
		if cut <= lo || cut >= hi {
			t.Errorf("alignSteal(%d, %d) = %d, outside (%d, %d)", lo, hi, cut, lo, hi)
		}
		hasBoundary := false
		for b := lo + 1; b < hi; b++ {
			if boundary[b] {
				hasBoundary = true
				break
			}
		}
		if hasBoundary && !boundary[cut] {
			t.Errorf("alignSteal(%d, %d) = %d, not on a boundary though one exists", lo, hi, cut)
		}
	}
}

// treeEquivConfig builds two schedulers differing only in topology.
func treeEquivConfig(workers int, topo *Topology) Config {
	return Config{CacheSize: 1 << 20, BlockSize: 1 << 13, Workers: workers, Topology: topo}
}

// forkSkewed forks the skewed workload of TestParallelRunWorkerCounts.
func forkSkewed(s *Scheduler, counts []int32, n int) {
	for i := 0; i < n; i++ {
		s.Fork(func(a1, _ int) { atomic.AddInt32(&counts[a1], 1) }, i, 0,
			uint64(i%(8+i%29))<<13, 0, 0)
	}
}

// TestTreeOneLevelMatchesFlatTour pins the 1-level equivalence contract
// end to end through the scheduler: tour order (via RunEach, which is
// common to both), run stats, and per-bin occupancy are bit-identical
// between a flat scheduler and a 1-level-topology scheduler, and a
// parallel run through the tree dispatcher runs the same threads with the
// same stats.
func TestTreeOneLevelMatchesFlatTour(t *testing.T) {
	for _, tour := range []TourOrder{TourAllocation, TourMorton, TourHilbert} {
		flat := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 13, Tour: tour})
		oneLvl := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 13, Tour: tour,
			Topology: mustTopo(t, "1m:64")})
		const n = 3000
		fc, oc := make([]int32, n), make([]int32, n)
		forkSkewed(flat, fc, n)
		forkSkewed(oneLvl, oc, n)
		var flatOrder, oneOrder [][2]int
		flat.RunEach(true, func(bin, threads int) { flatOrder = append(flatOrder, [2]int{bin, threads}) })
		oneLvl.RunEach(true, func(bin, threads int) { oneOrder = append(oneOrder, [2]int{bin, threads}) })
		if !reflect.DeepEqual(flatOrder, oneOrder) {
			t.Fatalf("tour=%v: bin visit order diverged", tour)
		}
		if f, o := flat.LastRun(), oneLvl.LastRun(); f != o {
			t.Fatalf("tour=%v: run stats diverged: %+v vs %+v", tour, f, o)
		}
		if f, o := flat.TourOccupancy(), oneLvl.TourOccupancy(); !reflect.DeepEqual(f, o) {
			t.Fatalf("tour=%v: tour occupancy diverged", tour)
		}
		// Drain both through their parallel dispatchers (flat segmented vs
		// 1-level tree) and compare outcomes.
		flat2 := New(treeEquivConfig(4, nil))
		one2 := New(treeEquivConfig(4, mustTopo(t, "1m:64")))
		fc2, oc2 := make([]int32, n), make([]int32, n)
		forkSkewed(flat2, fc2, n)
		forkSkewed(one2, oc2, n)
		flat2.Run(false)
		one2.Run(false)
		flat2.Close()
		one2.Close()
		for i := 0; i < n; i++ {
			if fc2[i] != 1 || oc2[i] != 1 {
				t.Fatalf("thread %d: flat ran %d, tree ran %d", i, fc2[i], oc2[i])
			}
		}
		if f, o := flat2.LastRun(), one2.LastRun(); f != o {
			t.Fatalf("parallel run stats diverged: %+v vs %+v", f, o)
		}
	}
}

// TestTreeRunAllTopologies runs the skewed workload through multi-level
// trees at several worker counts and checks every thread runs exactly
// once; under -race this is also the bins-stay-contained proof for the
// hierarchical dispatcher.
func TestTreeRunAllTopologies(t *testing.T) {
	specs := []string{"16k:1,128k:4", "16k:2,128k:4,1m:16", "16k:2:4,64k:4:8,1m:16"}
	for _, spec := range specs {
		for _, w := range []int{2, 3, 4, runtime.NumCPU() + 1} {
			s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 13, Workers: w,
				Topology: mustTopo(t, spec)})
			const n = 4000
			counts := make([]int32, n)
			forkSkewed(s, counts, n)
			s.Run(false)
			s.Close()
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("topo=%s workers=%d: thread %d ran %d times", spec, w, i, c)
				}
			}
		}
	}
}

// TestTreeRunKeepsBinsOnOneWorker is TestSegmentedRunKeepsBinsOnOneWorker
// through the hierarchical dispatcher: per-bin slices appended without
// synchronization, enforced by the race detector.
func TestTreeRunKeepsBinsOnOneWorker(t *testing.T) {
	const bins = 37
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 12, Workers: 4,
		Topology: mustTopo(t, "8k:2,64k:4")})
	perBin := make([][]int, bins)
	total := 0
	for j := 0; j < 50; j++ {
		for b := 0; b < bins; b++ {
			b := b
			s.Fork(func(a1, _ int) { perBin[b] = append(perBin[b], a1) }, j, 0,
				uint64(b)<<12, 0, 0)
			total++
		}
	}
	s.Run(false)
	s.Close()
	got := 0
	for b := range perBin {
		got += len(perBin[b])
		for i := 1; i < len(perBin[b]); i++ {
			if perBin[b][i] < perBin[b][i-1] {
				t.Fatalf("bin %d ran out of fork order: %v", b, perBin[b])
			}
		}
	}
	if got != total {
		t.Fatalf("ran %d threads, want %d", got, total)
	}
}

// TestTreeStealStorm manufactures maximal steal pressure at every level
// boundary: all work forks into the bins of worker 0's home subtree, so
// every other worker must steal across its level boundary to participate,
// repeatedly, while the race detector watches the segment CAS traffic.
func TestTreeStealStorm(t *testing.T) {
	for _, spec := range []string{"8k:2,32k:4", "8k:2,32k:4,256k:8"} {
		s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 12, Workers: 8,
			StealChunk: 1, // maximal steal granularity
			Topology:   mustTopo(t, spec)})
		const n = 6000
		counts := make([]int32, n)
		var slow atomic.Int64
		for i := 0; i < n; i++ {
			s.Fork(func(a1, _ int) {
				atomic.AddInt32(&counts[a1], 1)
				// A little work so thieves catch victims mid-drain.
				if a1%97 == 0 {
					slow.Add(1)
				}
			}, i, 0, uint64(i%4)<<12, 0, 0) // 4 bins: fewer bins than workers
		}
		s.Run(false)
		s.Close()
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("topo=%s: thread %d ran %d times", spec, i, c)
			}
		}
	}
}

// TestStealChunkKnob checks the Config knob: default applied when unset,
// honored when set, and a chunk of 1 still runs everything exactly once.
func TestStealChunkKnob(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20})
	if s.cfg.StealChunk != DefaultStealChunk {
		t.Fatalf("default StealChunk = %d, want %d", s.cfg.StealChunk, DefaultStealChunk)
	}
	s = New(Config{CacheSize: 1 << 20, StealChunk: 3})
	if s.cfg.StealChunk != 3 {
		t.Fatalf("StealChunk = %d, want 3", s.cfg.StealChunk)
	}
	for _, chunk := range []int{1, 2, 64} {
		s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 13, Workers: 4, StealChunk: chunk})
		const n = 2000
		counts := make([]int32, n)
		forkSkewed(s, counts, n)
		s.Run(false)
		s.Close()
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("chunk=%d: thread %d ran %d times", chunk, i, c)
			}
		}
	}
}

// TestDetachUpperConcurrent hammers one segment with a draining owner and
// competing thieves using different cut policies, checking every index is
// claimed exactly once across all parties.
func TestDetachUpperConcurrent(t *testing.T) {
	const n = 1 << 14
	var seg binSegment
	seg.bounds.Store(packRange(0, n))
	claimed := make([]int32, n)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // owner drains from the front
		defer wg.Done()
		for {
			lo, hi, ok := seg.take(4)
			if !ok {
				return
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&claimed[i], 1)
			}
		}
	}()
	thief := func(cut func(lo, hi int) int) {
		defer wg.Done()
		for {
			lo, hi, ok := seg.detachUpper(cut)
			if !ok {
				if seg.remaining() == 0 {
					return
				}
				continue // owner still holds the last index
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&claimed[i], 1)
			}
		}
	}
	go thief(func(lo, hi int) int { return lo + (hi-lo+1)/2 })
	go thief(func(lo, hi int) int { return hi - 3 })
	wg.Wait()
	for i, c := range claimed {
		if c != 1 {
			t.Fatalf("index %d claimed %d times", i, c)
		}
	}
}
