package core

import "testing"

// The paper's design goal is fork overhead far below a cache miss; in Go
// terms the fork path must not allocate in steady state (free lists
// recycle groups and bins, §3.2's amortization).
func TestForkRunSteadyStateAllocationFree(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 16})
	null := func(int, int) {}
	cycle := func() {
		for j := 0; j < 1024; j++ {
			s.Fork(null, j, 0, uint64(j%16)<<16, uint64((j/16)%16)<<16, 0)
		}
		s.Run(false)
	}
	cycle() // warm free lists
	avg := testing.AllocsPerRun(20, cycle)
	// One slice allocation (the tour's bin slice) per Run is acceptable;
	// per-thread allocations are not.
	if avg > 8 {
		t.Fatalf("steady-state fork/run cycle allocates %.1f objects per 1024 threads", avg)
	}
}

func TestKeepRunDoesNotGrow(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20})
	for j := 0; j < 256; j++ {
		s.Fork(func(int, int) {}, j, 0, uint64(j)<<12, 0, 0)
	}
	s.Run(true)
	avg := testing.AllocsPerRun(20, func() { s.Run(true) })
	if avg > 4 {
		t.Fatalf("keep re-run allocates %.1f objects", avg)
	}
	if s.Pending() != 256 {
		t.Fatalf("keep destroyed the schedule: pending %d", s.Pending())
	}
}

func TestInitDiscardsPendingThreads(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20})
	ran := 0
	s.Fork(func(int, int) { ran++ }, 0, 0, 0, 0, 0)
	s.Init(0, 0) // th_init resets the tables
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after Init", s.Pending())
	}
	s.Run(false)
	if ran != 0 {
		t.Fatal("discarded thread ran")
	}
}

func TestWorkersWithKeep(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 14, Workers: 4})
	var counts [64]int32
	for j := 0; j < 64; j++ {
		j := j
		s.Fork(func(a1, _ int) { counts[a1]++ }, j, 0, uint64(j)<<14, 0, 0)
	}
	// Workers run bins concurrently but each bin serially; with one
	// thread per bin there is no intra-bin concurrency, yet counts are
	// per-thread slots so no two goroutines touch the same one... except
	// the increment itself: each slot is written by exactly one thread
	// per run, so plain increments are safe across runs (Run joins all
	// workers before returning).
	s.Run(true)
	s.Run(false)
	for j, c := range counts {
		if c != 2 {
			t.Fatalf("thread %d ran %d times under workers+keep", j, c)
		}
	}
}

func TestWorkersTourCombination(t *testing.T) {
	for _, tour := range []TourOrder{TourMorton, TourHilbert} {
		s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 12, Workers: 3, Tour: tour})
		var total int32
		done := make(chan struct{}, 512)
		for j := 0; j < 512; j++ {
			s.Fork(func(int, int) { done <- struct{}{} }, j, 0,
				uint64(j)<<12, uint64(j%7)<<12, 0)
		}
		s.Run(false)
		close(done)
		for range done {
			total++
		}
		if total != 512 {
			t.Fatalf("tour %v with workers ran %d threads, want 512", tour, total)
		}
	}
}
