package core

import (
	"sort"
	"sync"
	"sync/atomic"
)

// threadRec is one scheduled thread: "a void function pointer and the two
// arguments arg1 and arg2 supplied by the user to th_fork" (§3.2).
type threadRec struct {
	fn         Func
	arg1, arg2 int
}

// group batches thread records within a bin: "an array of these structures
// plus an integer to count the number of threads actually in the group and
// a pointer to the next thread group in the bin" (§3.2).
type group struct {
	recs []threadRec
	next *group
}

// binKey is the block coordinate triple identifying a bin.
type binKey [MaxHints]uint64

// bin carries the paper's three link fields and search key (§3.2): the
// hash-collision chain, the thread-group chain, and the ready-list link.
type bin struct {
	key       binKey
	hashNext  *bin
	groups    *group // first thread group
	tail      *group // last thread group (append point)
	readyNext *bin
	threads   int
}

// Scheduler is the thread package. It is not safe for concurrent Fork
// calls; like the paper's package it is a sequential-program facility
// (Run may fan bins out to workers when configured).
type Scheduler struct {
	cfg        Config
	blockShift uint
	hashDim    int
	hashMask   uint64
	table      []*bin // hashDim³ cells, 3-D array flattened

	readyHead *bin
	readyTail *bin
	binsUsed  int
	pending   int

	freeBins   *bin
	freeGroups *group

	totalForked uint64
	totalRun    uint64
	runs        uint64
	lastRun     RunStats
}

// RunStats snapshots one Run call's bin occupancy, taken before the bins
// are released; the paper quotes exactly these figures per workload (§4.2:
// "1,048,576 threads distributed in 81 bins for an average of 12,945
// threads per bin").
type RunStats struct {
	// Threads is the number of threads executed by the run.
	Threads int
	// Bins is the number of non-empty bins visited.
	Bins int
	// MinPerBin and MaxPerBin bound the per-bin thread counts.
	MinPerBin, MaxPerBin int
	// AvgPerBin is Threads / Bins.
	AvgPerBin float64
}

// New returns a Scheduler configured by cfg.
func New(cfg Config) *Scheduler {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.Dims <= 0 {
		cfg.Dims = MaxHints
	}
	if cfg.GroupSize <= 0 {
		cfg.GroupSize = DefaultGroupSize
	}
	s := &Scheduler{cfg: cfg}
	s.Init(cfg.BlockSize, uint64(cfg.HashDim))
	return s
}

// Init is th_init(blocksize, hashsize): set the block size and hash table
// size, 0 selecting the configuration-dependent defaults. It may be called
// more than once; pending threads are discarded (the C package reset its
// tables on reconfiguration).
func (s *Scheduler) Init(blockSize, hashDim uint64) {
	if blockSize == 0 {
		blockSize = DefaultBlockSize(s.cfg.CacheSize, s.cfg.Dims)
	} else {
		blockSize = floorPow2(blockSize)
	}
	if hashDim == 0 {
		hashDim = DefaultHashDim
	} else {
		hashDim = floorPow2(hashDim)
	}
	s.cfg.BlockSize = blockSize
	s.blockShift = uint(trailingZeros(blockSize))
	s.hashDim = int(hashDim)
	s.hashMask = hashDim - 1
	s.table = make([]*bin, hashDim*hashDim*hashDim)
	s.readyHead, s.readyTail = nil, nil
	s.binsUsed = 0
	s.pending = 0
	s.freeBins = nil
	s.freeGroups = nil
}

func trailingZeros(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// BlockSize returns the per-dimension block size currently in effect.
func (s *Scheduler) BlockSize() uint64 { return s.cfg.BlockSize }

// CacheSize returns the cache capacity the scheduler was configured for.
func (s *Scheduler) CacheSize() uint64 { return s.cfg.CacheSize }

// HashDim returns the per-dimension hash table size currently in effect.
func (s *Scheduler) HashDim() int { return s.hashDim }

// Pending returns the number of threads forked but not yet run.
func (s *Scheduler) Pending() int { return s.pending }

// Fork is th_fork(f, arg1, arg2, hint1, hint2, hint3): create and schedule
// a thread to call f(arg1, arg2). The hints are memory addresses used as
// scheduling hints; pass 0 for unused trailing dimensions (§3.1).
func (s *Scheduler) Fork(f Func, arg1, arg2 int, hint1, hint2, hint3 uint64) {
	key := binKey{hint1 >> s.blockShift, hint2 >> s.blockShift, hint3 >> s.blockShift}
	if s.cfg.FoldSymmetric {
		sortKey(&key)
	}
	b := s.lookupBin(key)
	g := b.tail
	if g == nil || len(g.recs) == cap(g.recs) {
		g = s.newGroup()
		if b.tail == nil {
			b.groups = g
		} else {
			b.tail.next = g
		}
		b.tail = g
	}
	g.recs = append(g.recs, threadRec{fn: f, arg1: arg1, arg2: arg2})
	b.threads++
	s.pending++
	s.totalForked++
}

// lookupBin finds or creates the bin for key, hashing each block
// coordinate by mask into the 3-D table and chaining collisions.
func (s *Scheduler) lookupBin(key binKey) *bin {
	idx := ((key[0]&s.hashMask)*uint64(s.hashDim)+(key[1]&s.hashMask))*uint64(s.hashDim) +
		(key[2] & s.hashMask)
	for b := s.table[idx]; b != nil; b = b.hashNext {
		if b.key == key {
			return b
		}
	}
	b := s.newBin(key)
	b.hashNext = s.table[idx]
	s.table[idx] = b
	// "Each time a new bin is allocated, it is added to the end of this
	// [ready] list" (§3.2).
	if s.readyTail == nil {
		s.readyHead = b
	} else {
		s.readyTail.readyNext = b
	}
	s.readyTail = b
	s.binsUsed++
	return b
}

func (s *Scheduler) newBin(key binKey) *bin {
	b := s.freeBins
	if b != nil {
		s.freeBins = b.hashNext
		*b = bin{key: key}
		return b
	}
	return &bin{key: key}
}

func (s *Scheduler) newGroup() *group {
	g := s.freeGroups
	if g != nil {
		s.freeGroups = g.next
		g.next = nil
		g.recs = g.recs[:0]
		return g
	}
	return &group{recs: make([]threadRec, 0, s.cfg.GroupSize)}
}

// Run is th_run(keep): run all threads that have been scheduled by Fork,
// then return. The thread specifications are destroyed if keep is false,
// or saved to allow re-execution otherwise (§3.1).
func (s *Scheduler) Run(keep bool) {
	order := s.tour()
	s.snapshotRun(order)
	if s.cfg.Workers > 1 && len(order) > 1 {
		s.runParallel(order)
	} else {
		for _, b := range order {
			s.runBin(b)
		}
	}
	s.runs++
	if !keep {
		s.release()
	}
}

// RunEach is Run with a per-bin hook: beforeBin is invoked before each
// bin executes, with the bin's index in tour order and its thread count.
// It always runs bins sequentially on the calling goroutine (Workers is
// ignored), which is what deterministic simulations — e.g. the SMP model
// that re-routes each bin's reference stream to a different simulated
// processor — need.
func (s *Scheduler) RunEach(keep bool, beforeBin func(bin, threads int)) {
	order := s.tour()
	s.snapshotRun(order)
	for i, b := range order {
		if beforeBin != nil {
			beforeBin(i, b.threads)
		}
		s.runBin(b)
	}
	s.runs++
	if !keep {
		s.release()
	}
}

func (s *Scheduler) snapshotRun(order []*bin) {
	s.lastRun = RunStats{Threads: s.pending, Bins: len(order)}
	for i, b := range order {
		if i == 0 || b.threads < s.lastRun.MinPerBin {
			s.lastRun.MinPerBin = b.threads
		}
		if b.threads > s.lastRun.MaxPerBin {
			s.lastRun.MaxPerBin = b.threads
		}
	}
	if len(order) > 0 {
		s.lastRun.AvgPerBin = float64(s.pending) / float64(len(order))
	}
}

// tour returns the bins in execution order.
func (s *Scheduler) tour() []*bin {
	bins := make([]*bin, 0, s.binsUsed)
	for b := s.readyHead; b != nil; b = b.readyNext {
		bins = append(bins, b)
	}
	switch s.cfg.Tour {
	case TourMorton:
		sort.SliceStable(bins, func(i, j int) bool {
			return morton3(bins[i].key) < morton3(bins[j].key)
		})
	case TourHilbert:
		sort.SliceStable(bins, func(i, j int) bool {
			return hilbertLess(bins[i].key, bins[j].key)
		})
	}
	return bins
}

// runBin executes every thread of one bin, group FIFO order within the
// bin; "the scheduling order of threads in the same bin can be arbitrary"
// (§2.3) — we use fork order.
func (s *Scheduler) runBin(b *bin) {
	n := uint64(0)
	for g := b.groups; g != nil; g = g.next {
		for i := range g.recs {
			r := &g.recs[i]
			r.fn(r.arg1, r.arg2)
		}
		n += uint64(len(g.recs))
	}
	atomic.AddUint64(&s.totalRun, n)
}

// runParallel executes bins across Workers goroutines; each bin runs
// entirely on one worker so the per-bin working set still fits one cache.
func (s *Scheduler) runParallel(order []*bin) {
	var next int64 = -1
	var wg sync.WaitGroup
	workers := s.cfg.Workers
	if workers > len(order) {
		workers = len(order)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1)
				if i >= int64(len(order)) {
					return
				}
				s.runBin(order[i])
			}
		}()
	}
	wg.Wait()
}

// release destroys thread specifications after a non-keep run, recycling
// bins and groups through the free lists and clearing the hash table.
func (s *Scheduler) release() {
	for b := s.readyHead; b != nil; {
		nextBin := b.readyNext
		for g := b.groups; g != nil; {
			nextGroup := g.next
			g.next = s.freeGroups
			s.freeGroups = g
			g = nextGroup
		}
		b.groups, b.tail = nil, nil
		b.readyNext = nil
		b.hashNext = s.freeBins
		s.freeBins = b
		b = nextBin
	}
	for i := range s.table {
		s.table[i] = nil
	}
	s.readyHead, s.readyTail = nil, nil
	s.binsUsed = 0
	s.pending = 0
}

func sortKey(k *binKey) {
	// Sorting network for three elements.
	if k[0] > k[1] {
		k[0], k[1] = k[1], k[0]
	}
	if k[1] > k[2] {
		k[1], k[2] = k[2], k[1]
	}
	if k[0] > k[1] {
		k[0], k[1] = k[1], k[0]
	}
}
