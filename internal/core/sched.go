package core

import (
	"context"
	"math/bits"
	"sort"
	"sync/atomic"
)

// threadRec is one scheduled thread: "a void function pointer and the two
// arguments arg1 and arg2 supplied by the user to th_fork" (§3.2).
type threadRec struct {
	fn         Func
	arg1, arg2 int
}

// group batches thread records within a bin: "an array of these structures
// plus an integer to count the number of threads actually in the group and
// a pointer to the next thread group in the bin" (§3.2).
type group struct {
	recs []threadRec
	next *group
}

// binKey is the block coordinate triple identifying a bin.
type binKey [MaxHints]uint64

// bin carries the paper's three link fields and search key (§3.2): the
// hash-collision chain, the thread-group chain, and the ready-list link.
type bin struct {
	key       binKey
	hashNext  *bin
	groups    *group // first thread group
	tail      *group // last thread group (append point)
	readyNext *bin
	threads   int
}

// Scheduler is the thread package. With the zero configuration it is the
// paper's sequential-program facility — nothing may be called
// concurrently; Config.ParallelFork and Config.Workers widen the contract
// as described in the package documentation.
type Scheduler struct {
	cfg        Config
	blockShift uint
	hashDim    int
	hashShift  uint // log2(hashDim); cell index is computed by shifts
	hashMask   uint64
	table      []*bin // hashDim³ cells, 3-D array flattened

	readyHead *bin
	readyTail *bin
	binsUsed  int
	pending   int

	freeBins   *bin
	freeGroups *group

	// shards is non-nil iff cfg.ParallelFork: the fork-side state above
	// (ready list, free lists, counters) then lives striped across the
	// shards instead, and each hash cell's chain is guarded by the mutex
	// of the shard owning it.
	shards    []forkShard
	shardMask uint64

	// tourCache memoizes the sorted bin tour between runs; it is dropped
	// on release/Init and rebuilt only when a bin was allocated since.
	tourCache []*bin
	tourStale bool // serial-path staleness mark (sharded mode uses shard.grew)

	// running flags an in-progress Run so Fork can detect — and reject
	// with a clear panic — the one overlap no mode permits.
	running atomic.Bool

	pool *workerPool // persistent parallel-run workers, lazily created

	// met holds the pre-resolved observability handles (disabled when
	// Config.Obs is nil); see internal/core/obs.go for the metric set.
	met schedObs

	totalForked uint64 // serial-path count (sharded counts fold in via forkedCount)
	totalRun    uint64
	// runs and lastRun are written by Run/RunEach and read by Stats and
	// LastRun, which are documented callable concurrently with a live
	// Run — hence the atomics.
	runs    atomic.Uint64
	lastRun atomic.Pointer[RunStats]
}

// RunStats snapshots one Run call's bin occupancy, taken before the bins
// are released; the paper quotes exactly these figures per workload (§4.2:
// "1,048,576 threads distributed in 81 bins for an average of 12,945
// threads per bin").
type RunStats struct {
	// Threads is the number of threads executed by the run.
	Threads int
	// Bins is the number of non-empty bins visited.
	Bins int
	// MinPerBin and MaxPerBin bound the per-bin thread counts. A bin
	// exists only because a Fork placed a thread in it, so MinPerBin is
	// at least 1 whenever Bins > 0; the empty snapshot — a Run with
	// nothing forked — is all-zero and identified by Empty.
	MinPerBin, MaxPerBin int
	// AvgPerBin is Threads / Bins, or 0 for the empty snapshot.
	AvgPerBin float64
}

// Empty reports whether the snapshot is of a run that visited no bins —
// the only case in which MinPerBin and MaxPerBin read 0.
func (r RunStats) Empty() bool { return r.Bins == 0 }

// New returns a Scheduler configured by cfg.
func New(cfg Config) *Scheduler {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.Dims <= 0 {
		cfg.Dims = MaxHints
	}
	if cfg.GroupSize <= 0 {
		cfg.GroupSize = DefaultGroupSize
	}
	if cfg.StealChunk <= 0 {
		cfg.StealChunk = DefaultStealChunk
	}
	s := &Scheduler{cfg: cfg, met: newSchedObs(cfg.Obs, cfg.Topology)}
	s.Init(cfg.BlockSize, uint64(cfg.HashDim))
	return s
}

// Init is th_init(blocksize, hashsize): set the block size and hash table
// size, 0 selecting the configuration-dependent defaults. It may be called
// more than once; pending threads are discarded (the C package reset its
// tables on reconfiguration).
func (s *Scheduler) Init(blockSize, hashDim uint64) {
	if blockSize == 0 {
		blockSize = DefaultBlockSize(s.cfg.CacheSize, s.cfg.Dims)
	} else {
		blockSize = floorPow2(blockSize)
	}
	if hashDim == 0 {
		hashDim = DefaultHashDim
	} else {
		hashDim = floorPow2(hashDim)
	}
	s.cfg.BlockSize = blockSize
	s.blockShift = uint(bits.TrailingZeros64(blockSize))
	s.hashDim = int(hashDim)
	s.hashShift = uint(bits.TrailingZeros64(hashDim))
	s.hashMask = hashDim - 1
	s.table = make([]*bin, hashDim*hashDim*hashDim)
	s.readyHead, s.readyTail = nil, nil
	s.binsUsed = 0
	s.pending = 0
	s.freeBins = nil
	s.freeGroups = nil
	s.tourCache = nil
	s.tourStale = false
	// Lifetime counters survive reconfiguration; fold the shard stripes'
	// counts into the scheduler-level one before the shards are remade.
	s.totalForked = s.forkedCount()
	if s.cfg.ParallelFork {
		n := s.cfg.ForkShards
		if n <= 0 {
			n = defaultForkShards()
		}
		n = int(ceilPow2(uint64(n)))
		s.shards = make([]forkShard, n)
		s.shardMask = uint64(n - 1)
	} else {
		s.shards = nil
		s.shardMask = 0
	}
}

// BlockSize returns the per-dimension block size currently in effect.
func (s *Scheduler) BlockSize() uint64 { return s.cfg.BlockSize }

// CacheSize returns the cache capacity the scheduler was configured for.
func (s *Scheduler) CacheSize() uint64 { return s.cfg.CacheSize }

// HashDim returns the per-dimension hash table size currently in effect.
func (s *Scheduler) HashDim() int { return s.hashDim }

// Workers returns the configured parallel-run worker count; values below
// two mean Run executes serially on the calling goroutine.
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// Topology returns the cache topology parallel runs schedule against;
// nil means flat single-level dispatch.
func (s *Scheduler) Topology() *Topology { return s.cfg.Topology }

// ConcurrentFork reports whether the scheduler was built with
// Config.ParallelFork, i.e. whether Fork may be called from multiple
// goroutines concurrently (never concurrently with Run).
func (s *Scheduler) ConcurrentFork() bool { return s.shards != nil }

// Pending returns the number of threads forked but not yet run.
func (s *Scheduler) Pending() int { return s.pendingCount() }

// cellIndex maps a bin key to its hash-table cell. hashDim is a power of
// two, so the 3-D flattening ((k0·d + k1)·d + k2 with d = hashDim) reduces
// to shifts and masks.
func (s *Scheduler) cellIndex(key binKey) uint64 {
	return (key[0]&s.hashMask)<<(2*s.hashShift) |
		(key[1]&s.hashMask)<<s.hashShift |
		(key[2] & s.hashMask)
}

// Fork is th_fork(f, arg1, arg2, hint1, hint2, hint3): create and schedule
// a thread to call f(arg1, arg2). The hints are memory addresses used as
// scheduling hints; pass 0 for unused trailing dimensions (§3.1).
//
// Fork must never overlap a Run in progress, in any mode; it panics if it
// detects that misuse. Concurrent Fork calls require Config.ParallelFork.
func (s *Scheduler) Fork(f Func, arg1, arg2 int, hint1, hint2, hint3 uint64) {
	if s.running.Load() {
		panic("core: Fork called during Run; fork and run phases must not overlap " +
			"(ParallelFork only permits Fork calls to run concurrently with each other)")
	}
	key := binKey{hint1 >> s.blockShift, hint2 >> s.blockShift, hint3 >> s.blockShift}
	if s.cfg.FoldSymmetric {
		sortKey(&key)
	}
	if s.shards != nil {
		s.forkSharded(key, threadRec{fn: f, arg1: arg1, arg2: arg2})
		return
	}
	b := s.lookupBin(key)
	g := b.tail
	if g == nil || len(g.recs) == cap(g.recs) {
		g = s.newGroup()
		if b.tail == nil {
			b.groups = g
		} else {
			b.tail.next = g
		}
		b.tail = g
	}
	g.recs = append(g.recs, threadRec{fn: f, arg1: arg1, arg2: arg2})
	b.threads++
	s.pending++
	s.totalForked++
}

// lookupBin finds or creates the bin for key, hashing each block
// coordinate by mask into the 3-D table and chaining collisions.
func (s *Scheduler) lookupBin(key binKey) *bin {
	idx := s.cellIndex(key)
	for b := s.table[idx]; b != nil; b = b.hashNext {
		if b.key == key {
			return b
		}
	}
	b := s.newBin(key)
	b.hashNext = s.table[idx]
	s.table[idx] = b
	// "Each time a new bin is allocated, it is added to the end of this
	// [ready] list" (§3.2).
	if s.readyTail == nil {
		s.readyHead = b
	} else {
		s.readyTail.readyNext = b
	}
	s.readyTail = b
	s.binsUsed++
	s.tourStale = true
	return b
}

func (s *Scheduler) newBin(key binKey) *bin {
	b := s.freeBins
	if b != nil {
		s.freeBins = b.hashNext
		*b = bin{key: key}
		return b
	}
	return &bin{key: key}
}

func (s *Scheduler) newGroup() *group {
	g := s.freeGroups
	if g != nil {
		s.freeGroups = g.next
		g.next = nil
		g.recs = g.recs[:0]
		return g
	}
	return &group{recs: make([]threadRec, 0, s.cfg.GroupSize)}
}

// Run is th_run(keep): run all threads that have been scheduled by Fork,
// then return. The thread specifications are destroyed if keep is false,
// or saved to allow re-execution otherwise (§3.1).
//
// Run is a thin wrapper over RunContext with a background context: if a
// thread body panics, the recovered *ThreadPanicError is re-panicked on
// the calling goroutine, so pre-containment callers observe a panic
// exactly as before — including from parallel runs, which previously
// crashed the process from a worker goroutine.
func (s *Scheduler) Run(keep bool) {
	if err := s.RunContext(context.Background(), keep); err != nil {
		panic(err)
	}
}

// RunContext is Run with fault containment and cooperative cancellation.
// A panicking thread body no longer unwinds the process: the first panic
// is recovered with its context (thread, bin, worker, phase), every
// worker quiesces at its next bin boundary, and the run returns a
// *ThreadPanicError. When ctx is cancelled, workers stop claiming bins at
// the next bin/segment boundary and RunContext returns ctx.Err(); the
// thread executing at cancellation time runs to completion (threads are
// run-to-completion, §3 — there is no preemption point inside a body).
// Cancellation wins even when it lands during the final bin: a run whose
// ctx is done returns ctx.Err() regardless of how much of the tour
// completed, so callers can rely on a nil error meaning both "all threads
// ran" and "nobody asked us to stop".
//
// On any error return the schedule is destroyed regardless of keep — part
// of it has executed, so a keep re-run could not be exact — leaving the
// scheduler empty, quiesced (worker goroutines parked in the pool, none
// leaked), and immediately reusable for a fresh Fork/Run cycle. The Runs
// counter is not incremented for a failed run.
func (s *Scheduler) RunContext(ctx context.Context, keep bool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	order := s.tour()
	s.snapshotRun(order)
	if err := s.executeAll(ctx, order); err != nil {
		s.release()
		return err
	}
	s.runs.Add(1)
	if !keep {
		s.release()
	}
	return nil
}

// executeAll runs the ordered bins, serially or across workers, holding
// the running flag for the duration (released even if a thread panics, so
// a recovered misuse leaves the scheduler reusable after Init).
func (s *Scheduler) executeAll(ctx context.Context, order []*bin) error {
	s.running.Store(true)
	defer s.running.Store(false)
	if s.cfg.Workers > 1 && len(order) > 1 {
		return s.runParallel(ctx, order)
	}
	start := s.met.now()
	sp := s.met.span(0, "run")
	threads, bins := 0, 0
	var err error
	for i, b := range order {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			break
		}
		n, perr := s.runBinContained(b, i, 0, "run")
		threads += n
		bins++
		if perr != nil {
			err = perr
			break
		}
	}
	if err == nil {
		// Cancellation wins even when it lands during the final bin, so
		// serial and parallel runs agree (the parallel path's runControl
		// reports ctx.Err() after the worker barrier regardless of how
		// much of the tour completed).
		err = ctx.Err()
	}
	s.met.threadsRun.Add(0, uint64(threads))
	s.met.drainDone(0, start, bins, sp)
	return err
}

// RunEach is Run with a per-bin hook: beforeBin is invoked before each
// bin executes, with the bin's index in tour order and its thread count.
// It always runs bins sequentially on the calling goroutine (Workers is
// ignored), which is what deterministic simulations — e.g. the SMP model
// that re-routes each bin's reference stream to a different simulated
// processor — need. Like Run, it re-panics a contained thread panic.
func (s *Scheduler) RunEach(keep bool, beforeBin func(bin, threads int)) {
	if err := s.RunEachContext(context.Background(), keep, beforeBin); err != nil {
		panic(err)
	}
}

// RunEachContext is RunEach with the containment and cancellation
// semantics of RunContext: thread panics return a *ThreadPanicError, a
// cancelled ctx stops the tour at the next bin boundary with ctx.Err(),
// and any error destroys the schedule regardless of keep. Panics in the
// beforeBin hook itself are the caller's own and propagate unchanged.
func (s *Scheduler) RunEachContext(ctx context.Context, keep bool, beforeBin func(bin, threads int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	order := s.tour()
	s.snapshotRun(order)
	var err error
	func() {
		s.running.Store(true)
		defer s.running.Store(false)
		for i, b := range order {
			if cerr := ctx.Err(); cerr != nil {
				err = cerr
				return
			}
			if beforeBin != nil {
				beforeBin(i, b.threads)
			}
			_, perr := s.runBinContained(b, i, 0, "run-each")
			if perr != nil {
				err = perr
				return
			}
		}
		err = ctx.Err() // cancellation wins even on a completed tour
	}()
	if err != nil {
		s.release()
		return err
	}
	s.runs.Add(1)
	if !keep {
		s.release()
	}
	return nil
}

func (s *Scheduler) snapshotRun(order []*bin) {
	st := RunStats{Threads: s.pendingCount(), Bins: len(order)}
	for i, b := range order {
		if i == 0 || b.threads < st.MinPerBin {
			st.MinPerBin = b.threads
		}
		if b.threads > st.MaxPerBin {
			st.MaxPerBin = b.threads
		}
	}
	if len(order) > 0 {
		st.AvgPerBin = float64(st.Threads) / float64(len(order))
	}
	s.lastRun.Store(&st)
}

// tour returns the bins in execution order. The order is memoized: it
// changes only when a bin is allocated (Fork of a new block) or the
// schedule is destroyed, so keep=true re-runs skip the collect and sort.
func (s *Scheduler) tour() []*bin {
	stale := s.tourConsumeStale()
	if s.tourCache != nil && !stale {
		return s.tourCache
	}
	bins := make([]*bin, 0, s.binsCount())
	s.eachBin(func(b *bin) { bins = append(bins, b) })
	switch s.cfg.Tour {
	case TourMorton:
		if tourOverflows(bins) {
			// Distant bins would alias under the masked single-chunk
			// curve index; use the full-width chunked compare instead.
			s.met.tourOverflow.Inc(0)
			sort.SliceStable(bins, func(i, j int) bool {
				return mortonLessWide(bins[i].key, bins[j].key)
			})
			break
		}
		sort.SliceStable(bins, func(i, j int) bool {
			return morton3(bins[i].key) < morton3(bins[j].key)
		})
	case TourHilbert:
		if tourOverflows(bins) {
			// The Hilbert transform has no exact chunked widening (curve
			// state carries across bit planes), so overflow falls back to
			// the paper's allocation order rather than silently aliasing
			// distant bins onto one curve index.
			s.met.tourOverflow.Inc(0)
			break
		}
		sort.SliceStable(bins, func(i, j int) bool {
			return hilbertLess(bins[i].key, bins[j].key)
		})
	}
	s.tourCache = bins
	return bins
}

// tourOverflows reports whether any bin's block coordinates exceed the
// curveBits range the space-filling curves index exactly.
func tourOverflows(bins []*bin) bool {
	for _, b := range bins {
		if !keyFits(b.key) {
			return true
		}
	}
	return false
}

// tourConsumeStale reports whether a bin was allocated since the cached
// tour was built, clearing the staleness marks.
func (s *Scheduler) tourConsumeStale() bool {
	if s.shards == nil {
		stale := s.tourStale
		s.tourStale = false
		return stale
	}
	stale := false
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.grew {
			stale = true
			sh.grew = false
		}
		sh.mu.Unlock()
	}
	return stale
}

// eachBin visits every bin in ready-list order: the single list in serial
// mode, or each shard's list in shard order (holding that shard's lock)
// under ParallelFork.
func (s *Scheduler) eachBin(f func(*bin)) {
	if s.shards == nil {
		for b := s.readyHead; b != nil; b = b.readyNext {
			f(b)
		}
		return
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for b := sh.readyHead; b != nil; b = b.readyNext {
			f(b)
		}
		sh.mu.Unlock()
	}
}

// release destroys thread specifications after a non-keep run, recycling
// bins and groups through the free lists and clearing the hash table.
func (s *Scheduler) release() {
	s.tourCache = nil
	if s.shards != nil {
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			sh.release()
			sh.mu.Unlock()
		}
		for i := range s.table {
			s.table[i] = nil
		}
		return
	}
	for b := s.readyHead; b != nil; {
		nextBin := b.readyNext
		for g := b.groups; g != nil; {
			nextGroup := g.next
			g.next = s.freeGroups
			s.freeGroups = g
			g = nextGroup
		}
		b.groups, b.tail = nil, nil
		b.readyNext = nil
		b.hashNext = s.freeBins
		s.freeBins = b
		b = nextBin
	}
	for i := range s.table {
		s.table[i] = nil
	}
	s.readyHead, s.readyTail = nil, nil
	s.binsUsed = 0
	s.pending = 0
}

func sortKey(k *binKey) {
	// Sorting network for three elements.
	if k[0] > k[1] {
		k[0], k[1] = k[1], k[0]
	}
	if k[1] > k[2] {
		k[1], k[2] = k[2], k[1]
	}
	if k[0] > k[1] {
		k[0], k[1] = k[1], k[0]
	}
}
