package core

import "sync/atomic"

// Stats reports scheduler occupancy, matching the figures quoted in the
// paper's text (e.g. matmul: "1,048,576 threads distributed in 81 bins for
// an average of 12,945 threads per bin", §4.2).
type Stats struct {
	// Pending is the number of threads currently scheduled but not run
	// (or retained by keep).
	Pending int
	// BinsUsed is the number of bins holding at least one thread.
	BinsUsed int
	// MinPerBin and MaxPerBin bound the per-bin thread counts.
	MinPerBin, MaxPerBin int
	// AvgPerBin is Pending / BinsUsed.
	AvgPerBin float64
	// TotalForked and TotalRun count threads over the scheduler's
	// lifetime (TotalRun counts re-executions under keep).
	TotalForked, TotalRun uint64
	// Runs is the number of completed Run calls.
	Runs uint64
	// BlockSize and HashDim echo the configuration in effect.
	BlockSize uint64
	HashDim   int
}

// Stats returns a snapshot of scheduler occupancy. Under ParallelFork it
// may be called concurrently with Fork (stripe counters are summed under
// their locks); the snapshot is then a consistent-enough aggregate, not a
// point-in-time cut across stripes.
func (s *Scheduler) Stats() Stats {
	st := Stats{
		Pending:     s.pendingCount(),
		BinsUsed:    s.binsCount(),
		TotalForked: s.forkedCount(),
		TotalRun:    atomic.LoadUint64(&s.totalRun),
		Runs:        s.runs,
		BlockSize:   s.cfg.BlockSize,
		HashDim:     s.hashDim,
	}
	first := true
	s.eachBin(func(b *bin) {
		if first || b.threads < st.MinPerBin {
			st.MinPerBin = b.threads
		}
		if first || b.threads > st.MaxPerBin {
			st.MaxPerBin = b.threads
		}
		first = false
	})
	if st.BinsUsed > 0 {
		st.AvgPerBin = float64(st.Pending) / float64(st.BinsUsed)
	}
	return st
}

// LastRun returns the occupancy snapshot of the most recent Run call.
func (s *Scheduler) LastRun() RunStats { return s.lastRun }

// BinOccupancy returns the per-bin thread counts in ready-list order; used
// by the harness to report thread distribution uniformity (§4.2, §4.4).
func (s *Scheduler) BinOccupancy() []int {
	out := make([]int, 0, s.binsCount())
	s.eachBin(func(b *bin) { out = append(out, b.threads) })
	return out
}

// TourOccupancy returns the per-bin thread counts in the order Run will
// visit the bins — ready-list order transformed by Config.Tour — unlike
// BinOccupancy's raw ready-list order. External dispatchers (e.g. the SMP
// simulation) use it to cut the tour into weighted contiguous segments
// with PartitionWeights before driving RunEach.
func (s *Scheduler) TourOccupancy() []int {
	order := s.tour()
	out := make([]int, len(order))
	for i, b := range order {
		out[i] = b.threads
	}
	return out
}
