package core

import (
	"sync/atomic"

	"threadsched/internal/obs"
)

// Stats reports scheduler occupancy, matching the figures quoted in the
// paper's text (e.g. matmul: "1,048,576 threads distributed in 81 bins for
// an average of 12,945 threads per bin", §4.2).
type Stats struct {
	// Pending is the number of threads currently scheduled but not run
	// (or retained by keep).
	Pending int
	// BinsUsed is the number of bins holding at least one thread.
	BinsUsed int
	// MinPerBin and MaxPerBin bound the per-bin thread counts. A bin
	// exists only because a Fork placed a thread in it, so MinPerBin is
	// at least 1 whenever BinsUsed > 0; the empty-scheduler snapshot is
	// all-zero and identified by Empty.
	MinPerBin, MaxPerBin int
	// AvgPerBin is Pending / BinsUsed, or 0 for the empty snapshot.
	AvgPerBin float64
	// TotalForked and TotalRun count threads over the scheduler's
	// lifetime (TotalRun counts re-executions under keep).
	TotalForked, TotalRun uint64
	// Runs is the number of completed Run calls.
	Runs uint64
	// BlockSize and HashDim echo the configuration in effect.
	BlockSize uint64
	HashDim   int
}

// Empty reports whether the snapshot is of a scheduler holding no bins —
// the only case in which MinPerBin and MaxPerBin read 0.
func (st Stats) Empty() bool { return st.BinsUsed == 0 }

// Stats returns a snapshot of scheduler occupancy. Under ParallelFork it
// may be called concurrently with anything except Init: occupancy is
// summed under the stripe locks (release takes the same locks) and the
// lifetime counters are read atomically; the snapshot is then a
// consistent-enough aggregate, not a point-in-time cut across stripes.
// Without ParallelFork it may additionally be called concurrently with
// the thread-execution phase of a Run — the bin population is frozen
// from the start of Run until its release phase — but a caller must
// synchronize with the completion of a keep=false Run (whose release
// recycles the bins Stats walks), exactly as it must for Fork.
func (s *Scheduler) Stats() Stats {
	st := Stats{
		TotalForked: s.forkedCount(),
		TotalRun:    atomic.LoadUint64(&s.totalRun),
		Runs:        s.runs.Load(),
		BlockSize:   s.cfg.BlockSize,
		HashDim:     s.hashDim,
	}
	// BinsUsed, Pending, and the min/max all come from one bin walk rather
	// than the stripe counters, so the Min ≥ 1 invariant holds even when a
	// concurrent release has emptied a still-linked bin mid-snapshot.
	s.eachBin(func(b *bin) {
		if b.threads == 0 {
			return
		}
		if st.BinsUsed == 0 || b.threads < st.MinPerBin {
			st.MinPerBin = b.threads
		}
		if b.threads > st.MaxPerBin {
			st.MaxPerBin = b.threads
		}
		st.BinsUsed++
		st.Pending += b.threads
	})
	if st.BinsUsed > 0 {
		st.AvgPerBin = float64(st.Pending) / float64(st.BinsUsed)
	}
	return st
}

// LastRun returns the occupancy snapshot of the most recent Run call (the
// zero RunStats before the first). Like Stats, it is safe to call while a
// Run is in progress; it then reports that run's own snapshot, taken as
// the run began.
func (s *Scheduler) LastRun() RunStats {
	if r := s.lastRun.Load(); r != nil {
		return *r
	}
	return RunStats{}
}

// Snapshot merges the attached observability registry — per-worker steal,
// bin, and drain-time metrics recorded by parallel runs — into a
// JSON-serializable snapshot. It returns the zero Snapshot when the
// scheduler was built without Config.Obs.
func (s *Scheduler) Snapshot() obs.Snapshot { return s.cfg.Obs.Snapshot() }

// BinOccupancy returns the per-bin thread counts in ready-list order; used
// by the harness to report thread distribution uniformity (§4.2, §4.4).
func (s *Scheduler) BinOccupancy() []int {
	out := make([]int, 0, s.binsCount())
	s.eachBin(func(b *bin) { out = append(out, b.threads) })
	return out
}

// TourOccupancy returns the per-bin thread counts in the order Run will
// visit the bins — ready-list order transformed by Config.Tour — unlike
// BinOccupancy's raw ready-list order. External dispatchers (e.g. the SMP
// simulation) use it to cut the tour into weighted contiguous segments
// with PartitionWeights before driving RunEach.
func (s *Scheduler) TourOccupancy() []int {
	order := s.tour()
	out := make([]int, len(order))
	for i, b := range order {
		out[i] = b.threads
	}
	return out
}
