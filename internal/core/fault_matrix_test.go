package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"threadsched/internal/fault"
)

// The fault-injection matrix: a deterministic injected panic at the
// first, middle, and last thread of a run, across every execution path —
// serial, segmented parallel, atomic parallel, dependence-serial, and
// wavefront — must be contained into a typed error, quiesce without
// leaking goroutines, and leave the scheduler reusable. These tests are
// part of the -race suite; the detector verifies the containment paths
// carry the same happens-before edges as normal completion.

const matrixThreads = 600

// matrixVariant runs fn(injector) under one scheduler configuration and
// returns the error from the context entry point plus how many threads
// executed.
type matrixVariant struct {
	name string
	run  func(t *testing.T, in *fault.Injector) (err error, ran int64)
}

func schedVariant(name string, cfg Config) matrixVariant {
	return matrixVariant{name: name, run: func(t *testing.T, in *fault.Injector) (error, int64) {
		s := New(cfg)
		defer s.Close()
		var ran atomic.Int64
		for i := 0; i < matrixThreads; i++ {
			n := uint64(i)
			s.Fork(func(int, int) {
				in.MaybePanic(fault.ThreadPanic, n)
				ran.Add(1)
			}, i, 0, uint64(i%31)<<12, 0, 0)
		}
		err := s.RunContext(context.Background(), false)
		// Reusability is part of the containment contract: a fresh
		// cycle must work whatever the previous run returned.
		ok := false
		s.Init(0, 0)
		s.Fork(func(int, int) { ok = true }, 0, 0, 0, 0, 0)
		if rerr := s.RunContext(context.Background(), false); rerr != nil || !ok {
			t.Fatalf("%s: scheduler unusable after contained run: %v", name, rerr)
		}
		return err, ran.Load()
	}}
}

func depVariant(name string, cfg Config) matrixVariant {
	return matrixVariant{name: name, run: func(t *testing.T, in *fault.Injector) (error, int64) {
		d := NewDep(cfg)
		defer d.Close()
		var ran atomic.Int64
		var prev ThreadID = -1
		for i := 0; i < matrixThreads; i++ {
			n := uint64(i)
			fn := func(int, int) {
				in.MaybePanic(fault.ThreadPanic, n)
				ran.Add(1)
			}
			// A sparse chain keeps a real DAG in play without
			// serializing everything: every 8th thread depends on the
			// previous chain link.
			if i%8 == 0 && prev >= 0 {
				prev = d.Fork(fn, i, 0, uint64(i%31)<<12, 0, 0, prev)
			} else if i%8 == 0 {
				prev = d.Fork(fn, i, 0, uint64(i%31)<<12, 0, 0)
			} else {
				d.Fork(fn, i, 0, uint64(i%31)<<12, 0, 0)
			}
		}
		err := d.RunContext(context.Background())
		ok := false
		d.Fork(func(int, int) { ok = true }, 0, 0, 0, 0, 0)
		if rerr := d.RunContext(context.Background()); rerr != nil || !ok {
			t.Fatalf("%s: scheduler unusable after contained run: %v", name, rerr)
		}
		return err, ran.Load()
	}}
}

func matrixVariants() []matrixVariant {
	base := Config{CacheSize: 1 << 20, BlockSize: 1 << 12}
	seg, atm, wave := base, base, base
	seg.Workers = 4
	atm.Workers = 4
	atm.Dispatch = DispatchAtomic
	wave.Workers = 4
	return []matrixVariant{
		schedVariant("serial", base),
		schedVariant("segmented", seg),
		schedVariant("atomic", atm),
		depVariant("dep-serial", base),
		depVariant("wavefront", wave),
	}
}

// TestPanicMatrix: first/middle/last injected panic × every execution
// path. Each must return a *ThreadPanicError carrying the injected
// *fault.Panic, not crash the process.
func TestPanicMatrix(t *testing.T) {
	positions := map[string]uint64{
		"first":  0,
		"middle": matrixThreads / 2,
		"last":   matrixThreads - 1,
	}
	for _, v := range matrixVariants() {
		for pos, n := range positions {
			t.Run(v.name+"/"+pos, func(t *testing.T) {
				before := stableGoroutines()
				in := fault.New(fault.Config{At: map[fault.Site][]uint64{fault.ThreadPanic: {n}}})
				err, ran := v.run(t, in)
				var tp *ThreadPanicError
				if !errors.As(err, &tp) {
					t.Fatalf("err = %v, want *ThreadPanicError", err)
				}
				fp, ok := tp.Value.(*fault.Panic)
				if !ok || fp.Site != fault.ThreadPanic || fp.N != n {
					t.Fatalf("panic value = %#v, want injected fault at n=%d", tp.Value, n)
				}
				if len(tp.Stack) == 0 || tp.Error() == "" {
					t.Error("ThreadPanicError missing stack or message")
				}
				if ran >= matrixThreads {
					t.Fatalf("all %d threads ran despite a panic at %d", ran, n)
				}
				checkGoroutines(t, v.name, before)
			})
		}
	}
}

// TestNoInjectionMatrix: with injection disabled (nil injector and
// zero-config injector alike), every path completes all threads with a
// nil error — fault hooks cost correctness nothing.
func TestNoInjectionMatrix(t *testing.T) {
	for _, v := range matrixVariants() {
		for _, in := range []*fault.Injector{nil, fault.New(fault.Config{})} {
			err, ran := v.run(t, in)
			if err != nil {
				t.Fatalf("%s: err = %v with injection disabled", v.name, err)
			}
			if ran != matrixThreads {
				t.Fatalf("%s: ran %d threads, want %d", v.name, ran, matrixThreads)
			}
		}
	}
}

// TestCancellationMidTour: a context cancelled from inside a thread stops
// every path at its next bin boundary — some threads ran, not all, the
// error is ctx.Err(), and the pool quiesces.
func TestCancellationMidTour(t *testing.T) {
	for _, w := range []int{1, 4} {
		s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 12, Workers: w})
		ctx, cancel := context.WithCancel(context.Background())
		before := stableGoroutines()
		var ran atomic.Int64
		for i := 0; i < matrixThreads; i++ {
			i := i
			s.Fork(func(int, int) {
				if i == 40 {
					cancel()
				}
				ran.Add(1)
			}, i, 0, uint64(i%31)<<12, 0, 0)
		}
		err := s.RunContext(ctx, false)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
		if n := ran.Load(); n == 0 || n == matrixThreads {
			t.Fatalf("workers=%d: ran %d threads; cancellation did not stop mid-tour", w, n)
		}
		// Reusable afterwards with a live context.
		ok := false
		s.Init(0, 0)
		s.Fork(func(int, int) { ok = true }, 0, 0, 0, 0, 0)
		if rerr := s.RunContext(context.Background(), false); rerr != nil || !ok {
			t.Fatalf("workers=%d: unusable after cancelled run: %v", w, rerr)
		}
		s.Close()
		checkGoroutines(t, "cancel", before)
		cancel()
	}
}

// TestCancellationDuringFinalBin: cancellation wins even when it fires
// inside the last (or only) bin, where no later boundary exists to
// observe it — serial, parallel, and dependence paths all report
// ctx.Err() rather than disagreeing about a completed-but-cancelled run.
func TestCancellationDuringFinalBin(t *testing.T) {
	for _, w := range []int{1, 4} {
		s := New(Config{CacheSize: 1 << 20, Workers: w})
		ctx, cancel := context.WithCancel(context.Background())
		ran := 0
		for i := 0; i < 50; i++ {
			i := i
			// Every thread in one bin: cancel fires mid-bin and the rest
			// of the bin still runs (no preemption inside a bin).
			s.Fork(func(int, int) {
				if i == 10 {
					cancel()
				}
				ran++
			}, i, 0, 0, 0, 0)
		}
		err := s.RunContext(ctx, false)
		s.Close()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
		if ran != 50 {
			t.Fatalf("workers=%d: ran %d, want the whole bin (run-to-completion)", w, ran)
		}
		cancel()
	}
	for _, w := range []int{1, 4} {
		d := NewDep(Config{CacheSize: 1 << 20, Workers: w})
		ctx, cancel := context.WithCancel(context.Background())
		d.Fork(func(int, int) { cancel() }, 0, 0, 0, 0, 0)
		err := d.RunContext(ctx)
		d.Close()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("dep workers=%d: err = %v, want context.Canceled", w, err)
		}
	}
}

// TestCancellationPreemptsRun: an already-cancelled context runs nothing.
func TestCancellationPreemptsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := New(Config{CacheSize: 1 << 20})
	ran := false
	s.Fork(func(int, int) { ran = true }, 0, 0, 0, 0, 0)
	if err := s.RunContext(ctx, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("thread ran under a pre-cancelled context")
	}
	// DepScheduler too.
	d := NewDep(Config{CacheSize: 1 << 20, Workers: 4})
	defer d.Close()
	ran = false
	d.Fork(func(int, int) { ran = true }, 0, 0, 0, 0, 0)
	if err := d.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("dep err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("dep thread ran under a pre-cancelled context")
	}
}

// TestRunEachContextContainment: the run-each path reports the bin in
// which the panic happened and survives for a fresh cycle.
func TestRunEachContextContainment(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 12})
	in := fault.New(fault.Config{At: map[fault.Site][]uint64{fault.ThreadPanic: {7}}})
	for i := 0; i < 32; i++ {
		n := uint64(i)
		s.Fork(func(int, int) { in.MaybePanic(fault.ThreadPanic, n) }, i, 0, uint64(i%4)<<12, 0, 0)
	}
	bins := 0
	err := s.RunEachContext(context.Background(), false, func(bin, threads int) { bins++ })
	var tp *ThreadPanicError
	if !errors.As(err, &tp) {
		t.Fatalf("err = %v, want *ThreadPanicError", err)
	}
	if tp.Phase != "run-each" {
		t.Errorf("Phase = %q, want run-each", tp.Phase)
	}
	if bins == 0 {
		t.Error("beforeBin never called")
	}
}

// TestGoldenOrderWithInjectionDisabled: attaching a zero-probability
// injector must not perturb execution order — serial runs record the
// byte-identical thread sequence with and without the hooks.
func TestGoldenOrderWithInjectionDisabled(t *testing.T) {
	record := func(in *fault.Injector) []int {
		s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 12})
		var order []int
		for i := 0; i < 500; i++ {
			i := i
			n := uint64(i)
			s.Fork(func(int, int) {
				in.MaybePanic(fault.ThreadPanic, n)
				order = append(order, i)
			}, i, 0, uint64(i%23)<<12, uint64(i%7)<<12, 0)
		}
		if err := s.RunContext(context.Background(), false); err != nil {
			t.Fatal(err)
		}
		return order
	}
	bare := record(nil)
	hooked := record(fault.New(fault.Config{Seed: 1}))
	if len(bare) != len(hooked) {
		t.Fatalf("order lengths differ: %d vs %d", len(bare), len(hooked))
	}
	for i := range bare {
		if bare[i] != hooked[i] {
			t.Fatalf("execution order diverges at %d: %d vs %d", i, bare[i], hooked[i])
		}
	}
}

// TestStatsTruthfulAfterPanic: threads that completed before containment
// still count in the lifetime totals.
func TestStatsTruthfulAfterPanic(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 12})
	in := fault.New(fault.Config{At: map[fault.Site][]uint64{fault.ThreadPanic: {100}}})
	for i := 0; i < 200; i++ {
		n := uint64(i)
		s.Fork(func(int, int) { in.MaybePanic(fault.ThreadPanic, n) }, i, 0, 0, 0, 0)
	}
	var tp *ThreadPanicError
	if err := s.RunContext(context.Background(), false); !errors.As(err, &tp) {
		t.Fatalf("err = %v", err)
	}
	// One bin, serial: exactly the 100 threads before the panic ran.
	if got := s.Stats().TotalRun; got != 100 {
		t.Fatalf("TotalRun = %d, want 100", got)
	}
	if s.Stats().Runs != 0 {
		t.Fatalf("Runs = %d; a failed run must not count", s.Stats().Runs)
	}
}

// TestLegacyRunStillPanics: the panicking entry points re-raise contained
// panics, so pre-containment callers observe a panic exactly as before —
// now with a typed, diagnosable value.
func TestLegacyRunStillPanics(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20})
	s.Fork(func(int, int) { panic("boom") }, 0, 0, 0, 0, 0)
	func() {
		defer func() {
			tp, ok := recover().(*ThreadPanicError)
			if !ok || tp.Value != "boom" {
				t.Fatalf("recovered %#v, want *ThreadPanicError{Value: boom}", tp)
			}
		}()
		s.Run(false)
		t.Fatal("Run did not panic")
	}()

	d := NewDep(Config{CacheSize: 1 << 20})
	d.Fork(func(int, int) { panic("dep boom") }, 0, 0, 0, 0, 0)
	func() {
		defer func() {
			tp, ok := recover().(*ThreadPanicError)
			if !ok || tp.Value != "dep boom" {
				t.Fatalf("recovered %#v, want *ThreadPanicError{Value: dep boom}", tp)
			}
		}()
		_ = d.Run()
		t.Fatal("DepScheduler.Run did not panic")
	}()
}

// TestWorkerDelayInjection: injected worker delays slow a run down but
// change nothing about its outcome — all threads run exactly once.
func TestWorkerDelayInjection(t *testing.T) {
	in := fault.New(fault.Config{
		Prob:  map[fault.Site]float64{fault.WorkerDelay: 0.05},
		Delay: 100 * time.Microsecond,
	})
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 12, Workers: 4})
	defer s.Close()
	var ran atomic.Int64
	for i := 0; i < 1000; i++ {
		n := uint64(i)
		s.Fork(func(int, int) {
			in.MaybeDelay(fault.WorkerDelay, n)
			ran.Add(1)
		}, i, 0, uint64(i%31)<<12, 0, 0)
	}
	if err := s.RunContext(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 1000 {
		t.Fatalf("ran %d threads, want 1000", ran.Load())
	}
}

func stableGoroutines() int {
	runtime.GC()
	time.Sleep(time.Millisecond)
	return runtime.NumGoroutine()
}

// checkGoroutines allows the persistent pool's parked workers (closed by
// the variants before this point) a moment to exit.
func checkGoroutines(t *testing.T, name string, before int) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("%s: goroutines %d before, %d after — leak", name, before, runtime.NumGoroutine())
}
