package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestDefaultBlockSize(t *testing.T) {
	cases := []struct {
		cache uint64
		dims  int
		want  uint64
	}{
		{2 << 20, 2, 1 << 20},
		{2 << 20, 3, 512 << 10}, // 2M/3 = 699050 → 512K
		{1 << 20, 2, 512 << 10},
		{0, 0, DefaultBlockSize(DefaultCacheSize, MaxHints)},
		{2, 3, 1}, // cache/dims == 0 clamps to 1
	}
	for _, c := range cases {
		if got := DefaultBlockSize(c.cache, c.dims); got != c.want {
			t.Errorf("DefaultBlockSize(%d,%d) = %d, want %d", c.cache, c.dims, got, c.want)
		}
	}
}

func TestTourOrderString(t *testing.T) {
	if TourAllocation.String() != "allocation" || TourMorton.String() != "morton" ||
		TourHilbert.String() != "hilbert" {
		t.Error("tour order names wrong")
	}
	if TourOrder(42).String() != "TourOrder(42)" {
		t.Error("unknown tour order name wrong")
	}
}

func TestForkRunRunsEveryThreadOnce(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20})
	const n = 1000
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		s.Fork(func(a1, _ int) { counts[a1]++ }, i, 0,
			uint64(i*64), uint64((n-i)*64), 0)
	}
	if s.Pending() != n {
		t.Fatalf("Pending = %d, want %d", s.Pending(), n)
	}
	s.Run(false)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("thread %d ran %d times", i, c)
		}
	}
	if s.Pending() != 0 {
		t.Errorf("Pending after run = %d", s.Pending())
	}
}

func TestRunPassesArguments(t *testing.T) {
	s := New(Config{})
	var got1, got2 int
	s.Fork(func(a1, a2 int) { got1, got2 = a1, a2 }, 41, 42, 0, 0, 0)
	s.Run(false)
	if got1 != 41 || got2 != 42 {
		t.Fatalf("args = (%d,%d), want (41,42)", got1, got2)
	}
}

func TestSameBlockSameBin(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 19})
	// Two threads whose hints fall in the same block must share a bin.
	s.Fork(func(int, int) {}, 0, 0, 100, 200, 0)
	s.Fork(func(int, int) {}, 0, 0, 150, 250, 0)
	if got := s.Stats().BinsUsed; got != 1 {
		t.Fatalf("BinsUsed = %d, want 1", got)
	}
	// A thread one block away must get a new bin.
	s.Fork(func(int, int) {}, 0, 0, 100+1<<19, 200, 0)
	if got := s.Stats().BinsUsed; got != 2 {
		t.Fatalf("BinsUsed = %d, want 2", got)
	}
}

func TestBinExecutionIsClustered(t *testing.T) {
	// All threads of one bin must run contiguously: record the bin id of
	// each execution and check no bin id reappears after a different one.
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 18})
	var order []int
	const blocks = 8
	const perBlock = 20
	// Fork in round-robin order across blocks — worst case for a FIFO
	// scheduler, trivial for a binning one.
	for j := 0; j < perBlock; j++ {
		for b := 0; b < blocks; b++ {
			b := b
			s.Fork(func(int, int) { order = append(order, b) }, 0, 0,
				uint64(b)<<18, 0, 0)
		}
	}
	s.Run(false)
	seen := make(map[int]bool)
	last := -1
	for _, b := range order {
		if b != last {
			if seen[b] {
				t.Fatalf("bin %d resumed after interruption: order %v", b, order)
			}
			seen[b] = true
			last = b
		}
	}
	if len(seen) != blocks {
		t.Fatalf("saw %d bins, want %d", len(seen), blocks)
	}
}

func TestSymmetricFolding(t *testing.T) {
	fold := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 18, FoldSymmetric: true})
	fold.Fork(func(int, int) {}, 0, 0, 1<<18, 3<<18, 0)
	fold.Fork(func(int, int) {}, 0, 0, 3<<18, 1<<18, 0)
	if got := fold.Stats().BinsUsed; got != 1 {
		t.Errorf("folded BinsUsed = %d, want 1", got)
	}
	plain := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 18})
	plain.Fork(func(int, int) {}, 0, 0, 1<<18, 3<<18, 0)
	plain.Fork(func(int, int) {}, 0, 0, 3<<18, 1<<18, 0)
	if got := plain.Stats().BinsUsed; got != 2 {
		t.Errorf("unfolded BinsUsed = %d, want 2", got)
	}
}

func TestKeepReRuns(t *testing.T) {
	s := New(Config{})
	runs := 0
	s.Fork(func(int, int) { runs++ }, 0, 0, 0, 0, 0)
	s.Run(true)
	s.Run(true)
	s.Run(false)
	if runs != 3 {
		t.Fatalf("thread ran %d times under keep, want 3", runs)
	}
	s.Run(false) // nothing scheduled; must be a no-op
	if runs != 3 {
		t.Fatalf("destroyed threads re-ran")
	}
	st := s.Stats()
	if st.TotalForked != 1 || st.TotalRun != 3 || st.Runs != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestForkAfterRunReusesFreeLists(t *testing.T) {
	s := New(Config{})
	total := 0
	for round := 0; round < 3; round++ {
		for i := 0; i < 500; i++ {
			s.Fork(func(int, int) { total++ }, 0, 0, uint64(i)*1024, 0, 0)
		}
		s.Run(false)
	}
	if total != 1500 {
		t.Fatalf("ran %d threads, want 1500", total)
	}
}

func TestInitReconfigures(t *testing.T) {
	s := New(Config{CacheSize: 2 << 20})
	s.Init(1<<16, 8)
	if s.BlockSize() != 1<<16 {
		t.Errorf("BlockSize = %d, want %d", s.BlockSize(), 1<<16)
	}
	if s.HashDim() != 8 {
		t.Errorf("HashDim = %d, want 8", s.HashDim())
	}
	// Non-power-of-two values round down to powers of two.
	s.Init(3000, 10)
	if s.BlockSize() != 2048 {
		t.Errorf("BlockSize = %d, want 2048", s.BlockSize())
	}
	if s.HashDim() != 8 {
		t.Errorf("HashDim = %d, want 8", s.HashDim())
	}
	// Zeros restore defaults (th_init semantics).
	s.Init(0, 0)
	if s.BlockSize() != DefaultBlockSize(2<<20, MaxHints) {
		t.Errorf("default BlockSize = %d", s.BlockSize())
	}
	if s.HashDim() != DefaultHashDim {
		t.Errorf("default HashDim = %d", s.HashDim())
	}
}

func TestHashCollisionsChainCorrectly(t *testing.T) {
	// A tiny 2×2×2 hash table forces heavy chaining; distinct blocks must
	// still get distinct bins and all threads must run.
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 10, HashDim: 2})
	ran := 0
	const blocks = 64
	for b := 0; b < blocks; b++ {
		s.Fork(func(int, int) { ran++ }, 0, 0, uint64(b)<<10, 0, 0)
	}
	if got := s.Stats().BinsUsed; got != blocks {
		t.Fatalf("BinsUsed = %d, want %d (distinct blocks)", got, blocks)
	}
	s.Run(false)
	if ran != blocks {
		t.Fatalf("ran %d, want %d", ran, blocks)
	}
}

func TestWorkersRunAllThreads(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 14, Workers: 4})
	var mu sync.Mutex
	ran := make(map[int]int)
	const n = 2000
	for i := 0; i < n; i++ {
		s.Fork(func(a1, _ int) {
			mu.Lock()
			ran[a1]++
			mu.Unlock()
		}, i, 0, uint64(i*64), 0, 0)
	}
	s.Run(false)
	if len(ran) != n {
		t.Fatalf("ran %d distinct threads, want %d", len(ran), n)
	}
	for i, c := range ran {
		if c != 1 {
			t.Fatalf("thread %d ran %d times", i, c)
		}
	}
}

func TestTourOrdersRunAllThreads(t *testing.T) {
	for _, tour := range []TourOrder{TourAllocation, TourMorton, TourHilbert} {
		s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 12, Tour: tour})
		ran := 0
		rng := rand.New(rand.NewSource(1))
		const n = 500
		for i := 0; i < n; i++ {
			s.Fork(func(int, int) { ran++ }, 0, 0,
				rng.Uint64()%(1<<20), rng.Uint64()%(1<<20), rng.Uint64()%(1<<20))
		}
		s.Run(false)
		if ran != n {
			t.Errorf("tour %v: ran %d, want %d", tour, ran, n)
		}
	}
}

func TestMortonTourSortsByZOrder(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 10, Tour: TourMorton})
	var visited []uint64
	// Fork in reverse block order; Morton order on (b,0,0) is ascending b.
	for b := 7; b >= 0; b-- {
		b := b
		s.Fork(func(int, int) { visited = append(visited, uint64(b)) }, 0, 0,
			uint64(b)<<10, 0, 0)
	}
	s.Run(false)
	for i := 1; i < len(visited); i++ {
		if visited[i] < visited[i-1] {
			t.Fatalf("morton tour out of order: %v", visited)
		}
	}
}

// Property: every forked thread runs exactly once, for arbitrary hints,
// block sizes, hash sizes and tours.
func TestEveryThreadRunsOnceProperty(t *testing.T) {
	f := func(seed int64, blockSel, hashSel, tourSel uint8, fold bool) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(Config{
			CacheSize:     1 << 20,
			BlockSize:     1 << (10 + blockSel%12),
			HashDim:       1 << (hashSel % 5),
			Tour:          TourOrder(tourSel % 3),
			FoldSymmetric: fold,
		})
		n := rng.Intn(400) + 1
		counts := make([]int, n)
		for i := 0; i < n; i++ {
			s.Fork(func(a1, _ int) { counts[a1]++ }, i, 0,
				rng.Uint64(), rng.Uint64(), rng.Uint64())
		}
		s.Run(false)
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return s.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: folding is exactly permutation-invariance — two threads with
// permuted hints always share a bin when folding is on.
func TestFoldingPermutationProperty(t *testing.T) {
	f := func(h1, h2, h3 uint64, perm uint8) bool {
		s := New(Config{CacheSize: 1 << 20, FoldSymmetric: true})
		hs := [3]uint64{h1, h2, h3}
		p := permute3(hs, int(perm%6))
		s.Fork(func(int, int) {}, 0, 0, hs[0], hs[1], hs[2])
		s.Fork(func(int, int) {}, 0, 0, p[0], p[1], p[2])
		return s.Stats().BinsUsed == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func permute3(v [3]uint64, p int) [3]uint64 {
	perms := [6][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	idx := perms[p]
	return [3]uint64{v[idx[0]], v[idx[1]], v[idx[2]]}
}

func TestStatsOccupancy(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 18})
	for i := 0; i < 10; i++ {
		s.Fork(func(int, int) {}, 0, 0, 0, 0, 0) // bin A: 10 threads
	}
	s.Fork(func(int, int) {}, 0, 0, 1<<18, 0, 0) // bin B: 1 thread
	st := s.Stats()
	if st.BinsUsed != 2 || st.Pending != 11 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MinPerBin != 1 || st.MaxPerBin != 10 {
		t.Errorf("min/max = %d/%d, want 1/10", st.MinPerBin, st.MaxPerBin)
	}
	if st.AvgPerBin != 5.5 {
		t.Errorf("avg = %v, want 5.5", st.AvgPerBin)
	}
	occ := s.BinOccupancy()
	if len(occ) != 2 || occ[0] != 10 || occ[1] != 1 {
		t.Errorf("occupancy = %v", occ)
	}
}

func TestMatmulBinCountMatchesPaperGeometry(t *testing.T) {
	// §4.2: n=1024 matmul on the R8000 (2MB L2, block = C/2 = 1MB)
	// produced 1,048,576 threads in 81 bins. Rows of A and B are 8KB, so
	// 1024 rows span 8MB: ⌈8MB/1MB⌉ = 9 blocks per dimension when the
	// two matrices are offset within blocks — 9×9 = 81 bins.
	s := New(Config{CacheSize: 2 << 20, BlockSize: 1 << 20})
	const n = 1024
	rowBytes := uint64(n * 8)
	aBase := uint64(0x1000_0000) + 512<<10 // mid-block start, as with malloc'd data
	bBase := aBase + n*rowBytes
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.Fork(func(int, int) {}, i, j,
				aBase+uint64(i)*rowBytes, bBase+uint64(j)*rowBytes, 0)
		}
	}
	st := s.Stats()
	if st.Pending != n*n {
		t.Fatalf("pending = %d", st.Pending)
	}
	if st.BinsUsed != 81 {
		t.Errorf("BinsUsed = %d, want 81 (paper §4.2)", st.BinsUsed)
	}
}
