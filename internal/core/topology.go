package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Cache-topology description for hierarchical scheduling. The paper's §7
// SMP extension schedules thread groups "at the cache level they fit";
// BubbleSched (Thibault et al.) generalizes that to a tree of nested
// caches with level-appropriate stealing. A Topology names the nesting —
// one TopoLevel per cache level, innermost (L1) first — and the bin tour
// is grouped into a matching tree of contiguous "bubbles" (see tree.go).
// A nil Topology, or one with a single level, is the flat linear tour the
// package always had.

// TopoLevel describes one cache level of a Topology.
type TopoLevel struct {
	// Capacity is the size in bytes of one cache instance at this level
	// (one L1, one L2 slice, ...). Capacities must strictly increase from
	// the innermost level outward.
	Capacity uint64
	// Workers is the number of Run workers sharing one cache instance at
	// this level (e.g. 2 hyperthreads per L1, 8 cores per LLC). Counts
	// must not decrease outward; the outermost level typically names the
	// whole machine.
	Workers int
	// StealChunk bounds how many bins a single steal at this level may
	// detach (the narrow-steal width); 0 selects Config.StealChunk. Only
	// inner levels steal narrowly — the outermost level of a multi-level
	// topology steals whole subtrees and ignores the chunk.
	StealChunk int
}

// Topology is an immutable cache-hierarchy description, innermost level
// first. The zero/nil Topology means flat (single-level) scheduling.
type Topology struct {
	levels []TopoLevel
}

// NewTopology validates the levels (innermost first) and builds a
// Topology: every capacity must be a positive power of two strictly
// larger than the previous level's, and worker counts must be positive
// and non-decreasing outward.
func NewTopology(levels ...TopoLevel) (*Topology, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("core: topology needs at least one level")
	}
	for i, l := range levels {
		if l.Capacity == 0 {
			return nil, fmt.Errorf("core: topology level %d has zero capacity", i)
		}
		if l.Workers < 1 {
			return nil, fmt.Errorf("core: topology level %d has %d workers (want >= 1)", i, l.Workers)
		}
		if l.StealChunk < 0 {
			return nil, fmt.Errorf("core: topology level %d has negative steal chunk", i)
		}
		if i > 0 {
			if l.Capacity <= levels[i-1].Capacity {
				return nil, fmt.Errorf("core: topology level %d capacity %d does not exceed level %d capacity %d (levels are innermost-first)",
					i, l.Capacity, i-1, levels[i-1].Capacity)
			}
			if l.Workers < levels[i-1].Workers {
				return nil, fmt.Errorf("core: topology level %d has %d workers, fewer than level %d's %d (sharing cannot shrink outward)",
					i, l.Workers, i-1, levels[i-1].Workers)
			}
		}
	}
	return &Topology{levels: append([]TopoLevel(nil), levels...)}, nil
}

// ParseTopology parses a comma-separated topology spec, innermost level
// first, each level "capacity:workers" with an optional ":stealchunk"
// third field. Capacities accept k/m/g suffixes (powers of 1024). For
// example "32k:2,256k:8,8m:64" is a machine whose 32 KB L1s are shared
// by 2 workers, 256 KB L2s by 8, and an 8 MB LLC by all 64.
func ParseTopology(spec string) (*Topology, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || strings.EqualFold(spec, "flat") {
		return nil, nil
	}
	var levels []TopoLevel
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("core: topology level %q: want capacity:workers[:stealchunk]", part)
		}
		capBytes, err := parseSize(fields[0])
		if err != nil {
			return nil, fmt.Errorf("core: topology level %q: %v", part, err)
		}
		workers, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, fmt.Errorf("core: topology level %q: bad worker count: %v", part, err)
		}
		l := TopoLevel{Capacity: capBytes, Workers: workers}
		if len(fields) == 3 {
			chunk, err := strconv.Atoi(strings.TrimSpace(fields[2]))
			if err != nil {
				return nil, fmt.Errorf("core: topology level %q: bad steal chunk: %v", part, err)
			}
			l.StealChunk = chunk
		}
		levels = append(levels, l)
	}
	return NewTopology(levels...)
}

// parseSize parses a byte count with an optional k/m/g suffix.
func parseSize(s string) (uint64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	if n == 0 || n > (^uint64(0))/mult {
		return 0, fmt.Errorf("size %q out of range", s)
	}
	return n * mult, nil
}

// Levels returns the number of cache levels; a nil Topology has one (the
// flat degenerate case).
func (t *Topology) Levels() int {
	if t == nil {
		return 1
	}
	return len(t.levels)
}

// Level returns the i'th level, innermost first. On a nil Topology it
// returns the flat pseudo-level (unbounded capacity, all workers).
func (t *Topology) Level(i int) TopoLevel {
	if t == nil {
		return TopoLevel{Capacity: ^uint64(0), Workers: 1 << 30}
	}
	return t.levels[i]
}

// String renders the topology in ParseTopology's format.
func (t *Topology) String() string {
	if t == nil {
		return "flat"
	}
	var b strings.Builder
	for i, l := range t.levels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(formatSize(l.Capacity))
		fmt.Fprintf(&b, ":%d", l.Workers)
		if l.StealChunk > 0 {
			fmt.Fprintf(&b, ":%d", l.StealChunk)
		}
	}
	return b.String()
}

// formatSize renders a byte count with the largest exact k/m/g suffix.
func formatSize(n uint64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dg", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dm", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dk", n>>10)
	default:
		return strconv.FormatUint(n, 10)
	}
}

// clusterSize is the number of workers sharing one level-i cache
// instance, clamped to the run's worker count (a topology written for a
// bigger machine still groups a smaller run sensibly).
func (t *Topology) clusterSize(i, workers int) int {
	c := t.Level(i).Workers
	if c > workers {
		c = workers
	}
	if c < 1 {
		c = 1
	}
	return c
}

// sharedLevel is the innermost level at which workers a and b share a
// cache instance under the static contiguous worker grouping (workers
// [0,c), [c,2c), ... share each level instance of cluster size c). It
// returns Levels()-1 when they meet only at the outermost level.
func (t *Topology) sharedLevel(a, b, workers int) int {
	last := t.Levels() - 1
	for l := 0; l < last; l++ {
		c := t.clusterSize(l, workers)
		if a/c == b/c {
			return l
		}
	}
	return last
}

// stealChunkAt is the narrow-steal width at level i: the level's own
// StealChunk if set, else the scheduler-wide fallback.
func (t *Topology) stealChunkAt(i, fallback int) int {
	if t != nil {
		if c := t.levels[i].StealChunk; c > 0 {
			return c
		}
	}
	if fallback > 0 {
		return fallback
	}
	return DefaultStealChunk
}
