package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKSchedulerRunsEveryThreadOnce(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 8} {
		s := NewK(KConfig{K: k, CacheSize: 1 << 20})
		const n = 500
		counts := make([]int, n)
		rng := rand.New(rand.NewSource(int64(k)))
		for i := 0; i < n; i++ {
			hints := make([]uint64, k)
			for d := range hints {
				hints[d] = rng.Uint64() % (1 << 22)
			}
			s.Fork(func(a1, _ int) { counts[a1]++ }, i, 0, hints...)
		}
		if s.Pending() != n {
			t.Fatalf("k=%d: pending %d", k, s.Pending())
		}
		s.Run(false)
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("k=%d: thread %d ran %d times", k, i, c)
			}
		}
		if s.Pending() != 0 || s.BinsUsed() != 0 {
			t.Fatalf("k=%d: schedule not destroyed", k)
		}
	}
}

func TestKSchedulerDefaultBlock(t *testing.T) {
	s := NewK(KConfig{K: 5, CacheSize: 1 << 20})
	// 1M/5 = 209715 → 131072.
	if s.BlockSize() != 1<<17 {
		t.Fatalf("block = %d, want 2^17", s.BlockSize())
	}
	if s.K() != 5 {
		t.Fatalf("K = %d", s.K())
	}
	// K < 1 clamps to 1.
	if NewK(KConfig{}).K() != 1 {
		t.Fatal("K not clamped to 1")
	}
}

func TestKSchedulerClustering(t *testing.T) {
	// Threads in the same 5-D block share a bin; one coordinate one block
	// away does not.
	s := NewK(KConfig{K: 5, CacheSize: 1 << 20, BlockSize: 1 << 16})
	h := []uint64{1, 2, 3, 4, 5}
	s.Fork(func(int, int) {}, 0, 0, h...)
	s.Fork(func(int, int) {}, 0, 0, 10, 20, 30, 40, 50)
	if s.BinsUsed() != 1 {
		t.Fatalf("bins = %d, want 1", s.BinsUsed())
	}
	s.Fork(func(int, int) {}, 0, 0, 1, 2, 3, 4, 5+1<<16)
	if s.BinsUsed() != 2 {
		t.Fatalf("bins = %d, want 2", s.BinsUsed())
	}
}

func TestKSchedulerShortAndLongHints(t *testing.T) {
	s := NewK(KConfig{K: 3, CacheSize: 1 << 20, BlockSize: 1 << 18})
	ran := 0
	s.Fork(func(int, int) { ran++ }, 0, 0)                  // no hints: zero-padded
	s.Fork(func(int, int) { ran++ }, 0, 0, 1, 2)            // short
	s.Fork(func(int, int) { ran++ }, 0, 0, 1, 2, 3, 4, 5)   // extra ignored
	s.Fork(func(int, int) { ran++ }, 0, 0, 1<<18, 2, 3, 99) // different block
	if s.BinsUsed() != 2 {
		t.Fatalf("bins = %d, want 2 (three zero-block threads + one offset)", s.BinsUsed())
	}
	s.Run(false)
	if ran != 4 {
		t.Fatalf("ran %d, want 4", ran)
	}
}

func TestKSchedulerFolding(t *testing.T) {
	s := NewK(KConfig{K: 4, CacheSize: 1 << 24, BlockSize: 1 << 10, FoldSymmetric: true})
	s.Fork(func(int, int) {}, 0, 0, 1<<10, 2<<10, 3<<10, 4<<10)
	s.Fork(func(int, int) {}, 0, 0, 4<<10, 3<<10, 2<<10, 1<<10)
	if s.BinsUsed() != 1 {
		t.Fatalf("folded bins = %d, want 1", s.BinsUsed())
	}
}

func TestKSchedulerKeep(t *testing.T) {
	s := NewK(KConfig{K: 2, CacheSize: 1 << 16})
	runs := 0
	s.Fork(func(int, int) { runs++ }, 0, 0, 1, 2)
	s.Run(true)
	s.Run(false)
	s.Run(false)
	if runs != 2 {
		t.Fatalf("ran %d times, want 2", runs)
	}
	if s.TotalForked() != 1 || s.TotalRun() != 2 {
		t.Fatalf("lifetime counts: %d forked, %d run", s.TotalForked(), s.TotalRun())
	}
}

func TestKSchedulerLastRun(t *testing.T) {
	s := NewK(KConfig{K: 2, CacheSize: 1 << 20, BlockSize: 1 << 10})
	for i := 0; i < 10; i++ {
		s.Fork(func(int, int) {}, 0, 0, 0, 0)
	}
	s.Fork(func(int, int) {}, 0, 0, 5<<10, 0)
	s.Run(false)
	rs := s.LastRun()
	if rs.Threads != 11 || rs.Bins != 2 || rs.MinPerBin != 1 || rs.MaxPerBin != 10 {
		t.Fatalf("last run = %+v", rs)
	}
	if rs.AvgPerBin != 5.5 {
		t.Fatalf("avg = %v", rs.AvgPerBin)
	}
}

// Property: the 3-hint KScheduler bins exactly like the fixed Scheduler
// (without folding, modulo hash-table layout): same bin count for the
// same hint stream.
func TestKSchedulerMatchesFixedSchedulerBins(t *testing.T) {
	f := func(seed int64, blockSel uint8) bool {
		block := uint64(1) << (10 + blockSel%10)
		fixed := New(Config{CacheSize: 1 << 22, BlockSize: block})
		kd := NewK(KConfig{K: 3, CacheSize: 1 << 22, BlockSize: block})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			h1, h2, h3 := rng.Uint64()%(1<<24), rng.Uint64()%(1<<24), rng.Uint64()%(1<<24)
			fixed.Fork(func(int, int) {}, i, 0, h1, h2, h3)
			kd.Fork(func(int, int) {}, i, 0, h1, h2, h3)
		}
		return fixed.Stats().BinsUsed == kd.BinsUsed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every thread runs exactly once at any dimensionality.
func TestKSchedulerEveryThreadOnceProperty(t *testing.T) {
	f := func(seed int64, kSel, blockSel uint8, fold bool) bool {
		k := int(kSel%7) + 1
		s := NewK(KConfig{
			K:             k,
			CacheSize:     1 << 22,
			BlockSize:     1 << (8 + blockSel%14),
			FoldSymmetric: fold,
		})
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 1
		counts := make([]int, n)
		for i := 0; i < n; i++ {
			hints := make([]uint64, rng.Intn(k+2)) // may be short or long
			for d := range hints {
				hints[d] = rng.Uint64() % (1 << 26)
			}
			s.Fork(func(a1, _ int) { counts[a1]++ }, i, 0, hints...)
		}
		s.Run(false)
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
