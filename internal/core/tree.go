package core

import "sort"

// The multi-level bin tree. The flat scheduler walks the bin tour as one
// linear sequence; hierarchical scheduling groups that same tour into
// nested contiguous ranges ("bubbles") mirroring the cache topology: a
// level-0 node is a run of consecutive tour bins whose estimated
// footprint fits one innermost cache, a level-1 node is a run of level-0
// nodes fitting the next cache out, and so on. The tree never reorders
// the tour — every node covers a contiguous [lo, hi) range of tour
// indexes, so a tree walk visits exactly the flat tour order and the
// one-level tree is the flat tour itself. What the tree adds is
// *boundaries*: initial worker segments are cut along node edges so each
// worker cluster walks whole subtrees, and steals detach node-aligned
// ranges (whole bubbles) instead of arbitrary half-segments.

// binTree is the node-boundary index of one tour under a Topology.
type binTree struct {
	topo *Topology
	// starts[l] holds the first tour index of every level-l node in
	// ascending order, with a trailing sentinel equal to nBins; node j at
	// level l spans bins [starts[l][j], starts[l][j+1]). Level 0 is the
	// innermost cache level.
	starts [][]int
	nBins  int
}

// buildBinTree groups a tour of nBins bins into the topology's nested
// bubbles. binBytes is the estimated data footprint of one bin (the
// block volume its threads were hinted into); a run of k consecutive
// bins is placed at the deepest level whose capacity holds k*binBytes,
// which the bottom-up greedy packing below produces directly. Every
// level keeps at least one bin per node, so a topology whose innermost
// cache is smaller than one bin degenerates to one bin per leaf.
func buildBinTree(nBins int, binBytes uint64, topo *Topology) *binTree {
	if binBytes == 0 {
		binBytes = 1
	}
	t := &binTree{topo: topo, nBins: nBins}
	levels := topo.Levels()
	t.starts = make([][]int, levels)
	// Level 0: fixed-width runs of binsPer bins.
	binsPer := nodeBins(topo.Level(0).Capacity, binBytes)
	l0 := make([]int, 0, nBins/binsPer+2)
	for i := 0; i < nBins; i += binsPer {
		l0 = append(l0, i)
	}
	t.starts[0] = append(l0, nBins)
	// Level l: pack consecutive level-(l-1) nodes while the combined bin
	// span fits the level's capacity, always taking at least one child.
	for l := 1; l < levels; l++ {
		budget := nodeBins(topo.Level(l).Capacity, binBytes)
		prev := t.starts[l-1]
		cur := make([]int, 0, len(prev))
		for j := 0; j < len(prev)-1; {
			cur = append(cur, prev[j])
			j++
			for j < len(prev)-1 && prev[j+1]-cur[len(cur)-1] <= budget {
				j++
			}
		}
		t.starts[l] = append(cur, nBins)
	}
	return t
}

// nodeBins is how many bins fit one cache of the given capacity.
func nodeBins(capacity, binBytes uint64) int {
	n := capacity / binBytes
	if n < 1 {
		return 1
	}
	const maxInt = int(^uint(0) >> 1)
	if n > uint64(maxInt) {
		return maxInt
	}
	return int(n)
}

// nodes returns the number of level-l nodes.
func (t *binTree) nodes(l int) int { return len(t.starts[l]) - 1 }

// alignSteal picks the steal cut for a wide (subtree) steal from a
// victim currently spanning [lo, hi): the level-l node boundary nearest
// the range's midpoint, strictly inside (lo, hi), so the detached upper
// part [cut, hi) is a run of whole level-l subtrees. It falls back to
// the plain midpoint when no boundary is strictly inside the range.
func (t *binTree) alignSteal(l, lo, hi int) int {
	mid := lo + (hi-lo+1)/2
	s := t.starts[l]
	// First boundary > lo; boundaries are sorted and unique.
	i := sort.SearchInts(s, lo+1)
	if i >= len(s) || s[i] >= hi {
		return mid
	}
	// Walk to the boundary nearest mid while staying inside (lo, hi).
	best := s[i]
	for ; i < len(s) && s[i] < hi; i++ {
		if abs(s[i]-mid) <= abs(best-mid) {
			best = s[i]
		}
	}
	return best
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// segRange is one worker's initial contiguous bin range [Lo, Hi).
type segRange struct{ lo, hi int }

// topoAssign cuts a weighted tour into one contiguous range per worker,
// recursively: at each tree level the child nodes are partitioned into
// weighted contiguous groups, one per worker cluster sharing a cache at
// the child level (PartitionWeights over node weights), and each
// cluster's range recurses a level down until single workers own ranges
// of bins. Cuts are therefore node-aligned wherever the cluster shape
// allows — worker groups that share a cache walk whole subtrees.
//
// The one-level case is *exactly* the flat partition: the recursion
// bottoms out immediately in PartitionWeights(weights, workers) over
// individual bins, so a 1-level topology reproduces the linear
// segmented dispatch bit for bit.
func topoAssign(weights []int, workers int, tree *binTree) []segRange {
	n := len(weights)
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	segs := make([]segRange, workers)
	for i := range segs {
		segs[i] = segRange{n, n} // leftover workers get empty ranges
	}
	// prefix[i] = total weight of bins [0, i).
	prefix := make([]int, n+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + w
	}
	var rec func(level, blo, bhi, wlo, whi int)
	rec = func(level, blo, bhi, wlo, whi int) {
		nw := whi - wlo
		if nw <= 0 || blo >= bhi {
			return
		}
		if nw == 1 {
			segs[wlo] = segRange{blo, bhi}
			return
		}
		if level == 0 {
			// Innermost level: cut individual bins among single workers.
			// This is the flat partition restricted to [blo, bhi).
			starts := PartitionWeights(weights[blo:bhi], nw)
			for p := range starts {
				hi := bhi
				if p+1 < len(starts) {
					hi = blo + starts[p+1]
				}
				segs[wlo+p] = segRange{blo + starts[p], hi}
			}
			return
		}
		// Group workers into clusters sharing a level-(level-1) cache and
		// cut the level-(level-1) nodes within [blo, bhi) among them.
		cs := tree.topo.clusterSize(level-1, workers)
		clusters := (nw + cs - 1) / cs
		if clusters <= 1 {
			rec(level-1, blo, bhi, wlo, whi)
			return
		}
		childLo, childHi := tree.childRange(level-1, blo, bhi)
		nChildren := childHi - childLo
		if clusters > nChildren {
			// Fewer subtrees than clusters at this granularity: descend a
			// level so the cuts can fall on finer boundaries.
			rec(level-1, blo, bhi, wlo, whi)
			return
		}
		nodeW := make([]int, nChildren)
		s := tree.starts[level-1]
		for j := 0; j < nChildren; j++ {
			lo, hi := s[childLo+j], s[childLo+j+1]
			if hi > bhi {
				hi = bhi
			}
			nodeW[j] = prefix[hi] - prefix[lo]
		}
		cuts := PartitionWeights(nodeW, clusters)
		for p := range cuts {
			cbLo := s[childLo+cuts[p]]
			cbHi := bhi
			if p+1 < len(cuts) {
				cbHi = s[childLo+cuts[p+1]]
			}
			cwLo := wlo + p*cs
			cwHi := cwLo + cs
			if cwHi > whi || p == len(cuts)-1 {
				cwHi = whi
			}
			rec(level-1, cbLo, cbHi, cwLo, cwHi)
		}
	}
	rec(tree.topo.Levels()-1, 0, n, 0, workers)
	return segs
}

// childRange returns the index range [lo, hi) of level-l nodes whose
// spans lie within the bin range [blo, bhi). The bin range is always
// node-aligned at some level >= l, and level-l boundaries refine coarser
// ones, so blo and bhi are both level-l starts (or bhi is the sentinel).
func (t *binTree) childRange(l, blo, bhi int) (int, int) {
	s := t.starts[l]
	lo := sort.SearchInts(s, blo)
	hi := sort.SearchInts(s, bhi)
	return lo, hi
}

// startsToRanges converts PartitionWeights output into segRanges over n
// items, for the code paths that still speak the flat format.
func startsToRanges(starts []int, n int) []segRange {
	segs := make([]segRange, len(starts))
	for i := range starts {
		hi := n
		if i+1 < len(starts) {
			hi = starts[i+1]
		}
		segs[i] = segRange{starts[i], hi}
	}
	return segs
}
