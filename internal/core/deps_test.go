package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDepSchedulerRespectsChain(t *testing.T) {
	d := NewDep(Config{CacheSize: 1 << 20, BlockSize: 1 << 12})
	var order []int
	// A chain scattered across far-apart bins, forked in reverse-friendly
	// hint order: dependencies must still serialize it.
	var prev ThreadID = -1
	for i := 0; i < 20; i++ {
		i := i
		hint := uint64((19 - i)) << 12 // reverse bin order vs dependence order
		var deps []ThreadID
		if prev >= 0 {
			deps = append(deps, prev)
		}
		prev = d.Fork(func(a1, _ int) { order = append(order, a1) }, i, 0, hint, 0, 0, deps...)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("chain executed out of order: %v", order)
		}
	}
}

func TestDepSchedulerIndependentThreadsKeepBinOrder(t *testing.T) {
	d := NewDep(Config{CacheSize: 1 << 20, BlockSize: 1 << 12})
	var order []int
	// Two bins, threads forked interleaved; with no deps the execution
	// must be clustered by bin like the plain scheduler.
	for i := 0; i < 10; i++ {
		i := i
		d.Fork(func(a1, _ int) { order = append(order, a1) }, i, 0,
			uint64(i%2)<<12, 0, 0)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	// Bin of even i first (allocated first), then odd.
	want := []int{0, 2, 4, 6, 8, 1, 3, 5, 7, 9}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDepSchedulerDiamond(t *testing.T) {
	d := NewDep(Config{})
	seen := map[string]int{}
	step := 0
	mark := func(name string) func(int, int) {
		return func(int, int) { seen[name] = step; step++ }
	}
	a := d.Fork(mark("a"), 0, 0, 0, 0, 0)
	b := d.Fork(mark("b"), 0, 0, 0, 0, 0, a)
	c := d.Fork(mark("c"), 0, 0, 0, 0, 0, a)
	d.Fork(mark("d"), 0, 0, 0, 0, 0, b, c)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if !(seen["a"] < seen["b"] && seen["a"] < seen["c"] &&
		seen["b"] < seen["d"] && seen["c"] < seen["d"]) {
		t.Fatalf("diamond order violated: %v", seen)
	}
}

func TestDepSchedulerCycleImpossibleButSelfDepDetected(t *testing.T) {
	// Forward references are rejected, so true cycles cannot be built;
	// a dependence on a not-yet-forked ID errors out.
	d := NewDep(Config{})
	d.Fork(func(int, int) {}, 0, 0, 0, 0, 0, ThreadID(5))
	if err := d.Run(); err == nil {
		t.Fatal("unknown dependency accepted")
	}
	if d.Pending() != 0 {
		t.Fatal("failed run left threads pending")
	}
}

func TestDepSchedulerDepOnCompletedFromSameRun(t *testing.T) {
	d := NewDep(Config{})
	ran := 0
	a := d.Fork(func(int, int) { ran++ }, 0, 0, 0, 0, 0)
	d.Fork(func(int, int) { ran++ }, 0, 0, 0, 0, 0, a, a) // duplicate deps fine
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("ran %d", ran)
	}
}

// The §6 demonstration: a dependence-correct threaded SOR. Thread (it, j)
// depends on (it, j−1) — the within-sweep chain, which also protects the
// right neighbour's old value — and on (it−1, j+1). Any schedule
// respecting these is bit-for-bit the sequential sweep, while the bins
// still clump spatially adjacent columns.
func TestDepSchedulerWavefrontSORMatchesSequential(t *testing.T) {
	n, iters := 64, 6
	relax := func(a []float64, j int) {
		col := a[j*n : (j+1)*n]
		left := a[(j-1)*n : j*n]
		right := a[(j+1)*n : (j+2)*n]
		for i := 1; i < n-1; i++ {
			col[i] = 0.2 * (col[i] + col[i+1] + col[i-1] + right[i] + left[i])
		}
	}
	seq := make([]float64, n*n)
	thr := make([]float64, n*n)
	for k := range seq {
		v := float64((k*7)%13) - 6
		seq[k] = v
		thr[k] = v
	}
	for it := 0; it < iters; it++ {
		for j := 1; j < n-1; j++ {
			relax(seq, j)
		}
	}

	d := NewDep(Config{CacheSize: 1 << 14, BlockSize: 1 << 13})
	const base = 0x1000_0000
	colBytes := uint64(n) * 8
	ids := make([][]ThreadID, iters)
	for it := range ids {
		ids[it] = make([]ThreadID, n)
	}
	body := func(j, _ int) { relax(thr, j) }
	for it := 0; it < iters; it++ {
		for j := 1; j < n-1; j++ {
			var deps []ThreadID
			if j > 1 {
				deps = append(deps, ids[it][j-1])
			}
			if it > 0 && j+1 < n-1 {
				deps = append(deps, ids[it-1][j+1])
			}
			ids[it][j] = d.Fork(body, j, 0, base+uint64(j)*colBytes, 0, 0, deps...)
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for k := range seq {
		if seq[k] != thr[k] {
			t.Fatalf("wavefront SOR diverged at %d: %v vs %v", k, seq[k], thr[k])
		}
	}
}

// Property: for random DAGs (edges only to earlier threads), every thread
// runs exactly once and after all of its predecessors.
func TestDepSchedulerTopologicalProperty(t *testing.T) {
	f := func(seed int64, blockSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDep(Config{CacheSize: 1 << 20, BlockSize: 1 << (8 + blockSel%10)})
		n := rng.Intn(150) + 1
		pos := make([]int, n) // execution step per thread
		step := 0
		deps := make([][]ThreadID, n)
		ids := make([]ThreadID, n)
		for i := 0; i < n; i++ {
			for k := 0; k < rng.Intn(4); k++ {
				if i > 0 {
					deps[i] = append(deps[i], ids[rng.Intn(i)])
				}
			}
			ids[i] = d.Fork(func(a1, _ int) { pos[a1] = step; step++ }, i, 0,
				rng.Uint64()%(1<<20), rng.Uint64()%(1<<20), 0, deps[i]...)
		}
		if d.Run() != nil {
			return false
		}
		if step != n {
			return false
		}
		for i := 0; i < n; i++ {
			for _, dep := range deps[i] {
				if pos[int(dep)] >= pos[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
