package core

import "math/bits"

// KScheduler generalizes the thread package to arbitrary hint
// dimensionality, §2.3's "algorithm for k addresses … a k-dimensional
// block in a k-dimensional space. The sizes of the block dimensions
// should be set such that the sum of the k dimensions of the block is
// less than or equal to the cache size."
//
// The fixed-k Scheduler keeps the C package's flat 3-D hash table and
// zero-allocation fork path; KScheduler trades a little fork cost (one
// key copy and a map probe) for unbounded k. Applications with at most
// three hints should prefer Scheduler.
type KScheduler struct {
	k          int
	blockShift uint
	blockSize  uint64
	fold       bool

	bins    map[uint64][]*kbin // hash of folded key -> chained bins
	ready   []*kbin            // allocation order
	pending int

	totalForked uint64
	totalRun    uint64
	lastRun     RunStats
}

type kbin struct {
	key     []uint64
	recs    []threadRec
	threads int
}

// KConfig parameterizes a KScheduler.
type KConfig struct {
	// K is the hint dimensionality; must be >= 1.
	K int
	// CacheSize is the target cache capacity; 0 selects DefaultCacheSize.
	CacheSize uint64
	// BlockSize overrides the default per-dimension block size
	// (CacheSize/K rounded down to a power of two); rounded down to a
	// power of two itself.
	BlockSize uint64
	// FoldSymmetric places hint permutations in the same bin by sorting
	// block coordinates.
	FoldSymmetric bool
}

// NewK returns a k-dimensional scheduler.
func NewK(cfg KConfig) *KScheduler {
	if cfg.K < 1 {
		cfg.K = 1
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	block := cfg.BlockSize
	if block == 0 {
		block = DefaultBlockSize(cfg.CacheSize, cfg.K)
	} else {
		block = floorPow2(block)
	}
	return &KScheduler{
		k:          cfg.K,
		blockShift: uint(bits.TrailingZeros64(block)),
		blockSize:  block,
		fold:       cfg.FoldSymmetric,
		bins:       make(map[uint64][]*kbin),
	}
}

// K returns the hint dimensionality.
func (s *KScheduler) K() int { return s.k }

// BlockSize returns the per-dimension block size in effect.
func (s *KScheduler) BlockSize() uint64 { return s.blockSize }

// Pending returns the number of threads forked but not yet run.
func (s *KScheduler) Pending() int { return s.pending }

// Fork schedules f(arg1, arg2) under the given hints. Missing trailing
// hints are zero, as in th_fork; extra hints are ignored.
func (s *KScheduler) Fork(f Func, arg1, arg2 int, hints ...uint64) {
	key := make([]uint64, s.k)
	for i := 0; i < s.k && i < len(hints); i++ {
		key[i] = hints[i] >> s.blockShift
	}
	if s.fold {
		insertionSort(key)
	}
	b := s.lookup(key)
	b.recs = append(b.recs, threadRec{fn: f, arg1: arg1, arg2: arg2})
	b.threads++
	s.pending++
	s.totalForked++
}

func (s *KScheduler) lookup(key []uint64) *kbin {
	h := hashKey(key)
	for _, b := range s.bins[h] {
		if equalKey(b.key, key) {
			return b
		}
	}
	b := &kbin{key: key}
	s.bins[h] = append(s.bins[h], b)
	s.ready = append(s.ready, b)
	return b
}

// Run executes all scheduled threads bin by bin in allocation order,
// destroying (keep=false) or retaining (keep=true) the schedule.
func (s *KScheduler) Run(keep bool) {
	s.lastRun = RunStats{Threads: s.pending, Bins: len(s.ready)}
	for i, b := range s.ready {
		if i == 0 || b.threads < s.lastRun.MinPerBin {
			s.lastRun.MinPerBin = b.threads
		}
		if b.threads > s.lastRun.MaxPerBin {
			s.lastRun.MaxPerBin = b.threads
		}
		for j := range b.recs {
			r := &b.recs[j]
			r.fn(r.arg1, r.arg2)
		}
		s.totalRun += uint64(len(b.recs))
	}
	if len(s.ready) > 0 {
		s.lastRun.AvgPerBin = float64(s.lastRun.Threads) / float64(len(s.ready))
	}
	if !keep {
		s.bins = make(map[uint64][]*kbin)
		s.ready = s.ready[:0]
		s.pending = 0
	}
}

// LastRun returns the occupancy snapshot of the most recent Run.
func (s *KScheduler) LastRun() RunStats { return s.lastRun }

// BinsUsed returns the number of bins currently holding threads.
func (s *KScheduler) BinsUsed() int { return len(s.ready) }

// TotalForked and TotalRun report lifetime thread counts.
func (s *KScheduler) TotalForked() uint64 { return s.totalForked }

// TotalRun reports the lifetime count of executed threads (re-executions
// under keep included).
func (s *KScheduler) TotalRun() uint64 { return s.totalRun }

// hashKey mixes the block coordinates with an FNV-1a-style fold.
func hashKey(key []uint64) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range key {
		h ^= v
		h *= 1099511628211
	}
	return h
}

func equalKey(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func insertionSort(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
