package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// Parallel Run dispatch. The tour orders (allocation, Morton, Hilbert)
// place spatially adjacent bins next to each other; handing workers bins
// one at a time from a shared counter — the obvious dispatch — therefore
// deals neighbouring bins to *different* workers, destroying exactly the
// cross-bin adjacency the tour was built to exploit and maximizing the
// read-mostly data shared between caches. Instead the tour is cut into
// contiguous segments, one per worker, weighted by thread count; a worker
// that drains its segment steals the upper half of the largest remaining
// segment, so even rebalanced work is a contiguous tour run. This is the
// hierarchy-aware distribution BubbleSched-style schedulers apply to task
// trees, specialized to the paper's 1-D bin tour.

// PartitionWeights cuts n weighted items into at most parts contiguous
// segments of near-equal total weight, returning each segment's start
// index (segment i spans starts[i] up to starts[i+1], the last one up to
// n). It never returns an empty segment: len(result) = min(parts, n), or
// nil for an empty input.
func PartitionWeights(weights []int, parts int) []int {
	n := len(weights)
	if n == 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	remaining := 0
	for _, w := range weights {
		remaining += w
	}
	starts := make([]int, parts)
	i := 0
	for p := 0; p < parts; p++ {
		starts[p] = i
		if p == parts-1 {
			break
		}
		target := remaining / (parts - p)
		acc := 0
		// Take at least one item; stop at the cut closest to the target
		// weight, but never starve the remaining segments of items.
		for i < n-(parts-1-p) {
			w := weights[i]
			if acc > 0 && acc+w-target > target-acc {
				break
			}
			acc += w
			i++
			if acc >= target {
				break
			}
		}
		remaining -= acc
	}
	return starts
}

// binSegment is one worker's claimable range [lo, hi) of tour indexes,
// packed into a single atomic word so both the owner's take-from-front
// and a thief's take-from-back are lock-free CAS updates on one cell.
// Padding keeps neighbouring segments off one cache line.
type binSegment struct {
	bounds atomic.Uint64
	_      [56]byte
}

func packRange(lo, hi int) uint64 { return uint64(uint32(lo))<<32 | uint64(uint32(hi)) }

func unpackRange(v uint64) (lo, hi int) { return int(int32(v >> 32)), int(int32(v)) }

// next claims the segment's lowest unclaimed index.
func (g *binSegment) next() (int, bool) {
	for {
		v := g.bounds.Load()
		lo, hi := unpackRange(v)
		if lo >= hi {
			return 0, false
		}
		if g.bounds.CompareAndSwap(v, packRange(lo+1, hi)) {
			return lo, true
		}
	}
}

// take claims a contiguous run of the segment's lowest unclaimed indexes:
// an eighth of the remainder, at least one, at most chunk (the
// Config.StealChunk knob, or the owning level's override under a
// hierarchical topology). Batching the claim cuts dispatch to one atomic
// per chunk of bins while leaving the bulk of the segment in the shared
// word where stealHalf can still get at it — claimed bins are the
// owner's, exactly as if next() had claimed them one by one. A small
// chunk keeps the work exposed to thieves shrinking in fine steps near
// the end of a run; a large one amortizes the CAS over longer runs.
func (g *binSegment) take(chunk int) (lo, hi int, ok bool) {
	for {
		v := g.bounds.Load()
		l, h := unpackRange(v)
		if l >= h {
			return 0, 0, false
		}
		n := (h - l + 7) / 8
		if n > chunk {
			n = chunk
		}
		if g.bounds.CompareAndSwap(v, packRange(l+n, h)) {
			return l, l + n, true
		}
	}
}

// remaining is the number of unclaimed indexes left in the segment.
func (g *binSegment) remaining() int {
	lo, hi := unpackRange(g.bounds.Load())
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// stealHalf detaches the upper half of the segment's remaining range,
// leaving the lower half (at least one index) to the owner so the owner
// keeps advancing through adjacent bins.
func (g *binSegment) stealHalf() (lo, hi int, ok bool) {
	return g.detachUpper(func(l, h int) int { return l + (h-l+1)/2 })
}

// detachUpper atomically detaches the upper part [cut, hi) of the
// segment's remaining range, where cut = compute(lo, hi) clamped so the
// owner keeps at least one index and the thief gets at least one. The
// hierarchical steal policies are all instances of this: a narrow steal
// computes hi-chunk, a wide steal computes the nearest subtree boundary.
func (g *binSegment) detachUpper(compute func(lo, hi int) int) (lo, hi int, ok bool) {
	for {
		v := g.bounds.Load()
		l, h := unpackRange(v)
		if h-l <= 1 {
			return 0, 0, false
		}
		cut := compute(l, h)
		if cut <= l {
			cut = l + 1
		}
		if cut >= h {
			cut = h - 1
		}
		if g.bounds.CompareAndSwap(v, packRange(l, cut)) {
			return cut, h, true
		}
	}
}

// runParallel executes bins across Workers goroutines; each bin runs
// entirely on one worker so the per-bin working set still fits one cache.
// Containment and cancellation are cooperative: every worker checks the
// shared runControl once per bin, so a panic on one worker (recovered
// into the control) or an expired ctx stops the whole pool at bin
// granularity, after which fanOut's barrier guarantees quiescence.
func (s *Scheduler) runParallel(ctx context.Context, order []*bin) error {
	workers := s.cfg.Workers
	if workers > len(order) {
		workers = len(order)
	}
	ctrl := newRunControl(ctx)
	switch {
	case s.cfg.Dispatch == DispatchAtomic:
		s.runAtomic(order, workers, ctrl)
	case s.cfg.Topology != nil:
		// Hierarchical dispatch: tree-aligned segments with per-level
		// stealing. A 1-level topology reproduces the flat segmented
		// dispatch exactly (see tree.go and tree_dispatch.go).
		s.runTree(order, workers, ctrl)
	default:
		s.runSegmented(order, workers, ctrl)
	}
	return ctrl.err()
}

// runSegmented is the default dispatch: weighted contiguous tour segments
// plus chunked stealing. With observability attached, each contiguous
// drain (the initial segment and every stolen refill) is timed into
// sched.segment_drain_ns and spanned on the worker's timeline track, and
// sched.steals counts successful refills per thief.
func (s *Scheduler) runSegmented(order []*bin, workers int, ctrl *runControl) {
	weights := make([]int, len(order))
	for i, b := range order {
		weights[i] = b.threads
	}
	starts := PartitionWeights(weights, workers)
	segs := make([]binSegment, len(starts))
	for i := range segs {
		hi := len(order)
		if i+1 < len(starts) {
			hi = starts[i+1]
		}
		segs[i].bounds.Store(packRange(starts[i], hi))
	}
	chunk := s.cfg.StealChunk
	s.fanOut(len(segs), "run", func(self int) {
		for {
			start := s.met.now()
			sp := s.met.span(self, "drain")
			bins, threads := 0, 0
			for !ctrl.halted() {
				lo, hi, ok := segs[self].take(chunk)
				if !ok {
					break
				}
				for i := lo; i < hi && !ctrl.halted(); i++ {
					n, perr := s.runBinContained(order[i], i, self, "run")
					threads += n
					bins++
					if perr != nil {
						ctrl.record(perr)
						break
					}
				}
			}
			s.met.threadsRun.Add(self, uint64(threads))
			s.met.drainDone(self, start, bins, sp)
			if ctrl.halted() {
				return
			}
			if !stealInto(segs, self, ctrl) {
				return
			}
			s.met.steals.Inc(self)
		}
	})
}

// stealInto moves half of the largest remaining segment into segs[self]
// (which the caller has drained). Only the slot's owner refills it, so a
// worker that returns false and exits leaves its slot empty forever and
// every non-empty slot still has an active owner — that is what makes
// "no victim with more than one bin left" a safe exit condition. The
// rescan loop re-checks the run control so a cancelled or panicked run
// cannot keep a thief spinning against racing victims past the halt.
func stealInto(segs []binSegment, self int, ctrl *runControl) bool {
	for !ctrl.halted() {
		victim, best := -1, 1
		for i := range segs {
			if i == self {
				continue
			}
			if r := segs[i].remaining(); r > best {
				victim, best = i, r
			}
		}
		if victim < 0 {
			return false
		}
		if lo, hi, ok := segs[victim].stealHalf(); ok {
			segs[self].bounds.Store(packRange(lo, hi))
			return true
		}
		// Lost the race to the victim's own progress; rescan.
	}
	return false
}

// runAtomic is the legacy dispatch kept as a comparison baseline: workers
// claim bins one at a time from a shared counter, so tour neighbours land
// on different workers.
func (s *Scheduler) runAtomic(order []*bin, workers int, ctrl *runControl) {
	var next int64 = -1
	s.fanOut(workers, "run", func(self int) {
		start := s.met.now()
		sp := s.met.span(self, "atomic-drain")
		bins, threads := 0, 0
		for !ctrl.halted() {
			i := atomic.AddInt64(&next, 1)
			if i >= int64(len(order)) {
				break
			}
			n, perr := s.runBinContained(order[i], int(i), self, "run")
			threads += n
			bins++
			if perr != nil {
				ctrl.record(perr)
				break
			}
		}
		s.met.threadsRun.Add(self, uint64(threads))
		s.met.drainDone(self, start, bins, sp)
	})
}

// fanOut runs fn(0..n-1) concurrently: fn(0) on the calling goroutine and
// the rest on pooled workers, so a keep=true re-run spawns no goroutines
// after the first Run. With observability attached, every worker runs
// under pprof labels naming its track and phase, so profiles of a
// parallel run split per worker.
func (s *Scheduler) fanOut(n int, phase string, fn func(worker int)) {
	if o := s.cfg.Obs; o != nil {
		inner := fn
		fn = func(w int) { o.Labeled(w, phase, func() { inner(w) }) }
	}
	if n <= 1 {
		fn(0)
		return
	}
	if s.pool == nil {
		s.pool = &workerPool{jobs: make(chan poolJob)}
	}
	s.pool.ensure(n - 1)
	var wg sync.WaitGroup
	wg.Add(n - 1)
	for w := 1; w < n; w++ {
		s.pool.jobs <- poolJob{worker: w, fn: fn, wg: &wg}
	}
	fn(0)
	wg.Wait()
}

// workerPool parks Run's worker goroutines between calls.
type workerPool struct {
	jobs    chan poolJob
	spawned int
}

type poolJob struct {
	worker int
	fn     func(int)
	wg     *sync.WaitGroup
}

// ensure grows the pool to at least n parked workers. Only the goroutine
// calling Run touches spawned, per the scheduler's contract.
func (p *workerPool) ensure(n int) {
	for ; p.spawned < n; p.spawned++ {
		go func() {
			for j := range p.jobs {
				j.fn(j.worker)
				j.wg.Done()
			}
		}()
	}
}

// Close releases the persistent worker goroutines a parallel Run left
// parked. It is optional — an unclosed pool simply keeps its goroutines
// for the life of the process — and safe to call repeatedly; a later Run
// recreates the pool on demand. Close must not overlap a Run in progress.
func (s *Scheduler) Close() {
	if s.pool != nil {
		close(s.pool.jobs)
		s.pool = nil
	}
}
