package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ThreadPanicError is the typed error the context-taking run entry points
// (Scheduler.RunContext, Scheduler.RunEachContext, DepScheduler.RunContext)
// return when a thread body panics. The panic is recovered on the worker
// that executed the thread, the run quiesces cleanly (every pooled worker
// stops at its next bin boundary and parks; no goroutine leaks), and the
// first panic — by happens-before order of detection — is surfaced with
// enough context to find the thread that blew up.
//
// The legacy panicking entry points (Scheduler.Run, Scheduler.RunEach,
// DepScheduler.Run) re-panic with the *ThreadPanicError as the panic
// value, so their callers still observe a panic exactly as before
// containment, just a more diagnosable one.
type ThreadPanicError struct {
	// Value is the recovered panic value of the thread body.
	Value any
	// Phase names the execution path: "run" (Scheduler.RunContext, serial
	// or parallel dispatch), "run-each" (RunEachContext), "dep-run"
	// (DepScheduler serial drain), or "wave" (DepScheduler wavefront).
	Phase string
	// Worker is the worker index that executed the thread; 0 is the
	// goroutine that called Run.
	Worker int
	// Bin locates the thread's bin: the tour index for Scheduler runs,
	// the drain order index for "dep-run", or the position in the wave's
	// runnable bin list for "wave".
	Bin int
	// Thread identifies the thread within the bin: its fork-order index
	// for Scheduler runs, or its ThreadID for DepScheduler runs.
	Thread int
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

// Error describes the panic and where it happened.
func (e *ThreadPanicError) Error() string {
	return fmt.Sprintf("core: thread %d in bin %d panicked on worker %d during %s: %v",
		e.Thread, e.Bin, e.Worker, e.Phase, e.Value)
}

// runControl coordinates one run's fault containment and cancellation
// across workers: the first recovered panic wins, and a set stop flag (or
// an expired context) makes every worker exit at its next bin boundary.
type runControl struct {
	ctx  context.Context
	stop atomic.Bool
	mu   sync.Mutex
	perr *ThreadPanicError
}

func newRunControl(ctx context.Context) *runControl {
	return &runControl{ctx: ctx}
}

// halted reports whether workers should stop claiming bins: a panic was
// recorded or the context is done. Called once per bin; the fast path is
// one relaxed atomic load plus ctx.Err (a nil return for Background).
func (c *runControl) halted() bool {
	return c.stop.Load() || c.ctx.Err() != nil
}

// record stores the first panic and stops the run.
func (c *runControl) record(p *ThreadPanicError) {
	c.mu.Lock()
	if c.perr == nil {
		c.perr = p
	}
	c.mu.Unlock()
	c.stop.Store(true)
}

// err returns the run's verdict once all workers have quiesced: the first
// recorded panic, else the context's error, else nil. Must be called
// after the worker barrier (fanOut's WaitGroup), which orders all record
// calls before it.
func (c *runControl) err() error {
	c.mu.Lock()
	p := c.perr
	c.mu.Unlock()
	if p != nil {
		return p
	}
	return c.ctx.Err()
}

// runBinContained executes every thread of one bin — group FIFO order, as
// runBin did before containment — recovering a thread panic into a
// *ThreadPanicError that identifies the thread. Threads executed before
// the panic are still counted into the lifetime totals, so Stats stays
// truthful about partially executed runs.
func (s *Scheduler) runBinContained(b *bin, binIdx, worker int, phase string) (n int, perr *ThreadPanicError) {
	executed := 0
	defer func() {
		atomic.AddUint64(&s.totalRun, uint64(executed))
		n = executed
		if r := recover(); r != nil {
			perr = &ThreadPanicError{
				Value:  r,
				Phase:  phase,
				Worker: worker,
				Bin:    binIdx,
				Thread: executed, // fork-order index of the panicking thread
				Stack:  debug.Stack(),
			}
		}
	}()
	for g := b.groups; g != nil; g = g.next {
		for i := range g.recs {
			r := &g.recs[i]
			r.fn(r.arg1, r.arg2)
			executed++
		}
	}
	return executed, nil
}
