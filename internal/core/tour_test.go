package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpreadDilatesBits(t *testing.T) {
	if spread(0) != 0 {
		t.Error("spread(0) != 0")
	}
	if spread(1) != 1 {
		t.Errorf("spread(1) = %b", spread(1))
	}
	if spread(0b11) != 0b1001 {
		t.Errorf("spread(3) = %b, want 1001", spread(0b11))
	}
	if spread(0b101) != 0b1000001 {
		t.Errorf("spread(5) = %b, want 1000001", spread(0b101))
	}
}

func TestMorton3Interleaves(t *testing.T) {
	cases := []struct {
		key  binKey
		want uint64
	}{
		{binKey{0, 0, 0}, 0},
		{binKey{1, 0, 0}, 1},
		{binKey{0, 1, 0}, 2},
		{binKey{0, 0, 1}, 4},
		{binKey{1, 1, 1}, 7},
		{binKey{2, 0, 0}, 8},
	}
	for _, c := range cases {
		if got := morton3(c.key); got != c.want {
			t.Errorf("morton3(%v) = %d, want %d", c.key, got, c.want)
		}
	}
}

// Property: the Morton code is injective over coordinates < 2^21.
func TestMorton3InjectiveProperty(t *testing.T) {
	f := func(a1, a2, a3, b1, b2, b3 uint32) bool {
		const mask = 1<<curveBits - 1
		ka := binKey{uint64(a1) & mask, uint64(a2) & mask, uint64(a3) & mask}
		kb := binKey{uint64(b1) & mask, uint64(b2) & mask, uint64(b3) & mask}
		if ka == kb {
			return morton3(ka) == morton3(kb)
		}
		return morton3(ka) != morton3(kb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the Hilbert index is injective over coordinates < 2^21.
func TestHilbert3InjectiveProperty(t *testing.T) {
	f := func(a1, a2, a3, b1, b2, b3 uint32) bool {
		const mask = 1<<curveBits - 1
		ka := binKey{uint64(a1) & mask, uint64(a2) & mask, uint64(a3) & mask}
		kb := binKey{uint64(b1) & mask, uint64(b2) & mask, uint64(b3) & mask}
		if ka == kb {
			return hilbert3(ka) == hilbert3(kb)
		}
		return hilbert3(ka) != hilbert3(kb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The defining property of a Hilbert curve: consecutive indices are
// adjacent points (unit Manhattan distance). Verify by inverting a small
// curve by brute force.
func TestHilbert3Adjacency(t *testing.T) {
	const side = 8 // 8×8×8 cube = 512 cells
	byIndex := make(map[uint64]binKey, side*side*side)
	for x := uint64(0); x < side; x++ {
		for y := uint64(0); y < side; y++ {
			for z := uint64(0); z < side; z++ {
				k := binKey{x, y, z}
				byIndex[hilbert3(k)] = k
			}
		}
	}
	if len(byIndex) != side*side*side {
		t.Fatalf("hilbert3 not injective on the cube: %d distinct indices", len(byIndex))
	}
	// The cube's cells must occupy 512 consecutive indices scaled by the
	// full curve: indices of an 8³ cube under a 2^21-bit curve are the
	// first 512 multiples of (2^21/8)³ = ... — rather than assume the
	// scale, just sort and check each step moves by one cell.
	prev, ok := binKey{}, false
	steps, adjacent := 0, 0
	for i := uint64(0); steps < side*side*side; i++ {
		if i > 1<<24 {
			t.Fatalf("cube cells not found in the low index range; found %d of %d",
				steps, side*side*side)
		}
		k, present := byIndex[i]
		if !present {
			continue
		}
		if ok {
			if manhattan(prev, k) == 1 {
				adjacent++
			}
		}
		prev, ok = k, true
		steps++
	}
	// All consecutive-in-index pairs within the cube must be adjacent.
	if adjacent != side*side*side-1 {
		t.Errorf("only %d/%d consecutive pairs adjacent", adjacent, side*side*side-1)
	}
}

func manhattan(a, b binKey) uint64 {
	var d uint64
	for i := range a {
		if a[i] > b[i] {
			d += a[i] - b[i]
		} else {
			d += b[i] - a[i]
		}
	}
	return d
}

// Tour-quality smoke test: on a random cloud of blocks, the Hilbert tour's
// total Manhattan path length must not exceed the allocation-order tour's.
func TestHilbertTourShorterThanRandomOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := make([]binKey, 200)
	for i := range keys {
		keys[i] = binKey{uint64(rng.Intn(64)), uint64(rng.Intn(64)), uint64(rng.Intn(64))}
	}
	length := func(ks []binKey) uint64 {
		var sum uint64
		for i := 1; i < len(ks); i++ {
			sum += manhattan(ks[i-1], ks[i])
		}
		return sum
	}
	randomLen := length(keys)
	sorted := make([]binKey, len(keys))
	copy(sorted, keys)
	// Insertion sort by Hilbert index (few elements, avoids importing sort).
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && hilbertLess(sorted[j], sorted[j-1]); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	hilbertLen := length(sorted)
	if hilbertLen > randomLen {
		t.Errorf("hilbert tour (%d) longer than random order (%d)", hilbertLen, randomLen)
	}
}

// The tour is memoized between runs: re-sorting happens only when a bin
// was allocated since the cached order was built (keep=true re-runs of an
// unchanged schedule reuse the slice as-is).
func TestTourMemoizedUntilBinAllocated(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 12, Tour: TourHilbert})
	for i := 0; i < 64; i++ {
		s.Fork(func(int, int) {}, i, 0, uint64(i)<<12, 0, 0)
	}
	o1 := s.tour()
	o2 := s.tour()
	if &o1[0] != &o2[0] {
		t.Fatal("tour re-collected with no bin allocated")
	}
	// Forking into an existing block must not invalidate the cache.
	s.Fork(func(int, int) {}, 0, 0, 0, 0, 0)
	if o3 := s.tour(); &o3[0] != &o1[0] {
		t.Fatal("fork into existing bin invalidated the tour")
	}
	// A new block must.
	s.Fork(func(int, int) {}, 0, 0, uint64(64)<<12, 0, 0)
	o4 := s.tour()
	if len(o4) != 65 {
		t.Fatalf("tour has %d bins, want 65", len(o4))
	}
	// Destroying the schedule drops the cache (bins are recycled).
	s.Run(false)
	if s.tourCache != nil {
		t.Fatal("tour cache survived release")
	}
	// And the memoized order still is the sorted order on re-runs.
	for i := 0; i < 64; i++ {
		s.Fork(func(int, int) {}, i, 0, uint64(63-i)<<12, 0, 0)
	}
	a := s.tour()
	s.Run(true)
	b := s.tour()
	if &a[0] != &b[0] {
		t.Fatal("keep re-run rebuilt the tour")
	}
	for i := 1; i < len(b); i++ {
		if hilbertLess(b[i].key, b[i-1].key) {
			t.Fatal("memoized tour out of sorted order")
		}
	}
}

// The sharded fork path must share the same memoization: stripe dirty
// flags aggregate into one staleness decision.
func TestTourMemoizedSharded(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 12, ParallelFork: true, Tour: TourMorton})
	for i := 0; i < 64; i++ {
		s.Fork(func(int, int) {}, i, 0, uint64(i)<<12, 0, 0)
	}
	o1 := s.tour()
	if o2 := s.tour(); &o2[0] != &o1[0] {
		t.Fatal("sharded tour re-collected with no bin allocated")
	}
	s.Fork(func(int, int) {}, 0, 0, uint64(99)<<12, 0, 0)
	if o3 := s.tour(); len(o3) != 65 {
		t.Fatalf("sharded tour has %d bins, want 65", len(o3))
	}
}
