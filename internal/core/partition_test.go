package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"
)

func TestPartitionWeightsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(100) + 1
		parts := rng.Intn(12) + 1
		weights := make([]int, n)
		for i := range weights {
			weights[i] = rng.Intn(1000)
		}
		starts := PartitionWeights(weights, parts)
		want := parts
		if want > n {
			want = n
		}
		if len(starts) != want {
			t.Fatalf("n=%d parts=%d: got %d segments, want %d", n, parts, len(starts), want)
		}
		if starts[0] != 0 {
			t.Fatalf("first segment starts at %d", starts[0])
		}
		for i := 1; i < len(starts); i++ {
			if starts[i] <= starts[i-1] {
				t.Fatalf("empty or non-monotone segment: starts=%v", starts)
			}
		}
		if starts[len(starts)-1] >= n {
			t.Fatalf("last segment empty: starts=%v n=%d", starts, n)
		}
	}
}

func TestPartitionWeightsBalance(t *testing.T) {
	// Uniform weights must split near-evenly.
	weights := make([]int, 100)
	for i := range weights {
		weights[i] = 10
	}
	starts := PartitionWeights(weights, 4)
	if len(starts) != 4 {
		t.Fatalf("starts = %v", starts)
	}
	for i := 0; i < 4; i++ {
		hi := 100
		if i+1 < 4 {
			hi = starts[i+1]
		}
		if size := hi - starts[i]; size < 20 || size > 30 {
			t.Fatalf("uniform split uneven: starts=%v", starts)
		}
	}
	// One giant item must not drag its segment's neighbours along.
	skew := []int{1, 1, 1000, 1, 1, 1, 1, 1}
	starts = PartitionWeights(skew, 3)
	sums := segmentSums(skew, starts)
	if sums[0] > 1002 && len(sums) > 1 {
		t.Fatalf("giant item's segment absorbed neighbours: sums=%v starts=%v", sums, starts)
	}
}

func TestPartitionWeightsEdgeCases(t *testing.T) {
	if got := PartitionWeights(nil, 4); got != nil {
		t.Fatalf("empty input: %v", got)
	}
	if got := PartitionWeights([]int{5}, 4); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single item: %v", got)
	}
	if got := PartitionWeights([]int{1, 2, 3}, 0); len(got) != 1 {
		t.Fatalf("zero parts: %v", got)
	}
	// All-zero weights (empty bins cannot occur, but the function must
	// not divide by zero or loop).
	if got := PartitionWeights([]int{0, 0, 0, 0}, 2); len(got) != 2 {
		t.Fatalf("zero weights: %v", got)
	}
}

func segmentSums(weights []int, starts []int) []int {
	sums := make([]int, len(starts))
	for i := range starts {
		hi := len(weights)
		if i+1 < len(starts) {
			hi = starts[i+1]
		}
		for j := starts[i]; j < hi; j++ {
			sums[i] += weights[j]
		}
	}
	return sums
}

func TestBinSegmentClaimAndSteal(t *testing.T) {
	var seg binSegment
	seg.bounds.Store(packRange(3, 10))
	if r := seg.remaining(); r != 7 {
		t.Fatalf("remaining = %d, want 7", r)
	}
	if i, ok := seg.next(); !ok || i != 3 {
		t.Fatalf("next = %d,%v", i, ok)
	}
	lo, hi, ok := seg.stealHalf()
	if !ok || lo != 7 || hi != 10 { // 6 left in [4,10): thief takes [7,10)
		t.Fatalf("stealHalf = [%d,%d),%v", lo, hi, ok)
	}
	// Owner keeps [4,7).
	for want := 4; want < 7; want++ {
		if i, ok := seg.next(); !ok || i != want {
			t.Fatalf("next = %d,%v, want %d", i, ok, want)
		}
	}
	if _, ok := seg.next(); ok {
		t.Fatal("segment not exhausted")
	}
	// A segment with one remaining index is never stolen.
	seg.bounds.Store(packRange(0, 1))
	if _, _, ok := seg.stealHalf(); ok {
		t.Fatal("stole the owner's last bin")
	}
}

// TestSegmentsClaimEachIndexOnce hammers next/steal from many goroutines
// and verifies exactly-once claiming — the property the whole dispatch
// rests on.
func TestSegmentsClaimEachIndexOnce(t *testing.T) {
	const n = 10000
	const workers = 8
	weights := make([]int, n)
	for i := range weights {
		weights[i] = 1 + i%13
	}
	starts := PartitionWeights(weights, workers)
	segs := make([]binSegment, len(starts))
	for i := range segs {
		hi := n
		if i+1 < len(starts) {
			hi = starts[i+1]
		}
		segs[i].bounds.Store(packRange(starts[i], hi))
	}
	claimed := make([]int32, n)
	ctrl := newRunControl(context.Background())
	var wg sync.WaitGroup
	for w := 0; w < len(segs); w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				if i, ok := segs[self].next(); ok {
					claimed[i]++
					continue
				}
				if !stealInto(segs, self, ctrl) {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for i, c := range claimed {
		if c != 1 {
			t.Fatalf("index %d claimed %d times", i, c)
		}
	}
}
