// Package core implements the paper's primary contribution: a user-level,
// run-to-completion, fine-grained thread package whose scheduler orders
// thread execution for second-level cache locality using per-thread
// address hints (§2–§3 of the paper).
//
// A thread is a function pointer plus two integer arguments and up to
// three address hints. At fork time the hints are mapped, block-wise, into
// a bin: the hint space is divided into k-dimensional blocks whose
// per-dimension size is at most 1/k of the cache size, so the union of the
// data touched by threads sharing a block fits in the cache. Bins are
// organized in a hash table (shift-and-mask per dimension, chaining for
// collisions) and linked onto a ready list in allocation order. Run walks
// the ready list, executing every thread of one bin before moving to the
// next, which is what converts hint locality into temporal locality.
//
// The package mirrors the paper's three-call interface —
// th_init/th_fork/th_run — as Scheduler.Init, Scheduler.Fork, and
// Scheduler.Run, and keeps the paper's low-overhead design: thread records
// live in batched thread groups recycled through free lists, so a fork is
// a hash, a couple of pointer moves, and three word stores.
//
// Beyond the paper's implementation it also provides, as clearly marked
// extensions used by the ablation experiments: alternative bin tour orders
// (Morton and Hilbert space-filling curves instead of allocation order),
// optional symmetric hint folding (§2.3's "reduce the number of bins by
// 50%"), and parallel bin execution across workers (the symmetric
// multiprocessor extension the paper's §7 leaves as future work).
//
// # Parallel fork and run
//
// Two Config switches extend the §7 SMP conjecture from "run bins in
// parallel" to a fully parallel fork → run pipeline:
//
//   - ParallelFork shards the fork-side state — hash-cell collision
//     chains, ready lists, free lists, and the pending/forked counters —
//     into lock stripes so N goroutines can Fork concurrently with
//     near-linear throughput. Each hash cell belongs to exactly one
//     stripe; a fork locks only the stripe owning its bin's cell.
//   - Workers > 1 makes Run execute bins in parallel. The dispatcher
//     partitions the bin tour into contiguous segments, one per worker,
//     weighted by per-bin thread count, so spatially adjacent bins (which
//     the Morton/Hilbert tours deliberately place next to each other, and
//     which therefore share cache lines) stay on one worker's cache. Idle
//     workers rebalance by stealing the upper half of the largest
//     remaining segment — stolen work is itself a contiguous tour run.
//     DispatchAtomic restores the legacy one-bin-at-a-time atomic-counter
//     dispatch as a comparison baseline.
//   - Topology layers a cache hierarchy over the segmented dispatch: the
//     tour groups into nested bubbles sized to each cache level (L1 → L2
//     → LLC), worker clusters sharing a cache walk whole subtrees, and
//     steals pick victims by cache distance — narrow chunks from cluster
//     siblings, whole subtrees across the outermost level. See
//     topology.go, tree.go, and tree_dispatch.go.
//
// Run's worker goroutines persist in a pool across Run calls (amortizing
// spawn cost for keep=true re-runs); Close releases them. The bin tour is
// memoized between runs and recomputed only when a new bin was allocated.
//
// # Thread-safety contract
//
// The zero configuration is the paper's sequential-program facility:
// nothing may be called concurrently. Each mode widens that precisely:
//
//   - ParallelFork permits concurrent Fork calls (and concurrent
//     Stats/Pending/BinOccupancy readers) between runs. It does NOT
//     permit Fork concurrently with Run: forkers must synchronize with
//     the goroutine calling Run (e.g. sync.WaitGroup) before it starts.
//     Fork panics if it observes a Run in progress.
//   - Workers > 1 runs thread bodies concurrently with each other (every
//     bin still executes entirely on one worker), so bodies must be safe
//     to run in parallel. Run itself must still be called from one
//     goroutine at a time.
//   - RunEach is always sequential regardless of Workers.
package core

import (
	"fmt"
	"math/bits"
	"runtime"

	"threadsched/internal/obs"
)

// Func is the thread body: the paper's f(arg1, arg2).
type Func func(arg1, arg2 int)

// MaxHints is the number of address hints a thread may carry. The paper's
// package implements the three-dimensional case (§3); unused hints are
// passed as zero, exactly as in th_fork.
const MaxHints = 3

// TourOrder selects the order in which Run visits non-empty bins.
type TourOrder int

const (
	// TourAllocation visits bins in the order they were first used — the
	// paper's ready-list order.
	TourAllocation TourOrder = iota
	// TourMorton visits bins in Morton (Z-order) of their block
	// coordinates; an ablation of §2.3's "traversing the bins along some
	// path, preferably the shortest one".
	TourMorton
	// TourHilbert visits bins along a 3-D Hilbert curve over their block
	// coordinates, the shortest-tour heuristic among the three.
	TourHilbert
)

// String names the tour order.
func (t TourOrder) String() string {
	switch t {
	case TourAllocation:
		return "allocation"
	case TourMorton:
		return "morton"
	case TourHilbert:
		return "hilbert"
	default:
		return fmt.Sprintf("TourOrder(%d)", int(t))
	}
}

// Dispatch selects how Run hands bins to workers when Workers > 1.
type Dispatch int

const (
	// DispatchSegmented partitions the bin tour into contiguous segments
	// weighted by thread count, one per worker, with chunked stealing
	// from the largest remaining segment — spatially adjacent bins stay
	// on one worker (the default).
	DispatchSegmented Dispatch = iota
	// DispatchAtomic is the legacy baseline: workers claim bins one at a
	// time from a shared atomic counter, interleaving tour neighbours
	// across workers.
	DispatchAtomic
)

// String names the dispatch policy.
func (d Dispatch) String() string {
	switch d {
	case DispatchSegmented:
		return "segmented"
	case DispatchAtomic:
		return "atomic"
	default:
		return fmt.Sprintf("Dispatch(%d)", int(d))
	}
}

// Defaults mirroring the C package's configuration-dependent defaults.
const (
	// DefaultHashDim is the default per-dimension size of the 3-D hash
	// table of bin pointers (DefaultHashDim³ cells total).
	DefaultHashDim = 16
	// DefaultGroupSize is the number of thread records per thread group;
	// grouping amortizes allocation and keeps fork overhead flat (§3.2).
	DefaultGroupSize = 256
)

// Config parameterizes a Scheduler. The zero value is usable once a cache
// size is known; call Init (th_init) to override block and hash sizes.
type Config struct {
	// CacheSize is the capacity in bytes of the cache being scheduled for
	// (the largest cache, per §2.3). It determines the default block
	// size. If zero, DefaultCacheSize is assumed.
	CacheSize uint64
	// BlockSize is the per-dimension block size in bytes; 0 selects the
	// default CacheSize/Dims rounded down to a power of two ("dimension
	// sizes … sum … the same as the second-level cache size", §3.2).
	// Non-power-of-two values are rounded down to a power of two so the
	// hint-to-block mapping stays a shift.
	BlockSize uint64
	// Dims is the number of hint dimensions used for the default block
	// size; 0 means MaxHints.
	Dims int
	// HashDim is the per-dimension hash table size (power of two); 0
	// selects DefaultHashDim.
	HashDim int
	// GroupSize is the thread-group capacity; 0 selects
	// DefaultGroupSize.
	GroupSize int
	// FoldSymmetric places threads with permuted hints — (hi, hj) and
	// (hj, hi) — in the same bin by sorting block coordinates (§2.3).
	FoldSymmetric bool
	// Tour selects the bin traversal order; the zero value is the
	// paper's allocation order.
	Tour TourOrder
	// Workers > 1 enables the SMP extension: bins are executed in
	// parallel by this many workers, each bin entirely on one worker.
	// Thread bodies must then be safe to run concurrently with each
	// other. 0 or 1 runs everything on the calling goroutine.
	Workers int
	// Dispatch selects the bin dispatch policy for Workers > 1; the zero
	// value is DispatchSegmented (contiguous weighted tour segments with
	// chunked stealing).
	Dispatch Dispatch
	// StealChunk bounds how many bins one segment claim (or one narrow
	// hierarchical steal) takes at a time; 0 selects DefaultStealChunk.
	// Smaller chunks expose more work to thieves, larger ones amortize the
	// per-claim atomic over longer contiguous runs.
	StealChunk int
	// Topology describes the cache hierarchy for hierarchical scheduling
	// (innermost level first; see Topology and ParseTopology). Nil — the
	// default — keeps the flat single-level dispatch. A non-nil topology
	// routes parallel runs through the bin tree: tour bins group into
	// nested bubbles sized to each cache level, initial worker segments
	// cut along subtree boundaries, and steals pick victims by cache
	// distance with a per-level width policy. A 1-level topology is the
	// flat dispatch expressed through the tree and behaves identically.
	Topology *Topology
	// CriticalPathFirst orders DepScheduler frontiers by longest remaining
	// dependence path (precomputed once per DAG) so chains drain before
	// leaves. False — the default — keeps the original fork/ID order.
	CriticalPathFirst bool
	// ParallelFork shards the fork-side state into lock stripes so Fork
	// may be called from many goroutines concurrently (see the package
	// doc's thread-safety contract). The serial fork path is unchanged
	// when false.
	ParallelFork bool
	// ForkShards is the lock-stripe count used when ParallelFork is set,
	// rounded up to a power of two; 0 selects a default derived from
	// GOMAXPROCS.
	ForkShards int
	// Obs attaches the observability layer: per-worker scheduler metrics
	// (steals, bins and threads per worker, segment drain times), worker
	// timeline spans, and pprof labels on the worker pool. Nil (the
	// default) disables all of it; the disabled path is a nil-check fast
	// path that performs no timing calls and no allocation.
	Obs *obs.Obs
}

// defaultForkShards sizes the lock striping at several stripes per
// processor, so concurrent forkers rarely contend on the same stripe.
func defaultForkShards() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	if n > 256 {
		n = 256
	}
	return int(ceilPow2(uint64(n)))
}

// DefaultCacheSize is used when a Config specifies no cache size; it is
// the R8000's 2 MB second-level cache, the paper's primary machine.
const DefaultCacheSize = 2 << 20

// DefaultStealChunk is the default bound on bins claimed per segment
// take; small enough that a nearly-drained segment still exposes work to
// thieves, large enough to amortize the claim's CAS.
const DefaultStealChunk = 16

// DefaultBlockSize returns the default per-dimension block size for a
// cache of the given size scheduled over dims dimensions: the largest
// power of two not exceeding cacheSize/dims.
func DefaultBlockSize(cacheSize uint64, dims int) uint64 {
	if dims <= 0 {
		dims = MaxHints
	}
	if cacheSize == 0 {
		cacheSize = DefaultCacheSize
	}
	per := cacheSize / uint64(dims)
	if per == 0 {
		return 1
	}
	return floorPow2(per)
}

func floorPow2(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	return 1 << (63 - uint(bits.LeadingZeros64(v)))
}

func ceilPow2(v uint64) uint64 {
	if v <= 1 {
		return 1
	}
	return 1 << uint(bits.Len64(v-1))
}
