package core

// Hierarchical parallel dispatch. The flat segmented dispatcher cuts the
// bin tour into one contiguous segment per worker and rebalances by
// halving the largest remaining segment — a single-level policy. With a
// multi-level Config.Topology, the tour is first grouped into the bin
// tree (tree.go): initial segments are cut along subtree boundaries so
// every worker cluster sharing a cache walks whole bubbles, and an idle
// worker steals by tree distance — nearest victims first, with a width
// policy per level:
//
//   - innermost level (victim shares the thief's L1 cluster): steal
//     narrow — a chunk of at most the level's StealChunk bins off the
//     victim's tail, so siblings fine-tune load without evicting each
//     other's bubbles;
//   - middle levels: steal half the victim's remainder, the flat policy;
//   - outermost level (victim shares only the last-level cache): steal
//     wide — the upper part of the victim's range cut at the nearest
//     subtree boundary of the level below, so the stolen work is a run
//     of whole bubbles the thief's own cluster can then share.
//
// Splitting is lazy, as in BubbleSched: a stolen range larger than the
// thief's innermost capacity is not re-partitioned at steal time — the
// thief starts draining it front-to-back and its idle cluster siblings
// carve their own chunks off the tail through the same per-level policy.
//
// A 1-level topology degenerates to the flat dispatcher exactly: the
// initial cut is PartitionWeights over individual bins and every steal
// is a half-steal from the largest victim (stealTree's top==0 case),
// which is stealInto verbatim.

// runTree executes bins across workers under a hierarchical topology.
// Containment and cancellation follow runSegmented: every worker checks
// the shared runControl once per bin.
func (s *Scheduler) runTree(order []*bin, workers int, ctrl *runControl) {
	topo := s.cfg.Topology
	weights := make([]int, len(order))
	for i, b := range order {
		weights[i] = b.threads
	}
	tree := buildBinTree(len(order), s.binFootprint(), topo)
	s.met.treeShape(tree)
	asn := topoAssign(weights, workers, tree)
	segs := make([]binSegment, len(asn))
	for i, r := range asn {
		segs[i].bounds.Store(packRange(r.lo, r.hi))
	}
	takeChunk := topo.stealChunkAt(0, s.cfg.StealChunk)
	s.fanOut(len(segs), "run", func(self int) {
		prov := -1 // provenance of the current segment: -1 home, else steal level
		for {
			start := s.met.now()
			sp := s.met.span(self, "drain")
			bins, threads := 0, 0
			for !ctrl.halted() {
				lo, hi, ok := segs[self].take(takeChunk)
				if !ok {
					break
				}
				for i := lo; i < hi && !ctrl.halted(); i++ {
					n, perr := s.runBinContained(order[i], i, self, "run")
					threads += n
					bins++
					if perr != nil {
						ctrl.record(perr)
						break
					}
				}
			}
			s.met.threadsRun.Add(self, uint64(threads))
			s.met.treeDrain(self, prov, bins)
			s.met.drainDone(self, start, bins, sp)
			if ctrl.halted() {
				return
			}
			lvl, stolen, ok := s.stealTree(segs, self, workers, tree, ctrl)
			if !ok {
				return
			}
			prov = lvl
			s.met.treeSteal(self, lvl, stolen)
		}
	})
}

// stealTree refills segs[self] (which the caller has drained) from the
// nearest level that still has work: for each level from the innermost
// out, the victim is the worker with the most remaining bins among those
// whose closest shared cache with the thief is that level, and the steal
// width follows the level policy described in the package comment. Like
// stealInto, only a slot's owner refills it, so "no victim with more
// than one bin left at any level" is a safe exit condition. The per-level
// rescan loop re-checks the run control so a halted run cannot keep a
// thief spinning against racing victims.
func (s *Scheduler) stealTree(segs []binSegment, self, workers int, tree *binTree, ctrl *runControl) (level, bins int, ok bool) {
	topo := s.cfg.Topology
	top := topo.Levels() - 1
	for l := 0; l <= top; l++ {
		for !ctrl.halted() {
			victim, best := -1, 1
			for v := range segs {
				if v == self || topo.sharedLevel(self, v, workers) != l {
					continue
				}
				if r := segs[v].remaining(); r > best {
					victim, best = v, r
				}
			}
			if victim < 0 {
				break // no work at this level; look one level out
			}
			var lo, hi int
			var got bool
			switch {
			case top == 0:
				// Flat degenerate case: the half-steal the linear
				// dispatcher always performed.
				lo, hi, got = segs[victim].stealHalf()
			case l == 0:
				chunk := topo.stealChunkAt(0, s.cfg.StealChunk)
				lo, hi, got = segs[victim].detachUpper(func(vlo, vhi int) int {
					n := (vhi - vlo) / 2
					if n > chunk {
						n = chunk
					}
					if n < 1 {
						n = 1
					}
					return vhi - n
				})
			case l == top:
				lo, hi, got = segs[victim].detachUpper(func(vlo, vhi int) int {
					return tree.alignSteal(l-1, vlo, vhi)
				})
			default:
				lo, hi, got = segs[victim].stealHalf()
			}
			if got {
				segs[self].bounds.Store(packRange(lo, hi))
				return l, hi - lo, true
			}
			// Lost the race to the victim's own progress; rescan the level.
		}
	}
	return 0, 0, false
}

// binFootprint estimates one bin's data footprint: the block volume its
// hints span — per-dimension block size times hint dimensions — which is
// what the bin tree measures level capacities against.
func (s *Scheduler) binFootprint() uint64 {
	b := s.cfg.BlockSize
	d := uint64(s.cfg.Dims)
	if d == 0 {
		d = MaxHints
	}
	if b == 0 {
		return 1
	}
	if b > ^uint64(0)/d {
		return ^uint64(0)
	}
	return b * d
}
