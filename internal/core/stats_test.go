package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestStatsConcurrentWithParallelRun is the -race regression for the
// Stats data race: runs and lastRun used to be plain fields incremented
// by Run but read by Stats/LastRun, which are documented callable
// concurrently. Readers hammer Stats and LastRun while parallel Runs
// (including keep=true re-runs, a RunEach, and the destructive release
// of a keep=false Run) are live; ParallelFork puts the scheduler in the
// mode whose contract permits readers across all of that.
func TestStatsConcurrentWithParallelRun(t *testing.T) {
	s := New(Config{Workers: 4, ParallelFork: true, BlockSize: 1 << 12})
	defer s.Close()
	var executed atomic.Uint64
	const threads = 1 << 12
	for i := 0; i < threads; i++ {
		s.Fork(func(int, int) { executed.Add(1) }, i, 0, uint64(i)<<6, 0, 0)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := s.Stats()
				if st.BinsUsed > 0 && st.MinPerBin < 1 {
					t.Errorf("occupied snapshot with MinPerBin %d", st.MinPerBin)
					return
				}
				lr := s.LastRun()
				if !lr.Empty() && lr.MinPerBin < 1 {
					t.Errorf("occupied run snapshot with MinPerBin %d", lr.MinPerBin)
					return
				}
			}
		}()
	}

	const reruns = 3
	for r := 0; r < reruns; r++ {
		s.Run(true)
	}
	s.RunEach(true, nil)
	s.Run(false)
	close(stop)
	wg.Wait()

	if got := executed.Load(); got != (reruns+2)*threads {
		t.Fatalf("executed %d threads, want %d", got, (reruns+2)*threads)
	}
	if st := s.Stats(); st.Runs != reruns+2 {
		t.Fatalf("Runs = %d, want %d", st.Runs, reruns+2)
	}
}

// TestStatsConcurrentWithRunSerialFork covers the narrower serial-fork
// contract: without ParallelFork, Stats and LastRun are still legal
// during the thread-execution phase of a Run (here keep=true, so no
// release happens while readers are live).
func TestStatsConcurrentWithRunSerialFork(t *testing.T) {
	s := New(Config{Workers: 4, BlockSize: 1 << 12})
	defer s.Close()
	const threads = 1 << 11
	for i := 0; i < threads; i++ {
		s.Fork(func(int, int) {}, i, 0, uint64(i)<<6, 0, 0)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.Stats()
			_ = s.LastRun()
		}
	}()
	for r := 0; r < 4; r++ {
		s.Run(true)
	}
	close(stop)
	<-done // readers quiesce before the destructive run below
	s.Run(false)
	if st := s.Stats(); st.Runs != 5 || st.TotalRun != 5*threads {
		t.Fatalf("stats after runs = %+v", st)
	}
}

// TestEmptySchedulerSnapshot pins the empty-snapshot contract: with no
// bins occupied, Stats and RunStats are all-zero, Empty reports true, and
// MinPerBin can never be confused with a (nonexistent) zero-thread bin —
// an occupied scheduler always reports MinPerBin ≥ 1.
func TestEmptySchedulerSnapshot(t *testing.T) {
	s := New(Config{BlockSize: 1 << 12})
	st := s.Stats()
	if !st.Empty() {
		t.Fatalf("fresh scheduler snapshot not Empty: %+v", st)
	}
	if st.MinPerBin != 0 || st.MaxPerBin != 0 || st.AvgPerBin != 0 || st.Pending != 0 {
		t.Fatalf("fresh scheduler snapshot not all-zero: %+v", st)
	}
	if lr := s.LastRun(); !lr.Empty() {
		t.Fatalf("LastRun before any Run not Empty: %+v", lr)
	}

	// A Run with nothing forked completes and records the empty snapshot.
	s.Run(false)
	lr := s.LastRun()
	if !lr.Empty() || lr.Threads != 0 || lr.MinPerBin != 0 || lr.MaxPerBin != 0 || lr.AvgPerBin != 0 {
		t.Fatalf("empty Run snapshot = %+v, want all-zero", lr)
	}
	if st := s.Stats(); st.Runs != 1 {
		t.Fatalf("empty Run not counted: Runs = %d", st.Runs)
	}

	// One fork: the snapshot leaves the empty state and Min ≥ 1.
	s.Fork(func(int, int) {}, 0, 0, 0, 0, 0)
	st = s.Stats()
	if st.Empty() || st.MinPerBin != 1 || st.MaxPerBin != 1 {
		t.Fatalf("one-thread snapshot = %+v, want Min=Max=1", st)
	}
	s.Run(false)
	if lr := s.LastRun(); lr.Empty() || lr.MinPerBin != 1 {
		t.Fatalf("one-thread run snapshot = %+v", lr)
	}
}
