package core

import (
	"strings"
	"testing"
)

// TestParseTopology round-trips valid specs and rejects malformed ones.
func TestParseTopology(t *testing.T) {
	cases := []struct {
		spec   string
		want   string // String() of the parsed topology; "" = expect error
		levels int
	}{
		{"32k:2,256k:8,8m:64", "32k:2,256k:8,8m:64", 3},
		{"  32k:2 , 256k:8 ", "32k:2,256k:8", 2},
		{"4096:1", "4k:1", 1},
		{"1m:4:8", "1m:4:8", 1}, // per-level chunk survives the round trip
		{"2g:128", "2g:128", 1},
		{"32k:2,32k:4", "", 0},  // capacity must strictly increase
		{"256k:8,32k:2", "", 0}, // innermost-first ordering enforced
		{"32k:4,256k:2", "", 0}, // sharing cannot shrink outward
		{"32k:0", "", 0},
		{"0:2", "", 0},
		{"32k", "", 0},
		{"32k:2:3:4", "", 0},
		{"32q:2", "", 0},
		{"32k:two", "", 0},
	}
	for _, c := range cases {
		topo, err := ParseTopology(c.spec)
		if c.want == "" {
			if err == nil {
				t.Errorf("ParseTopology(%q) = %v, want error", c.spec, topo)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseTopology(%q): %v", c.spec, err)
			continue
		}
		if got := topo.String(); got != c.want {
			t.Errorf("ParseTopology(%q).String() = %q, want %q", c.spec, got, c.want)
		}
		if c.levels > 0 && topo.Levels() != c.levels {
			t.Errorf("ParseTopology(%q).Levels() = %d, want %d", c.spec, topo.Levels(), c.levels)
		}
	}
}

// TestParseTopologyFlat maps the empty and "flat" specs to the nil
// Topology, whose accessors describe the single flat pseudo-level.
func TestParseTopologyFlat(t *testing.T) {
	for _, spec := range []string{"", "  ", "flat", "FLAT"} {
		topo, err := ParseTopology(spec)
		if err != nil || topo != nil {
			t.Fatalf("ParseTopology(%q) = (%v, %v), want (nil, nil)", spec, topo, err)
		}
	}
	var topo *Topology
	if topo.Levels() != 1 {
		t.Fatalf("nil Levels() = %d, want 1", topo.Levels())
	}
	if topo.String() != "flat" {
		t.Fatalf("nil String() = %q", topo.String())
	}
	if l := topo.Level(0); l.Capacity != ^uint64(0) {
		t.Fatalf("nil Level(0) = %+v", l)
	}
	if got := topo.stealChunkAt(0, 0); got != DefaultStealChunk {
		t.Fatalf("nil stealChunkAt = %d, want %d", got, DefaultStealChunk)
	}
	if got := topo.stealChunkAt(0, 7); got != 7 {
		t.Fatalf("nil stealChunkAt(fallback 7) = %d", got)
	}
}

// TestTopologyClustering checks the static contiguous worker grouping:
// cluster sizes clamp to the run's worker count and sharedLevel finds the
// innermost cache two workers have in common.
func TestTopologyClustering(t *testing.T) {
	topo, err := ParseTopology("32k:2,256k:4,8m:16")
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.clusterSize(0, 16); got != 2 {
		t.Errorf("clusterSize(0) = %d, want 2", got)
	}
	if got := topo.clusterSize(1, 3); got != 3 { // clamped to the run
		t.Errorf("clusterSize(1, workers=3) = %d, want 3", got)
	}
	cases := []struct{ a, b, want int }{
		{0, 1, 0}, // same L1 pair
		{0, 2, 1}, // same L2 quad, different L1
		{0, 4, 2}, // different L2
		{5, 6, 1}, // workers 4-7 share an L2; 5 and 6 split across L1 pairs... 4|5 and 6|7
		{14, 15, 0},
	}
	for _, c := range cases {
		if got := topo.sharedLevel(c.a, c.b, 16); got != c.want {
			t.Errorf("sharedLevel(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if got := topo.stealChunkAt(0, 5); got != 5 {
		t.Errorf("stealChunkAt fallback = %d, want 5", got)
	}
	withChunk, err := ParseTopology("32k:2:3,256k:4")
	if err != nil {
		t.Fatal(err)
	}
	if got := withChunk.stealChunkAt(0, 5); got != 3 {
		t.Errorf("per-level stealChunkAt = %d, want 3", got)
	}
}

// TestNewTopologyErrorsName verifies validation errors identify the level.
func TestNewTopologyErrorsName(t *testing.T) {
	_, err := NewTopology(TopoLevel{Capacity: 1 << 15, Workers: 2}, TopoLevel{Capacity: 1 << 14, Workers: 4})
	if err == nil || !strings.Contains(err.Error(), "level 1") {
		t.Fatalf("err = %v, want mention of level 1", err)
	}
	if _, err := NewTopology(); err == nil {
		t.Fatal("empty NewTopology succeeded")
	}
}
