package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// forkWavefront forks an iters×cols SOR-style dependence grid: thread
// (it,j) adds into cell (it,j) from its neighbours and depends on
// (it,j-1) and (it-1,j+1) — the same shape the sor app uses. Each
// thread writes only its own cell, so any execution respecting the
// dependences is race-free and produces the same grid.
func forkWavefront(d *DepScheduler, grid []int64, iters, cols int) {
	id := func(it, j int) ThreadID { return ThreadID(it*cols + j) }
	for it := 0; it < iters; it++ {
		for j := 0; j < cols; j++ {
			it, j := it, j
			var deps []ThreadID
			if j > 0 {
				deps = append(deps, id(it, j-1))
			}
			if it > 0 && j+1 < cols {
				deps = append(deps, id(it-1, j+1))
			}
			d.Fork(func(_, _ int) {
				v := int64(1)
				if j > 0 {
					v += grid[it*cols+j-1]
				}
				if it > 0 && j+1 < cols {
					v += grid[(it-1)*cols+j+1]
				}
				grid[it*cols+j] = v
			}, 0, 0, uint64(j)<<14, 0, 0, deps...)
		}
	}
}

// TestDepSchedulerParallelWavefrontMatchesSerial runs the same
// dependence grid through the serial executor and the parallel
// wavefront executor and requires identical results.
func TestDepSchedulerParallelWavefrontMatchesSerial(t *testing.T) {
	const iters, cols = 7, 23
	serial := make([]int64, iters*cols)
	ds := NewDep(Config{CacheSize: 1 << 20, BlockSize: 1 << 14})
	forkWavefront(ds, serial, iters, cols)
	if err := ds.Run(); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4} {
		par := make([]int64, iters*cols)
		dp := NewDep(Config{CacheSize: 1 << 20, BlockSize: 1 << 14, Workers: workers})
		defer dp.Close()
		forkWavefront(dp, par, iters, cols)
		if err := dp.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for k := range serial {
			if serial[k] != par[k] {
				t.Fatalf("workers=%d: cell %d = %d, serial %d",
					workers, k, par[k], serial[k])
			}
		}
	}
}

// TestDepSchedulerParallelTopologicalOrder builds a random DAG and
// checks, via an atomic completion flag per thread, that no thread
// starts before all of its dependencies finished.
func TestDepSchedulerParallelTopologicalOrder(t *testing.T) {
	const n = 300
	rng := rand.New(rand.NewSource(11))
	d := NewDep(Config{CacheSize: 1 << 20, BlockSize: 1 << 12, Workers: 4})
	defer d.Close()

	done := make([]int32, n)
	depsOf := make([][]ThreadID, n)
	var violations int32
	for i := 0; i < n; i++ {
		i := i
		// Depend on up to 3 random earlier threads: always acyclic.
		for k := 0; k < 3 && i > 0; k++ {
			if rng.Intn(2) == 0 {
				depsOf[i] = append(depsOf[i], ThreadID(rng.Intn(i)))
			}
		}
		d.Fork(func(_, _ int) {
			for _, dep := range depsOf[i] {
				if atomic.LoadInt32(&done[dep]) == 0 {
					atomic.AddInt32(&violations, 1)
				}
			}
			atomic.StoreInt32(&done[i], 1)
		}, 0, 0, uint64(rng.Intn(16))<<12, 0, 0, depsOf[i]...)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if v := atomic.LoadInt32(&violations); v != 0 {
		t.Fatalf("%d threads started before a dependency completed", v)
	}
	for i, f := range done {
		if f == 0 {
			t.Fatalf("thread %d never ran", i)
		}
	}
}

// TestDepSchedulerParallelUnknownDepRejected checks the parallel Run
// still reports forward/unknown dependencies and resets cleanly.
func TestDepSchedulerParallelUnknownDepRejected(t *testing.T) {
	d := NewDep(Config{CacheSize: 1 << 20, Workers: 4})
	defer d.Close()
	d.Fork(func(_, _ int) {}, 0, 0, 0, 0, 0, ThreadID(7))
	if err := d.Run(); err == nil {
		t.Fatal("unknown dependency accepted")
	}
	if d.Pending() != 0 {
		t.Fatal("failed run left threads pending")
	}
}

// TestDepSchedulerParallelReuse reuses one parallel DepScheduler across
// consecutive Run calls, as the apps do.
func TestDepSchedulerParallelReuse(t *testing.T) {
	d := NewDep(Config{CacheSize: 1 << 20, BlockSize: 1 << 14, Workers: 4})
	defer d.Close()
	for round := 0; round < 3; round++ {
		const iters, cols = 4, 9
		grid := make([]int64, iters*cols)
		forkWavefront(d, grid, iters, cols)
		if err := d.Run(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if grid[iters*cols-1] == 0 {
			t.Fatalf("round %d: last cell never computed", round)
		}
	}
}
