package core

// Space-filling-curve bin tours. §2.3 frames scheduling as "finding a tour
// of points in a two-dimensional plane" with a cluster property and notes
// the traversal should preferably follow the shortest path; the C package
// settles for allocation order. These curves are the natural better-tour
// ablation: Morton interleaving and a 3-D Hilbert curve both visit nearby
// blocks consecutively, and the Hilbert curve has no long jumps.

const curveBits = 21 // 3×21 = 63 bits of interleaved index

// keyFits reports whether every block coordinate fits in curveBits, i.e.
// whether the single-chunk curve index is exact for this key. Coordinates
// beyond that range used to be silently masked, aliasing bins ≥2²¹ blocks
// apart onto one curve index; the tour now detects overflow and switches
// to mortonLessWide (Morton) or allocation order (Hilbert).
func keyFits(k binKey) bool {
	return (k[0]|k[1]|k[2])>>curveBits == 0
}

// morton3 interleaves the low curveBits bits of the three block
// coordinates into a Z-order index.
func morton3(k binKey) uint64 {
	return spread(k[0]) | spread(k[1])<<1 | spread(k[2])<<2
}

// mortonLessWide orders two bin keys by the Z-order of their full 64-bit
// coordinates. The 192-bit interleaved index is never materialized:
// comparing Morton codes chunk-wise from the most significant coordinate
// bits down is exactly comparing the full codes, because each chunk's
// interleaved bits outrank everything below it.
func mortonLessWide(a, b binKey) bool {
	for shift := 63; shift >= 0; shift -= curveBits {
		ma := morton3(shiftKey(a, uint(shift)))
		mb := morton3(shiftKey(b, uint(shift)))
		if ma != mb {
			return ma < mb
		}
	}
	return false
}

func shiftKey(k binKey, shift uint) binKey {
	return binKey{k[0] >> shift, k[1] >> shift, k[2] >> shift}
}

// spread distributes the low 21 bits of v so consecutive bits land three
// apart (the classic bit-dilation used for Morton codes).
func spread(v uint64) uint64 {
	v &= (1 << curveBits) - 1
	v = (v | v<<32) & 0x1f00000000ffff
	v = (v | v<<16) & 0x1f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// hilbertLess orders two bin keys by their 3-D Hilbert curve index.
func hilbertLess(a, b binKey) bool { return hilbert3(a) < hilbert3(b) }

// hilbert3 computes the Hilbert curve index of the block coordinates using
// Skilling's transpose algorithm: the coordinates are converted in place to
// the "transposed" Hilbert representation and then undilated into a single
// index.
func hilbert3(k binKey) uint64 {
	const n = MaxHints
	var x [n]uint64
	for i := range x {
		x[i] = k[i] & ((1 << curveBits) - 1)
	}

	// Inverse undo excess work (Skilling 2004, AIP Conf. Proc. 707).
	m := uint64(1) << (curveBits - 1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p // invert
			} else { // exchange
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint64
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}

	// Undilate the transposed representation into one index: bit b of
	// axis i becomes bit b*n + (n-1-i) of the result.
	var h uint64
	for b := 0; b < curveBits; b++ {
		for i := 0; i < n; i++ {
			bit := (x[i] >> uint(b)) & 1
			h |= bit << uint(b*n+(n-1-i))
		}
	}
	return h
}
