package core

import (
	"time"

	"threadsched/internal/obs"
)

// Scheduler metric names, resolved once at construction so the hot paths
// touch pre-looked-up handles only. All are sharded per worker track:
//
//	sched.bins_run          bins executed, per worker — the bins-per-worker split
//	sched.threads_run       threads executed, per worker
//	sched.steals            successful segment steals, per thief worker
//	sched.segment_drain_ns  time to drain one contiguous segment (initial or stolen)
//	sched.tour_overflow     tour builds that saw a block coordinate ≥ 2^curveBits
//	dep.waves               wavefront rounds executed by DepScheduler.Run
//	dep.frontier            runnable-frontier size per wave (histogram)
//	dep.wave_ns             wall time per wave (histogram)
type schedObs struct {
	o            *obs.Obs // nil when disabled; the single enabled/disabled switch
	binsRun      *obs.Counter
	threadsRun   *obs.Counter
	steals       *obs.Counter
	drainNS      *obs.Histogram
	tourOverflow *obs.Counter
}

func newSchedObs(o *obs.Obs) schedObs {
	if o == nil {
		return schedObs{}
	}
	r := o.Registry()
	return schedObs{
		o:            o,
		binsRun:      r.Counter("sched.bins_run"),
		threadsRun:   r.Counter("sched.threads_run"),
		steals:       r.Counter("sched.steals"),
		drainNS:      r.Histogram("sched.segment_drain_ns"),
		tourOverflow: r.Counter("sched.tour_overflow"),
	}
}

func (m *schedObs) enabled() bool { return m.o != nil }

// now timestamps a drain start; the zero time (and no clock read) when
// disabled.
func (m *schedObs) now() time.Time {
	if m.o == nil {
		return time.Time{}
	}
	return time.Now()
}

// drainDone records one contiguous segment drain: its duration histogram
// sample, the per-worker bin count, and the timeline span.
func (m *schedObs) drainDone(worker int, start time.Time, bins int, sp obs.Span) {
	if m.o == nil {
		return
	}
	m.drainNS.Observe(worker, uint64(time.Since(start)))
	m.binsRun.Add(worker, uint64(bins))
	sp.End()
}

// span opens a timeline span on the worker's track; the no-op Span when
// the timeline is disabled.
func (m *schedObs) span(worker int, name string) obs.Span {
	if m.o == nil {
		return obs.Span{}
	}
	return m.o.Timeline().Begin(worker, name)
}

// depObs is the DepScheduler's wavefront instrumentation.
type depObs struct {
	o        *obs.Obs
	waves    *obs.Counter
	frontier *obs.Histogram
	waveNS   *obs.Histogram
}

func newDepObs(o *obs.Obs) depObs {
	if o == nil {
		return depObs{}
	}
	r := o.Registry()
	return depObs{
		o:        o,
		waves:    r.Counter("dep.waves"),
		frontier: r.Histogram("dep.frontier"),
		waveNS:   r.Histogram("dep.wave_ns"),
	}
}
