package core

import (
	"fmt"
	"time"

	"threadsched/internal/obs"
)

// Scheduler metric names, resolved once at construction so the hot paths
// touch pre-looked-up handles only. All are sharded per worker track:
//
//	sched.bins_run          bins executed, per worker — the bins-per-worker split
//	sched.threads_run       threads executed, per worker
//	sched.steals            successful segment steals, per thief worker
//	sched.segment_drain_ns  time to drain one contiguous segment (initial or stolen)
//	sched.tour_overflow     tour builds that saw a block coordinate ≥ 2^curveBits
//	dep.waves               wavefront rounds executed by DepScheduler.Run
//	dep.frontier            runnable-frontier size per wave (histogram)
//	dep.wave_ns             wall time per wave (histogram)
//
// With a multi-level Topology, hierarchical dispatch additionally splits
// the steal and drain traffic per cache level (l0 innermost):
//
//	sched.steals.l<N>      successful steals whose victim shares the thief's level-N cache, per thief
//	sched.steal_bins.l<N>  bins moved by those steals, per thief
//	sched.drain_bins.l<N>  bins drained out of segments stolen at level N, per worker
//	sched.drain_bins.home  bins drained out of workers' initial (home) segments
//	sched.tree_nodes.l<N>  bubble count at level N for the last tree build (gauge)
//
// These per-level metrics exist only when the topology has more than one
// level, so flat and 1-level runs keep the exact metric set they had.
type schedObs struct {
	o            *obs.Obs // nil when disabled; the single enabled/disabled switch
	binsRun      *obs.Counter
	threadsRun   *obs.Counter
	steals       *obs.Counter
	drainNS      *obs.Histogram
	tourOverflow *obs.Counter

	// Per-level hierarchical metrics; nil slices outside multi-level runs.
	treeSteals    []*obs.Counter
	treeStealBins []*obs.Counter
	treeDrainBins []*obs.Counter
	treeDrainHome *obs.Counter
	treeNodes     []*obs.Gauge
}

func newSchedObs(o *obs.Obs, topo *Topology) schedObs {
	if o == nil {
		return schedObs{}
	}
	r := o.Registry()
	m := schedObs{
		o:            o,
		binsRun:      r.Counter("sched.bins_run"),
		threadsRun:   r.Counter("sched.threads_run"),
		steals:       r.Counter("sched.steals"),
		drainNS:      r.Histogram("sched.segment_drain_ns"),
		tourOverflow: r.Counter("sched.tour_overflow"),
	}
	if levels := topo.Levels(); levels > 1 {
		m.treeSteals = make([]*obs.Counter, levels)
		m.treeStealBins = make([]*obs.Counter, levels)
		m.treeDrainBins = make([]*obs.Counter, levels)
		m.treeNodes = make([]*obs.Gauge, levels)
		for l := 0; l < levels; l++ {
			m.treeSteals[l] = r.Counter(fmt.Sprintf("sched.steals.l%d", l))
			m.treeStealBins[l] = r.Counter(fmt.Sprintf("sched.steal_bins.l%d", l))
			m.treeDrainBins[l] = r.Counter(fmt.Sprintf("sched.drain_bins.l%d", l))
			m.treeNodes[l] = r.Gauge(fmt.Sprintf("sched.tree_nodes.l%d", l))
		}
		m.treeDrainHome = r.Counter("sched.drain_bins.home")
	}
	return m
}

// treeShape records the bubble count per level of the tree the run built.
func (m *schedObs) treeShape(t *binTree) {
	if m.o == nil || m.treeNodes == nil {
		return
	}
	for l := range m.treeNodes {
		m.treeNodes[l].Set(0, uint64(t.nodes(l)))
	}
}

// treeSteal records one successful hierarchical steal: the flat steals
// counter (so flat and tree runs stay comparable) plus the per-level
// split of steal count and bins moved.
func (m *schedObs) treeSteal(worker, level, bins int) {
	if m.o == nil {
		return
	}
	m.steals.Inc(worker)
	if m.treeSteals != nil && level >= 0 && level < len(m.treeSteals) {
		m.treeSteals[level].Inc(worker)
		m.treeStealBins[level].Add(worker, uint64(bins))
	}
}

// treeDrain attributes one contiguous drain's bins to the provenance of
// the segment they came from: prov < 0 is the worker's initial home
// segment, otherwise the level the segment was stolen at.
func (m *schedObs) treeDrain(worker, prov, bins int) {
	if m.o == nil || m.treeDrainHome == nil || bins == 0 {
		return
	}
	if prov < 0 {
		m.treeDrainHome.Add(worker, uint64(bins))
		return
	}
	if prov < len(m.treeDrainBins) {
		m.treeDrainBins[prov].Add(worker, uint64(bins))
	}
}

func (m *schedObs) enabled() bool { return m.o != nil }

// now timestamps a drain start; the zero time (and no clock read) when
// disabled.
func (m *schedObs) now() time.Time {
	if m.o == nil {
		return time.Time{}
	}
	return time.Now()
}

// drainDone records one contiguous segment drain: its duration histogram
// sample, the per-worker bin count, and the timeline span.
func (m *schedObs) drainDone(worker int, start time.Time, bins int, sp obs.Span) {
	if m.o == nil {
		return
	}
	m.drainNS.Observe(worker, uint64(time.Since(start)))
	m.binsRun.Add(worker, uint64(bins))
	sp.End()
}

// span opens a timeline span on the worker's track; the no-op Span when
// the timeline is disabled.
func (m *schedObs) span(worker int, name string) obs.Span {
	if m.o == nil {
		return obs.Span{}
	}
	return m.o.Timeline().Begin(worker, name)
}

// depObs is the DepScheduler's wavefront instrumentation.
type depObs struct {
	o        *obs.Obs
	waves    *obs.Counter
	frontier *obs.Histogram
	waveNS   *obs.Histogram
}

func newDepObs(o *obs.Obs) depObs {
	if o == nil {
		return depObs{}
	}
	r := o.Registry()
	return depObs{
		o:        o,
		waves:    r.Counter("dep.waves"),
		frontier: r.Histogram("dep.frontier"),
		waveNS:   r.Histogram("dep.wave_ns"),
	}
}
