package core

import "sync"

// forkShard is one lock stripe of the concurrent-fork state. The hash
// table's cells are partitioned among the shards by cell index; a shard's
// mutex guards its cells' collision chains, every bin reachable through
// them (including the bin's thread groups and counts), and the shard's own
// ready list, free lists and counters. Forks into different stripes never
// touch the same memory, which is what buys near-linear fork throughput.
type forkShard struct {
	mu          sync.Mutex
	readyHead   *bin
	readyTail   *bin
	binsUsed    int
	pending     int
	totalForked uint64
	freeBins    *bin
	freeGroups  *group
	// grew marks that a bin was allocated since the last tour build.
	grew bool
	// Pad shards apart so neighbouring stripes' hot counters do not
	// false-share a cache line — the same effect striping is for.
	_ [64]byte
}

// forkSharded is Fork's ParallelFork path: all mutation happens under the
// lock of the stripe owning the bin's hash cell.
func (s *Scheduler) forkSharded(key binKey, rec threadRec) {
	idx := s.cellIndex(key)
	sh := &s.shards[idx&s.shardMask]
	sh.mu.Lock()
	b := s.lookupBinSharded(sh, idx, key)
	g := b.tail
	if g == nil || len(g.recs) == cap(g.recs) {
		g = sh.newGroup(s.cfg.GroupSize)
		if b.tail == nil {
			b.groups = g
		} else {
			b.tail.next = g
		}
		b.tail = g
	}
	g.recs = append(g.recs, rec)
	b.threads++
	sh.pending++
	sh.totalForked++
	sh.mu.Unlock()
}

// lookupBinSharded finds or creates the bin for key in cell idx. The
// caller holds sh.mu, and sh owns cell idx.
func (s *Scheduler) lookupBinSharded(sh *forkShard, idx uint64, key binKey) *bin {
	for b := s.table[idx]; b != nil; b = b.hashNext {
		if b.key == key {
			return b
		}
	}
	b := sh.newBin(key)
	b.hashNext = s.table[idx]
	s.table[idx] = b
	if sh.readyTail == nil {
		sh.readyHead = b
	} else {
		sh.readyTail.readyNext = b
	}
	sh.readyTail = b
	sh.binsUsed++
	sh.grew = true
	return b
}

func (sh *forkShard) newBin(key binKey) *bin {
	b := sh.freeBins
	if b != nil {
		sh.freeBins = b.hashNext
		*b = bin{key: key}
		return b
	}
	return &bin{key: key}
}

func (sh *forkShard) newGroup(size int) *group {
	g := sh.freeGroups
	if g != nil {
		sh.freeGroups = g.next
		g.next = nil
		g.recs = g.recs[:0]
		return g
	}
	return &group{recs: make([]threadRec, 0, size)}
}

// release recycles the shard's bins and groups into its free lists. The
// caller holds sh.mu; the lifetime totalForked counter is preserved.
func (sh *forkShard) release() {
	for b := sh.readyHead; b != nil; {
		nextBin := b.readyNext
		for g := b.groups; g != nil; {
			nextGroup := g.next
			g.next = sh.freeGroups
			sh.freeGroups = g
			g = nextGroup
		}
		b.groups, b.tail = nil, nil
		b.readyNext = nil
		b.hashNext = sh.freeBins
		sh.freeBins = b
		b = nextBin
	}
	sh.readyHead, sh.readyTail = nil, nil
	sh.binsUsed = 0
	sh.pending = 0
	sh.grew = false
}

// pendingCount sums the pending threads across stripes (or returns the
// serial counter). Safe to call concurrently with Fork under ParallelFork.
func (s *Scheduler) pendingCount() int {
	if s.shards == nil {
		return s.pending
	}
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.pending
		sh.mu.Unlock()
	}
	return n
}

// binsCount sums the allocated bins across stripes (or returns the serial
// counter).
func (s *Scheduler) binsCount() int {
	if s.shards == nil {
		return s.binsUsed
	}
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.binsUsed
		sh.mu.Unlock()
	}
	return n
}

// forkedCount is the lifetime forked-thread total: the scheduler-level
// counter plus whatever the current stripes have accumulated.
func (s *Scheduler) forkedCount() uint64 {
	n := s.totalForked
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.totalForked
		sh.mu.Unlock()
	}
	return n
}
