package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// The tests in this file are the package's concurrency contract, written
// to be run under -race (the Makefile's tier-1 gate does so): concurrent
// Fork requires ParallelFork, parallel Run requires Workers > 1, and the
// one overlap no mode permits — Fork during Run — panics deterministically.

// TestConcurrentForkAllThreadsRun forks from many goroutines into
// overlapping hint ranges, with concurrent Stats/Pending readers (allowed
// under ParallelFork), then verifies nothing was lost or duplicated.
func TestConcurrentForkAllThreadsRun(t *testing.T) {
	const (
		goroutines = 8
		perG       = 2000
	)
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 12, ParallelFork: true})
	counts := make([]int32, goroutines*perG)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // reader exercising the stripe-locked aggregates
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Pending()
				_ = s.Stats()
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				id := g*perG + j
				// Overlapping blocks across goroutines: stripe contention
				// and shared bins are the point.
				s.Fork(func(a1, _ int) { atomic.AddInt32(&counts[a1], 1) }, id, 0,
					uint64(j%64)<<12, uint64(g)<<12, 0)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	if got := s.Pending(); got != goroutines*perG {
		t.Fatalf("Pending = %d, want %d", got, goroutines*perG)
	}
	st := s.Stats()
	if st.TotalForked != goroutines*perG {
		t.Fatalf("TotalForked = %d, want %d", st.TotalForked, goroutines*perG)
	}
	s.Run(false)
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("thread %d ran %d times", id, c)
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending after run = %d", s.Pending())
	}
}

// TestShardedForkMatchesSerialBinning drives the sharded path from one
// goroutine with the exact fork sequence of the serial path and checks
// the bin structure is identical (the sharding must not change *what* is
// built, only who may build it).
func TestShardedForkMatchesSerialBinning(t *testing.T) {
	fork := func(s *Scheduler) {
		for j := 0; j < 3000; j++ {
			s.Fork(func(int, int) {}, j, 0,
				uint64(j%17)<<14, uint64(j%5)<<14, uint64(j%3)<<14)
		}
	}
	serial := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 14})
	sharded := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 14, ParallelFork: true})
	fork(serial)
	fork(sharded)
	ss, ps := serial.Stats(), sharded.Stats()
	if ss.BinsUsed != ps.BinsUsed || ss.Pending != ps.Pending ||
		ss.MinPerBin != ps.MinPerBin || ss.MaxPerBin != ps.MaxPerBin {
		t.Fatalf("serial stats %+v != sharded stats %+v", ss, ps)
	}
	// Per-bin occupancy must match as a multiset (ready-list order may
	// differ: stripes keep their own allocation-order lists).
	so, po := serial.BinOccupancy(), sharded.BinOccupancy()
	hist := make(map[int]int)
	for _, n := range so {
		hist[n]++
	}
	for _, n := range po {
		hist[n]--
	}
	for n, d := range hist {
		if d != 0 {
			t.Fatalf("occupancy multiset differs at count %d (delta %d)", n, d)
		}
	}
}

// TestParallelRunWorkerCounts runs both dispatch policies at worker
// counts {2, 4, NumCPU} and checks every thread runs exactly once.
func TestParallelRunWorkerCounts(t *testing.T) {
	workerCounts := []int{2, 4, runtime.NumCPU()}
	for _, w := range workerCounts {
		for _, d := range []Dispatch{DispatchSegmented, DispatchAtomic} {
			s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 13, Workers: w, Dispatch: d})
			const n = 4000
			counts := make([]int32, n)
			for i := 0; i < n; i++ {
				// Skewed bin sizes: low blocks get the bulk of the
				// threads, exercising weighted partitioning and stealing.
				s.Fork(func(a1, _ int) { atomic.AddInt32(&counts[a1], 1) }, i, 0,
					uint64(i%(8+i%29))<<13, 0, 0)
			}
			s.Run(false)
			s.Close()
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d dispatch=%v: thread %d ran %d times", w, d, i, c)
				}
			}
		}
	}
}

// TestSegmentedRunKeepsBinsOnOneWorker has every thread append to its
// bin's slice without synchronization. One bin always executes entirely
// on one worker, so this is race-free — and the race detector, not just
// the count check, enforces it.
func TestSegmentedRunKeepsBinsOnOneWorker(t *testing.T) {
	const bins = 37
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 12, Workers: 4})
	perBin := make([][]int, bins)
	total := 0
	for j := 0; j < 50; j++ {
		for b := 0; b < bins; b++ {
			b := b
			s.Fork(func(a1, _ int) { perBin[b] = append(perBin[b], a1) }, j, 0,
				uint64(b)<<12, 0, 0)
			total++
		}
	}
	s.Run(false)
	s.Close()
	got := 0
	for b := range perBin {
		got += len(perBin[b])
		// Within a bin, fork order is preserved (group FIFO on one worker).
		for i := 1; i < len(perBin[b]); i++ {
			if perBin[b][i] < perBin[b][i-1] {
				t.Fatalf("bin %d ran out of fork order: %v", b, perBin[b])
			}
		}
	}
	if got != total {
		t.Fatalf("ran %d threads, want %d", got, total)
	}
}

// TestParallelForkThenParallelRun is the full pipeline: concurrent fork
// into a sharded table, then a segmented parallel run, repeated so free
// lists and the worker pool recycle.
func TestParallelForkThenParallelRun(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 12, ParallelFork: true, Workers: 4})
	defer s.Close()
	for round := 0; round < 3; round++ {
		const goroutines, perG = 4, 1000
		var ran atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for j := 0; j < perG; j++ {
					s.Fork(func(int, int) { ran.Add(1) }, j, g,
						uint64(j%50)<<12, uint64(g%2)<<12, 0)
				}
			}(g)
		}
		wg.Wait() // forkers must synchronize with Run; see the contract
		s.Run(false)
		if got := ran.Load(); got != goroutines*perG {
			t.Fatalf("round %d: ran %d, want %d", round, got, goroutines*perG)
		}
	}
}

// TestForkDuringRunPanics documents the contract's one hard prohibition:
// Fork must never overlap Run, in any mode — ParallelFork widens Fork
// against Fork, never Fork against Run. The scheduler detects the misuse
// and panics rather than corrupting the bin structures.
func TestForkDuringRunPanics(t *testing.T) {
	for _, parallelFork := range []bool{false, true} {
		s := New(Config{CacheSize: 1 << 20, ParallelFork: parallelFork})
		s.Fork(func(int, int) {
			// A thread body forking into its own scheduler mid-run.
			s.Fork(func(int, int) {}, 0, 0, 0, 0, 0)
		}, 0, 0, 0, 0, 0)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ParallelFork=%v: Fork during Run did not panic", parallelFork)
				}
			}()
			s.Run(false)
		}()
		// The guard must reset even on the panic path: a fresh cycle works.
		ran := false
		s.Init(0, 0)
		s.Fork(func(int, int) { ran = true }, 0, 0, 0, 0, 0)
		s.Run(false)
		if !ran {
			t.Fatalf("ParallelFork=%v: scheduler unusable after recovered misuse", parallelFork)
		}
	}
}

// TestKeepReRunsSharded exercises keep semantics and lifetime counters on
// the sharded path (Init folding stripe counters, release preserving
// them).
func TestKeepReRunsSharded(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 14, ParallelFork: true})
	runs := 0
	s.Fork(func(int, int) { runs++ }, 0, 0, 0, 0, 0)
	s.Run(true)
	s.Run(true)
	s.Run(false)
	if runs != 3 {
		t.Fatalf("thread ran %d times under keep, want 3", runs)
	}
	st := s.Stats()
	if st.TotalForked != 1 || st.TotalRun != 3 || st.Runs != 3 {
		t.Errorf("stats = %+v", st)
	}
	s.Init(0, 0) // must preserve the lifetime fork count
	if got := s.Stats().TotalForked; got != 1 {
		t.Errorf("TotalForked after Init = %d, want 1", got)
	}
}

// TestCloseReleasesAndRecreatesPool checks Close is idempotent and that a
// later parallel Run transparently rebuilds the worker pool.
func TestCloseReleasesAndRecreatesPool(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 12, Workers: 4})
	run := func() {
		var n atomic.Int64
		for i := 0; i < 256; i++ {
			s.Fork(func(int, int) { n.Add(1) }, i, 0, uint64(i%16)<<12, 0, 0)
		}
		s.Run(false)
		if n.Load() != 256 {
			t.Fatalf("ran %d threads, want 256", n.Load())
		}
	}
	run()
	s.Close()
	s.Close() // idempotent
	run()     // pool recreated on demand
	s.Close()
}

// TestPersistentPoolReuse verifies that repeated parallel runs do not
// accumulate goroutines: after the first Run, the pool is warm and the
// steady-state goroutine count stays flat.
func TestPersistentPoolReuse(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 12, Workers: 4})
	defer s.Close()
	for i := 0; i < 64; i++ {
		s.Fork(func(int, int) {}, i, 0, uint64(i%16)<<12, 0, 0)
	}
	s.Run(true) // warm the pool
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		s.Run(true)
	}
	after := runtime.NumGoroutine()
	if after > before+2 { // tolerate unrelated runtime goroutines
		t.Fatalf("goroutines grew across keep re-runs: %d -> %d", before, after)
	}
	s.Run(false)
}
