package core

import "testing"

func TestRunEachHookSequence(t *testing.T) {
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 12})
	var order []int
	for b := 0; b < 4; b++ {
		for j := 0; j < 3; j++ {
			b := b
			s.Fork(func(int, int) { order = append(order, b) }, 0, 0, uint64(b)<<12, 0, 0)
		}
	}
	var hooks []int
	var hookThreads []int
	s.RunEach(false, func(bin, threads int) {
		hooks = append(hooks, bin)
		hookThreads = append(hookThreads, threads)
	})
	if len(hooks) != 4 {
		t.Fatalf("hook called %d times, want 4", len(hooks))
	}
	for i, h := range hooks {
		if h != i {
			t.Fatalf("hook bin indices %v, want ascending", hooks)
		}
		if hookThreads[i] != 3 {
			t.Fatalf("hook thread counts %v, want all 3", hookThreads)
		}
	}
	if len(order) != 12 {
		t.Fatalf("ran %d threads", len(order))
	}
	if s.Pending() != 0 {
		t.Fatal("RunEach(false) did not release")
	}
	rs := s.LastRun()
	if rs.Bins != 4 || rs.Threads != 12 || rs.MinPerBin != 3 || rs.MaxPerBin != 3 {
		t.Fatalf("LastRun = %+v", rs)
	}
}

func TestRunEachKeepAndNilHook(t *testing.T) {
	s := New(Config{})
	ran := 0
	s.Fork(func(int, int) { ran++ }, 0, 0, 0, 0, 0)
	s.RunEach(true, nil)
	s.RunEach(false, nil)
	if ran != 2 {
		t.Fatalf("ran %d times, want 2", ran)
	}
}

func TestRunEachIgnoresWorkers(t *testing.T) {
	// RunEach must be sequential even when Workers is configured, so
	// per-bin processor switching stays deterministic.
	s := New(Config{CacheSize: 1 << 20, BlockSize: 1 << 12, Workers: 8})
	var order []int
	for b := 0; b < 8; b++ {
		b := b
		s.Fork(func(int, int) { order = append(order, b) }, 0, 0, uint64(b)<<12, 0, 0)
	}
	s.RunEach(false, nil) // appends to a shared slice: only safe sequentially
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v not sequential", order)
		}
	}
}

func TestDepSchedulerAccessors(t *testing.T) {
	d := NewDep(Config{CacheSize: 1 << 20, BlockSize: 1 << 14})
	if d.BlockSize() != 1<<14 {
		t.Fatalf("BlockSize = %d", d.BlockSize())
	}
	d.Fork(func(int, int) {}, 0, 0, 0, 0, 0)
	d.Fork(func(int, int) {}, 0, 0, 1<<14, 0, 0)
	if d.BinsUsed() != 2 {
		t.Fatalf("BinsUsed = %d", d.BinsUsed())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerCacheSizeAccessor(t *testing.T) {
	s := New(Config{CacheSize: 3 << 20})
	if s.CacheSize() != 3<<20 {
		t.Fatalf("CacheSize = %d", s.CacheSize())
	}
}

func TestFloorPow2(t *testing.T) {
	cases := map[uint64]uint64{0: 0, 1: 1, 2: 2, 3: 2, 1023: 512, 1024: 1024}
	for in, want := range cases {
		if got := floorPow2(in); got != want {
			t.Errorf("floorPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
