package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"threadsched/internal/obs"
)

// DepScheduler extends the thread package with dependence constraints —
// the capability §6 lists as an open problem: "it would not be convenient
// to program algorithms that have complex dependencies. Methods to
// specify dependencies and ways to implement them efficiently remain to
// be demonstrated."
//
// A thread may name previously forked threads it must run after. Run
// executes a locality-greedy topological order: bins are visited in the
// usual ready-list order and every runnable (dependence-satisfied) thread
// of a bin executes before the scheduler moves on; threads whose
// predecessors are still pending stay queued and their bin is revisited.
// Independent threads therefore keep the paper's bin clustering, and
// dependent ones are delayed exactly as long as the DAG requires.
//
// With Config.Workers > 1, Run instead drains the DAG in waves: each wave
// gathers every currently runnable thread, partitions them by bin into
// contiguous weighted segments (PartitionWeights, so each worker walks
// neighbouring bins just like the parallel Scheduler tour), and executes
// the wave on the persistent worker pool. Threads with no dependence path
// between them may then run concurrently — callers must ensure the
// dependence edges cover every conflicting access, which is exactly what
// the wavefront variants (sor.ThreadedExact, pde.ThreadedExact) encode.
// Fork remains single-goroutine either way.
type DepScheduler struct {
	sched *Scheduler // reuses binning via an internal fork of metadata

	blockShift uint
	fold       bool
	workers    int

	// met records the wavefront metrics (dep.waves, dep.frontier,
	// dep.wave_ns); disabled when the Config carried no Obs.
	met depObs

	threads []depThread
	bins    []*depBin
	binIdx  map[binKey]int
	pending int
}

// ThreadID names a forked thread within one DepScheduler run.
type ThreadID int

type depThread struct {
	fn         Func
	arg1, arg2 int
	bin        int
	// waits is the number of unfinished predecessors (-1 marks an invalid
	// dependence). Parallel waves decrement it atomically; every read
	// happens after the wave barrier, so plain loads elsewhere are safe.
	waits int32
	// dependents are thread IDs to notify on completion.
	dependents []ThreadID
	done       bool
}

type depBin struct {
	key     binKey
	queue   []ThreadID // forked order
	next    int        // first unexecuted index
	blocked int        // queued threads currently waiting on predecessors
}

// ErrDependencyCycle reports that Run found threads that can never become
// runnable.
var ErrDependencyCycle = errors.New("core: dependency cycle among threads")

// NewDep returns a dependence-aware scheduler configured like New.
// Config.Workers > 1 selects the parallel wavefront executor.
func NewDep(cfg Config) *DepScheduler {
	s := New(cfg)
	return &DepScheduler{
		sched:      s,
		blockShift: s.blockShift,
		fold:       cfg.FoldSymmetric,
		workers:    cfg.Workers,
		met:        newDepObs(cfg.Obs),
		binIdx:     make(map[binKey]int),
	}
}

// Workers returns the configured wave-executor worker count; values below
// two mean Run drains bins serially.
func (d *DepScheduler) Workers() int { return d.workers }

// Close releases the worker goroutines a parallel Run left parked; see
// Scheduler.Close.
func (d *DepScheduler) Close() { d.sched.Close() }

// Snapshot merges the attached observability registry (wave counts,
// frontier sizes, wave times plus the shared worker metrics); the zero
// Snapshot without Config.Obs. See Scheduler.Snapshot.
func (d *DepScheduler) Snapshot() obs.Snapshot { return d.sched.Snapshot() }

// BlockSize returns the per-dimension block size in effect.
func (d *DepScheduler) BlockSize() uint64 { return d.sched.BlockSize() }

// Pending returns the number of threads forked but not run.
func (d *DepScheduler) Pending() int { return d.pending }

// BinsUsed returns the number of bins holding threads.
func (d *DepScheduler) BinsUsed() int { return len(d.bins) }

// Fork schedules f(arg1, arg2) with the usual address hints, to run only
// after every thread in deps has completed. It returns the new thread's
// ID. Unknown (future) IDs in deps are an error at Run time; IDs from a
// previous Run are invalid.
func (d *DepScheduler) Fork(f Func, arg1, arg2 int, h1, h2, h3 uint64, deps ...ThreadID) ThreadID {
	key := binKey{h1 >> d.blockShift, h2 >> d.blockShift, h3 >> d.blockShift}
	if d.fold {
		sortKey(&key)
	}
	bi, ok := d.binIdx[key]
	if !ok {
		bi = len(d.bins)
		d.binIdx[key] = bi
		d.bins = append(d.bins, &depBin{key: key})
	}
	id := ThreadID(len(d.threads))
	t := depThread{fn: f, arg1: arg1, arg2: arg2, bin: bi}
	for _, dep := range deps {
		if dep < 0 || int(dep) >= len(d.threads) {
			// Defer the error to Run by marking an impossible wait; a
			// panic here would be hostile in library code.
			t.waits = -1
			break
		}
		if !d.threads[dep].done {
			t.waits++
			d.threads[dep].dependents = append(d.threads[dep].dependents, id)
		}
	}
	d.threads = append(d.threads, t)
	d.bins[bi].queue = append(d.bins[bi].queue, id)
	if t.waits != 0 {
		d.bins[bi].blocked++
	}
	d.pending++
	return id
}

// Run executes all threads in a locality-greedy topological order,
// destroying the schedule. It fails (leaving unexecuted threads
// unexecuted) if dependencies are invalid or cyclic. With Workers > 1
// each wave of runnable threads executes concurrently on the worker pool.
func (d *DepScheduler) Run() error {
	defer d.reset()
	for _, t := range d.threads {
		if t.waits < 0 {
			return fmt.Errorf("core: thread depends on an unknown thread ID")
		}
	}
	if d.workers > 1 {
		return d.runWaves()
	}
	remaining := d.pending
	for remaining > 0 {
		ranThisRound := 0
		for _, b := range d.bins {
			ranThisRound += d.drainBin(b)
		}
		if ranThisRound == 0 {
			return ErrDependencyCycle
		}
		remaining -= ranThisRound
	}
	return nil
}

// runWaves is the parallel executor: repeatedly collect the runnable
// frontier (per bin, in forked order), cut it into contiguous weighted
// bin segments, and execute one segment per worker. The barrier between
// waves is what lets dependents observe completed predecessors without
// per-thread synchronization; within a wave only threads with no
// dependence path between them run, and they are at least two bins apart
// in the wavefront codes, so per-worker bin runs keep the paper's
// clustering.
func (d *DepScheduler) runWaves() error {
	var (
		ids     [][]ThreadID
		weights []int
	)
	for d.pending > 0 {
		ids, weights = ids[:0], weights[:0]
		total := 0
		for _, b := range d.bins {
			var runnable []ThreadID
			for i := b.next; i < len(b.queue); i++ {
				id := b.queue[i]
				t := &d.threads[id]
				if t.done {
					if i == b.next {
						b.next++
					}
					continue
				}
				if t.waits > 0 {
					continue
				}
				runnable = append(runnable, id)
			}
			if len(runnable) > 0 {
				ids = append(ids, runnable)
				weights = append(weights, len(runnable))
				total += len(runnable)
			}
		}
		if total == 0 {
			return ErrDependencyCycle
		}
		d.met.waves.Inc(0)
		d.met.frontier.Observe(0, uint64(total))
		var start time.Time
		if d.met.o != nil {
			start = time.Now()
		}
		d.executeWave(ids, weights)
		if d.met.o != nil {
			d.met.waveNS.Observe(0, uint64(time.Since(start)))
		}
		d.pending -= total
	}
	return nil
}

// executeWave runs the collected frontier on the worker pool, one
// contiguous run of bins per worker.
func (d *DepScheduler) executeWave(ids [][]ThreadID, weights []int) {
	starts := PartitionWeights(weights, d.workers)
	d.sched.fanOut(len(starts), "wave", func(self int) {
		sp := d.sched.met.span(self, "wave")
		defer sp.End()
		hi := len(ids)
		if self+1 < len(starts) {
			hi = starts[self+1]
		}
		for bi := starts[self]; bi < hi; bi++ {
			for _, id := range ids[bi] {
				t := &d.threads[id]
				t.fn(t.arg1, t.arg2)
				t.done = true
				for _, dep := range t.dependents {
					atomic.AddInt32(&d.threads[dep].waits, -1)
				}
			}
		}
	})
}

// drainBin runs every currently runnable thread of the bin, in forked
// order, including threads unblocked by work done within this drain.
func (d *DepScheduler) drainBin(b *depBin) int {
	ran := 0
	for {
		progressed := false
		// Advance the frontier past executed threads and run runnable
		// ones at the frontier; scan the tail for runnable stragglers.
		for i := b.next; i < len(b.queue); i++ {
			id := b.queue[i]
			t := &d.threads[id]
			if t.done {
				if i == b.next {
					b.next++
				}
				continue
			}
			if t.waits > 0 {
				continue
			}
			d.execute(id)
			ran++
			progressed = true
			if i == b.next {
				b.next++
			}
		}
		if !progressed {
			return ran
		}
	}
}

// execute runs one thread and notifies dependents.
func (d *DepScheduler) execute(id ThreadID) {
	t := &d.threads[id]
	t.fn(t.arg1, t.arg2)
	t.done = true
	d.pending--
	for _, dep := range t.dependents {
		d.threads[dep].waits--
	}
}

// reset discards all thread state; IDs from before are invalid.
func (d *DepScheduler) reset() {
	d.threads = d.threads[:0]
	d.bins = d.bins[:0]
	d.binIdx = make(map[binKey]int)
	d.pending = 0
}
