package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync/atomic"
	"time"

	"threadsched/internal/obs"
)

// DepScheduler extends the thread package with dependence constraints —
// the capability §6 lists as an open problem: "it would not be convenient
// to program algorithms that have complex dependencies. Methods to
// specify dependencies and ways to implement them efficiently remain to
// be demonstrated."
//
// A thread may name previously forked threads it must run after. Run
// executes a locality-greedy topological order: bins are visited in the
// usual ready-list order and every runnable (dependence-satisfied) thread
// of a bin executes before the scheduler moves on; threads whose
// predecessors are still pending stay queued and their bin is revisited.
// Independent threads therefore keep the paper's bin clustering, and
// dependent ones are delayed exactly as long as the DAG requires.
//
// With Config.Workers > 1, Run instead drains the DAG in waves: each wave
// gathers every currently runnable thread, partitions them by bin into
// contiguous weighted segments (PartitionWeights, so each worker walks
// neighbouring bins just like the parallel Scheduler tour), and executes
// the wave on the persistent worker pool. Threads with no dependence path
// between them may then run concurrently — callers must ensure the
// dependence edges cover every conflicting access, which is exactly what
// the wavefront variants (sor.ThreadedExact, pde.ThreadedExact) encode.
// Fork remains single-goroutine either way.
//
// Config.CriticalPathFirst additionally orders execution by downstream
// slack: each thread's longest remaining dependence path is computed once
// per DAG, the serial executor visits bins holding the tallest chains
// first each round, and the wave executor drains each frontier
// tallest-first — so chains retire ahead of leaves and late waves are
// less likely to serialize on one straggler chain. Config.Topology
// routes the wave partition through the same hierarchical bin tree the
// parallel Scheduler uses (see tree.go).
type DepScheduler struct {
	sched *Scheduler // reuses binning via an internal fork of metadata

	blockShift uint
	fold       bool
	workers    int

	// topo and binBytes route parallel waves through the hierarchical bin
	// tree when Config.Topology is set; nil keeps the flat wave partition.
	topo     *Topology
	binBytes uint64

	// critical enables Config.CriticalPathFirst: heights[id] is the
	// longest dependence path below thread id (its downstream slack),
	// computed once per DAG, and frontiers drain tallest-first.
	critical bool
	heights  []int32

	// met records the wavefront metrics (dep.waves, dep.frontier,
	// dep.wave_ns); disabled when the Config carried no Obs.
	met depObs

	threads []depThread
	bins    []*depBin
	binIdx  map[binKey]int
	pending int

	// Wavefront scratch, reused across waves (and runs) so frontier
	// collection allocates nothing in steady state: frontier is the flat
	// runnable-thread buffer each wave's spans slice into, and active is
	// the compacted list of bin indexes still holding unexecuted threads.
	frontier []ThreadID
	active   []int
}

// waveSpan is one bin's slice of a wave frontier: frontier[start:end]
// holds the bin's runnable threads, bin names the depBin for post-wave
// accounting.
type waveSpan struct {
	start, end, bin int
}

// ThreadID names a forked thread within one DepScheduler run.
type ThreadID int

type depThread struct {
	fn         Func
	arg1, arg2 int
	bin        int
	// waits is the number of unfinished predecessors (-1 marks an invalid
	// dependence). Parallel waves decrement it atomically; every read
	// happens after the wave barrier, so plain loads elsewhere are safe.
	waits int32
	// badDep is the offending dependence when waits is -1, surfaced by
	// Run in the UnknownDependencyError.
	badDep ThreadID
	// dependents are thread IDs to notify on completion.
	dependents []ThreadID
	done       bool
}

type depBin struct {
	key   binKey
	queue []ThreadID // forked order
	next  int        // first unexecuted index
	pend  int        // queued threads not yet executed
}

// ErrDependencyCycle reports that Run found threads that can never become
// runnable. Run returns it wrapped in a *DependencyCycleError naming the
// stuck threads; match with errors.Is.
var ErrDependencyCycle = errors.New("core: dependency cycle among threads")

// ErrUnknownDependency reports a Fork whose deps named a thread ID that
// was never forked (forward references and IDs from a previous Run are
// invalid). Run returns it wrapped in an *UnknownDependencyError naming
// the offending thread and dependence; match with errors.Is.
var ErrUnknownDependency = errors.New("core: thread depends on an unknown thread ID")

// DependencyCycleError is the diagnosable form of ErrDependencyCycle:
// when Run stops making progress, the threads left over — the residue of
// the implicit Kahn topological sort Run performs — must contain a cycle,
// and one is extracted by walking waits-on edges through the residue
// until a thread repeats.
type DependencyCycleError struct {
	// Cycle is one dependency cycle among the stuck threads: Cycle[i]
	// waits on Cycle[i+1], and the last element waits on the first.
	Cycle []ThreadID
	// Stuck is the total number of threads left unexecutable — the whole
	// Kahn residue, of which Cycle is one witness loop.
	Stuck int
}

// Error names the cycle's thread IDs.
func (e *DependencyCycleError) Error() string {
	if len(e.Cycle) == 0 {
		return fmt.Sprintf("%v (%d threads stuck)", ErrDependencyCycle, e.Stuck)
	}
	ids := make([]byte, 0, 8*len(e.Cycle))
	for _, id := range e.Cycle {
		if len(ids) > 0 {
			ids = append(ids, " -> "...)
		}
		ids = fmt.Appendf(ids, "%d", id)
	}
	return fmt.Sprintf("%v: %s -> %d (%d threads stuck)",
		ErrDependencyCycle, ids, e.Cycle[0], e.Stuck)
}

// Unwrap matches errors.Is(err, ErrDependencyCycle).
func (e *DependencyCycleError) Unwrap() error { return ErrDependencyCycle }

// UnknownDependencyError is the diagnosable form of ErrUnknownDependency,
// naming the first thread forked with an invalid dependence.
type UnknownDependencyError struct {
	// Thread is the thread that was forked with the bad dependence.
	Thread ThreadID
	// Dep is the dependence that named no forked thread.
	Dep ThreadID
}

// Error names the offending thread and dependence.
func (e *UnknownDependencyError) Error() string {
	return fmt.Sprintf("%v: thread %d depends on %d, which was not forked before it "+
		"(IDs are valid only for threads already forked in this Run cycle)",
		ErrUnknownDependency, e.Thread, e.Dep)
}

// Unwrap matches errors.Is(err, ErrUnknownDependency).
func (e *UnknownDependencyError) Unwrap() error { return ErrUnknownDependency }

// NewDep returns a dependence-aware scheduler configured like New.
// Config.Workers > 1 selects the parallel wavefront executor.
func NewDep(cfg Config) *DepScheduler {
	s := New(cfg)
	return &DepScheduler{
		sched:      s,
		blockShift: s.blockShift,
		fold:       cfg.FoldSymmetric,
		workers:    cfg.Workers,
		topo:       s.cfg.Topology,
		binBytes:   s.binFootprint(),
		critical:   cfg.CriticalPathFirst,
		met:        newDepObs(cfg.Obs),
		binIdx:     make(map[binKey]int),
	}
}

// Workers returns the configured wave-executor worker count; values below
// two mean Run drains bins serially.
func (d *DepScheduler) Workers() int { return d.workers }

// Close releases the worker goroutines a parallel Run left parked; see
// Scheduler.Close.
func (d *DepScheduler) Close() { d.sched.Close() }

// Snapshot merges the attached observability registry (wave counts,
// frontier sizes, wave times plus the shared worker metrics); the zero
// Snapshot without Config.Obs. See Scheduler.Snapshot.
func (d *DepScheduler) Snapshot() obs.Snapshot { return d.sched.Snapshot() }

// BlockSize returns the per-dimension block size in effect.
func (d *DepScheduler) BlockSize() uint64 { return d.sched.BlockSize() }

// Pending returns the number of threads forked but not run.
func (d *DepScheduler) Pending() int { return d.pending }

// BinsUsed returns the number of bins holding threads.
func (d *DepScheduler) BinsUsed() int { return len(d.bins) }

// Fork schedules f(arg1, arg2) with the usual address hints, to run only
// after every thread in deps has completed. It returns the new thread's
// ID. Unknown (future) IDs in deps are an error at Run time; IDs from a
// previous Run are invalid.
//
// Like Scheduler.Fork, it must never overlap a Run in progress — Fork is
// single-goroutine and the fork phase must complete before Run starts —
// and panics if it detects that misuse.
func (d *DepScheduler) Fork(f Func, arg1, arg2 int, h1, h2, h3 uint64, deps ...ThreadID) ThreadID {
	if d.sched.running.Load() {
		panic("core: Fork called during Run; fork and run phases must not overlap " +
			"(DepScheduler.Fork is single-goroutine and must complete before Run starts)")
	}
	key := binKey{h1 >> d.blockShift, h2 >> d.blockShift, h3 >> d.blockShift}
	if d.fold {
		sortKey(&key)
	}
	bi, ok := d.binIdx[key]
	if !ok {
		bi = len(d.bins)
		d.binIdx[key] = bi
		d.bins = append(d.bins, &depBin{key: key})
	}
	id := ThreadID(len(d.threads))
	t := depThread{fn: f, arg1: arg1, arg2: arg2, bin: bi}
	for _, dep := range deps {
		if dep < 0 || int(dep) >= len(d.threads) {
			// Defer the error to Run by marking an impossible wait; a
			// panic here would be hostile in library code.
			t.waits = -1
			t.badDep = dep
			break
		}
		if !d.threads[dep].done {
			t.waits++
			d.threads[dep].dependents = append(d.threads[dep].dependents, id)
		}
	}
	d.threads = append(d.threads, t)
	d.bins[bi].queue = append(d.bins[bi].queue, id)
	d.bins[bi].pend++
	d.pending++
	return id
}

// Run executes all threads in a locality-greedy topological order,
// destroying the schedule. It fails (leaving unexecuted threads
// unexecuted) if dependencies are invalid or cyclic. With Workers > 1
// each wave of runnable threads executes concurrently on the worker pool.
//
// Run is RunContext without cancellation; a thread panic propagates as a
// panic (with a *ThreadPanicError value) exactly as it did before
// containment existed.
func (d *DepScheduler) Run() error {
	err := d.RunContext(context.Background())
	if p, ok := err.(*ThreadPanicError); ok {
		panic(p)
	}
	return err
}

// RunContext is Run with cooperative cancellation and fault containment.
// A thread panic is recovered, the run quiesces (parallel workers stop at
// their next bin boundary; no goroutines leak), and the first panic
// returns as a *ThreadPanicError. A done ctx stops the run at the next
// bin (serial) or wave (parallel) boundary and returns ctx.Err(). Invalid
// dependencies return an *UnknownDependencyError before any thread runs,
// and a run that stops making progress returns a *DependencyCycleError
// naming one witness cycle.
//
// On any outcome the schedule is destroyed: forked threads are discarded
// (executed or not) and the scheduler is immediately reusable for a fresh
// Fork/Run cycle.
func (d *DepScheduler) RunContext(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	defer d.reset()
	for id, t := range d.threads {
		if t.waits < 0 {
			return &UnknownDependencyError{Thread: ThreadID(id), Dep: t.badDep}
		}
	}
	d.sched.running.Store(true)
	defer d.sched.running.Store(false)
	if d.critical {
		d.computeHeights()
	}
	if d.workers > 1 {
		return d.runWaves(ctx)
	}
	binOrder := d.serialBinOrder()
	remaining := d.pending
	for remaining > 0 {
		ranThisRound := 0
		for i := range d.bins {
			bi := i
			if binOrder != nil {
				bi = binOrder[i]
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			ran, perr := d.drainBin(d.bins[bi], bi)
			ranThisRound += ran
			if perr != nil {
				return perr
			}
		}
		if ranThisRound == 0 {
			return d.cycleError()
		}
		remaining -= ranThisRound
	}
	// Cancellation wins even when it lands during the final drain, for
	// consistency with the wavefront path's post-wave control check.
	return ctx.Err()
}

// runWaves is the parallel executor: repeatedly collect the runnable
// frontier (per bin, in forked order), cut it into contiguous weighted
// bin segments, and execute one segment per worker. The barrier between
// waves is what lets dependents observe completed predecessors without
// per-thread synchronization; within a wave only threads with no
// dependence path between them run, and they are at least two bins apart
// in the wavefront codes, so per-worker bin runs keep the paper's
// clustering.
//
// Collection is amortized: runnable threads go into one flat reused
// buffer (d.frontier) described by per-bin spans rather than a fresh
// slice per bin per wave, and bins whose threads have all executed leave
// the scan via the compacted active list — a deep DAG over many bins
// pays per wave only for the bins still alive.
func (d *DepScheduler) runWaves(ctx context.Context) error {
	ctrl := newRunControl(ctx)
	d.active = d.active[:0]
	for i := range d.bins {
		d.active = append(d.active, i)
	}
	var (
		spans   []waveSpan
		weights []int
	)
	for d.pending > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		d.frontier = d.frontier[:0]
		spans, weights = spans[:0], weights[:0]
		total := 0
		for _, bi := range d.active {
			b := d.bins[bi]
			start := len(d.frontier)
			for i := b.next; i < len(b.queue); i++ {
				id := b.queue[i]
				t := &d.threads[id]
				if t.done {
					if i == b.next {
						b.next++
					}
					continue
				}
				if t.waits > 0 {
					continue
				}
				d.frontier = append(d.frontier, id)
			}
			if n := len(d.frontier) - start; n > 0 {
				if d.critical && n > 1 {
					// Tallest chains first within the bin; stable so ties
					// keep forked order.
					slot := d.frontier[start:]
					sort.SliceStable(slot, func(a, b int) bool {
						return d.heights[slot[a]] > d.heights[slot[b]]
					})
				}
				spans = append(spans, waveSpan{start: start, end: len(d.frontier), bin: bi})
				weights = append(weights, n)
				total += n
			}
		}
		if total == 0 {
			return d.cycleError()
		}
		if d.critical && len(spans) > 1 {
			// Bins carrying the tallest remaining chains drain first. This
			// trades some tour adjacency for chain progress, which is the
			// point of CriticalPathFirst; stable keeps tour order on ties.
			sort.Stable(&spanHeightSort{spans: spans, weights: weights, d: d})
		}
		d.met.waves.Inc(0)
		d.met.frontier.Observe(0, uint64(total))
		var start time.Time
		if d.met.o != nil {
			start = time.Now()
		}
		d.executeWave(spans, weights, ctrl)
		if d.met.o != nil {
			d.met.waveNS.Observe(0, uint64(time.Since(start)))
		}
		// The fanOut barrier inside executeWave ordered every record call
		// before this check, so a panic anywhere in the wave is visible.
		if err := ctrl.err(); err != nil {
			return err
		}
		// The wave completed: settle per-bin remaining counts serially and
		// drop exhausted bins from the next collection scan.
		for _, sp := range spans {
			d.bins[sp.bin].pend -= sp.end - sp.start
		}
		live := d.active[:0]
		for _, bi := range d.active {
			if d.bins[bi].pend > 0 {
				live = append(live, bi)
			}
		}
		d.active = live
		d.pending -= total
	}
	return ctx.Err() // cancellation wins even on a completed drain
}

// executeWave runs the collected frontier on the worker pool, one
// contiguous run of bins per worker. With a Topology the cut follows the
// hierarchical bin tree over the wave's spans (topoAssign), so worker
// clusters sharing a cache take adjacent runs of frontier bins, exactly
// as the parallel Scheduler tour does; otherwise it is the flat weighted
// partition. Workers slice the shared frontier buffer read-only through
// their spans and check the shared runControl between bins, so a panic on
// one worker (recovered into the control) or an expired ctx halts the
// wave at bin granularity; fanOut's barrier then guarantees quiescence
// before runWaves inspects the control.
func (d *DepScheduler) executeWave(spans []waveSpan, weights []int, ctrl *runControl) {
	var asn []segRange
	if d.topo != nil {
		asn = topoAssign(weights, d.workers, buildBinTree(len(spans), d.binBytes, d.topo))
	} else {
		asn = startsToRanges(PartitionWeights(weights, d.workers), len(spans))
	}
	d.sched.fanOut(len(asn), "wave", func(self int) {
		sp := d.sched.met.span(self, "wave")
		defer sp.End()
		for si := asn[self].lo; si < asn[self].hi; si++ {
			if ctrl.halted() {
				return
			}
			ws := spans[si]
			if perr := d.runWaveBin(d.frontier[ws.start:ws.end], ws.bin, self); perr != nil {
				ctrl.record(perr)
				return
			}
		}
	})
}

// spanHeightSort co-sorts a wave's spans and weights by each span's
// tallest thread height, descending. The spans' frontier slices were
// already sorted tallest-first, so frontier[start] carries the maximum.
type spanHeightSort struct {
	spans   []waveSpan
	weights []int
	d       *DepScheduler
}

func (s *spanHeightSort) Len() int { return len(s.spans) }

func (s *spanHeightSort) Less(i, j int) bool {
	return s.d.heights[s.d.frontier[s.spans[i].start]] > s.d.heights[s.d.frontier[s.spans[j].start]]
}

func (s *spanHeightSort) Swap(i, j int) {
	s.spans[i], s.spans[j] = s.spans[j], s.spans[i]
	s.weights[i], s.weights[j] = s.weights[j], s.weights[i]
}

// computeHeights fills heights[id] with the longest dependence path from
// thread id down through its dependents — the amount of serial work its
// completion unblocks. Dependence edges only point from lower to higher
// IDs (a dependence must name an already-forked thread), so one
// descending-ID pass settles every height.
func (d *DepScheduler) computeHeights() {
	n := len(d.threads)
	if cap(d.heights) < n {
		d.heights = make([]int32, n)
	} else {
		d.heights = d.heights[:n]
		for i := range d.heights {
			d.heights[i] = 0
		}
	}
	for id := n - 1; id >= 0; id-- {
		h := int32(0)
		for _, dep := range d.threads[id].dependents {
			if hh := d.heights[dep] + 1; hh > h {
				h = hh
			}
		}
		d.heights[id] = h
	}
}

// serialBinOrder is the bin visit order for the serial executor: nil (the
// identity, allocation order) normally; under CriticalPathFirst, bins
// sorted by their tallest thread's height descending, so every round of
// the scan reaches the bins holding the longest remaining chains first.
func (d *DepScheduler) serialBinOrder() []int {
	if !d.critical {
		return nil
	}
	maxH := make([]int32, len(d.bins))
	for bi, b := range d.bins {
		for _, id := range b.queue {
			if h := d.heights[id]; h > maxH[bi] {
				maxH[bi] = h
			}
		}
	}
	order := make([]int, len(d.bins))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return maxH[order[a]] > maxH[order[b]] })
	return order
}

// runWaveBin executes one wave bin's threads, recovering a thread panic
// into a *ThreadPanicError. Threads that completed before the panic have
// notified their dependents; the run is abandoned anyway, so the partial
// notifications are never observed past reset.
func (d *DepScheduler) runWaveBin(ids []ThreadID, binIdx, worker int) (perr *ThreadPanicError) {
	cur := ThreadID(-1)
	defer func() {
		if r := recover(); r != nil {
			perr = &ThreadPanicError{
				Value:  r,
				Phase:  "wave",
				Worker: worker,
				Bin:    binIdx,
				Thread: int(cur),
				Stack:  debug.Stack(),
			}
		}
	}()
	for _, id := range ids {
		cur = id
		t := &d.threads[id]
		t.fn(t.arg1, t.arg2)
		t.done = true
		for _, dep := range t.dependents {
			atomic.AddInt32(&d.threads[dep].waits, -1)
		}
	}
	return nil
}

// drainBin runs every currently runnable thread of the bin, in forked
// order, including threads unblocked by work done within this drain. A
// thread panic is recovered into a *ThreadPanicError identifying the
// thread; ran still counts the threads that completed before it.
func (d *DepScheduler) drainBin(b *depBin, binIdx int) (ran int, perr *ThreadPanicError) {
	cur := ThreadID(-1)
	defer func() {
		if r := recover(); r != nil {
			perr = &ThreadPanicError{
				Value:  r,
				Phase:  "dep-run",
				Worker: 0,
				Bin:    binIdx,
				Thread: int(cur),
				Stack:  debug.Stack(),
			}
		}
	}()
	for {
		progressed := false
		// Advance the frontier past executed threads and run runnable
		// ones at the frontier; scan the tail for runnable stragglers.
		for i := b.next; i < len(b.queue); i++ {
			id := b.queue[i]
			t := &d.threads[id]
			if t.done {
				if i == b.next {
					b.next++
				}
				continue
			}
			if t.waits > 0 {
				continue
			}
			cur = id
			d.execute(id)
			ran++
			progressed = true
			if i == b.next {
				b.next++
			}
		}
		if !progressed {
			return ran, nil
		}
	}
}

// execute runs one thread and notifies dependents.
func (d *DepScheduler) execute(id ThreadID) {
	t := &d.threads[id]
	t.fn(t.arg1, t.arg2)
	t.done = true
	d.pending--
	for _, dep := range t.dependents {
		d.threads[dep].waits--
	}
}

// cycleError builds the diagnosable cycle report once a run stops making
// progress. At that point no thread is runnable, so every unfinished
// thread has waits > 0 — the residue of the implicit Kahn sort — and each
// waits on at least one other residue member. Following those waits-on
// edges (recovered by inverting the dependents lists within the residue)
// must therefore revisit a thread, and the walked loop is the witness
// cycle.
func (d *DepScheduler) cycleError() *DependencyCycleError {
	var residue []ThreadID
	inResidue := make(map[ThreadID]bool)
	for id := range d.threads {
		t := &d.threads[id]
		if !t.done && t.waits > 0 {
			residue = append(residue, ThreadID(id))
			inResidue[ThreadID(id)] = true
		}
	}
	if len(residue) == 0 {
		return &DependencyCycleError{}
	}
	// pred[x] = one unfinished predecessor x waits on, from the inverted
	// dependents edges. Deterministic: threads are scanned in ID order.
	pred := make(map[ThreadID]ThreadID, len(residue))
	for _, id := range residue {
		for _, dep := range d.threads[id].dependents {
			if inResidue[dep] {
				pred[dep] = id
			}
		}
	}
	seen := make(map[ThreadID]int, len(residue))
	var path []ThreadID
	cur := residue[0]
	for {
		if i, ok := seen[cur]; ok {
			return &DependencyCycleError{
				Cycle: append([]ThreadID(nil), path[i:]...),
				Stuck: len(residue),
			}
		}
		seen[cur] = len(path)
		path = append(path, cur)
		next, ok := pred[cur]
		if !ok {
			// Unreachable when the residue invariant holds (every stuck
			// thread has a stuck predecessor); report the count alone
			// rather than panic inside error construction.
			return &DependencyCycleError{Stuck: len(residue)}
		}
		cur = next
	}
}

// reset discards all thread state; IDs from before are invalid. The
// wavefront scratch buffers keep their capacity for the next run.
func (d *DepScheduler) reset() {
	d.threads = d.threads[:0]
	d.bins = d.bins[:0]
	d.binIdx = make(map[binKey]int)
	d.pending = 0
	d.frontier = d.frontier[:0]
	d.active = d.active[:0]
}
