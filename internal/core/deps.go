package core

import (
	"errors"
	"fmt"
)

// DepScheduler extends the thread package with dependence constraints —
// the capability §6 lists as an open problem: "it would not be convenient
// to program algorithms that have complex dependencies. Methods to
// specify dependencies and ways to implement them efficiently remain to
// be demonstrated."
//
// A thread may name previously forked threads it must run after. Run
// executes a locality-greedy topological order: bins are visited in the
// usual ready-list order and every runnable (dependence-satisfied) thread
// of a bin executes before the scheduler moves on; threads whose
// predecessors are still pending stay queued and their bin is revisited.
// Independent threads therefore keep the paper's bin clustering, and
// dependent ones are delayed exactly as long as the DAG requires.
type DepScheduler struct {
	sched *Scheduler // reuses binning via an internal fork of metadata

	blockShift uint
	fold       bool

	threads []depThread
	bins    []*depBin
	binIdx  map[binKey]int
	pending int
}

// ThreadID names a forked thread within one DepScheduler run.
type ThreadID int

type depThread struct {
	fn         Func
	arg1, arg2 int
	bin        int
	// waits is the number of unfinished predecessors.
	waits int
	// dependents are thread IDs to notify on completion.
	dependents []ThreadID
	done       bool
}

type depBin struct {
	key     binKey
	queue   []ThreadID // forked order
	next    int        // first unexecuted index
	blocked int        // queued threads currently waiting on predecessors
}

// ErrDependencyCycle reports that Run found threads that can never become
// runnable.
var ErrDependencyCycle = errors.New("core: dependency cycle among threads")

// NewDep returns a dependence-aware scheduler configured like New.
func NewDep(cfg Config) *DepScheduler {
	s := New(cfg)
	return &DepScheduler{
		sched:      s,
		blockShift: s.blockShift,
		fold:       cfg.FoldSymmetric,
		binIdx:     make(map[binKey]int),
	}
}

// BlockSize returns the per-dimension block size in effect.
func (d *DepScheduler) BlockSize() uint64 { return d.sched.BlockSize() }

// Pending returns the number of threads forked but not run.
func (d *DepScheduler) Pending() int { return d.pending }

// BinsUsed returns the number of bins holding threads.
func (d *DepScheduler) BinsUsed() int { return len(d.bins) }

// Fork schedules f(arg1, arg2) with the usual address hints, to run only
// after every thread in deps has completed. It returns the new thread's
// ID. Unknown (future) IDs in deps are an error at Run time; IDs from a
// previous Run are invalid.
func (d *DepScheduler) Fork(f Func, arg1, arg2 int, h1, h2, h3 uint64, deps ...ThreadID) ThreadID {
	key := binKey{h1 >> d.blockShift, h2 >> d.blockShift, h3 >> d.blockShift}
	if d.fold {
		sortKey(&key)
	}
	bi, ok := d.binIdx[key]
	if !ok {
		bi = len(d.bins)
		d.binIdx[key] = bi
		d.bins = append(d.bins, &depBin{key: key})
	}
	id := ThreadID(len(d.threads))
	t := depThread{fn: f, arg1: arg1, arg2: arg2, bin: bi}
	for _, dep := range deps {
		if dep < 0 || int(dep) >= len(d.threads) {
			// Defer the error to Run by marking an impossible wait; a
			// panic here would be hostile in library code.
			t.waits = -1
			break
		}
		if !d.threads[dep].done {
			t.waits++
			d.threads[dep].dependents = append(d.threads[dep].dependents, id)
		}
	}
	d.threads = append(d.threads, t)
	d.bins[bi].queue = append(d.bins[bi].queue, id)
	if t.waits != 0 {
		d.bins[bi].blocked++
	}
	d.pending++
	return id
}

// Run executes all threads in a locality-greedy topological order,
// destroying the schedule. It fails (leaving unexecuted threads
// unexecuted) if dependencies are invalid or cyclic.
func (d *DepScheduler) Run() error {
	for _, t := range d.threads {
		if t.waits < 0 {
			d.reset()
			return fmt.Errorf("core: thread depends on an unknown thread ID")
		}
	}
	remaining := d.pending
	for remaining > 0 {
		ranThisRound := 0
		for _, b := range d.bins {
			ranThisRound += d.drainBin(b)
		}
		if ranThisRound == 0 {
			d.reset()
			return ErrDependencyCycle
		}
		remaining -= ranThisRound
	}
	d.reset()
	return nil
}

// drainBin runs every currently runnable thread of the bin, in forked
// order, including threads unblocked by work done within this drain.
func (d *DepScheduler) drainBin(b *depBin) int {
	ran := 0
	for {
		progressed := false
		// Advance the frontier past executed threads and run runnable
		// ones at the frontier; scan the tail for runnable stragglers.
		for i := b.next; i < len(b.queue); i++ {
			id := b.queue[i]
			t := &d.threads[id]
			if t.done {
				if i == b.next {
					b.next++
				}
				continue
			}
			if t.waits > 0 {
				continue
			}
			d.execute(id)
			ran++
			progressed = true
			if i == b.next {
				b.next++
			}
		}
		if !progressed {
			return ran
		}
	}
}

// execute runs one thread and notifies dependents.
func (d *DepScheduler) execute(id ThreadID) {
	t := &d.threads[id]
	t.fn(t.arg1, t.arg2)
	t.done = true
	d.pending--
	for _, dep := range t.dependents {
		d.threads[dep].waits--
	}
}

// reset discards all thread state; IDs from before are invalid.
func (d *DepScheduler) reset() {
	d.threads = d.threads[:0]
	d.bins = d.bins[:0]
	d.binIdx = make(map[binKey]int)
	d.pending = 0
}
