package core

import (
	"sync"
	"testing"
)

// TestComputeHeights pins the height definition on a known DAG: height is
// the longest dependence path below a thread (leaves are 0).
func TestComputeHeights(t *testing.T) {
	d := NewDep(Config{CacheSize: 1 << 20})
	defer d.Close()
	nop := func(int, int) {}
	// A chain 0 -> 1 -> 2 -> 3 plus leaves 4, 5, and a diamond 0 -> (1, 6) -> 7.
	id0 := d.Fork(nop, 0, 0, 0, 0, 0)
	id1 := d.Fork(nop, 1, 0, 0, 0, 0, id0)
	id2 := d.Fork(nop, 2, 0, 0, 0, 0, id1)
	d.Fork(nop, 3, 0, 0, 0, 0, id2)
	d.Fork(nop, 4, 0, 0, 0, 0)
	d.Fork(nop, 5, 0, 0, 0, 0)
	id6 := d.Fork(nop, 6, 0, 0, 0, 0, id0)
	d.Fork(nop, 7, 0, 0, 0, 0, id1, id6)
	d.computeHeights()
	want := []int32{3, 2, 1, 0, 0, 0, 1, 0}
	for id, h := range want {
		if d.heights[id] != h {
			t.Errorf("height[%d] = %d, want %d", id, d.heights[id], h)
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCriticalPathFirstSerialOrder forks a long chain into a late bin and
// independent leaves into early bins; with CriticalPathFirst the chain's
// bin drains first every round, so the chain head runs before any leaf.
func TestCriticalPathFirstSerialOrder(t *testing.T) {
	d := NewDep(Config{CacheSize: 1 << 20, BlockSize: 1 << 12, CriticalPathFirst: true})
	defer d.Close()
	var order []int
	rec := func(a1, _ int) { order = append(order, a1) }
	// Leaves first into bins 0 and 1 (allocation order would run them first).
	for i := 0; i < 6; i++ {
		d.Fork(rec, 100+i, 0, uint64(i%2)<<12, 0, 0)
	}
	// A 4-deep chain in bin 2, forked last.
	prev := d.Fork(rec, 0, 0, 2<<12, 0, 0)
	for i := 1; i < 4; i++ {
		prev = d.Fork(rec, i, 0, 2<<12, 0, 0, prev)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 10 {
		t.Fatalf("ran %d threads, want 10", len(order))
	}
	if order[0] != 0 {
		t.Fatalf("first executed thread = arg %d, want chain head 0 (order %v)", order[0], order)
	}
}

// TestCriticalPathFirstEquivalence checks the opt-in changes only order:
// serial and parallel runs with CriticalPathFirst execute every thread
// exactly once and respect all dependence edges.
func TestCriticalPathFirstEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, topoSpec := range []string{"", "8k:2,64k:4"} {
			topo, err := ParseTopology(topoSpec)
			if err != nil {
				t.Fatal(err)
			}
			d := NewDep(Config{CacheSize: 1 << 20, BlockSize: 1 << 12,
				Workers: workers, CriticalPathFirst: true, Topology: topo})
			const n = 800
			var mu sync.Mutex
			done := make([]bool, n)
			var deps []ThreadID
			for i := 0; i < n; i++ {
				i := i
				var pre []ThreadID
				if i >= 3 && i%3 != 0 {
					pre = append(pre, deps[i-3])
				}
				if i >= 7 && i%7 == 0 {
					pre = append(pre, deps[i-7])
				}
				id := d.Fork(func(int, int) {
					mu.Lock()
					defer mu.Unlock()
					for _, p := range pre {
						if !done[p] {
							t.Errorf("thread %d ran before dependence %d", i, p)
						}
					}
					done[i] = true
				}, i, 0, uint64(i%13)<<12, 0, 0, pre...)
				deps = append(deps, id)
			}
			if err := d.Run(); err != nil {
				t.Fatalf("workers=%d topo=%q: %v", workers, topoSpec, err)
			}
			d.Close()
			for i, ok := range done {
				if !ok {
					t.Fatalf("workers=%d topo=%q: thread %d never ran", workers, topoSpec, i)
				}
			}
		}
	}
}

// TestCriticalPathFirstOffUnchanged guards the default: with the knob off
// no heights are computed and the serial executor keeps allocation order.
func TestCriticalPathFirstOffUnchanged(t *testing.T) {
	d := NewDep(Config{CacheSize: 1 << 20, BlockSize: 1 << 12})
	defer d.Close()
	var order []int
	for i := 0; i < 5; i++ {
		d.Fork(func(a1, _ int) { order = append(order, a1) }, i, 0, uint64(4-i)<<12, 0, 0)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i, a := range order {
		if a != i {
			t.Fatalf("allocation order perturbed: %v", order)
		}
	}
	if d.heights != nil {
		t.Fatal("heights computed with CriticalPathFirst off")
	}
}
