package core

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestUnknownDependencyErrorTyped: a dependence on a not-yet-forked ID
// surfaces as a typed *UnknownDependencyError naming both the offending
// thread and the bad dependence, before any thread runs.
func TestUnknownDependencyErrorTyped(t *testing.T) {
	d := NewDep(Config{})
	ran := false
	d.Fork(func(int, int) { ran = true }, 0, 0, 0, 0, 0)
	d.Fork(func(int, int) { ran = true }, 0, 0, 0, 0, 0, ThreadID(7))
	err := d.RunContext(context.Background())
	if !errors.Is(err, ErrUnknownDependency) {
		t.Fatalf("errors.Is(err, ErrUnknownDependency) = false for %v", err)
	}
	var ue *UnknownDependencyError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %T, want *UnknownDependencyError", err)
	}
	if ue.Thread != 1 || ue.Dep != 7 {
		t.Errorf("UnknownDependencyError = %+v, want Thread 1, Dep 7", ue)
	}
	if msg := ue.Error(); !strings.Contains(msg, "thread 1") || !strings.Contains(msg, "depends on 7") {
		t.Errorf("Error() = %q does not name the offenders", msg)
	}
	if ran {
		t.Error("threads ran despite an invalid dependence")
	}
	// The failed run destroyed the schedule; a clean cycle works.
	d.Fork(func(int, int) { ran = true }, 0, 0, 0, 0, 0)
	if err := d.RunContext(context.Background()); err != nil || !ran {
		t.Fatalf("scheduler unusable after dependency error: %v", err)
	}
}

// forgeCycle forks n no-dep threads and then rewires their bookkeeping
// into a dependence ring 0 → n-1 → n-2 → ... → 0 (thread i waits on
// thread (i+n-1) mod n). The public Fork API cannot express this — it
// rejects forward references, making true cycles unconstructible — so the
// cycle reporter is exercised white-box to keep it honest should a future
// API (e.g. batch fork) make cycles reachable.
func forgeCycle(d *DepScheduler, n int) {
	for i := 0; i < n; i++ {
		d.Fork(func(int, int) {}, i, 0, uint64(i)<<12, 0, 0)
	}
	for i := 0; i < n; i++ {
		d.threads[i].waits = 1
		d.threads[i].dependents = append(d.threads[i].dependents, ThreadID((i+1)%n))
	}
}

func TestDependencyCycleErrorWhiteBox(t *testing.T) {
	for _, workers := range []int{1, 4} {
		d := NewDep(Config{CacheSize: 1 << 20, BlockSize: 1 << 12, Workers: workers})
		forgeCycle(d, 3)
		// A stuck straggler outside the ring: waits on a ring member, so it
		// joins the residue but must not appear in the witness cycle.
		d.Fork(func(int, int) {}, 3, 0, 3<<12, 0, 0)
		d.threads[3].waits = 1
		d.threads[0].dependents = append(d.threads[0].dependents, ThreadID(3))

		err := d.RunContext(context.Background())
		d.Close()
		if !errors.Is(err, ErrDependencyCycle) {
			t.Fatalf("workers=%d: errors.Is(err, ErrDependencyCycle) = false for %v", workers, err)
		}
		var ce *DependencyCycleError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: err = %T, want *DependencyCycleError", workers, err)
		}
		if ce.Stuck != 4 {
			t.Errorf("workers=%d: Stuck = %d, want 4 (whole residue)", workers, ce.Stuck)
		}
		if len(ce.Cycle) != 3 {
			t.Fatalf("workers=%d: Cycle = %v, want the 3-thread ring", workers, ce.Cycle)
		}
		// Cycle[i] waits on Cycle[i+1] (wrapping): in the forged ring,
		// thread x waits on (x+2) mod 3.
		for i, id := range ce.Cycle {
			next := ce.Cycle[(i+1)%len(ce.Cycle)]
			if next != (id+2)%3 {
				t.Errorf("workers=%d: Cycle[%d]=%d should wait on %d, got %d",
					workers, i, id, (id+2)%3, next)
			}
		}
		if msg := ce.Error(); !strings.Contains(msg, "->") || !strings.Contains(msg, "4 threads stuck") {
			t.Errorf("workers=%d: Error() = %q", workers, msg)
		}
	}
}

// TestDependencyCycleErrorEmptyResidue: the zero DependencyCycleError
// still formats and matches the sentinel (defensive path for a residue
// the walker cannot explain).
func TestDependencyCycleErrorEmptyResidue(t *testing.T) {
	e := &DependencyCycleError{Stuck: 2}
	if !errors.Is(e, ErrDependencyCycle) {
		t.Error("zero-cycle error does not match sentinel")
	}
	if !strings.Contains(e.Error(), "2 threads stuck") {
		t.Errorf("Error() = %q", e.Error())
	}
}

// TestDepForkDuringRunPanics: the fork/run overlap guard extends to the
// DepScheduler. The misuse panic fires inside the thread body, so it is
// recovered by containment and surfaces as the run's ThreadPanicError —
// still a loud failure, now a diagnosable one.
func TestDepForkDuringRunPanics(t *testing.T) {
	d := NewDep(Config{CacheSize: 1 << 20})
	d.Fork(func(int, int) {
		d.Fork(func(int, int) {}, 0, 0, 0, 0, 0)
	}, 0, 0, 0, 0, 0)
	err := d.RunContext(context.Background())
	var tp *ThreadPanicError
	if !errors.As(err, &tp) {
		t.Fatalf("err = %v, want *ThreadPanicError from the Fork guard", err)
	}
	msg, ok := tp.Value.(string)
	if !ok || !strings.Contains(msg, "Fork called during Run") {
		t.Fatalf("panic value = %#v, want the guard message", tp.Value)
	}
	// Fresh cycle works after the recovered misuse.
	ran := false
	d.Fork(func(int, int) { ran = true }, 0, 0, 0, 0, 0)
	if err := d.RunContext(context.Background()); err != nil || !ran {
		t.Fatalf("scheduler unusable after guard panic: %v", err)
	}
}
