package core

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestGuardTreeThroughput is the regression tripwire for hierarchical
// dispatch: on the same skewed workload, routing a parallel run through
// the bin tree (topology-aware segments plus per-level stealing) must not
// fall below the flat segmented dispatcher. The tree exists to *add*
// locality on hierarchical machines; if its bookkeeping ever costs more
// than it recovers, this guard fails the build loudly instead of the
// regression surfacing months later in a benchmark record.
//
// It measures real throughput, so it is opt-in: set GUARD_TREE=1 (make
// guard-tree) on a quiet multicore host; it skips on a single CPU where
// parallel dispatch cannot express the difference. Best-of-3 with a 5%
// allowance absorbs scheduler noise, as in the other guards.
func TestGuardTreeThroughput(t *testing.T) {
	if os.Getenv("GUARD_TREE") == "" {
		t.Skip("set GUARD_TREE=1 to run the tree-vs-flat dispatch throughput guard")
	}
	if runtime.NumCPU() < 2 {
		t.Skipf("host has %d CPU; parallel dispatch needs at least 2", runtime.NumCPU())
	}
	workers := runtime.NumCPU()
	if workers > 16 {
		workers = 16
	}
	topo, err := ParseTopology(fmt.Sprintf("64k:2,8m:%d", workers))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200_000
	data := make([]int64, 1<<16) // read-shared by all threads
	sink := make([]int64, n)     // one disjoint write slot per thread
	measure := func(topo *Topology) float64 {
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			s := New(Config{CacheSize: 2 << 20, BlockSize: 1 << 14, Workers: workers, Topology: topo})
			for i := 0; i < n; i++ {
				s.Fork(func(a1, _ int) {
					// A cache-touching body so dispatch cost is measured
					// against real work, not an empty function call.
					base := (a1 * 61) & (len(data) - 64)
					sum := int64(0)
					for j := 0; j < 64; j++ {
						sum += data[base+j]
					}
					sink[a1] = sum
				}, i, 0, uint64(i%(8+i%29))<<14, 0, 0)
			}
			start := time.Now()
			s.Run(false)
			elapsed := time.Since(start)
			s.Close()
			if rate := float64(n) / elapsed.Seconds(); rate > best {
				best = rate
			}
		}
		return best
	}
	measure(nil) // warm the page cache and branch predictors off the record
	flat := measure(nil)
	tree := measure(topo)
	ratio := tree / flat
	t.Logf("flat %12.0f threads/sec, tree(%s) %12.0f threads/sec (%.2fx)", flat, topo, tree, ratio)
	if ratio < 0.95 {
		t.Errorf("hierarchical dispatch runs at %.2fx of flat (%.0f vs %.0f threads/sec): tree bookkeeping has regressed",
			ratio, tree, flat)
	}
}
