package core

import (
	"testing"
	"testing/quick"
)

// Pin the coordinate-aliasing bug at its boundary: block coordinates
// exactly 2^curveBits apart used to collapse onto one masked curve index.
func TestMortonLessWideBoundary(t *testing.T) {
	const edge = uint64(1) << curveBits
	cases := []struct {
		a, b binKey
		less bool
	}{
		{binKey{edge - 1, 0, 0}, binKey{edge, 0, 0}, true},  // aliased to edge-1 vs 0 before
		{binKey{edge, 0, 0}, binKey{edge - 1, 0, 0}, false}, // ... and 0 < edge-1 before
		{binKey{edge, 0, 0}, binKey{edge, 0, 0}, false},
		{binKey{0, 0, 0}, binKey{edge, 0, 0}, true}, // both masked to 0 before
		{binKey{edge, 0, 0}, binKey{0, 0, 0}, false},
		{binKey{edge, 0, 0}, binKey{edge + 1, 0, 0}, true},
		{binKey{0, edge, 0}, binKey{0, 0, edge}, true}, // y outranks z in Z-order
	}
	for _, c := range cases {
		if got := mortonLessWide(c.a, c.b); got != c.less {
			t.Errorf("mortonLessWide(%v, %v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

// Property: within the non-overflow range the wide compare agrees exactly
// with the single-chunk Morton index, so the fast path and the widened
// path order bins identically.
func TestMortonLessWideAgreesInRange(t *testing.T) {
	f := func(a1, a2, a3, b1, b2, b3 uint32) bool {
		const mask = 1<<curveBits - 1
		ka := binKey{uint64(a1) & mask, uint64(a2) & mask, uint64(a3) & mask}
		kb := binKey{uint64(b1) & mask, uint64(b2) & mask, uint64(b3) & mask}
		return mortonLessWide(ka, kb) == (morton3(ka) < morton3(kb))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// forkAtBlocks forks threads[i]+... into the bin at block coordinate
// coords[i] (i+1 threads each, so tour positions are identifiable by
// occupancy), and returns the scheduler.
func forkAtBlocks(tour TourOrder, coords []uint64) *Scheduler {
	s := New(Config{BlockSize: 1 << 12, Tour: tour})
	for i, c := range coords {
		for n := 0; n <= i; n++ {
			s.Fork(func(int, int) {}, i, n, c<<12, 0, 0)
		}
	}
	return s
}

// TestTourMortonOverflowBoundary pins the fixed behavior at the aliasing
// boundary: bins 2^21 blocks apart must sort by their true coordinates.
// Bins are forked at block coordinates {2^21, 1, 0} carrying {1, 2, 3}
// threads respectively; the correct Morton tour visits 0, 1, 2^21 —
// occupancy [3 2 1]. The masked index used to alias 2^21 onto 0, and the
// stable sort then visited [1 3 2].
func TestTourMortonOverflowBoundary(t *testing.T) {
	const edge = uint64(1) << curveBits
	s := forkAtBlocks(TourMorton, []uint64{edge, 1, 0})
	got := s.TourOccupancy()
	want := []int{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("overflowing Morton tour occupancy = %v, want %v", got, want)
		}
	}
	if n := s.Snapshot(); len(n.Counters) != 0 {
		t.Fatalf("no-Obs scheduler snapshot not zero: %+v", n)
	}
}

// TestTourMortonBelowBoundary confirms the fast path still applies just
// inside the range: coordinates {2^21-1, 1, 0} sort 0, 1, 2^21-1.
func TestTourMortonBelowBoundary(t *testing.T) {
	const edge = uint64(1) << curveBits
	s := forkAtBlocks(TourMorton, []uint64{edge - 1, 1, 0})
	got := s.TourOccupancy()
	want := []int{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("in-range Morton tour occupancy = %v, want %v", got, want)
		}
	}
}

// TestTourHilbertOverflowFallsBack pins the Hilbert overflow policy: the
// transform cannot be widened chunk-wise, so a tour containing any
// out-of-range coordinate keeps allocation order instead of aliasing.
func TestTourHilbertOverflowFallsBack(t *testing.T) {
	const edge = uint64(1) << curveBits
	s := forkAtBlocks(TourHilbert, []uint64{edge, 1, 0})
	got := s.TourOccupancy()
	want := []int{1, 2, 3} // allocation (fork) order
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("overflowing Hilbert tour occupancy = %v, want %v (allocation order)", got, want)
		}
	}
	// In range, Hilbert still reorders as before.
	s = forkAtBlocks(TourHilbert, []uint64{edge - 1, 1, 0})
	got = s.TourOccupancy()
	if got[0] != 3 {
		t.Fatalf("in-range Hilbert tour did not sort: occupancy %v", got)
	}
}
