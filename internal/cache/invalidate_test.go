package cache

import "testing"

func TestInvalidateRemovesLine(t *testing.T) {
	c := mustCache(t, Config{Size: 256, LineSize: 32, Assoc: 2})
	c.Access(0, false)
	if !c.Invalidate(0) {
		t.Fatal("resident line not reported invalidated")
	}
	if c.Contains(0) {
		t.Fatal("line survived invalidation")
	}
	if c.Invalidate(0) {
		t.Fatal("absent line reported invalidated")
	}
	// Next access misses again.
	if c.Access(0, false) {
		t.Fatal("hit after invalidation")
	}
}

func TestInvalidateDirtyCountsWriteback(t *testing.T) {
	c := mustCache(t, Config{Size: 256, LineSize: 32, Assoc: 2})
	c.Access(0, true)
	before := c.Stats().Writebacks
	c.Invalidate(0)
	if got := c.Stats().Writebacks; got != before+1 {
		t.Fatalf("writebacks = %d, want %d (dirty invalidation flushes)", got, before+1)
	}
	// Clean invalidation does not.
	c.Access(32, false)
	c.Invalidate(32)
	if got := c.Stats().Writebacks; got != before+1 {
		t.Fatal("clean invalidation counted a writeback")
	}
}

func TestInvalidateLeavesOtherLinesIntact(t *testing.T) {
	c := mustCache(t, Config{Size: 256, LineSize: 32, Assoc: 4})
	for i := uint64(0); i < 4; i++ {
		c.Access(i*64, false)
	}
	c.Invalidate(2 * 64)
	for i := uint64(0); i < 4; i++ {
		want := i != 2
		if c.Contains(i*64) != want {
			t.Fatalf("line %d residency = %v, want %v", i, c.Contains(i*64), want)
		}
	}
	if got := c.Config().Size; got != 256 {
		t.Fatalf("Config().Size = %d", got)
	}
}
