package cache

import "testing"

// mapLRU is a trivially-correct reference implementation of the shadow
// model (Go map index + the same intrusive list semantics), used to
// differential-test the open-addressing lruIndex.
type mapLRU struct {
	capacity int
	index    map[uint64]bool
	order    []uint64 // MRU first
}

func (m *mapLRU) touch(ln uint64) bool {
	if m.index[ln] {
		for i, v := range m.order {
			if v == ln {
				copy(m.order[1:i+1], m.order[:i])
				m.order[0] = ln
				break
			}
		}
		return true
	}
	if len(m.order) == m.capacity {
		victim := m.order[len(m.order)-1]
		delete(m.index, victim)
		m.order = m.order[:len(m.order)-1]
	}
	m.index[ln] = true
	m.order = append([]uint64{ln}, m.order...)
	return false
}

// TestLRUTableDifferential drives the production lruTable and the map
// reference with an adversarial stream — sequential sweeps (worst case
// for a weak hash), strides, and pseudo-random touches — and demands
// identical hit/miss verdicts. This pins the open-addressing index,
// including backward-shift deletion under heavy eviction.
func TestLRUTableDifferential(t *testing.T) {
	for _, capacity := range []int{1, 3, 16, 117, 1024} {
		got := newLRUTable(capacity)
		want := &mapLRU{capacity: capacity, index: make(map[uint64]bool)}
		rng := uint64(12345)
		for i := 0; i < 20000; i++ {
			var ln uint64
			switch i % 4 {
			case 0:
				ln = uint64(i) // sequential
			case 1:
				ln = uint64(i) * 64 // strided
			case 2:
				ln = uint64(i % (capacity*2 + 1)) // cycling reuse
			default:
				rng = rng*6364136223846793005 + 1442695040888963407
				ln = (rng >> 33) % uint64(capacity*8+1)
			}
			if g, w := got.touch(ln), want.touch(ln); g != w {
				t.Fatalf("capacity %d step %d line %d: lruTable hit=%v, reference hit=%v",
					capacity, i, ln, g, w)
			}
			if got.len() != len(want.order) {
				t.Fatalf("capacity %d step %d: lruTable len=%d, reference len=%d",
					capacity, i, got.len(), len(want.order))
			}
		}
	}
}

// TestSeenSetDifferential pins the sparse-bitmap seen set against a map.
func TestSeenSetDifferential(t *testing.T) {
	var s seenSet
	s.init()
	want := map[uint64]bool{}
	rng := uint64(99)
	for i := 0; i < 50000; i++ {
		var ln uint64
		if i%2 == 0 {
			ln = uint64(i / 2) // sequential, revisited on odd steps below
		} else {
			rng = rng*6364136223846793005 + 1442695040888963407
			ln = (rng >> 40) % 4096
		}
		if got := s.testAndSet(ln); got != want[ln] {
			t.Fatalf("step %d line %d: seenSet=%v, reference=%v", i, ln, got, want[ln])
		}
		want[ln] = true
	}
}
