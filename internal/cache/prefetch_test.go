package cache

import "testing"

func TestPrefetchHalvesSequentialMisses(t *testing.T) {
	plain := mustCache(t, Config{Size: 1024, LineSize: 32, Assoc: 2})
	pf := mustCache(t, Config{Size: 1024, LineSize: 32, Assoc: 2, Prefetch: true})
	// A long sequential sweep far exceeding capacity.
	for i := 0; i < 4096; i++ {
		addr := uint64(i) * 8
		plain.Access(addr, false)
		pf.Access(addr, false)
	}
	p, q := plain.Stats(), pf.Stats()
	if p.Misses != 1024 { // one per 32-byte line
		t.Fatalf("plain misses = %d, want 1024", p.Misses)
	}
	if q.Misses != p.Misses/2 {
		t.Fatalf("prefetch misses = %d, want %d (every other line prefetched)",
			q.Misses, p.Misses/2)
	}
	if q.Prefetches == 0 {
		t.Fatal("no prefetches counted")
	}
}

func TestPrefetchDoesNotDoubleFetchResidentLine(t *testing.T) {
	c := mustCache(t, Config{Size: 1024, LineSize: 32, Assoc: 2, Prefetch: true})
	c.Access(32, false) // misses, prefetches line 2
	c.Access(0, false)  // misses, would prefetch line 1 — already resident
	if got := c.Stats().Prefetches; got != 1 {
		t.Fatalf("prefetches = %d, want 1", got)
	}
}

func TestPrefetchWrapsSetsCorrectly(t *testing.T) {
	// Prefetching the line after the last line of a set must land in the
	// next set without panicking and without corrupting stats identities.
	c := mustCache(t, Config{Size: 128, LineSize: 32, Assoc: 1, Prefetch: true, Classify: true})
	for i := 0; i < 200; i++ {
		c.Access(uint64(i%8)*32, false)
	}
	st := c.Stats()
	if st.Compulsory+st.Capacity+st.Conflict != st.Misses {
		t.Fatalf("classification identity broken under prefetch: %+v", st)
	}
}

func TestPrefetchReducesColdMissesOnStreams(t *testing.T) {
	// With classification on, prefetch converts would-be compulsory
	// misses into hits: compulsory counts drop below the distinct-line
	// count.
	c := mustCache(t, Config{Size: 4096, LineSize: 32, Assoc: 4, Prefetch: true, Classify: true})
	for i := 0; i < 64; i++ {
		c.Access(uint64(i)*32, false)
	}
	if got := c.Stats().Compulsory; got >= 64 {
		t.Fatalf("compulsory = %d, want < 64 under next-line prefetch", got)
	}
}
