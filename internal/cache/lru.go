package cache

// lruTable is a fully-associative LRU set of line numbers with a fixed
// capacity, used as the shadow model for capacity-miss classification. It
// is a hash map from line number to node index plus an intrusive doubly
// linked recency list, so both hit and miss paths are O(1).
type lruTable struct {
	capacity int
	index    map[uint64]int32
	nodes    []lruNode
	head     int32 // most recently used
	tail     int32 // least recently used
	free     int32 // head of free list (linked through next)
}

type lruNode struct {
	line       uint64
	prev, next int32
}

const nilNode = int32(-1)

func newLRUTable(capacity int) *lruTable {
	if capacity < 1 {
		capacity = 1
	}
	t := &lruTable{
		capacity: capacity,
		index:    make(map[uint64]int32, capacity*2),
		nodes:    make([]lruNode, capacity),
		head:     nilNode,
		tail:     nilNode,
	}
	// Thread the free list through the node slab.
	for i := range t.nodes {
		t.nodes[i].next = int32(i + 1)
	}
	t.nodes[capacity-1].next = nilNode
	t.free = 0
	return t
}

// touch records a reference to line ln, returning true if it was resident
// (a shadow hit). On a miss the line is inserted, evicting the LRU entry
// if the table is full.
func (t *lruTable) touch(ln uint64) bool {
	if idx, ok := t.index[ln]; ok {
		t.moveToFront(idx)
		return true
	}
	idx := t.free
	if idx == nilNode {
		// Evict LRU.
		idx = t.tail
		delete(t.index, t.nodes[idx].line)
		t.unlink(idx)
	} else {
		t.free = t.nodes[idx].next
	}
	t.nodes[idx].line = ln
	t.pushFront(idx)
	t.index[ln] = idx
	return false
}

// contains reports residency without touching recency; for tests.
func (t *lruTable) contains(ln uint64) bool {
	_, ok := t.index[ln]
	return ok
}

// len returns the number of resident lines.
func (t *lruTable) len() int { return len(t.index) }

func (t *lruTable) unlink(idx int32) {
	n := &t.nodes[idx]
	if n.prev != nilNode {
		t.nodes[n.prev].next = n.next
	} else {
		t.head = n.next
	}
	if n.next != nilNode {
		t.nodes[n.next].prev = n.prev
	} else {
		t.tail = n.prev
	}
}

func (t *lruTable) pushFront(idx int32) {
	n := &t.nodes[idx]
	n.prev = nilNode
	n.next = t.head
	if t.head != nilNode {
		t.nodes[t.head].prev = idx
	}
	t.head = idx
	if t.tail == nilNode {
		t.tail = idx
	}
}

func (t *lruTable) moveToFront(idx int32) {
	if t.head == idx {
		return
	}
	t.unlink(idx)
	t.pushFront(idx)
}
