package cache

import "math/bits"

// lruTable is a fully-associative LRU set of line numbers with a fixed
// capacity, used as the shadow model for capacity-miss classification. It
// is a hash table from line number to node index plus an intrusive doubly
// linked recency list, so both hit and miss paths are O(1). The index is
// an open-addressing table rather than a Go map: the table is probed once
// per access to the classified cache, and linear probing over a flat slab
// is several times cheaper than a map lookup on that path.
type lruTable struct {
	capacity int
	index    lruIndex
	nodes    []lruNode
	head     int32 // most recently used
	tail     int32 // least recently used
	free     int32 // head of free list (linked through next)
}

type lruNode struct {
	line       uint64
	prev, next int32
}

const nilNode = int32(-1)

func newLRUTable(capacity int) *lruTable {
	if capacity < 1 {
		capacity = 1
	}
	t := &lruTable{
		capacity: capacity,
		nodes:    make([]lruNode, capacity),
		head:     nilNode,
		tail:     nilNode,
	}
	t.index.init(capacity)
	// Thread the free list through the node slab.
	for i := range t.nodes {
		t.nodes[i].next = int32(i + 1)
	}
	t.nodes[capacity-1].next = nilNode
	t.free = 0
	return t
}

// touch records a reference to line ln, returning true if it was resident
// (a shadow hit). On a miss the line is inserted, evicting the LRU entry
// if the table is full.
func (t *lruTable) touch(ln uint64) bool {
	if idx, ok := t.index.get(ln); ok {
		t.moveToFront(idx)
		return true
	}
	idx := t.free
	if idx == nilNode {
		// Evict LRU.
		idx = t.tail
		t.index.del(t.nodes[idx].line)
		t.unlink(idx)
	} else {
		t.free = t.nodes[idx].next
	}
	t.nodes[idx].line = ln
	t.pushFront(idx)
	t.index.put(ln, idx)
	return false
}

// contains reports residency without touching recency; for tests.
func (t *lruTable) contains(ln uint64) bool {
	_, ok := t.index.get(ln)
	return ok
}

// len returns the number of resident lines.
func (t *lruTable) len() int { return t.index.n }

func (t *lruTable) unlink(idx int32) {
	n := &t.nodes[idx]
	if n.prev != nilNode {
		t.nodes[n.prev].next = n.next
	} else {
		t.head = n.next
	}
	if n.next != nilNode {
		t.nodes[n.next].prev = n.prev
	} else {
		t.tail = n.prev
	}
}

func (t *lruTable) pushFront(idx int32) {
	n := &t.nodes[idx]
	n.prev = nilNode
	n.next = t.head
	if t.head != nilNode {
		t.nodes[t.head].prev = idx
	}
	t.head = idx
	if t.tail == nilNode {
		t.tail = idx
	}
}

func (t *lruTable) moveToFront(idx int32) {
	if t.head == idx {
		return
	}
	t.unlink(idx)
	t.pushFront(idx)
}

// lruIndex maps line number -> node index with open addressing and linear
// probing. Capacity is fixed (the shadow model never outgrows the cache's
// line count), so the table is sized once for a load factor of at most
// one half and never rehashes. Deletion uses backward shifting, keeping
// probe chains tombstone-free.
type lruIndex struct {
	slots []lruSlot
	mask  uint64
	shift uint // 64 - log2(len(slots)), for the multiplicative hash
	n     int
}

type lruSlot struct {
	key uint64
	val int32 // nilNode = empty
}

func (ix *lruIndex) init(capacity int) {
	size := 4
	for size < capacity*2 {
		size <<= 1
	}
	ix.slots = make([]lruSlot, size)
	for i := range ix.slots {
		ix.slots[i].val = nilNode
	}
	ix.mask = uint64(size - 1)
	ix.shift = uint(64 - bits.TrailingZeros(uint(size)))
	ix.n = 0
}

// hash spreads line numbers (often sequential) with a Fibonacci multiply;
// the high bits drive the slot so adjacent lines do not chain.
func (ix *lruIndex) hash(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> ix.shift & ix.mask
}

func (ix *lruIndex) get(key uint64) (int32, bool) {
	for i := ix.hash(key); ; i = (i + 1) & ix.mask {
		s := ix.slots[i]
		if s.val == nilNode {
			return 0, false
		}
		if s.key == key {
			return s.val, true
		}
	}
}

// put inserts key -> val; the caller guarantees key is absent.
func (ix *lruIndex) put(key uint64, val int32) {
	for i := ix.hash(key); ; i = (i + 1) & ix.mask {
		if ix.slots[i].val == nilNode {
			ix.slots[i] = lruSlot{key: key, val: val}
			ix.n++
			return
		}
	}
}

// del removes key; the caller guarantees key is present. Subsequent slots
// in the probe chain shift backward so lookups never need tombstones.
func (ix *lruIndex) del(key uint64) {
	i := ix.hash(key)
	for ix.slots[i].key != key || ix.slots[i].val == nilNode {
		i = (i + 1) & ix.mask
	}
	ix.n--
	for {
		j := (i + 1) & ix.mask
		for {
			s := ix.slots[j]
			if s.val == nilNode {
				// End of the chain: empty the vacated slot.
				ix.slots[i].val = nilNode
				return
			}
			// s can fill the hole only if its home position does not lie
			// strictly between the hole and its current slot (cyclically);
			// otherwise moving it would break its own probe chain.
			home := ix.hash(s.key)
			if (j-home)&ix.mask >= (j-i)&ix.mask {
				break
			}
			j = (j + 1) & ix.mask
		}
		ix.slots[i] = ix.slots[j]
		i = j
	}
}
