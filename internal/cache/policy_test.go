package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"threadsched/internal/trace"
)

func TestPolicyStrings(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" || RandomRepl.String() != "random" {
		t.Error("replacement names")
	}
	if WriteBackAllocate.String() != "wb+wa" || WriteThroughNoAllocate.String() != "wt+nwa" {
		t.Error("write policy names")
	}
	if Replacement(9).String() != "replacement?" || WritePolicy(9).String() != "write?" {
		t.Error("unknown policy names")
	}
}

func TestFIFOHitsDoNotRefresh(t *testing.T) {
	// 2-way single-set cache. Under FIFO, re-touching the oldest line
	// does not save it from eviction; under LRU it does.
	fifoCfg := Config{Size: 64, LineSize: 32, Assoc: 2, Repl: FIFO}
	fifo := mustCache(t, fifoCfg)
	fifo.Access(0*32, false) // allocate A (oldest)
	fifo.Access(2*32, false) // allocate B
	fifo.Access(0*32, false) // hit A — no refresh under FIFO
	fifo.Access(4*32, false) // allocate C: evicts B (insertion order A,B → tail is A)...
	// Insertion-at-head order: after A,B the set is [B,A]; C evicts A.
	if fifo.Contains(0 * 32) {
		t.Fatal("FIFO kept the re-touched oldest line; hits must not refresh")
	}
	if !fifo.Contains(2 * 32) {
		t.Fatal("FIFO evicted the newer line")
	}

	lru := mustCache(t, Config{Size: 64, LineSize: 32, Assoc: 2, Repl: LRU})
	lru.Access(0*32, false)
	lru.Access(2*32, false)
	lru.Access(0*32, false) // refresh A
	lru.Access(4*32, false) // evicts B
	if !lru.Contains(0 * 32) {
		t.Fatal("LRU evicted the refreshed line")
	}
}

func TestRandomReplacementFillsInvalidFirst(t *testing.T) {
	c := mustCache(t, Config{Size: 128, LineSize: 32, Assoc: 4, Repl: RandomRepl})
	for i := uint64(0); i < 4; i++ {
		c.Access(i*4*32, false) // all map to set 0 (single set? 128/32/4 = 1 set)
	}
	// All four distinct lines must be resident: invalid ways fill first.
	for i := uint64(0); i < 4; i++ {
		if !c.Contains(i * 4 * 32) {
			t.Fatalf("line %d not resident after cold fill", i)
		}
	}
	// A fifth line evicts exactly one of them.
	c.Access(16*32, false)
	resident := 0
	for i := uint64(0); i < 5; i++ {
		if c.Contains(i * 4 * 32) {
			resident++
		}
	}
	if !c.Contains(16 * 32) {
		t.Fatal("new line not allocated")
	}
	if resident != 4 {
		t.Fatalf("%d lines resident, want 4", resident)
	}
}

func TestRandomReplacementDeterministic(t *testing.T) {
	run := func() Stats {
		c := mustCache(t, Config{Size: 128, LineSize: 32, Assoc: 4, Repl: RandomRepl})
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 2000; i++ {
			c.Access(uint64(rng.Intn(32))*32, rng.Intn(4) == 0)
		}
		return c.Stats()
	}
	if run() != run() {
		t.Fatal("random replacement not deterministic across runs")
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	c := mustCache(t, Config{Size: 128, LineSize: 32, Assoc: 1, Write: WriteThroughNoAllocate})
	// Write miss: counted, not allocated.
	if c.Access(0, true) {
		t.Fatal("write miss reported as hit")
	}
	if c.Contains(0) {
		t.Fatal("write miss allocated under no-allocate")
	}
	// Read allocates; subsequent write hits but the line stays clean.
	c.Access(0, false)
	if !c.Access(0, true) {
		t.Fatal("write to resident line missed")
	}
	// Force eviction; a clean line must not write back.
	c.Access(4*32, false)
	if got := c.Stats().Writebacks; got != 0 {
		t.Fatalf("writebacks = %d under write-through", got)
	}
}

func TestHierarchyWriteThroughL1SendsWritesToL2(t *testing.T) {
	cfg := HierarchyConfig{
		L1I: Config{Name: "L1I", Size: 256, LineSize: 32, Assoc: 1},
		L1D: Config{Name: "L1D", Size: 256, LineSize: 32, Assoc: 1, Write: WriteThroughNoAllocate},
		L2:  Config{Name: "L2", Size: 1024, LineSize: 64, Assoc: 2},
	}
	h := MustNewHierarchy(cfg, nil)
	h.Record(trace.Ref{Kind: trace.Load, Addr: 0, Size: 8}) // L1D+L2 cold
	for i := 0; i < 5; i++ {
		h.Record(trace.Ref{Kind: trace.Store, Addr: 0, Size: 8}) // L1D hits, write-through
	}
	if got := h.L2().Stats().Writes; got != 5 {
		t.Fatalf("L2 writes = %d, want 5 (write-through)", got)
	}
	if got := h.L2().Stats().Accesses; got != 6 {
		t.Fatalf("L2 accesses = %d, want 6", got)
	}
}

// Property: at equal geometry, for any stream, cold misses are identical
// across replacement policies (first touches miss regardless), and total
// misses are at least the distinct-line count.
func TestPoliciesShareColdMissesProperty(t *testing.T) {
	f := func(seed int64) bool {
		mk := func(r Replacement) *Cache {
			return MustNew(Config{Size: 256, LineSize: 32, Assoc: 2, Repl: r, Classify: true})
		}
		lru, fifo, rnd := mk(LRU), mk(FIFO), mk(RandomRepl)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			addr := uint64(rng.Intn(64)) * 32
			w := rng.Intn(3) == 0
			lru.Access(addr, w)
			fifo.Access(addr, w)
			rnd.Access(addr, w)
		}
		a, b, c := lru.Stats(), fifo.Stats(), rnd.Stats()
		if a.Compulsory != b.Compulsory || b.Compulsory != c.Compulsory {
			return false
		}
		return a.Misses >= a.Compulsory && b.Misses >= b.Compulsory && c.Misses >= c.Compulsory
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: on a cyclic stream one line larger than a set (the classic
// LRU worst case), FIFO never does worse than LRU, and both miss every
// access after warmup.
func TestCyclicThrashBehavior(t *testing.T) {
	lru := MustNew(Config{Size: 128, LineSize: 32, Assoc: 4, Repl: LRU})
	fifo := MustNew(Config{Size: 128, LineSize: 32, Assoc: 4, Repl: FIFO})
	for round := 0; round < 50; round++ {
		for ln := uint64(0); ln < 5; ln++ { // 5 lines, 4 ways, one set
			lru.Access(ln*32, false)
			fifo.Access(ln*32, false)
		}
	}
	if hits := lru.Stats().Accesses - lru.Stats().Misses; hits != 0 {
		t.Fatalf("LRU got %d hits on a cyclic over-capacity stream, want 0", hits)
	}
	if fifo.Stats().Misses > lru.Stats().Misses {
		t.Fatalf("FIFO (%d) missed more than LRU (%d) on the cyclic stream",
			fifo.Stats().Misses, lru.Stats().Misses)
	}
}
