package cache

import (
	"testing"

	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

func tinyHierarchy(t *testing.T, pt *vm.PageTable) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(HierarchyConfig{
		L1I: Config{Name: "L1I", Size: 256, LineSize: 32, Assoc: 1},
		L1D: Config{Name: "L1D", Size: 256, LineSize: 32, Assoc: 1},
		L2:  Config{Name: "L2", Size: 1024, LineSize: 64, Assoc: 2, Classify: true},
	}, pt)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyRouting(t *testing.T) {
	h := tinyHierarchy(t, nil)
	h.Record(trace.Ref{Kind: trace.IFetch, Addr: 0, Size: 4})
	h.Record(trace.Ref{Kind: trace.Load, Addr: 0, Size: 8})
	h.Record(trace.Ref{Kind: trace.Store, Addr: 0, Size: 8})
	if got := h.L1I().Stats().Accesses; got != 1 {
		t.Errorf("L1I accesses = %d, want 1", got)
	}
	if got := h.L1D().Stats().Accesses; got != 2 {
		t.Errorf("L1D accesses = %d, want 2", got)
	}
	// Both L1 cold misses go to L2; the second data ref hits L1D.
	if got := h.L2().Stats().Accesses; got != 2 {
		t.Errorf("L2 accesses = %d, want 2", got)
	}
}

func TestHierarchyL2OnlySeesL1Misses(t *testing.T) {
	h := tinyHierarchy(t, nil)
	for i := 0; i < 100; i++ {
		h.Record(trace.Ref{Kind: trace.Load, Addr: 64, Size: 8})
	}
	if got := h.L2().Stats().Accesses; got != 1 {
		t.Errorf("L2 accesses = %d, want 1 (only the cold miss)", got)
	}
	if got := h.L1D().Stats().Misses; got != 1 {
		t.Errorf("L1D misses = %d, want 1", got)
	}
}

func TestHierarchyLineSpanningRef(t *testing.T) {
	h := tinyHierarchy(t, nil)
	// 8-byte load at 28 spans lines 0 and 1 of the 32B L1D.
	h.Record(trace.Ref{Kind: trace.Load, Addr: 28, Size: 8})
	st := h.L1D().Stats()
	if st.Accesses != 2 || st.Misses != 2 {
		t.Fatalf("spanning ref: %+v, want 2 accesses 2 misses", st)
	}
}

func TestHierarchyZeroSizeTreatedAsOne(t *testing.T) {
	h := tinyHierarchy(t, nil)
	h.Record(trace.Ref{Kind: trace.Load, Addr: 10, Size: 0})
	if st := h.L1D().Stats(); st.Accesses != 1 {
		t.Fatalf("zero-size ref made %d accesses", st.Accesses)
	}
}

func TestHierarchySummary(t *testing.T) {
	h := tinyHierarchy(t, nil)
	h.Record(trace.Ref{Kind: trace.IFetch, Addr: 0, Size: 4})
	h.Record(trace.Ref{Kind: trace.Load, Addr: 512, Size: 8})
	// 544 is a different L1D line (set 1) but shares 512's 64-byte L2 line.
	h.Record(trace.Ref{Kind: trace.Store, Addr: 544, Size: 8})
	h.Record(trace.Ref{Kind: trace.Load, Addr: 512, Size: 8})
	s := h.Summarize()
	if s.IFetches != 1 || s.DataRefs != 3 {
		t.Fatalf("summary refs: %+v", s)
	}
	if s.L1Misses != 3 { // ifetch cold + two data colds; final load hits
		t.Errorf("L1Misses = %d, want 3", s.L1Misses)
	}
	if s.L2.Misses != 2 { // ifetch line + the shared data line
		t.Errorf("L2 misses = %d, want 2", s.L2.Misses)
	}
	if s.L1Rate != 100 {
		t.Errorf("L1Rate = %v, want 100", s.L1Rate)
	}
	if s.L2.Compulsory != 2 {
		t.Errorf("L2 compulsory = %d, want 2", s.L2.Compulsory)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := tinyHierarchy(t, nil)
	h.Record(trace.Ref{Kind: trace.Load, Addr: 0, Size: 8})
	h.Reset()
	refs := h.Refs()
	if refs.Total() != 0 {
		t.Fatal("refs survived reset")
	}
	if h.L1D().Stats().Accesses != 0 || h.L2().Stats().Accesses != 0 {
		t.Fatal("stats survived reset")
	}
}

func TestHierarchyPhysicalIndexing(t *testing.T) {
	// With a random page map, two virtual pages that would not conflict
	// under identity mapping can collide in the physically indexed L2.
	// We check only the plumbing here: the L2 observes translated
	// addresses, so resident lines differ from the virtual line numbers.
	pt, err := vm.NewPageTable(4096, vm.RandomPolicy{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	h := tinyHierarchy(t, pt)
	vaddr := uint64(0x1000_0000)
	h.Record(trace.Ref{Kind: trace.Load, Addr: vaddr, Size: 8})
	paddr := pt.Translate(vaddr)
	if !h.L2().Contains(paddr) {
		t.Error("L2 does not contain the translated line")
	}
	if paddr != vaddr && h.L2().Contains(vaddr) {
		t.Error("L2 contains the untranslated line")
	}
}

func TestHierarchyAttachTLB(t *testing.T) {
	h := tinyHierarchy(t, nil)
	tlb, err := vm.NewTLB(4, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	h.AttachTLB(tlb)
	h.Record(trace.Ref{Kind: trace.Load, Addr: 0x1000, Size: 8})
	h.Record(trace.Ref{Kind: trace.Load, Addr: 0x1800, Size: 8}) // same page
	h.Record(trace.Ref{Kind: trace.IFetch, Addr: 0x1000, Size: 4})
	if tlb.Accesses() != 2 {
		t.Fatalf("TLB saw %d accesses, want 2 (ifetches excluded)", tlb.Accesses())
	}
	if tlb.Misses() != 1 {
		t.Fatalf("TLB misses = %d, want 1", tlb.Misses())
	}
}

func TestHierarchyConfigValidate(t *testing.T) {
	bad := HierarchyConfig{
		L1I: Config{Name: "L1I", Size: 256, LineSize: 32, Assoc: 1},
		L1D: Config{Name: "L1D", Size: 0, LineSize: 32, Assoc: 1},
		L2:  Config{Name: "L2", Size: 1024, LineSize: 64, Assoc: 2},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid hierarchy validated")
	}
	if _, err := NewHierarchy(bad, nil); err == nil {
		t.Fatal("NewHierarchy accepted invalid config")
	}
}

func TestMustNewHierarchyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewHierarchy did not panic")
		}
	}()
	MustNewHierarchy(HierarchyConfig{}, nil)
}
