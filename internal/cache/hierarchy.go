package cache

import (
	"fmt"

	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

// HierarchyConfig describes the cache hierarchy: split L1 instruction and
// data caches over a unified L2, matching both SGI systems in the paper,
// plus an optional L3 (zero Size = absent) for modelling modern machines.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	// L3 is an optional third level behind the L2; leave zero for the
	// paper's two-level systems.
	L3 Config
}

// HasL3 reports whether a third level is configured.
func (hc HierarchyConfig) HasL3() bool { return hc.L3.Size != 0 }

// Validate checks all level configurations.
func (hc HierarchyConfig) Validate() error {
	levels := []Config{hc.L1I, hc.L1D, hc.L2}
	if hc.HasL3() {
		levels = append(levels, hc.L3)
	}
	for _, c := range levels {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
	}
	return nil
}

// Hierarchy simulates the cache hierarchy against a reference stream.
// It implements trace.Recorder. If a page table is attached, the L2 is
// physically indexed: L1 caches see virtual addresses (they are small
// enough to be virtually indexed on the modelled machines) while L2 sees
// translated physical addresses, reproducing the virtual-memory effect the
// paper discusses in §2.2.
//
// Dirty evictions are counted per level (Stats.Writebacks) but writeback
// traffic does not generate accesses at the next level — DineroIII's
// demand-fetch accounting, which is what the paper's miss tables report.
type Hierarchy struct {
	l1i, l1d, l2 *Cache
	l3           *Cache // nil for two-level systems
	pt           *vm.PageTable
	tlb          *vm.TLB
	refs         trace.Counts
}

var _ trace.BatchRecorder = (*Hierarchy)(nil)

// NewHierarchy builds a hierarchy from cfg. pt may be nil for a fully
// virtually-indexed simulation (the paper's own DineroIII setup).
func NewHierarchy(cfg HierarchyConfig, pt *vm.PageTable) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{
		l1i: MustNew(cfg.L1I),
		l1d: MustNew(cfg.L1D),
		l2:  MustNew(cfg.L2),
		pt:  pt,
	}
	if cfg.HasL3() {
		h.l3 = MustNew(cfg.L3)
	}
	return h, nil
}

// MustNewHierarchy is NewHierarchy panicking on error, for fixed machine
// configurations.
func MustNewHierarchy(cfg HierarchyConfig, pt *vm.PageTable) *Hierarchy {
	h, err := NewHierarchy(cfg, pt)
	if err != nil {
		panic(err)
	}
	return h
}

// AttachTLB routes every data reference through a simulated data TLB;
// its hit/miss counters accumulate on the TLB itself.
func (h *Hierarchy) AttachTLB(t *vm.TLB) { h.tlb = t }

// Record implements trace.Recorder, presenting one reference to the
// hierarchy. References spanning a line boundary access each covered line.
func (h *Hierarchy) Record(r trace.Ref) { h.record1(r) }

// RecordBatch implements trace.BatchRecorder: the chunk is consumed in
// order by the same per-reference core as Record, so the resulting
// counters and cache state are bit-identical to the per-ref path — the
// batch saves the interface dispatch and keeps the simulator's code and
// branch history hot across the chunk instead of interleaving it with
// the trace generator's.
func (h *Hierarchy) RecordBatch(refs []trace.Ref) {
	for i := range refs {
		h.record1(refs[i])
	}
}

// record1 presents one reference to the hierarchy.
func (h *Hierarchy) record1(r trace.Ref) {
	h.refs.ByKind[r.Kind]++
	l1 := h.l1d
	write := false
	switch r.Kind {
	case trace.Store:
		write = true
		fallthrough
	case trace.Load:
		if h.tlb != nil {
			h.tlb.Access(r.Addr)
		}
	default: // IFetch: instruction cache, no data TLB.
		l1 = h.l1i
	}
	size := uint64(r.Size)
	if size == 0 {
		size = 1
	}
	first := r.Addr >> l1.lineShift
	last := (r.Addr + size - 1) >> l1.lineShift
	if first == last {
		// Single-line data reference: the overwhelmingly common case.
		if write {
			if !l1.AccessWrite(r.Addr) || l1.cfg.Write == WriteThroughNoAllocate {
				h.accessL2(r.Addr, true)
			}
		} else if !l1.AccessRead(r.Addr) {
			h.accessL2(r.Addr, false)
		}
		return
	}
	writeThrough := write && l1.cfg.Write == WriteThroughNoAllocate
	for ln := first; ln <= last; ln++ {
		addr := ln << l1.lineShift
		if ln == first {
			addr = r.Addr
		}
		if !l1.Access(addr, write) || writeThrough {
			h.accessL2(addr, write)
		}
	}
}

func (h *Hierarchy) accessL2(addr uint64, write bool) {
	if h.pt != nil {
		addr = h.pt.Translate(addr)
	}
	if !h.l2.Access(addr, write) && h.l3 != nil {
		h.l3.Access(addr, write)
	}
}

// L1I, L1D, and L2 expose the individual levels.
func (h *Hierarchy) L1I() *Cache { return h.l1i }

// L1D returns the first-level data cache.
func (h *Hierarchy) L1D() *Cache { return h.l1d }

// L2 returns the unified second-level cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// L3 returns the third-level cache, or nil on two-level systems.
func (h *Hierarchy) L3() *Cache { return h.l3 }

// Refs returns the reference tally observed so far.
func (h *Hierarchy) Refs() trace.Counts { return h.refs }

// Summary condenses the hierarchy counters into the rows the paper's miss
// tables report.
type Summary struct {
	IFetches uint64
	DataRefs uint64
	// L1Misses is combined I+D first-level misses, as in the paper's
	// "L1 misses" row.
	L1Misses uint64
	// L1Rate is L1 misses per hundred data references (the paper's rate
	// columns divide by data references).
	L1Rate float64
	L2     Stats
	// L2Rate is L2 misses per hundred data references.
	L2Rate float64
	// L3 is the optional third level's counters (zero when absent).
	L3 Stats
}

// Summarize computes the table rows from the current counters.
func (h *Hierarchy) Summarize() Summary {
	s := Summary{
		IFetches: h.refs.IFetches(),
		DataRefs: h.refs.DataRefs(),
		L1Misses: h.l1i.Stats().Misses + h.l1d.Stats().Misses,
		L2:       h.l2.Stats(),
	}
	if s.DataRefs > 0 {
		s.L1Rate = 100 * float64(s.L1Misses) / float64(s.DataRefs)
		s.L2Rate = 100 * float64(s.L2.Misses) / float64(s.DataRefs)
	}
	if h.l3 != nil {
		s.L3 = h.l3.Stats()
	}
	return s
}

// Merge accumulates other's counters into h: per-level Stats and the
// reference tally. It is stats-only — cache contents (residency, recency,
// dirty bits) are not merged, so a merged hierarchy reports combined
// counters but must not be used to continue simulation. Merging a
// freshly-reset hierarchy is a no-op. The two hierarchies must have
// identical level configurations.
func (h *Hierarchy) Merge(other *Hierarchy) error {
	pairs := [][2]*Cache{{h.l1i, other.l1i}, {h.l1d, other.l1d}, {h.l2, other.l2}}
	if (h.l3 == nil) != (other.l3 == nil) {
		return fmt.Errorf("cache: Merge: L3 present on one hierarchy only")
	}
	if h.l3 != nil {
		pairs = append(pairs, [2]*Cache{h.l3, other.l3})
	}
	for _, p := range pairs {
		if p[0].cfg != p[1].cfg {
			return fmt.Errorf("cache: Merge: %s configurations differ (%v vs %v)", p[0].cfg.Name, p[0].cfg, p[1].cfg)
		}
	}
	for _, p := range pairs {
		p[0].stats.Add(p[1].stats)
	}
	h.refs.Add(other.refs)
	return nil
}

// SetRefs overwrites the hierarchy's reference tally. Sharded simulation
// uses it after Merge: shards observe split reference pieces, so the
// summed shard tallies overcount spanning references, and the router's
// tally of original references is authoritative.
func (h *Hierarchy) SetRefs(c trace.Counts) { h.refs = c }

// Reset clears all levels and counters.
func (h *Hierarchy) Reset() {
	h.l1i.Reset()
	h.l1d.Reset()
	h.l2.Reset()
	if h.l3 != nil {
		h.l3.Reset()
	}
	h.refs = trace.Counts{}
}
