package cache

import (
	"errors"
	"math"
	"testing"

	"threadsched/internal/trace"
)

// sliceTestConfig is an address-sliceable three-level geometry:
// L1I [5,10), L1D [5,9), L2 [7,15) — intersection [7,9), 4 classes.
func sliceTestConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I: Config{Name: "L1I", Size: 1024, LineSize: 32, Assoc: 1},
		L1D: Config{Name: "L1D", Size: 1024, LineSize: 32, Assoc: 2},
		L2:  Config{Name: "L2", Size: 131072, LineSize: 128, Assoc: 4},
	}
}

func TestSliceRouterGeometry(t *testing.T) {
	r, err := NewSliceRouter(sliceTestConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Classes() != 4 {
		t.Errorf("Classes() = %d, want 4 (bits [7,9))", r.Classes())
	}
	if r.Slices() != 4 {
		t.Errorf("Slices() = %d, want 4 (requested 8, clamped to classes)", r.Slices())
	}
	// Addresses differing only below bit 7 or at/above bit 9 share a class.
	base := uint64(0x1000)
	for _, same := range []uint64{base + 1, base + 127, base + 1<<9, base + 1<<20} {
		if r.Slice(same) != r.Slice(base) {
			t.Errorf("Slice(%#x) = %d, want %d (same class as %#x)", same, r.Slice(same), r.Slice(base), base)
		}
	}
	if r.Slice(base+1<<7) == r.Slice(base) {
		t.Errorf("Slice(%#x) shares a slice with %#x despite differing class bits", base+1<<7, base)
	}
}

func TestSliceRouterRejectsCoupledState(t *testing.T) {
	classify := sliceTestConfig()
	classify.L2.Classify = true
	random := sliceTestConfig()
	random.L1D.Repl = RandomRepl
	prefetch := sliceTestConfig()
	prefetch.L2.Prefetch = true
	fullAssoc := sliceTestConfig()
	fullAssoc.L2.Assoc = 0
	disjoint := sliceTestConfig()
	// L1D sets shrink until its range [5,6) misses L2's [7,15).
	disjoint.L1D = Config{Name: "L1D", Size: 128, LineSize: 32, Assoc: 2}

	for name, cfg := range map[string]HierarchyConfig{
		"classify":         classify,
		"random repl":      random,
		"prefetch":         prefetch,
		"fully assoc":      fullAssoc,
		"disjoint bit set": disjoint,
	} {
		if _, err := NewSliceRouter(cfg, 2); !errors.Is(err, ErrUnsliceable) {
			t.Errorf("%s: err = %v, want ErrUnsliceable", name, err)
		}
	}
	if _, err := NewSliceRouter(sliceTestConfig(), 0); err == nil {
		t.Error("0 slices accepted")
	}
}

// TestSliceRouterScatterSplit: spanning references split at the coarsest
// set-index granule into contiguous pieces, each inside one granule
// block; non-spanning references pass through untouched; wrapping
// references are tallied but emit nothing.
func TestSliceRouterScatterSplit(t *testing.T) {
	r, err := NewSliceRouter(sliceTestConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	const granule = 128 // 1 << 7
	refs := []trace.Ref{
		{Kind: trace.Load, Addr: 0x1008, Size: 8},             // within one granule
		{Kind: trace.Store, Addr: 2*granule - 4, Size: 8},     // spans a granule boundary
		{Kind: trace.IFetch, Addr: 5*granule - 1, Size: 250},  // spans two boundaries
		{Kind: trace.Load, Addr: math.MaxUint64 - 2, Size: 8}, // wraps: no accesses
		{Kind: trace.Load, Addr: 0x40, Size: 0},               // zero size = one byte
	}
	var tally trace.Counts
	type emission struct {
		slice int
		r     trace.Ref
	}
	var got []emission
	r.Scatter(refs, &tally, func(slice int, rr trace.Ref) {
		got = append(got, emission{slice, rr})
	})

	want := trace.Counts{}
	want.RecordBatch(refs)
	if tally != want {
		t.Errorf("tally = %+v, want %+v (originals counted once each)", tally, want)
	}

	// Reassemble: pieces of each original must be contiguous, granule-
	// confined, and correctly routed.
	checkPieces := func(orig trace.Ref, pieces []emission) {
		t.Helper()
		size := uint64(orig.Size)
		if size == 0 {
			size = 1
		}
		addr := orig.Addr
		var covered uint64
		for _, p := range pieces {
			if p.r.Kind != orig.Kind {
				t.Fatalf("piece kind %v, want %v", p.r.Kind, orig.Kind)
			}
			if p.r.Addr != addr {
				t.Fatalf("piece at %#x, want contiguous from %#x", p.r.Addr, addr)
			}
			psize := uint64(p.r.Size)
			if p.r.Size == 0 {
				psize = 1
			}
			if p.r.Addr/granule != (p.r.Addr+psize-1)/granule {
				t.Fatalf("piece %+v crosses a granule boundary", p.r)
			}
			if p.slice != r.Slice(p.r.Addr) {
				t.Fatalf("piece %+v routed to slice %d, want %d", p.r, p.slice, r.Slice(p.r.Addr))
			}
			addr += psize
			covered += psize
		}
		if covered != size {
			t.Fatalf("pieces cover %d bytes of %+v, want %d", covered, orig, size)
		}
	}
	checkPieces(refs[0], got[0:1])
	checkPieces(refs[1], got[1:3])
	checkPieces(refs[2], got[3:6])
	// refs[3] wraps: nothing emitted. refs[4] is the final single piece.
	checkPieces(refs[4], got[6:])
	if len(got) != 7 {
		t.Fatalf("scatter emitted %d pieces, want 7", len(got))
	}
}

// TestSliceScatterDifferential: scattering a reference stream across
// shard hierarchies and merging must reproduce the serial hierarchy's
// counters exactly. This is the unit-level statement of the set-partition
// argument, independent of the trace file format.
func TestSliceScatterDifferential(t *testing.T) {
	cfg := sliceTestConfig()
	refs := make([]trace.Ref, 0, 60000)
	rng := uint64(7)
	for i := 0; i < 60000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		kind := trace.Kind(rng >> 62 % 3)
		// Small address span so sets collide and evict; occasional large
		// sizes so references span granules.
		addr := rng >> 40 % (1 << 18)
		size := uint8(8)
		if rng%17 == 0 {
			size = uint8(rng>>8) | 1
		}
		refs = append(refs, trace.Ref{Kind: kind, Addr: addr, Size: size})
	}

	serial := MustNewHierarchy(cfg, nil)
	serial.RecordBatch(refs)

	for _, slices := range []int{2, 3, 4} {
		r, err := NewSliceRouter(cfg, slices)
		if err != nil {
			t.Fatal(err)
		}
		shards := make([]*Hierarchy, r.Slices())
		for i := range shards {
			shards[i] = MustNewHierarchy(cfg, nil)
		}
		var tally trace.Counts
		r.Scatter(refs, &tally, func(slice int, rr trace.Ref) {
			shards[slice].Record(rr)
		})
		merged := MustNewHierarchy(cfg, nil)
		for _, sh := range shards {
			if err := merged.Merge(sh); err != nil {
				t.Fatal(err)
			}
		}
		merged.SetRefs(tally)

		if merged.Refs() != serial.Refs() {
			t.Errorf("slices=%d: refs = %+v, want %+v", slices, merged.Refs(), serial.Refs())
		}
		for _, pair := range [][2]*Cache{
			{merged.L1I(), serial.L1I()},
			{merged.L1D(), serial.L1D()},
			{merged.L2(), serial.L2()},
		} {
			if pair[0].Stats() != pair[1].Stats() {
				t.Errorf("slices=%d: %s stats = %+v, want %+v",
					slices, pair[0].Config().Name, pair[0].Stats(), pair[1].Stats())
			}
		}
		if merged.Summarize() != serial.Summarize() {
			t.Errorf("slices=%d: summaries differ", slices)
		}
	}
}

// TestHierarchyMerge: config checks, accumulation, empty-merge no-op.
func TestHierarchyMerge(t *testing.T) {
	cfg := sliceTestConfig()
	a := MustNewHierarchy(cfg, nil)
	b := MustNewHierarchy(cfg, nil)
	refs := []trace.Ref{
		{Kind: trace.Load, Addr: 0x100, Size: 8},
		{Kind: trace.Store, Addr: 0x2000, Size: 8},
		{Kind: trace.IFetch, Addr: 0x400100, Size: 4},
	}
	a.RecordBatch(refs)
	b.RecordBatch(refs)

	sum := MustNewHierarchy(cfg, nil)
	if err := sum.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := sum.Merge(b); err != nil {
		t.Fatal(err)
	}
	if sum.L1D().Stats().Accesses != 2*a.L1D().Stats().Accesses {
		t.Errorf("merged L1D accesses = %d, want %d", sum.L1D().Stats().Accesses, 2*a.L1D().Stats().Accesses)
	}
	sumRefs, aRefs := sum.Refs(), a.Refs()
	if sumRefs.Total() != 2*aRefs.Total() {
		t.Errorf("merged refs = %d, want %d", sumRefs.Total(), 2*aRefs.Total())
	}

	// Merging a fresh hierarchy changes nothing.
	before := sum.Summarize()
	if err := sum.Merge(MustNewHierarchy(cfg, nil)); err != nil {
		t.Fatal(err)
	}
	if sum.Summarize() != before {
		t.Error("merging an empty hierarchy changed counters")
	}

	// Mismatched configurations are rejected.
	other := cfg
	other.L2.Size *= 2
	if err := sum.Merge(MustNewHierarchy(other, nil)); err == nil {
		t.Error("merge across differing L2 configs accepted")
	}
	withL3 := cfg
	withL3.L3 = Config{Name: "L3", Size: 1 << 20, LineSize: 128, Assoc: 8}
	if err := sum.Merge(MustNewHierarchy(withL3, nil)); err == nil {
		t.Error("merge with mismatched L3 presence accepted")
	}

	// SetRefs overrides the tally wholesale.
	var override trace.Counts
	override.ByKind[trace.Load] = 42
	sum.SetRefs(override)
	if sum.Refs() != override {
		t.Errorf("SetRefs: refs = %+v, want %+v", sum.Refs(), override)
	}
}
