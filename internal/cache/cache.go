// Package cache implements the trace-driven cache simulator used by the
// reproduction in place of the paper's modified DineroIII. It provides
// set-associative write-back caches with LRU replacement, a two-level
// hierarchy (split first-level instruction and data caches over a unified
// second-level cache), and single-pass classification of misses into
// compulsory, capacity, and conflict misses in the sense of Hill & Smith:
//
//   - compulsory: the first reference ever made to the line;
//   - capacity:   a non-compulsory miss that a fully-associative LRU cache
//     of the same capacity and line size would also incur;
//   - conflict:   every other miss.
//
// Classification requires a shadow fully-associative model that observes
// the same reference stream as the classified cache, so it is opt-in per
// cache; the experiments enable it only for the second-level cache, whose
// miss breakdown is what the paper reports (Tables 3, 5, 7, 9).
package cache

import (
	"errors"
	"fmt"
	"math/bits"
)

// Config describes one cache level.
type Config struct {
	// Name labels the cache in output ("L1I", "L1D", "L2").
	Name string
	// Size is the capacity in bytes; must be a power of two.
	Size uint64
	// LineSize is the line (block) size in bytes; must be a power of two.
	LineSize uint64
	// Assoc is the set associativity. 0 means fully associative.
	Assoc int
	// Classify enables compulsory/capacity/conflict classification for
	// this cache, at the cost of a shadow fully-associative model.
	Classify bool
	// Repl selects the replacement policy (default LRU).
	Repl Replacement
	// Write selects the write policy (default write-back write-allocate).
	Write WritePolicy
	// Prefetch enables tagged next-line prefetching: a demand miss also
	// fetches the following line (if absent). Prefetches are counted in
	// Stats.Prefetches, not in Accesses/Misses, matching DineroIII's
	// demand-fetch accounting. The 1996 machines did not prefetch; the
	// option exists to model why modern hardware hides streaming misses.
	Prefetch bool
}

// Lines returns the number of lines the cache holds.
func (c Config) Lines() uint64 { return c.Size / c.LineSize }

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() uint64 {
	if c.Assoc <= 0 {
		return 1
	}
	return c.Lines() / uint64(c.Assoc)
}

// String renders the configuration in a compact dinero-like form.
func (c Config) String() string {
	assoc := "full"
	if c.Assoc > 0 {
		assoc = fmt.Sprintf("%d-way", c.Assoc)
	}
	return fmt.Sprintf("%s %dB %s lines=%dB", c.Name, c.Size, assoc, c.LineSize)
}

var errBadConfig = errors.New("cache: invalid configuration")

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Size == 0 || c.Size&(c.Size-1) != 0:
		return fmt.Errorf("%w: size %d not a power of two", errBadConfig, c.Size)
	case c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("%w: line size %d not a power of two", errBadConfig, c.LineSize)
	case c.LineSize > c.Size:
		return fmt.Errorf("%w: line size %d exceeds size %d", errBadConfig, c.LineSize, c.Size)
	case c.Assoc < 0:
		return fmt.Errorf("%w: negative associativity", errBadConfig)
	case c.Assoc > 0 && c.Lines()%uint64(c.Assoc) != 0:
		return fmt.Errorf("%w: %d lines not divisible by associativity %d", errBadConfig, c.Lines(), c.Assoc)
	}
	return nil
}

// Stats accumulates access and miss counts for one cache.
type Stats struct {
	// Accesses is the number of line-granular accesses presented.
	Accesses uint64
	// Reads and Writes split Accesses by direction (instruction fetches
	// count as reads).
	Reads, Writes uint64
	// Misses is the number of accesses that missed.
	Misses uint64
	// Compulsory, Capacity, and Conflict partition Misses when
	// classification is enabled; all zero otherwise.
	Compulsory, Capacity, Conflict uint64
	// Writebacks counts dirty lines evicted.
	Writebacks uint64
	// Prefetches counts next-line fetches issued (when enabled).
	Prefetches uint64
}

// MissRate returns misses per access as a percentage, 0 if no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return 100 * float64(s.Misses) / float64(s.Accesses)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.Misses += other.Misses
	s.Compulsory += other.Compulsory
	s.Capacity += other.Capacity
	s.Conflict += other.Conflict
	s.Writebacks += other.Writebacks
	s.Prefetches += other.Prefetches
}

// line state within a set; order within the set slice encodes recency
// (index 0 is most recently used).
type line struct {
	tag   uint64
	valid bool
	dirty bool
}

// Cache is a single simulated cache level.
type Cache struct {
	cfg       Config
	lineShift uint
	setShift  uint // log2(number of sets), hoisted off the access path
	setMask   uint64
	// lru and wbAlloc hoist the policy comparisons the access paths
	// branch on, so the batch loop reads two booleans instead of
	// re-deriving them from cfg per reference.
	lru     bool
	wbAlloc bool
	sets    [][]line
	stats   Stats

	// lastLn is the line number of the most recent access, when that line
	// is known to still be resident as the MRU entry of its set
	// (lastValid). Consecutive references to one line — the dominant
	// pattern in the dense kernels, where a 128-byte line serves 16
	// sequential doubles — then hit without a set search, an LRU reorder,
	// or a shadow-model touch, all of which are provably no-ops.
	lastLn    uint64
	lastValid bool

	// classification state, nil unless cfg.Classify
	shadow *lruTable
	seen   seenSet

	// rng drives RandomRepl victim selection, deterministically.
	rng uint64
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Sets()
	ways := cfg.Assoc
	if ways <= 0 {
		ways = int(cfg.Lines())
	}
	sets := make([][]line, nsets)
	backing := make([]line, nsets*uint64(ways))
	for i := range sets {
		sets[i] = backing[uint64(i)*uint64(ways) : (uint64(i)+1)*uint64(ways)]
	}
	c := &Cache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros64(cfg.LineSize)),
		setShift:  uint(bits.TrailingZeros64(nsets)),
		setMask:   nsets - 1,
		lru:       cfg.Repl == LRU,
		wbAlloc:   cfg.Write == WriteBackAllocate,
		sets:      sets,
	}
	if cfg.Classify {
		c.shadow = newLRUTable(int(cfg.Lines()))
		c.seen.init()
	}
	return c, nil
}

// MustNew is New, panicking on configuration errors; for use with the
// fixed machine-model configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the current counters.
func (c *Cache) Stats() Stats { return c.stats }

// LineOf returns the line number containing byte address addr.
func (c *Cache) LineOf(addr uint64) uint64 { return addr >> c.lineShift }

// Access presents one line-granular access (the address may be any byte in
// the line). It returns true on a hit. On a miss the line is allocated
// (write-allocate), possibly evicting the LRU line of the set.
func (c *Cache) Access(addr uint64, write bool) bool {
	if write {
		return c.AccessWrite(addr)
	}
	return c.AccessRead(addr)
}

// AccessRead is Access specialized for reads (and instruction fetches):
// no dirty-bit bookkeeping, one stats increment path, and a same-line
// fast hit that skips the set search entirely.
func (c *Cache) AccessRead(addr uint64) bool {
	ln := addr >> c.lineShift
	c.stats.Accesses++
	c.stats.Reads++
	if c.lastValid && ln == c.lastLn {
		// The line is resident and already the MRU entry of its set, so
		// recency refresh, shadow touch, and dirty update are all no-ops.
		return true
	}
	return c.lookup(ln, false)
}

// AccessWrite is Access specialized for writes. The same-line fast path
// is taken only under LRU, where the previous access is known to sit at
// way 0 and the dirty bit can be set without a search.
func (c *Cache) AccessWrite(addr uint64) bool {
	ln := addr >> c.lineShift
	c.stats.Accesses++
	c.stats.Writes++
	if c.lastValid && ln == c.lastLn && c.lru {
		if c.wbAlloc {
			c.sets[ln&c.setMask][0].dirty = true
		}
		return true
	}
	return c.lookup(ln, true)
}

// lookup is the shared slow path: shadow touch, set search, and miss
// handling. It maintains the lastLn invariant: on return, lastValid
// implies lastLn is resident as the MRU entry of its set.
func (c *Cache) lookup(ln uint64, write bool) bool {
	shadowHit := true
	if c.shadow != nil {
		shadowHit = c.shadow.touch(ln)
	}

	set := c.sets[ln&c.setMask]
	tag := ln >> c.setShift
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			// Hit. Under LRU, refresh to the MRU position; FIFO and
			// random replacement leave residency order alone.
			dirty := write && c.wbAlloc
			if c.lru {
				hit := set[i]
				copy(set[1:i+1], set[:i])
				hit.dirty = hit.dirty || dirty
				set[0] = hit
			} else if dirty {
				set[i].dirty = true
			}
			// Under LRU the line is now the MRU entry of its set; under
			// FIFO/random, hits never reorder, so residency alone makes
			// a repeat access a no-op (the write fast path additionally
			// requires LRU and does not fire here).
			c.lastLn, c.lastValid = ln, true
			return true
		}
	}

	// Miss.
	c.stats.Misses++
	if c.shadow != nil {
		if !c.seen.testAndSet(ln) {
			c.stats.Compulsory++
		} else if !shadowHit {
			c.stats.Capacity++
		} else {
			c.stats.Conflict++
		}
	}
	if write && c.cfg.Write == WriteThroughNoAllocate {
		// Write misses do not allocate; the write goes to the next level
		// (the hierarchy routes it). Residency is unchanged, so the
		// lastLn invariant still holds for the previous line.
		return false
	}
	c.allocate(ln, set, tag, write && c.wbAlloc)
	c.lastLn, c.lastValid = ln, true
	if c.cfg.Prefetch {
		// Prefetch after publishing lastLn: if the prefetched line evicts
		// it (a one-set cache), evictCheck clears the fast path again.
		c.prefetch(ln + 1)
	}
	return false
}

// prefetch installs line ln if absent, without touching demand counters.
func (c *Cache) prefetch(ln uint64) {
	set := c.sets[ln&c.setMask]
	tag := ln >> c.setShift
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return
		}
	}
	c.stats.Prefetches++
	c.allocate(ln, set, tag, false)
}

// allocate installs the line ln (whose set and tag are pre-computed) over
// the policy-selected victim. If the victim is the fast-path line, the
// fast path is disabled until the next slow-path access re-establishes it.
func (c *Cache) allocate(ln uint64, set []line, tag uint64, dirty bool) {
	if c.cfg.Repl == RandomRepl {
		// Prefer an invalid way; otherwise evict a pseudo-random one.
		idx := -1
		for i := range set {
			if !set[i].valid {
				idx = i
				break
			}
		}
		if idx < 0 {
			c.rng = c.rng*6364136223846793005 + 1442695040888963407
			idx = int((c.rng >> 33) % uint64(len(set)))
		}
		c.evictCheck(set[idx], ln)
		set[idx] = line{tag: tag, valid: true, dirty: dirty}
		return
	}
	// LRU and FIFO both evict the tail and insert at the head; they
	// differ only in whether hits refresh the order.
	c.evictCheck(set[len(set)-1], ln)
	copy(set[1:], set[:len(set)-1])
	set[0] = line{tag: tag, valid: true, dirty: dirty}
}

// evictCheck accounts a victim eviction: writeback if dirty, and fast-path
// invalidation if the victim is the cached last-accessed line.
func (c *Cache) evictCheck(victim line, ln uint64) {
	if !victim.valid {
		return
	}
	if victim.dirty {
		c.stats.Writebacks++
	}
	if victim.tag<<c.setShift|(ln&c.setMask) == c.lastLn {
		c.lastValid = false
	}
}

// Contains reports whether the line holding addr is currently resident.
// It does not disturb LRU state; intended for tests and invariants.
func (c *Cache) Contains(addr uint64) bool {
	ln := addr >> c.lineShift
	set := c.sets[ln&c.setMask]
	tag := ln >> c.setShift
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// ResidentLines returns the set of line numbers currently cached; for
// tests and invariants.
func (c *Cache) ResidentLines() map[uint64]bool {
	setBits := c.setShift
	out := make(map[uint64]bool)
	for si, set := range c.sets {
		for _, l := range set {
			if l.valid {
				out[l.tag<<setBits|uint64(si)] = true
			}
		}
	}
	return out
}

// Invalidate removes the line holding addr if resident, returning whether
// it was present. Used by the SMP coherence model; invalidated dirty
// lines count as writebacks (they would be flushed or transferred).
func (c *Cache) Invalidate(addr uint64) bool {
	ln := addr >> c.lineShift
	set := c.sets[ln&c.setMask]
	tag := ln >> c.setShift
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			if set[i].dirty {
				c.stats.Writebacks++
			}
			set[i] = line{}
			if ln == c.lastLn {
				c.lastValid = false
			}
			return true
		}
	}
	return false
}

// Reset clears cache contents and counters, including classification
// history (so the next touch of any line is compulsory again).
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.stats = Stats{}
	c.lastValid = false
	if c.cfg.Classify {
		c.shadow = newLRUTable(int(c.cfg.Lines()))
		c.seen.init()
	}
}
