package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refCache is a deliberately naive set-associative LRU model: per set, a
// slice ordered most-recent-first. The real Cache must agree with it
// hit-for-hit on arbitrary streams.
type refCache struct {
	lineSize uint64
	sets     []([]uint64)
	ways     int
	dirty    map[uint64]bool
	wb       uint64
}

func newRefCache(cfg Config) *refCache {
	ways := cfg.Assoc
	if ways <= 0 {
		ways = int(cfg.Lines())
	}
	return &refCache{
		lineSize: cfg.LineSize,
		sets:     make([][]uint64, cfg.Sets()),
		ways:     ways,
		dirty:    make(map[uint64]bool),
	}
}

func (r *refCache) access(addr uint64, write bool) bool {
	ln := addr / r.lineSize
	si := ln % uint64(len(r.sets))
	set := r.sets[si]
	for i, v := range set {
		if v == ln {
			set = append(append([]uint64{ln}, set[:i]...), set[i+1:]...)
			r.sets[si] = set
			if write {
				r.dirty[ln] = true
			}
			return true
		}
	}
	set = append([]uint64{ln}, set...)
	if len(set) > r.ways {
		victim := set[len(set)-1]
		if r.dirty[victim] {
			r.wb++
			delete(r.dirty, victim)
		}
		set = set[:len(set)-1]
	}
	r.sets[si] = set
	if write {
		r.dirty[ln] = true
	} else {
		delete(r.dirty, ln)
	}
	return false
}

// Property: the production cache matches the naive model access by
// access — hits, misses, and writeback counts — for random geometries and
// streams.
func TestCacheMatchesReferenceModelProperty(t *testing.T) {
	f := func(seed int64, sizeSel, lineSel, assocSel uint8) bool {
		lineSize := uint64(16) << (lineSel % 3)           // 16/32/64
		size := lineSize * 8 << (sizeSel % 4)             // 8..64 lines
		assoc := []int{1, 2, 4, 0}[assocSel%4]            // incl. fully assoc
		if assoc > 0 && size/lineSize < uint64(assoc)*2 { // keep ≥2 sets
			assoc = 1
		}
		cfg := Config{Name: "T", Size: size, LineSize: lineSize, Assoc: assoc}
		if cfg.Validate() != nil {
			return true // skip impossible geometry draws
		}
		real, err := New(cfg)
		if err != nil {
			return false
		}
		ref := newRefCache(cfg)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3000; i++ {
			addr := uint64(rng.Intn(int(size * 4)))
			write := rng.Intn(3) == 0
			if real.Access(addr, write) != ref.access(addr, write) {
				return false
			}
		}
		return real.Stats().Writebacks == ref.wb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the same agreement holds on run-heavy streams — bursts of
// consecutive accesses to one line with mixed reads and writes, the
// pattern that arms the same-line fast path (lastLn) — including its
// invalidation by conflicting allocations between bursts.
func TestCacheFastPathMatchesReferenceOnRuns(t *testing.T) {
	f := func(seed int64, assocSel uint8) bool {
		cfg := Config{Name: "T", Size: 1 << 12, LineSize: 64,
			Assoc: []int{1, 2, 4, 0}[assocSel%4]}
		real := MustNew(cfg)
		ref := newRefCache(cfg)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 800; i++ {
			base := uint64(rng.Intn(1 << 14))
			runLen := 1 + rng.Intn(20)
			for j := 0; j < runLen; j++ {
				addr := base + uint64(rng.Intn(int(cfg.LineSize)))
				if rng.Intn(4) == 0 { // occasional conflicting line mid-run
					addr += cfg.Size * uint64(1+rng.Intn(3))
				}
				write := rng.Intn(3) == 0
				if real.Access(addr, write) != ref.access(addr, write) {
					return false
				}
			}
		}
		return real.Stats().Writebacks == ref.wb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
