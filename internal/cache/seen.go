package cache

// seenBlockLines is the number of lines tracked per seenSet block; 512
// single-bit entries make a 64-byte block, one cache line of the host.
const seenBlockLines = 512

type seenBlock [seenBlockLines / 64]uint64

// seenSet records which line numbers have ever been referenced, for
// compulsory-miss classification. It replaces a map[uint64]struct{} —
// which paid a hash probe and, on growth, a rehash per first touch — with
// a sparse bitmap of 512-line blocks plus a one-entry block cache: the
// dense kernels sweep addresses sequentially, so consecutive misses
// almost always land in the block the previous miss resolved.
type seenSet struct {
	blocks  map[uint64]*seenBlock
	lastKey uint64
	last    *seenBlock
}

func (s *seenSet) init() {
	s.blocks = make(map[uint64]*seenBlock)
	s.last = nil
	s.lastKey = 0
}

// testAndSet reports whether line ln was already seen, marking it seen.
func (s *seenSet) testAndSet(ln uint64) bool {
	key := ln / seenBlockLines
	b := s.last
	if b == nil || key != s.lastKey {
		b = s.blocks[key]
		if b == nil {
			b = new(seenBlock)
			s.blocks[key] = b
		}
		s.lastKey, s.last = key, b
	}
	word, bit := (ln%seenBlockLines)/64, uint64(1)<<(ln%64)
	if b[word]&bit != 0 {
		return true
	}
	b[word] |= bit
	return false
}
