package cache

import (
	"testing"

	"threadsched/internal/trace"
)

// benchConfig is an R8000-like 4-way L2 at reduced capacity, the shape the
// experiments hammer hardest.
func benchConfig(classify bool) Config {
	return Config{Name: "L2", Size: 1 << 17, LineSize: 128, Assoc: 4, Classify: classify}
}

// benchAddrs mixes a sequential sweep (the dense kernels' common case)
// with a strided conflict pattern, sized to overflow the cache so hits,
// misses, and evictions all stay on the profile.
func benchAddrs(n int) []uint64 {
	addrs := make([]uint64, n)
	for i := range addrs {
		if i%8 == 7 {
			addrs[i] = uint64(i) * 4096 // strided: conflict pressure
		} else {
			addrs[i] = uint64(i) * 8 // sequential sweep
		}
	}
	return addrs
}

// BenchmarkCacheAccess measures the single-access hot path of the
// simulator, split by direction and classification, since the batched
// reference loop is a tight range over calls to Access.
func BenchmarkCacheAccess(b *testing.B) {
	addrs := benchAddrs(1 << 16)
	for _, bc := range []struct {
		name     string
		classify bool
		write    bool
	}{
		{"read", false, false},
		{"write", false, true},
		{"read-classified", true, false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			c := MustNew(benchConfig(bc.classify))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Access(addrs[i&(len(addrs)-1)], bc.write)
			}
		})
	}
}

// BenchmarkHierarchyRecord measures the full per-reference pipeline cost:
// one data reference presented to the two-level hierarchy, per-ref
// interface path versus the batched path.
func BenchmarkHierarchyRecord(b *testing.B) {
	cfg := HierarchyConfig{
		L1I: Config{Name: "L1I", Size: 1 << 14, LineSize: 32, Assoc: 1},
		L1D: Config{Name: "L1D", Size: 1 << 14, LineSize: 32, Assoc: 1},
		L2:  Config{Name: "L2", Size: 1 << 17, LineSize: 128, Assoc: 4, Classify: true},
	}
	addrs := benchAddrs(1 << 16)
	refs := make([]trace.Ref, len(addrs))
	for i, a := range addrs {
		k := trace.Load
		if i%4 == 3 {
			k = trace.Store
		}
		refs[i] = trace.Ref{Kind: k, Addr: a, Size: 8}
	}
	b.Run("record", func(b *testing.B) {
		h := MustNewHierarchy(cfg, nil)
		var rec trace.Recorder = h
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.Record(refs[i&(len(refs)-1)])
		}
	})
	b.Run("batch", func(b *testing.B) {
		h := MustNewHierarchy(cfg, nil)
		var rec trace.Recorder = h
		b.ReportAllocs()
		b.ResetTimer()
		for done := 0; done < b.N; done += trace.DefaultChunk {
			n := trace.DefaultChunk
			if b.N-done < n {
				n = b.N - done
			}
			trace.RecordBatch(rec, refs[:n])
		}
	})
}
