package cache

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%v): %v", cfg, err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "L1", Size: 1024, LineSize: 32, Assoc: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Size: 0, LineSize: 32, Assoc: 1},
		{Size: 1000, LineSize: 32, Assoc: 1},     // size not power of two
		{Size: 1024, LineSize: 0, Assoc: 1},      // zero line
		{Size: 1024, LineSize: 33, Assoc: 1},     // line not power of two
		{Size: 64, LineSize: 128, Assoc: 1},      // line > size
		{Size: 1024, LineSize: 32, Assoc: -1},    // negative assoc
		{Size: 1024, LineSize: 32, Assoc: 3},     // lines not divisible
		{Size: 1 << 20, LineSize: 32, Assoc: 48}, // not power-of-two sets
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v validated, want error", cfg)
		}
	}
}

func TestConfigGeometry(t *testing.T) {
	cfg := Config{Size: 2 << 20, LineSize: 128, Assoc: 4}
	if cfg.Lines() != 16384 {
		t.Errorf("Lines = %d, want 16384", cfg.Lines())
	}
	if cfg.Sets() != 4096 {
		t.Errorf("Sets = %d, want 4096", cfg.Sets())
	}
	full := Config{Size: 1024, LineSize: 32, Assoc: 0}
	if full.Sets() != 1 {
		t.Errorf("fully associative Sets = %d, want 1", full.Sets())
	}
	if s := cfg.String(); !strings.Contains(s, "4-way") {
		t.Errorf("String() = %q, want it to mention 4-way", s)
	}
	if s := full.String(); !strings.Contains(s, "full") {
		t.Errorf("String() = %q, want it to mention full", s)
	}
}

func TestHitMissBasics(t *testing.T) {
	c := mustCache(t, Config{Size: 256, LineSize: 32, Assoc: 2})
	if c.Access(0, false) {
		t.Fatal("first access hit")
	}
	if !c.Access(0, false) {
		t.Fatal("second access missed")
	}
	if !c.Access(31, false) {
		t.Fatal("same-line access missed")
	}
	if c.Access(32, false) {
		t.Fatal("next-line access hit")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUReplacementWithinSet(t *testing.T) {
	// 2-way, 2 sets, 32B lines (128B total). Lines 0,2,4 share set 0.
	c := mustCache(t, Config{Size: 128, LineSize: 32, Assoc: 2})
	c.Access(0*32, false)
	c.Access(2*32, false)
	c.Access(0*32, false) // line 0 now MRU
	c.Access(4*32, false) // evicts line 2 (LRU)
	if !c.Contains(0 * 32) {
		t.Error("line 0 evicted, but it was MRU")
	}
	if c.Contains(2 * 32) {
		t.Error("line 2 still resident, but it was LRU")
	}
	if !c.Contains(4 * 32) {
		t.Error("line 4 not resident after allocation")
	}
}

func TestWritebackCounting(t *testing.T) {
	// Direct-mapped, 1 set of interest: lines 0 and 4 conflict.
	c := mustCache(t, Config{Size: 128, LineSize: 32, Assoc: 1})
	c.Access(0, true)     // allocate dirty
	c.Access(4*32, false) // evicts dirty line 0
	st := c.Stats()
	if st.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", st.Writebacks)
	}
	c.Access(0, false)    // clean allocate
	c.Access(4*32, false) // evicts clean line 0
	if c.Stats().Writebacks != 1 {
		t.Fatalf("clean eviction counted as writeback")
	}
}

func TestReadWriteSplit(t *testing.T) {
	c := mustCache(t, Config{Size: 128, LineSize: 32, Assoc: 1})
	c.Access(0, false)
	c.Access(32, true)
	c.Access(64, true)
	st := c.Stats()
	if st.Reads != 1 || st.Writes != 2 {
		t.Fatalf("reads/writes = %d/%d, want 1/2", st.Reads, st.Writes)
	}
}

func TestMissClassificationSimple(t *testing.T) {
	// Direct-mapped 4-line cache; classification enabled.
	c := mustCache(t, Config{Size: 128, LineSize: 32, Assoc: 1, Classify: true})
	// Touch 4 distinct lines mapping to distinct sets: all compulsory.
	for i := uint64(0); i < 4; i++ {
		c.Access(i*32, false)
	}
	st := c.Stats()
	if st.Compulsory != 4 || st.Capacity != 0 || st.Conflict != 0 {
		t.Fatalf("after cold touches: %+v", st)
	}
	// Line 4 maps to set 0 (conflicts with line 0) but the fully
	// associative shadow is now full, so its miss is compulsory; then
	// re-touching line 0 misses in the real cache. The shadow holds
	// {1,2,3,4} so line 0 also misses there: capacity.
	c.Access(4*32, false)
	c.Access(0, false)
	st = c.Stats()
	if st.Compulsory != 5 {
		t.Errorf("compulsory = %d, want 5", st.Compulsory)
	}
	if st.Capacity != 1 {
		t.Errorf("capacity = %d, want 1", st.Capacity)
	}
}

func TestConflictMissDetected(t *testing.T) {
	// Direct-mapped, 4 lines. Working set of 2 lines that conflict:
	// fits capacity-wise, so repeated misses are conflict misses.
	c := mustCache(t, Config{Size: 128, LineSize: 32, Assoc: 1, Classify: true})
	for i := 0; i < 10; i++ {
		c.Access(0, false)    // set 0
		c.Access(4*32, false) // also set 0
	}
	st := c.Stats()
	if st.Compulsory != 2 {
		t.Errorf("compulsory = %d, want 2", st.Compulsory)
	}
	if st.Conflict != st.Misses-2 {
		t.Errorf("conflict = %d, want %d (all non-cold misses)", st.Conflict, st.Misses-2)
	}
	if st.Capacity != 0 {
		t.Errorf("capacity = %d, want 0 for a 2-line working set", st.Capacity)
	}
}

func TestFullyAssociativeHasNoConflictMisses(t *testing.T) {
	f := func(seed int64) bool {
		c, err := New(Config{Size: 512, LineSize: 32, Assoc: 0, Classify: true})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			c.Access(uint64(rng.Intn(64))*32, rng.Intn(2) == 0)
		}
		return c.Stats().Conflict == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestClassificationPartitionsMisses(t *testing.T) {
	f := func(seed int64, assocSel uint8) bool {
		assoc := []int{1, 2, 4, 0}[assocSel%4]
		c, err := New(Config{Size: 1024, LineSize: 32, Assoc: assoc, Classify: true})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 5000; i++ {
			// Mix of sequential and random references over 4x capacity.
			var addr uint64
			if rng.Intn(2) == 0 {
				addr = uint64(i%128) * 32
			} else {
				addr = uint64(rng.Intn(128)) * 32
			}
			c.Access(addr, rng.Intn(4) == 0)
		}
		st := c.Stats()
		return st.Compulsory+st.Capacity+st.Conflict == st.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: a larger fully-associative LRU cache never misses more than a
// smaller one on the same stream (the LRU stack inclusion property).
func TestLRUStackInclusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		small, _ := New(Config{Size: 256, LineSize: 32, Assoc: 0})
		big, _ := New(Config{Size: 1024, LineSize: 32, Assoc: 0})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3000; i++ {
			addr := uint64(rng.Intn(256)) * 32
			small.Access(addr, false)
			big.Access(addr, false)
		}
		return big.Stats().Misses <= small.Stats().Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: higher associativity at equal capacity never increases miss
// count on a stream that a fully associative cache could hold... not true
// in general (Belady anomalies exist for non-LRU), but LRU set-associative
// caches of equal capacity CAN miss more with lower associativity; what is
// always true is that the real cache can never beat the fully-associative
// shadow plus compulsory on totals. Check: misses >= cold misses and
// misses >= fully-assoc misses is NOT guaranteed... so instead verify the
// invariant we rely on for classification: compulsory misses equal the
// number of distinct lines referenced.
func TestCompulsoryEqualsDistinctLines(t *testing.T) {
	f := func(addrs []uint16) bool {
		c, _ := New(Config{Size: 256, LineSize: 32, Assoc: 2, Classify: true})
		distinct := make(map[uint64]bool)
		for _, a := range addrs {
			addr := uint64(a)
			c.Access(addr, false)
			distinct[addr>>5] = true
		}
		return c.Stats().Compulsory == uint64(len(distinct))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResidentLines(t *testing.T) {
	c := mustCache(t, Config{Size: 128, LineSize: 32, Assoc: 2})
	c.Access(0, false)
	c.Access(96, false)
	res := c.ResidentLines()
	if !res[0] || !res[3] {
		t.Fatalf("resident = %v, want lines 0 and 3", res)
	}
	if len(res) != 2 {
		t.Fatalf("resident = %v, want exactly 2 lines", res)
	}
}

func TestReset(t *testing.T) {
	c := mustCache(t, Config{Size: 128, LineSize: 32, Assoc: 1, Classify: true})
	c.Access(0, true)
	c.Reset()
	if c.Stats() != (Stats{}) {
		t.Fatalf("stats after reset: %+v", c.Stats())
	}
	if c.Contains(0) {
		t.Fatal("line survived reset")
	}
	if c.Access(0, false) {
		t.Fatal("hit after reset")
	}
	if c.Stats().Compulsory != 1 {
		t.Fatal("classification history survived reset")
	}
}

func TestStatsAddAndMissRate(t *testing.T) {
	a := Stats{Accesses: 100, Misses: 10, Compulsory: 1, Capacity: 2, Conflict: 7}
	b := Stats{Accesses: 100, Misses: 30}
	a.Add(b)
	if a.Accesses != 200 || a.Misses != 40 {
		t.Fatalf("Add = %+v", a)
	}
	if got := a.MissRate(); got != 20 {
		t.Errorf("MissRate = %v, want 20", got)
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("zero-access MissRate should be 0")
	}
}

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{Size: 3})
}
