package cache

import (
	"errors"
	"fmt"
	"math/bits"

	"threadsched/internal/trace"
)

// Address-sliced simulation support. A set-associative cache partitions
// the address space by set index, and LRU/FIFO replacement makes each
// set's state a pure function of the subsequence of references that map
// to it. Two references can therefore interact only when they share a set
// at some level of the hierarchy, and a partition of the address space
// that never separates such a pair can be simulated as independent shards
// — each consuming its own references in global order — with merged
// counters bit-identical to the serial simulation.
//
// SliceRouter computes that partition. For a level with line size 2^l and
// 2^s sets, the set index is address bits [l, l+s); two addresses share a
// set at that level iff they agree on those bits. "May interact at some
// level" is the union of those relations, and its transitive closure is
// agreement on the bits every level indexes with — the intersection
// [L, H) of the per-level ranges, L = max(l_i), H = min(l_i + s_i). Those
// common bits are the routing class: addresses in different classes share
// a set at no level, so distributing classes across slices never splits
// an interacting pair.

// ErrUnsliceable reports a hierarchy configuration whose simulation is
// not address-separable: some feature couples state across sets (global
// classification stacks, shared replacement randomness, cross-line
// prefetch), or the levels' set-index bit ranges have an empty
// intersection so every pair of addresses may interact at some level.
var ErrUnsliceable = errors.New("cache: hierarchy is not address-sliceable")

// SliceRouter routes references to slices by address class, splitting
// references that span class-granule boundaries so every emitted piece
// lies in exactly one class.
type SliceRouter struct {
	shift   uint   // L: low bit of the common set-index range
	mask    uint64 // classes-1, applied after the shift
	classes int
	slices  int
}

// NewSliceRouter builds a router for cfg distributing classes over up to
// slices slices (clamped to the class count; slices must be >= 1). It
// returns an error wrapping ErrUnsliceable when the configuration's
// simulation is not address-separable. The caller must not attach a page
// table or TLB to the sliced hierarchies: translation invalidates the
// bit-range analysis, and a TLB is a global LRU shared by all addresses.
func NewSliceRouter(cfg HierarchyConfig, slices int) (*SliceRouter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if slices < 1 {
		return nil, fmt.Errorf("cache: NewSliceRouter: %d slices", slices)
	}
	levels := []Config{cfg.L1I, cfg.L1D, cfg.L2}
	if cfg.HasL3() {
		levels = append(levels, cfg.L3)
	}
	lo, hi := uint(0), uint(64)
	for _, c := range levels {
		switch {
		case c.Classify:
			// The shadow fully-associative model is one global LRU stack:
			// every reference reorders it, so any two references interact.
			return nil, fmt.Errorf("%w: %s classifies misses (global shadow stack)", ErrUnsliceable, c.Name)
		case c.Repl == RandomRepl:
			// Victim selection draws from one rng shared by all sets; the
			// draw sequence depends on the interleaving across sets.
			return nil, fmt.Errorf("%w: %s uses random replacement (shared rng)", ErrUnsliceable, c.Name)
		case c.Prefetch:
			// A demand miss on line n installs line n+1, which may belong
			// to a different class.
			return nil, fmt.Errorf("%w: %s prefetches across lines", ErrUnsliceable, c.Name)
		}
		l := uint(bits.TrailingZeros64(c.LineSize))
		s := uint(bits.TrailingZeros64(c.Sets()))
		if l > lo {
			lo = l
		}
		if l+s < hi {
			hi = l + s
		}
	}
	if hi <= lo {
		return nil, fmt.Errorf("%w: set-index bit ranges have an empty intersection", ErrUnsliceable)
	}
	classes := 1 << (hi - lo)
	if slices > classes {
		slices = classes
	}
	return &SliceRouter{shift: lo, mask: uint64(classes - 1), classes: classes, slices: slices}, nil
}

// Classes returns the number of distinct address classes; slices beyond
// this count can never receive a reference.
func (s *SliceRouter) Classes() int { return s.classes }

// Slices returns the effective slice count (the requested count clamped
// to Classes).
func (s *SliceRouter) Slices() int { return s.slices }

// Slice returns the slice index for an address. Addresses in the same
// class always land in the same slice.
func (s *SliceRouter) Slice(addr uint64) int {
	return int((addr >> s.shift & s.mask) % uint64(s.slices))
}

// Scatter routes refs in order: each reference is tallied once into
// tally, split at class-granule (coarsest set-index granule, 2^L byte)
// boundaries if it spans them, and each piece emitted to its slice. The
// granule is a multiple of every level's line size, so splitting there
// preserves the exact per-line access sequence the serial simulator
// performs — piece boundaries coincide with line boundaries at every
// level. A reference whose address range wraps the address space is
// tallied but emits nothing, matching the serial simulator (its line loop
// is empty when first > last).
func (s *SliceRouter) Scatter(refs []trace.Ref, tally *trace.Counts, emit func(slice int, r trace.Ref)) {
	granule := uint64(1) << s.shift
	for i := range refs {
		r := refs[i]
		tally.ByKind[r.Kind]++
		size := uint64(r.Size)
		if size == 0 {
			size = 1
		}
		end := r.Addr + size - 1
		if end < r.Addr {
			continue // address-space wrap: the serial line loop is empty
		}
		if r.Addr>>s.shift == end>>s.shift {
			emit(s.Slice(r.Addr), r)
			continue
		}
		// Spanning reference: one piece per granule block. Each piece's
		// size fits uint8 because the original Size did.
		addr := r.Addr
		for addr <= end && addr >= r.Addr {
			blkEnd := (addr | (granule - 1))
			if blkEnd > end {
				blkEnd = end
			}
			emit(s.Slice(addr), trace.Ref{Kind: r.Kind, Addr: addr, Size: uint8(blkEnd - addr + 1)})
			addr = blkEnd + 1
		}
	}
}
