package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLRUTableBasics(t *testing.T) {
	lt := newLRUTable(3)
	for _, ln := range []uint64{1, 2, 3} {
		if lt.touch(ln) {
			t.Fatalf("cold touch of %d hit", ln)
		}
	}
	if lt.len() != 3 {
		t.Fatalf("len = %d, want 3", lt.len())
	}
	if !lt.touch(1) {
		t.Fatal("warm touch of 1 missed")
	}
	// Insert 4: evicts LRU, which is 2 (order now 1,3,2 from MRU).
	if lt.touch(4) {
		t.Fatal("cold touch of 4 hit")
	}
	if lt.contains(2) {
		t.Fatal("2 not evicted")
	}
	for _, ln := range []uint64{1, 3, 4} {
		if !lt.contains(ln) {
			t.Fatalf("%d evicted unexpectedly", ln)
		}
	}
}

func TestLRUTableCapacityOne(t *testing.T) {
	lt := newLRUTable(1)
	lt.touch(10)
	if !lt.touch(10) {
		t.Fatal("re-touch missed")
	}
	lt.touch(11)
	if lt.contains(10) {
		t.Fatal("10 survived eviction in capacity-1 table")
	}
	if !lt.contains(11) {
		t.Fatal("11 missing")
	}
}

func TestLRUTableZeroCapacityClamped(t *testing.T) {
	lt := newLRUTable(0)
	lt.touch(1)
	if lt.len() != 1 {
		t.Fatalf("len = %d, want 1", lt.len())
	}
}

// Property: the table never exceeds capacity and exactly matches a naive
// reference implementation.
func TestLRUTableMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64, capSel uint8) bool {
		capacity := int(capSel%16) + 1
		lt := newLRUTable(capacity)
		var ref []uint64 // MRU first
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			ln := uint64(rng.Intn(capacity * 3))
			// Reference model.
			refHit := false
			for j, v := range ref {
				if v == ln {
					ref = append(ref[:j], ref[j+1:]...)
					refHit = true
					break
				}
			}
			ref = append([]uint64{ln}, ref...)
			if len(ref) > capacity {
				ref = ref[:capacity]
			}
			if lt.touch(ln) != refHit {
				return false
			}
			if lt.len() != len(ref) {
				return false
			}
		}
		for _, v := range ref {
			if !lt.contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
