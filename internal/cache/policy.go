package cache

// Replacement and write policies, for DineroIII-style configuration
// sweeps beyond the paper's fixed LRU/write-back setup. The experiments
// in the paper all use LRU write-allocate caches (the defaults here); the
// extra policies support the ablation harness and make the simulator a
// general substrate.

// Replacement selects the victim line within a set.
type Replacement int

const (
	// LRU evicts the least-recently-used line (default; what the paper's
	// machines and DineroIII runs model).
	LRU Replacement = iota
	// FIFO evicts the oldest-allocated line; hits do not refresh.
	FIFO
	// RandomRepl evicts a deterministically pseudo-random way.
	RandomRepl
)

// String names the replacement policy.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case RandomRepl:
		return "random"
	default:
		return "replacement?"
	}
}

// WritePolicy selects write handling.
type WritePolicy int

const (
	// WriteBackAllocate: writes allocate on miss and dirty the line;
	// dirty evictions count as writebacks (default).
	WriteBackAllocate WritePolicy = iota
	// WriteThroughNoAllocate: writes never allocate; every write
	// propagates to the next level (the hierarchy issues it), and lines
	// are never dirty.
	WriteThroughNoAllocate
)

// String names the write policy.
func (w WritePolicy) String() string {
	switch w {
	case WriteBackAllocate:
		return "wb+wa"
	case WriteThroughNoAllocate:
		return "wt+nwa"
	default:
		return "write?"
	}
}
