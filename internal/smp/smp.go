// Package smp demonstrates the paper's §7 conjecture — "the idea proposed
// in this paper can be extended in a straightforward manner to improve
// performance on symmetric multiprocessors, but this remains to be
// demonstrated" — as a deterministic simulation: P processors, each with
// its own private cache hierarchy, an invalidation-based coherence model
// between the private caches, and bin-granular dispatch of the locality
// scheduler's ready list across processors.
//
// Because one bin executes entirely on one processor, the per-bin working
// set lands in a single cache (the uniprocessor benefit survives), and
// spatially adjacent bins tend to share read-mostly data, bounding
// invalidation traffic — the processor/thread affinity effect the paper's
// §5 discusses via Squillante & Lazowska. The contrast experiment
// scatters the same threads across processors (tiny scheduling blocks ⇒
// one thread per bin), which destroys both effects.
package smp

import (
	"fmt"
	"time"

	"threadsched/internal/cache"
	"threadsched/internal/machine"
	"threadsched/internal/sim"
	"threadsched/internal/trace"
)

// Config parameterizes the simulated multiprocessor.
type Config struct {
	// Procs is the processor count; must be 1..64.
	Procs int
	// Machine supplies the per-processor cache geometry and timing.
	Machine machine.Machine
	// Coherence enables write-invalidation between the private caches.
	Coherence bool
}

// Proc is one simulated processor's private state.
type Proc struct {
	// Hier is the processor's private cache hierarchy.
	Hier *cache.Hierarchy
	// Instructions executed on this processor.
	Instructions uint64
	// Refs routed to this processor.
	Refs uint64
}

// Stats aggregates coherence traffic.
type Stats struct {
	// Invalidations counts lines removed from a remote cache by a write.
	Invalidations uint64
	// SharedWrites counts writes that hit lines resident elsewhere.
	SharedWrites uint64
}

// System is the simulated multiprocessor. It exposes one model CPU whose
// reference stream is routed to the currently selected processor; drive
// it with core.Scheduler.RunEach, switching processors per bin.
type System struct {
	cfg   Config
	procs []*Proc
	cpu   *sim.CPU
	cur   int
	stats Stats

	// dir maps an L2 line number to the bitmask of processors whose
	// private hierarchy may hold it.
	dir       map[uint64]uint64
	l2Line    uint64
	lastInstr uint64
}

// New builds a multiprocessor from cfg.
func New(cfg Config) (*System, error) {
	if cfg.Procs < 1 || cfg.Procs > 64 {
		return nil, fmt.Errorf("smp: procs %d out of range 1..64", cfg.Procs)
	}
	s := &System{
		cfg:    cfg,
		dir:    make(map[uint64]uint64),
		l2Line: cfg.Machine.Caches.L2.LineSize,
	}
	for p := 0; p < cfg.Procs; p++ {
		h, err := cache.NewHierarchy(cfg.Machine.Caches, nil)
		if err != nil {
			return nil, err
		}
		s.procs = append(s.procs, &Proc{Hier: h})
	}
	s.cpu = sim.NewCPU(routerRecorder{s})
	return s, nil
}

// CPU returns the model CPU traced workloads should record through.
func (s *System) CPU() *sim.CPU { return s.cpu }

// Procs returns the processor count.
func (s *System) Procs() int { return len(s.procs) }

// Proc returns processor p's state.
func (s *System) Proc(p int) *Proc { return s.procs[p] }

// Stats returns the coherence counters.
func (s *System) Stats() Stats { return s.stats }

// Switch routes subsequent references (and attributes subsequent
// instructions) to processor p. Use from a RunEach bin hook.
func (s *System) Switch(p int) {
	s.settleInstructions()
	s.cur = p
}

// settleInstructions attributes the CPU's instruction delta to the
// current processor.
func (s *System) settleInstructions() {
	delta := s.cpu.Instructions - s.lastInstr
	s.procs[s.cur].Instructions += delta
	s.lastInstr = s.cpu.Instructions
}

// routerRecorder forwards references to the current processor, applying
// the coherence protocol.
type routerRecorder struct{ s *System }

func (r routerRecorder) Record(ref trace.Ref) {
	s := r.s
	p := s.procs[s.cur]
	p.Refs++
	if s.cfg.Coherence {
		s.coherence(ref)
	}
	p.Hier.Record(ref)
}

// coherence implements a directory of sharers with write-invalidation at
// L2-line granularity: a store removes the line from every other
// processor's private caches.
func (s *System) coherence(ref trace.Ref) {
	size := uint64(ref.Size)
	if size == 0 {
		size = 1
	}
	first := ref.Addr / s.l2Line
	last := (ref.Addr + size - 1) / s.l2Line
	me := uint64(1) << uint(s.cur)
	for ln := first; ln <= last; ln++ {
		holders := s.dir[ln]
		if ref.Kind == trace.Store && holders&^me != 0 {
			s.stats.SharedWrites++
			base := ln * s.l2Line
			for q, proc := range s.procs {
				if q == s.cur || holders&(1<<uint(q)) == 0 {
					continue
				}
				if s.invalidateLine(proc.Hier, base) {
					s.stats.Invalidations++
				}
			}
			holders &= me
		}
		s.dir[ln] = holders | me
	}
}

// invalidateLine removes one L2 line (and its covered L1D sub-lines) from
// a hierarchy, reporting whether anything was resident.
func (s *System) invalidateLine(h *cache.Hierarchy, base uint64) bool {
	present := h.L2().Invalidate(base)
	l1Line := h.L1D().Config().LineSize
	for off := uint64(0); off < s.l2Line; off += l1Line {
		if h.L1D().Invalidate(base + off) {
			present = true
		}
	}
	return present
}

// Result summarizes a finished SMP run.
type Result struct {
	// PerProc times under the machine's cost model.
	PerProc []time.Duration
	// Parallel is the slowest processor (the simulated makespan).
	Parallel time.Duration
	// Serial is the sum (the one-processor equivalent of the same work).
	Serial time.Duration
	// L2Misses sums private-L2 misses across processors.
	L2Misses uint64
	Stats    Stats
}

// Speedup is Serial/Parallel.
func (r Result) Speedup() float64 {
	if r.Parallel == 0 {
		return 0
	}
	return float64(r.Serial) / float64(r.Parallel)
}

// Finish settles instruction attribution and computes the result.
func (s *System) Finish() Result {
	s.settleInstructions()
	cm := machine.CostModel{Machine: s.cfg.Machine}
	res := Result{Stats: s.stats}
	for _, p := range s.procs {
		sum := p.Hier.Summarize()
		t := cm.Estimate(p.Instructions, sum.L1Misses, sum.L2.Misses)
		res.PerProc = append(res.PerProc, t)
		res.Serial += t
		if t > res.Parallel {
			res.Parallel = t
		}
		res.L2Misses += sum.L2.Misses
	}
	return res
}
