package smp

import (
	"threadsched/internal/apps/nbody"
	"threadsched/internal/core"
	"threadsched/internal/machine"
	"threadsched/internal/sim"
	"threadsched/internal/vm"
)

// Policy selects how threads map to processors in the experiment.
type Policy int

const (
	// LocalityBins schedules with the paper's cache-sized blocks and
	// dispatches contiguous chunks of the bin tour to processors: each
	// processor gets spatially adjacent bins.
	LocalityBins Policy = iota
	// Scatter shrinks blocks to one byte — effectively one thread per
	// bin in fork order — so spatially adjacent threads land on
	// different processors; the no-locality baseline.
	Scatter
)

// String names the policy.
func (p Policy) String() string {
	if p == Scatter {
		return "scatter"
	}
	return "locality-bins"
}

// NBodyExperiment runs one threaded Barnes–Hut step for n bodies on a
// simulated multiprocessor and reports per-processor times, coherence
// traffic, and speedup. It demonstrates the paper's §7 SMP extension:
// locality-binned dispatch keeps each bin's working set in one private
// cache and bounds invalidations; scattering destroys both.
func NBodyExperiment(cfg Config, n int, policy Policy, seed uint64) (Result, error) {
	sys, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	as := vm.NewAddressSpace()
	bodies := nbody.NewSystem(n, seed)
	tr := nbody.NewTracer(sys.CPU(), as, n)

	l2 := cfg.Machine.L2CacheSize()
	block := core.DefaultBlockSize(l2, 3)
	if policy == Scatter {
		block = 1
	}
	sched := core.New(core.Config{CacheSize: l2, BlockSize: block})
	th := sim.NewThreads(sys.CPU(), as, sched)

	nbody.StepThreadedWith(bodies, &dispatcher{th: th, sys: sys, policy: policy}, l2, tr)
	return sys.Finish(), nil
}

// dispatcher adapts sim.Threads to nbody.Forker, switching the simulated
// processor per bin. Locality bins go to the least-loaded processor
// (bins stay intact, load stays balanced despite non-uniform bin sizes);
// scatter assigns one-thread bins round-robin, deliberately splitting
// spatial neighbours across processors.
type dispatcher struct {
	th     *sim.Threads
	sys    *System
	policy Policy
}

func (d *dispatcher) Fork(f core.Func, a1, a2 int, h1, h2, h3 uint64) {
	d.th.Fork(f, a1, a2, h1, h2, h3)
}

func (d *dispatcher) Run(keep bool) {
	procs := d.sys.Procs()
	load := make([]int, procs)
	d.th.RunEach(keep, func(bin, threads int) {
		p := 0
		if d.policy == Scatter {
			p = bin % procs
		} else {
			for q := 1; q < procs; q++ {
				if load[q] < load[p] {
					p = q
				}
			}
		}
		load[p] += threads
		d.sys.Switch(p)
	})
	d.sys.Switch(0) // post-run work (integration bookkeeping) on proc 0
}

// CompareNBody runs the experiment under both policies at the given
// processor counts and returns results keyed [policy][procIdx].
func CompareNBody(m machine.Machine, n int, procCounts []int, coherence bool) (map[Policy][]Result, error) {
	out := make(map[Policy][]Result)
	for _, pol := range []Policy{LocalityBins, Scatter} {
		for _, p := range procCounts {
			r, err := NBodyExperiment(Config{Procs: p, Machine: m, Coherence: coherence}, n, pol, 42)
			if err != nil {
				return nil, err
			}
			out[pol] = append(out[pol], r)
		}
	}
	return out, nil
}
