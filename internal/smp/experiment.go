package smp

import (
	"threadsched/internal/apps/nbody"
	"threadsched/internal/core"
	"threadsched/internal/machine"
	"threadsched/internal/sim"
	"threadsched/internal/vm"
)

// Policy selects how threads map to processors in the experiment.
type Policy int

const (
	// LocalityBins schedules with the paper's cache-sized blocks and
	// assigns each bin to the least-loaded processor: bins stay intact
	// but their tour adjacency is ignored.
	LocalityBins Policy = iota
	// Scatter shrinks blocks to one byte — effectively one thread per
	// bin in fork order — so spatially adjacent threads land on
	// different processors; the no-locality baseline.
	Scatter
	// SegmentTour partitions the bin tour into contiguous segments
	// weighted by thread count, one per processor — the assignment the
	// core scheduler's parallel Run uses (core.DispatchSegmented).
	// Spatially adjacent bins share a processor, so the read-mostly data
	// they share stays in one private cache instead of ping-ponging.
	SegmentTour
	// InterleaveBins assigns whole bins round-robin across processors —
	// the assignment the legacy atomic-counter dispatch
	// (core.DispatchAtomic) converges to: bins stay intact, but tour
	// neighbours always land on different processors.
	InterleaveBins
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Scatter:
		return "scatter"
	case SegmentTour:
		return "segment-tour"
	case InterleaveBins:
		return "interleave-bins"
	default:
		return "locality-bins"
	}
}

// NBodyExperiment runs one threaded Barnes–Hut step for n bodies on a
// simulated multiprocessor and reports per-processor times, coherence
// traffic, and speedup. It demonstrates the paper's §7 SMP extension:
// locality-binned dispatch keeps each bin's working set in one private
// cache and bounds invalidations; scattering destroys both.
func NBodyExperiment(cfg Config, n int, policy Policy, seed uint64) (Result, error) {
	sys, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	as := vm.NewAddressSpace()
	bodies := nbody.NewSystem(n, seed)
	tr := nbody.NewTracer(sys.CPU(), as, n)

	l2 := cfg.Machine.L2CacheSize()
	block := core.DefaultBlockSize(l2, 3)
	if policy == Scatter {
		block = 1
	}
	sched := core.New(core.Config{CacheSize: l2, BlockSize: block})
	th := sim.NewThreads(sys.CPU(), as, sched)

	nbody.StepThreadedWith(bodies, &dispatcher{th: th, sys: sys, policy: policy}, l2, tr)
	return sys.Finish(), nil
}

// dispatcher adapts sim.Threads to nbody.Forker, switching the simulated
// processor per bin. Locality bins go to the least-loaded processor
// (bins stay intact, load stays balanced despite non-uniform bin sizes);
// segment-tour gives each processor a contiguous thread-weighted run of
// the bin tour; scatter and interleave-bins assign bins round-robin,
// deliberately splitting spatial neighbours across processors.
type dispatcher struct {
	th     *sim.Threads
	sys    *System
	policy Policy
}

func (d *dispatcher) Fork(f core.Func, a1, a2 int, h1, h2, h3 uint64) {
	d.th.Fork(f, a1, a2, h1, h2, h3)
}

func (d *dispatcher) Run(keep bool) {
	procs := d.sys.Procs()
	switch d.policy {
	case SegmentTour:
		starts := core.PartitionWeights(d.th.Sched.TourOccupancy(), procs)
		seg := 0
		d.th.RunEach(keep, func(bin, threads int) {
			for seg+1 < len(starts) && bin >= starts[seg+1] {
				seg++
			}
			d.sys.Switch(seg)
		})
	case Scatter, InterleaveBins:
		d.th.RunEach(keep, func(bin, threads int) {
			d.sys.Switch(bin % procs)
		})
	default: // LocalityBins
		load := make([]int, procs)
		d.th.RunEach(keep, func(bin, threads int) {
			p := 0
			for q := 1; q < procs; q++ {
				if load[q] < load[p] {
					p = q
				}
			}
			load[p] += threads
			d.sys.Switch(p)
		})
	}
	d.sys.Switch(0) // post-run work (integration bookkeeping) on proc 0
}

// CompareDispatch runs the N-body step under segment-tour and
// interleaved-bin dispatch on the same simulated machine — the coherence
// counterpart of the core scheduler's DispatchSegmented vs DispatchAtomic
// choice. Both keep bins intact; the difference is purely whether tour
// neighbours share a processor, so the invalidation delta isolates the
// cross-bin adjacency effect.
func CompareDispatch(m machine.Machine, procs, n int, coherence bool) (segment, interleave Result, err error) {
	cfg := Config{Procs: procs, Machine: m, Coherence: coherence}
	segment, err = NBodyExperiment(cfg, n, SegmentTour, 42)
	if err != nil {
		return
	}
	interleave, err = NBodyExperiment(cfg, n, InterleaveBins, 42)
	return
}

// CompareNBody runs the experiment under both policies at the given
// processor counts and returns results keyed [policy][procIdx].
func CompareNBody(m machine.Machine, n int, procCounts []int, coherence bool) (map[Policy][]Result, error) {
	out := make(map[Policy][]Result)
	for _, pol := range []Policy{LocalityBins, Scatter} {
		for _, p := range procCounts {
			r, err := NBodyExperiment(Config{Procs: p, Machine: m, Coherence: coherence}, n, pol, 42)
			if err != nil {
				return nil, err
			}
			out[pol] = append(out[pol], r)
		}
	}
	return out, nil
}
