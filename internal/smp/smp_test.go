package smp

import (
	"testing"

	"threadsched/internal/core"
	"threadsched/internal/machine"
	"threadsched/internal/sim"
	"threadsched/internal/vm"
)

func testMachine() machine.Machine { return machine.R8000().Scaled(64) }

func TestNewValidation(t *testing.T) {
	for _, p := range []int{0, -1, 65} {
		if _, err := New(Config{Procs: p, Machine: testMachine()}); err == nil {
			t.Errorf("Procs=%d accepted", p)
		}
	}
	s, err := New(Config{Procs: 4, Machine: testMachine()})
	if err != nil {
		t.Fatal(err)
	}
	if s.Procs() != 4 {
		t.Fatalf("Procs = %d", s.Procs())
	}
}

func TestRoutingFollowsSwitch(t *testing.T) {
	s, err := New(Config{Procs: 2, Machine: testMachine()})
	if err != nil {
		t.Fatal(err)
	}
	cpu := s.CPU()
	cpu.Load(0x1000, 8)
	s.Switch(1)
	cpu.Load(0x2000, 8)
	cpu.Load(0x3000, 8)
	if s.Proc(0).Refs != 1 || s.Proc(1).Refs != 2 {
		t.Fatalf("refs = %d/%d, want 1/2", s.Proc(0).Refs, s.Proc(1).Refs)
	}
	if s.Proc(0).Hier.L1D().Stats().Accesses != 1 {
		t.Fatal("proc 0 hierarchy did not receive its reference")
	}
	if s.Proc(1).Hier.L1D().Stats().Accesses != 2 {
		t.Fatal("proc 1 hierarchy did not receive its references")
	}
}

func TestInstructionAttribution(t *testing.T) {
	s, _ := New(Config{Procs: 2, Machine: testMachine()})
	s.CPU().Exec(0, 10)
	s.Switch(1)
	s.CPU().Exec(0, 30)
	res := s.Finish()
	if s.Proc(0).Instructions != 10 || s.Proc(1).Instructions != 30 {
		t.Fatalf("instructions = %d/%d", s.Proc(0).Instructions, s.Proc(1).Instructions)
	}
	if len(res.PerProc) != 2 || res.Parallel < res.PerProc[0] {
		t.Fatalf("result %+v", res)
	}
}

func TestCoherenceInvalidation(t *testing.T) {
	s, _ := New(Config{Procs: 2, Machine: testMachine(), Coherence: true})
	cpu := s.CPU()
	// Proc 0 reads a line; proc 1 writes it: proc 0's copy must die.
	cpu.Load(0x4000, 8)
	if !s.Proc(0).Hier.L2().Contains(0x4000) {
		t.Fatal("proc 0 did not cache the line")
	}
	s.Switch(1)
	cpu.Store(0x4000, 8)
	if s.Proc(0).Hier.L2().Contains(0x4000) {
		t.Fatal("write did not invalidate the remote copy")
	}
	st := s.Stats()
	if st.Invalidations != 1 || st.SharedWrites != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Re-read on proc 0 misses again (coherence miss).
	s.Switch(0)
	before := s.Proc(0).Hier.L2().Stats().Misses
	cpu.Load(0x4000, 8)
	if after := s.Proc(0).Hier.L2().Stats().Misses; after != before+1 {
		t.Fatal("re-read after invalidation did not miss")
	}
}

func TestCoherenceOffNoInvalidation(t *testing.T) {
	s, _ := New(Config{Procs: 2, Machine: testMachine(), Coherence: false})
	cpu := s.CPU()
	cpu.Load(0x4000, 8)
	s.Switch(1)
	cpu.Store(0x4000, 8)
	if s.Stats().Invalidations != 0 {
		t.Fatal("invalidations counted with coherence off")
	}
	if !s.Proc(0).Hier.L2().Contains(0x4000) {
		t.Fatal("remote copy should survive without coherence")
	}
}

func TestWriterKeepsOwnCopy(t *testing.T) {
	s, _ := New(Config{Procs: 2, Machine: testMachine(), Coherence: true})
	cpu := s.CPU()
	cpu.Load(0x4000, 8) // proc 0 shares
	s.Switch(1)
	cpu.Store(0x4000, 8)
	if !s.Proc(1).Hier.L2().Contains(0x4000) {
		t.Fatal("writer lost its own line")
	}
}

func TestDispatcherWithScheduler(t *testing.T) {
	// A scheduler run through RunEach with Switch spreads bins across
	// processors and every thread still runs exactly once.
	s, _ := New(Config{Procs: 4, Machine: testMachine()})
	sched := core.New(core.Config{CacheSize: 1 << 20, BlockSize: 1 << 14})
	as := vm.NewAddressSpace()
	th := sim.NewThreads(s.CPU(), as, sched)
	const n = 256
	ran := make([]int, n)
	for i := 0; i < n; i++ {
		th.Fork(func(a1, _ int) { ran[a1]++ }, i, 0, uint64(i)<<12, 0, 0)
	}
	procs := s.Procs()
	th.RunEach(false, func(bin, _ int) {
		bins := sched.LastRun().Bins
		s.Switch(bin * procs / max(1, bins))
	})
	for i, c := range ran {
		if c != 1 {
			t.Fatalf("thread %d ran %d times", i, c)
		}
	}
	// Work must have landed on more than one processor.
	busy := 0
	for p := 0; p < procs; p++ {
		if s.Proc(p).Refs > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d processors received references", busy)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestPolicyString(t *testing.T) {
	if LocalityBins.String() != "locality-bins" || Scatter.String() != "scatter" {
		t.Error("policy names")
	}
}

// The §7 demonstration: with private caches and coherence, locality-bin
// dispatch must beat scattering on total L2 misses AND on invalidation
// traffic (false sharing of adjacent body records), and it must show
// parallel speedup over one processor.
func TestLocalityBinsBeatScatter(t *testing.T) {
	if testing.Short() {
		t.Skip("SMP cache simulation")
	}
	m := machine.R8000().Scaled(16)
	n := 4000

	loc4, err := NBodyExperiment(Config{Procs: 4, Machine: m, Coherence: true}, n, LocalityBins, 42)
	if err != nil {
		t.Fatal(err)
	}
	scat4, err := NBodyExperiment(Config{Procs: 4, Machine: m, Coherence: true}, n, Scatter, 42)
	if err != nil {
		t.Fatal(err)
	}
	loc1, err := NBodyExperiment(Config{Procs: 1, Machine: m, Coherence: true}, n, LocalityBins, 42)
	if err != nil {
		t.Fatal(err)
	}

	if loc4.L2Misses >= scat4.L2Misses {
		t.Errorf("locality L2 misses %d not < scatter %d", loc4.L2Misses, scat4.L2Misses)
	}
	if loc4.Stats.Invalidations >= scat4.Stats.Invalidations {
		t.Errorf("locality invalidations %d not < scatter %d",
			loc4.Stats.Invalidations, scat4.Stats.Invalidations)
	}
	if loc4.Parallel >= loc1.Parallel {
		t.Errorf("4 procs (%v) not faster than 1 (%v)", loc4.Parallel, loc1.Parallel)
	}
	if sp := loc4.Speedup(); sp < 1.5 {
		t.Errorf("locality speedup %v < 1.5 on 4 procs", sp)
	}
	t.Logf("4-proc: locality misses=%d inval=%d speedup=%.2f | scatter misses=%d inval=%d speedup=%.2f",
		loc4.L2Misses, loc4.Stats.Invalidations, loc4.Speedup(),
		scat4.L2Misses, scat4.Stats.Invalidations, scat4.Speedup())
}

func TestCompareNBodySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("SMP cache simulation")
	}
	m := machine.R8000().Scaled(64)
	out, err := CompareNBody(m, 1000, []int{1, 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	for pol, results := range out {
		if len(results) != 2 {
			t.Fatalf("policy %v has %d results", pol, len(results))
		}
		for i, r := range results {
			if r.L2Misses == 0 || len(r.PerProc) != i+1 {
				t.Fatalf("policy %v result %d malformed: %+v", pol, i, r)
			}
		}
	}
}

func TestResultSpeedupZeroParallel(t *testing.T) {
	if (Result{}).Speedup() != 0 {
		t.Fatal("zero-parallel speedup should be 0")
	}
}
