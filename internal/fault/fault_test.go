package fault

import (
	"math"
	"testing"
	"time"
)

// TestNilInjectorIsDisabled pins the nil-is-disabled contract: every
// method on a nil *Injector is a safe no-op.
func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Error("nil injector reports Enabled")
	}
	if in.Fires(ThreadPanic, 0) {
		t.Error("nil injector fired")
	}
	in.MaybePanic(ThreadPanic, 0) // must not panic
	in.MaybeDelay(WorkerDelay, 0)
	in.MaybeStall(PipelineStall, 0)
	data := []byte{1, 2, 3, 4}
	if _, ok := in.CorruptByte(TraceCorrupt, 0, data, 0); ok {
		t.Error("nil injector corrupted data")
	}
	if _, ok := in.TruncateAt(TraceCorrupt, 0, data, 0); ok {
		t.Error("nil injector truncated data")
	}
}

// TestZeroConfigNeverFires: New(Config{}) is valid and inert.
func TestZeroConfigNeverFires(t *testing.T) {
	in := New(Config{})
	if in.Enabled() {
		t.Error("zero-config injector reports Enabled")
	}
	for n := uint64(0); n < 1000; n++ {
		if in.Fires(ThreadPanic, n) {
			t.Fatalf("zero-config injector fired at n=%d", n)
		}
	}
}

// TestDeterminism: two injectors with the same seed make identical
// decisions; a different seed diverges somewhere.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Prob: map[Site]float64{ThreadPanic: 0.25, TraceCorrupt: 0.5}}
	a, b := New(cfg), New(cfg)
	diverged := false
	other := New(Config{Seed: 43, Prob: cfg.Prob})
	for n := uint64(0); n < 4096; n++ {
		for _, site := range []Site{ThreadPanic, TraceCorrupt} {
			if a.Fires(site, n) != b.Fires(site, n) {
				t.Fatalf("same seed diverged at site %q n=%d", site, n)
			}
			if a.Fires(site, n) != other.Fires(site, n) {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Error("seeds 42 and 43 made identical decisions over 4096 trials")
	}
}

// TestCallOrderIndependence: Fires(n) does not depend on which decisions
// were asked before it — the property that makes injection deterministic
// under arbitrary worker interleavings.
func TestCallOrderIndependence(t *testing.T) {
	cfg := Config{Seed: 7, Prob: map[Site]float64{ThreadPanic: 0.3}}
	forward, backward := New(cfg), New(cfg)
	const n = 512
	f := make([]bool, n)
	for i := 0; i < n; i++ {
		f[i] = forward.Fires(ThreadPanic, uint64(i))
	}
	for i := n - 1; i >= 0; i-- {
		if got := backward.Fires(ThreadPanic, uint64(i)); got != f[i] {
			t.Fatalf("decision for n=%d depends on call order", i)
		}
	}
}

// TestProbabilityRate: the empirical firing rate tracks the configured
// probability.
func TestProbabilityRate(t *testing.T) {
	for _, p := range []float64{0.01, 0.25, 0.75} {
		in := New(Config{Seed: 99, Prob: map[Site]float64{ThreadPanic: p}})
		const trials = 200_000
		hits := 0
		for n := uint64(0); n < trials; n++ {
			if in.Fires(ThreadPanic, n) {
				hits++
			}
		}
		rate := float64(hits) / trials
		if math.Abs(rate-p) > 0.01 {
			t.Errorf("p=%v: empirical rate %v off by more than 0.01", p, rate)
		}
	}
}

// TestProbabilityEdges: p=0 never fires, p=1 always fires.
func TestProbabilityEdges(t *testing.T) {
	never := New(Config{Seed: 1, Prob: map[Site]float64{ThreadPanic: 0}})
	always := New(Config{Seed: 1, Prob: map[Site]float64{ThreadPanic: 1}})
	for n := uint64(0); n < 10_000; n++ {
		if never.Fires(ThreadPanic, n) {
			t.Fatalf("p=0 fired at n=%d", n)
		}
		if !always.Fires(ThreadPanic, n) {
			t.Fatalf("p=1 missed at n=%d", n)
		}
	}
}

// TestAtPinsExactOccurrences: At fires exactly the listed indexes and
// nothing else when no probability is configured.
func TestAtPinsExactOccurrences(t *testing.T) {
	in := New(Config{Seed: 3, At: map[Site][]uint64{ThreadPanic: {0, 17, 4095}}})
	if !in.Enabled() {
		t.Fatal("At-configured injector not Enabled")
	}
	for n := uint64(0); n < 8192; n++ {
		want := n == 0 || n == 17 || n == 4095
		if got := in.Fires(ThreadPanic, n); got != want {
			t.Fatalf("Fires(%d) = %v, want %v", n, got, want)
		}
	}
}

// TestMaybePanicValue: the injected panic value identifies site and
// occurrence, so containment layers can surface it.
func TestMaybePanicValue(t *testing.T) {
	in := New(Config{At: map[Site][]uint64{ThreadPanic: {5}}})
	in.MaybePanic(ThreadPanic, 4) // must not panic
	defer func() {
		p, ok := recover().(*Panic)
		if !ok {
			t.Fatalf("recovered %T, want *Panic", p)
		}
		if p.Site != ThreadPanic || p.N != 5 {
			t.Errorf("Panic = %+v, want site %q n=5", p, ThreadPanic)
		}
		if p.Error() == "" {
			t.Error("empty Panic.Error()")
		}
	}()
	in.MaybePanic(ThreadPanic, 5)
}

// TestCorruptByteDeterministic: same injector state flips the same bit
// at the same offset, never below skip.
func TestCorruptByteDeterministic(t *testing.T) {
	in := New(Config{Seed: 11, Prob: map[Site]float64{TraceCorrupt: 1}})
	const size, skip = 256, 5
	a := make([]byte, size)
	b := make([]byte, size)
	offA, okA := in.CorruptByte(TraceCorrupt, 9, a, skip)
	offB, okB := in.CorruptByte(TraceCorrupt, 9, b, skip)
	if !okA || !okB {
		t.Fatal("p=1 corruption did not fire")
	}
	if offA != offB {
		t.Fatalf("offsets differ: %d vs %d", offA, offB)
	}
	if offA < skip || offA >= size {
		t.Fatalf("offset %d outside [%d, %d)", offA, skip, size)
	}
	if a[offA] == 0 {
		t.Error("no bit flipped")
	}
	for i := range a {
		if (a[i] != 0) != (i == offA) {
			t.Fatalf("byte %d modified unexpectedly", i)
		}
	}
	// Different occurrences spread across offsets.
	seen := map[int]bool{}
	for n := uint64(0); n < 64; n++ {
		buf := make([]byte, size)
		off, _ := in.CorruptByte(TraceCorrupt, n, buf, skip)
		seen[off] = true
	}
	if len(seen) < 16 {
		t.Errorf("64 corruptions hit only %d distinct offsets", len(seen))
	}
}

// TestTruncateAtBounds: cut offsets land strictly inside (skip, len).
func TestTruncateAtBounds(t *testing.T) {
	in := New(Config{Seed: 13, Prob: map[Site]float64{TraceCorrupt: 1}})
	data := make([]byte, 100)
	for n := uint64(0); n < 256; n++ {
		off, ok := in.TruncateAt(TraceCorrupt, n, data, 5)
		if !ok {
			t.Fatalf("p=1 truncation did not fire at n=%d", n)
		}
		if off <= 5 || off >= len(data) {
			t.Fatalf("cut offset %d outside (5, %d)", off, len(data))
		}
	}
	if _, ok := in.TruncateAt(TraceCorrupt, 0, data[:6], 5); ok {
		t.Error("truncation fired with no room past skip")
	}
}

// TestDelayAndStall: configured sleeps are observed when fired.
func TestDelayAndStall(t *testing.T) {
	in := New(Config{
		Prob:  map[Site]float64{WorkerDelay: 1, PipelineStall: 1},
		Delay: 10 * time.Millisecond,
		Stall: 10 * time.Millisecond,
	})
	start := time.Now()
	in.MaybeDelay(WorkerDelay, 0)
	if time.Since(start) < 5*time.Millisecond {
		t.Error("MaybeDelay did not sleep")
	}
	start = time.Now()
	in.MaybeStall(PipelineStall, 0)
	if time.Since(start) < 5*time.Millisecond {
		t.Error("MaybeStall did not sleep")
	}
	// Unfired sites must not sleep.
	quiet := New(Config{Prob: map[Site]float64{WorkerDelay: 0}, Delay: time.Second})
	start = time.Now()
	quiet.MaybeDelay(WorkerDelay, 0)
	if time.Since(start) > 100*time.Millisecond {
		t.Error("unfired MaybeDelay slept")
	}
}
