// Package fault provides deterministic, seeded fault injection for the
// scheduler and simulation stack's containment tests.
//
// The paper's run-to-completion model (§3) assumes threads never fail;
// the repository's containment layer (RunContext, the pipeline's consumer
// recovery, the trace file's integrity trailers) removes that assumption,
// and this package is how the test suites prove each containment path
// works — deterministically, so a failing injection reproduces byte for
// byte under `go test -run`.
//
// An Injector is configured with per-site firing probabilities and/or
// exact occurrence indexes, all derived from one seed. Every decision is
// a pure function of (Seed, Site, occurrence index): independent of call
// order, goroutine interleaving, and wall-clock time, so the same
// configuration injects the same faults into the same threads on every
// run, even under -race and arbitrary worker schedules.
//
// Like internal/obs, the package has a nil-is-disabled contract: every
// method on a nil *Injector is a safe no-op (no firing, no allocation,
// no time reads), so production code and harnesses can thread an
// *Injector through unconditionally and pay a nil check when fault
// injection is off.
package fault

import (
	"fmt"
	"math"
	"time"
)

// Site names an injection point. The constants below are the sites the
// repository's containment tests use; callers may define their own —
// any string is a valid site, and distinct sites draw independent
// deterministic streams from the same seed.
type Site string

const (
	// ThreadPanic fires inside a thread body, which then panics with a
	// *Panic value; occurrence index = the thread's fork index.
	ThreadPanic Site = "thread-panic"
	// WorkerDelay fires on a worker between bins, injecting Config.Delay
	// of sleep; occurrence index = the bin's tour index.
	WorkerDelay Site = "worker-delay"
	// PipelineStall fires in a pipeline consumer, injecting Config.Stall
	// of sleep per chunk; occurrence index = the chunk sequence number.
	PipelineStall Site = "pipeline-stall"
	// TraceCorrupt fires on an encoded trace, flipping one deterministic
	// bit (CorruptByte) or cutting the byte stream short (TruncateAt).
	TraceCorrupt Site = "trace-corrupt"
	// ServedJob fires inside a job served by the simulation daemon
	// (internal/server), panicking through the harness JobSpec hook;
	// occurrence index = the job's admission sequence number. The server
	// fault tests use it to prove one tenant's panicking job is contained
	// to that job's error response.
	ServedJob Site = "served-job"
	// JournalTornWrite fires in the job journal's append path
	// (internal/journal), writing only a deterministic prefix of the
	// framed record before failing — a crash mid-write. Occurrence
	// index = the append sequence number since the journal was opened.
	JournalTornWrite Site = "journal-torn-write"
	// JournalFsync fires in the journal's fsync path, turning the sync
	// into an I/O error without losing the buffered write; occurrence
	// index = the fsync sequence number.
	JournalFsync Site = "journal-fsync"
	// JournalFull fires before a journal append touches the disk,
	// failing it cleanly the way ENOSPC would; occurrence index = the
	// append sequence number.
	JournalFull Site = "journal-full"
)

// Config parameterizes an Injector. The zero value never fires.
type Config struct {
	// Seed selects the deterministic decision stream. Two injectors with
	// the same Seed and site configuration make identical decisions.
	Seed uint64
	// Prob maps a site to its firing probability in [0, 1]: site s fires
	// for occurrence n with probability Prob[s], decided by a hash of
	// (Seed, s, n).
	Prob map[Site]float64
	// At pins sites to exact occurrence indexes: site s additionally
	// fires for every n listed in At[s]. This is what the containment
	// matrix tests use to panic exactly the first, middle, or last
	// thread of a run.
	At map[Site][]uint64
	// Delay is the sleep MaybeDelay injects when its site fires.
	Delay time.Duration
	// Stall is the sleep MaybeStall injects when its site fires.
	Stall time.Duration
}

// Injector makes deterministic fault decisions. A nil *Injector is the
// disabled state: every method is a no-op that never fires.
type Injector struct {
	seed  uint64
	prob  map[Site]uint64 // firing threshold scaled to [0, 2^64)
	at    map[Site]map[uint64]bool
	delay time.Duration
	stall time.Duration
}

// New returns an Injector for cfg. New(Config{}) is a valid injector
// that never fires; a nil *Injector behaves identically and is the
// cheaper way to express "injection off".
func New(cfg Config) *Injector {
	in := &Injector{seed: cfg.Seed, delay: cfg.Delay, stall: cfg.Stall}
	if len(cfg.Prob) > 0 {
		in.prob = make(map[Site]uint64, len(cfg.Prob))
		for s, p := range cfg.Prob {
			in.prob[s] = probThreshold(p)
		}
	}
	if len(cfg.At) > 0 {
		in.at = make(map[Site]map[uint64]bool, len(cfg.At))
		for s, ns := range cfg.At {
			set := make(map[uint64]bool, len(ns))
			for _, n := range ns {
				set[n] = true
			}
			in.at[s] = set
		}
	}
	return in
}

// probThreshold scales a probability to a uint64 comparison threshold.
func probThreshold(p float64) uint64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.MaxUint64
	default:
		return uint64(p * float64(math.MaxUint64))
	}
}

// Enabled reports whether the injector can fire at all.
func (in *Injector) Enabled() bool {
	return in != nil && (len(in.prob) > 0 || len(in.at) > 0)
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche mix, so consecutive occurrence indexes decide independently.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rnd is the site's deterministic stream: a hash of (seed, site, n).
func (in *Injector) rnd(site Site, n uint64) uint64 {
	h := splitmix64(in.seed)
	for i := 0; i < len(site); i++ {
		h = splitmix64(h ^ uint64(site[i]))
	}
	return splitmix64(h ^ n)
}

// Fires reports whether site fires for occurrence n. The decision is a
// pure function of (Seed, site, n); a nil injector never fires.
func (in *Injector) Fires(site Site, n uint64) bool {
	if in == nil {
		return false
	}
	if set, ok := in.at[site]; ok && set[n] {
		return true
	}
	thr, ok := in.prob[site]
	if !ok || thr == 0 {
		return false
	}
	if thr == math.MaxUint64 {
		return true
	}
	return in.rnd(site, n) < thr
}

// Panic is the value MaybePanic panics with; containment layers surface
// it inside their typed errors (e.g. core.ThreadPanicError.Value), so a
// test can assert the exact injected fault came back out.
type Panic struct {
	Site Site
	N    uint64
}

// Error makes *Panic usable as an error value.
func (p *Panic) Error() string {
	return fmt.Sprintf("fault: injected panic at site %q, occurrence %d", p.Site, p.N)
}

// MaybePanic panics with a *Panic when site fires for occurrence n.
func (in *Injector) MaybePanic(site Site, n uint64) {
	if in.Fires(site, n) {
		panic(&Panic{Site: site, N: n})
	}
}

// MaybeDelay sleeps Config.Delay when site fires for occurrence n; used
// to perturb worker timing (forcing steals, reordering wave arrival)
// without changing any result.
func (in *Injector) MaybeDelay(site Site, n uint64) {
	if in.Fires(site, n) && in.delay > 0 {
		time.Sleep(in.delay)
	}
}

// MaybeStall sleeps Config.Stall when site fires for occurrence n; used
// to hold a pipeline consumer back until the ring fills.
func (in *Injector) MaybeStall(site Site, n uint64) {
	if in.Fires(site, n) && in.stall > 0 {
		time.Sleep(in.stall)
	}
}

// CorruptByte flips one bit of data in place when site fires for
// occurrence n, returning the flipped offset. Offset and bit are
// deterministic in (Seed, site, n, len(data)). Offsets below skip are
// never chosen (pass a header length to corrupt only the body).
func (in *Injector) CorruptByte(site Site, n uint64, data []byte, skip int) (int, bool) {
	if !in.Fires(site, n) || skip < 0 || skip >= len(data) {
		return 0, false
	}
	h := in.rnd(site, splitmix64(n)^uint64(len(data)))
	off := skip + int(h%uint64(len(data)-skip))
	data[off] ^= 1 << ((h >> 32) % 8)
	return off, true
}

// TruncateAt returns a deterministic cut offset in [skip+1, len(data))
// when site fires for occurrence n: data[:offset] is the truncated
// stream. ok is false when the site does not fire or data has no room
// past skip.
func (in *Injector) TruncateAt(site Site, n uint64, data []byte, skip int) (int, bool) {
	if !in.Fires(site, n) || skip < 0 || len(data)-skip < 2 {
		return 0, false
	}
	h := in.rnd(site, splitmix64(n^0x7472756e63)^uint64(len(data)))
	return skip + 1 + int(h%uint64(len(data)-skip-1)), true
}
