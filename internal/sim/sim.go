// Package sim provides the execution substrate for the instrumented
// ("traced") workload variants: a model CPU that emits instruction-fetch
// and data references to a trace.Recorder while real computation proceeds
// on real Go values. It plays the role Pixie instrumentation played in the
// paper: the same algorithm produces both its numeric result and its
// address trace.
//
// Instruction fetches are emitted at I-line granularity: executing a basic
// block touches each instruction-cache line the block covers once, while
// the full instruction count accumulates separately. This preserves
// first-level instruction cache miss counts exactly (consecutive fetches
// within one line can miss at most once) at a fraction of the trace
// volume, and the paper's "I fetches" table rows come from the precise
// counter.
package sim

import (
	"context"

	"threadsched/internal/obs"
	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

// WordSize is the size of the double-precision values all four workloads
// operate on.
const WordSize = 8

// DefaultILine is the granularity at which Exec emits instruction-fetch
// references; 32 bytes is the smallest I-line among the modelled machines,
// so miss counts are exact for both.
const DefaultILine = 32

// InstrBytes is the size of one instruction on the modelled MIPS systems.
const InstrBytes = 4

// CPU is the model processor: it counts instructions and forwards memory
// references to a recorder, either one at a time (the default) or through
// a fixed-size reference buffer drained in chunks (see Buffer).
type CPU struct {
	rec trace.Recorder
	// ex is rec's BufferExchanger side, cached at construction; when
	// non-nil, buffer drains swap the buffer with the recorder instead of
	// copying out of it, so a buffered CPU feeding an exchanging consumer
	// (trace.Pipeline) moves references with zero copies.
	ex trace.BufferExchanger
	// buf, when non-nil, batches references: emits append here and the
	// full buffer is handed to the recorder as one RecordBatch call. The
	// recorder observes exactly the emission order, just later, so
	// buffered and unbuffered runs produce identical results once Flush
	// has been called.
	buf []trace.Ref
	// mRefs counts emitted references (sim.refs) when observability is
	// attached; nil otherwise. Buffered CPUs count whole batches at drain
	// time so the per-reference hot path stays untouched.
	mRefs    *obs.Counter
	obsTrack int
	// Instructions is the number of instructions executed via Exec.
	Instructions uint64
	// TextBase is the base address of the simulated text segment.
	TextBase uint64
	// ctx, when non-nil, cancels the run at emission boundaries (see
	// WithCancel in cancel.go); sinceCheck strides the unbuffered path's
	// context checks.
	ctx        context.Context
	sinceCheck int
}

// NewCPU returns a CPU recording to rec; a nil rec discards references
// (useful for dry runs that only need instruction counts).
func NewCPU(rec trace.Recorder) *CPU {
	if rec == nil {
		rec = trace.Discard
	}
	c := &CPU{rec: rec, TextBase: 0x0040_0000}
	c.ex, _ = rec.(trace.BufferExchanger)
	return c
}

// Recorder returns the recorder this CPU emits to.
func (c *CPU) Recorder() trace.Recorder { return c.rec }

// Observe counts this CPU's emitted references into the registry's
// sim.refs counter on the given track, and returns the CPU. A nil Obs
// leaves the CPU disabled. On a buffered CPU the count is maintained only
// at batch-drain boundaries (call Flush before reading a snapshot); an
// unbuffered CPU pays one nil-check per reference.
func (c *CPU) Observe(o *obs.Obs, track int) *CPU {
	c.mRefs = o.Registry().Counter("sim.refs")
	c.obsTrack = track
	return c
}

// Buffer switches the CPU to batched emission with an n-reference buffer
// (n <= 0 selects trace.DefaultChunk) and returns the CPU. The caller
// must call Flush after the workload finishes and before reading results
// out of the recorder.
func (c *CPU) Buffer(n int) *CPU {
	c.Flush()
	if n <= 0 {
		n = trace.DefaultChunk
	}
	c.buf = make([]trace.Ref, 0, n)
	return c
}

// Flush drains the reference buffer to the recorder. It is a no-op on an
// unbuffered CPU.
func (c *CPU) Flush() {
	if len(c.buf) > 0 {
		c.drain()
	}
}

// drain hands the full buffer to the recorder: a buffer swap when the
// recorder exchanges (no copy; the CPU refills whichever empty buffer
// comes back), a RecordBatch otherwise. The swapped-in buffer's length is
// clamped to zero here rather than trusted: an exchanger that returns a
// recycled buffer without re-slicing it would otherwise leave consumed
// records in place, and the CPU would append after them — emitting
// oversized batches that replay stale references.
func (c *CPU) drain() {
	c.checkCancel()
	c.mRefs.Add(c.obsTrack, uint64(len(c.buf)))
	if c.ex != nil {
		c.buf = c.ex.Exchange(c.buf)[:0]
		return
	}
	trace.RecordBatch(c.rec, c.buf)
	c.buf = c.buf[:0]
}

// emit delivers one reference, through the buffer when batching.
func (c *CPU) emit(r trace.Ref) {
	if c.buf == nil {
		c.recordCancellable(r)
		return
	}
	c.buf = append(c.buf, r)
	if len(c.buf) == cap(c.buf) {
		c.drain()
	}
}

// Exec models executing a basic block of n instructions whose first
// instruction lives at text offset pc (in bytes, relative to TextBase).
// One instruction-fetch reference is emitted per I-line the block covers.
func (c *CPU) Exec(pc uint64, n int) {
	if n <= 0 {
		return
	}
	c.Instructions += uint64(n)
	start := c.TextBase + pc
	end := start + uint64(n)*InstrBytes - 1
	for line := start &^ (DefaultILine - 1); line <= end; line += DefaultILine {
		addr := line
		if addr < start {
			addr = start
		}
		c.emit(trace.Ref{Kind: trace.IFetch, Addr: addr, Size: InstrBytes})
	}
}

// Load emits a data-read reference.
func (c *CPU) Load(addr uint64, size uint8) {
	c.emit(trace.Ref{Kind: trace.Load, Addr: addr, Size: size})
}

// Store emits a data-write reference.
func (c *CPU) Store(addr uint64, size uint8) {
	c.emit(trace.Ref{Kind: trace.Store, Addr: addr, Size: size})
}

// F64 is a simulated array of float64: real values backed by a simulated
// address range, so every access can both compute and emit a reference.
type F64 struct {
	cpu  *CPU
	base uint64
	data []float64
}

// NewF64 allocates an n-element array in the address space, aligned to the
// word size (arrays deliberately do not start page- or line-aligned by
// default; callers can pre-align the space if an experiment needs it).
func NewF64(cpu *CPU, as *vm.AddressSpace, n int) *F64 {
	return &F64{
		cpu:  cpu,
		base: as.Alloc(uint64(n)*WordSize, WordSize),
		data: make([]float64, n),
	}
}

// Len returns the element count.
func (a *F64) Len() int { return len(a.data) }

// Base returns the array's simulated base address.
func (a *F64) Base() uint64 { return a.base }

// Addr returns the simulated address of element i.
func (a *F64) Addr(i int) uint64 { return a.base + uint64(i)*WordSize }

// Load reads element i, emitting a load reference.
func (a *F64) Load(i int) float64 {
	a.cpu.Load(a.Addr(i), WordSize)
	return a.data[i]
}

// Store writes element i, emitting a store reference.
func (a *F64) Store(i int, v float64) {
	a.cpu.Store(a.Addr(i), WordSize)
	a.data[i] = v
}

// Peek reads element i without emitting a reference (register-resident
// value, or test inspection).
func (a *F64) Peek(i int) float64 { return a.data[i] }

// Poke writes element i without emitting a reference.
func (a *F64) Poke(i int, v float64) { a.data[i] = v }

// Data exposes the backing slice for initialization and verification.
func (a *F64) Data() []float64 { return a.data }

// Matrix is a simulated 2-D float64 matrix. Storage order is configurable
// because the paper's Fortran programs are column-major while the C
// N-body program is row-major ("Either layout works with our scheduler",
// §4).
type Matrix struct {
	arr        *F64
	rows, cols int
	colMajor   bool
}

// NewMatrix allocates a rows×cols matrix in the address space.
func NewMatrix(cpu *CPU, as *vm.AddressSpace, rows, cols int, colMajor bool) *Matrix {
	return &Matrix{
		arr:      NewF64(cpu, as, rows*cols),
		rows:     rows,
		cols:     cols,
		colMajor: colMajor,
	}
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

func (m *Matrix) index(i, j int) int {
	if m.colMajor {
		return j*m.rows + i
	}
	return i*m.cols + j
}

// Addr returns the simulated address of element (i, j).
func (m *Matrix) Addr(i, j int) uint64 { return m.arr.Addr(m.index(i, j)) }

// Load reads element (i, j), emitting a load.
func (m *Matrix) Load(i, j int) float64 { return m.arr.Load(m.index(i, j)) }

// Store writes element (i, j), emitting a store.
func (m *Matrix) Store(i, j int, v float64) { m.arr.Store(m.index(i, j), v) }

// Peek reads element (i, j) without a reference.
func (m *Matrix) Peek(i, j int) float64 { return m.arr.Peek(m.index(i, j)) }

// Poke writes element (i, j) without a reference.
func (m *Matrix) Poke(i, j int, v float64) { m.arr.Poke(m.index(i, j), v) }

// Data exposes the backing slice in storage order.
func (m *Matrix) Data() []float64 { return m.arr.Data() }

// ColMajor reports the storage order.
func (m *Matrix) ColMajor() bool { return m.colMajor }
