package sim

import (
	"context"
	"errors"
	"testing"

	"threadsched/internal/core"
	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

// TestThreadsRunContextContainsPanic: a panicking traced thread surfaces
// as a *core.ThreadPanicError through the sim wrapper, and the reference
// stream recorded up to the panic stays a sane prefix (fork costs for
// all threads, run costs only for the threads that started).
func TestThreadsRunContextContainsPanic(t *testing.T) {
	var c trace.Counts
	cpu := NewCPU(&c)
	as := vm.NewAddressSpace()
	th := NewThreads(cpu, as, core.New(core.Config{CacheSize: 1 << 20}))
	for i := 0; i < 10; i++ {
		i := i
		th.Fork(func(int, int) {
			if i == 4 {
				panic("traced thread blew up")
			}
		}, i, 0, 0, 0, 0)
	}
	forkRefs := c // forks already recorded; threads not yet started
	err := th.RunContext(context.Background(), false)
	var tp *core.ThreadPanicError
	if !errors.As(err, &tp) {
		t.Fatalf("err = %v, want *core.ThreadPanicError", err)
	}
	if tp.Value != "traced thread blew up" || tp.Thread != 4 {
		t.Errorf("ThreadPanicError = %+v", tp)
	}
	// 4 threads started before the panic; each start loads the 3-word
	// thread record. The panicking thread's loads happened too (the body
	// panics after the record reload).
	wantLoads := forkRefs.Loads() + 5*3
	if c.Loads() != wantLoads {
		t.Errorf("recorded %d loads, want %d (partial stream must be a prefix)", c.Loads(), wantLoads)
	}
}

// TestThreadsRunContextCancelled: cancellation passes through the sim
// wrapper to the scheduler.
func TestThreadsRunContextCancelled(t *testing.T) {
	cpu := NewCPU(nil)
	th := NewThreads(cpu, vm.NewAddressSpace(), core.New(core.Config{CacheSize: 1 << 20}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	th.Fork(func(int, int) { ran = true }, 0, 0, 0, 0, 0)
	if err := th.RunContext(ctx, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("thread ran under a cancelled context")
	}
	// The failed run destroyed the schedule; fork again for the run-each
	// variant.
	th.Fork(func(int, int) { ran = true }, 0, 0, 0, 0, 0)
	if err := th.RunEachContext(ctx, false, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunEachContext err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("thread ran under a cancelled context in RunEachContext")
	}
}
