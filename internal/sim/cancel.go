package sim

import (
	"context"
	"fmt"

	"threadsched/internal/trace"
)

// cancelCheckStride is how many unbuffered emits pass between context
// checks. Buffered CPUs check once per drained chunk instead, which is
// the same order of granularity (trace.DefaultChunk references).
const cancelCheckStride = 4096

// CancelledError is the panic value a cancel-aware CPU raises when its
// context expires mid-workload. It unwraps to the context's error, so
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) see through it — including when it surfaces
// wrapped inside a *core.ThreadPanicError (cancellation hit inside a
// scheduled thread body) or a harness *JobPanicError.
type CancelledError struct {
	// Err is the context's error at the moment of cancellation.
	Err error
}

// Error describes the cancellation.
func (e *CancelledError) Error() string { return fmt.Sprintf("sim: run cancelled: %v", e.Err) }

// Unwrap exposes the context error.
func (e *CancelledError) Unwrap() error { return e.Err }

// WithCancel makes the CPU cancellation-aware and returns it: once ctx is
// done, the next emission boundary — a buffer drain on a buffered CPU,
// every cancelCheckStride references on an unbuffered one — panics with a
// *CancelledError. A panic (rather than an error return) is what lets one
// hook cancel every workload variant mid-run: the kernels' inner loops
// stay untouched, the scheduler's per-thread containment converts it into
// a halted run, and the harness's per-job containment converts it into a
// job error. The worst-case cancel latency is therefore one chunk of
// references plus one bin of threads (bounded by the cancel-latency test
// in the harness). A nil ctx leaves the CPU non-cancellable.
func (c *CPU) WithCancel(ctx context.Context) *CPU {
	c.ctx = ctx
	return c
}

// checkCancel panics with a *CancelledError if the CPU's context is done.
func (c *CPU) checkCancel() {
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			panic(&CancelledError{Err: err})
		}
	}
}

// recordCancellable is the unbuffered emission path: one Record per
// reference, with a context check every cancelCheckStride emissions.
func (c *CPU) recordCancellable(r trace.Ref) {
	c.rec.Record(r)
	c.mRefs.Inc(c.obsTrack)
	if c.ctx == nil {
		return
	}
	c.sinceCheck++
	if c.sinceCheck >= cancelCheckStride {
		c.sinceCheck = 0
		c.checkCancel()
	}
}
