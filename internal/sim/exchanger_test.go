package sim

import (
	"testing"

	"threadsched/internal/trace"
)

// staleExchanger violates the BufferExchanger contract: it swaps two
// buffers but hands each back at its full stale length instead of
// re-slicing to zero. Before the drain-path clamp, a CPU feeding such a
// consumer appended new references after the stale ones, shipping
// oversized batches that replayed already-consumed records.
type staleExchanger struct {
	got   []trace.Ref
	spare []trace.Ref
}

func (e *staleExchanger) Record(r trace.Ref)           { e.got = append(e.got, r) }
func (e *staleExchanger) RecordBatch(refs []trace.Ref) { e.got = append(e.got, refs...) }

func (e *staleExchanger) Exchange(buf []trace.Ref) []trace.Ref {
	e.got = append(e.got, buf...)
	out := e.spare
	e.spare = buf
	if out == nil {
		out = make([]trace.Ref, 0, cap(buf))
	}
	return out // deliberately NOT out[:0]: stale length preserved
}

// TestDrainClampsExchangedBuffer: the CPU must not trust the exchanged
// buffer's length. With a contract-violating exchanger, every reference
// must still be delivered exactly once, in order.
func TestDrainClampsExchangedBuffer(t *testing.T) {
	ex := &staleExchanger{}
	cpu := NewCPU(ex).Buffer(4)
	const n = 23 // several drains plus a partial flush
	for i := 0; i < n; i++ {
		cpu.Load(uint64(0x1000+8*i), 8)
	}
	cpu.Flush()
	if len(ex.got) != n {
		t.Fatalf("consumer saw %d refs, want %d (stale buffer lengths resurrected records)", len(ex.got), n)
	}
	for i, r := range ex.got {
		want := trace.Ref{Kind: trace.Load, Addr: uint64(0x1000 + 8*i), Size: 8}
		if r != want {
			t.Fatalf("ref %d = %+v, want %+v", i, r, want)
		}
	}
}

// TestExchangeHelperClampsExchangedBuffer: the package-level trace
// helper applies the same defense.
func TestExchangeHelperClampsExchangedBuffer(t *testing.T) {
	ex := &staleExchanger{}
	buf := []trace.Ref{{Kind: trace.Store, Addr: 0x10, Size: 8}}
	next := trace.Exchange(ex, buf)
	if len(next) != 0 {
		t.Fatalf("Exchange returned a %d-length buffer, want 0", len(next))
	}
	next = append(next, trace.Ref{Kind: trace.Load, Addr: 0x20, Size: 8})
	next = trace.Exchange(ex, next)
	if len(next) != 0 {
		t.Fatalf("second Exchange returned a %d-length buffer, want 0", len(next))
	}
	if len(ex.got) != 2 {
		t.Fatalf("consumer saw %d refs, want 2", len(ex.got))
	}
}
