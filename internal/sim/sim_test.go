package sim

import (
	"testing"

	"threadsched/internal/core"
	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

func TestExecCountsInstructionsAndTouchesLines(t *testing.T) {
	var c trace.Counts
	cpu := NewCPU(&c)
	cpu.Exec(0, 4) // 16 bytes from an aligned pc: one I-line
	if cpu.Instructions != 4 {
		t.Fatalf("instructions = %d, want 4", cpu.Instructions)
	}
	if c.IFetches() != 1 {
		t.Fatalf("ifetches = %d, want 1 (one line)", c.IFetches())
	}
	cpu.Exec(0, 16) // 64 bytes: two lines
	if c.IFetches() != 3 {
		t.Fatalf("ifetches = %d, want 3", c.IFetches())
	}
	if cpu.Instructions != 20 {
		t.Fatalf("instructions = %d, want 20", cpu.Instructions)
	}
}

func TestExecLineSpanUnaligned(t *testing.T) {
	var c trace.Counts
	cpu := NewCPU(&c)
	// 2 instructions starting 4 bytes before a line boundary span 2 lines.
	cpu.Exec(28, 2)
	if c.IFetches() != 2 {
		t.Fatalf("ifetches = %d, want 2", c.IFetches())
	}
}

func TestExecZeroAndNegative(t *testing.T) {
	cpu := NewCPU(nil)
	cpu.Exec(0, 0)
	cpu.Exec(0, -5)
	if cpu.Instructions != 0 {
		t.Fatalf("instructions = %d, want 0", cpu.Instructions)
	}
}

func TestNilRecorderDiscards(t *testing.T) {
	cpu := NewCPU(nil)
	cpu.Load(100, 8)
	cpu.Store(200, 8)
	cpu.Exec(0, 10)
	if cpu.Instructions != 10 {
		t.Fatalf("instructions = %d", cpu.Instructions)
	}
	if cpu.Recorder() != trace.Discard {
		t.Fatal("nil recorder not replaced with Discard")
	}
}

func TestF64LoadStoreEmitsRefs(t *testing.T) {
	var c trace.Counts
	cpu := NewCPU(&c)
	as := vm.NewAddressSpace()
	a := NewF64(cpu, as, 10)
	a.Store(3, 1.5)
	if got := a.Load(3); got != 1.5 {
		t.Fatalf("Load = %v", got)
	}
	if c.Loads() != 1 || c.Stores() != 1 {
		t.Fatalf("refs = %+v", c)
	}
	if a.Addr(4) != a.Addr(3)+8 {
		t.Fatal("element addresses not 8 bytes apart")
	}
	if a.Base() != a.Addr(0) {
		t.Fatal("base != Addr(0)")
	}
	if a.Len() != 10 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func TestPeekPokeSilent(t *testing.T) {
	var c trace.Counts
	cpu := NewCPU(&c)
	a := NewF64(cpu, vm.NewAddressSpace(), 4)
	a.Poke(1, 7)
	if a.Peek(1) != 7 {
		t.Fatal("peek/poke broken")
	}
	if c.Total() != 0 {
		t.Fatalf("peek/poke emitted %d refs", c.Total())
	}
	if a.Data()[1] != 7 {
		t.Fatal("Data not backed by same storage")
	}
}

func TestMatrixStorageOrders(t *testing.T) {
	cpu := NewCPU(nil)
	as := vm.NewAddressSpace()
	col := NewMatrix(cpu, as, 4, 3, true)
	row := NewMatrix(cpu, as, 4, 3, false)
	if !col.ColMajor() || row.ColMajor() {
		t.Fatal("ColMajor flags wrong")
	}
	// Column-major: walking down a column is contiguous.
	if col.Addr(1, 2) != col.Addr(0, 2)+8 {
		t.Error("column-major columns not contiguous")
	}
	// Row-major: walking along a row is contiguous.
	if row.Addr(2, 1) != row.Addr(2, 0)+8 {
		t.Error("row-major rows not contiguous")
	}
	if col.Rows() != 4 || col.Cols() != 3 {
		t.Errorf("dims = %dx%d", col.Rows(), col.Cols())
	}
	col.Store(2, 1, 9)
	if col.Load(2, 1) != 9 || col.Peek(2, 1) != 9 {
		t.Error("matrix load/store broken")
	}
	col.Poke(3, 2, 4)
	if col.Peek(3, 2) != 4 {
		t.Error("matrix poke broken")
	}
	if len(col.Data()) != 12 {
		t.Error("matrix data length wrong")
	}
}

func TestMatricesDisjoint(t *testing.T) {
	cpu := NewCPU(nil)
	as := vm.NewAddressSpace()
	a := NewMatrix(cpu, as, 8, 8, true)
	b := NewMatrix(cpu, as, 8, 8, true)
	aEnd := a.Addr(7, 7) + 8
	if b.Addr(0, 0) < aEnd {
		t.Fatalf("matrices overlap: a ends %#x, b starts %#x", aEnd, b.Addr(0, 0))
	}
}

func TestThreadsChargesOverhead(t *testing.T) {
	var c trace.Counts
	cpu := NewCPU(&c)
	as := vm.NewAddressSpace()
	sched := coreSchedForTest()
	th := NewThreads(cpu, as, sched)

	ran := 0
	th.Fork(func(a1, a2 int) {
		if a1 != 5 || a2 != 6 {
			t.Errorf("args = %d,%d", a1, a2)
		}
		ran++
	}, 5, 6, 0, 0, 0)
	// Fork cost is charged immediately: ForkInstr instructions + 3 stores.
	if cpu.Instructions != uint64(th.ForkInstr) {
		t.Fatalf("fork instructions = %d, want %d", cpu.Instructions, th.ForkInstr)
	}
	if c.Stores() != 3 {
		t.Fatalf("fork stores = %d, want 3", c.Stores())
	}
	th.Run(false)
	if ran != 1 {
		t.Fatal("thread did not run")
	}
	if cpu.Instructions != uint64(th.ForkInstr+th.RunInstr) {
		t.Fatalf("total instructions = %d, want %d", cpu.Instructions, th.ForkInstr+th.RunInstr)
	}
	if c.Loads() != 3 {
		t.Fatalf("run loads = %d, want 3", c.Loads())
	}
}

func TestThreadsArenaRecycles(t *testing.T) {
	seen := map[uint64]bool{}
	rec := trace.FuncRecorder(func(r trace.Ref) {
		if r.Kind == trace.Store {
			seen[r.Addr] = true
		}
	})
	th := NewThreads(NewCPU(rec), vm.NewAddressSpace(), coreSchedForTest())
	for i := 0; i < 3*defaultArenaSlots; i++ {
		th.Fork(func(int, int) {}, i, 0, 0, 0, 0)
	}
	// Distinct store addresses are bounded by the arena size (3 words per
	// slot), however many threads are forked: the arena recycles.
	if len(seen) != 3*defaultArenaSlots {
		t.Fatalf("distinct record addresses = %d, want %d (one arena)",
			len(seen), 3*defaultArenaSlots)
	}
}

func coreSchedForTest() *core.Scheduler {
	return core.New(core.Config{CacheSize: 1 << 16})
}
