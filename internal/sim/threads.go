package sim

import (
	"context"

	"threadsched/internal/core"
	"threadsched/internal/vm"
)

// Threads wraps a core.Scheduler so traced workloads charge the thread
// package's own costs to the simulation, the way the paper's Pixie traces
// included the C package's instructions and references. Each fork executes
// ForkInstr instructions and stores a thread record (three words) into a
// recycled thread-group arena; each thread start executes RunInstr
// instructions and loads the record back. Recycling the arena reproduces
// the paper's working assumption that "thread creation doesn't cause cache
// misses": group memory stays hot.
type Threads struct {
	Sched *core.Scheduler
	cpu   *CPU

	// ForkInstr and RunInstr are the modelled per-thread instruction
	// costs. The defaults approximate Table 1's measured overheads on the
	// R8000 (1.38 µs ≈ ~100 cycles to fork, 0.22 µs ≈ ~16 cycles to run).
	ForkInstr, RunInstr int

	arenaBase  uint64
	arenaSlots uint64
	slot       uint64
	forkPC     uint64
	runPC      uint64
}

// threadRecBytes is the modelled size of one thread record: a function
// pointer and two arguments (§3.2).
const threadRecBytes = 24

// defaultArenaSlots bounds the recycled group arena; with 24-byte records
// this is a 96 KiB region, a few thread groups' worth.
const defaultArenaSlots = 4096

// NewThreads builds the traced scheduler wrapper, allocating the group
// arena from as.
func NewThreads(cpu *CPU, as *vm.AddressSpace, sched *core.Scheduler) *Threads {
	return &Threads{
		Sched:      sched,
		cpu:        cpu,
		ForkInstr:  100,
		RunInstr:   16,
		arenaBase:  as.Alloc(defaultArenaSlots*threadRecBytes, 64),
		arenaSlots: defaultArenaSlots,
		forkPC:     0x2000,
		runPC:      0x2100,
	}
}

// Fork charges the fork cost, writes the simulated thread record, and
// schedules f. The run cost and record reload are charged when the thread
// starts.
func (t *Threads) Fork(f core.Func, arg1, arg2 int, h1, h2, h3 uint64) {
	t.cpu.Exec(t.forkPC, t.ForkInstr)
	rec := t.arenaBase + (t.slot%t.arenaSlots)*threadRecBytes
	t.slot++
	t.cpu.Store(rec, 8)
	t.cpu.Store(rec+8, 8)
	t.cpu.Store(rec+16, 8)
	t.Sched.Fork(func(a1, a2 int) {
		t.cpu.Exec(t.runPC, t.RunInstr)
		t.cpu.Load(rec, 8)
		t.cpu.Load(rec+8, 8)
		t.cpu.Load(rec+16, 8)
		f(a1, a2)
	}, arg1, arg2, h1, h2, h3)
}

// Run runs the scheduled threads; see core.Scheduler.Run.
func (t *Threads) Run(keep bool) { t.Sched.Run(keep) }

// RunEach runs the scheduled threads with a per-bin hook; see
// core.Scheduler.RunEach.
func (t *Threads) RunEach(keep bool, beforeBin func(bin, threads int)) {
	t.Sched.RunEach(keep, beforeBin)
}

// RunContext is the contained form of Run: a panicking traced thread
// returns as a *core.ThreadPanicError and a done ctx stops the tour at
// the next bin boundary, exactly as on the underlying scheduler. The
// recorder may then hold a partial reference stream; abandon it (or the
// trace file, unclosed, will read back ErrTruncated — which is the
// point) rather than feeding it to a simulation.
func (t *Threads) RunContext(ctx context.Context, keep bool) error {
	return t.Sched.RunContext(ctx, keep)
}

// RunEachContext is the contained form of RunEach; see
// core.Scheduler.RunEachContext.
func (t *Threads) RunEachContext(ctx context.Context, keep bool, beforeBin func(bin, threads int)) error {
	return t.Sched.RunEachContext(ctx, keep, beforeBin)
}
