package sim

import (
	"context"

	"threadsched/internal/cache"
	"threadsched/internal/trace"
)

// ShardedHierarchy replays a recorded trace against W independent cache
// hierarchies in parallel, partitioned by address class (see
// cache.SliceRouter). Each shard is a full cache.Hierarchy that consumes
// exactly the references routed to its slice, in global file order —
// per-set LRU/FIFO state depends only on that set's reference
// subsequence, so the merged counters are bit-identical to a serial
// replay of the same trace, not an approximation.
//
// The construction rejects configurations whose simulation is not
// address-separable (miss classification, random replacement, prefetch;
// see cache.ErrUnsliceable), and sliced hierarchies never carry a page
// table or TLB: translation and a global TLB stack couple state across
// address classes.
type ShardedHierarchy struct {
	cfg    cache.HierarchyConfig
	router *cache.SliceRouter
	shards []*cache.Hierarchy
	tally  trace.Counts
}

// NewShardedHierarchy builds a sharded hierarchy with up to slices shards
// (clamped to the configuration's address-class count; slices must be
// >= 1). It returns an error wrapping cache.ErrUnsliceable when cfg
// cannot be sliced.
func NewShardedHierarchy(cfg cache.HierarchyConfig, slices int) (*ShardedHierarchy, error) {
	router, err := cache.NewSliceRouter(cfg, slices)
	if err != nil {
		return nil, err
	}
	shards := make([]*cache.Hierarchy, router.Slices())
	for i := range shards {
		h, err := cache.NewHierarchy(cfg, nil)
		if err != nil {
			return nil, err
		}
		shards[i] = h
	}
	return &ShardedHierarchy{cfg: cfg, router: router, shards: shards}, nil
}

// Slices returns the effective shard count.
func (s *ShardedHierarchy) Slices() int { return len(s.shards) }

// Shard exposes one shard's hierarchy; for tests and invariants.
func (s *ShardedHierarchy) Shard(i int) *cache.Hierarchy { return s.shards[i] }

// Replay consumes the whole trace: chunks decode across workers (<= 0
// selects GOMAXPROCS), the coordinator routes each reference to its
// shard, and the shards simulate concurrently. Any prior state is cleared
// first. On error — a decode error typed exactly as the serial reader
// types it, or a consumer failure — all shard state is reset so no
// partial statistics survive, and the error is returned.
func (s *ShardedHierarchy) Replay(f *trace.MemFile, workers int) error {
	return s.ReplayContext(context.Background(), f, workers)
}

// ReplayContext is Replay bounded by ctx: the coordinator checks the
// context once per scattered chunk, so a cancelled replay stops within
// one decode chunk, resets all shard state, and returns ctx's error. A
// replay that stalls while a consumer is blocked mid-chunk is bounded by
// the same chunk granularity — the scatter callback runs between chunks,
// and the fan's queues drain once the coordinator stops feeding them.
func (s *ShardedHierarchy) ReplayContext(ctx context.Context, f *trace.MemFile, workers int) error {
	s.Reset()
	err := f.ForEachSliced(workers, len(s.shards),
		func(fan *trace.SliceFan, refs []trace.Ref) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			s.router.Scatter(refs, &s.tally, fan.Emit)
			return nil
		},
		func(slice int, refs []trace.Ref) error {
			s.shards[slice].RecordBatch(refs)
			return nil
		})
	if err != nil {
		s.Reset()
		return err
	}
	return nil
}

// Merged returns a fresh hierarchy holding the combined counters of all
// shards, with the reference tally taken from the router (shards observe
// split pieces of spanning references; the router tallies each original
// reference once). The result is stats-only: its cache contents are
// empty, so it reports but must not continue simulation.
func (s *ShardedHierarchy) Merged() *cache.Hierarchy {
	m := cache.MustNewHierarchy(s.cfg, nil)
	for _, sh := range s.shards {
		if err := m.Merge(sh); err != nil {
			panic(err) // identical configs by construction
		}
	}
	m.SetRefs(s.tally)
	return m
}

// Summarize condenses the merged counters into the paper's table rows.
func (s *ShardedHierarchy) Summarize() cache.Summary { return s.Merged().Summarize() }

// Refs returns the tally of original references routed so far.
func (s *ShardedHierarchy) Refs() trace.Counts { return s.tally }

// Reset clears every shard and the reference tally.
func (s *ShardedHierarchy) Reset() {
	for _, sh := range s.shards {
		sh.Reset()
	}
	s.tally = trace.Counts{}
}
