package sim_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"threadsched/internal/apps/matmul"
	"threadsched/internal/apps/nbody"
	"threadsched/internal/apps/pde"
	"threadsched/internal/apps/sor"
	"threadsched/internal/cache"
	"threadsched/internal/fault"
	"threadsched/internal/machine"
	"threadsched/internal/sim"
	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

// declassifiedScaled is the Scaled(16) R8000 geometry with L2 miss
// classification cleared: the classification shadow stack is global LRU,
// which address slicing cannot reproduce, so the sliced path simulates
// the same hierarchy without the miss breakdown. Its common set-index
// bits are [7,11) — 16 address classes.
func declassifiedScaled() cache.HierarchyConfig {
	cfg := machine.R8000().Scaled(16).Caches
	cfg.L2.Classify = false
	return cfg
}

// encodeKernel runs one traced kernel through the buffered CPU → Writer
// path and returns the encoded trace image.
func encodeKernel(t testing.TB, run func(cpu *sim.CPU, as *vm.AddressSpace)) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	cpu := sim.NewCPU(w).Buffer(0)
	run(cpu, vm.NewAddressSpace())
	cpu.Flush()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// kernelTraces returns small instances of all four paper kernels, the
// same workloads the miss tables simulate.
func kernelTraces(t testing.TB) map[string][]byte {
	t.Helper()
	return map[string][]byte{
		"matmul": encodeKernel(t, func(cpu *sim.CPU, as *vm.AddressSpace) {
			matmul.NewTraced(cpu, as, 48).Interchanged()
		}),
		"pde": encodeKernel(t, func(cpu *sim.CPU, as *vm.AddressSpace) {
			pde.NewTracedGrid(cpu, as, 65).Regular(2)
		}),
		"sor": encodeKernel(t, func(cpu *sim.CPU, as *vm.AddressSpace) {
			sor.NewTracedArray(cpu, as, 63).Untiled(3)
		}),
		"nbody": encodeKernel(t, func(cpu *sim.CPU, as *vm.AddressSpace) {
			s := nbody.NewSystem(300, 42)
			nbody.StepUnthreaded(s, nbody.NewTracer(cpu, as, 300))
		}),
	}
}

// serialReplay replays the trace through one hierarchy in file order —
// the oracle every sliced configuration must match bit-for-bit.
func serialReplay(t testing.TB, cfg cache.HierarchyConfig, f *trace.MemFile) *cache.Hierarchy {
	t.Helper()
	h := cache.MustNewHierarchy(cfg, nil)
	if err := f.ForEachBatch(1, func(refs []trace.Ref) error {
		h.RecordBatch(refs)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return h
}

// requireIdentical fails unless the merged sharded counters equal the
// serial hierarchy's exactly — per level, per counter, plus the summary
// rows and the reference tally.
func requireIdentical(t *testing.T, label string, serial, merged *cache.Hierarchy) {
	t.Helper()
	if merged.Refs() != serial.Refs() {
		t.Errorf("%s: refs = %+v, want %+v", label, merged.Refs(), serial.Refs())
	}
	levels := [][2]*cache.Cache{
		{merged.L1I(), serial.L1I()},
		{merged.L1D(), serial.L1D()},
		{merged.L2(), serial.L2()},
	}
	for _, pair := range levels {
		if pair[0].Stats() != pair[1].Stats() {
			t.Errorf("%s: %s stats = %+v, want %+v",
				label, pair[0].Config().Name, pair[0].Stats(), pair[1].Stats())
		}
	}
	if merged.Summarize() != serial.Summarize() {
		t.Errorf("%s: summaries differ", label)
	}
}

// TestShardedHierarchyMatchesSerial: the end-to-end differential — all
// four kernels, every slice and worker count, merged counters
// bit-identical to the serial replay.
func TestShardedHierarchyMatchesSerial(t *testing.T) {
	cfg := declassifiedScaled()
	for name, data := range kernelTraces(t) {
		f, err := trace.NewMemFile(data)
		if err != nil {
			t.Fatal(err)
		}
		serial := serialReplay(t, cfg, f)
		for _, slices := range []int{2, 3, 4} {
			for _, workers := range []int{2, 4} {
				sh, err := sim.NewShardedHierarchy(cfg, slices)
				if err != nil {
					t.Fatal(err)
				}
				if err := sh.Replay(f, workers); err != nil {
					t.Fatalf("%s slices=%d workers=%d: %v", name, slices, workers, err)
				}
				label := name
				requireIdentical(t, label, serial, sh.Merged())
				if sh.Refs() != serial.Refs() {
					t.Errorf("%s slices=%d: router tally %+v, want %+v", name, slices, sh.Refs(), serial.Refs())
				}
			}
		}
	}
}

// TestShardedHierarchyReplayReuse: a second Replay on the same value must
// clear the first run's state, and Reset empties everything.
func TestShardedHierarchyReplayReuse(t *testing.T) {
	cfg := declassifiedScaled()
	data := kernelTraces(t)["pde"]
	f, err := trace.NewMemFile(data)
	if err != nil {
		t.Fatal(err)
	}
	serial := serialReplay(t, cfg, f)
	sh, err := sim.NewShardedHierarchy(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Replay(f, 2); err != nil {
		t.Fatal(err)
	}
	if err := sh.Replay(f, 2); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "second replay", serial, sh.Merged())
	sh.Reset()
	if sh.Refs() != (trace.Counts{}) {
		t.Errorf("after Reset: refs = %+v, want zero", sh.Refs())
	}
}

// TestShardedHierarchyCorruptTrace: a damaged chunk surfaces the same
// typed error the serial reader reports, and no partial statistics
// survive — all-or-nothing, as the fault-containment contract requires.
func TestShardedHierarchyCorruptTrace(t *testing.T) {
	cfg := declassifiedScaled()
	data := kernelTraces(t)["matmul"]
	// Flip a bit well past the midpoint so early chunks decode and some
	// shards consume references before the damage is discovered.
	data[len(data)-64] ^= 0x10
	f, err := trace.NewMemFile(data)
	if err != nil {
		// Damage caught at index build; rebuild with a payload-only flip.
		t.Fatalf("index build rejected the image (%v); pick an offset inside a payload", err)
	}
	sh, err := sim.NewShardedHierarchy(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	err = sh.Replay(f, 4)
	if !errors.Is(err, trace.ErrCorrupt) && !errors.Is(err, trace.ErrTruncated) {
		t.Fatalf("Replay err = %v, want ErrCorrupt or ErrTruncated", err)
	}
	if sh.Refs() != (trace.Counts{}) {
		t.Errorf("partial tally survived the error: %+v", sh.Refs())
	}
	for i := 0; i < sh.Slices(); i++ {
		if s := sh.Shard(i).L1D().Stats(); s != (cache.Stats{}) {
			t.Errorf("shard %d retained partial stats: %+v", i, s)
		}
	}
}

// TestShardedHierarchyUnsliceable: configurations whose simulation is not
// address-separable are rejected with the typed error.
func TestShardedHierarchyUnsliceable(t *testing.T) {
	cfg := machine.R8000().Scaled(16).Caches // L2.Classify still set
	if _, err := sim.NewShardedHierarchy(cfg, 2); !errors.Is(err, cache.ErrUnsliceable) {
		t.Fatalf("err = %v, want cache.ErrUnsliceable", err)
	}
}

// TestShardedHierarchySliceClamp: requesting more slices than address
// classes clamps rather than leaving idle shards.
func TestShardedHierarchySliceClamp(t *testing.T) {
	sh, err := sim.NewShardedHierarchy(declassifiedScaled(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Slices() != 16 {
		t.Fatalf("Slices() = %d, want 16 (the class count)", sh.Slices())
	}
}

// TestShardedHierarchyFaultInjection: deterministic decode delays
// perturb chunk completion and queue timing; merged counters must not
// move. This test runs in the -race suite.
func TestShardedHierarchyFaultInjection(t *testing.T) {
	cfg := declassifiedScaled()
	data := kernelTraces(t)["sor"]
	fSerial, err := trace.NewMemFile(data)
	if err != nil {
		t.Fatal(err)
	}
	serial := serialReplay(t, cfg, fSerial)
	for _, seed := range []uint64{3, 99} {
		f, err := trace.NewMemFile(data)
		if err != nil {
			t.Fatal(err)
		}
		f.Inject(fault.New(fault.Config{
			Seed:  seed,
			Prob:  map[fault.Site]float64{trace.FaultSiteShardChunk: 0.5},
			Delay: 100 * time.Microsecond,
		}))
		sh, err := sim.NewShardedHierarchy(cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := sh.Replay(f, 4); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		requireIdentical(t, "fault injection", serial, sh.Merged())
	}
}

// FuzzSliceRouter: differential fuzzing of the whole sliced path —
// arbitrary reference streams (including spanning and wrapping
// references) encoded, decoded, routed, and simulated must always merge
// to the serial counters.
func FuzzSliceRouter(f *testing.F) {
	f.Add(uint64(1), uint16(100), uint8(2))
	f.Add(uint64(42), uint16(1000), uint8(3))
	f.Add(uint64(7), uint16(5000), uint8(16))
	cfg := declassifiedScaled()
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, slices uint8) {
		if n == 0 {
			return
		}
		s := int(slices)
		if s < 1 {
			s = 1
		}
		rng := seed | 1
		refs := make([]trace.Ref, 0, n)
		for i := 0; i < int(n); i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			r := trace.Ref{
				Kind: trace.Kind(rng >> 62 % 3),
				Addr: rng >> 38 % (1 << 16), // tight span: sets collide
				Size: uint8(rng >> 8),       // 0..255, many spanning refs
			}
			if rng%31 == 0 {
				r.Addr = ^uint64(0) - rng%256 // near-wrap addresses
			}
			refs = append(refs, r)
		}
		var buf bytes.Buffer
		w := trace.NewWriter(&buf)
		for _, r := range refs {
			w.Record(r)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		mf, err := trace.NewMemFile(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		serial := cache.MustNewHierarchy(cfg, nil)
		serial.RecordBatch(refs)
		sh, err := sim.NewShardedHierarchy(cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := sh.Replay(mf, 4); err != nil {
			t.Fatal(err)
		}
		merged := sh.Merged()
		if merged.Refs() != serial.Refs() {
			t.Fatalf("refs = %+v, want %+v", merged.Refs(), serial.Refs())
		}
		for _, pair := range [][2]*cache.Cache{
			{merged.L1I(), serial.L1I()},
			{merged.L1D(), serial.L1D()},
			{merged.L2(), serial.L2()},
		} {
			if pair[0].Stats() != pair[1].Stats() {
				t.Fatalf("%s stats = %+v, want %+v",
					pair[0].Config().Name, pair[0].Stats(), pair[1].Stats())
			}
		}
	})
}
