package stealing

import (
	"testing"

	"threadsched/internal/machine"
	"threadsched/internal/smp"
)

func newSys(t *testing.T, procs int) *smp.System {
	t.Helper()
	sys, err := smp.New(smp.Config{Procs: procs, Machine: machine.R8000().Scaled(64)})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRunsEveryTaskOnce(t *testing.T) {
	sys := newSys(t, 4)
	s := NewSim(sys, 7)
	const n = 500
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		s.Fork(func(a1, _ int) { counts[a1]++ }, i, 0, 0, 0, 0)
	}
	if s.Pending() != n {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Run(false)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
	if s.Pending() != 0 || s.Executed != n {
		t.Fatalf("executed = %d, pending = %d", s.Executed, s.Pending())
	}
}

func TestStealingSpreadsWork(t *testing.T) {
	sys := newSys(t, 4)
	s := NewSim(sys, 3)
	for i := 0; i < 400; i++ {
		s.Fork(func(int, int) {
			// Touch memory so each worker's hierarchy sees traffic.
			sys.CPU().Load(uint64(0x1000+i*8), 8)
		}, i, 0, 0, 0, 0)
	}
	s.Run(false)
	busy := 0
	for p := 0; p < sys.Procs(); p++ {
		if sys.Proc(p).Refs > 0 {
			busy++
		}
	}
	if busy != 4 {
		t.Fatalf("%d workers busy, want 4", busy)
	}
	if s.Steals == 0 {
		t.Fatal("no steals despite all work forked to worker 0")
	}
}

func TestSingleWorkerIsLIFO(t *testing.T) {
	sys := newSys(t, 1)
	s := NewSim(sys, 1)
	var order []int
	for i := 0; i < 5; i++ {
		s.Fork(func(a1, _ int) { order = append(order, a1) }, i, 0, 0, 0, 0)
	}
	s.Run(false)
	want := []int{4, 3, 2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want LIFO %v", order, want)
		}
	}
}

func TestDeterministic(t *testing.T) {
	run := func() uint64 {
		sys := newSys(t, 4)
		s := NewSim(sys, 99)
		for i := 0; i < 300; i++ {
			s.Fork(func(int, int) { sys.CPU().Load(uint64(i*64), 8) }, i, 0, 0, 0, 0)
		}
		s.Run(false)
		return s.Steals
	}
	if run() != run() {
		t.Fatal("stealing schedule not deterministic for equal seeds")
	}
}

func TestOverheadCharging(t *testing.T) {
	sys := newSys(t, 2)
	s := NewSim(sys, 1)
	s.ForkInstr, s.RunInstr = 100, 16
	s.cpuForOverhead = sys.CPU()
	s.Fork(func(int, int) {}, 0, 0, 0, 0, 0)
	s.Run(false)
	res := sys.Finish()
	var total uint64
	for p := 0; p < sys.Procs(); p++ {
		total += sys.Proc(p).Instructions
	}
	if total != 116 {
		t.Fatalf("charged %d instructions, want 116", total)
	}
	_ = res
}

// The headline comparison: at equal load balance, the hint-binned
// locality scheduler must beat work stealing on private-cache misses and
// coherence traffic for the spatially structured N-body workload.
func TestLocalityBeatsWorkStealing(t *testing.T) {
	if testing.Short() {
		t.Skip("SMP cache simulation")
	}
	m := machine.R8000().Scaled(16)
	loc, ws, steals, err := CompareWithLocality(m, 4, 4000, true)
	if err != nil {
		t.Fatal(err)
	}
	if steals == 0 {
		t.Fatal("work stealing never stole; comparison is vacuous")
	}
	if loc.L2Misses >= ws.L2Misses {
		t.Errorf("locality L2 misses %d not < work stealing %d", loc.L2Misses, ws.L2Misses)
	}
	if loc.Stats.Invalidations >= ws.Stats.Invalidations {
		t.Errorf("locality invalidations %d not < work stealing %d",
			loc.Stats.Invalidations, ws.Stats.Invalidations)
	}
	// Both must parallelize: neither may degenerate to one worker.
	if ws.Speedup() < 2 || loc.Speedup() < 2 {
		t.Errorf("speedups too low: locality %.2f, stealing %.2f", loc.Speedup(), ws.Speedup())
	}
	t.Logf("locality: misses=%d inval=%d speedup=%.2f | stealing: misses=%d inval=%d speedup=%.2f steals=%d",
		loc.L2Misses, loc.Stats.Invalidations, loc.Speedup(),
		ws.L2Misses, ws.Stats.Invalidations, ws.Speedup(), steals)
}

func TestSimString(t *testing.T) {
	s := NewSim(newSys(t, 4), 1)
	if s.String() != "work-stealing/4" {
		t.Fatalf("String = %q", s.String())
	}
}
