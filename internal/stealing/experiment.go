package stealing

import (
	"threadsched/internal/apps/nbody"
	"threadsched/internal/machine"
	"threadsched/internal/smp"
	"threadsched/internal/vm"
)

// NBodyExperiment runs one threaded Barnes–Hut step under work stealing
// on a simulated multiprocessor — the counterpart of
// smp.NBodyExperiment's locality-bin and scatter policies.
func NBodyExperiment(cfg smp.Config, n int, seed uint64) (smp.Result, uint64, error) {
	sys, err := smp.New(cfg)
	if err != nil {
		return smp.Result{}, 0, err
	}
	as := vm.NewAddressSpace()
	bodies := nbody.NewSystem(n, seed)
	tr := nbody.NewTracer(sys.CPU(), as, n)

	sim := NewSim(sys, seed)
	// Charge the same per-thread fork/run instruction budgets the traced
	// locality scheduler charges (sim.Threads), so the comparison isolates
	// execution order rather than bookkeeping costs.
	sim.ForkInstr, sim.RunInstr = 100, 16
	sim.cpuForOverhead = sys.CPU()
	nbody.StepThreadedWith(bodies, sim, cfg.Machine.L2CacheSize(), tr)
	res := sys.Finish()
	return res, sim.Steals, nil
}

// CompareWithLocality runs the same workload under locality-bin dispatch
// and under work stealing, returning both results.
func CompareWithLocality(m machine.Machine, procs, n int, coherence bool) (locality, stealing smp.Result, steals uint64, err error) {
	return CompareWithPolicy(m, procs, n, coherence, smp.LocalityBins)
}

// CompareWithPolicy is CompareWithLocality generalized over the locality
// scheduler's dispatch policy, so work stealing can also be baselined
// against segment-tour dispatch — its closest locality-aware relative
// (both steal for balance; only segments preserve tour adjacency).
func CompareWithPolicy(m machine.Machine, procs, n int, coherence bool, pol smp.Policy) (locality, stealing smp.Result, steals uint64, err error) {
	cfg := smp.Config{Procs: procs, Machine: m, Coherence: coherence}
	locality, err = smp.NBodyExperiment(cfg, n, pol, 42)
	if err != nil {
		return
	}
	stealing, steals, err = NBodyExperiment(cfg, n, 42)
	return
}
