// Package stealing implements the scheduler that actually won in
// practice — Cilk-style work stealing (the paper cites Cilk [10] as the
// fine-grained-threads state of the art) — as a deterministic simulation,
// so the locality scheduler can be compared against the modern default
// on equal terms: same threads, same simulated multiprocessor, different
// execution order.
//
// Each worker owns a deque; forked threads are distributed to the
// forking "worker 0" (the paper's programs fork from a single sequential
// loop), workers pop from the bottom of their own deque (LIFO) and steal
// from the top of a pseudo-randomly chosen victim (FIFO), the classic
// discipline. The simulation advances workers round-robin one thread at
// a time, routing each thread's references to that worker's private
// cache via the smp substrate.
//
// What the comparison shows (see EXPERIMENTS.md): work stealing balances
// load as well as locality-bin dispatch, but — having no knowledge of
// which threads share data — spreads spatially adjacent threads across
// processors, costing cache misses and coherence traffic that the
// hint-binned scheduler avoids.
package stealing

import (
	"fmt"

	"threadsched/internal/core"
	"threadsched/internal/sim"
	"threadsched/internal/smp"
)

// task is one pending thread.
type task struct {
	fn         core.Func
	arg1, arg2 int
}

// Sim is a deterministic work-stealing execution engine over an smp
// multiprocessor.
type Sim struct {
	sys    *smp.System
	deques [][]task
	rng    uint64
	// Executed counts completed threads.
	Executed uint64
	// Steals counts successful steal operations.
	Steals uint64

	// ForkInstr and RunInstr, when non-zero together with cpuForOverhead,
	// charge per-thread scheduling costs to the simulation so comparisons
	// against the traced locality scheduler isolate execution order.
	ForkInstr, RunInstr int
	cpuForOverhead      *sim.CPU
}

// NewSim returns a work-stealing engine over sys.
func NewSim(sys *smp.System, seed uint64) *Sim {
	return &Sim{
		sys:    sys,
		deques: make([][]task, sys.Procs()),
		rng:    seed*0x9e3779b97f4a7c15 + 1,
	}
}

// Fork implements the fork half of nbody.Forker: threads are pushed to
// worker 0's deque in program order, as when a sequential loop forks all
// work. Hints are accepted for interface compatibility and ignored —
// that is the point of the comparison.
func (s *Sim) Fork(f core.Func, arg1, arg2 int, _, _, _ uint64) {
	if s.cpuForOverhead != nil {
		s.cpuForOverhead.Exec(0x2000, s.ForkInstr)
	}
	s.deques[0] = append(s.deques[0], task{fn: f, arg1: arg1, arg2: arg2})
}

// Run executes all forked threads to completion under the stealing
// discipline. The keep flag is accepted for interface compatibility;
// schedules are always consumed.
func (s *Sim) Run(_ bool) {
	procs := len(s.deques)
	for {
		idle := 0
		for w := 0; w < procs; w++ {
			if t, ok := s.popBottom(w); ok {
				s.execute(w, t)
				continue
			}
			if t, ok := s.steal(w); ok {
				s.execute(w, t)
				continue
			}
			idle++
		}
		if idle == procs {
			return
		}
	}
}

func (s *Sim) popBottom(w int) (task, bool) {
	d := s.deques[w]
	if len(d) == 0 {
		return task{}, false
	}
	t := d[len(d)-1]
	s.deques[w] = d[:len(d)-1]
	return t, true
}

// steal takes one task from the top of a pseudo-random victim's deque.
func (s *Sim) steal(thief int) (task, bool) {
	procs := len(s.deques)
	for attempt := 0; attempt < procs; attempt++ {
		s.rng = s.rng*6364136223846793005 + 1442695040888963407
		victim := int((s.rng >> 33) % uint64(procs))
		if victim == thief || len(s.deques[victim]) == 0 {
			continue
		}
		t := s.deques[victim][0]
		s.deques[victim] = s.deques[victim][1:]
		s.Steals++
		return t, true
	}
	// Deterministic fallback sweep so no runnable task is missed.
	for victim := 0; victim < procs; victim++ {
		if victim == thief || len(s.deques[victim]) == 0 {
			continue
		}
		t := s.deques[victim][0]
		s.deques[victim] = s.deques[victim][1:]
		s.Steals++
		return t, true
	}
	return task{}, false
}

func (s *Sim) execute(w int, t task) {
	s.sys.Switch(w)
	if s.cpuForOverhead != nil {
		s.cpuForOverhead.Exec(0x2100, s.RunInstr)
	}
	t.fn(t.arg1, t.arg2)
	s.Executed++
}

// Pending returns the number of unexecuted tasks across all deques.
func (s *Sim) Pending() int {
	n := 0
	for _, d := range s.deques {
		n += len(d)
	}
	return n
}

// String describes the engine for experiment labels.
func (s *Sim) String() string { return fmt.Sprintf("work-stealing/%d", len(s.deques)) }
