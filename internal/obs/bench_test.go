package obs

import "testing"

// TestDisabledPathDoesNotAllocate pins the zero-overhead contract: every
// recording operation through nil (disabled) handles must be free of
// allocation, since instrumented hot paths call them unconditionally.
func TestDisabledPathDoesNotAllocate(t *testing.T) {
	var o *Obs
	c := o.Registry().Counter("c")
	g := o.Registry().Gauge("g")
	h := o.Registry().Histogram("h")
	tl := o.Timeline()
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1, 2)
		c.Inc(0)
		g.Set(0, 3)
		h.Observe(2, 4)
		sp := tl.Begin(0, "span")
		sp.End()
		_ = o.AcquireTrack()
	}); n != 0 {
		t.Fatalf("disabled recording path allocates %v per op, want 0", n)
	}
}

// The enabled steady-state recording path must not allocate either —
// cells are preallocated at metric creation.
func TestEnabledRecordingDoesNotAllocate(t *testing.T) {
	o := New(4)
	c := o.Registry().Counter("c")
	g := o.Registry().Gauge("g")
	h := o.Registry().Histogram("h")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc(1)
		g.Set(1, 7)
		h.Observe(1, 9)
	}); n != 0 {
		t.Fatalf("enabled recording path allocates %v per op, want 0", n)
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	b.ReportAllocs()
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc(0)
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	b.ReportAllocs()
	c := NewRegistry(4).Counter("c")
	for i := 0; i < b.N; i++ {
		c.Inc(1)
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	b.ReportAllocs()
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(0, uint64(i))
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	b.ReportAllocs()
	h := NewRegistry(4).Histogram("h")
	for i := 0; i < b.N; i++ {
		h.Observe(1, uint64(i))
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	b.ReportAllocs()
	var tl *Timeline
	for i := 0; i < b.N; i++ {
		sp := tl.Begin(0, "x")
		sp.End()
	}
}
