package obs

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
)

// Obs bundles the pieces of the observability layer an instrumented
// component needs: the metrics registry, the (optional) span timeline,
// and pprof labelling for worker goroutines. A nil *Obs is the disabled
// state; every method on it is a safe no-op fast path, so code threads
// an *Obs through unconditionally and pays only nil checks when
// observability is off.
type Obs struct {
	reg    *Registry
	tl     *Timeline
	ticket atomic.Uint64
}

// New returns an enabled Obs with a metrics registry sharded over the
// given number of tracks. The timeline stays disabled until
// WithTimeline.
func New(tracks int) *Obs {
	return &Obs{reg: NewRegistry(tracks)}
}

// WithTimeline enables span tracing with one timeline row per registry
// track, returning o for chaining. No-op on a nil Obs or if already
// enabled.
func (o *Obs) WithTimeline() *Obs {
	if o != nil && o.tl == nil {
		o.tl = NewTimeline(o.reg.Tracks())
	}
	return o
}

// Enabled reports whether metrics are being recorded.
func (o *Obs) Enabled() bool { return o != nil }

// Registry returns the metrics registry; nil when disabled (the nil
// registry hands out nil — disabled but usable — metric handles).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Timeline returns the span timeline; nil when disabled or not enabled
// by WithTimeline (the nil timeline hands out no-op Spans).
func (o *Obs) Timeline() *Timeline {
	if o == nil {
		return nil
	}
	return o.tl
}

// Tracks returns the registry's track count; 0 when disabled.
func (o *Obs) Tracks() int { return o.Registry().Tracks() }

// AcquireTrack hands out track indexes round-robin, for components that
// need a lane of their own (a pipeline's consumer goroutine, one
// harness job) rather than a fixed worker id. Returns 0 when disabled.
func (o *Obs) AcquireTrack() int {
	if o == nil {
		return 0
	}
	return int((o.ticket.Add(1) - 1) % uint64(o.reg.Tracks()))
}

// Snapshot merges the registry into a JSON-serializable snapshot; the
// zero Snapshot when disabled.
func (o *Obs) Snapshot() Snapshot { return o.Registry().Snapshot() }

// Labeled runs fn under runtime/pprof labels naming the worker track
// and phase, so CPU and goroutine profiles of a parallel run attribute
// samples per worker and per phase (filter on tsched_worker /
// tsched_phase in pprof). Disabled: calls fn directly.
func (o *Obs) Labeled(track int, phase string, fn func()) {
	if o == nil {
		fn()
		return
	}
	labels := pprof.Labels("tsched_worker", strconv.Itoa(track), "tsched_phase", phase)
	pprof.Do(context.Background(), labels, func(context.Context) { fn() })
}
