// Package obs is the opt-in observability layer for the scheduler and
// simulation stack: a lock-free per-track metrics registry (counters,
// gauges, power-of-two histograms, sharded per track and merged on
// snapshot), a worker-timeline tracer emitting Chrome trace_event JSON
// (loadable in chrome://tracing or https://ui.perfetto.dev), and
// runtime/pprof goroutine labels for the scheduler's worker pool.
//
// # The disabled contract
//
// A nil *Obs, nil *Registry, nil *Timeline, and every handle obtained
// through them are valid values meaning "disabled": every recording
// method is a nil-check fast path that performs no work and, crucially,
// no allocation. Instrumented code therefore records unconditionally
// through its handles and pays one predictable branch when observability
// is off — the zero-overhead contract pinned by this package's
// TestDisabledPathDoesNotAllocate and Benchmark*Disabled.
//
// # Tracks
//
// A track is one lane of the sharded state, usually a worker identity:
// scheduler worker w records into track w, so a snapshot can report
// bins-per-worker or steals-per-worker, and the timeline renders one row
// per worker. Track indexes are clamped by modulo, so any int is safe.
package obs

import (
	"encoding/json"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// stride is the number of uint64 slots reserved per track in a metric's
// cell array: one 64-byte cache line, so two tracks' hot counters never
// false-share.
const stride = 8

// Registry holds named metrics sharded across a fixed number of tracks.
// Metric creation (Counter/Gauge/Histogram by name) takes a mutex and is
// idempotent; the recording paths on the returned handles are lock-free.
type Registry struct {
	tracks   int
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns a registry sharded over the given number of tracks
// (clamped to at least one).
func NewRegistry(tracks int) *Registry {
	if tracks < 1 {
		tracks = 1
	}
	return &Registry{
		tracks:   tracks,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Tracks returns the shard count; 0 on a nil registry.
func (r *Registry) Tracks() int {
	if r == nil {
		return 0
	}
	return r.tracks
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (disabled, still usable) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name, tracks: r.tracks, cells: make([]uint64, r.tracks*stride)}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name, tracks: r.tracks, cells: make([]uint64, r.tracks*stride)}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(name, r.tracks)
		r.hists[name] = h
	}
	return h
}

// clampTrack maps any int onto [0, tracks).
func clampTrack(track, tracks int) int {
	track %= tracks
	if track < 0 {
		track += tracks
	}
	return track
}

// Counter is a monotonically increasing per-track counter. The nil
// handle is disabled and all methods on it are no-ops.
type Counter struct {
	name   string
	tracks int
	cells  []uint64
}

// Add adds n to the track's cell.
func (c *Counter) Add(track int, n uint64) {
	if c == nil {
		return
	}
	atomic.AddUint64(&c.cells[clampTrack(track, c.tracks)*stride], n)
}

// Inc adds one to the track's cell.
func (c *Counter) Inc(track int) { c.Add(track, 1) }

// Gauge records a last-written value per track plus the per-track high
// watermark. Tracks may have concurrent writers (a server hands out
// tracks modulo the shard count, so two jobs can share one): the current
// value is last-writer-wins and the watermark is maintained with a CAS
// loop, so no update is ever lost.
type Gauge struct {
	name   string
	tracks int
	cells  []uint64 // per track: [current, max, _pad...]
}

// Set stores v as the track's current value, updating its watermark.
func (g *Gauge) Set(track int, v uint64) {
	if g == nil {
		return
	}
	i := clampTrack(track, g.tracks) * stride
	atomic.StoreUint64(&g.cells[i], v)
	casMax(&g.cells[i+1], v)
}

// casMax raises *p to v if v is larger, retrying on contention so a
// concurrent smaller write can never overwrite a larger one.
func casMax(p *uint64, v uint64) {
	for {
		cur := atomic.LoadUint64(p)
		if v <= cur || atomic.CompareAndSwapUint64(p, cur, v) {
			return
		}
	}
}

// casMin lowers *p to v if v is smaller, retrying on contention.
func casMin(p *uint64, v uint64) {
	for {
		cur := atomic.LoadUint64(p)
		if v >= cur || atomic.CompareAndSwapUint64(p, cur, v) {
			return
		}
	}
}

// Histogram layout constants: per track, hSlots uint64 cells hold the
// observation count, sum, min, max, and one bucket per power of two.
const (
	hCount   = 0
	hSum     = 1
	hMin     = 2
	hMax     = 3
	hBuckets = 4
	nBuckets = 65 // bits.Len64 ranges over 0..64
	hSlots   = (hBuckets + nBuckets + stride - 1) / stride * stride
)

// Histogram is a power-of-two-bucketed histogram: an observation v lands
// in bucket bits.Len64(v), i.e. bucket b holds values in [2^(b-1), 2^b).
// Suited to the latencies and sizes this package records, where relative
// resolution matters and observations span many orders of magnitude.
// Like Gauge, each track supports concurrent writers: min/max use CAS
// loops, and the count cell is written last (and read first by Snapshot)
// so a concurrent scrape never reports more observations than it can
// account for in the buckets.
type Histogram struct {
	name   string
	tracks int
	cells  []uint64
}

func newHistogram(name string, tracks int) *Histogram {
	h := &Histogram{name: name, tracks: tracks, cells: make([]uint64, tracks*hSlots)}
	for t := 0; t < tracks; t++ {
		h.cells[t*hSlots+hMin] = ^uint64(0)
	}
	return h
}

// Observe records v on the track. The count cell is updated last so that
// a concurrent Snapshot (which reads it first) sees count <= bucket
// total: every counted observation already has its bucket, sum, and
// min/max in place.
func (h *Histogram) Observe(track int, v uint64) {
	if h == nil {
		return
	}
	i := clampTrack(track, h.tracks) * hSlots
	atomic.AddUint64(&h.cells[i+hSum], v)
	casMin(&h.cells[i+hMin], v)
	casMax(&h.cells[i+hMax], v)
	atomic.AddUint64(&h.cells[i+hBuckets+bits.Len64(v)], 1)
	atomic.AddUint64(&h.cells[i+hCount], 1)
}

// Snapshot is the merged, JSON-serializable state of a registry at one
// moment. Metric slices are sorted by name so two snapshots of identical
// state render identically.
type Snapshot struct {
	Tracks     int             `json:"tracks"`
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

// CounterSnap is one counter's merged value plus its per-track shards.
type CounterSnap struct {
	Name     string   `json:"name"`
	Total    uint64   `json:"total"`
	PerTrack []uint64 `json:"per_track"`
}

// GaugeSnap is one gauge's per-track last values and overall watermark.
type GaugeSnap struct {
	Name     string   `json:"name"`
	Max      uint64   `json:"max"`
	PerTrack []uint64 `json:"per_track"`
}

// HistogramSnap is one histogram merged across tracks; Buckets lists
// only the occupied power-of-two buckets.
type HistogramSnap struct {
	Name    string   `json:"name"`
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one occupied histogram bucket: Count observations were below
// UpperBound (and at least half of it, except in the 0/1 buckets).
type Bucket struct {
	UpperBound uint64 `json:"le"`
	Count      uint64 `json:"count"`
}

// Snapshot merges every metric's shards. It may run concurrently with
// recording; each cell is read atomically, so totals are consistent per
// metric to within in-flight updates. For histograms the per-track count
// is read before the buckets while Observe publishes it last, so a
// snapshot's Count never exceeds its bucket total, Min <= Max whenever
// Count > 0, and gauge/histogram extrema reflect every completed
// observation (the CAS loops in Set/Observe cannot lose them). The
// scrape-under-load tests pin these invariants.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Tracks: r.tracks}
	for _, name := range sortedKeys(r.counters) {
		c := r.counters[name]
		cs := CounterSnap{Name: name, PerTrack: make([]uint64, r.tracks)}
		for t := 0; t < r.tracks; t++ {
			v := atomic.LoadUint64(&c.cells[t*stride])
			cs.PerTrack[t] = v
			cs.Total += v
		}
		s.Counters = append(s.Counters, cs)
	}
	for _, name := range sortedKeys(r.gauges) {
		g := r.gauges[name]
		gs := GaugeSnap{Name: name, PerTrack: make([]uint64, r.tracks)}
		for t := 0; t < r.tracks; t++ {
			gs.PerTrack[t] = atomic.LoadUint64(&g.cells[t*stride])
			if m := atomic.LoadUint64(&g.cells[t*stride+1]); m > gs.Max {
				gs.Max = m
			}
		}
		s.Gauges = append(s.Gauges, gs)
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		hs := HistogramSnap{Name: name, Min: ^uint64(0)}
		var buckets [nBuckets]uint64
		for t := 0; t < r.tracks; t++ {
			base := t * hSlots
			hs.Count += atomic.LoadUint64(&h.cells[base+hCount])
			hs.Sum += atomic.LoadUint64(&h.cells[base+hSum])
			if v := atomic.LoadUint64(&h.cells[base+hMin]); v < hs.Min {
				hs.Min = v
			}
			if v := atomic.LoadUint64(&h.cells[base+hMax]); v > hs.Max {
				hs.Max = v
			}
			for b := 0; b < nBuckets; b++ {
				buckets[b] += atomic.LoadUint64(&h.cells[base+hBuckets+b])
			}
		}
		if hs.Count == 0 {
			hs.Min = 0
		} else {
			hs.Mean = float64(hs.Sum) / float64(hs.Count)
		}
		for b, n := range buckets {
			if n == 0 {
				continue
			}
			ub := ^uint64(0)
			if b < 64 {
				ub = 1 << uint(b)
			}
			hs.Buckets = append(hs.Buckets, Bucket{UpperBound: ub, Count: n})
		}
		s.Histograms = append(s.Histograms, hs)
	}
	return s
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
