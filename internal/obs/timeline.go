package obs

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"
)

// DefaultTimelineEvents bounds the events retained per track; events past
// the cap are dropped (and counted), so a long run cannot balloon the
// trace file. 64k complete events render comfortably in Perfetto.
const DefaultTimelineEvents = 1 << 16

// Timeline records worker spans and emits them in the Chrome trace_event
// JSON format (the "JSON Array Format" every trace viewer accepts): one
// thread row per track, one complete ("X") event per span. A nil
// *Timeline is disabled; Begin on it returns a no-op Span.
type Timeline struct {
	start  time.Time
	limit  int
	tracks []timelineTrack
}

type timelineTrack struct {
	mu      sync.Mutex
	name    string
	events  []tevent
	dropped uint64
}

type tevent struct {
	name string
	ph   byte // 'X' complete, 'i' instant
	ts   time.Duration
	dur  time.Duration
}

// NewTimeline returns a timeline with one row per track (clamped to at
// least one) and the default per-track event cap.
func NewTimeline(tracks int) *Timeline {
	if tracks < 1 {
		tracks = 1
	}
	return &Timeline{start: time.Now(), limit: DefaultTimelineEvents, tracks: make([]timelineTrack, tracks)}
}

// SetTrackName names a track's row in the viewer (default "track N").
func (t *Timeline) SetTrackName(track int, name string) {
	if t == nil {
		return
	}
	tr := &t.tracks[clampTrack(track, len(t.tracks))]
	tr.mu.Lock()
	tr.name = name
	tr.mu.Unlock()
}

// Span is an open interval on one track; End closes and records it.
// The zero Span (from a disabled timeline) is valid and End is a no-op.
type Span struct {
	t     *Timeline
	track int
	name  string
	ts    time.Duration
}

// Begin opens a span on the track. The caller must End it from any
// goroutine; spans on one track may nest (the viewer stacks them).
func (t *Timeline) Begin(track int, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, track: track, name: name, ts: time.Since(t.start)}
}

// End records the span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	now := time.Since(s.t.start)
	s.t.add(s.track, tevent{name: s.name, ph: 'X', ts: s.ts, dur: now - s.ts})
}

// Instant records a zero-duration marker on the track.
func (t *Timeline) Instant(track int, name string) {
	if t == nil {
		return
	}
	t.add(track, tevent{name: name, ph: 'i', ts: time.Since(t.start)})
}

func (t *Timeline) add(track int, e tevent) {
	tr := &t.tracks[clampTrack(track, len(t.tracks))]
	tr.mu.Lock()
	if len(tr.events) >= t.limit {
		tr.dropped++
	} else {
		tr.events = append(tr.events, e)
	}
	tr.mu.Unlock()
}

// jsonEvent is one trace_event record; ts and dur are microseconds.
type jsonEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteJSON emits the timeline as Chrome trace_event JSON, loadable in
// chrome://tracing and https://ui.perfetto.dev. Concurrent recording is
// safe but events added during the write may be missed.
func (t *Timeline) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	events := []jsonEvent{{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "threadsched"},
	}}
	for i := range t.tracks {
		tr := &t.tracks[i]
		tr.mu.Lock()
		name := tr.name
		if name == "" {
			name = "track " + strconv.Itoa(i)
		}
		events = append(events, jsonEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i,
			Args: map[string]any{"name": name},
		})
		for _, e := range tr.events {
			je := jsonEvent{Name: e.name, Ph: string(e.ph), Pid: 1, Tid: i, Ts: usec(e.ts)}
			if e.ph == 'X' {
				d := usec(e.dur)
				je.Dur = &d
			} else if e.ph == 'i' {
				je.S = "t" // thread-scoped instant
			}
			events = append(events, je)
		}
		if tr.dropped > 0 {
			events = append(events, jsonEvent{
				Name: "events dropped (per-track cap)", Ph: "i", Pid: 1, Tid: i,
				Ts: usec(time.Since(t.start)), S: "t",
				Args: map[string]any{"dropped": tr.dropped},
			})
		}
		tr.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		DisplayTimeUnit string      `json:"displayTimeUnit"`
		TraceEvents     []jsonEvent `json:"traceEvents"`
	}{"ms", events})
}
