package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestHistogramConcurrentExtrema is the regression test for the
// load-then-store races in Histogram.Observe's min/max update: two
// writers sharing a track (the server's AcquireTrack-modulo pattern)
// could interleave so that a larger value was stored over a smaller one
// after the smaller writer had already checked, permanently corrupting
// the extrema. With the CAS loops, the global min and max must survive
// any interleaving.
func TestHistogramConcurrentExtrema(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const (
		writers = 4
		perOp   = 200_000
	)
	reg := NewRegistry(1) // one track: every writer shares it
	h := reg.Histogram("x")
	var next atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perOp; i++ {
				// Monotonically increasing observations: the final max must
				// be the last value handed out, and the min the first.
				h.Observe(0, next.Add(1))
			}
		}()
	}
	wg.Wait()
	s := reg.Snapshot()
	hs := s.Histograms[0]
	total := uint64(writers * perOp)
	if hs.Count != total {
		t.Fatalf("count = %d, want %d", hs.Count, total)
	}
	if hs.Min != 1 {
		t.Fatalf("min = %d, want 1 (lost-update race)", hs.Min)
	}
	if hs.Max != total {
		t.Fatalf("max = %d, want %d (lost-update race)", hs.Max, total)
	}
	if hs.Sum != total*(total+1)/2 {
		t.Fatalf("sum = %d, want %d", hs.Sum, total*(total+1)/2)
	}
}

// TestGaugeConcurrentWatermark is the same regression for Gauge.Set's
// watermark.
func TestGaugeConcurrentWatermark(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const (
		writers = 4
		perOp   = 200_000
	)
	reg := NewRegistry(1)
	g := reg.Gauge("depth")
	var next atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perOp; i++ {
				g.Set(0, next.Add(1))
			}
		}()
	}
	wg.Wait()
	s := reg.Snapshot()
	if max := s.Gauges[0].Max; max != writers*perOp {
		t.Fatalf("watermark = %d, want %d (lost-update race)", max, writers*perOp)
	}
}

// TestSnapshotUnderLoadConsistency scrapes continuously while writers
// hammer a shared-track histogram — the daemon's /metrics pattern — and
// asserts every snapshot is internally consistent: count never exceeds
// the bucket total (Observe publishes count last, Snapshot reads it
// first), min <= max whenever count > 0, and the mean lies within the
// observed extrema.
func TestSnapshotUnderLoadConsistency(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	reg := NewRegistry(2)
	h := reg.Histogram("lat")
	g := reg.Gauge("inflight")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := uint64(w + 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(w, v)
				g.Set(w, v)
				v = v*1664525 + 1013904223 // LCG: values across many buckets
			}
		}(w)
	}
	for i := 0; i < 2_000; i++ {
		s := reg.Snapshot()
		for _, hs := range s.Histograms {
			var bucketTotal uint64
			for _, b := range hs.Buckets {
				bucketTotal += b.Count
			}
			if hs.Count > bucketTotal {
				t.Fatalf("scrape %d: count %d > bucket total %d (torn snapshot)", i, hs.Count, bucketTotal)
			}
			if hs.Count > 0 {
				if hs.Min > hs.Max {
					t.Fatalf("scrape %d: min %d > max %d", i, hs.Min, hs.Max)
				}
				// Sum may run ahead of Count (it is written first), so the
				// mean can transiently exceed the true mean — but it can
				// never fall below the observed minimum.
				if hs.Mean < float64(hs.Min) {
					t.Fatalf("scrape %d: mean %f < min %d", i, hs.Mean, hs.Min)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}
