package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterShardMerge(t *testing.T) {
	r := NewRegistry(4)
	c := r.Counter("x")
	c.Add(0, 5)
	c.Inc(1)
	c.Add(3, 2)
	c.Add(7, 1) // clamps onto track 3
	c.Add(-1, 1)
	if again := r.Counter("x"); again != c {
		t.Fatalf("Counter(name) is not idempotent")
	}
	s := r.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Name != "x" {
		t.Fatalf("snapshot counters = %+v", s.Counters)
	}
	cs := s.Counters[0]
	if cs.Total != 10 {
		t.Errorf("total = %d, want 10", cs.Total)
	}
	want := []uint64{5, 1, 0, 4}
	for i, w := range want {
		if cs.PerTrack[i] != w {
			t.Errorf("track %d = %d, want %d", i, cs.PerTrack[i], w)
		}
	}
}

func TestGaugeWatermark(t *testing.T) {
	r := NewRegistry(2)
	g := r.Gauge("depth")
	g.Set(0, 7)
	g.Set(0, 3)
	g.Set(1, 5)
	s := r.Snapshot()
	gs := s.Gauges[0]
	if gs.Max != 7 {
		t.Errorf("max = %d, want 7", gs.Max)
	}
	if gs.PerTrack[0] != 3 || gs.PerTrack[1] != 5 {
		t.Errorf("per-track = %v, want [3 5]", gs.PerTrack)
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	r := NewRegistry(2)
	h := r.Histogram("lat")
	h.Observe(0, 0)    // bucket 0
	h.Observe(0, 1)    // bucket 1
	h.Observe(1, 1000) // bucket 10: [512, 1024)
	h.Observe(1, 1023)
	s := r.Snapshot()
	hs := s.Histograms[0]
	if hs.Count != 4 || hs.Sum != 2024 || hs.Min != 0 || hs.Max != 1023 {
		t.Errorf("stats = %+v", hs)
	}
	if hs.Mean != 506 {
		t.Errorf("mean = %v, want 506", hs.Mean)
	}
	wantBuckets := map[uint64]uint64{1: 1, 2: 1, 1024: 2}
	if len(hs.Buckets) != len(wantBuckets) {
		t.Fatalf("buckets = %+v", hs.Buckets)
	}
	for _, b := range hs.Buckets {
		if wantBuckets[b.UpperBound] != b.Count {
			t.Errorf("bucket le=%d count=%d, want %d", b.UpperBound, b.Count, wantBuckets[b.UpperBound])
		}
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	r := NewRegistry(1)
	r.Histogram("empty")
	hs := r.Snapshot().Histograms[0]
	if hs.Count != 0 || hs.Min != 0 || hs.Max != 0 || hs.Mean != 0 || len(hs.Buckets) != 0 {
		t.Errorf("empty histogram snapshot = %+v", hs)
	}
}

func TestConcurrentRecordingAndSnapshot(t *testing.T) {
	o := New(4).WithTimeline()
	r := o.Registry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc(w)
				g.Set(w, uint64(i))
				h.Observe(w, uint64(i))
				if i%100 == 0 {
					sp := o.Timeline().Begin(w, "work")
					sp.End()
				}
			}
		}(w)
	}
	donesnap := make(chan struct{})
	go func() {
		defer close(donesnap)
		for i := 0; i < 50; i++ {
			_ = o.Snapshot()
		}
	}()
	wg.Wait()
	<-donesnap
	s := o.Snapshot()
	if got := s.Counters[0].Total; got != 4*perWorker {
		t.Errorf("counter total = %d, want %d", got, 4*perWorker)
	}
	if got := s.Histograms[0].Count; got != 4*perWorker {
		t.Errorf("histogram count = %d, want %d", got, 4*perWorker)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	o := New(2)
	o.Registry().Counter("sched.steals").Add(1, 3)
	o.Registry().Histogram("sched.drain_ns").Observe(0, 12345)
	var buf bytes.Buffer
	if err := o.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if back.Tracks != 2 || len(back.Counters) != 1 || back.Counters[0].Total != 3 {
		t.Errorf("round-trip mismatch: %+v", back)
	}
}

// TestTimelineJSON pins the Chrome trace_event shape Perfetto loads: a
// traceEvents array, metadata thread_name records, and complete events
// with name/ph/pid/tid/ts/dur.
func TestTimelineJSON(t *testing.T) {
	tl := NewTimeline(2)
	tl.SetTrackName(0, "worker 0")
	sp := tl.Begin(0, "drain")
	time.Sleep(time.Millisecond)
	sp.End()
	tl.Instant(1, "steal")
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeline JSON does not parse: %v\n%s", err, buf.String())
	}
	var sawThreadName, sawSpan, sawInstant bool
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "thread_name" && e.Tid == 0:
			sawThreadName = e.Args["name"] == "worker 0"
		case e.Ph == "X" && e.Name == "drain":
			sawSpan = e.Dur > 0
		case e.Ph == "i" && e.Name == "steal" && e.Tid == 1:
			sawInstant = true
		}
	}
	if !sawThreadName || !sawSpan || !sawInstant {
		t.Errorf("missing events (thread_name=%v span=%v instant=%v):\n%s",
			sawThreadName, sawSpan, sawInstant, buf.String())
	}
}

func TestTimelineEventCap(t *testing.T) {
	tl := NewTimeline(1)
	tl.limit = 4
	for i := 0; i < 10; i++ {
		tl.Instant(0, "e")
	}
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if tl.tracks[0].dropped != 6 {
		t.Errorf("dropped = %d, want 6", tl.tracks[0].dropped)
	}
	if !bytes.Contains(buf.Bytes(), []byte("events dropped")) {
		t.Errorf("drop marker missing from output")
	}
}

// TestNilSafety exercises every recording entry point through the
// disabled (nil) values: nothing may panic, and observers must see the
// zero state.
func TestNilSafety(t *testing.T) {
	var o *Obs
	if o.Enabled() {
		t.Fatal("nil Obs reports enabled")
	}
	o.WithTimeline()
	o.Registry().Counter("c").Add(3, 1)
	o.Registry().Gauge("g").Set(1, 2)
	o.Registry().Histogram("h").Observe(0, 9)
	sp := o.Timeline().Begin(0, "x")
	sp.End()
	o.Timeline().Instant(0, "y")
	o.Timeline().SetTrackName(0, "z")
	if tr := o.AcquireTrack(); tr != 0 {
		t.Errorf("AcquireTrack on nil = %d", tr)
	}
	if s := o.Snapshot(); s.Tracks != 0 || s.Counters != nil {
		t.Errorf("nil snapshot = %+v", s)
	}
	ran := false
	o.Labeled(0, "phase", func() { ran = true })
	if !ran {
		t.Fatal("Labeled did not run fn on nil Obs")
	}
	var buf bytes.Buffer
	if err := o.Timeline().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Errorf("nil timeline output is not JSON: %s", buf.String())
	}
}

func TestAcquireTrackRoundRobin(t *testing.T) {
	o := New(3)
	got := []int{o.AcquireTrack(), o.AcquireTrack(), o.AcquireTrack(), o.AcquireTrack()}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tickets = %v, want %v", got, want)
		}
	}
}
