package vm

import "fmt"

// TLB models a translation lookaside buffer: a small set-associative LRU
// cache of page translations. The SGI systems' R8000/R10000 had 96- and
// 64-entry fully-associative TLBs; large-stride access patterns (the
// untiled SOR's row-major sweep over column-major data, §4.3) thrash a
// TLB long before they thrash the L2, so the model lets experiments
// separate the two effects.
type TLB struct {
	pageShift uint
	ways      int
	sets      [][]tlbEntry
	hits      uint64
	misses    uint64
}

type tlbEntry struct {
	vpn   uint64
	valid bool
}

// NewTLB builds a TLB with the given number of entries (power of two),
// associativity (0 = fully associative), and page size (power of two).
func NewTLB(entries, assoc int, pageSize uint64) (*TLB, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("vm: TLB entries %d not a positive power of two", entries)
	}
	if pageSize == 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadPageSize, pageSize)
	}
	if assoc <= 0 || assoc > entries {
		assoc = entries
	}
	if entries%assoc != 0 {
		return nil, fmt.Errorf("vm: %d entries not divisible by associativity %d", entries, assoc)
	}
	nsets := entries / assoc
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("vm: %d TLB sets not a power of two", nsets)
	}
	t := &TLB{ways: assoc, sets: make([][]tlbEntry, nsets)}
	for pageSize > 1 {
		pageSize >>= 1
		t.pageShift++
	}
	backing := make([]tlbEntry, nsets*assoc)
	for i := range t.sets {
		t.sets[i] = backing[i*assoc : (i+1)*assoc]
	}
	return t, nil
}

// Access looks up the page holding vaddr, returning true on a TLB hit.
// Misses install the translation with LRU replacement.
func (t *TLB) Access(vaddr uint64) bool {
	vpn := vaddr >> t.pageShift
	set := t.sets[vpn&uint64(len(t.sets)-1)]
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			e := set[i]
			copy(set[1:i+1], set[:i])
			set[0] = e
			t.hits++
			return true
		}
	}
	t.misses++
	copy(set[1:], set[:len(set)-1])
	set[0] = tlbEntry{vpn: vpn, valid: true}
	return false
}

// Hits and Misses report the access counters.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses reports translation misses.
func (t *TLB) Misses() uint64 { return t.misses }

// Accesses reports total lookups.
func (t *TLB) Accesses() uint64 { return t.hits + t.misses }

// MissRate returns misses per access as a percentage.
func (t *TLB) MissRate() float64 {
	if t.Accesses() == 0 {
		return 0
	}
	return 100 * float64(t.misses) / float64(t.Accesses())
}

// Reset clears contents and counters.
func (t *TLB) Reset() {
	for _, set := range t.sets {
		for i := range set {
			set[i] = tlbEntry{}
		}
	}
	t.hits, t.misses = 0, 0
}
