package vm

import (
	"testing"
	"testing/quick"
)

func TestAddressSpaceAlloc(t *testing.T) {
	as := NewAddressSpace()
	a := as.Alloc(100, 0)
	b := as.Alloc(100, 0)
	if a != DefaultBase {
		t.Errorf("first allocation at %#x, want %#x", a, DefaultBase)
	}
	if b != a+100 {
		t.Errorf("second allocation at %#x, want %#x", b, a+100)
	}
	if as.Used() != 200 {
		t.Errorf("Used = %d, want 200", as.Used())
	}
}

func TestAddressSpaceAlignment(t *testing.T) {
	as := NewAddressSpaceAt(0x1000)
	as.Alloc(3, 0)
	b := as.Alloc(8, 64)
	if b%64 != 0 {
		t.Errorf("aligned allocation at %#x, not 64-byte aligned", b)
	}
	c := as.AllocPageAligned(10)
	if c%DefaultPageSize != 0 {
		t.Errorf("page allocation at %#x, not page aligned", c)
	}
}

func TestAddressSpaceBadAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two alignment")
		}
	}()
	NewAddressSpace().Alloc(8, 3)
}

func TestAllocationsDisjoint(t *testing.T) {
	f := func(sizes []uint16) bool {
		as := NewAddressSpace()
		var prevEnd uint64
		for _, sz := range sizes {
			size := uint64(sz%4096) + 1
			a := as.Alloc(size, 8)
			if a < prevEnd {
				return false
			}
			prevEnd = a + size
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewPageTableRejectsBadPageSize(t *testing.T) {
	for _, sz := range []uint64{0, 3, 4097} {
		if _, err := NewPageTable(sz, nil); err == nil {
			t.Errorf("NewPageTable(%d) succeeded, want error", sz)
		}
	}
}

func TestIdentityTranslation(t *testing.T) {
	pt, err := NewPageTable(4096, IdentityPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range []uint64{0, 1, 4095, 4096, 0x1000_0123, 1 << 40} {
		if got := pt.Translate(addr); got != addr {
			t.Errorf("identity Translate(%#x) = %#x", addr, got)
		}
	}
	if pt.Collisions() != 0 {
		t.Errorf("identity policy produced %d collisions", pt.Collisions())
	}
}

func TestSequentialTranslationPacksFrames(t *testing.T) {
	pt, err := NewPageTable(4096, SequentialPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Touch three widely spaced pages; they should land in frames 0,1,2.
	for i, v := range []uint64{5 << 30, 9 << 20, 3 << 40} {
		p := pt.Translate(v)
		if p>>12 != uint64(i) {
			t.Errorf("page %d placed in frame %d, want %d", i, p>>12, i)
		}
	}
}

func TestTranslationStable(t *testing.T) {
	pt, _ := NewPageTable(4096, RandomPolicy{Seed: 7})
	a := pt.Translate(0x1000_0000)
	b := pt.Translate(0x1000_0000)
	if a != b {
		t.Fatalf("translation not stable: %#x vs %#x", a, b)
	}
	c := pt.Translate(0x1000_0004)
	if c != a+4 {
		t.Errorf("same-page offset broken: %#x, want %#x", c, a+4)
	}
}

func TestColoringPolicyPreservesColor(t *testing.T) {
	const colors = 64
	pt, _ := NewPageTable(4096, ColoringPolicy{Colors: colors})
	for vpn := uint64(0); vpn < 500; vpn += 7 {
		p := pt.Translate(vpn * 4096)
		if (p>>12)%colors != vpn%colors {
			t.Fatalf("vpn %d colored %d, want %d", vpn, (p>>12)%colors, vpn%colors)
		}
	}
}

// Property: the page map is injective — distinct virtual pages map to
// distinct frames, whatever the policy.
func TestPageMapInjectiveProperty(t *testing.T) {
	policies := []Policy{IdentityPolicy{}, SequentialPolicy{}, RandomPolicy{Seed: 1}, ColoringPolicy{Colors: 16}}
	for _, pol := range policies {
		pol := pol
		f := func(vpns []uint32) bool {
			pt, err := NewPageTable(4096, pol)
			if err != nil {
				return false
			}
			seen := make(map[uint64]uint64) // pfn -> vpn
			for _, vpn32 := range vpns {
				vpn := uint64(vpn32)
				pfn := pt.Translate(vpn*4096) >> 12
				if prev, ok := seen[pfn]; ok && prev != vpn {
					return false
				}
				seen[pfn] = vpn
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("policy %s: %v", pol.Name(), err)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	if (IdentityPolicy{}).Name() != "identity" {
		t.Error("identity name")
	}
	if (SequentialPolicy{}).Name() != "sequential" {
		t.Error("sequential name")
	}
	if (RandomPolicy{}).Name() != "random" {
		t.Error("random name")
	}
	if (ColoringPolicy{Colors: 8}).Name() != "coloring(8)" {
		t.Error("coloring name")
	}
}

func TestMappedCount(t *testing.T) {
	pt, _ := NewPageTable(4096, IdentityPolicy{})
	pt.Translate(0)
	pt.Translate(100)  // same page
	pt.Translate(4096) // next page
	if pt.Mapped() != 2 {
		t.Errorf("Mapped = %d, want 2", pt.Mapped())
	}
	if pt.PageSize() != 4096 {
		t.Errorf("PageSize = %d", pt.PageSize())
	}
	if pt.PolicyName() != "identity" {
		t.Errorf("PolicyName = %q", pt.PolicyName())
	}
}

func TestBrk(t *testing.T) {
	as := NewAddressSpace()
	if as.Brk() != DefaultBase {
		t.Fatalf("initial Brk = %#x", as.Brk())
	}
	as.Alloc(100, 0)
	if as.Brk() != DefaultBase+100 {
		t.Fatalf("Brk after alloc = %#x", as.Brk())
	}
}
