package vm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewTLBValidation(t *testing.T) {
	bad := []struct {
		entries, assoc int
		page           uint64
	}{
		{0, 1, 4096}, {3, 1, 4096}, {64, 1, 0}, {64, 1, 100}, {8, 3, 4096},
	}
	for _, c := range bad {
		if _, err := NewTLB(c.entries, c.assoc, c.page); err == nil {
			t.Errorf("NewTLB(%d,%d,%d) accepted", c.entries, c.assoc, c.page)
		}
	}
	if _, err := NewTLB(64, 0, 4096); err != nil {
		t.Fatalf("fully-associative TLB rejected: %v", err)
	}
}

func TestTLBHitsWithinPage(t *testing.T) {
	tlb, _ := NewTLB(16, 0, 4096)
	if tlb.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	for off := uint64(0); off < 4096; off += 512 {
		if !tlb.Access(0x1000 + off) {
			t.Fatalf("same-page access at +%d missed", off)
		}
	}
	if tlb.Misses() != 1 {
		t.Fatalf("misses = %d", tlb.Misses())
	}
}

func TestTLBLRUReplacement(t *testing.T) {
	tlb, _ := NewTLB(4, 0, 4096)
	for p := uint64(0); p < 4; p++ {
		tlb.Access(p * 4096)
	}
	tlb.Access(0)        // refresh page 0
	tlb.Access(4 * 4096) // evicts page 1 (LRU)
	if !tlb.Access(0) {
		t.Fatal("refreshed page evicted")
	}
	if tlb.Access(1 * 4096) {
		t.Fatal("LRU page survived")
	}
}

func TestTLBThrashOnLargeStride(t *testing.T) {
	// The §4.3 pathology: a 64-entry TLB, 4 KB pages, and a sweep with a
	// 16 KB stride over a 2 MB footprint touches 128 distinct pages in
	// rotation — every access misses.
	tlb, _ := NewTLB(64, 0, 4096)
	for round := 0; round < 5; round++ {
		for p := uint64(0); p < 128; p++ {
			tlb.Access(p * 16384)
		}
	}
	if tlb.Hits() != 0 {
		t.Fatalf("hits = %d on a thrashing stride, want 0", tlb.Hits())
	}
	// The same footprint swept page-sequentially hits 3 of 4 accesses
	// after the cold pass (4 KB pages, 1 KB stride).
	seq, _ := NewTLB(64, 0, 4096)
	for round := 0; round < 5; round++ {
		for a := uint64(0); a < 64*4096; a += 1024 {
			seq.Access(a)
		}
	}
	if seq.MissRate() > 30 {
		t.Fatalf("sequential sweep miss rate %.1f%%, want < 30%%", seq.MissRate())
	}
}

func TestTLBReset(t *testing.T) {
	tlb, _ := NewTLB(8, 2, 4096)
	tlb.Access(0)
	tlb.Reset()
	if tlb.Accesses() != 0 {
		t.Fatal("counters survived reset")
	}
	if tlb.Access(0) {
		t.Fatal("contents survived reset")
	}
}

// Property: a fully-associative TLB with n entries matches the stackdist
// criterion — an access hits iff fewer than n distinct pages intervened.
func TestTLBMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64, entSel uint8) bool {
		entries := 1 << (entSel%4 + 1)
		tlb, err := NewTLB(entries, 0, 4096)
		if err != nil {
			return false
		}
		var stack []uint64 // MRU first
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			page := uint64(rng.Intn(entries * 3))
			hit := false
			for j, v := range stack {
				if v == page {
					hit = j < entries
					stack = append(stack[:j], stack[j+1:]...)
					break
				}
			}
			stack = append([]uint64{page}, stack...)
			if tlb.Access(page*4096+uint64(rng.Intn(4096))) != hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
