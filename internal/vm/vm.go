// Package vm models the virtual-memory substrate beneath the cache
// simulation. The paper (§2.2) points out that second-level caches are
// physically indexed, so the virtual-to-physical mapping chosen by the OS
// affects L2 behaviour (citing Bershad et al. and Kessler & Hill). This
// package provides a simulated virtual address space with an arena-style
// allocator, and a page table with pluggable page-placement policies so the
// experiments can run either on virtual addresses (as the paper's DineroIII
// simulation did) or through a simulated physical mapping.
package vm

import (
	"errors"
	"fmt"
	"math/bits"
)

// DefaultPageSize is the simulated page size (the SGI systems used 4 KiB
// base pages).
const DefaultPageSize = 4096

// DefaultBase is the base virtual address of a fresh address space; chosen
// to resemble a typical process data-segment start and to keep address zero
// invalid.
const DefaultBase uint64 = 0x1000_0000

// AddressSpace hands out non-overlapping virtual address ranges for the
// simulated program's objects (matrices, body arrays, tree nodes, thread
// structures). It is an arena: there is no free.
type AddressSpace struct {
	base uint64
	next uint64
}

// NewAddressSpace returns an address space starting at DefaultBase.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{base: DefaultBase, next: DefaultBase}
}

// NewAddressSpaceAt returns an address space whose first allocation begins
// at base.
func NewAddressSpaceAt(base uint64) *AddressSpace {
	return &AddressSpace{base: base, next: base}
}

// Alloc reserves size bytes aligned to align (a power of two; 0 or 1 means
// byte alignment) and returns the starting virtual address.
func (as *AddressSpace) Alloc(size uint64, align uint64) uint64 {
	if align > 1 {
		if align&(align-1) != 0 {
			panic(fmt.Sprintf("vm: alignment %d is not a power of two", align))
		}
		as.next = (as.next + align - 1) &^ (align - 1)
	}
	addr := as.next
	as.next += size
	return addr
}

// AllocPageAligned reserves size bytes aligned to the default page size.
func (as *AddressSpace) AllocPageAligned(size uint64) uint64 {
	return as.Alloc(size, DefaultPageSize)
}

// Brk returns the current top of the allocated region.
func (as *AddressSpace) Brk() uint64 { return as.next }

// Used returns the number of bytes allocated so far, including alignment
// padding.
func (as *AddressSpace) Used() uint64 { return as.next - as.base }

// Policy selects physical page frames for virtual pages.
type Policy interface {
	// Place returns the physical frame number for virtual page vpn, given
	// the number of frames already placed. Implementations must be
	// deterministic for reproducible experiments.
	Place(vpn uint64, placed uint64) uint64
	// Name identifies the policy in experiment output.
	Name() string
}

// IdentityPolicy maps each virtual page to the equal-numbered physical
// frame. Under it, physical indexing is identical to virtual indexing —
// matching the paper's DineroIII runs, which "work with virtual addresses".
type IdentityPolicy struct{}

// Place implements Policy.
func (IdentityPolicy) Place(vpn uint64, _ uint64) uint64 { return vpn }

// Name implements Policy.
func (IdentityPolicy) Name() string { return "identity" }

// SequentialPolicy assigns frames in the order pages are first touched,
// modelling a first-touch allocator with a fresh free list. It tends to
// produce good L2 page colouring for sequentially initialized data.
type SequentialPolicy struct{}

// Place implements Policy.
func (SequentialPolicy) Place(_ uint64, placed uint64) uint64 { return placed }

// Name implements Policy.
func (SequentialPolicy) Name() string { return "sequential" }

// RandomPolicy assigns frames pseudo-randomly (deterministically from a
// seed), modelling a long-running system whose free list is scrambled.
// This is the mapping regime where Kessler & Hill observed extra L2
// conflict misses.
type RandomPolicy struct {
	// Seed selects the deterministic frame sequence.
	Seed uint64
}

// Place implements Policy.
func (p RandomPolicy) Place(vpn uint64, _ uint64) uint64 {
	// SplitMix64 of the vpn: a bijective-enough scramble for frame choice.
	z := vpn + p.Seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Name implements Policy.
func (p RandomPolicy) Name() string { return "random" }

// ColoringPolicy implements page colouring: the frame is chosen so that the
// physical page colour (frame mod colours) equals the virtual page colour,
// the classic technique for making a physically-indexed cache behave like a
// virtually-indexed one.
type ColoringPolicy struct {
	// Colors is the number of page colours (cache size / (ways × page
	// size)); must be > 0.
	Colors uint64
}

// Place implements Policy.
func (p ColoringPolicy) Place(vpn uint64, placed uint64) uint64 {
	if p.Colors == 0 {
		return vpn
	}
	color := vpn % p.Colors
	// Walk frames of the right colour in first-touch order.
	return (placed/p.Colors)*p.Colors + color
}

// Name implements Policy.
func (p ColoringPolicy) Name() string { return fmt.Sprintf("coloring(%d)", p.Colors) }

// ErrBadPageSize reports a page size that is not a power of two.
var ErrBadPageSize = errors.New("vm: page size must be a power of two")

// PageTable lazily maps virtual pages to physical frames using a Policy.
type PageTable struct {
	policy    Policy
	pageShift uint
	pages     map[uint64]uint64 // vpn -> pfn
	frames    map[uint64]uint64 // pfn -> vpn (for bijectivity checks)
	collide   uint64
}

// NewPageTable returns a page table with the given page size and policy.
func NewPageTable(pageSize uint64, policy Policy) (*PageTable, error) {
	if pageSize == 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadPageSize, pageSize)
	}
	if policy == nil {
		policy = IdentityPolicy{}
	}
	return &PageTable{
		policy:    policy,
		pageShift: uint(bits.TrailingZeros64(pageSize)),
		pages:     make(map[uint64]uint64),
		frames:    make(map[uint64]uint64),
	}, nil
}

// PageSize returns the page size in bytes.
func (pt *PageTable) PageSize() uint64 { return 1 << pt.pageShift }

// Translate maps a virtual address to its physical address, allocating a
// frame on first touch. Frame collisions produced by a policy (two virtual
// pages assigned the same frame) are resolved by linear probing and
// counted.
func (pt *PageTable) Translate(vaddr uint64) uint64 {
	vpn := vaddr >> pt.pageShift
	pfn, ok := pt.pages[vpn]
	if !ok {
		pfn = pt.policy.Place(vpn, uint64(len(pt.pages)))
		for {
			if _, taken := pt.frames[pfn]; !taken {
				break
			}
			pt.collide++
			pfn++
		}
		pt.pages[vpn] = pfn
		pt.frames[pfn] = vpn
	}
	offset := vaddr & (pt.PageSize() - 1)
	return pfn<<pt.pageShift | offset
}

// Mapped returns the number of virtual pages currently mapped.
func (pt *PageTable) Mapped() int { return len(pt.pages) }

// Collisions returns how many frame collisions the policy produced (always
// zero for identity and sequential placement).
func (pt *PageTable) Collisions() uint64 { return pt.collide }

// PolicyName returns the name of the placement policy in use.
func (pt *PageTable) PolicyName() string { return pt.policy.Name() }
