package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"threadsched/internal/harness"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs               submit a Request; 202 + Status (200 when
//	                            an idempotency key deduped it), or
//	                            400 (bad request/spec), 429 + Retry-After
//	                            (rate limit or full queue), 503 (not
//	                            ready, degraded read-only, or draining)
//	GET  /v1/jobs/{id}          poll a job's Status
//	GET  /v1/jobs/{id}/wait     block until terminal or ?timeout_ms
//	POST /v1/jobs/{id}/cancel   request cancellation
//	GET  /healthz               liveness + load (503 while draining)
//	GET  /readyz                readiness: 503 until journal replay has
//	                            completed and the pool is admitting
//	GET  /metrics               the obs registry snapshot as JSON
//
// Job routes answer 503 + Retry-After (not 404) until recovery replay
// completes: during replay the daemon is live but cannot yet know which
// job IDs it is responsible for.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/wait", s.handleWait)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// notReady answers 503 + Retry-After on job routes until recovery
// replay completes, reporting whether it wrote a response.
func (s *Server) notReady(w http.ResponseWriter) bool {
	if s.Ready() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, errors.New("server: recovering, not ready"))
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeRequest(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.Submit(req)
	if err != nil {
		var rej *RejectError
		switch {
		case errors.As(err, &rej):
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(rej.RetryAfter)))
			writeError(w, rej.StatusCode, err)
		case errors.Is(err, ErrBadRequest), errors.Is(err, harness.ErrBadJobSpec):
			writeError(w, http.StatusBadRequest, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	if st.Deduped {
		writeJSON(w, http.StatusOK, st)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if s.notReady(w) {
		return
	}
	st, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleWait(w http.ResponseWriter, r *http.Request) {
	timeout := 30 * time.Second
	if q := r.URL.Query().Get("timeout_ms"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, errors.New("server: bad timeout_ms"))
			return
		}
		timeout = time.Duration(n) * time.Millisecond
		if timeout > 2*time.Minute {
			timeout = 2 * time.Minute
		}
	}
	if s.notReady(w) {
		return
	}
	st, ok := s.Wait(r.PathValue("id"), timeout)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if s.notReady(w) {
		return
	}
	st, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleHealth is the liveness probe: it answers as soon as the
// listener is up — including during journal replay — and only fails
// once the daemon is draining toward exit.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	queued, inflight := s.Load()
	degraded, reason := s.Degraded()
	body := map[string]any{
		"status":      "ok",
		"ready":       s.Ready(),
		"draining":    s.Draining(),
		"degraded":    degraded,
		"queue_depth": queued,
		"inflight":    inflight,
	}
	if degraded {
		body["degraded_reason"] = reason
	}
	code := http.StatusOK
	switch {
	case s.Draining():
		body["status"] = "draining"
		code = http.StatusServiceUnavailable
	case !s.Ready():
		body["status"] = "recovering"
	case degraded:
		body["status"] = "degraded"
	}
	writeJSON(w, code, body)
}

// handleReady is the readiness probe: 503 until recovery replay has
// completed and the pool is admitting, 503 again once draining.
// Degraded read-only mode stays ready — polls are still served; only
// submits are rejected, per-request, with their own 503.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	degraded, _ := s.Degraded()
	body := map[string]any{
		"ready":    s.Ready(),
		"draining": s.Draining(),
		"degraded": degraded,
	}
	switch {
	case s.Draining():
		body["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
	case !s.Ready():
		body["status"] = "recovering"
		writeJSON(w, http.StatusServiceUnavailable, body)
	default:
		body["status"] = "ready"
		writeJSON(w, http.StatusOK, body)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.cfg.Obs.Snapshot().WriteJSON(w); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// retryAfterSeconds renders a backoff as a whole-second Retry-After
// value, rounding up so "try again in 200ms" never becomes "now".
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
