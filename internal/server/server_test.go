package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"threadsched/internal/fault"
	"threadsched/internal/harness"
	"threadsched/internal/obs"
)

// testHarness is the smallest geometry that still exercises every
// kernel: the suite (and the race gate) runs hundreds of these jobs.
func testHarness() harness.Config {
	c := harness.Quick()
	c.MatmulN = 64
	c.SORN = 101
	c.SORIters = 4
	c.PDEN = 65
	c.PDEIters = 2
	c.NBodyN = 500
	c.NBodySteps = 1
	return c
}

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Harness.MatmulN == 0 {
		cfg.Harness = testHarness()
	}
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s
}

func postJob(t *testing.T, ts *httptest.Server, body string) (int, Status, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("bad submit response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, st, resp.Header
}

func waitJob(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/wait?timeout_ms=60000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServeLifecycle is the end-to-end daemon test: submit over HTTP,
// poll, wait, check the result against a direct harness run, scrape
// metrics and health.
func TestServeLifecycle(t *testing.T) {
	o := obs.New(4)
	s := testServer(t, Config{Workers: 2, Obs: o})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, st, _ := postJob(t, ts, `{"kind":"matmul","variant":"threaded"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	if st.State != StateQueued || st.ID == "" {
		t.Fatalf("submit status: %+v", st)
	}
	st = waitJob(t, ts, st.ID)
	if st.State != StateDone || st.Result == nil {
		t.Fatalf("wait: %+v", st)
	}
	direct := testHarness().RunMatmul(harness.MatmulThreaded, testHarness().R8000())
	if st.Result.Instructions != direct.Instructions || st.Result.L1Misses != direct.Summary.L1Misses {
		t.Fatalf("served result differs from direct run:\n served %+v\n direct %+v", st.Result, direct.Summary)
	}

	// An experiment job returns rendered table text.
	code, st, _ = postJob(t, ts, `{"kind":"table","variant":"table1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit table: %d", code)
	}
	if st = waitJob(t, ts, st.ID); st.State != StateDone || !strings.Contains(st.Table, "Table 1") {
		t.Fatalf("table job: state %s table %q", st.State, st.Table)
	}

	// Health is OK and metrics include the server counters.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"server.submitted", "server.completed", "server.job_wall_ns", "sim.refs"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, raw)
		}
	}

	// Unknown job → 404; bad specs → 400.
	if resp, _ = http.Get(ts.URL + "/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %d", resp.StatusCode)
	}
	resp.Body.Close()
	for _, bad := range []string{
		`{"kind":"fft"}`,
		`{"kind":"matmul","variant":"strassen"}`,
		`{"kind":"matmul","bogus_field":1}`,
		`{"kind":"matmul","matmul_n":99999}`,
		`not json`,
	} {
		if code, _, _ := postJob(t, ts, bad); code != http.StatusBadRequest {
			t.Fatalf("%s: code %d, want 400", bad, code)
		}
	}
}

// TestQueueBackpressure pins the 429 + Retry-After path: with one
// worker wedged on a slow job and a one-deep queue, the third submit
// must be rejected with reason "queue", and the Retry-After header set.
func TestQueueBackpressure(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slow := `{"kind":"matmul","size":"scaled","matmul_n":512}`
	code, running, _ := postJob(t, ts, slow)
	if code != http.StatusAccepted {
		t.Fatalf("slow submit: %d", code)
	}
	code, queued, _ := postJob(t, ts, slow)
	if code != http.StatusAccepted {
		t.Fatalf("queued submit: %d", code)
	}
	// Third submit: worker busy, queue full → 429.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var hdr http.Header
		code, _, hdr = postJob(t, ts, slow)
		if code == http.StatusTooManyRequests {
			if hdr.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			break
		}
		// The first job may not have been picked up yet, leaving queue
		// room; cancel the extra admission and retry.
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled (last code %d)", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Cancel both jobs; the running one must go terminal quickly.
	for _, id := range []string{running.ID, queued.ID} {
		resp, err := http.Post(ts.URL+"/v1/jobs/"+id+"/cancel", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	start := time.Now()
	if st := waitJob(t, ts, running.ID); st.State != StateCancelled {
		t.Fatalf("running job after cancel: %+v", st)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("mid-run cancel took %v", elapsed)
	}
	if st := waitJob(t, ts, queued.ID); st.State != StateCancelled {
		t.Fatalf("queued job after cancel: %+v", st)
	}
}

// TestTenantRateLimit pins per-tenant token-bucket admission: one
// tenant exhausting its burst is rejected with reason "rate" while
// another tenant is still admitted.
func TestTenantRateLimit(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: 64, TenantRate: 0.001, TenantBurst: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	job := `{"kind":"sor","tenant":"%s"}`
	for i := 0; i < 2; i++ {
		if code, _, _ := postJob(t, ts, fmt.Sprintf(job, "a")); code != http.StatusAccepted {
			t.Fatalf("burst submit %d: %d", i, code)
		}
	}
	code, _, hdr := postJob(t, ts, fmt.Sprintf(job, "a"))
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit: %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if code, _, _ := postJob(t, ts, fmt.Sprintf(job, "b")); code != http.StatusAccepted {
		t.Fatalf("other tenant blocked: %d", code)
	}
}

// TestTenantPanicIsolation is the containment matrix entry for served
// jobs: the fault injector fires inside tenant B's job, which must come
// back as that one job's failed status (panic=true) while tenant A's
// jobs — before, concurrent, and after — complete normally on the same
// pool.
func TestTenantPanicIsolation(t *testing.T) {
	inj := fault.New(fault.Config{At: map[fault.Site][]uint64{fault.ServedJob: {2}}})
	s := testServer(t, Config{Workers: 2, Obs: obs.New(4), Inject: inj})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids := make([]string, 3)
	for i, body := range []string{
		`{"kind":"matmul","tenant":"a"}`,
		`{"kind":"matmul","tenant":"b"}`, // admission seq 2: injected panic
		`{"kind":"sor","tenant":"a"}`,
	} {
		code, st, _ := postJob(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		ids[i] = st.ID
	}
	bombed := waitJob(t, ts, ids[1])
	if bombed.State != StateFailed || !bombed.Panic {
		t.Fatalf("injected job: %+v", bombed)
	}
	if !strings.Contains(bombed.Error, "served-job") {
		t.Fatalf("injected job error %q does not name the fault site", bombed.Error)
	}
	for _, i := range []int{0, 2} {
		if st := waitJob(t, ts, ids[i]); st.State != StateDone || st.Result == nil {
			t.Fatalf("bystander job %d: %+v", i, st)
		}
	}
	// The pool keeps serving after the contained panic.
	code, st, _ := postJob(t, ts, `{"kind":"pde","tenant":"b"}`)
	if code != http.StatusAccepted {
		t.Fatalf("post-panic submit: %d", code)
	}
	if st = waitJob(t, ts, st.ID); st.State != StateDone {
		t.Fatalf("post-panic job: %+v", st)
	}
}

// TestDrain pins graceful shutdown: in-flight and queued jobs finish,
// then new submissions are rejected with 503 and healthz flips to
// draining.
func TestDrain(t *testing.T) {
	cfg := Config{Workers: 2}
	cfg.Harness = testHarness()
	s := New(cfg) // not testServer: this test drains explicitly
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids := make([]string, 4)
	for i := range ids {
		code, st, _ := postJob(t, ts, `{"kind":"sor"}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		ids[i] = st.ID
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		st, ok := s.Get(id)
		if !ok || st.State != StateDone {
			t.Fatalf("job %s after drain: %+v (ok=%v)", id, st, ok)
		}
	}
	if code, _, _ := postJob(t, ts, `{"kind":"sor"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: %d, want 503", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: %d, want 503", resp.StatusCode)
	}
	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestDrainCancelsOnExpiry pins the hard-stop path: when the drain
// budget expires with a slow job still running, Drain cancels it and
// still returns with the pool unwound.
func TestDrainCancelsOnExpiry(t *testing.T) {
	cfg := Config{Workers: 1}
	cfg.Harness = testHarness()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, st, _ := postJob(t, ts, `{"kind":"matmul","size":"scaled","matmul_n":512}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	// Let the worker pick it up, then drain with an already-tiny budget.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Drain(ctx)
	if err == nil {
		t.Fatal("drain of a wedged pool returned nil")
	}
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Fatalf("expired drain took %v", elapsed)
	}
	got, _ := s.Get(st.ID)
	if got.State != StateCancelled {
		t.Fatalf("slow job after expired drain: %+v", got)
	}
}
