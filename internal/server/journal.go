package server

import (
	"context"
	"encoding/json"
	"sort"
	"time"

	"threadsched/internal/fault"
	"threadsched/internal/harness"
	"threadsched/internal/journal"
)

// The server's journal records: one JSON payload per job state
// transition, framed and checksummed by internal/journal. Replay folds
// them in append order; the fold is tolerant of records for unknown
// jobs (their accept record fell past a torn tail) and of duplicates.
const (
	opAccept = "accept" // job admitted: identity + original request
	opRun    = "run"    // job left the queue
	opDone   = "done"   // terminal: completed with a result or table
	opFail   = "fail"   // terminal: failed (error text, panic flag)
	opCancel = "cancel" // terminal: cancelled
	opEvict  = "evict"  // tombstone: retention evicted a terminal job
	opSnap   = "snap"   // compaction snapshot: one job's full state
)

// interruptedError is the error text of a job that was queued or
// running when the daemon died; clients distinguish it from real
// failures by this prefix.
const interruptedError = "interrupted: daemon restarted mid-job"

// jrec is one journal record. Field presence depends on Op; zero
// fields are elided from the JSON.
type jrec struct {
	Op       string   `json:"op"`
	ID       string   `json:"id"`
	Seq      uint64   `json:"seq,omitempty"`
	Tenant   string   `json:"tenant,omitempty"`
	What     string   `json:"what,omitempty"`
	Idem     string   `json:"idem,omitempty"`
	Req      *Request `json:"req,omitempty"`
	State    string   `json:"state,omitempty"` // snap only
	Error    string   `json:"error,omitempty"`
	Panic    bool     `json:"panic,omitempty"`
	Result   *Result  `json:"result,omitempty"`
	Table    string   `json:"table,omitempty"`
	QueueMS  int64    `json:"queue_ms,omitempty"`
	RunMS    int64    `json:"run_ms,omitempty"`
	SubmitMS int64    `json:"submit_ms,omitempty"`
}

// appendLocked journals one record. A failed append flips the server
// into degraded read-only mode (polls keep serving, submits get 503):
// the durability promise is "accepted means remembered", and a server
// that cannot remember must stop accepting. No-op without a journal.
func (s *Server) appendLocked(r jrec) error {
	if s.jr == nil {
		return nil
	}
	raw, err := json.Marshal(r)
	if err == nil {
		err = s.jr.Append(raw)
	}
	if err != nil {
		s.cJAppendErrs.Inc(0)
		s.degradeLocked("journal append failed: " + err.Error())
		return err
	}
	s.cJAppends.Inc(0)
	return nil
}

// degradeLocked enters (sticky) degraded read-only mode.
func (s *Server) degradeLocked(reason string) {
	if !s.degraded {
		s.degraded = true
		s.degradedReason = reason
		s.gDegraded.Set(0, 1)
	}
}

// acceptRec renders a job's admission record (also the snapshot shape,
// with Op/State rewritten).
func acceptRec(j *Job) jrec {
	r := jrec{
		Op:       opAccept,
		ID:       j.ID,
		Seq:      j.seq,
		Tenant:   j.Tenant,
		What:     j.what,
		Idem:     j.idem,
		SubmitMS: j.submitted.UnixMilli(),
	}
	if j.req.Kind != "" {
		req := j.req
		r.Req = &req
	}
	return r
}

// terminalRec renders a job's terminal record; the caller has already
// set state/errText/result/finished.
func terminalRec(j *Job) jrec {
	r := jrec{
		ID:     j.ID,
		Error:  j.errText,
		Panic:  j.panicked,
		Result: j.result,
		Table:  j.table,
	}
	switch j.state {
	case StateDone:
		r.Op = opDone
	case StateCancelled:
		r.Op = opCancel
	default:
		r.Op = opFail
	}
	switch {
	case j.restored:
		r.QueueMS, r.RunMS = j.restQueueMS, j.restRunMS
	case j.started.IsZero(): // cancelled while queued
		r.QueueMS = ms(j.finished.Sub(j.submitted))
	default:
		r.QueueMS = ms(j.started.Sub(j.submitted))
		r.RunMS = ms(j.finished.Sub(j.started))
	}
	return r
}

// snapRec renders a job's full state for a compaction snapshot.
func snapRec(j *Job) jrec {
	var r jrec
	switch j.state {
	case StateDone, StateFailed, StateCancelled:
		r = terminalRec(j)
		r.Seq, r.Tenant, r.What, r.Idem = j.seq, j.Tenant, j.what, j.idem
		r.SubmitMS = j.submitted.UnixMilli()
	default:
		// Queued or running: the snapshot captures the admission, so a
		// later crash still resolves the job (as interrupted).
		r = acceptRec(j)
	}
	r.Op, r.State = opSnap, j.state
	return r
}

// maybeCompactLocked folds the retained jobs into a snapshot once
// enough records accumulated since the last one. Compaction failure
// degrades like an append failure.
func (s *Server) maybeCompactLocked() {
	if s.jr == nil || s.jr.SinceCompact() < s.jr.CompactEvery() {
		return
	}
	state := make([][]byte, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		raw, err := json.Marshal(snapRec(j))
		if err != nil {
			s.cJAppendErrs.Inc(0)
			s.degradeLocked("journal snapshot encode failed: " + err.Error())
			return
		}
		state = append(state, raw)
	}
	if err := s.jr.Compact(state); err != nil {
		s.cJAppendErrs.Inc(0)
		s.degradeLocked("journal compaction failed: " + err.Error())
		return
	}
	s.cJCompactions.Inc(0)
}

// Recover opens the journal (when Config.JournalDir is set), replays it
// into the job table, resolves jobs that were in flight at crash time,
// and marks the server ready. Without a journal it just marks ready.
// Until Recover runs, submits and job reads answer 503 not-ready; call
// it exactly once, after New and before serving traffic. Safe to call
// again (no-op).
func (s *Server) Recover() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovered {
		return nil
	}
	if s.cfg.JournalDir == "" {
		s.recovered = true
		s.readyLocked()
		return nil
	}
	jr, rep, err := journal.Open(journal.Options{
		Dir:          s.cfg.JournalDir,
		Fsync:        s.cfg.JournalFsync,
		Interval:     s.cfg.JournalFsyncInterval,
		CompactEvery: s.cfg.JournalCompactEvery,
		Inject:       s.cfg.Inject,
		OnFsync: func(d time.Duration, err error) {
			s.hJFsync.Observe(0, uint64(d))
			if err != nil {
				s.cJFsyncErrs.Inc(0)
			}
		},
	})
	if err != nil {
		// An unopenable journal directory is a deployment error, not a
		// torn tail; refusing to start beats serving amnesiac.
		return err
	}
	s.recovered = true
	s.jr = jr
	if rep.TornTail {
		s.cJTornTail.Inc(0)
	}
	if rep.TornSnapshot {
		s.cJTornSnap.Inc(0)
	}
	s.replayLocked(rep.Records())
	s.readyLocked()
	return nil
}

func (s *Server) readyLocked() {
	s.ready.Store(true)
	s.gReady.Set(0, 1)
}

// replayLocked folds the journal's records back into the job table.
func (s *Server) replayLocked(records [][]byte) {
	folded := make(map[string]*Job, len(records))
	for _, raw := range records {
		var r jrec
		if err := json.Unmarshal(raw, &r); err != nil || r.ID == "" {
			s.cJBadRecs.Inc(0)
			continue
		}
		s.cJReplayed.Inc(0)
		switch r.Op {
		case opAccept, opSnap:
			j := &Job{
				ID:        r.ID,
				Tenant:    r.Tenant,
				what:      r.What,
				seq:       r.Seq,
				idem:      r.Idem,
				state:     StateQueued,
				submitted: time.UnixMilli(r.SubmitMS),
				done:      make(chan struct{}),
			}
			if r.Req != nil {
				j.req = *r.Req
			}
			if r.Op == opSnap {
				j.state = r.State
				switch r.State {
				case StateDone, StateFailed, StateCancelled:
					j.errText, j.panicked = r.Error, r.Panic
					j.result, j.table = r.Result, r.Table
					j.restored = true
					j.restQueueMS, j.restRunMS = r.QueueMS, r.RunMS
				}
			}
			folded[r.ID] = j
		case opRun:
			if j := folded[r.ID]; j != nil {
				j.state = StateRunning
			}
		case opDone, opFail, opCancel:
			j := folded[r.ID]
			if j == nil {
				continue
			}
			switch r.Op {
			case opDone:
				j.state = StateDone
			case opCancel:
				j.state = StateCancelled
			default:
				j.state = StateFailed
			}
			j.errText, j.panicked = r.Error, r.Panic
			j.result, j.table = r.Result, r.Table
			j.restored = true
			j.restQueueMS, j.restRunMS = r.QueueMS, r.RunMS
		case opEvict:
			delete(folded, r.ID)
		default:
			s.cJBadRecs.Inc(0)
		}
	}

	ids := make([]string, 0, len(folded))
	for id := range folded {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return folded[ids[a]].seq < folded[ids[b]].seq })

	now := time.Now()
	for _, id := range ids {
		j := folded[id]
		if j.seq > s.seq {
			s.seq = j.seq
		}
		switch j.state {
		case StateDone, StateFailed, StateCancelled:
			j.restored = true
			close(j.done)
		default:
			// Queued or running at crash time.
			if s.cfg.RequeueInterrupted && j.req.Kind != "" && len(s.queue) < cap(s.queue) && !s.draining {
				s.requeueLocked(j)
				s.cJRequeued.Inc(0)
			} else {
				j.state = StateFailed
				j.errText = interruptedError
				j.finished = now
				j.restored = true
				close(j.done)
				s.cInterrupted.Inc(0)
				s.cFailed.Inc(0)
				// Make the resolution durable so the next restart replays
				// it as terminal instead of re-deciding.
				_ = s.appendLocked(terminalRec(j))
			}
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
		if j.idem != "" {
			s.idem[idemKey(j.Tenant, j.idem)] = id
		}
	}
	s.evictLocked()
	s.maybeCompactLocked()
}

// requeueLocked puts a restored, not-yet-terminal job back on the
// queue, rebuilding its runnable spec from the journaled request.
func (s *Server) requeueLocked(j *Job) {
	j.cfg = j.req.harnessConfig(s.cfg.Harness)
	j.spec = j.req.spec()
	j.experiment = ""
	if j.spec.Kind == harness.JobTable {
		j.experiment = j.spec.Variant
	}
	if inj := s.cfg.Inject; inj.Enabled() && j.experiment == "" {
		seq := j.seq
		j.spec.Hook = func() { inj.MaybePanic(fault.ServedJob, seq) }
	}
	j.state = StateQueued
	j.deadline = s.cfg.DefaultDeadline
	if j.req.DeadlineMS > 0 {
		j.deadline = time.Duration(j.req.DeadlineMS) * time.Millisecond
	}
	if j.deadline > s.cfg.MaxDeadline {
		j.deadline = s.cfg.MaxDeadline
	}
	j.ctx, j.cancel = context.WithCancel(context.Background())
	s.queue <- j // room checked by the caller; all senders hold s.mu
}

// idemKey scopes an idempotency key to its tenant.
func idemKey(tenant, key string) string { return tenant + "\x00" + key }
