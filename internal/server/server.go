// Package server multiplexes simulation jobs from many tenants onto one
// shared harness: a bounded job queue feeding a fixed worker pool, with
// per-tenant token-bucket admission, per-job deadlines wired into the
// harness's context-cancellation paths, panic containment (a tenant's
// exploding job becomes that job's error response; the pool keeps
// serving), and graceful drain. cmd/tracesimd wraps it in an HTTP
// daemon; the package itself is transport-agnostic and fully testable
// in-process.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"threadsched/internal/fault"
	"threadsched/internal/harness"
	"threadsched/internal/journal"
	"threadsched/internal/obs"
)

// Job states, in lifecycle order. Terminal states are done, failed, and
// cancelled.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Config parameterizes a Server. The zero value gets sensible defaults
// from New: one worker per CPU, a 256-deep queue, no rate limit, a
// one-minute default deadline, and the harness Quick geometry.
type Config struct {
	// Workers is the size of the shared simulation pool.
	Workers int
	// QueueDepth bounds the number of admitted-but-unstarted jobs; a
	// full queue rejects with 429 + Retry-After.
	QueueDepth int
	// TenantRate is each tenant's sustained admission rate in jobs per
	// second; <= 0 disables rate limiting.
	TenantRate float64
	// TenantBurst is the token-bucket capacity (burst size) per tenant.
	TenantBurst int
	// DefaultDeadline bounds jobs that do not ask for a deadline;
	// MaxDeadline clamps jobs that ask for more.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// Retention bounds how many terminal jobs stay pollable; the oldest
	// terminal jobs are evicted beyond it (live jobs are never evicted).
	Retention int
	// Harness is the base simulation geometry requests start from.
	Harness harness.Config
	// Obs receives both the server's metrics (server.*) and, unless the
	// harness config carries its own, the per-job simulation metrics.
	Obs *obs.Obs
	// Inject, when enabled, fires the fault.ServedJob site inside served
	// kernel jobs (occurrence index = admission sequence number) — the
	// containment tests' way to make one tenant's job panic on demand —
	// and the journal's crash sites (fault.JournalTornWrite /
	// JournalFsync / JournalFull) inside the journal write path.
	Inject *fault.Injector

	// JournalDir enables the durable job journal: every job state
	// transition is appended to a write-ahead log in this directory and
	// replayed on the next boot, so a restarted daemon still answers for
	// the job IDs it promised. Empty keeps the pre-journal in-memory
	// behavior. With a journal configured, the server starts not-ready:
	// call Recover once to replay and begin admitting.
	JournalDir string
	// JournalFsync is the journal's fsync policy: journal.FsyncAlways,
	// FsyncInterval (default), or FsyncNone.
	JournalFsync string
	// JournalFsyncInterval is the FsyncInterval flush period.
	JournalFsyncInterval time.Duration
	// JournalCompactEvery triggers snapshot compaction after this many
	// appended records (default 4096).
	JournalCompactEvery int
	// RequeueInterrupted requeues jobs that were queued or running at
	// crash time instead of resolving them as failed(interrupted).
	RequeueInterrupted bool
}

// Job is one admitted request. All mutable fields are guarded by the
// server's mutex; done closes exactly once, on the transition to a
// terminal state.
type Job struct {
	ID     string
	Tenant string

	what       string
	seq        uint64
	spec       harness.JobSpec
	experiment string // non-empty: RunExperiment instead of RunJob
	cfg        harness.Config
	deadline   time.Duration
	idem       string  // idempotency key ("" = none)
	req        Request // original request, journaled for requeue

	// restored marks a job rebuilt from the journal: its queue/run
	// times are the journaled values, not live clock math, and a
	// non-terminal restored job has no harness state until requeued.
	restored    bool
	restQueueMS int64
	restRunMS   int64

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	state     string
	errText   string
	panicked  bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *Result
	table     string
}

// bucket is one tenant's token bucket, guarded by the server's mutex.
type bucket struct {
	tokens float64
	last   time.Time
}

// Server is the shared simulation pool. Create with New, replay the
// journal (if any) with Recover, shut down with Drain.
type Server struct {
	cfg   Config
	queue chan *Job
	wg    sync.WaitGroup
	ready atomic.Bool

	mu             sync.Mutex
	draining       bool
	recovered      bool
	degraded       bool
	degradedReason string
	seq            uint64
	inflight       int
	jobs           map[string]*Job
	order          []string
	tenants        map[string]*bucket
	idem           map[string]string // tenant-scoped idempotency key -> job ID
	jr             *journal.Journal

	cSubmitted   *obs.Counter
	cRejRate     *obs.Counter
	cRejQueue    *obs.Counter
	cRejDraining *obs.Counter
	cRejNotReady *obs.Counter
	cRejDegraded *obs.Counter
	cDeduped     *obs.Counter
	cCompleted   *obs.Counter
	cFailed      *obs.Counter
	cCancelled   *obs.Counter
	cPanics      *obs.Counter
	cInterrupted *obs.Counter
	gQueueDepth  *obs.Gauge
	gInflight    *obs.Gauge
	gReady       *obs.Gauge
	gDegraded    *obs.Gauge
	hQueueWait   *obs.Histogram
	hJobWall     *obs.Histogram

	cJAppends     *obs.Counter
	cJAppendErrs  *obs.Counter
	cJFsyncErrs   *obs.Counter
	cJReplayed    *obs.Counter
	cJBadRecs     *obs.Counter
	cJTornTail    *obs.Counter
	cJTornSnap    *obs.Counter
	cJCompactions *obs.Counter
	cJRequeued    *obs.Counter
	hJFsync       *obs.Histogram
}

// drainKillWait bounds the post-cancel wait in Drain. Cancellation
// latency is itself bounded (one emission chunk plus one bin of
// threads; see the harness cancel-latency test), so this only fires if
// a job has wedged outside every cancellation point.
const drainKillWait = 10 * time.Second

// New builds the server and starts its worker pool. Without a journal
// the returned server accepts Submit calls immediately; with
// Config.JournalDir set it starts live-but-not-ready (submits and job
// reads answer 503) until Recover replays the journal.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = defaultWorkers()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = 64
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = time.Minute
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = 5 * time.Minute
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 8192
	}
	if cfg.Harness.MatmulN == 0 {
		cfg.Harness = harness.Quick()
	}
	if cfg.Obs != nil && cfg.Harness.Obs == nil {
		cfg.Harness.Obs = cfg.Obs
	}
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *Job, cfg.QueueDepth),
		jobs:    make(map[string]*Job),
		tenants: make(map[string]*bucket),
		idem:    make(map[string]string),
	}
	reg := cfg.Obs.Registry() // nil registry hands out no-op handles
	s.cSubmitted = reg.Counter("server.submitted")
	s.cRejRate = reg.Counter("server.rejected.rate")
	s.cRejQueue = reg.Counter("server.rejected.queue")
	s.cRejDraining = reg.Counter("server.rejected.draining")
	s.cRejNotReady = reg.Counter("server.rejected.not_ready")
	s.cRejDegraded = reg.Counter("server.rejected.degraded")
	s.cDeduped = reg.Counter("server.deduped")
	s.cCompleted = reg.Counter("server.completed")
	s.cFailed = reg.Counter("server.failed")
	s.cCancelled = reg.Counter("server.cancelled")
	s.cPanics = reg.Counter("server.panics")
	s.cInterrupted = reg.Counter("server.interrupted")
	s.gQueueDepth = reg.Gauge("server.queue_depth")
	s.gInflight = reg.Gauge("server.inflight")
	s.gReady = reg.Gauge("server.ready")
	s.gDegraded = reg.Gauge("server.degraded")
	s.hQueueWait = reg.Histogram("server.queue_wait_ns")
	s.hJobWall = reg.Histogram("server.job_wall_ns")
	s.cJAppends = reg.Counter("server.journal.appends")
	s.cJAppendErrs = reg.Counter("server.journal.append_errors")
	s.cJFsyncErrs = reg.Counter("server.journal.fsync_errors")
	s.cJReplayed = reg.Counter("server.journal.replayed")
	s.cJBadRecs = reg.Counter("server.journal.bad_records")
	s.cJTornTail = reg.Counter("server.journal.torn_tail")
	s.cJTornSnap = reg.Counter("server.journal.torn_snapshot")
	s.cJCompactions = reg.Counter("server.journal.compactions")
	s.cJRequeued = reg.Counter("server.journal.requeued")
	s.hJFsync = reg.Histogram("server.journal.fsync_ns")
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	if cfg.JournalDir == "" {
		// No recovery to run: ready now. (Recover stays a no-op.)
		s.readyLocked()
	}
	return s
}

// Ready reports whether recovery has completed and the server is
// admitting work.
func (s *Server) Ready() bool { return s.ready.Load() }

// Degraded reports read-only mode (journal unwritable mid-run) and its
// cause.
func (s *Server) Degraded() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded, s.degradedReason
}

// Submit validates and admits one request. On success the job is queued
// and its initial Status returned; on failure the error is a
// *RejectError (backpressure: rate limit, full queue, or draining), or
// wraps harness.ErrBadJobSpec / ErrBadRequest (the request names no
// runnable simulation).
func (s *Server) Submit(req Request) (Status, error) {
	cfg := req.harnessConfig(s.cfg.Harness)
	spec := req.spec()
	if err := cfg.ValidateJob(spec); err != nil {
		return Status{}, err
	}
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "anon"
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ready.Load() {
		s.cRejNotReady.Inc(0)
		return Status{}, &RejectError{StatusCode: 503, Reason: "not-ready", RetryAfter: time.Second}
	}
	if s.draining {
		s.cRejDraining.Inc(0)
		return Status{}, &RejectError{StatusCode: 503, Reason: "draining", RetryAfter: time.Second}
	}
	// Idempotent resubmit: answered from the job table before admission
	// control, so a client's crash-retry neither double-runs the job nor
	// spends tokens or queue slots.
	if req.IdempotencyKey != "" {
		if id, ok := s.idem[idemKey(tenant, req.IdempotencyKey)]; ok {
			if j := s.jobs[id]; j != nil {
				st := j.statusLocked(time.Now())
				st.Deduped = true
				s.cDeduped.Inc(0)
				return st, nil
			}
		}
	}
	if s.degraded {
		s.cRejDegraded.Inc(0)
		return Status{}, &RejectError{StatusCode: 503, Reason: "degraded", RetryAfter: 5 * time.Second}
	}
	if wait, ok := s.takeTokenLocked(tenant); !ok {
		s.cRejRate.Inc(0)
		return Status{}, &RejectError{StatusCode: 429, Reason: "rate", RetryAfter: wait}
	}
	// Check queue room before journaling the accept: every sender holds
	// s.mu, so a non-full queue here cannot fill before the send below.
	if len(s.queue) == cap(s.queue) {
		s.refundTokenLocked(tenant)
		s.cRejQueue.Inc(0)
		return Status{}, &RejectError{StatusCode: 429, Reason: "queue", RetryAfter: 500 * time.Millisecond}
	}
	n := s.seq + 1
	j := &Job{
		ID:        fmt.Sprintf("j%06d", n),
		Tenant:    tenant,
		seq:       n,
		spec:      spec,
		cfg:       cfg,
		deadline:  deadline,
		idem:      req.IdempotencyKey,
		req:       req,
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}
	if spec.Kind == harness.JobTable {
		j.experiment = spec.Variant
		j.what = "table/" + j.experiment
	} else {
		j.what = spec.What()
	}
	if inj := s.cfg.Inject; inj.Enabled() && j.experiment == "" {
		seq := n
		j.spec.Hook = func() { inj.MaybePanic(fault.ServedJob, seq) }
	}
	j.ctx, j.cancel = context.WithCancel(context.Background())
	// Journal before admitting: "accepted" means "will still resolve
	// after a restart", so a job we cannot journal is a job we reject.
	if err := s.appendLocked(acceptRec(j)); err != nil {
		s.refundTokenLocked(tenant)
		s.cRejDegraded.Inc(0)
		return Status{}, &RejectError{StatusCode: 503, Reason: "degraded", RetryAfter: 5 * time.Second}
	}
	s.queue <- j // cannot block: room was checked under s.mu
	s.seq = n
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if j.idem != "" {
		s.idem[idemKey(tenant, j.idem)] = j.ID
	}
	s.evictLocked()
	s.maybeCompactLocked()
	s.cSubmitted.Inc(0)
	s.gQueueDepth.Set(0, uint64(len(s.queue)))
	return j.statusLocked(time.Now()), nil
}

// Get returns a job's current status.
func (s *Server) Get(id string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, false
	}
	return j.statusLocked(time.Now()), true
}

// Wait blocks until the job reaches a terminal state or the timeout
// elapses, then returns its current status either way.
func (s *Server) Wait(id string, timeout time.Duration) (Status, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-j.done:
	case <-t.C:
	}
	return s.Get(id)
}

// Cancel requests cancellation: a queued job goes terminal immediately;
// a running job is cancelled through its context and goes terminal when
// the harness unwinds (bounded latency). Terminal jobs are unaffected.
func (s *Server) Cancel(id string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, false
	}
	if j.cancel != nil { // restored terminal jobs have no context
		j.cancel()
	}
	if j.state == StateQueued {
		j.state = StateCancelled
		j.errText = "cancelled before start"
		j.finished = time.Now()
		s.cCancelled.Inc(0)
		close(j.done)
		_ = s.appendLocked(terminalRec(j))
		s.maybeCompactLocked()
	}
	return j.statusLocked(time.Now()), true
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Load returns the current queue depth and in-flight job count.
func (s *Server) Load() (queued, inflight int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), s.inflight
}

// Drain stops admission, lets queued and running jobs finish, and
// returns when the pool is idle. If ctx expires first, every live job
// is cancelled and Drain waits (briefly, bounded) for the pool to
// unwind, returning ctx's error.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return s.closeJournal()
	case <-ctx.Done():
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.cancel != nil {
			j.cancel()
		}
	}
	s.mu.Unlock()
	select {
	case <-done:
		_ = s.closeJournal()
		return ctx.Err()
	case <-time.After(drainKillWait):
		_ = s.closeJournal()
		return fmt.Errorf("server: drain: pool still busy after cancel-all: %w", ctx.Err())
	}
}

// closeJournal flushes and closes the journal once the pool is idle
// (idempotent; nil-safe).
func (s *Server) closeJournal() error {
	s.mu.Lock()
	jr := s.jr
	s.mu.Unlock()
	if jr == nil {
		return nil
	}
	return jr.Close()
}

// worker is one pool goroutine: it serves jobs until the queue is
// closed and empty (drain).
func (s *Server) worker(track int) {
	defer s.wg.Done()
	for j := range s.queue {
		s.gQueueDepth.Set(0, uint64(len(s.queue)))
		s.runJob(track, j)
	}
}

// runJob executes one job under its deadline and classifies the
// outcome. The harness guarantees RunJob/RunExperiment never panic, so
// a worker survives any job.
func (s *Server) runJob(track int, j *Job) {
	s.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	s.inflight++
	s.gInflight.Set(0, uint64(s.inflight))
	_ = s.appendLocked(jrec{Op: opRun, ID: j.ID})
	s.mu.Unlock()
	s.hQueueWait.Observe(track, uint64(j.started.Sub(j.submitted)))

	ctx, cancel := context.WithTimeout(j.ctx, j.deadline)
	defer cancel()
	var (
		res  harness.SimResult
		text string
		err  error
	)
	if j.experiment != "" {
		text, err = j.cfg.RunExperiment(ctx, j.experiment)
	} else {
		res, err = j.cfg.RunJob(ctx, j.spec)
	}

	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	j.finished = now
	s.inflight--
	s.gInflight.Set(0, uint64(s.inflight))
	s.hJobWall.Observe(track, uint64(now.Sub(j.started)))
	switch {
	case err == nil:
		j.state = StateDone
		if j.experiment != "" {
			j.table = text
		} else {
			j.result = resultOf(res)
		}
		s.cCompleted.Inc(track)
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.errText = "cancelled"
		s.cCancelled.Inc(track)
	case errors.Is(err, context.DeadlineExceeded):
		j.state = StateFailed
		j.errText = "deadline exceeded"
		s.cFailed.Inc(track)
	default:
		j.state = StateFailed
		j.errText = err.Error()
		var jpe *harness.JobPanicError
		if errors.As(err, &jpe) {
			j.panicked = true
			s.cPanics.Inc(track)
		}
		s.cFailed.Inc(track)
	}
	close(j.done)
	_ = s.appendLocked(terminalRec(j))
	s.maybeCompactLocked()
}

// takeTokenLocked draws one admission token for tenant, refilling by
// elapsed time first. On failure it returns the wait until a token
// accrues.
func (s *Server) takeTokenLocked(tenant string) (time.Duration, bool) {
	if s.cfg.TenantRate <= 0 {
		return 0, true
	}
	now := time.Now()
	burst := float64(s.cfg.TenantBurst)
	b := s.tenants[tenant]
	if b == nil {
		b = &bucket{tokens: burst, last: now}
		s.tenants[tenant] = b
	}
	b.tokens = min(burst, b.tokens+now.Sub(b.last).Seconds()*s.cfg.TenantRate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	return time.Duration((1 - b.tokens) / s.cfg.TenantRate * float64(time.Second)), false
}

// refundTokenLocked returns a token taken for a submit that was then
// rejected for a different reason (full queue).
func (s *Server) refundTokenLocked(tenant string) {
	if s.cfg.TenantRate <= 0 {
		return
	}
	if b := s.tenants[tenant]; b != nil {
		b.tokens = min(float64(s.cfg.TenantBurst), b.tokens+1)
	}
}

// evictLocked drops the oldest terminal jobs beyond the retention
// bound. A live job at the head stops eviction — live jobs are never
// evicted, whatever the retention pressure. Each eviction journals a
// tombstone so replay does not resurrect the job (or its idempotency
// key).
func (s *Server) evictLocked() {
	for len(s.order) > s.cfg.Retention {
		j := s.jobs[s.order[0]]
		if j != nil {
			switch j.state {
			case StateDone, StateFailed, StateCancelled:
			default:
				return
			}
			delete(s.jobs, j.ID)
			if j.idem != "" {
				delete(s.idem, idemKey(j.Tenant, j.idem))
			}
			_ = s.appendLocked(jrec{Op: opEvict, ID: j.ID})
		}
		s.order = s.order[1:]
	}
}

// statusLocked renders the job's externally visible state; the caller
// holds the server mutex.
func (j *Job) statusLocked(now time.Time) Status {
	st := Status{
		ID:     j.ID,
		Tenant: j.Tenant,
		What:   j.what,
		State:  j.state,
		Error:  j.errText,
		Panic:  j.panicked,
		Result: j.result,
		Table:  j.table,
	}
	st.Restored = j.restored
	switch {
	case j.restored:
		st.QueueMS, st.RunMS = j.restQueueMS, j.restRunMS
	case j.state == StateQueued:
		st.QueueMS = ms(now.Sub(j.submitted))
	case j.started.IsZero(): // cancelled while queued
		st.QueueMS = ms(j.finished.Sub(j.submitted))
	default:
		st.QueueMS = ms(j.started.Sub(j.submitted))
		end := j.finished
		if end.IsZero() {
			end = now
		}
		st.RunMS = ms(end.Sub(j.started))
	}
	return st
}

func defaultWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

func ms(d time.Duration) int64 {
	if d < 0 {
		return 0
	}
	return d.Milliseconds()
}
