package server

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest hammers the daemon's only untrusted input surface:
// whatever bytes arrive, DecodeRequest must return cleanly — never
// panic — and anything it accepts must satisfy its own validator (the
// invariant Submit relies on to skip re-checking).
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"kind":"matmul"}`))
	f.Add([]byte(`{"kind":"table","variant":"table3"}`))
	f.Add([]byte(`{"kind":"sor","tenant":"a","size":"scaled","mode":"pipeline","sor_n":201,"sor_iters":8,"deadline_ms":5000}`))
	f.Add([]byte(`{"kind":"nbody","machine":"modern","steps":2,"block":64}`))
	f.Add([]byte(`{"kind":"matmul","matmul_n":-1}`))
	f.Add([]byte(`{"kind":"matmul"}{"kind":"sor"}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := req.validate(); verr != nil {
			t.Fatalf("accepted request fails its own validator: %v (input %q)", verr, data)
		}
	})
}
