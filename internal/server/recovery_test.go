package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"threadsched/internal/fault"
	"threadsched/internal/journal"
	"threadsched/internal/obs"
)

// journalCfg is the base config for a journaled test server: smallest
// harness, no fsync (same-OS restarts read the page cache; the fsync
// policies themselves are covered by internal/journal).
func journalCfg(dir string) Config {
	return Config{
		Workers:      2,
		Harness:      testHarness(),
		JournalDir:   dir,
		JournalFsync: journal.FsyncNone,
	}
}

func drainSrv(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func recoverSrv(t *testing.T, s *Server) {
	t.Helper()
	if err := s.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if !s.Ready() {
		t.Fatalf("server not ready after Recover")
	}
}

func submitOK(t *testing.T, s *Server, req Request) Status {
	t.Helper()
	st, err := s.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return st
}

func waitDone(t *testing.T, s *Server, id string) Status {
	t.Helper()
	st, ok := s.Wait(id, 60*time.Second)
	if !ok {
		t.Fatalf("wait: job %s unknown", id)
	}
	if st.State != StateDone {
		t.Fatalf("job %s: state %s, error %q", id, st.State, st.Error)
	}
	return st
}

func counterTotal(o *obs.Obs, name string) uint64 {
	for _, c := range o.Snapshot().Counters {
		if c.Name == name {
			return c.Total
		}
	}
	return 0
}

// writeRecords hand-crafts a journal: the test's way to put the server
// in "crashed mid-job" states that a graceful shutdown can never
// produce (accepted or running jobs with no terminal record).
func writeRecords(t *testing.T, dir string, recs []jrec) {
	t.Helper()
	jr, _, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := jr.Append(raw); err != nil {
			t.Fatal(err)
		}
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverRestartAnswersPreRestartJobs is the tentpole contract:
// every job ID the daemon promised before a restart still resolves
// after it, with the original results, and idempotency keys still
// dedupe onto the surviving jobs.
func TestRecoverRestartAnswersPreRestartJobs(t *testing.T) {
	dir := t.TempDir()

	a := New(journalCfg(dir))
	recoverSrv(t, a)
	st1 := submitOK(t, a, Request{Kind: "matmul", Variant: "threaded", Tenant: "acme", IdempotencyKey: "k1"})
	orig := waitDone(t, a, st1.ID)
	st2 := submitOK(t, a, Request{Kind: "table", Variant: "table1"})
	origTable := waitDone(t, a, st2.ID)
	drainSrv(t, a)

	b := New(journalCfg(dir))
	if b.Ready() {
		t.Fatalf("journaled server ready before Recover")
	}
	if _, err := b.Submit(Request{Kind: "matmul"}); err == nil {
		t.Fatalf("submit before Recover accepted")
	} else {
		var rej *RejectError
		if !errors.As(err, &rej) || rej.StatusCode != http.StatusServiceUnavailable || rej.Reason != "not-ready" {
			t.Fatalf("submit before Recover: %v", err)
		}
	}
	recoverSrv(t, b)
	defer drainSrv(t, b)

	got, ok := b.Get(st1.ID)
	if !ok {
		t.Fatalf("job %s lost across restart", st1.ID)
	}
	if got.State != StateDone || !got.Restored || got.Result == nil {
		t.Fatalf("restored job: %+v", got)
	}
	if got.Result.Instructions != orig.Result.Instructions || got.Result.L1Misses != orig.Result.L1Misses {
		t.Fatalf("restored result differs:\n before %+v\n after  %+v", orig.Result, got.Result)
	}
	if got.QueueMS != orig.QueueMS || got.RunMS != orig.RunMS {
		t.Fatalf("restored timings differ: before %d/%d, after %d/%d",
			orig.QueueMS, orig.RunMS, got.QueueMS, got.RunMS)
	}
	if gt, ok := b.Get(st2.ID); !ok || gt.Table != origTable.Table {
		t.Fatalf("restored table job: ok=%v %+v", ok, gt)
	}
	// Wait on a restored terminal job returns immediately.
	if st, ok := b.Wait(st1.ID, time.Second); !ok || st.State != StateDone {
		t.Fatalf("wait on restored job: ok=%v %+v", ok, st)
	}

	// The idempotency key crossed the restart: a crash-retry dedupes.
	dup := submitOK(t, b, Request{Kind: "matmul", Variant: "threaded", Tenant: "acme", IdempotencyKey: "k1"})
	if !dup.Deduped || dup.ID != st1.ID {
		t.Fatalf("resubmit after restart: deduped=%v id=%s (want %s)", dup.Deduped, dup.ID, st1.ID)
	}
	// A different tenant's identical key is a fresh job.
	other := submitOK(t, b, Request{Kind: "matmul", Variant: "threaded", Tenant: "rival", IdempotencyKey: "k1"})
	if other.Deduped || other.ID == st1.ID {
		t.Fatalf("idempotency key leaked across tenants: %+v", other)
	}
	waitDone(t, b, other.ID)
}

// TestRecoverInterruptedJobs replays a journal whose jobs were queued
// or running at crash time: they resolve as failed(interrupted), and
// the resolution is itself journaled so a second restart agrees.
func TestRecoverInterruptedJobs(t *testing.T) {
	dir := t.TempDir()
	now := time.Now().UnixMilli()
	req := &Request{Kind: "matmul", Variant: "threaded"}
	writeRecords(t, dir, []jrec{
		{Op: opAccept, ID: "j000001", Seq: 1, Tenant: "t", What: "matmul/threaded", Req: req, SubmitMS: now},
		{Op: opAccept, ID: "j000002", Seq: 2, Tenant: "t", What: "matmul/threaded", Req: req, SubmitMS: now},
		{Op: opRun, ID: "j000002"},
		{Op: opAccept, ID: "j000003", Seq: 3, Tenant: "t", What: "matmul/threaded", Req: req, SubmitMS: now},
		{Op: opRun, ID: "j000003"},
		{Op: opDone, ID: "j000003", Result: &Result{Instructions: 42}, QueueMS: 1, RunMS: 2},
	})

	o := obs.New(2)
	cfg := journalCfg(dir)
	cfg.Obs = o
	s := New(cfg)
	recoverSrv(t, s)

	for _, id := range []string{"j000001", "j000002"} {
		st, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s lost", id)
		}
		if st.State != StateFailed || st.Error != interruptedError || !st.Restored {
			t.Fatalf("job %s: %+v", id, st)
		}
		// Terminal: waiters are released, not stuck.
		if st, ok = s.Wait(id, time.Second); !ok || st.State != StateFailed {
			t.Fatalf("wait %s: ok=%v %+v", id, ok, st)
		}
	}
	if st, ok := s.Get("j000003"); !ok || st.State != StateDone || st.Result == nil || st.Result.Instructions != 42 {
		t.Fatalf("j000003: ok=%v %+v", ok, st)
	}
	if n := counterTotal(o, "server.interrupted"); n != 2 {
		t.Fatalf("server.interrupted = %d, want 2", n)
	}
	// New work runs normally after replay; its seq does not collide
	// with the replayed IDs.
	st := submitOK(t, s, Request{Kind: "matmul", Variant: "threaded"})
	if st.ID == "j000001" || st.ID == "j000002" || st.ID == "j000003" {
		t.Fatalf("fresh job reused a replayed ID: %s", st.ID)
	}
	waitDone(t, s, st.ID)
	drainSrv(t, s)

	// Second restart: the interrupted resolutions were journaled, so
	// they replay as terminal — not re-decided, not double-counted.
	o2 := obs.New(2)
	cfg2 := journalCfg(dir)
	cfg2.Obs = o2
	s2 := New(cfg2)
	recoverSrv(t, s2)
	defer drainSrv(t, s2)
	if st, ok := s2.Get("j000001"); !ok || st.State != StateFailed || st.Error != interruptedError {
		t.Fatalf("second restart j000001: ok=%v %+v", ok, st)
	}
	if n := counterTotal(o2, "server.interrupted"); n != 0 {
		t.Fatalf("second restart re-interrupted %d jobs", n)
	}
}

// TestRecoverRequeueInterrupted: with RequeueInterrupted set, a job
// that was in flight at crash time runs again instead of failing.
func TestRecoverRequeueInterrupted(t *testing.T) {
	dir := t.TempDir()
	writeRecords(t, dir, []jrec{
		{Op: opAccept, ID: "j000001", Seq: 1, Tenant: "t", What: "matmul/threaded",
			Req: &Request{Kind: "matmul", Variant: "threaded"}, SubmitMS: time.Now().UnixMilli()},
	})

	o := obs.New(2)
	cfg := journalCfg(dir)
	cfg.Obs = o
	cfg.RequeueInterrupted = true
	s := New(cfg)
	recoverSrv(t, s)
	defer drainSrv(t, s)

	st := waitDone(t, s, "j000001")
	if st.Result == nil {
		t.Fatalf("requeued job finished without a result: %+v", st)
	}
	if n := counterTotal(o, "server.journal.requeued"); n != 1 {
		t.Fatalf("server.journal.requeued = %d, want 1", n)
	}
	if n := counterTotal(o, "server.interrupted"); n != 0 {
		t.Fatalf("requeued job also counted interrupted (%d)", n)
	}
}

// TestRecoverTornTail cuts the journal mid-record — a kill -9 during
// an append — and proves the prefix replays, the torn job resolves as
// interrupted, and the tear is counted.
func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	a := New(Config{Workers: 1, Harness: testHarness(), JournalDir: dir, JournalFsync: journal.FsyncNone})
	recoverSrv(t, a)
	st1 := submitOK(t, a, Request{Kind: "matmul", Variant: "threaded"})
	waitDone(t, a, st1.ID)
	st2 := submitOK(t, a, Request{Kind: "matmul", Variant: "threaded"})
	waitDone(t, a, st2.ID)
	drainSrv(t, a)

	// Tear the last record (job 2's "done"): one worker and sequential
	// waits make the append order deterministic.
	wal := filepath.Join(dir, "wal.j")
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	o := obs.New(2)
	cfg := journalCfg(dir)
	cfg.Obs = o
	b := New(cfg)
	recoverSrv(t, b)
	defer drainSrv(t, b)

	if n := counterTotal(o, "server.journal.torn_tail"); n != 1 {
		t.Fatalf("server.journal.torn_tail = %d, want 1", n)
	}
	if st, ok := b.Get(st1.ID); !ok || st.State != StateDone {
		t.Fatalf("job before the tear: ok=%v %+v", ok, st)
	}
	if st, ok := b.Get(st2.ID); !ok || st.State != StateFailed || st.Error != interruptedError {
		t.Fatalf("torn job: ok=%v %+v", ok, st)
	}
}

// TestRecoverEvictedTombstones: retention evictions are journaled, so
// an evicted job does not resurrect on replay and its idempotency key
// is free again.
func TestRecoverEvictedTombstones(t *testing.T) {
	dir := t.TempDir()
	cfg := journalCfg(dir)
	cfg.Workers = 1
	cfg.Retention = 2
	a := New(cfg)
	recoverSrv(t, a)
	var ids []string
	for _, k := range []string{"k1", "k2", "k3"} {
		st := submitOK(t, a, Request{Kind: "matmul", Variant: "threaded", Tenant: "t", IdempotencyKey: k})
		waitDone(t, a, st.ID)
		ids = append(ids, st.ID)
	}
	// Submitting job 3 evicted terminal job 1 past Retention=2.
	if _, ok := a.Get(ids[0]); ok {
		t.Fatalf("job %s not evicted (retention %d)", ids[0], cfg.Retention)
	}
	drainSrv(t, a)

	b := New(journalCfg(dir))
	recoverSrv(t, b)
	defer drainSrv(t, b)
	if _, ok := b.Get(ids[0]); ok {
		t.Fatalf("evicted job %s resurrected by replay", ids[0])
	}
	if st, ok := b.Get(ids[2]); !ok || st.State != StateDone {
		t.Fatalf("retained job %s: ok=%v %+v", ids[2], ok, st)
	}
	// k1's job is gone, so k1 maps to a fresh job; k3 still dedupes.
	fresh := submitOK(t, b, Request{Kind: "matmul", Variant: "threaded", Tenant: "t", IdempotencyKey: "k1"})
	if fresh.Deduped {
		t.Fatalf("evicted idempotency key still deduped: %+v", fresh)
	}
	waitDone(t, b, fresh.ID)
	dup := submitOK(t, b, Request{Kind: "matmul", Variant: "threaded", Tenant: "t", IdempotencyKey: "k3"})
	if !dup.Deduped || dup.ID != ids[2] {
		t.Fatalf("surviving key k3: deduped=%v id=%s (want %s)", dup.Deduped, dup.ID, ids[2])
	}
}

// TestDegradedOnTornWrite: a torn journal append mid-run flips the
// server into sticky read-only mode — the failed submit is rejected
// (accepted means remembered), polls keep serving, and the next boot
// tolerates the torn tail.
func TestDegradedOnTornWrite(t *testing.T) {
	dir := t.TempDir()
	o := obs.New(2)
	cfg := journalCfg(dir)
	cfg.Obs = o
	cfg.Workers = 1
	// Appends: 0 = accept job1, 1 = run job1, 2 = done job1, 3 = accept
	// job2 → torn.
	cfg.Inject = fault.New(fault.Config{At: map[fault.Site][]uint64{fault.JournalTornWrite: {3}}})
	s := New(cfg)
	recoverSrv(t, s)
	defer drainSrv(t, s)

	st1 := submitOK(t, s, Request{Kind: "matmul", Variant: "threaded"})
	waitDone(t, s, st1.ID)

	_, err := s.Submit(Request{Kind: "matmul", Variant: "threaded"})
	var rej *RejectError
	if !errors.As(err, &rej) || rej.StatusCode != http.StatusServiceUnavailable || rej.Reason != "degraded" {
		t.Fatalf("submit over torn journal: %v", err)
	}
	if deg, reason := s.Degraded(); !deg || reason == "" {
		t.Fatalf("server not degraded after torn append (reason %q)", reason)
	}
	// Sticky: later submits stay rejected; reads keep serving.
	if _, err := s.Submit(Request{Kind: "matmul", Variant: "threaded"}); err == nil {
		t.Fatalf("degraded mode not sticky")
	}
	if st, ok := s.Get(st1.ID); !ok || st.State != StateDone {
		t.Fatalf("poll during degraded mode: ok=%v %+v", ok, st)
	}
	if n := counterTotal(o, "server.rejected.degraded"); n < 2 {
		t.Fatalf("server.rejected.degraded = %d, want >= 2", n)
	}
	if n := counterTotal(o, "server.journal.append_errors"); n == 0 {
		t.Fatalf("append error not counted")
	}
	drainSrv(t, s)

	// The torn tail is survivable: job1 (journaled before the tear)
	// replays; the rejected job2 was never accepted, so nothing is lost.
	o2 := obs.New(2)
	cfg2 := journalCfg(dir)
	cfg2.Obs = o2
	b := New(cfg2)
	recoverSrv(t, b)
	defer drainSrv(t, b)
	if st, ok := b.Get(st1.ID); !ok || st.State != StateDone {
		t.Fatalf("after torn-write restart: ok=%v %+v", ok, st)
	}
	if n := counterTotal(o2, "server.journal.torn_tail"); n != 1 {
		t.Fatalf("torn tail not counted on restart (%d)", n)
	}
	if deg, _ := b.Degraded(); deg {
		t.Fatalf("fresh boot inherited degraded mode")
	}
}

// TestDegradedOnDiskFull: an ENOSPC-style append failure degrades the
// same way but does not tear the file — the journal stays replayable
// without a torn-tail tick.
func TestDegradedOnDiskFull(t *testing.T) {
	dir := t.TempDir()
	cfg := journalCfg(dir)
	cfg.Workers = 1
	cfg.Inject = fault.New(fault.Config{At: map[fault.Site][]uint64{fault.JournalFull: {0}}})
	s := New(cfg)
	recoverSrv(t, s)
	_, err := s.Submit(Request{Kind: "matmul", Variant: "threaded"})
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != "degraded" {
		t.Fatalf("submit over full disk: %v", err)
	}
	drainSrv(t, s)

	o := obs.New(2)
	cfg2 := journalCfg(dir)
	cfg2.Obs = o
	b := New(cfg2)
	recoverSrv(t, b)
	defer drainSrv(t, b)
	if n := counterTotal(o, "server.journal.torn_tail"); n != 0 {
		t.Fatalf("clean append failure counted as torn tail (%d)", n)
	}
}

// TestReadinessSplitHTTP: until Recover completes the daemon is live
// (/healthz 200) but not ready (/readyz 503), and job routes answer
// 503 + Retry-After rather than lying with 404.
func TestReadinessSplitHTTP(t *testing.T) {
	dir := t.TempDir()
	s := New(journalCfg(dir))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body
	}

	if code, body := get("/healthz"); code != http.StatusOK || body["status"] != "recovering" {
		t.Fatalf("healthz during replay: %d %v", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body["status"] != "recovering" {
		t.Fatalf("readyz during replay: %d %v", code, body)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/j000001")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("job route during replay: %d Retry-After=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if code, _, _ := postJob(t, ts, `{"kind":"matmul"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit during replay: %d", code)
	}

	recoverSrv(t, s)
	if code, body := get("/readyz"); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz after recover: %d %v", code, body)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/j000001")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job after recover: %d", resp.StatusCode)
	}

	drainSrv(t, s)
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while drained: %d", code)
	}
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: %d", code)
	}
}

// TestRecoverCompaction pushes a journaled server through enough
// submits to trigger snapshot compaction, then restarts: snapshot +
// tail replay to the same job table the pre-restart server had.
func TestRecoverCompaction(t *testing.T) {
	dir := t.TempDir()
	o := obs.New(2)
	cfg := journalCfg(dir)
	cfg.Obs = o
	cfg.Workers = 2
	cfg.JournalCompactEvery = 16
	a := New(cfg)
	recoverSrv(t, a)
	want := map[string]Status{}
	for i := 0; i < 12; i++ {
		st := submitOK(t, a, Request{Kind: "matmul", Variant: "threaded"})
		want[st.ID] = waitDone(t, a, st.ID)
	}
	if n := counterTotal(o, "server.journal.compactions"); n == 0 {
		t.Fatalf("no compaction after %d jobs with CompactEvery=16", len(want))
	}
	drainSrv(t, a)

	b := New(journalCfg(dir))
	recoverSrv(t, b)
	defer drainSrv(t, b)
	for id, w := range want {
		st, ok := b.Get(id)
		if !ok || st.State != StateDone || st.Result == nil {
			t.Fatalf("job %s after compacted restart: ok=%v %+v", id, ok, st)
		}
		if st.Result.Instructions != w.Result.Instructions {
			t.Fatalf("job %s result drifted across compaction", id)
		}
	}
}
