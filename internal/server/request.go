package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"threadsched/internal/harness"
)

// Request is the JSON body of POST /v1/jobs: one simulation (or one
// whole experiment) to run. Every field except kind is optional; zero
// values select the server's defaults.
type Request struct {
	// Tenant identifies the submitter for admission control; empty maps
	// to "anon". Each tenant has its own token bucket.
	Tenant string `json:"tenant,omitempty"`
	// Kind is "matmul", "pde", "sor", "nbody", or "table".
	Kind string `json:"kind"`
	// Variant is the kind-specific variant name ("" = "threaded"); for
	// kind "table" it names the experiment ("table1".."table9",
	// "figure4").
	Variant string `json:"variant,omitempty"`
	// Machine is "r8000" (default), "r10000", or "modern".
	Machine string `json:"machine,omitempty"`
	// Size selects the base geometry: "" (server default), "quick", or
	// "scaled".
	Size string `json:"size,omitempty"`
	// Mode selects the reference-stream path: "" or "batch", "serial",
	// "pipeline".
	Mode string `json:"mode,omitempty"`
	// Geometry overrides (0 = the size's default), validated against the
	// caps below.
	MatmulN  int `json:"matmul_n,omitempty"`
	PDEN     int `json:"pde_n,omitempty"`
	PDEIters int `json:"pde_iters,omitempty"`
	SORN     int `json:"sor_n,omitempty"`
	SORIters int `json:"sor_iters,omitempty"`
	NBodyN   int `json:"nbody_n,omitempty"`
	// Steps is the N-body step count (0 = the size's default).
	Steps int `json:"steps,omitempty"`
	// Block overrides the scheduler block size for threaded variants.
	Block uint64 `json:"block,omitempty"`
	// DeadlineMS bounds the job's run time in milliseconds (0 = the
	// server's default deadline; clamped to its maximum).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// IdempotencyKey, when set, dedupes resubmits: a second submit with
	// the same (tenant, key) returns the existing job's status instead
	// of running a new job. The mapping is journaled, so dedupe
	// survives a daemon restart — a client retrying through a crash
	// cannot double-run its job. Keys are dropped when their job is
	// evicted from retention.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// Request caps: a shared service cannot let one request submit the
// paper-scale geometry (hours of simulation) or an absurd iteration
// count. Deadlines bound runaway jobs anyway; the caps keep a single
// accepted job's memory in check too.
const (
	maxRequestBytes = 1 << 20
	maxDim          = 4096
	maxIters        = 1024
	maxSteps        = 64
)

// ErrBadRequest is wrapped by every decode/validation failure, mapped to
// a 400 by the HTTP layer.
var ErrBadRequest = errors.New("server: bad request")

// DecodeRequest parses and validates one JSON request body.
func DecodeRequest(r io.Reader) (Request, error) {
	var req Request
	dec := json.NewDecoder(io.LimitReader(r, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return Request{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	// Reject trailing garbage (a second JSON value).
	if dec.More() {
		return Request{}, fmt.Errorf("%w: trailing data after request object", ErrBadRequest)
	}
	if err := req.validate(); err != nil {
		return Request{}, err
	}
	return req, nil
}

func (r Request) validate() error {
	switch strings.ToLower(r.Kind) {
	case "matmul", "pde", "sor", "nbody":
	case "table":
		if r.Block != 0 || r.Steps != 0 {
			return fmt.Errorf("%w: block/steps do not apply to experiment jobs", ErrBadRequest)
		}
	case "":
		return fmt.Errorf("%w: missing kind", ErrBadRequest)
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrBadRequest, r.Kind)
	}
	switch strings.ToLower(r.Size) {
	case "", "quick", "scaled":
	default:
		return fmt.Errorf("%w: unknown size %q (want quick or scaled)", ErrBadRequest, r.Size)
	}
	switch strings.ToLower(r.Mode) {
	case "", "batch", "serial", "pipeline":
	default:
		return fmt.Errorf("%w: unknown mode %q", ErrBadRequest, r.Mode)
	}
	for _, d := range []struct {
		name string
		v    int
		max  int
	}{
		{"matmul_n", r.MatmulN, maxDim},
		{"pde_n", r.PDEN, maxDim},
		{"pde_iters", r.PDEIters, maxIters},
		{"sor_n", r.SORN, maxDim},
		{"sor_iters", r.SORIters, maxIters},
		{"nbody_n", r.NBodyN, 1 << 17},
		{"steps", r.Steps, maxSteps},
	} {
		if d.v < 0 || d.v > d.max {
			return fmt.Errorf("%w: %s = %d out of range [0, %d]", ErrBadRequest, d.name, d.v, d.max)
		}
	}
	if r.DeadlineMS < 0 {
		return fmt.Errorf("%w: negative deadline_ms", ErrBadRequest)
	}
	if len(r.Tenant) > 128 {
		return fmt.Errorf("%w: tenant name too long", ErrBadRequest)
	}
	if len(r.IdempotencyKey) > 256 {
		return fmt.Errorf("%w: idempotency key too long", ErrBadRequest)
	}
	return nil
}

// harnessConfig maps the request's size + geometry overrides onto a
// harness Config rooted at the server's base.
func (r Request) harnessConfig(base harness.Config) harness.Config {
	c := base
	switch strings.ToLower(r.Size) {
	case "quick":
		c = harness.Quick()
	case "scaled":
		c = harness.Scaled()
	}
	switch strings.ToLower(r.Mode) {
	case "batch":
		c.Mode = harness.ModeBatched
	case "serial":
		c.Mode = harness.ModeSerial
	case "pipeline":
		c.Mode = harness.ModePipelined
	}
	if r.MatmulN > 0 {
		c.MatmulN = r.MatmulN
	}
	if r.PDEN > 0 {
		c.PDEN = r.PDEN
	}
	if r.PDEIters > 0 {
		c.PDEIters = r.PDEIters
	}
	if r.SORN > 0 {
		c.SORN = r.SORN
	}
	if r.SORIters > 0 {
		c.SORIters = r.SORIters
	}
	if r.NBodyN > 0 {
		c.NBodyN = r.NBodyN
	}
	if r.Steps > 0 {
		c.NBodySteps = r.Steps
	}
	return c
}

// spec maps the request onto the harness job spec (experiment name
// handling lives in the job runner).
func (r Request) spec() harness.JobSpec {
	return harness.JobSpec{
		Kind:    harness.JobKind(strings.ToLower(r.Kind)),
		Variant: strings.ToLower(r.Variant),
		Machine: strings.ToLower(r.Machine),
		Steps:   r.Steps,
		Block:   r.Block,
	}
}

// Result is the JSON-serializable outcome of one completed simulation.
type Result struct {
	Instructions uint64  `json:"instructions"`
	IFetches     uint64  `json:"ifetches"`
	DataRefs     uint64  `json:"data_refs"`
	L1Misses     uint64  `json:"l1_misses"`
	L2Misses     uint64  `json:"l2_misses"`
	L3Misses     uint64  `json:"l3_misses,omitempty"`
	L1Rate       float64 `json:"l1_rate"`
	L2Rate       float64 `json:"l2_rate"`
	ModelSeconds float64 `json:"model_seconds"`
	SchedThreads int     `json:"sched_threads,omitempty"`
	SchedBins    int     `json:"sched_bins,omitempty"`
}

func resultOf(r harness.SimResult) *Result {
	return &Result{
		Instructions: r.Instructions,
		IFetches:     r.Summary.IFetches,
		DataRefs:     r.Summary.DataRefs,
		L1Misses:     r.Summary.L1Misses,
		L2Misses:     r.Summary.L2.Misses,
		L3Misses:     r.Summary.L3.Misses,
		L1Rate:       r.Summary.L1Rate,
		L2Rate:       r.Summary.L2Rate,
		ModelSeconds: r.Seconds(),
		SchedThreads: r.Sched.Threads,
		SchedBins:    r.Sched.Bins,
	}
}

// Status is the JSON shape of one job's externally visible state.
type Status struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	What   string `json:"what"`
	// State is "queued", "running", "done", "failed", or "cancelled".
	State string `json:"state"`
	// Error describes a failed or cancelled job; Panic marks a contained
	// panic (as opposed to a spec or deadline failure).
	Error string `json:"error,omitempty"`
	Panic bool   `json:"panic,omitempty"`
	// QueueMS and RunMS are the measured queue wait and run time so far.
	QueueMS int64 `json:"queue_ms"`
	RunMS   int64 `json:"run_ms,omitempty"`
	// Result is set once a simulation job is done; Table once an
	// experiment job is done.
	Result *Result `json:"result,omitempty"`
	Table  string  `json:"table,omitempty"`
	// Deduped marks a submit answered from an existing job via its
	// idempotency key (the HTTP layer returns 200 instead of 202).
	Deduped bool `json:"deduped,omitempty"`
	// Restored marks a job rebuilt from the journal after a restart;
	// its queue/run times are the journaled values.
	Restored bool `json:"restored,omitempty"`
}

// RejectError is a typed submit rejection: the HTTP layer maps it onto
// its status code and Retry-After header.
type RejectError struct {
	// StatusCode is the HTTP status (429 or 503).
	StatusCode int
	// Reason is a short machine-readable cause: "rate", "queue",
	// "draining".
	Reason string
	// RetryAfter is the suggested backoff.
	RetryAfter time.Duration
}

// Error describes the rejection.
func (e *RejectError) Error() string {
	return fmt.Sprintf("server: rejected (%s), retry after %v", e.Reason, e.RetryAfter)
}
