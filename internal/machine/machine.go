// Package machine describes the two evaluation systems from the paper —
// the SGI Power Indigo2 (MIPS R8000) and the SGI Indigo2 IMPACT (MIPS
// R10000) — and implements the paper's "crude analysis" cost model used
// throughout §4 to relate simulated reference streams to execution time:
// one cycle per instruction, a 7-cycle first-level miss penalty, and the
// measured second-level miss penalty (1.06 µs on the R8000, 0.85 µs on the
// R10000).
//
// It also provides geometry-preserving scaled configurations so the
// experiments can run at laptop scale: all cache capacities shrink by a
// power-of-two factor while line sizes and associativities stay fixed, and
// the harness shrinks the workload data sets by the same factor, keeping
// the data-to-cache ratios (and therefore the miss behaviour shape) of the
// paper's runs.
package machine

import (
	"fmt"
	"math/bits"
	"time"

	"threadsched/internal/cache"
)

// Machine is one modelled system.
type Machine struct {
	// Name is the CPU name used in the paper's table headers.
	Name string
	// System is the full system name.
	System string
	// ClockHz is the CPU clock rate.
	ClockHz float64
	// Caches is the cache hierarchy geometry.
	Caches cache.HierarchyConfig
	// L1MissCycles is the first-level miss penalty in cycles (the paper
	// uses 7 cycles, citing the R8000 design paper).
	L1MissCycles float64
	// L2MissTime is the measured second-level (main-memory) miss penalty.
	L2MissTime time.Duration
	// ThreadForkTime and ThreadRunTime are the paper's measured
	// per-thread overheads (Table 1), used when modelling threaded
	// variants' overhead at full scale.
	ThreadForkTime time.Duration
	ThreadRunTime  time.Duration
	// IssueWidth is the sustained instructions-per-cycle the calibrated
	// cost model assumes for these FP kernels (both CPUs are 4-issue
	// superscalar; the paper's crude one-instruction-per-cycle analysis
	// overestimates compute time by roughly this factor against its own
	// measured results).
	IssueWidth float64
	// L2MissExposed is the fraction of the L2 miss penalty the pipeline
	// actually stalls for. 1.0 for the in-order R8000; the out-of-order
	// R10000 overlaps most of it (calibrated against Table 2: its
	// measured untiled matmul time is below 68M misses × 0.85 µs, so a
	// large fraction must be hidden).
	L2MissExposed float64
	// L3MissTime is the memory penalty behind an L3, for three-level
	// models; zero on the two-level SGI systems (whose L2MissTime is
	// already the memory penalty).
	L3MissTime time.Duration
}

// CycleTime returns the duration of one CPU cycle.
func (m Machine) CycleTime() time.Duration {
	return time.Duration(float64(time.Second) / m.ClockHz)
}

// L2CacheSize returns the second-level cache capacity in bytes — the
// parameter the locality scheduler's default block size derives from.
func (m Machine) L2CacheSize() uint64 { return m.Caches.L2.Size }

// R8000 returns the SGI Power Indigo2 model: 75 MHz R8000, 16 KB split
// direct-mapped L1 I/D with 32 B lines, unified 2 MB 4-way L2 with 128 B
// lines, 1.06 µs L2 miss penalty.
func R8000() Machine {
	return Machine{
		Name:    "R8000",
		System:  "SGI Power Indigo2",
		ClockHz: 75e6,
		Caches: cache.HierarchyConfig{
			L1I: cache.Config{Name: "L1I", Size: 16 << 10, LineSize: 32, Assoc: 1},
			// The data cache is modelled 2-way. A strictly direct-mapped
			// model thrashes pathologically when two column streams are
			// base-congruent (C = column pairs exactly fill it), which the
			// paper's own simulated L1 counts (Table 3: 409M misses ≈
			// streaming rate, not thrash rate) show did not happen — on the
			// real R8000, FP data streams through the streaming cache.
			L1D: cache.Config{Name: "L1D", Size: 16 << 10, LineSize: 32, Assoc: 2},
			L2:  cache.Config{Name: "L2", Size: 2 << 20, LineSize: 128, Assoc: 4, Classify: true},
		},
		L1MissCycles:   7,
		L2MissTime:     1060 * time.Nanosecond,
		ThreadForkTime: 1380 * time.Nanosecond,
		ThreadRunTime:  220 * time.Nanosecond,
		IssueWidth:     4,
		L2MissExposed:  1.0,
	}
}

// R10000 returns the SGI Indigo2 IMPACT model: 195 MHz R10000, 32 KB
// 2-way L1s (64 B I lines, 32 B D lines), unified 1 MB 2-way L2 with 128 B
// lines, 0.85 µs L2 miss penalty.
func R10000() Machine {
	return Machine{
		Name:    "R10000",
		System:  "SGI Indigo2 IMPACT",
		ClockHz: 195e6,
		Caches: cache.HierarchyConfig{
			L1I: cache.Config{Name: "L1I", Size: 32 << 10, LineSize: 64, Assoc: 2},
			L1D: cache.Config{Name: "L1D", Size: 32 << 10, LineSize: 32, Assoc: 2},
			L2:  cache.Config{Name: "L2", Size: 1 << 20, LineSize: 128, Assoc: 2, Classify: true},
		},
		L1MissCycles:   7,
		L2MissTime:     850 * time.Nanosecond,
		ThreadForkTime: 950 * time.Nanosecond,
		ThreadRunTime:  140 * time.Nanosecond,
		IssueWidth:     2.5,
		L2MissExposed:  0.34,
	}
}

// Modern returns a three-level model of a circa-2020s server core: 3 GHz,
// 4-wide, 32 KB 8-way L1s, 1 MB 16-way L2 and 32 MB 16-way shared-slice
// L3 — both with next-line prefetch — and an out-of-order window that
// hides most of each miss. It exists to quantify the fate of the paper's
// technique on hardware whose last-level cache exceeds the paper's whole
// problem (see EXPERIMENTS.md): run the same workloads through it with
// `locality-bench -exp modern`.
func Modern() Machine {
	return Machine{
		Name:    "Modern",
		System:  "generic 3 GHz out-of-order core",
		ClockHz: 3e9,
		Caches: cache.HierarchyConfig{
			L1I: cache.Config{Name: "L1I", Size: 32 << 10, LineSize: 64, Assoc: 8},
			L1D: cache.Config{Name: "L1D", Size: 32 << 10, LineSize: 64, Assoc: 8, Prefetch: true},
			L2:  cache.Config{Name: "L2", Size: 1 << 20, LineSize: 64, Assoc: 16, Prefetch: true, Classify: true},
			L3:  cache.Config{Name: "L3", Size: 32 << 20, LineSize: 64, Assoc: 16, Prefetch: true},
		},
		L1MissCycles:   12,                   // L2 latency
		L2MissTime:     12 * time.Nanosecond, // L3 latency
		L3MissTime:     80 * time.Nanosecond, // DRAM
		ThreadForkTime: 40 * time.Nanosecond,
		ThreadRunTime:  8 * time.Nanosecond,
		IssueWidth:     4,
		L2MissExposed:  0.25, // deep out-of-order window + MLP
	}
}

// Scaled returns a copy of m whose second-level cache capacity is divided
// by factor (a power of two) and whose first-level caches are divided by
// √factor. The split preserves the paper's geometry under workload
// scaling: shrinking an n×n data set by `factor` in bytes shrinks n — and
// with it row/column/vector sizes, which is what the L1 interacts with —
// by only √factor. Line sizes and associativities are unchanged; a scaled
// cache is clamped at 4 lines per way so the model stays a real cache.
func (m Machine) Scaled(factor uint64) Machine {
	if factor <= 1 {
		return m
	}
	if factor&(factor-1) != 0 {
		panic(fmt.Sprintf("machine: scale factor %d is not a power of two", factor))
	}
	l1Factor := uint64(1) << (uint(bits.TrailingZeros64(factor)) / 2)
	scale := func(c cache.Config, f uint64) cache.Config {
		c.Size /= f
		min := c.LineSize * 4
		if c.Assoc > 0 {
			min = c.LineSize * uint64(c.Assoc) * 4
		}
		if c.Size < min {
			c.Size = min
		}
		return c
	}
	m.Name = fmt.Sprintf("%s/%d", m.Name, factor)
	m.Caches.L1I = scale(m.Caches.L1I, l1Factor)
	m.Caches.L1D = scale(m.Caches.L1D, l1Factor)
	m.Caches.L2 = scale(m.Caches.L2, factor)
	return m
}

// CostModel converts a simulated reference stream into execution time.
//
// With Crude set it is exactly the paper's §4 "crude analysis": one cycle
// per instruction, the full 7-cycle L1 penalty, the full measured L2 miss
// penalty. By default it is the calibrated variant — instruction and L1
// cycles divided by the machine's sustained issue width, L2 penalty scaled
// by the exposed fraction — whose parameters are fitted so the model
// reproduces the paper's *measured* Table 2 times from its published miss
// counts (the paper itself observes that the crude analysis overshoots its
// measurements, §4.2).
type CostModel struct {
	Machine Machine
	// Crude selects the paper's uncalibrated analysis.
	Crude bool
}

// Estimate converts instruction count and miss counts into modelled
// execution time.
func (cm CostModel) Estimate(instructions, l1Misses, l2Misses uint64) time.Duration {
	ipc := cm.Machine.IssueWidth
	exposed := cm.Machine.L2MissExposed
	if cm.Crude || ipc == 0 {
		ipc = 1
		exposed = 1
	}
	cycle := float64(time.Second) / cm.Machine.ClockHz
	t := float64(instructions) * cycle / ipc
	t += float64(l1Misses) * cm.Machine.L1MissCycles * cycle / ipc
	t += float64(l2Misses) * float64(cm.Machine.L2MissTime) * exposed
	return time.Duration(t)
}

// EstimateSummary applies Estimate to a hierarchy summary.
func (cm CostModel) EstimateSummary(s cache.Summary) time.Duration {
	return cm.Estimate(s.IFetches, s.L1Misses, s.L2.Misses)
}

// Estimate3 extends Estimate to three-level hierarchies: L2 misses pay
// the (L3-latency) L2MissTime and L3 misses additionally pay L3MissTime,
// both scaled by the exposed fraction.
func (cm CostModel) Estimate3(instructions, l1Misses, l2Misses, l3Misses uint64) time.Duration {
	t := cm.Estimate(instructions, l1Misses, l2Misses)
	exposed := cm.Machine.L2MissExposed
	if cm.Crude || cm.Machine.IssueWidth == 0 {
		exposed = 1
	}
	t += time.Duration(float64(l3Misses) * float64(cm.Machine.L3MissTime) * exposed)
	return t
}

// ThreadOverhead returns the modelled cost of forking and running n null
// threads, per Table 1.
func (cm CostModel) ThreadOverhead(n uint64) time.Duration {
	per := cm.Machine.ThreadForkTime + cm.Machine.ThreadRunTime
	return time.Duration(n) * per
}
