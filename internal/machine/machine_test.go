package machine

import (
	"testing"
	"time"

	"threadsched/internal/cache"
)

func TestR8000Geometry(t *testing.T) {
	m := R8000()
	if m.Caches.L2.Size != 2<<20 || m.Caches.L2.Assoc != 4 || m.Caches.L2.LineSize != 128 {
		t.Errorf("R8000 L2 = %+v", m.Caches.L2)
	}
	if m.Caches.L1D.Size != 16<<10 || m.Caches.L1D.LineSize != 32 {
		t.Errorf("R8000 L1D = %+v", m.Caches.L1D)
	}
	if err := m.Caches.Validate(); err != nil {
		t.Fatalf("R8000 caches invalid: %v", err)
	}
	if m.L2CacheSize() != 2<<20 {
		t.Errorf("L2CacheSize = %d", m.L2CacheSize())
	}
	// 75 MHz → 13.33 ns.
	if ct := m.CycleTime(); ct < 13*time.Nanosecond || ct > 14*time.Nanosecond {
		t.Errorf("cycle time = %v", ct)
	}
}

func TestR10000Geometry(t *testing.T) {
	m := R10000()
	if m.Caches.L2.Size != 1<<20 || m.Caches.L2.Assoc != 2 {
		t.Errorf("R10000 L2 = %+v", m.Caches.L2)
	}
	if m.Caches.L1I.LineSize != 64 || m.Caches.L1D.LineSize != 32 {
		t.Errorf("R10000 L1 lines = %d/%d", m.Caches.L1I.LineSize, m.Caches.L1D.LineSize)
	}
	if err := m.Caches.Validate(); err != nil {
		t.Fatalf("R10000 caches invalid: %v", err)
	}
}

func TestScaledPreservesShape(t *testing.T) {
	m := R8000().Scaled(16)
	if m.Caches.L2.Size != 128<<10 {
		t.Errorf("scaled L2 = %d, want 128K", m.Caches.L2.Size)
	}
	if m.Caches.L2.Assoc != 4 || m.Caches.L2.LineSize != 128 {
		t.Errorf("scaling changed L2 geometry: %+v", m.Caches.L2)
	}
	// L1 scales by √factor: 16 KB / 4 = 4 KB.
	if m.Caches.L1D.Size != 4<<10 {
		t.Errorf("scaled L1D = %d, want 4K", m.Caches.L1D.Size)
	}
	if err := m.Caches.Validate(); err != nil {
		t.Fatalf("scaled caches invalid: %v", err)
	}
	// Penalties and clock are unchanged: time ratios still hold.
	if m.L2MissTime != R8000().L2MissTime || m.ClockHz != R8000().ClockHz {
		t.Error("scaling changed timing parameters")
	}
}

func TestScaledClampsTinyCaches(t *testing.T) {
	m := R8000().Scaled(1 << 12) // absurd factor
	if err := m.Caches.Validate(); err != nil {
		t.Fatalf("extreme scaling produced invalid caches: %v", err)
	}
	// Every cache must still hold at least 4 lines per way.
	for _, c := range []cache.Config{m.Caches.L1I, m.Caches.L1D, m.Caches.L2} {
		ways := uint64(1)
		if c.Assoc > 0 {
			ways = uint64(c.Assoc)
		}
		if c.Lines() < 4*ways {
			t.Errorf("%s clamped too small: %d lines", c.Name, c.Lines())
		}
	}
}

func TestScaledIdentity(t *testing.T) {
	if m := R8000().Scaled(1); m.Name != "R8000" {
		t.Error("Scaled(1) must be the identity")
	}
}

func TestScaledRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two factor")
		}
	}()
	R8000().Scaled(3)
}

func TestCostModelEstimate(t *testing.T) {
	cm := CostModel{Machine: R8000(), Crude: true}
	// 75M instructions at 75MHz = 1s.
	got := cm.Estimate(75_000_000, 0, 0)
	if got < 999*time.Millisecond || got > 1001*time.Millisecond {
		t.Errorf("pure-instruction estimate = %v, want ~1s", got)
	}
	// 1M L2 misses at 1.06µs = 1.06s.
	got = cm.Estimate(0, 0, 1_000_000)
	if got < 1059*time.Millisecond || got > 1061*time.Millisecond {
		t.Errorf("L2-miss estimate = %v, want ~1.06s", got)
	}
	// L1 misses: 7 cycles each.
	got = cm.Estimate(0, 75_000_000/7, 0)
	if got < 999*time.Millisecond || got > 1001*time.Millisecond {
		t.Errorf("L1-miss estimate = %v, want ~1s", got)
	}
}

func TestCostModelEstimateSummary(t *testing.T) {
	cm := CostModel{Machine: R10000(), Crude: true}
	s := cache.Summary{IFetches: 195_000_000, L1Misses: 0}
	got := cm.EstimateSummary(s)
	if got < 999*time.Millisecond || got > 1001*time.Millisecond {
		t.Errorf("summary estimate = %v, want ~1s", got)
	}
}

// The calibrated model must reproduce the paper's measured Table 2 matmul
// times from the paper's own Table 3 miss counts (that is what its
// parameters are fitted to).
func TestCalibratedModelReproducesTable2(t *testing.T) {
	cases := []struct {
		mach             Machine
		instr, l1, l2    uint64
		measured, within float64
	}{
		// R8000, untiled / tiled / threaded (counts in thousands ×1000).
		{R8000(), 5388645e3, 408756e3, 68225e3, 102.98, 0.15},
		{R8000(), 2184458e3, 215652e3, 738e3, 16.61, 0.30},
		{R8000(), 3929858e3, 414741e3, 1872e3, 20.32, 0.30},
		// R10000 reuses the R8000 miss counts (the paper simulated only
		// the R8000); the exposure factor absorbs the difference.
		{R10000(), 5388645e3, 408756e3, 68225e3, 36.63, 0.25},
	}
	for i, c := range cases {
		got := CostModel{Machine: c.mach}.Estimate(c.instr, c.l1, c.l2).Seconds()
		if rel := (got - c.measured) / c.measured; rel > c.within || rel < -c.within {
			t.Errorf("case %d (%s): model %.2fs vs measured %.2fs (%.0f%% off)",
				i, c.mach.Name, got, c.measured, 100*rel)
		}
	}
}

func TestThreadOverheadMatchesTable1(t *testing.T) {
	// Table 1: total overhead 1.60µs (R8000) and 1.09µs (R10000).
	r8 := CostModel{Machine: R8000()}.ThreadOverhead(1)
	if r8 != 1600*time.Nanosecond {
		t.Errorf("R8000 per-thread overhead = %v, want 1.6µs", r8)
	}
	r10 := CostModel{Machine: R10000()}.ThreadOverhead(1)
	if r10 != 1090*time.Nanosecond {
		t.Errorf("R10000 per-thread overhead = %v, want 1.09µs", r10)
	}
	// The paper's claim: one thread costs less than two L2 misses.
	if r8 > 2*R8000().L2MissTime {
		t.Error("R8000 thread overhead exceeds two L2 misses")
	}
}
