package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"threadsched/internal/fault"
)

func mustOpen(t *testing.T, opts Options) (*Journal, Replayed) {
	t.Helper()
	j, rep, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", opts.Dir, err)
	}
	t.Cleanup(func() { j.Close() })
	return j, rep
}

func rec(i int) []byte { return []byte(fmt.Sprintf("record-%04d", i)) }

func appendN(t *testing.T, j *Journal, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func wantRecords(t *testing.T, got [][]byte, from, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("got %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if !bytes.Equal(r, rec(from+i)) {
			t.Fatalf("record %d = %q, want %q", i, r, rec(from+i))
		}
	}
}

// A fresh journal round-trips its records through a reopen, in order.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rep := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways})
	if len(rep.Records()) != 0 || rep.TornTail {
		t.Fatalf("fresh dir replayed %+v", rep)
	}
	appendN(t, j, 0, 25)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep = mustOpen(t, Options{Dir: dir})
	if rep.TornTail || rep.TornSnapshot || rep.StaleTail {
		t.Fatalf("clean reopen flagged damage: %+v", rep)
	}
	wantRecords(t, rep.Records(), 0, 25)
}

// Replay after a torn tail: a file cut mid-frame yields every whole
// record, flags the tear, and leaves the journal appendable — the
// truncated tail must not resurface in later replays.
func TestReplayAfterTornTail(t *testing.T) {
	for _, cut := range []int{1, 5, 11} { // bytes removed from the tail
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			j, _ := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways})
			appendN(t, j, 0, 10)
			j.Close()

			path := filepath.Join(dir, walName)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
				t.Fatal(err)
			}

			j2, rep := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways})
			if !rep.TornTail {
				t.Fatal("torn tail not reported")
			}
			wantRecords(t, rep.Records(), 0, 9)
			// The tail is clean again: appends extend it and replay sees
			// the surviving prefix plus the new records, nothing else.
			appendN(t, j2, 9, 3) // re-append the lost record and two more
			j2.Close()
			_, rep = mustOpen(t, Options{Dir: dir})
			if rep.TornTail {
				t.Fatal("tear reported after truncating repair")
			}
			wantRecords(t, rep.Records(), 0, 12)
		})
	}
}

// A flipped bit mid-file stops replay at the damaged frame (corruption
// tolerance means never replaying garbage, not recovering it).
func TestReplayStopsAtCorruptFrame(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways})
	appendN(t, j, 0, 10)
	j.Close()

	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep := mustOpen(t, Options{Dir: dir})
	if !rep.TornTail {
		t.Fatal("corrupt frame not reported")
	}
	if n := len(rep.Records()); n >= 10 {
		t.Fatalf("replayed %d records through a corrupt frame", n)
	}
	for i, r := range rep.Records() {
		if !bytes.Equal(r, rec(i)) {
			t.Fatalf("surviving record %d = %q, want %q", i, r, rec(i))
		}
	}
}

// Snapshot + tail replay is equivalent to the full record stream: after
// Compact(state), a reopen returns exactly state then the post-compact
// appends.
func TestSnapshotTailEquivalence(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways})
	appendN(t, j, 0, 50)
	// The owner's folded state: say records 10..29 survived folding.
	var state [][]byte
	for i := 10; i < 30; i++ {
		state = append(state, rec(i))
	}
	if err := j.Compact(state); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if got := j.SinceCompact(); got != 0 {
		t.Fatalf("SinceCompact after compact = %d", got)
	}
	appendN(t, j, 30, 5)
	j.Close()

	_, rep := mustOpen(t, Options{Dir: dir})
	if rep.TornTail || rep.TornSnapshot || rep.StaleTail {
		t.Fatalf("damage flagged: %+v", rep)
	}
	wantRecords(t, rep.Snapshot, 10, 20)
	wantRecords(t, rep.Tail, 30, 5)
	wantRecords(t, rep.Records(), 10, 25)
	if rep.Generation != 1 {
		t.Fatalf("generation = %d, want 1", rep.Generation)
	}
}

// A stale live log — the footprint of a crash between a compaction's
// snapshot rename and its log truncation — is discarded, not replayed on
// top of the snapshot that already contains its records.
func TestStaleTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways})
	appendN(t, j, 0, 10)
	if err := j.Compact([][]byte{rec(100)}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Reconstruct the pre-compaction log: generation 0 with old records.
	buf := header(0)
	for i := 0; i < 10; i++ {
		buf = appendFrame(buf, rec(i))
	}
	if err := os.WriteFile(filepath.Join(dir, walName), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, rep := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways})
	if !rep.StaleTail {
		t.Fatal("stale tail not reported")
	}
	if len(rep.Tail) != 0 {
		t.Fatalf("stale tail replayed %d records", len(rep.Tail))
	}
	wantRecords(t, rep.Snapshot, 100, 1)
	// The recreated log carries the snapshot's generation: post-recovery
	// appends replay normally.
	appendN(t, j2, 200, 1)
	j2.Close()
	_, rep = mustOpen(t, Options{Dir: dir})
	if rep.StaleTail || len(rep.Tail) != 1 || !bytes.Equal(rep.Tail[0], rec(200)) {
		t.Fatalf("post-recovery replay: %+v", rep)
	}
}

// An interrupted compaction's snapshot.tmp is discarded on open and
// never treated as state.
func TestSnapshotTmpDiscarded(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways})
	appendN(t, j, 0, 3)
	j.Close()
	if err := os.WriteFile(filepath.Join(dir, snapshotTmp), []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep := mustOpen(t, Options{Dir: dir})
	wantRecords(t, rep.Records(), 0, 3)
	if _, err := os.Stat(filepath.Join(dir, snapshotTmp)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("snapshot.tmp survived open")
	}
}

// Concurrent appends during compaction, under the owner-lock protocol
// (state built and Compact called under the same lock that serializes
// appends): every acknowledged record is in exactly one of snapshot or
// tail after replay.
func TestConcurrentAppendDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, Fsync: FsyncInterval, Interval: time.Millisecond})

	var (
		ownerMu sync.Mutex // the owner's serialization, as in internal/server
		state   [][]byte
		wg      sync.WaitGroup
	)
	const writers, perWriter = 4, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ownerMu.Lock()
				r := []byte(fmt.Sprintf("w%d-%04d", w, i))
				if err := j.Append(r); err != nil {
					ownerMu.Unlock()
					t.Errorf("append: %v", err)
					return
				}
				state = append(state, r)
				ownerMu.Unlock()
			}
		}(w)
	}
	compacted := 0
	for i := 0; i < 10; i++ {
		time.Sleep(2 * time.Millisecond)
		ownerMu.Lock()
		snap := make([][]byte, len(state))
		copy(snap, state)
		if err := j.Compact(snap); err != nil {
			t.Errorf("compact: %v", err)
		} else {
			compacted++
		}
		ownerMu.Unlock()
	}
	wg.Wait()
	if compacted == 0 {
		t.Fatal("no compaction ran")
	}
	j.Close()

	_, rep := mustOpen(t, Options{Dir: dir})
	if rep.TornTail || rep.TornSnapshot || rep.StaleTail {
		t.Fatalf("damage flagged: %+v", rep)
	}
	got := rep.Records()
	if len(got) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(got), writers*perWriter)
	}
	ownerMu.Lock()
	defer ownerMu.Unlock()
	for i, r := range got {
		if !bytes.Equal(r, state[i]) {
			t.Fatalf("record %d = %q, want %q", i, r, state[i])
		}
	}
}

// Seeded fault crash matrix: a torn write at the first, a middle, and
// the last record. Records before the tear survive replay; the journal
// is poisoned after the tear and writable again after reopen.
func TestFaultCrashMatrix(t *testing.T) {
	const n = 20
	for _, at := range []uint64{0, n / 2, n - 1} {
		t.Run(fmt.Sprintf("torn-at-%d", at), func(t *testing.T) {
			dir := t.TempDir()
			inj := fault.New(fault.Config{
				Seed: 42,
				At:   map[fault.Site][]uint64{fault.JournalTornWrite: {at}},
			})
			j, _ := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, Inject: inj})
			var tornAt = -1
			for i := 0; i < n; i++ {
				err := j.Append(rec(i))
				switch {
				case uint64(i) == at:
					if !errors.Is(err, ErrBroken) {
						t.Fatalf("append %d: err = %v, want ErrBroken", i, err)
					}
					tornAt = i
				case tornAt >= 0:
					if !errors.Is(err, ErrBroken) {
						t.Fatalf("append %d after tear: err = %v, want ErrBroken", i, err)
					}
				default:
					if err != nil {
						t.Fatalf("append %d: %v", i, err)
					}
				}
			}
			if !j.Broken() {
				t.Fatal("journal not marked broken")
			}
			if err := j.Compact(nil); !errors.Is(err, ErrBroken) {
				t.Fatalf("compact on broken journal: %v", err)
			}
			j.Close()

			j2, rep := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways})
			if !rep.TornTail {
				t.Fatal("torn tail not reported on reopen")
			}
			wantRecords(t, rep.Records(), 0, int(at))
			appendN(t, j2, int(at), 1)
			j2.Close()
			_, rep = mustOpen(t, Options{Dir: dir})
			wantRecords(t, rep.Records(), 0, int(at)+1)
		})
	}
}

// An injected disk-full failure fails that append cleanly: nothing is
// written, the journal is not poisoned, and later appends land.
func TestFaultDiskFull(t *testing.T) {
	dir := t.TempDir()
	inj := fault.New(fault.Config{
		Seed: 7,
		At:   map[fault.Site][]uint64{fault.JournalFull: {1}},
	})
	j, _ := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, Inject: inj})
	if err := j.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(99)); err == nil {
		t.Fatal("disk-full append succeeded")
	}
	if j.Broken() {
		t.Fatal("clean append failure poisoned the journal")
	}
	if err := j.Append(rec(1)); err != nil {
		t.Fatalf("append after disk-full: %v", err)
	}
	j.Close()
	_, rep := mustOpen(t, Options{Dir: dir})
	wantRecords(t, rep.Records(), 0, 2)
}

// An injected fsync failure under FsyncAlways surfaces as the append's
// error; the record itself reached the file, so replay may include it —
// the promise broken is durability, not framing.
func TestFaultFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	inj := fault.New(fault.Config{
		Seed: 7,
		At:   map[fault.Site][]uint64{fault.JournalFsync: {1}},
	})
	j, _ := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, Inject: inj})
	if err := j.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(1)); err == nil {
		t.Fatal("fsync failure not surfaced")
	}
	if j.Broken() {
		t.Fatal("fsync failure poisoned the journal (frame is whole)")
	}
	st := j.Stats()
	if st.AppendFails != 1 {
		t.Fatalf("AppendFails = %d, want 1", st.AppendFails)
	}
	j.Close()
	_, rep := mustOpen(t, Options{Dir: dir})
	if rep.TornTail {
		t.Fatal("whole frames flagged as torn")
	}
	wantRecords(t, rep.Records(), 0, 2)
}

// Oversized and empty payloads are rejected before touching the disk.
func TestPayloadBounds(t *testing.T) {
	j, _ := mustOpen(t, Options{Dir: t.TempDir()})
	if err := j.Append(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if err := j.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if st := j.Stats(); st.Appends != 0 {
		t.Fatalf("rejected payloads counted: %+v", st)
	}
}

// Close is idempotent and the interval flusher shuts down cleanly.
func TestCloseIdempotent(t *testing.T) {
	j, _ := mustOpen(t, Options{Dir: t.TempDir(), Fsync: FsyncInterval, Interval: time.Millisecond})
	appendN(t, j, 0, 3)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := j.Append(rec(9)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
}
