// Package journal is a durable write-ahead log for serving state: an
// append-only file of CRC32-framed, length-prefixed records with a
// configurable fsync policy, periodic snapshot compaction, and a
// corruption-tolerant replayer.
//
// The format copies the discipline of trace format v2 (internal/trace):
// every record is self-checking, and a file cut off mid-write — the
// normal result of kill -9 — is detected and tolerated. Replay stops
// cleanly at the first torn or corrupt frame and reports how much it
// recovered, instead of refusing to start; the daemon that owns the
// journal decides what the surviving records mean.
//
// On-disk layout inside the journal directory:
//
//	snapshot.j   the last compaction's full-state snapshot (optional)
//	wal.j        records appended since that snapshot
//	snapshot.tmp in-flight compaction output (ignored and removed on open)
//
// Both files share one format:
//
//	header:  "TSJL" version uvarint generation
//	record:  uvarint payloadLen (>0) | payload | crc32
//
// Each CRC32 (IEEE, little-endian) covers the record's length varint and
// payload, so a flipped bit anywhere in a frame fails its checksum and a
// tail cut anywhere inside a frame is detected as torn. The generation
// counter makes compaction crash-safe: Compact writes the new snapshot
// (write-to-temp, fsync, rename) before truncating the live log, both at
// generation g+1, so a crash between the two steps leaves a stale wal
// whose generation no longer matches — replay discards it rather than
// re-applying records the snapshot already contains.
//
// Payloads are opaque bytes: the journal guarantees durability and
// framing, the owner defines record semantics.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"threadsched/internal/fault"
)

// Format constants.
const (
	// Magic identifies a journal file.
	Magic = "TSJL"
	// FormatVersion is the journal format this package reads and writes.
	FormatVersion = 1
	// MaxRecord bounds one record's payload; a corrupted length varint
	// must not be trusted with an arbitrary allocation.
	MaxRecord = 1 << 22
)

// File names inside the journal directory.
const (
	walName      = "wal.j"
	snapshotName = "snapshot.j"
	snapshotTmp  = "snapshot.tmp"
)

// Fsync policies. The trade-off is the usual one: FsyncAlways bounds
// loss to zero completed appends at one fsync per append; FsyncInterval
// bounds loss to one interval; FsyncNone leaves flushing to the OS.
const (
	FsyncAlways   = "always"
	FsyncInterval = "interval"
	FsyncNone     = "none"
)

var (
	// ErrBroken reports an append to a journal whose tail is no longer
	// trustworthy (a previous append tore mid-frame). The journal stays
	// open for reads/stats but refuses further writes; the owner should
	// degrade to read-only serving.
	ErrBroken = errors.New("journal: broken by torn write")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("journal: closed")
	// errFull is what an injected disk-full append failure returns.
	errFull = errors.New("journal: injected disk full")
)

// Options parameterizes Open.
type Options struct {
	// Dir is the journal directory; created if missing.
	Dir string
	// Fsync is FsyncAlways, FsyncInterval, or FsyncNone ("" = interval).
	Fsync string
	// Interval is the FsyncInterval flush period (default 100ms).
	Interval time.Duration
	// CompactEvery is advisory: SinceCompact lets the owner poll it, but
	// the journal never compacts on its own (only the owner can render
	// the full state a snapshot needs). Default 4096.
	CompactEvery int
	// OnFsync, when non-nil, observes every fsync of the live log with
	// its duration and outcome — the hook the server uses to feed its
	// journal.fsync_ns histogram without this package importing obs.
	OnFsync func(d time.Duration, err error)
	// Inject enables the deterministic crash sites in the write path
	// (fault.JournalTornWrite, fault.JournalFsync, fault.JournalFull).
	Inject *fault.Injector
}

// Replayed is what Open recovered from the directory.
type Replayed struct {
	// Snapshot and Tail are the decoded record payloads, in append
	// order: the snapshot's full-state records first, then the live
	// log's records since that snapshot. Records() concatenates them.
	Snapshot [][]byte
	Tail     [][]byte
	// TornSnapshot and TornTail report that the corresponding file ended
	// in a torn or corrupt frame; the decoded prefix is still returned.
	TornSnapshot bool
	TornTail     bool
	// StaleTail reports a live log discarded wholesale because its
	// generation predates the snapshot — the footprint of a crash
	// between a compaction's snapshot rename and its log truncation.
	StaleTail bool
	// Generation is the recovered compaction generation.
	Generation uint64
}

// Records returns snapshot + tail in replay order.
func (r Replayed) Records() [][]byte {
	out := make([][]byte, 0, len(r.Snapshot)+len(r.Tail))
	out = append(out, r.Snapshot...)
	return append(out, r.Tail...)
}

// Stats is a point-in-time view of the journal's write-side counters.
type Stats struct {
	Appends     uint64 // records successfully appended since Open
	AppendFails uint64 // appends that returned an error
	Fsyncs      uint64 // fsyncs of the live log
	Compactions uint64 // successful Compact calls
	WalBytes    int64  // current live-log size
}

// Journal is an open write-ahead log. Methods are safe for concurrent
// use; appends are serialized internally.
type Journal struct {
	opts Options

	mu     sync.Mutex
	f      *os.File
	off    int64 // current wal size (append offset)
	gen    uint64
	seq    uint64 // append occurrence counter (fault-site index)
	fseq   uint64 // fsync occurrence counter
	since  int    // appends since the last compaction
	stats  Stats
	dirty  bool // unsynced bytes outstanding
	broken bool
	closed bool

	tick *time.Ticker
	stop chan struct{}
	done chan struct{}
}

// Open creates or recovers the journal in opts.Dir, replaying whatever
// the directory holds. A torn tail is not an error: the decoded prefix
// comes back in Replayed and the file is truncated back to its last
// whole record so new appends extend a clean tail.
func Open(opts Options) (*Journal, Replayed, error) {
	if opts.Fsync == "" {
		opts.Fsync = FsyncInterval
	}
	switch opts.Fsync {
	case FsyncAlways, FsyncInterval, FsyncNone:
	default:
		return nil, Replayed{}, fmt.Errorf("journal: unknown fsync policy %q", opts.Fsync)
	}
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	if opts.CompactEvery <= 0 {
		opts.CompactEvery = 4096
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, Replayed{}, err
	}
	// A snapshot.tmp is an interrupted compaction that never reached its
	// rename: never valid state, always discarded.
	_ = os.Remove(filepath.Join(opts.Dir, snapshotTmp))

	var rep Replayed
	snapGen, snapRecs, snapTorn, snapOff, err := readFile(filepath.Join(opts.Dir, snapshotName))
	if err != nil {
		return nil, Replayed{}, err
	}
	snapExists := snapOff >= 0
	rep.Snapshot, rep.TornSnapshot = snapRecs, snapTorn
	rep.Generation = snapGen

	walPath := filepath.Join(opts.Dir, walName)
	walGen, walRecs, walTorn, goodOff, err := readFile(walPath)
	if err != nil {
		return nil, Replayed{}, err
	}
	if !snapExists && goodOff >= 0 {
		// No snapshot to anchor a generation check (none was ever
		// written, or it was removed externally): adopt the log's own
		// generation and replay it whole.
		snapGen = walGen
		rep.Generation = walGen
	}
	j := &Journal{opts: opts, gen: snapGen}
	switch {
	case goodOff < 0:
		// No live log (or an unreadable header): start one fresh at the
		// snapshot's generation.
		if walTorn {
			rep.TornTail = true
		}
		if err := j.createWal(walPath); err != nil {
			return nil, Replayed{}, err
		}
	case walGen != snapGen:
		// Stale log from a compaction interrupted between snapshot rename
		// and log truncation: the snapshot already contains these records.
		rep.StaleTail = true
		if err := j.createWal(walPath); err != nil {
			return nil, Replayed{}, err
		}
	default:
		rep.Tail, rep.TornTail = walRecs, walTorn
		if walTorn {
			// Cut the torn frame off so appends extend a clean tail.
			if err := os.Truncate(walPath, goodOff); err != nil {
				return nil, Replayed{}, err
			}
		}
		f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, Replayed{}, err
		}
		j.f, j.off = f, goodOff
	}
	j.stats.WalBytes = j.off
	if opts.Fsync == FsyncInterval {
		j.tick = time.NewTicker(opts.Interval)
		j.stop = make(chan struct{})
		j.done = make(chan struct{})
		go j.flusher()
	}
	return j, rep, nil
}

// createWal starts an empty live log at the journal's current
// generation, replacing whatever was at path.
func (j *Journal) createWal(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	hdr := header(j.gen)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	j.f, j.off = f, int64(len(hdr))
	return syncDir(j.opts.Dir)
}

// flusher is the FsyncInterval background goroutine.
func (j *Journal) flusher() {
	defer close(j.done)
	for {
		select {
		case <-j.tick.C:
			_ = j.Sync()
		case <-j.stop:
			return
		}
	}
}

// Append frames payload and writes it to the live log, fsyncing per the
// journal's policy. An error means the record is not durably promised:
// a torn write additionally poisons the journal (ErrBroken thereafter),
// because the on-disk tail now ends mid-frame.
func (j *Journal) Append(payload []byte) error {
	if len(payload) == 0 || len(payload) > MaxRecord {
		return fmt.Errorf("journal: record payload size %d out of range (0, %d]", len(payload), MaxRecord)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.broken {
		return ErrBroken
	}
	n := j.seq
	j.seq++
	if j.opts.Inject.Fires(fault.JournalFull, n) {
		j.stats.AppendFails++
		return errFull
	}
	frame := appendFrame(nil, payload)
	if cut, ok := j.opts.Inject.TruncateAt(fault.JournalTornWrite, n, frame, 0); ok {
		// Crash mid-write: a prefix of the frame reaches the disk, the
		// rest never will. The tail is now torn; poison the journal.
		if _, err := j.f.Write(frame[:cut]); err == nil {
			j.off += int64(cut)
			j.stats.WalBytes = j.off
		}
		j.broken = true
		j.stats.AppendFails++
		return fmt.Errorf("%w (injected at append %d)", ErrBroken, n)
	}
	if _, err := j.f.Write(frame); err != nil {
		// A short write leaves an undiagnosable tail; poison.
		j.broken = true
		j.stats.AppendFails++
		return err
	}
	j.off += int64(len(frame))
	j.stats.WalBytes = j.off
	j.dirty = true
	j.stats.Appends++
	j.since++
	if j.opts.Fsync == FsyncAlways {
		if err := j.syncLocked(); err != nil {
			j.stats.AppendFails++
			return err
		}
	}
	return nil
}

// Sync flushes the live log to stable storage (a no-op when nothing is
// dirty).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.f == nil || !j.dirty {
		return nil
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	n := j.fseq
	j.fseq++
	start := time.Now()
	var err error
	if j.opts.Inject.Fires(fault.JournalFsync, n) {
		err = fmt.Errorf("journal: injected fsync failure (fsync %d)", n)
	} else {
		err = j.f.Sync()
	}
	j.stats.Fsyncs++
	if err == nil {
		j.dirty = false
	}
	if j.opts.OnFsync != nil {
		j.opts.OnFsync(time.Since(start), err)
	}
	return err
}

// Compact atomically replaces the snapshot with state (the owner's full
// current state, one record per entry) and truncates the live log, both
// at a new generation. On return every record in state is durable and
// the live log is empty; on error the previous snapshot + log remain
// valid (the failed snapshot.tmp is discarded on next Open).
func (j *Journal) Compact(state [][]byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.broken {
		return ErrBroken
	}
	gen := j.gen + 1
	tmp := filepath.Join(j.opts.Dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	buf := header(gen)
	for _, rec := range state {
		if len(rec) == 0 || len(rec) > MaxRecord {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("journal: snapshot record size %d out of range (0, %d]", len(rec), MaxRecord)
		}
		buf = appendFrame(buf, rec)
	}
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(j.opts.Dir, snapshotName)); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(j.opts.Dir); err != nil {
		return err
	}
	// The snapshot is durable at gen; recreate the live log at gen. A
	// crash before the recreate completes leaves a stale-generation log
	// that replay discards.
	old := j.f
	j.gen = gen
	if err := j.createWal(filepath.Join(j.opts.Dir, walName)); err != nil {
		j.broken = true // snapshot advanced but the log did not: stop writes
		return err
	}
	if old != nil {
		old.Close()
	}
	j.since = 0
	j.dirty = false
	j.stats.Compactions++
	j.stats.WalBytes = j.off
	return nil
}

// SinceCompact returns the number of records appended since the last
// compaction (or since Open), for the owner's compaction trigger.
func (j *Journal) SinceCompact() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.since
}

// CompactEvery echoes the advisory threshold from Options.
func (j *Journal) CompactEvery() int { return j.opts.CompactEvery }

// Broken reports whether the journal has refused writes since a torn
// append.
func (j *Journal) Broken() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.broken
}

// Generation returns the current compaction generation.
func (j *Journal) Generation() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.gen
}

// Stats returns the write-side counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Close flushes and closes the journal. Safe to call twice.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	var err error
	if j.f != nil {
		if j.dirty && !j.broken {
			err = j.f.Sync()
		}
		if cerr := j.f.Close(); err == nil {
			err = cerr
		}
	}
	tick, stop, done := j.tick, j.stop, j.done
	j.mu.Unlock()
	if tick != nil {
		tick.Stop()
		close(stop)
		<-done
	}
	return err
}

// header renders the file header for a generation.
func header(gen uint64) []byte {
	b := make([]byte, 0, len(Magic)+1+binary.MaxVarintLen64)
	b = append(b, Magic...)
	b = append(b, FormatVersion)
	return binary.AppendUvarint(b, gen)
}

// appendFrame appends one framed record (length varint | payload | crc32
// over both) to buf.
func appendFrame(buf, payload []byte) []byte {
	start := len(buf)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[start:])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// readFile decodes one journal file. Returns goodOff = -1 when the file
// is absent or its header is unusable (the caller recreates it); torn
// reports a file that ended inside a frame or whose last frame failed
// its checksum — the decoded prefix is still returned, and goodOff is
// the offset just past the last whole record.
func readFile(path string) (gen uint64, recs [][]byte, torn bool, goodOff int64, err error) {
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		if errors.Is(rerr, os.ErrNotExist) {
			return 0, nil, false, -1, nil
		}
		return 0, nil, false, -1, rerr
	}
	hdrLen := len(Magic) + 1
	if len(data) < hdrLen || string(data[:len(Magic)]) != Magic || data[len(Magic)] != FormatVersion {
		// Unreadable header: a crash during file creation (or something
		// that is not a journal). Nothing recoverable.
		return 0, nil, true, -1, nil
	}
	g, n := canonUvarint(data[hdrLen:])
	if n <= 0 {
		return 0, nil, true, -1, nil
	}
	off := hdrLen + n
	gen = g
	for off < len(data) {
		l, n := canonUvarint(data[off:])
		if n <= 0 || l == 0 || l > MaxRecord {
			return gen, recs, true, int64(off), nil
		}
		end := off + n + int(l)
		if end+4 > len(data) {
			return gen, recs, true, int64(off), nil
		}
		want := binary.LittleEndian.Uint32(data[end : end+4])
		if crc32.ChecksumIEEE(data[off:end]) != want {
			return gen, recs, true, int64(off), nil
		}
		rec := make([]byte, l)
		copy(rec, data[off+n:end])
		recs = append(recs, rec)
		off = end + 4
	}
	return gen, recs, false, int64(off), nil
}

// canonUvarint decodes a minimally-encoded uvarint, returning n <= 0
// for truncated, overlong, and zero-padded encodings alike. The
// journal's writer only emits minimal varints, so a non-minimal one is
// damage — and rejecting it keeps replay's invariant that every
// accepted record re-frames to the exact bytes on disk.
func canonUvarint(b []byte) (uint64, int) {
	v, n := binary.Uvarint(b)
	if n > 0 && n != len(binary.AppendUvarint(nil, v)) {
		return 0, -n
	}
	return v, n
}

// syncDir fsyncs a directory so renames and creates within it are
// durable (best-effort on platforms where directories reject fsync).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}
