package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes to the replayer as a live-log
// file. Replay must never panic, must never fabricate records (every
// returned record round-trips through the frame encoder to a prefix of
// the input), and a journal opened over the debris must stay usable:
// one append, one reopen, and the appended record is the replay's tail.
func FuzzJournalReplay(f *testing.F) {
	// Seeds: empty, header-only, one whole record, a torn record, a
	// flipped bit, record-then-garbage, and a wrong-generation file.
	f.Add([]byte{})
	f.Add(header(0))
	f.Add(appendFrame(header(0), []byte("hello")))
	whole := appendFrame(header(3), []byte("first"))
	f.Add(appendFrame(whole, []byte("second"))[:len(whole)+3])
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)-2] ^= 0x10
	f.Add(flipped)
	f.Add(append(appendFrame(header(1), []byte("ok")), 0xff, 0x00, 0x7f))
	f.Add([]byte("GTRC\x02not a journal"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, walName)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		gen, recs, torn, goodOff, err := readFile(path)
		if err != nil {
			t.Fatalf("readFile on fuzz input: %v", err)
		}
		// Accepted records must be reconstructible: re-framing them in
		// order reproduces the file prefix up to goodOff.
		if goodOff >= 0 && !torn {
			buf := header(gen)
			for _, r := range recs {
				buf = appendFrame(buf, r)
			}
			if int64(len(buf)) != goodOff || !bytes.Equal(buf, data[:goodOff]) {
				t.Fatalf("accepted records do not round-trip: %d records, goodOff %d", len(recs), goodOff)
			}
		}

		j, rep, err := Open(Options{Dir: dir, Fsync: FsyncNone})
		if err != nil {
			t.Fatalf("Open over fuzz debris: %v", err)
		}
		if len(rep.Tail) != len(recs) {
			t.Fatalf("Open replayed %d records, readFile %d", len(rep.Tail), len(recs))
		}
		if err := j.Append([]byte("post-debris")); err != nil {
			t.Fatalf("append after fuzz debris: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		j2, rep2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer j2.Close()
		if rep2.TornTail {
			t.Fatal("tear reported after truncating repair")
		}
		if n := len(rep2.Tail); n != len(recs)+1 {
			t.Fatalf("reopen replayed %d records, want %d", n, len(recs)+1)
		}
		if got := rep2.Tail[len(rep2.Tail)-1]; string(got) != "post-debris" {
			t.Fatalf("appended record came back as %q", got)
		}
	})
}
