// Package stackdist implements Mattson's stack-distance analysis: a
// single pass over a reference stream yields the LRU miss count of a
// fully-associative cache of *every* capacity at once. This is the
// classical companion to trace-driven simulation (Mattson et al. 1970;
// the same inclusion property our cache package's classification relies
// on), and the analytical tool behind questions like the paper's §4.5 —
// how large a scheduling block's working set may grow before a given
// cache stops absorbing it.
//
// The implementation keeps each line's last-use position and a Fenwick
// tree over active positions, giving O(log n) per reference with periodic
// position compaction.
package stackdist

import (
	"math/bits"
	"sort"

	"threadsched/internal/trace"
)

// Analyzer accumulates a stack-distance histogram over a line-granular
// reference stream.
type Analyzer struct {
	lineShift uint

	last map[uint64]int32 // line -> active position (1-based)
	bit  []int32          // Fenwick tree over positions
	pos  int32            // highest assigned position
	used int32            // active positions (== len(last))

	// hist[d] counts re-references with stack distance d+1 (1-based
	// distance); cold counts first touches.
	hist []uint64
	cold uint64
	refs uint64
}

// New returns an analyzer at the given line size (power of two).
func New(lineSize uint64) *Analyzer {
	shift := uint(bits.TrailingZeros64(lineSize))
	if lineSize == 0 || lineSize&(lineSize-1) != 0 {
		panic("stackdist: line size must be a power of two")
	}
	return &Analyzer{
		lineShift: shift,
		last:      make(map[uint64]int32),
		bit:       make([]int32, 1024),
	}
}

// Record implements trace.Recorder: every reference is a line touch.
func (a *Analyzer) Record(r trace.Ref) { a.Touch(r.Addr) }

var _ trace.Recorder = (*Analyzer)(nil)

// Touch processes one reference to the line containing addr.
func (a *Analyzer) Touch(addr uint64) {
	a.refs++
	ln := addr >> a.lineShift
	if p, ok := a.last[ln]; ok {
		// Stack distance = lines touched more recently than p, plus the
		// line itself.
		d := a.countGreater(p) + 1
		for int(d) > len(a.hist) {
			a.hist = append(a.hist, 0)
		}
		a.hist[d-1]++
		a.remove(p)
		delete(a.last, ln)
		a.used--
	} else {
		a.cold++
	}
	if int(a.pos)+1 >= len(a.bit)-1 {
		a.compact() // resets a.pos to the live count
	}
	a.pos++
	a.add(a.pos)
	a.last[ln] = a.pos
	a.used++
}

// compact renumbers active positions 1..used preserving order, doubling
// the tree if the live set alone is crowding it.
func (a *Analyzer) compact() {
	type lp struct {
		line uint64
		pos  int32
	}
	live := make([]lp, 0, len(a.last))
	for ln, p := range a.last {
		live = append(live, lp{ln, p})
	}
	sort.Slice(live, func(i, j int) bool { return live[i].pos < live[j].pos })
	size := len(a.bit)
	for len(live)*2 >= size-2 {
		size *= 2
	}
	a.bit = make([]int32, size)
	a.pos = 0
	for _, e := range live {
		a.pos++
		a.add(a.pos)
		a.last[e.line] = a.pos
	}
}

func (a *Analyzer) add(p int32) {
	for i := int(p); i < len(a.bit); i += i & (-i) {
		a.bit[i]++
	}
}

func (a *Analyzer) remove(p int32) {
	for i := int(p); i < len(a.bit); i += i & (-i) {
		a.bit[i]--
	}
}

// countGreater returns the number of active positions strictly above p.
func (a *Analyzer) countGreater(p int32) int32 {
	// total active - prefix(p)
	var prefix int32
	for i := int(p); i > 0; i -= i & (-i) {
		prefix += a.bit[i]
	}
	return a.used - prefix
}

// Refs returns the number of references processed.
func (a *Analyzer) Refs() uint64 { return a.refs }

// Distinct returns the number of distinct lines seen (= cold misses).
func (a *Analyzer) Distinct() uint64 { return a.cold }

// Misses returns the miss count of a fully-associative LRU cache holding
// `lines` lines: cold misses plus re-references at distance > lines.
func (a *Analyzer) Misses(lines int) uint64 {
	m := a.cold
	for d := lines; d < len(a.hist); d++ {
		m += a.hist[d]
	}
	return m
}

// MissRatio returns Misses(lines)/Refs, or 0 for an empty stream.
func (a *Analyzer) MissRatio(lines int) float64 {
	if a.refs == 0 {
		return 0
	}
	return float64(a.Misses(lines)) / float64(a.refs)
}

// Histogram returns a copy of the distance histogram (index d = distance
// d+1) and the cold-miss count.
func (a *Analyzer) Histogram() (hist []uint64, cold uint64) {
	return append([]uint64(nil), a.hist...), a.cold
}

// CurvePoint is one point of a miss-ratio curve.
type CurvePoint struct {
	// CacheBytes is the fully-associative capacity.
	CacheBytes uint64
	// Misses and Ratio are the projected miss count and miss ratio.
	Misses uint64
	Ratio  float64
}

// Curve evaluates the miss-ratio curve at power-of-two capacities from
// one line up to the stream's footprint (inclusive of the first size that
// holds everything).
func (a *Analyzer) Curve() []CurvePoint {
	lineSize := uint64(1) << a.lineShift
	var out []CurvePoint
	for lines := 1; ; lines *= 2 {
		out = append(out, CurvePoint{
			CacheBytes: uint64(lines) * lineSize,
			Misses:     a.Misses(lines),
			Ratio:      a.MissRatio(lines),
		})
		if uint64(lines) >= a.cold {
			break
		}
	}
	return out
}
