package stackdist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"threadsched/internal/cache"
	"threadsched/internal/trace"
)

func TestSequentialStreamAllCold(t *testing.T) {
	a := New(32)
	for i := 0; i < 100; i++ {
		a.Touch(uint64(i) * 32)
	}
	if a.Distinct() != 100 || a.Refs() != 100 {
		t.Fatalf("distinct %d refs %d", a.Distinct(), a.Refs())
	}
	// Every size misses everything: the stream never re-references.
	if a.Misses(1) != 100 || a.Misses(1000) != 100 {
		t.Fatalf("misses = %d/%d", a.Misses(1), a.Misses(1000))
	}
}

func TestRepeatedLineDistanceOne(t *testing.T) {
	a := New(32)
	for i := 0; i < 10; i++ {
		a.Touch(0)
	}
	if a.Distinct() != 1 {
		t.Fatalf("distinct = %d", a.Distinct())
	}
	// One cold miss; a single-line cache catches all re-references.
	if a.Misses(1) != 1 {
		t.Fatalf("Misses(1) = %d, want 1", a.Misses(1))
	}
}

func TestCyclicStreamKneeAtWorkingSet(t *testing.T) {
	// Cycling over k lines: caches with ≥ k lines hit everything after
	// warmup; caches with < k lines miss everything (LRU worst case).
	const k = 16
	a := New(32)
	for round := 0; round < 10; round++ {
		for ln := uint64(0); ln < k; ln++ {
			a.Touch(ln * 32)
		}
	}
	if got := a.Misses(k); got != k {
		t.Fatalf("Misses(%d) = %d, want %d (cold only)", k, got, k)
	}
	if got := a.Misses(k - 1); got != a.Refs() {
		t.Fatalf("Misses(%d) = %d, want all %d", k-1, got, a.Refs())
	}
}

func TestSameLineSubAddresses(t *testing.T) {
	a := New(64)
	a.Touch(0)
	a.Touch(63) // same 64-byte line
	a.Touch(64) // next line
	if a.Distinct() != 2 {
		t.Fatalf("distinct = %d, want 2", a.Distinct())
	}
	if a.Misses(4) != 2 {
		t.Fatalf("misses = %d, want 2", a.Misses(4))
	}
}

func TestMissesMonotone(t *testing.T) {
	a := New(32)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		a.Touch(uint64(rng.Intn(200)) * 32)
	}
	for lines := 2; lines < 300; lines++ {
		if a.Misses(lines) > a.Misses(lines-1) {
			t.Fatalf("misses not monotone at %d lines", lines)
		}
	}
	if a.Misses(300) != a.Distinct() {
		t.Fatalf("full-footprint cache should miss only cold: %d vs %d",
			a.Misses(300), a.Distinct())
	}
}

func TestCompactionPreservesResults(t *testing.T) {
	// Enough references to force many compactions (initial tree is 1024).
	a := New(32)
	rng := rand.New(rand.NewSource(3))
	ref, _ := cache.New(cache.Config{Size: 32 * 64, LineSize: 32, Assoc: 0})
	for i := 0; i < 50000; i++ {
		addr := uint64(rng.Intn(500)) * 32
		a.Touch(addr)
		ref.Access(addr, false)
	}
	if a.Misses(64) != ref.Stats().Misses {
		t.Fatalf("analyzer %d vs fully-assoc cache %d", a.Misses(64), ref.Stats().Misses)
	}
}

// The defining property: for any stream and any capacity, the projected
// miss count equals an actual fully-associative LRU cache's miss count.
func TestMatchesFullyAssociativeCacheProperty(t *testing.T) {
	f := func(seed int64, linesSel uint8, spread uint8) bool {
		lines := 1 << (linesSel % 7) // power of two: cache.Config requires it
		a := New(32)
		c, err := cache.New(cache.Config{
			Size: uint64(lines) * 32, LineSize: 32, Assoc: 0,
		})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		span := int(spread%100) + 2
		for i := 0; i < 3000; i++ {
			addr := uint64(rng.Intn(span)) * 32
			a.Touch(addr)
			c.Access(addr, false)
		}
		return a.Misses(lines) == c.Stats().Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRecordInterface(t *testing.T) {
	a := New(32)
	var rec trace.Recorder = a
	rec.Record(trace.Ref{Kind: trace.Load, Addr: 100, Size: 8})
	rec.Record(trace.Ref{Kind: trace.Store, Addr: 100, Size: 8})
	if a.Refs() != 2 || a.Distinct() != 1 {
		t.Fatalf("refs %d distinct %d", a.Refs(), a.Distinct())
	}
}

func TestCurveShape(t *testing.T) {
	a := New(32)
	for round := 0; round < 5; round++ {
		for ln := uint64(0); ln < 64; ln++ {
			a.Touch(ln * 32)
		}
	}
	curve := a.Curve()
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	if curve[0].CacheBytes != 32 {
		t.Fatalf("first point at %d bytes", curve[0].CacheBytes)
	}
	last := curve[len(curve)-1]
	if last.CacheBytes < 64*32 {
		t.Fatalf("curve stops at %d bytes, before the %d-byte footprint",
			last.CacheBytes, 64*32)
	}
	if last.Misses != a.Distinct() {
		t.Fatalf("final point misses %d, want cold %d", last.Misses, a.Distinct())
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Misses > curve[i-1].Misses {
			t.Fatal("curve not monotone")
		}
	}
}

func TestHistogramCopy(t *testing.T) {
	a := New(32)
	a.Touch(0)
	a.Touch(0)
	hist, cold := a.Histogram()
	if cold != 1 || len(hist) < 1 || hist[0] != 1 {
		t.Fatalf("hist %v cold %d", hist, cold)
	}
	hist[0] = 99 // mutating the copy must not affect the analyzer
	if a.Misses(1) != 1 {
		t.Fatal("histogram not a copy")
	}
}

func TestNewPanicsOnBadLineSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad line size")
		}
	}()
	New(24)
}
