// Package gpthreads answers the first open question of the paper's §7:
// "it is not clear whether the scheduling algorithm can be efficiently
// implemented with a general-purpose thread package that supports
// synchronization and preemptive scheduling."
//
// Here the general-purpose threads are goroutines — preemptively
// scheduled, synchronization-capable (they may block on channels, mutexes
// or I/O mid-thread, which the run-to-completion core package forbids) —
// and the locality algorithm is layered on top: forked threads are binned
// by address hints exactly as in internal/core, and Run starts the
// goroutines bin by bin, joining each bin before releasing the next so
// the per-bin working set still owns the cache.
//
// The answer the benchmarks give matches the paper's implicit one: it
// works, and it costs one to two orders of magnitude more per thread
// (goroutine creation, channel join, and scheduler handoffs versus ~35 ns
// for the specialized run-to-completion package) — which is precisely why
// the paper built a minimal package instead (§3: "our design for locality
// scheduling keeps the thread package simple, making low-overhead the
// most important goal").
package gpthreads

import (
	"sync"

	"threadsched/internal/core"
)

// Thread is the body type: a general function, free to block.
type Thread func()

// Scheduler bins general-purpose threads by address hints and runs each
// bin as a joined batch of goroutines.
type Scheduler struct {
	blockShift uint
	fold       bool
	// BinParallelism bounds how many goroutines of one bin run at once;
	// 0 means unbounded (the whole bin concurrently).
	BinParallelism int

	bins   map[binKey]*gbin
	ready  []*gbin
	count  int
	config core.Config
}

type binKey [3]uint64

type gbin struct {
	threads []Thread
}

// New returns a Scheduler with the same configuration vocabulary as the
// core package (cache size, block size, folding).
func New(cfg core.Config) *Scheduler {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = core.DefaultCacheSize
	}
	block := cfg.BlockSize
	if block == 0 {
		block = core.DefaultBlockSize(cfg.CacheSize, core.MaxHints)
	}
	shift := uint(0)
	for 1<<(shift+1) <= block {
		shift++
	}
	return &Scheduler{
		blockShift: shift,
		fold:       cfg.FoldSymmetric,
		bins:       make(map[binKey]*gbin),
		config:     cfg,
	}
}

// BlockSize returns the per-dimension block size in effect.
func (s *Scheduler) BlockSize() uint64 { return 1 << s.blockShift }

// Pending returns the number of threads forked but not run.
func (s *Scheduler) Pending() int { return s.count }

// BinsUsed returns the number of bins holding threads.
func (s *Scheduler) BinsUsed() int { return len(s.ready) }

// Fork schedules t under the given address hints.
func (s *Scheduler) Fork(t Thread, h1, h2, h3 uint64) {
	key := binKey{h1 >> s.blockShift, h2 >> s.blockShift, h3 >> s.blockShift}
	if s.fold {
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		if key[1] > key[2] {
			key[1], key[2] = key[2], key[1]
		}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
	}
	b, ok := s.bins[key]
	if !ok {
		b = &gbin{}
		s.bins[key] = b
		s.ready = append(s.ready, b)
	}
	b.threads = append(b.threads, t)
	s.count++
}

// Run starts every bin's threads as goroutines, bin by bin in allocation
// order, joining each bin before the next; threads may synchronize (with
// each other within a bin, or with the outside world) freely. The
// schedule is destroyed afterwards.
func (s *Scheduler) Run() {
	for _, b := range s.ready {
		limit := s.BinParallelism
		var sem chan struct{}
		if limit > 0 {
			sem = make(chan struct{}, limit)
		}
		var wg sync.WaitGroup
		wg.Add(len(b.threads))
		for _, t := range b.threads {
			if sem != nil {
				sem <- struct{}{}
			}
			go func(t Thread) {
				defer wg.Done()
				t()
				if sem != nil {
					<-sem
				}
			}(t)
		}
		wg.Wait()
	}
	s.bins = make(map[binKey]*gbin)
	s.ready = s.ready[:0]
	s.count = 0
}
