package gpthreads

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"threadsched/internal/core"
)

func TestRunsEveryThreadOnce(t *testing.T) {
	s := New(core.Config{CacheSize: 1 << 20, BlockSize: 1 << 14})
	const n = 500
	var counts [n]int32
	for i := 0; i < n; i++ {
		i := i
		s.Fork(func() { atomic.AddInt32(&counts[i], 1) }, uint64(i)<<10, 0, 0)
	}
	if s.Pending() != n {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Run()
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("thread %d ran %d times", i, c)
		}
	}
	if s.Pending() != 0 || s.BinsUsed() != 0 {
		t.Fatal("schedule not destroyed")
	}
}

func TestBinsJoinBeforeNextBin(t *testing.T) {
	// Record which bin each execution belonged to: no bin's thread may
	// start before all of the previous bin's threads finished.
	s := New(core.Config{CacheSize: 1 << 20, BlockSize: 1 << 12})
	var mu sync.Mutex
	var order []int
	const perBin, bins = 8, 4
	for j := 0; j < perBin; j++ {
		for b := 0; b < bins; b++ {
			b := b
			s.Fork(func() {
				mu.Lock()
				order = append(order, b)
				mu.Unlock()
			}, uint64(b)<<12, 0, 0)
		}
	}
	s.Run()
	seen := map[int]bool{}
	last := -1
	for _, b := range order {
		if b != last {
			if seen[b] {
				t.Fatalf("bin %d resumed after another bin ran: %v", b, order)
			}
			seen[b] = true
			last = b
		}
	}
}

func TestThreadsMaySynchronize(t *testing.T) {
	// The point of a general-purpose package: threads in one bin can
	// block on each other mid-execution without deadlocking the run.
	s := New(core.Config{CacheSize: 1 << 20, BlockSize: 1 << 20})
	ch := make(chan int, 1)
	var got int
	s.Fork(func() { ch <- 42 }, 0, 0, 0)
	s.Fork(func() { got = <-ch }, 1, 0, 0)
	s.Run()
	if got != 42 {
		t.Fatalf("synchronized value = %d", got)
	}
}

func TestBinParallelismLimit(t *testing.T) {
	s := New(core.Config{CacheSize: 1 << 20, BlockSize: 1 << 20})
	s.BinParallelism = 1
	var cur, maxCur int32
	for i := 0; i < 50; i++ {
		s.Fork(func() {
			c := atomic.AddInt32(&cur, 1)
			for {
				m := atomic.LoadInt32(&maxCur)
				if c <= m || atomic.CompareAndSwapInt32(&maxCur, m, c) {
					break
				}
			}
			atomic.AddInt32(&cur, -1)
		}, 0, 0, 0)
	}
	s.Run()
	if maxCur != 1 {
		t.Fatalf("max concurrency %d with BinParallelism=1", maxCur)
	}
}

func TestFoldingSharesBins(t *testing.T) {
	s := New(core.Config{CacheSize: 1 << 20, BlockSize: 1 << 12, FoldSymmetric: true})
	s.Fork(func() {}, 1<<12, 5<<12, 0)
	s.Fork(func() {}, 5<<12, 1<<12, 0)
	if s.BinsUsed() != 1 {
		t.Fatalf("bins = %d, want 1", s.BinsUsed())
	}
}

func TestBlockSizeDefaults(t *testing.T) {
	s := New(core.Config{CacheSize: 3 << 20})
	want := core.DefaultBlockSize(3<<20, core.MaxHints)
	if s.BlockSize() != want {
		t.Fatalf("block = %d, want %d", s.BlockSize(), want)
	}
}

// Property: same binning as the core scheduler for identical hints.
func TestBinningMatchesCoreProperty(t *testing.T) {
	f := func(hints [][3]uint64) bool {
		if len(hints) == 0 {
			return true
		}
		gp := New(core.Config{CacheSize: 1 << 22, BlockSize: 1 << 14})
		cs := core.New(core.Config{CacheSize: 1 << 22, BlockSize: 1 << 14})
		for _, h := range hints {
			gp.Fork(func() {}, h[0], h[1], h[2])
			cs.Fork(func(int, int) {}, 0, 0, h[0], h[1], h[2])
		}
		return gp.BinsUsed() == cs.Stats().BinsUsed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
