package harness

import (
	"strings"
	"testing"

	"threadsched/internal/machine"
	"threadsched/internal/tables"
)

// Shape assertions run at the Quick geometry: fast enough for CI, large
// enough that every paper-shape relation must hold.

func TestConfigsAreConsistent(t *testing.T) {
	for _, c := range []Config{Quick(), Scaled(), Full()} {
		if c.Scale == 0 || c.NBodyScale == 0 {
			t.Fatalf("zero scale in %+v", c)
		}
		if err := c.R8000().Caches.Validate(); err != nil {
			t.Fatalf("R8000 scaled caches invalid: %v", err)
		}
		if err := c.R10000().Caches.Validate(); err != nil {
			t.Fatalf("R10000 scaled caches invalid: %v", err)
		}
		// Data:cache ratios must match the paper's within 2x: matmul data
		// is 3n²×8 bytes vs the paper's 24 MB over 2 MB (12x).
		data := float64(3*c.MatmulN*c.MatmulN) * 8
		ratio := data / float64(c.R8000().L2CacheSize())
		if ratio < 6 || ratio > 24 {
			t.Errorf("matmul data:cache ratio %.1f, paper is 12", ratio)
		}
	}
}

func TestMeasureNullThreads(t *testing.T) {
	fork, run := measureNullThreads(1 << 14)
	if fork <= 0 || run <= 0 {
		t.Fatalf("non-positive overheads: fork %v run %v", fork, run)
	}
	if fork > 10_000 || run > 10_000 {
		t.Fatalf("implausible overheads (>10µs): fork %vns run %vns", fork, run)
	}
}

func TestTable1Renders(t *testing.T) {
	cfg := Quick()
	cfg.Table1Threads = 1 << 14
	tb := cfg.Table1()
	out := tb.String()
	for _, want := range []string{"Fork", "Run", "Total", "L2 Miss", "1.38", "0.95"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("cache simulation")
	}
	c := Quick()
	var prog Progress
	tb := c.Table2(prog)
	if len(tb.Rows) != 5 {
		t.Fatalf("Table 2 has %d rows, want 5", len(tb.Rows))
	}
	un := c.RunMatmul(MatmulInterchanged, c.R8000())
	ti := c.RunMatmul(MatmulTiledInterchanged, c.R8000())
	th := c.RunMatmul(MatmulThreaded, c.R8000())
	// Paper shape: tiled < threaded < untiled on the R8000.
	if !(ti.Time < th.Time && th.Time < un.Time) {
		t.Errorf("R8000 ordering wrong: tiled %v, threaded %v, untiled %v",
			ti.Time, th.Time, un.Time)
	}
	// The threaded win must come from L2 misses, mostly capacity.
	if th.Summary.L2.Misses*2 > un.Summary.L2.Misses {
		t.Errorf("threaded L2 misses %d not < half of untiled %d",
			th.Summary.L2.Misses, un.Summary.L2.Misses)
	}
	if th.Sched.Bins == 0 || th.Sched.Threads != c.MatmulN*c.MatmulN {
		t.Errorf("threaded sched stats missing: %+v", th.Sched)
	}
}

func TestTable3CapacityShrink(t *testing.T) {
	if testing.Short() {
		t.Skip("cache simulation")
	}
	c := Quick()
	m := c.R8000()
	un := c.RunMatmul(MatmulInterchanged, m)
	th := c.RunMatmul(MatmulThreaded, m)
	if un.Summary.L2.Capacity == 0 {
		t.Fatal("untiled shows no capacity misses")
	}
	if th.Summary.L2.Capacity*3 > un.Summary.L2.Capacity {
		t.Errorf("capacity shrink too small: %d vs %d",
			th.Summary.L2.Capacity, un.Summary.L2.Capacity)
	}
	// §4.2: threaded reduces both I and D references versus untiled.
	if th.Instructions >= un.Instructions {
		t.Error("threaded instructions not below untiled")
	}
	if th.Summary.DataRefs >= un.Summary.DataRefs {
		t.Error("threaded data refs not below untiled")
	}
}

func TestTable4And5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("cache simulation")
	}
	c := Quick()
	m := c.R8000()
	reg := c.RunPDE(PDERegular, m)
	cc := c.RunPDE(PDECacheConscious, m)
	th := c.RunPDE(PDEThreaded, m)
	// Table 4 R8000 ordering: cache-conscious < threaded < regular.
	if !(cc.Time <= th.Time && th.Time < reg.Time) {
		t.Errorf("PDE ordering wrong: cc %v, threaded %v, regular %v",
			cc.Time, th.Time, reg.Time)
	}
	// Table 5: CC avoids ~60% of capacity misses, threaded ~50%.
	if cc.Summary.L2.Capacity*2 > reg.Summary.L2.Capacity {
		t.Errorf("CC capacity %d not < half of regular %d",
			cc.Summary.L2.Capacity, reg.Summary.L2.Capacity)
	}
	if th.Summary.L2.Capacity*3 > reg.Summary.L2.Capacity*2 {
		t.Errorf("threaded capacity %d not < 2/3 of regular %d",
			th.Summary.L2.Capacity, reg.Summary.L2.Capacity)
	}
}

func TestTable6And7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("cache simulation")
	}
	c := Quick()
	m := c.R8000()
	un := c.RunSOR(SORUntiled, m)
	ti := c.RunSOR(SORHandTiled, m)
	th := c.RunSOR(SORThreaded, m)
	if !(th.Time < un.Time && ti.Time < un.Time) {
		t.Errorf("SOR ordering wrong: untiled %v, tiled %v, threaded %v",
			un.Time, ti.Time, th.Time)
	}
	// Table 7: both remove essentially all capacity misses.
	if un.Summary.L2.Capacity == 0 {
		t.Fatal("untiled SOR shows no capacity misses")
	}
	if ti.Summary.L2.Capacity*10 > un.Summary.L2.Capacity {
		t.Errorf("tiled capacity %d not ≪ untiled %d",
			ti.Summary.L2.Capacity, un.Summary.L2.Capacity)
	}
	if th.Summary.L2.Capacity*10 > un.Summary.L2.Capacity {
		t.Errorf("threaded capacity %d not ≪ untiled %d",
			th.Summary.L2.Capacity, un.Summary.L2.Capacity)
	}
}

func TestTable8And9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("cache simulation")
	}
	c := Quick()
	m := c.NBodyR8000()
	un := c.RunNBody(NBodyUnthreaded, m, 1)
	th := c.RunNBody(NBodyThreaded, m, 1)
	if th.Time >= un.Time {
		t.Errorf("threaded N-body %v not faster than unthreaded %v", th.Time, un.Time)
	}
	if th.Summary.L2.Capacity*2 > un.Summary.L2.Capacity {
		t.Errorf("N-body capacity shrink too small: %d vs %d",
			th.Summary.L2.Capacity, un.Summary.L2.Capacity)
	}
}

func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("cache simulation")
	}
	c := Quick()
	m := c.R8000()
	l2 := m.L2CacheSize()
	// Matmul: a block of C/4 must beat a block of 4C (degradation past the
	// cache size, the figure's headline), and SOR likewise.
	good := c.RunMatmulThreadedBlock(m, l2/4)
	bad := c.RunMatmulThreadedBlock(m, 4*l2)
	if good.Time >= bad.Time {
		t.Errorf("matmul: block C/4 (%v) not faster than 4C (%v)", good.Time, bad.Time)
	}
	sGood := c.RunSORThreadedBlock(m, l2/4)
	sBad := c.RunSORThreadedBlock(m, 4*l2)
	if sGood.Time >= sBad.Time {
		t.Errorf("SOR: block C/4 (%v) not faster than 4C (%v)", sGood.Time, sBad.Time)
	}
}

func TestFigure4TableRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("cache simulation")
	}
	c := Quick()
	tb := c.Figure4(nil)
	if len(tb.Rows) != len(Figure4RelativeBlocks) {
		t.Fatalf("Figure 4 rows = %d, want %d", len(tb.Rows), len(Figure4RelativeBlocks))
	}
	if len(tb.Columns) != 5 {
		t.Fatalf("Figure 4 columns = %d, want 5", len(tb.Columns))
	}
}

func TestMissTableRendersPaperNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("cache simulation")
	}
	c := Quick()
	tb := c.Table9(nil)
	out := tb.String()
	// Paper's Table 9 values must appear verbatim.
	for _, want := range []string{"1820656", "865713", "1131", "495"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 9 output missing paper value %q", want)
		}
	}
}

func TestPaperDataSelfConsistent(t *testing.T) {
	// The transcribed miss tables must satisfy the classification
	// identity compulsory + capacity + conflict = L2 misses, within the
	// ±1-per-component rounding of the paper's in-thousands printing.
	check := func(name string, rows map[string]tables.MissRow) {
		for variant, r := range rows {
			sum := r.Compulsory + r.Capacity + r.Conflict
			diff := int64(sum) - int64(r.L2Misses)
			if diff < -3 || diff > 3 {
				t.Errorf("%s %s: %d+%d+%d != %d", name, variant,
					r.Compulsory, r.Capacity, r.Conflict, r.L2Misses)
			}
		}
	}
	check("Table3", tables.PaperTable3)
	check("Table5", tables.PaperTable5)
	check("Table7", tables.PaperTable7)
	check("Table9", tables.PaperTable9)
}

func TestModernCollapsesTheGap(t *testing.T) {
	if testing.Short() {
		t.Skip("cache simulation")
	}
	c := Quick()
	modern := machine.Modern()
	un := c.RunMatmul(MatmulInterchanged, modern)
	th := c.RunMatmul(MatmulThreaded, modern)
	r8un := c.RunMatmul(MatmulInterchanged, c.R8000())
	r8th := c.RunMatmul(MatmulThreaded, c.R8000())
	modernGap := un.Seconds() / th.Seconds()
	r8Gap := r8un.Seconds() / r8th.Seconds()
	// The 1996 machine must show a substantial gap; the modern one must
	// nearly erase it.
	if r8Gap < 1.5 {
		t.Fatalf("R8000 gap %.2f too small; quick geometry broken", r8Gap)
	}
	if modernGap > 1.2 {
		t.Errorf("modern gap %.2f should be near 1 (L3 holds the problem)", modernGap)
	}
	// The modern L3 absorbs essentially everything: its misses are a tiny
	// fraction of the R8000's L2 misses at the same workload.
	if un.Summary.L3.Misses*10 > r8un.Summary.L2.Misses {
		t.Errorf("modern L3 misses %d not ≪ R8000 L2 misses %d",
			un.Summary.L3.Misses, r8un.Summary.L2.Misses)
	}
}

func TestModernTableRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("cache simulation")
	}
	c := Quick()
	tb := c.Modern(nil)
	if len(tb.Rows) != 3 {
		t.Fatalf("modern table rows = %d", len(tb.Rows))
	}
	if !strings.Contains(tb.String(), "L3") {
		t.Fatal("modern table missing L3 column")
	}
}
