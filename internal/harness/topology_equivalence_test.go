package harness

import (
	"strings"
	"testing"

	"threadsched/internal/core"
)

// TestGoldenEquivalenceTopology extends the equivalence contract to
// hierarchical scheduling: a Config carrying a 1-level topology (the
// degenerate case of the bin tree) must reproduce the flat simulation
// results bit for bit — stats for every app, and a byte-identical
// rendered table — because the 1-level tree partition is defined to be
// the flat partition. A multi-level topology must also change nothing
// here: these simulated runs are single-worker, so dispatch never forks,
// and the tour itself is topology-independent.
func TestGoldenEquivalenceTopology(t *testing.T) {
	oneLevel, err := core.ParseTopology("2m:64")
	if err != nil {
		t.Fatal(err)
	}
	multi, err := core.ParseTopology("32k:2,256k:8,2m:32")
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range eqApps() {
		app := app
		t.Run(app.name, func(t *testing.T) {
			t.Parallel()
			flat := eqConfig()
			flat.Mode = ModeSerial
			want := app.run(flat)
			if want.Summary.L2.Misses == 0 {
				t.Fatalf("degenerate golden baseline: %+v", want.Summary.L2)
			}
			for _, topo := range []*core.Topology{oneLevel, multi} {
				c := eqConfig()
				c.Mode = ModeSerial
				c.Topology = topo
				requireSameResult(t, "topology="+topo.String(), want, app.run(c))
			}
		})
	}
}

// TestGoldenEquivalenceTopologyTable pins the end-to-end render: Table 7
// under a 1-level topology is byte-identical to the flat render.
func TestGoldenEquivalenceTopologyTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SOR miss-table simulations twice")
	}
	flat := eqConfig()
	flat.Mode = ModeSerial
	want := flat.Table7(nil).String()
	if !strings.Contains(want, "L2") {
		t.Fatalf("degenerate golden table render:\n%s", want)
	}
	topo, err := core.ParseTopology("2m:64")
	if err != nil {
		t.Fatal(err)
	}
	c := eqConfig()
	c.Mode = ModeSerial
	c.Topology = topo
	if got := c.Table7(nil).String(); got != want {
		t.Errorf("1-level topology render diverges from flat:\n--- flat ---\n%s\n--- topology ---\n%s", want, got)
	}
}
