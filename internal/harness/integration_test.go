package harness

import (
	"bytes"
	"testing"

	"threadsched/internal/apps/sor"
	"threadsched/internal/cache"
	"threadsched/internal/machine"
	"threadsched/internal/sim"
	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

// The full pipeline, both ways: an instrumented kernel driving the
// hierarchy directly must produce byte-identical statistics to the same
// kernel's trace written to the binary format and replayed — the
// Pixie-file-then-DineroIII path of cmd/tracesim.
func TestTraceFileReplayMatchesDirectSimulation(t *testing.T) {
	mach := machine.R8000().Scaled(64)
	n, iters := 101, 3

	// Direct: kernel -> hierarchy.
	direct := cache.MustNewHierarchy(mach.Caches, nil)
	cpuD := sim.NewCPU(direct)
	sor.NewTracedArray(cpuD, vm.NewAddressSpace(), n).Untiled(iters)

	// Via file: kernel -> trace bytes -> replayed hierarchy.
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	cpuF := sim.NewCPU(w)
	sor.NewTracedArray(cpuF, vm.NewAddressSpace(), n).Untiled(iters)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	replayed := cache.MustNewHierarchy(mach.Caches, nil)
	r := trace.NewReader(&buf)
	if err := r.ForEach(func(ref trace.Ref) error {
		replayed.Record(ref)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	if cpuD.Instructions != cpuF.Instructions {
		t.Fatalf("instruction counts differ: %d vs %d", cpuD.Instructions, cpuF.Instructions)
	}
	for _, pair := range []struct {
		name string
		a, b cache.Stats
	}{
		{"L1I", direct.L1I().Stats(), replayed.L1I().Stats()},
		{"L1D", direct.L1D().Stats(), replayed.L1D().Stats()},
		{"L2", direct.L2().Stats(), replayed.L2().Stats()},
	} {
		if pair.a != pair.b {
			t.Errorf("%s stats differ:\ndirect   %+v\nreplayed %+v", pair.name, pair.a, pair.b)
		}
	}
	if direct.Refs() != replayed.Refs() {
		t.Errorf("reference tallies differ: %+v vs %+v", direct.Refs(), replayed.Refs())
	}
}

// A hand-checked miniature pipeline: a known access pattern through a
// tiny hierarchy must produce exactly the predicted classified misses and
// modelled time.
func TestPipelineHandChecked(t *testing.T) {
	cfg := cache.HierarchyConfig{
		L1I: cache.Config{Name: "L1I", Size: 128, LineSize: 32, Assoc: 1},
		L1D: cache.Config{Name: "L1D", Size: 128, LineSize: 32, Assoc: 1},
		L2:  cache.Config{Name: "L2", Size: 512, LineSize: 64, Assoc: 2, Classify: true},
	}
	h := cache.MustNewHierarchy(cfg, nil)
	cpu := sim.NewCPU(h)

	// 4 instructions at pc 0: one L1I line, one cold L2 miss.
	cpu.Exec(0, 4)
	// Two loads in one 64-byte L2 line but two 32-byte L1D lines:
	// 2 L1D cold misses, 1 L2 cold miss (second access hits).
	cpu.Load(0x1000, 8)
	cpu.Load(0x1020, 8)
	// A store to the same line: L1D hit, no L2 traffic.
	cpu.Store(0x1000, 8)

	sum := h.Summarize()
	if sum.IFetches != 1 { // one I-line touch recorded
		t.Errorf("ifetch refs = %d, want 1", sum.IFetches)
	}
	if cpu.Instructions != 4 {
		t.Errorf("instructions = %d, want 4", cpu.Instructions)
	}
	if sum.DataRefs != 3 {
		t.Errorf("data refs = %d, want 3", sum.DataRefs)
	}
	if got := h.L1D().Stats().Misses; got != 2 {
		t.Errorf("L1D misses = %d, want 2", got)
	}
	l2 := h.L2().Stats()
	if l2.Accesses != 3 { // ifetch miss + two L1D misses
		t.Errorf("L2 accesses = %d, want 3", l2.Accesses)
	}
	if l2.Misses != 2 || l2.Compulsory != 2 || l2.Capacity != 0 || l2.Conflict != 0 {
		t.Errorf("L2 stats = %+v, want 2 compulsory misses", l2)
	}

	// Crude model: (4 instr + 3 L1-miss·7) cycles at 75 MHz + 2 L2 misses.
	cm := machine.CostModel{Machine: machine.R8000(), Crude: true}
	got := cm.Estimate(cpu.Instructions, 3, 2)
	cycle := 1e9 / 75e6 // ns
	wantNS := (4 + 3*7) * cycle
	wantNS += 2 * 1060
	if gotNS := float64(got.Nanoseconds()); gotNS < wantNS-2 || gotNS > wantNS+2 {
		t.Errorf("modelled time = %vns, want %.0fns", gotNS, wantNS)
	}
}
