package harness

import (
	"runtime"
	"time"
)

// StageResult is one pipeline stage's throughput measurement from SimBench.
type StageResult struct {
	// Stage names the reference-stream path measured: "serial", "batch",
	// "pipeline", or "parallel" (batched mode with Config.Parallel workers).
	Stage string `json:"stage"`
	// Workers is the stage's concurrency: how many independent simulations
	// run at once. The single-stream stages are 1; the parallel stage runs
	// Config.Parallel workers (NumCPU by default).
	Workers int `json:"workers"`
	// Refs is the total number of references the cache hierarchies
	// observed across the stage's experiments.
	Refs uint64 `json:"refs"`
	// WallNS is the stage's best-of-reps wall-clock time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// RefsPerSec is the end-to-end simulation throughput: references
	// generated *and* simulated per second of wall time.
	RefsPerSec float64 `json:"refs_per_sec"`
	// SpeedupVsSerial is RefsPerSec divided by the serial stage's.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// simBenchJobs is the fixed experiment set every SimBench stage runs, so
// refs/sec is comparable across stages: four independent traced workloads
// on the scaled R8000.
func (c Config) simBenchJobs() []simJob {
	m := c.R8000()
	return []simJob{
		{"matmul-interchanged", "simbench: matmul interchanged",
			func() SimResult { return c.RunMatmul(MatmulInterchanged, m) }},
		{"matmul-tiled", "simbench: matmul tiled",
			func() SimResult { return c.RunMatmul(MatmulTiledInterchanged, m) }},
		{"sor-untiled", "simbench: SOR untiled",
			func() SimResult { return c.RunSOR(SORUntiled, m) }},
		{"pde-regular", "simbench: PDE regular",
			func() SimResult { return c.RunPDE(PDERegular, m) }},
	}
}

// SimBench measures end-to-end simulation throughput (references per
// second, trace generation plus cache simulation) through each
// reference-stream path: the per-reference serial path, the batched path,
// the SPSC pipelined path, and the batched path with the experiment pool
// running all workloads concurrently. Every stage runs the identical
// four-workload set and — by the exactness contract — observes the
// identical reference stream, so the refs counts agree and only wall time
// differs. Each stage runs reps times (minimum 1) and keeps the fastest
// observation, the standard estimator for a deterministic workload on a
// noisy host. The pipeline and parallel stages only pay off with spare
// cores; on a single-CPU host they measure the coordination overhead
// honestly.
func (c Config) SimBench(reps int, prog Progress) []StageResult {
	if reps < 1 {
		reps = 1
	}
	stages := []struct {
		name    string
		workers int
		cfg     Config
	}{
		{"serial", 1, func() Config { d := c; d.Mode = ModeSerial; d.Parallel = 1; return d }()},
		{"batch", 1, func() Config { d := c; d.Mode = ModeBatched; d.Parallel = 1; return d }()},
		{"pipeline", 1, func() Config { d := c; d.Mode = ModePipelined; d.Parallel = 1; return d }()},
		{"parallel", 0, func() Config {
			d := c
			d.Mode = ModeBatched
			if d.Parallel <= 1 {
				d.Parallel = runtime.NumCPU()
			}
			return d
		}()},
	}
	var out []StageResult
	for _, s := range stages {
		if s.workers == 0 {
			s.workers = s.cfg.Parallel
		}
		var refs uint64
		best := int64(0)
		for r := 0; r < reps; r++ {
			prog.printf("simbench: stage %s (rep %d/%d)", s.name, r+1, reps)
			start := time.Now()
			res := s.cfg.runJobs(prog, s.cfg.simBenchJobs())
			wall := time.Since(start).Nanoseconds()
			refs = 0
			for _, jr := range res {
				refs += jr.Summary.IFetches + jr.Summary.DataRefs
			}
			if best == 0 || wall < best {
				best = wall
			}
		}
		sr := StageResult{
			Stage:      s.name,
			Workers:    s.workers,
			Refs:       refs,
			WallNS:     best,
			RefsPerSec: float64(refs) / (float64(best) / 1e9),
		}
		if len(out) > 0 {
			sr.SpeedupVsSerial = sr.RefsPerSec / out[0].RefsPerSec
		} else {
			sr.SpeedupVsSerial = 1
		}
		out = append(out, sr)
	}
	return out
}
