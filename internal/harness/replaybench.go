package harness

import (
	"bytes"
	"fmt"

	"threadsched/internal/apps/matmul"
	"threadsched/internal/cache"
	"threadsched/internal/sim"
	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

// ReplayStage is one trace-replay throughput measurement from ReplayBench.
type ReplayStage struct {
	// Path names the decode path: "serial" (the streaming Reader),
	// "sharded" (the chunk-indexed MemFile decode), or "sliced" (sharded
	// decode fanning out to per-slice cache shards).
	Path string `json:"path"`
	// Workers is the sharded decode's worker count (1 for serial).
	Workers int `json:"workers"`
	// Slices is the address-slice count for "sliced" stages (0 otherwise).
	Slices int `json:"slices,omitempty"`
	// WallNS is the best-of-reps wall time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// RefsPerSec is decoded (or decoded-and-simulated) references per
	// second of wall time.
	RefsPerSec float64 `json:"refs_per_sec"`
	// SpeedupVsSerial is RefsPerSec divided by the serial stage's.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// ReplayResult is the full trace-replay benchmark: decode-only throughput
// (every byte checksummed, every record materialized, nothing consumed)
// and end-to-end replay throughput (decode feeding the R8000 cache
// hierarchy), each through the serial reader and the sharded decoder at
// several worker counts.
type ReplayResult struct {
	// Workload describes the traced workload the benchmark replays.
	Workload string `json:"workload"`
	// Refs is the trace's total reference count.
	Refs uint64 `json:"refs"`
	// TraceBytes is the encoded trace size.
	TraceBytes int `json:"trace_bytes"`
	// Chunks is the trace's chunk count (the sharding granularity).
	Chunks int `json:"chunks"`
	// Decode is the decode-only sweep; EndToEnd the replay-into-caches
	// sweep. The first stage of each is the serial baseline.
	Decode   []ReplayStage `json:"decode"`
	EndToEnd []ReplayStage `json:"end_to_end"`
	// Sliced is the address-sliced parallel-simulation sweep: sharded
	// decode fanning references into per-slice cache hierarchies that
	// simulate concurrently. It runs on the declassified hierarchy (miss
	// classification off — the shadow stack is global state slicing
	// cannot reproduce), so its serial baseline is its own first stage,
	// not EndToEnd's.
	Sliced []ReplayStage `json:"sliced,omitempty"`
}

// replayWorkers is the worker-count sweep the sharded stages run.
var replayWorkers = []int{1, 2, 4}

// replayTrace generates the benchmark's trace in memory: the interchanged
// matmul at the Config's geometry, encoded through the standard buffered
// CPU → Writer path, then indexed as a MemFile.
func (c Config) replayTrace() (*trace.MemFile, error) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	cpu := sim.NewCPU(w).Buffer(0)
	matmul.NewTraced(cpu, vm.NewAddressSpace(), c.MatmulN).Interchanged()
	cpu.Flush()
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("encoding replay trace: %w", err)
	}
	return trace.NewMemFile(buf.Bytes())
}

// bestOfErr is bestOf for fallible measurements: the first error wins and
// voids the timing.
func bestOfErr(reps int, fn func() error) (int64, error) {
	var err error
	best := bestOf(reps, func() {
		if e := fn(); e != nil && err == nil {
			err = e
		}
	})
	if err != nil {
		return 0, err
	}
	return best, nil
}

// ReplayBench measures trace-replay throughput through the serial reader
// and the sharded decoder. Decode-only stages touch every record without
// consuming it (the wire-speed ceiling); end-to-end stages replay the
// trace into a fresh scaled-R8000 hierarchy per run, and every sharded
// replay's cache summary is checked bit-identical to the serial replay's —
// a throughput number from a diverging decode would be worthless. reps is
// the best-of repetition count per stage.
func (c Config) ReplayBench(reps int, prog Progress) (ReplayResult, error) {
	if reps < 1 {
		reps = 1
	}
	workload := fmt.Sprintf("matmul-interchanged n=%d", c.MatmulN)
	prog.printf("replaybench: generating trace (%s)", workload)
	f, err := c.replayTrace()
	if err != nil {
		return ReplayResult{}, err
	}
	res := ReplayResult{
		Workload:   workload,
		Refs:       f.Records(),
		TraceBytes: f.Size(),
		Chunks:     f.Chunks(),
	}

	stage := func(path string, workers, reps int, fn func() error) (ReplayStage, error) {
		wall, err := bestOfErr(reps, fn)
		if err != nil {
			return ReplayStage{}, fmt.Errorf("replaybench %s w=%d: %w", path, workers, err)
		}
		return ReplayStage{
			Path:       path,
			Workers:    workers,
			WallNS:     wall,
			RefsPerSec: float64(res.Refs) / (float64(wall) / 1e9),
		}, nil
	}
	finish := func(stages []ReplayStage) {
		for i := range stages {
			stages[i].SpeedupVsSerial = stages[i].RefsPerSec / stages[0].RefsPerSec
		}
	}

	// Decode-only sweep.
	prog.printf("replaybench: decode serial")
	s, err := stage("serial", 1, reps, func() error {
		return f.Reader().ForEachBatch(0, func([]trace.Ref) error { return nil })
	})
	if err != nil {
		return res, err
	}
	res.Decode = append(res.Decode, s)
	for _, w := range replayWorkers {
		prog.printf("replaybench: decode sharded w=%d", w)
		s, err := stage("sharded", w, reps, func() error {
			counts, err := f.CountRefs(w)
			if err == nil && counts.Total() != res.Refs {
				err = fmt.Errorf("decoded %d refs, trace has %d", counts.Total(), res.Refs)
			}
			return err
		})
		if err != nil {
			return res, err
		}
		res.Decode = append(res.Decode, s)
	}
	finish(res.Decode)

	// End-to-end sweep: decode feeding the cache hierarchy. The serial
	// run's summary is the oracle for every sharded run.
	m := c.R8000()
	var oracle cache.Summary
	prog.printf("replaybench: end-to-end serial")
	s, err = stage("serial", 1, reps, func() error {
		h := cache.MustNewHierarchy(m.Caches, nil)
		if err := f.Reader().ForEachBatch(0, func(refs []trace.Ref) error {
			h.RecordBatch(refs)
			return nil
		}); err != nil {
			return err
		}
		oracle = h.Summarize()
		return nil
	})
	if err != nil {
		return res, err
	}
	res.EndToEnd = append(res.EndToEnd, s)
	for _, w := range replayWorkers {
		prog.printf("replaybench: end-to-end sharded w=%d", w)
		s, err := stage("sharded", w, reps, func() error {
			h := cache.MustNewHierarchy(m.Caches, nil)
			if err := f.ForEachBatch(w, func(refs []trace.Ref) error {
				h.RecordBatch(refs)
				return nil
			}); err != nil {
				return err
			}
			if got := h.Summarize(); got != oracle {
				return fmt.Errorf("sharded replay diverged from serial: %+v vs %+v", got, oracle)
			}
			return nil
		})
		if err != nil {
			return res, err
		}
		res.EndToEnd = append(res.EndToEnd, s)
	}
	finish(res.EndToEnd)

	// Sliced sweep: parallel simulation, not just parallel decode. The
	// hierarchy must be declassified (and carries no page table or TLB),
	// so this sweep has its own serial oracle on the same configuration;
	// every sliced run is verified bit-identical against it.
	sliceCfg := m.Caches
	sliceCfg.L2.Classify = false
	var sliceOracle cache.Summary
	prog.printf("replaybench: sliced serial baseline")
	s, err = stage("serial", 1, reps, func() error {
		h := cache.MustNewHierarchy(sliceCfg, nil)
		if err := f.Reader().ForEachBatch(0, func(refs []trace.Ref) error {
			h.RecordBatch(refs)
			return nil
		}); err != nil {
			return err
		}
		sliceOracle = h.Summarize()
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Sliced = append(res.Sliced, s)
	for _, w := range replayWorkers {
		if w < 2 {
			continue // one slice is the serial baseline with extra steps
		}
		prog.printf("replaybench: sliced w=%d", w)
		sh, err := sim.NewShardedHierarchy(sliceCfg, w)
		if err != nil {
			return res, fmt.Errorf("replaybench sliced w=%d: %w", w, err)
		}
		s, err := stage("sliced", w, reps, func() error {
			if err := sh.Replay(f, w); err != nil {
				return err
			}
			if got := sh.Summarize(); got != sliceOracle {
				return fmt.Errorf("sliced replay diverged from serial: %+v vs %+v", got, sliceOracle)
			}
			return nil
		})
		if err != nil {
			return res, err
		}
		s.Slices = sh.Slices()
		res.Sliced = append(res.Sliced, s)
	}
	finish(res.Sliced)
	return res, nil
}
