package harness

import (
	"fmt"

	"threadsched/internal/machine"
	"threadsched/internal/tables"
)

// Modern runs the matrix-multiply variants on a three-level 2020s-style
// machine model next to the 1996 R8000, quantifying the fate of the
// paper's technique on hardware whose last-level cache is larger than the
// whole problem and whose prefetchers hide streaming misses: the
// untiled-to-threaded gap collapses.
func (c Config) Modern(prog Progress) *tables.Table {
	r8 := c.R8000()
	modern := machine.Modern()
	t := &tables.Table{
		ID: "Modern",
		Title: fmt.Sprintf("Matmul (n=%d) on the 1996 R8000 vs a modern 3-level core (L3 %d MB)",
			c.MatmulN, modern.Caches.L3.Size>>20),
		Columns: []string{"", "R8000 sim (s)", "Modern sim (s)",
			"Modern L2 misses", "Modern L3 misses"},
	}
	variants := []struct {
		name string
		v    MatmulVariant
	}{
		{"Interchanged", MatmulInterchanged},
		{"Tiled interchanged", MatmulTiledInterchanged},
		{"Threaded", MatmulThreaded},
	}
	var jobs []simJob
	for _, v := range variants {
		jobs = append(jobs,
			simJob{"r8/" + v.name, "modern: " + v.name + " on R8000",
				func() SimResult { return c.RunMatmul(v.v, r8) }},
			simJob{"r10/" + v.name, "modern: " + v.name + " on Modern",
				func() SimResult { return c.RunMatmul(v.v, modern) }})
	}
	old, res := splitPair(c.runJobs(prog, jobs))
	for _, v := range variants {
		now := res[v.name]
		t.AddRow(v.name,
			tables.Seconds(old[v.name].Seconds()),
			fmt.Sprintf("%.4f", now.Seconds()),
			fmt.Sprintf("%d", now.Summary.L2.Misses),
			fmt.Sprintf("%d", now.Summary.L3.Misses))
	}
	un, th := res["Interchanged"], res["Threaded"]
	t.AddNote("untiled/threaded speedup on the modern core: %s (the R8000's was the paper's headline)",
		tables.Ratio(un.Seconds(), th.Seconds()))
	t.AddNote("the whole problem fits the modern L3, and next-line prefetch hides the streaming misses")
	return t
}
