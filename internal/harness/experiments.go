package harness

import (
	"fmt"
	"strings"
	"time"

	"threadsched/internal/core"
	"threadsched/internal/machine"
	"threadsched/internal/tables"
)

// Table1 reproduces Table 1 (thread overhead in microseconds): the paper's
// measured numbers, this model's cost-table numbers, and a live
// measurement of the Go scheduler's fork/run overhead on the host.
func (c Config) Table1() *tables.Table {
	t := &tables.Table{
		ID:    "Table 1",
		Title: "Thread overhead in microseconds",
		Columns: []string{"", "R8000 paper", "R8000 model", "R10000 paper", "R10000 model",
			"host native (µs)"},
	}
	r8 := machine.CostModel{Machine: machine.R8000()}
	r10 := machine.CostModel{Machine: machine.R10000()}
	forkNS, runNS := measureNullThreads(c.Table1Threads)

	model := func(cm machine.CostModel, instr int) float64 {
		return (time.Duration(instr) * cm.Machine.CycleTime()).Seconds() * 1e6
	}
	// The model charges the Table-1-calibrated instruction budgets used by
	// the traced scheduler wrapper (sim.Threads): 100 to fork, 16 to run.
	t.AddRow("Fork",
		fmt.Sprintf("%.2f", tables.PaperTable1.Fork["R8000"]),
		fmt.Sprintf("%.2f", model(r8, 100)),
		fmt.Sprintf("%.2f", tables.PaperTable1.Fork["R10000"]),
		fmt.Sprintf("%.2f", model(r10, 100)),
		fmt.Sprintf("%.3f", forkNS/1e3))
	t.AddRow("Run",
		fmt.Sprintf("%.2f", tables.PaperTable1.Run["R8000"]),
		fmt.Sprintf("%.2f", model(r8, 16)),
		fmt.Sprintf("%.2f", tables.PaperTable1.Run["R10000"]),
		fmt.Sprintf("%.2f", model(r10, 16)),
		fmt.Sprintf("%.3f", runNS/1e3))
	t.AddRow("Total",
		fmt.Sprintf("%.2f", tables.PaperTable1.Total["R8000"]),
		fmt.Sprintf("%.2f", model(r8, 116)),
		fmt.Sprintf("%.2f", tables.PaperTable1.Total["R10000"]),
		fmt.Sprintf("%.2f", model(r10, 116)),
		fmt.Sprintf("%.3f", (forkNS+runNS)/1e3))
	t.AddRow("L2 Miss",
		fmt.Sprintf("%.2f", tables.PaperTable1.L2Miss["R8000"]), "",
		fmt.Sprintf("%.2f", tables.PaperTable1.L2Miss["R10000"]), "", "")
	t.AddNote("host native: %d null threads forked and run through the Go scheduler", c.Table1Threads)
	t.AddNote("paper's claim holds if total thread overhead < ~2 L2 misses on each machine")
	t.AddMetric("host_fork_ns_per_thread", forkNS)
	t.AddMetric("host_run_ns_per_thread", runNS)
	return t
}

// measureNullThreads times forking and running n null threads, evenly
// distributed across the scheduling plane as in §4.1, returning
// nanoseconds per fork and per run.
func measureNullThreads(n int) (forkNS, runNS float64) {
	s := core.New(core.Config{CacheSize: 2 << 20, BlockSize: 1 << 20})
	null := func(int, int) {}
	const blocks = 16
	// Warm the free lists so steady-state cost is measured, as the paper
	// measured a steady-state loop.
	for i := 0; i < n/16; i++ {
		s.Fork(null, 0, 0, uint64(i%blocks)<<20, uint64((i/blocks)%blocks)<<20, 0)
	}
	s.Run(false)

	start := time.Now()
	for i := 0; i < n; i++ {
		s.Fork(null, i, 0, uint64(i%blocks)<<20, uint64((i/blocks)%blocks)<<20, 0)
	}
	forkNS = float64(time.Since(start).Nanoseconds()) / float64(n)
	start = time.Now()
	s.Run(false)
	runNS = float64(time.Since(start).Nanoseconds()) / float64(n)
	return
}

// timeTable builds a Table 2/4/6/8-style timing table: per-variant paper
// seconds next to modelled seconds on both (scaled) machines.
func timeTable(id, title string, order []string, paper map[string]map[string]float64,
	r8, r10 map[string]SimResult) *tables.Table {
	t := &tables.Table{
		ID:      id,
		Title:   title,
		Columns: []string{"", "R8000 paper", "R8000 sim", "R10000 paper", "R10000 sim"},
	}
	for _, name := range order {
		t.AddRow(name,
			tables.Seconds(paper[name]["R8000"]),
			tables.Seconds(r8[name].Seconds()),
			tables.Seconds(paper[name]["R10000"]),
			tables.Seconds(r10[name].Seconds()))
	}
	base, last := order[0], order[len(order)-1]
	t.AddNote("speedup %s/%s — paper R8000 %s, sim R8000 %s; paper R10000 %s, sim R10000 %s",
		base, last,
		tables.Ratio(paper[base]["R8000"], paper[last]["R8000"]),
		tables.Ratio(r8[base].Seconds(), r8[last].Seconds()),
		tables.Ratio(paper[base]["R10000"], paper[last]["R10000"]),
		tables.Ratio(r10[base].Seconds(), r10[last].Seconds()))
	return t
}

// missTable builds a Table 3/5/7/9-style miss table on the R8000: rows are
// the paper's metrics, column pairs are paper (full scale) vs simulated
// (scaled geometry); absolute counts differ by the scale factor, the
// between-variant ratios are the reproduced shape.
func missTable(id, title string, order []string, paper map[string]tables.MissRow,
	meas map[string]SimResult, scale uint64) *tables.Table {
	cols := []string{""}
	for _, name := range order {
		cols = append(cols, name+" paper", name+" sim")
	}
	t := &tables.Table{ID: id, Title: title, Columns: cols}

	row := func(label string, pv func(tables.MissRow) string, mv func(SimResult) string) {
		cells := []string{label}
		for _, name := range order {
			cells = append(cells, pv(paper[name]), mv(meas[name]))
		}
		t.AddRow(cells...)
	}
	k := func(v uint64) string { return tables.Thousands(v) }
	row("I fetches",
		func(r tables.MissRow) string { return fmt.Sprintf("%d", r.IFetches) },
		func(r SimResult) string { return k(r.Instructions) })
	row("D references",
		func(r tables.MissRow) string { return fmt.Sprintf("%d", r.DataRefs) },
		func(r SimResult) string { return k(r.Summary.DataRefs) })
	row("L1 misses",
		func(r tables.MissRow) string { return fmt.Sprintf("%d", r.L1Misses) },
		func(r SimResult) string { return k(r.Summary.L1Misses) })
	row("  rate",
		func(r tables.MissRow) string { return tables.Rate(r.L1Rate) },
		func(r SimResult) string {
			total := float64(r.Instructions + r.Summary.DataRefs)
			if total == 0 {
				return "-"
			}
			return tables.Rate(100 * float64(r.Summary.L1Misses) / total)
		})
	row("L2 misses",
		func(r tables.MissRow) string { return fmt.Sprintf("%d", r.L2Misses) },
		func(r SimResult) string { return k(r.Summary.L2.Misses) })
	row("  rate",
		func(r tables.MissRow) string { return tables.Rate(r.L2Rate) },
		func(r SimResult) string { return tables.Rate(r.Summary.L2.MissRate()) })
	row("L2 compulsory",
		func(r tables.MissRow) string { return fmt.Sprintf("%d", r.Compulsory) },
		func(r SimResult) string { return k(r.Summary.L2.Compulsory) })
	row("L2 capacity",
		func(r tables.MissRow) string { return fmt.Sprintf("%d", r.Capacity) },
		func(r SimResult) string { return k(r.Summary.L2.Capacity) })
	row("L2 conflict",
		func(r tables.MissRow) string { return fmt.Sprintf("%d", r.Conflict) },
		func(r SimResult) string { return k(r.Summary.L2.Conflict) })

	first, last := order[0], order[len(order)-1]
	if scale > 1 {
		t.AddNote("counts in thousands; paper at full scale, sim at scaled geometry — compare ratios")
	} else {
		t.AddNote("counts in thousands; both columns at the paper's full problem size")
	}
	t.AddNote("L2 capacity shrink %s→%s: paper %s, sim %s", first, last,
		tables.Ratio(float64(paper[first].Capacity), float64(paper[last].Capacity)),
		tables.Ratio(float64(meas[first].Summary.L2.Capacity), float64(meas[last].Summary.L2.Capacity)))
	return t
}

// splitPair separates a runJobs result map keyed "r8/name" / "r10/name"
// into the per-machine maps the table renderers consume.
func splitPair(res map[string]SimResult) (r8, r10 map[string]SimResult) {
	r8, r10 = map[string]SimResult{}, map[string]SimResult{}
	for k, v := range res {
		if name, ok := strings.CutPrefix(k, "r8/"); ok {
			r8[name] = v
		} else if name, ok := strings.CutPrefix(k, "r10/"); ok {
			r10[name] = v
		}
	}
	return r8, r10
}

func schedNote(t *tables.Table, app string, rs core.RunStats) {
	p := tables.PaperSchedStats[app]
	t.AddNote("scheduler: paper %d threads in %d bins (avg %d); sim %d threads in %d bins (avg %.0f)",
		p.Threads, p.Bins, p.AvgPerBin, rs.Threads, rs.Bins, rs.AvgPerBin)
	t.AddMetric("bins", float64(rs.Bins))
	t.AddMetric("threads_per_bin", rs.AvgPerBin)
	t.AddMetric("threads", float64(rs.Threads))
}

// Table2 reproduces Table 2: matrix multiply times.
func (c Config) Table2(prog Progress) *tables.Table {
	variants := []struct {
		name string
		v    MatmulVariant
	}{
		{"Interchanged", MatmulInterchanged},
		{"Transposed", MatmulTransposed},
		{"Tiled interchanged", MatmulTiledInterchanged},
		{"Tiled transposed", MatmulTiledTransposed},
		{"Threaded", MatmulThreaded},
	}
	var jobs []simJob
	for _, v := range variants {
		jobs = append(jobs,
			simJob{"r8/" + v.name, "table2: " + v.name + " on R8000",
				func() SimResult { return c.RunMatmul(v.v, c.R8000()) }},
			simJob{"r10/" + v.name, "table2: " + v.name + " on R10000",
				func() SimResult { return c.RunMatmul(v.v, c.R10000()) }})
	}
	r8m, r10m := splitPair(c.runJobs(prog, jobs))
	t := timeTable("Table 2", fmt.Sprintf("Matrix multiply performance in seconds (n=%d)", c.MatmulN),
		tables.Table2Order, tables.PaperTable2, r8m, r10m)
	schedNote(t, "matmul", r8m["Threaded"].Sched)
	return t
}

// Table3 reproduces Table 3: matmul references and cache misses, R8000.
func (c Config) Table3(prog Progress) *tables.Table {
	m := c.R8000()
	meas := c.runJobs(prog, []simJob{
		{"Untiled", "table3: untiled", func() SimResult { return c.RunMatmul(MatmulInterchanged, m) }},
		{"Tiled", "table3: tiled", func() SimResult { return c.RunMatmul(MatmulTiledInterchanged, m) }},
		{"Threaded", "table3: threaded", func() SimResult { return c.RunMatmul(MatmulThreaded, m) }},
	})
	return missTable("Table 3",
		fmt.Sprintf("Matmul memory references and cache misses in thousands (n=%d, %s)", c.MatmulN, m.Name),
		tables.Table3Order, tables.PaperTable3, meas, c.Scale)
}

// Table4 reproduces Table 4: PDE times.
func (c Config) Table4(prog Progress) *tables.Table {
	variants := []struct {
		name string
		v    PDEVariant
	}{
		{"Regular", PDERegular},
		{"Cache-conscious", PDECacheConscious},
		{"Threaded", PDEThreaded},
	}
	var jobs []simJob
	for _, v := range variants {
		jobs = append(jobs,
			simJob{"r8/" + v.name, "table4: " + v.name + " on R8000",
				func() SimResult { return c.RunPDE(v.v, c.R8000()) }},
			simJob{"r10/" + v.name, "table4: " + v.name + " on R10000",
				func() SimResult { return c.RunPDE(v.v, c.R10000()) }})
	}
	r8m, r10m := splitPair(c.runJobs(prog, jobs))
	return timeTable("Table 4", fmt.Sprintf("PDE performance in seconds (n=%d, %d iterations)", c.PDEN, c.PDEIters),
		tables.Table4Order, tables.PaperTable4, r8m, r10m)
}

// Table5 reproduces Table 5: PDE cache misses, R8000.
func (c Config) Table5(prog Progress) *tables.Table {
	m := c.R8000()
	meas := c.runJobs(prog, []simJob{
		{"Regular", "table5: regular", func() SimResult { return c.RunPDE(PDERegular, m) }},
		{"Cache-conscious", "table5: cache-conscious", func() SimResult { return c.RunPDE(PDECacheConscious, m) }},
		{"Threaded", "table5: threaded", func() SimResult { return c.RunPDE(PDEThreaded, m) }},
	})
	return missTable("Table 5",
		fmt.Sprintf("PDE cache misses in thousands (n=%d, %s)", c.PDEN, m.Name),
		tables.Table5Order, tables.PaperTable5, meas, c.Scale)
}

// Table6 reproduces Table 6: SOR times.
func (c Config) Table6(prog Progress) *tables.Table {
	variants := []struct {
		name string
		v    SORVariant
	}{
		{"Untiled", SORUntiled},
		{"Hand tiled", SORHandTiled},
		{"Threaded", SORThreaded},
	}
	var jobs []simJob
	for _, v := range variants {
		jobs = append(jobs,
			simJob{"r8/" + v.name, "table6: " + v.name + " on R8000",
				func() SimResult { return c.RunSOR(v.v, c.R8000()) }},
			simJob{"r10/" + v.name, "table6: " + v.name + " on R10000",
				func() SimResult { return c.RunSOR(v.v, c.R10000()) }})
	}
	r8m, r10m := splitPair(c.runJobs(prog, jobs))
	t := timeTable("Table 6", fmt.Sprintf("SOR performance in seconds (n=%d, t=%d)", c.SORN, c.SORIters),
		tables.Table6Order, tables.PaperTable6, r8m, r10m)
	schedNote(t, "sor", r8m["Threaded"].Sched)
	return t
}

// Table7 reproduces Table 7: SOR references and cache misses, R8000.
func (c Config) Table7(prog Progress) *tables.Table {
	m := c.R8000()
	meas := c.runJobs(prog, []simJob{
		{"Untiled", "table7: untiled", func() SimResult { return c.RunSOR(SORUntiled, m) }},
		{"Hand-tiled", "table7: hand-tiled", func() SimResult { return c.RunSOR(SORHandTiled, m) }},
		{"Threaded", "table7: threaded", func() SimResult { return c.RunSOR(SORThreaded, m) }},
	})
	return missTable("Table 7",
		fmt.Sprintf("SOR memory references and cache misses in thousands (n=%d, %s)", c.SORN, m.Name),
		tables.Table7Order, tables.PaperTable7, meas, c.Scale)
}

// Table8 reproduces Table 8: N-body times.
func (c Config) Table8(prog Progress) *tables.Table {
	r8m, r10m := splitPair(c.runJobs(prog, []simJob{
		{"r8/Unthreaded", "table8: unthreaded on R8000",
			func() SimResult { return c.RunNBody(NBodyUnthreaded, c.NBodyR8000(), c.NBodySteps) }},
		{"r10/Unthreaded", "table8: unthreaded on R10000",
			func() SimResult { return c.RunNBody(NBodyUnthreaded, c.NBodyR10000(), c.NBodySteps) }},
		{"r8/Threaded", "table8: threaded on R8000",
			func() SimResult { return c.RunNBody(NBodyThreaded, c.NBodyR8000(), c.NBodySteps) }},
		{"r10/Threaded", "table8: threaded on R10000",
			func() SimResult { return c.RunNBody(NBodyThreaded, c.NBodyR10000(), c.NBodySteps) }},
	}))
	t := timeTable("Table 8",
		fmt.Sprintf("N-body performance in seconds (%d bodies, %d steps)", c.NBodyN, c.NBodySteps),
		tables.Table8Order, tables.PaperTable8, r8m, r10m)
	schedNote(t, "nbody", r8m["Threaded"].Sched)
	return t
}

// Table9 reproduces Table 9: N-body cache misses, one iteration, R8000.
func (c Config) Table9(prog Progress) *tables.Table {
	m := c.NBodyR8000()
	meas := c.runJobs(prog, []simJob{
		{"Unthreaded", "table9: unthreaded", func() SimResult { return c.RunNBody(NBodyUnthreaded, m, 1) }},
		{"Threaded", "table9: threaded", func() SimResult { return c.RunNBody(NBodyThreaded, m, 1) }},
	})
	return missTable("Table 9",
		fmt.Sprintf("N-body memory references and cache misses in thousands (%d bodies, 1 step, %s)", c.NBodyN, m.Name),
		tables.Table9Order, tables.PaperTable9, meas, c.NBodyScale)
}

// Figure4RelativeBlocks is the block-size sweep of Figure 4, expressed
// relative to the L2 capacity C: the paper sweeps 64 KB … 8 MB on a 2 MB
// cache, i.e. C/32 … 4C.
var Figure4RelativeBlocks = []struct {
	Label string
	Num   uint64
	Den   uint64
}{
	{"C/32", 1, 32}, {"C/16", 1, 16}, {"C/8", 1, 8}, {"C/4", 1, 4},
	{"C/2", 1, 2}, {"C", 1, 1}, {"2C", 2, 1}, {"4C", 4, 1},
}

// Figure4 reproduces Figure 4: execution time of the four threaded
// programs versus the scheduler block dimension size, on the (scaled)
// R8000. Times are the cost-model estimate in seconds.
func (c Config) Figure4(prog Progress) *tables.Table {
	m := c.R8000()
	nm := c.NBodyR8000()
	t := &tables.Table{
		ID: "Figure 4",
		Title: fmt.Sprintf("Execution time (s) versus block dimension size (%s, C=%d KB)",
			m.Name, m.L2CacheSize()>>10),
		Columns: []string{"block", "matrix multiply", "SOR", "PDE", "N-body"},
	}
	var jobs []simJob
	for _, b := range Figure4RelativeBlocks {
		block := m.L2CacheSize() * b.Num / b.Den
		nblock := nm.L2CacheSize() * b.Num / b.Den
		jobs = append(jobs,
			simJob{b.Label + "/matmul", "figure4: block " + b.Label + " matmul",
				func() SimResult { return c.RunMatmulThreadedBlock(m, block) }},
			simJob{b.Label + "/sor", "figure4: block " + b.Label + " SOR",
				func() SimResult { return c.RunSORThreadedBlock(m, block) }},
			simJob{b.Label + "/pde", "figure4: block " + b.Label + " PDE",
				func() SimResult { return c.RunPDEThreadedBlock(m, block) }},
			simJob{b.Label + "/nbody", "figure4: block " + b.Label + " N-body",
				func() SimResult { return c.RunNBodyThreadedBlock(nm, nblock) }})
	}
	meas := c.runJobs(prog, jobs)
	for _, b := range Figure4RelativeBlocks {
		t.AddRow(b.Label,
			tables.Seconds(meas[b.Label+"/matmul"].Seconds()),
			tables.Seconds(meas[b.Label+"/sor"].Seconds()),
			tables.Seconds(meas[b.Label+"/pde"].Seconds()),
			tables.Seconds(meas[b.Label+"/nbody"].Seconds()))
	}
	t.AddNote("paper shape: %s", tables.Figure4Shape)
	return t
}
