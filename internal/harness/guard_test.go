package harness

import (
	"os"
	"runtime"
	"testing"
)

// TestGuardPipelineThroughput is the regression tripwire for the
// reference-stream paths: the batched and pipelined stages must not fall
// below the serial per-reference path. The pipeline once shipped at 0.82x
// of serial (double-copying chunks through a churning sync.Pool); this
// guard exists so that class of regression fails a build loudly instead
// of surfacing months later in a benchmark record.
//
// It measures real throughput, so it is opt-in: set GUARD_PIPELINE=1
// (make guard-pipeline) to run it on a quiet host. The 5% allowance
// absorbs scheduler noise that best-of-3 at the quick geometry does not.
func TestGuardPipelineThroughput(t *testing.T) {
	if os.Getenv("GUARD_PIPELINE") == "" {
		t.Skip("set GUARD_PIPELINE=1 to run the pipeline-vs-serial throughput guard")
	}
	stages := Quick().SimBench(3, nil)
	byName := make(map[string]StageResult, len(stages))
	for _, s := range stages {
		byName[s.Stage] = s
	}
	serial, ok := byName["serial"]
	if !ok || serial.RefsPerSec <= 0 {
		t.Fatalf("no serial baseline in %+v", stages)
	}
	for _, name := range []string{"batch", "pipeline"} {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("stage %q missing from SimBench", name)
		}
		ratio := s.RefsPerSec / serial.RefsPerSec
		t.Logf("%-8s %12.0f refs/sec (%.2fx vs serial %.0f)", name, s.RefsPerSec, ratio, serial.RefsPerSec)
		if ratio < 0.95 {
			t.Errorf("%s path runs at %.2fx of serial (%.0f vs %.0f refs/sec): the %s hand-off has regressed",
				name, ratio, s.RefsPerSec, serial.RefsPerSec, name)
		}
	}
}

// TestGuardReplayThroughput is the tripwire for the address-sliced
// parallel simulation: at two or more workers, sliced end-to-end replay
// must not fall below its serial baseline — the point of slicing is that
// the simulation itself scales, and a regression in the scatter or queue
// hand-off would silently erase that.
//
// Parallel consumption cannot beat serial wall-clock on a single core
// (the scatter is added work), so the guard skips there; the results
// README records the same caveat for the committed BENCH_REPLAY numbers.
// Like the pipeline guard it measures real throughput and is opt-in: set
// GUARD_REPLAY=1 (make guard-replay) on a quiet multicore host. The 5%
// allowance absorbs scheduler noise.
func TestGuardReplayThroughput(t *testing.T) {
	if os.Getenv("GUARD_REPLAY") == "" {
		t.Skip("set GUARD_REPLAY=1 to run the sliced-vs-serial replay throughput guard")
	}
	if runtime.NumCPU() < 2 {
		t.Skipf("host has %d CPU; sliced replay cannot beat serial without parallelism", runtime.NumCPU())
	}
	c := Scaled()
	c.MatmulN = 128 // full geometry, reduced trace: measurement, not a soak
	res, err := c.ReplayBench(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sliced) < 2 {
		t.Fatalf("sliced sweep has %d stages, want serial + at least one sliced", len(res.Sliced))
	}
	serial := res.Sliced[0]
	for _, s := range res.Sliced[1:] {
		t.Logf("sliced w=%d s=%d %12.0f refs/sec (%.2fx vs serial %.0f)",
			s.Workers, s.Slices, s.RefsPerSec, s.SpeedupVsSerial, serial.RefsPerSec)
		if s.Workers >= 2 && s.SpeedupVsSerial < 0.95 {
			t.Errorf("sliced replay at %d workers runs at %.2fx of serial (%.0f vs %.0f refs/sec): the fan-out has regressed",
				s.Workers, s.SpeedupVsSerial, s.RefsPerSec, serial.RefsPerSec)
		}
	}
}
