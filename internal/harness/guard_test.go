package harness

import (
	"os"
	"testing"
)

// TestGuardPipelineThroughput is the regression tripwire for the
// reference-stream paths: the batched and pipelined stages must not fall
// below the serial per-reference path. The pipeline once shipped at 0.82x
// of serial (double-copying chunks through a churning sync.Pool); this
// guard exists so that class of regression fails a build loudly instead
// of surfacing months later in a benchmark record.
//
// It measures real throughput, so it is opt-in: set GUARD_PIPELINE=1
// (make guard-pipeline) to run it on a quiet host. The 5% allowance
// absorbs scheduler noise that best-of-3 at the quick geometry does not.
func TestGuardPipelineThroughput(t *testing.T) {
	if os.Getenv("GUARD_PIPELINE") == "" {
		t.Skip("set GUARD_PIPELINE=1 to run the pipeline-vs-serial throughput guard")
	}
	stages := Quick().SimBench(3, nil)
	byName := make(map[string]StageResult, len(stages))
	for _, s := range stages {
		byName[s.Stage] = s
	}
	serial, ok := byName["serial"]
	if !ok || serial.RefsPerSec <= 0 {
		t.Fatalf("no serial baseline in %+v", stages)
	}
	for _, name := range []string{"batch", "pipeline"} {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("stage %q missing from SimBench", name)
		}
		ratio := s.RefsPerSec / serial.RefsPerSec
		t.Logf("%-8s %12.0f refs/sec (%.2fx vs serial %.0f)", name, s.RefsPerSec, ratio, serial.RefsPerSec)
		if ratio < 0.95 {
			t.Errorf("%s path runs at %.2fx of serial (%.0f vs %.0f refs/sec): the %s hand-off has regressed",
				name, ratio, s.RefsPerSec, serial.RefsPerSec, name)
		}
	}
}
