package harness

import (
	"fmt"

	"threadsched/internal/apps/matmul"
	"threadsched/internal/apps/sor"
	"threadsched/internal/cache"
	"threadsched/internal/core"
	"threadsched/internal/sim"
	"threadsched/internal/smp"
	"threadsched/internal/stealing"
	"threadsched/internal/tables"
	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

// Ablations runs the design-choice experiments DESIGN.md calls out and
// that go beyond the paper's own tables: bin tour order, symmetric hint
// folding, and page-placement effects on a physically indexed L2.
func (c Config) Ablations(prog Progress) *tables.Table {
	t := &tables.Table{
		ID:      "Ablations",
		Title:   "Design-choice experiments (scaled geometry)",
		Columns: []string{"experiment", "setting", "metric", "value"},
	}

	// Bin tour order on the N-body workload (true 3-D bin structure).
	m := c.NBodyR8000()
	for _, tour := range []core.TourOrder{core.TourAllocation, core.TourMorton, core.TourHilbert} {
		prog.printf("ablation: tour %v", tour)
		r := c.RunNBodyThreadedTour(m, tour)
		t.AddRow("bin tour (N-body)", tour.String(), "L2 misses",
			fmt.Sprintf("%d", r.Summary.L2.Misses))
	}

	// Symmetric hint folding: bins used for a symmetric hint pattern.
	for _, fold := range []bool{false, true} {
		s := core.New(core.Config{CacheSize: 1 << 20, BlockSize: 1 << 16, FoldSymmetric: fold})
		for j := 0; j < 4096; j++ {
			s.Fork(func(int, int) {}, j, 0, uint64(j%16)<<16, uint64((j/16)%16)<<16, 0)
		}
		setting := "off"
		if fold {
			setting = "on"
		}
		t.AddRow("hint folding", setting, "bins used", fmt.Sprintf("%d", s.Stats().BinsUsed))
		s.Run(false)
	}

	// Page placement under a physically indexed L2 (threaded SOR trace).
	for _, pol := range []vm.Policy{vm.IdentityPolicy{}, vm.SequentialPolicy{}, vm.RandomPolicy{Seed: 9}} {
		prog.printf("ablation: placement %s", pol.Name())
		pt, err := vm.NewPageTable(vm.DefaultPageSize, pol)
		if err != nil {
			panic(err) // static policies; cannot fail
		}
		sm := c.R8000()
		h := cache.MustNewHierarchy(sm.Caches, pt)
		cpu := sim.NewCPU(h)
		as := vm.NewAddressSpace()
		tr := sor.NewTracedArray(cpu, as, c.SORN)
		th := sim.NewThreads(cpu, as, sor.ThreadedScheduler(sm.L2CacheSize()))
		tr.Threaded(min(c.SORIters, 10), th)
		st := h.L2().Stats()
		t.AddRow("page placement (SOR)", pol.Name(), "L2 conflict misses",
			fmt.Sprintf("%d", st.Conflict))
	}

	// Per-bin working sets (the mechanism behind Figure 4): with block =
	// C/2 per dimension, each matmul bin's distinct-line footprint must
	// sit at or under the cache size.
	prog.printf("ablation: bin footprint")
	maxFP, avgFP, fpBins := c.matmulBinFootprints()
	sm := c.R8000()
	t.AddRow("bin footprint (matmul)", fmt.Sprintf("%d bins", fpBins), "max / avg bytes vs C",
		fmt.Sprintf("%d / %d vs %d", maxFP, avgFP, sm.L2CacheSize()))

	// SMP extension (§7): locality-bin dispatch vs thread scatter on a
	// 4-processor machine with coherent private caches.
	nb := c.NBodyN / 2
	for _, pol := range []smp.Policy{smp.LocalityBins, smp.Scatter} {
		prog.printf("ablation: smp %v", pol)
		r, err := smp.NBodyExperiment(smp.Config{Procs: 4, Machine: m, Coherence: true}, nb, pol, 42)
		if err != nil {
			panic(err) // config is static and valid
		}
		t.AddRow("SMP 4-proc (N-body)", pol.String(), "L2 misses / invalidations / speedup",
			fmt.Sprintf("%d / %d / %.2fx", r.L2Misses, r.Stats.Invalidations, r.Speedup()))
	}

	// Work stealing (the modern default scheduler, cf. the paper's Cilk
	// citation) on the same multiprocessor, same workload.
	prog.printf("ablation: work stealing")
	ws, steals, err := stealing.NBodyExperiment(
		smp.Config{Procs: 4, Machine: m, Coherence: true}, nb, 42)
	if err != nil {
		panic(err)
	}
	t.AddRow("SMP 4-proc (N-body)", fmt.Sprintf("work-stealing (%d steals)", steals),
		"L2 misses / invalidations / speedup",
		fmt.Sprintf("%d / %d / %.2fx", ws.L2Misses, ws.Stats.Invalidations, ws.Speedup()))

	t.AddNote("tour orders ablate §2.3's 'preferably the shortest path'; folding ablates its 50%% bin reduction;")
	t.AddNote("page placement ablates §2.2's virtual-memory effect on physically indexed caches;")
	t.AddNote("the SMP rows demonstrate §7's future-work conjecture (bin-granular dispatch on coherent private caches)")
	return t
}

// lineFootprint counts distinct cache lines touched, resettable per bin.
type lineFootprint struct {
	shift uint
	lines map[uint64]struct{}
}

func (f *lineFootprint) Record(r trace.Ref) {
	if r.Kind == trace.IFetch {
		return // the shared text segment is not part of a bin's data set
	}
	f.lines[r.Addr>>f.shift] = struct{}{}
}

func (f *lineFootprint) bytes() uint64 { return uint64(len(f.lines)) << f.shift }

func (f *lineFootprint) reset() { f.lines = make(map[uint64]struct{}) }

// matmulBinFootprints runs the threaded matmul and measures each bin's
// distinct-data-line footprint, returning the max and mean in bytes and
// the bin count.
func (c Config) matmulBinFootprints() (maxBytes, avgBytes uint64, bins int) {
	m := c.R8000()
	fp := &lineFootprint{shift: 7, lines: make(map[uint64]struct{})} // 128 B lines
	cpu := sim.NewCPU(fp)
	as := vm.NewAddressSpace()
	tr := matmul.NewTraced(cpu, as, c.MatmulN)
	sched := matmul.ThreadedScheduler(m.L2CacheSize())
	th := sim.NewThreads(cpu, as, sched)

	var sizes []uint64
	flush := func() {
		if len(fp.lines) > 0 {
			sizes = append(sizes, fp.bytes())
		}
		fp.reset()
	}
	tr.ThreadedEach(th, func(bin, threads int) { flush() })
	flush()

	if len(sizes) < 3 {
		return 0, 0, 0
	}
	// The first segment holds the pre-run transpose and fork traffic, and
	// the last mixes the final bin with the post-run transpose; measure
	// the clean interior bins.
	sizes = sizes[1 : len(sizes)-1]
	var sum uint64
	for _, s := range sizes {
		if s > maxBytes {
			maxBytes = s
		}
		sum += s
	}
	if len(sizes) == 0 {
		return 0, 0, 0
	}
	return maxBytes, sum / uint64(len(sizes)), len(sizes)
}
