package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"threadsched/internal/obs"
)

// TestGoldenEquivalenceObserved pins the tentpole's non-interference
// contract at the harness level: attaching the full observability layer
// (metrics + timeline) to a run must leave every simulation result —
// reference tallies, miss classification, modelled time, scheduler
// occupancy — bit-identical, across all three reference-stream modes.
func TestGoldenEquivalenceObserved(t *testing.T) {
	for _, app := range eqApps() {
		app := app
		t.Run(app.name, func(t *testing.T) {
			t.Parallel()
			for _, mode := range eqModes {
				plain := eqConfig()
				plain.Mode = mode
				want := app.run(plain)

				observed := eqConfig()
				observed.Mode = mode
				observed.Obs = obs.New(4).WithTimeline()
				got := app.run(observed)
				requireSameResult(t, "observed/"+mode.String(), want, got)

				// The run must actually have been observed: the threaded
				// variants all drive a scheduler and a CPU.
				snap := observed.Obs.Snapshot()
				var refs, threads bool
				for _, c := range snap.Counters {
					refs = refs || (c.Name == "sim.refs" && c.Total > 0)
					threads = threads || (c.Name == "sched.threads_run" && c.Total > 0)
				}
				if !refs || !threads {
					t.Errorf("%s: observed run produced an empty snapshot: %+v", mode, snap)
				}
			}
		})
	}
}

// TestGoldenEquivalenceObservedTable renders one full miss table with the
// observability layer on a parallel pipelined pool — the configuration
// with every instrumented path live at once — and demands byte-identical
// text, plus a valid timeline.
func TestGoldenEquivalenceObservedTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SOR miss-table simulations twice")
	}
	serial := eqConfig()
	serial.Mode = ModeSerial
	want := serial.Table7(nil).String()

	observed := eqConfig()
	observed.Mode = ModePipelined
	observed.Parallel = 4
	observed.Obs = obs.New(8).WithTimeline()
	if got := observed.Table7(nil).String(); got != want {
		t.Errorf("observed render diverges from serial:\n--- serial ---\n%s\n--- observed ---\n%s", want, got)
	}
	var buf bytes.Buffer
	if err := observed.Obs.Timeline().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("timeline is not valid JSON: %s", buf.String())
	}
}
