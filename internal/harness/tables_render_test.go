package harness

import (
	"strings"
	"testing"
)

// Every experiment builder must produce a well-formed table at the Quick
// geometry: expected row counts, paper values present, no empty cells in
// the first column.
func TestAllExperimentTablesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every simulation")
	}
	c := Quick()
	c.Table1Threads = 1 << 14
	var prog Progress

	cases := []struct {
		name     string
		build    func() interface{ String() string }
		rows     int
		contains []string
	}{
		{"table1", func() interface{ String() string } { return c.Table1() }, 4, []string{"Fork", "1.38"}},
		{"table2", func() interface{ String() string } { return c.Table2(prog) }, 5, []string{"Interchanged", "102.98", "scheduler:"}},
		{"table3", func() interface{ String() string } { return c.Table3(prog) }, 9, []string{"L2 capacity", "68025"}},
		{"table4", func() interface{ String() string } { return c.Table4(prog) }, 3, []string{"Cache-conscious", "5.21"}},
		{"table5", func() interface{ String() string } { return c.Table5(prog) }, 9, []string{"5251"}},
		{"table6", func() interface{ String() string } { return c.Table6(prog) }, 3, []string{"Hand tiled", "26.90"}},
		{"table7", func() interface{ String() string } { return c.Table7(prog) }, 9, []string{"7294"}},
		{"table8", func() interface{ String() string } { return c.Table8(prog) }, 2, []string{"153.81"}},
		{"table9", func() interface{ String() string } { return c.Table9(prog) }, 9, []string{"1131"}},
		{"figure4", func() interface{ String() string } { return c.Figure4(prog) }, 8, []string{"C/32", "4C"}},
		{"ablations", func() interface{ String() string } { return c.Ablations(prog) }, 12, []string{"hilbert", "work-stealing", "bin footprint"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			out := tc.build().String()
			for _, want := range tc.contains {
				if !strings.Contains(out, want) {
					t.Errorf("%s output missing %q:\n%s", tc.name, want, out)
				}
			}
			// Count body rows: lines after the separator, before notes.
			lines := strings.Split(out, "\n")
			rows := 0
			inBody := false
			for _, l := range lines {
				switch {
				case strings.HasPrefix(strings.TrimSpace(l), "---"):
					inBody = true
				case strings.HasPrefix(strings.TrimSpace(l), "note:"), strings.TrimSpace(l) == "":
					inBody = false
				case inBody:
					rows++
				}
			}
			if rows != tc.rows {
				t.Errorf("%s has %d body rows, want %d:\n%s", tc.name, rows, tc.rows, out)
			}
		})
	}
}
