package harness

import (
	"strconv"
	"time"

	"threadsched/internal/apps/matmul"
	"threadsched/internal/apps/nbody"
	"threadsched/internal/apps/pde"
	"threadsched/internal/apps/sor"
	"threadsched/internal/core"
)

// AppResult is one application's native-kernel benchmark from AppBench:
// best-of-N wall times for the pre-optimization serial kernel, the
// optimized serial kernel, the threaded variant on the serial
// scheduler, and the threaded variant through the parallel machinery at
// several worker counts.
type AppResult struct {
	// App names the workload: "matmul", "sor", "pde", or "nbody".
	App string `json:"app"`
	// Size describes the problem geometry measured.
	Size string `json:"size"`
	// Unit names the Throughput unit.
	Unit string `json:"unit"`
	// SerialRefNS is the pre-optimization serial kernel's best wall time.
	SerialRefNS int64 `json:"serial_ref_ns"`
	// SerialNS is the optimized serial kernel's best wall time.
	SerialNS int64 `json:"serial_ns"`
	// ThreadedNS is the threaded variant on the serial scheduler.
	ThreadedNS int64 `json:"threaded_ns"`
	// ParallelNS maps worker count ("1", "2", "4") to the threaded
	// variant's best wall time through the parallel scheduler.
	ParallelNS map[string]int64 `json:"parallel_ns"`
	// KernelRefNS and KernelNS, when set, time just the optimized inner
	// kernel where the serial times above include phases the optimization
	// does not target (nbody: the tree build, while the step time is
	// dominated by the force traversal). KernelSpeedup then compares
	// these; otherwise it is SerialRefNS / SerialNS.
	KernelRefNS int64 `json:"kernel_ref_ns,omitempty"`
	KernelNS    int64 `json:"kernel_ns,omitempty"`
	// KernelSpeedup is the optimized inner kernel's win over the
	// pre-optimization kernel.
	KernelSpeedup float64 `json:"kernel_speedup"`
	// ParallelSpeedup4W is ThreadedNS / ParallelNS["4"].
	ParallelSpeedup4W float64 `json:"parallel_speedup_4w"`
	// Throughput is the optimized serial kernel's rate in Unit.
	Throughput float64 `json:"throughput"`
}

// appWorkers is the worker-count sweep every app's parallel variant runs.
var appWorkers = []int{1, 2, 4}

// bestOf runs fn reps times and returns the minimum wall time: the
// least-interrupted observation, the standard estimator for a
// deterministic kernel on a noisy host.
func bestOf(reps int, fn func()) int64 {
	best := int64(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		fn()
		d := time.Since(start).Nanoseconds()
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

// appBenchL2 is the scheduler cache-size parameter all app benchmarks
// share (a 2 MiB L2, the paper's R8000 configuration scaled down).
const appBenchL2 = 2 << 20

func appBenchMatmul(reps int) AppResult {
	const n = 256
	C := make([]float64, n*n)
	A := make([]float64, n*n)
	B := make([]float64, n*n)
	matmul.Fill(A, n, 1.0)
	matmul.Fill(B, n, 2.0)

	r := AppResult{App: "matmul", Size: "n=256", Unit: "GFLOP/s",
		ParallelNS: map[string]int64{}}
	r.SerialRefNS = bestOf(reps, func() { matmul.TiledTransposedRef(C, A, B, n, 0) })
	r.SerialNS = bestOf(reps, func() { matmul.TiledTransposed(C, A, B, n, 0) })
	sched := matmul.ThreadedScheduler(appBenchL2)
	r.ThreadedNS = bestOf(reps, func() { matmul.Threaded(C, A, B, n, sched) })
	for _, w := range appWorkers {
		ps := matmul.ParallelScheduler(appBenchL2, w)
		r.ParallelNS[strconv.Itoa(w)] = bestOf(reps, func() { matmul.Threaded(C, A, B, n, ps) })
		ps.Close()
	}
	r.Throughput = 2 * float64(n) * float64(n) * float64(n) / float64(r.SerialNS)
	return r
}

func appBenchSOR(reps int) AppResult {
	const n, iters = 501, 10
	a := sor.NewArray(n)

	r := AppResult{App: "sor", Size: "n=501 t=10", Unit: "Mupdates/s",
		ParallelNS: map[string]int64{}}
	r.SerialRefNS = bestOf(reps, func() { sor.UntiledRef(a, n, iters) })
	r.SerialNS = bestOf(reps, func() { sor.Untiled(a, n, iters) })
	ds := core.NewDep(core.Config{CacheSize: appBenchL2, BlockSize: appBenchL2 / 2})
	r.ThreadedNS = bestOf(reps, func() { _ = sor.ThreadedExact(a, n, iters, ds) })
	for _, w := range appWorkers {
		ps := sor.ParallelScheduler(appBenchL2, w)
		r.ParallelNS[strconv.Itoa(w)] = bestOf(reps, func() { _ = sor.ThreadedExact(a, n, iters, ps) })
		ps.Close()
	}
	r.Throughput = float64(iters) * float64(n-2) * float64(n-2) / float64(r.SerialNS) * 1e3
	return r
}

func appBenchPDE(reps int) AppResult {
	const n, iters = 513, 5
	g := pde.NewGrid(n)

	r := AppResult{App: "pde", Size: "n=513 iters=5", Unit: "Mupdates/s",
		ParallelNS: map[string]int64{}}
	r.SerialRefNS = bestOf(reps, func() { pde.CacheConsciousRef(g, iters) })
	r.SerialNS = bestOf(reps, func() { pde.CacheConscious(g, iters) })
	ds := core.NewDep(core.Config{CacheSize: appBenchL2, BlockSize: appBenchL2 / 2})
	r.ThreadedNS = bestOf(reps, func() { _ = pde.ThreadedExact(g, iters, ds) })
	for _, w := range appWorkers {
		ps := pde.ParallelScheduler(appBenchL2, w)
		r.ParallelNS[strconv.Itoa(w)] = bestOf(reps, func() { _ = pde.ThreadedExact(g, iters, ps) })
		ps.Close()
	}
	r.Throughput = float64(iters) * float64(n-2) * float64(n-2) / float64(r.SerialNS) * 1e3
	return r
}

func appBenchNBody(reps int) AppResult {
	const bodies = 4096
	r := AppResult{App: "nbody", Size: "bodies=4096", Unit: "bodies/s",
		ParallelNS: map[string]int64{}}

	sRef := nbody.NewSystem(bodies, 42)
	r.SerialRefNS = bestOf(reps, func() { nbody.StepUnthreadedRef(sRef, nil) })

	s := nbody.NewSystem(bodies, 42)
	tree := &nbody.Tree{}
	nbody.StepUnthreadedReuse(s, tree, nil) // warm the node pool
	r.SerialNS = bestOf(reps, func() { nbody.StepUnthreadedReuse(s, tree, nil) })

	// The optimized inner kernel is the tree build (iterative, pooled
	// nodes); the step is dominated by the force traversal, so time the
	// build on its own as well.
	r.KernelRefNS = bestOf(reps, func() { nbody.BuildRef(s, nil) })
	r.KernelNS = bestOf(reps, func() { tree.Rebuild(s, nil) })

	st := nbody.NewSystem(bodies, 42)
	sched := nbody.ThreadedScheduler(appBenchL2)
	tt := &nbody.Tree{}
	r.ThreadedNS = bestOf(reps, func() { nbody.StepThreadedReuse(st, tt, sched, nil) })
	for _, w := range appWorkers {
		sp := nbody.NewSystem(bodies, 42)
		ps := nbody.ParallelScheduler(appBenchL2, w)
		tp := &nbody.Tree{}
		r.ParallelNS[strconv.Itoa(w)] = bestOf(reps, func() { nbody.StepThreadedReuse(sp, tp, ps, nil) })
		ps.Close()
	}
	r.Throughput = float64(bodies) / float64(r.SerialNS) * 1e9
	return r
}

// AppBench benchmarks the paper's four application kernels: serial
// reference vs optimized inner loop, and the threaded variant serial vs
// through the parallel scheduler at 1/2/4 workers. reps is the best-of
// repetition count per measurement.
func AppBench(reps int, prog Progress) []AppResult {
	if reps < 1 {
		reps = 1
	}
	benches := []struct {
		name string
		fn   func(int) AppResult
	}{
		{"matmul", appBenchMatmul},
		{"sor", appBenchSOR},
		{"pde", appBenchPDE},
		{"nbody", appBenchNBody},
	}
	var out []AppResult
	for _, b := range benches {
		prog.printf("appbench: %s", b.name)
		r := b.fn(reps)
		switch {
		case r.KernelNS > 0:
			r.KernelSpeedup = float64(r.KernelRefNS) / float64(r.KernelNS)
		case r.SerialNS > 0:
			r.KernelSpeedup = float64(r.SerialRefNS) / float64(r.SerialNS)
		}
		if p4 := r.ParallelNS["4"]; p4 > 0 {
			r.ParallelSpeedup4W = float64(r.ThreadedNS) / float64(p4)
		}
		out = append(out, r)
	}
	return out
}
