package harness

import (
	"threadsched/internal/apps/matmul"
	"threadsched/internal/apps/nbody"
	"threadsched/internal/apps/pde"
	"threadsched/internal/apps/sor"
	"threadsched/internal/core"
	"threadsched/internal/machine"
	"threadsched/internal/obs"
	"threadsched/internal/sim"
	"threadsched/internal/vm"
)

// schedOverride builds a scheduler for a threaded variant: blockSize 0
// selects the variant's paper default; tour selects the bin traversal;
// obs and topo (set by the runner constructors from Config.Obs and
// Config.Topology) attach the observability layer and the cache-hierarchy
// description.
type schedOverride struct {
	blockSize uint64
	tour      core.TourOrder
	obs       *obs.Obs
	topo      *core.Topology
}

func (o schedOverride) build(l2 uint64, defaultBlock uint64) *core.Scheduler {
	block := o.blockSize
	if block == 0 {
		block = defaultBlock
	}
	return core.New(core.Config{CacheSize: l2, BlockSize: block, Tour: o.tour, Obs: o.obs, Topology: o.topo})
}

// Matrix multiply runners (Tables 2, 3; Figure 4).

// MatmulVariant names a matmul variant.
type MatmulVariant int

// Matmul variant identifiers, in Table 2 row order.
const (
	MatmulInterchanged MatmulVariant = iota
	MatmulTransposed
	MatmulTiledInterchanged
	MatmulTiledTransposed
	MatmulThreaded
)

func (c Config) matmulRunner(v MatmulVariant, m machine.Machine, o schedOverride) runner {
	n := c.MatmulN
	o.obs = c.Obs
	o.topo = c.Topology
	return func(cpu *sim.CPU, as *vm.AddressSpace) *core.Scheduler {
		tr := matmul.NewTraced(cpu, as, n)
		switch v {
		case MatmulInterchanged:
			tr.Interchanged()
		case MatmulTransposed:
			tr.Transposed()
		case MatmulTiledInterchanged:
			tr.TiledInterchanged(matmul.TileFor(m.L2CacheSize()))
		case MatmulTiledTransposed:
			tr.TiledTransposed(matmul.TileFor(m.L2CacheSize()))
		case MatmulThreaded:
			sched := o.build(m.L2CacheSize(), m.L2CacheSize()/2)
			th := sim.NewThreads(cpu, as, sched)
			tr.Threaded(th)
			return sched
		}
		return nil
	}
}

// RunMatmul simulates one matmul variant on machine m.
func (c Config) RunMatmul(v MatmulVariant, m machine.Machine) SimResult {
	return c.simulate(m, c.matmulRunner(v, m, schedOverride{}))
}

// RunMatmulThreadedBlock simulates the threaded matmul with an explicit
// scheduler block size (Figure 4 sweeps this).
func (c Config) RunMatmulThreadedBlock(m machine.Machine, block uint64) SimResult {
	return c.simulate(m, c.matmulRunner(MatmulThreaded, m, schedOverride{blockSize: block}))
}

// PDE runners (Tables 4, 5; Figure 4).

// PDEVariant names a PDE variant.
type PDEVariant int

// PDE variant identifiers, in Table 4 row order.
const (
	PDERegular PDEVariant = iota
	PDECacheConscious
	PDEThreaded
)

func (c Config) pdeRunner(v PDEVariant, m machine.Machine, o schedOverride) runner {
	n, iters := c.PDEN, c.PDEIters
	o.obs = c.Obs
	o.topo = c.Topology
	return func(cpu *sim.CPU, as *vm.AddressSpace) *core.Scheduler {
		g := pde.NewTracedGrid(cpu, as, n)
		switch v {
		case PDERegular:
			g.Regular(iters)
		case PDECacheConscious:
			g.CacheConscious(iters)
		case PDEThreaded:
			sched := o.build(m.L2CacheSize(), m.L2CacheSize()/2)
			th := sim.NewThreads(cpu, as, sched)
			g.Threaded(iters, th)
			return sched
		}
		return nil
	}
}

// RunPDE simulates one PDE variant on machine m.
func (c Config) RunPDE(v PDEVariant, m machine.Machine) SimResult {
	return c.simulate(m, c.pdeRunner(v, m, schedOverride{}))
}

// RunPDEThreadedBlock simulates the threaded PDE with an explicit block
// size.
func (c Config) RunPDEThreadedBlock(m machine.Machine, block uint64) SimResult {
	return c.simulate(m, c.pdeRunner(PDEThreaded, m, schedOverride{blockSize: block}))
}

// SOR runners (Tables 6, 7; Figure 4).

// SORVariant names a SOR variant.
type SORVariant int

// SOR variant identifiers, in Table 6 row order.
const (
	SORUntiled SORVariant = iota
	SORHandTiled
	SORThreaded
)

func (c Config) sorRunner(v SORVariant, m machine.Machine, o schedOverride) runner {
	n, iters := c.SORN, c.SORIters
	o.obs = c.Obs
	o.topo = c.Topology
	return func(cpu *sim.CPU, as *vm.AddressSpace) *core.Scheduler {
		tr := sor.NewTracedArray(cpu, as, n)
		switch v {
		case SORUntiled:
			tr.Untiled(iters)
		case SORHandTiled:
			s, tb := c.SORStrip, 0
			if s == 0 {
				s, tb = sor.TileParams(n, iters, m.L2CacheSize())
			}
			tr.HandTiled(iters, s, tb)
		case SORThreaded:
			sched := o.build(m.L2CacheSize(), m.L2CacheSize()/2)
			th := sim.NewThreads(cpu, as, sched)
			tr.Threaded(iters, th)
			return sched
		}
		return nil
	}
}

// RunSOR simulates one SOR variant on machine m.
func (c Config) RunSOR(v SORVariant, m machine.Machine) SimResult {
	return c.simulate(m, c.sorRunner(v, m, schedOverride{}))
}

// RunSORThreadedBlock simulates the threaded SOR with an explicit block
// size.
func (c Config) RunSORThreadedBlock(m machine.Machine, block uint64) SimResult {
	return c.simulate(m, c.sorRunner(SORThreaded, m, schedOverride{blockSize: block}))
}

// N-body runners (Tables 8, 9; Figure 4).

// NBodyVariant names an N-body variant.
type NBodyVariant int

// N-body variant identifiers, in Table 8 row order.
const (
	NBodyUnthreaded NBodyVariant = iota
	NBodyThreaded
)

func (c Config) nbodyRunner(v NBodyVariant, m machine.Machine, steps int, o schedOverride) runner {
	n := c.NBodyN
	o.obs = c.Obs
	o.topo = c.Topology
	return func(cpu *sim.CPU, as *vm.AddressSpace) *core.Scheduler {
		s := nbody.NewSystem(n, 42)
		tr := nbody.NewTracer(cpu, as, n)
		switch v {
		case NBodyUnthreaded:
			for i := 0; i < steps; i++ {
				nbody.StepUnthreaded(s, tr)
			}
		case NBodyThreaded:
			sched := o.build(m.L2CacheSize(), core.DefaultBlockSize(m.L2CacheSize(), 3))
			th := sim.NewThreads(cpu, as, sched)
			for i := 0; i < steps; i++ {
				nbody.StepThreadedTraced(s, th, tr)
			}
			return sched
		}
		return nil
	}
}

// RunNBody simulates one N-body variant for the given number of steps.
func (c Config) RunNBody(v NBodyVariant, m machine.Machine, steps int) SimResult {
	return c.simulate(m, c.nbodyRunner(v, m, steps, schedOverride{}))
}

// RunNBodyThreadedBlock simulates the threaded N-body (one step) with an
// explicit block size.
func (c Config) RunNBodyThreadedBlock(m machine.Machine, block uint64) SimResult {
	return c.simulate(m, c.nbodyRunner(NBodyThreaded, m, 1, schedOverride{blockSize: block}))
}

// RunNBodyThreadedTour simulates the threaded N-body with a bin tour
// order, for the tour ablation.
func (c Config) RunNBodyThreadedTour(m machine.Machine, tour core.TourOrder) SimResult {
	return c.simulate(m, c.nbodyRunner(NBodyThreaded, m, 1, schedOverride{tour: tour}))
}
