// Package harness runs the paper's experiments — Tables 1 through 9 and
// Figure 4 — against the reproduction's simulator stack and renders
// paper-vs-measured tables.
//
// Geometry scaling: by default every experiment runs at laptop scale with
// cache capacities divided by Config.Scale and workload data shrunk to
// preserve the paper's data-to-cache ratios, so the *shape* of each result
// (who wins, by what factor, where the crossover falls) is reproduced in
// seconds instead of hours. Config.Full() selects the paper's exact sizes.
package harness

import (
	"time"

	"threadsched/internal/cache"
	"threadsched/internal/core"
	"threadsched/internal/machine"
	"threadsched/internal/sim"
	"threadsched/internal/vm"
)

// Config selects workload sizes and cache scaling for the experiments.
type Config struct {
	// Scale divides cache capacities (power of two). Workload sizes below
	// should shrink consistently; the constructors handle this.
	Scale uint64
	// NBodyScale is the cache scale for the N-body experiments. The
	// Barnes–Hut traversal footprint shrinks only logarithmically in n,
	// so N-body scales less aggressively than the dense kernels.
	NBodyScale uint64

	MatmulN    int
	PDEN       int
	PDEIters   int
	SORN       int
	SORIters   int
	SORStrip   int // 0 = derive from cache size
	NBodyN     int
	NBodySteps int

	// Table1Threads is the null-thread count for the overhead benchmark.
	Table1Threads int
}

// Scaled returns the default laptop-scale configuration: caches ÷16
// (N-body ÷16), matmul n=256 (paper 1024), PDE n=513 (paper 2049), SOR
// n=501 (paper 2005), N-body 8,000 bodies (paper 64,000). Every data:cache
// ratio matches the paper's.
func Scaled() Config {
	return Config{
		Scale:         16,
		NBodyScale:    16,
		MatmulN:       256,
		PDEN:          513,
		PDEIters:      5,
		SORN:          501,
		SORIters:      30,
		NBodyN:        8000,
		NBodySteps:    4,
		Table1Threads: 1 << 20,
	}
}

// Quick returns a further-reduced configuration used by the Go benchmark
// harness (bench_test.go), where each experiment may run several times:
// caches ÷64, matmul n=128, PDE n=257, SOR n=251, N-body 4,000 bodies.
func Quick() Config {
	return Config{
		Scale:         64,
		NBodyScale:    16,
		MatmulN:       128,
		PDEN:          257,
		PDEIters:      5,
		SORN:          251,
		SORIters:      10,
		NBodyN:        4000,
		NBodySteps:    2,
		Table1Threads: 1 << 17,
	}
}

// Full returns the paper's exact sizes. Simulating the matmul trace at
// n=1024 processes several billion references per variant; expect hours.
func Full() Config {
	return Config{
		Scale:         1,
		NBodyScale:    1,
		MatmulN:       1024,
		PDEN:          2049,
		PDEIters:      5,
		SORN:          2005,
		SORIters:      30,
		SORStrip:      18,
		NBodyN:        64000,
		NBodySteps:    4,
		Table1Threads: 1 << 20,
	}
}

// R8000 returns the scaled R8000 model for dense-kernel experiments.
func (c Config) R8000() machine.Machine { return machine.R8000().Scaled(c.Scale) }

// R10000 returns the scaled R10000 model.
func (c Config) R10000() machine.Machine { return machine.R10000().Scaled(c.Scale) }

// NBodyR8000 and NBodyR10000 return the N-body-scaled machines.
func (c Config) NBodyR8000() machine.Machine { return machine.R8000().Scaled(c.NBodyScale) }

// NBodyR10000 returns the N-body-scaled R10000 model.
func (c Config) NBodyR10000() machine.Machine { return machine.R10000().Scaled(c.NBodyScale) }

// SimResult is one traced run through one machine model.
type SimResult struct {
	Machine      machine.Machine
	Instructions uint64
	Summary      cache.Summary
	// Time is the cost-model estimate (the paper's crude analysis).
	Time time.Duration
	// Sched holds the last scheduler run's occupancy for threaded
	// variants (zero otherwise).
	Sched core.RunStats
}

// Seconds returns the modelled time in seconds.
func (r SimResult) Seconds() float64 { return r.Time.Seconds() }

// runner is a traced workload variant: given a CPU and address space,
// execute and return the scheduler if one was used (else nil).
type runner func(cpu *sim.CPU, as *vm.AddressSpace) *core.Scheduler

// simulate runs one traced variant against one machine model.
func simulate(m machine.Machine, fn runner) SimResult {
	h := cache.MustNewHierarchy(m.Caches, nil)
	cpu := sim.NewCPU(h)
	as := vm.NewAddressSpace()
	sched := fn(cpu, as)
	res := SimResult{
		Machine:      m,
		Instructions: cpu.Instructions,
		Summary:      h.Summarize(),
	}
	cm := machine.CostModel{Machine: m}
	res.Time = cm.Estimate3(res.Instructions, res.Summary.L1Misses,
		res.Summary.L2.Misses, res.Summary.L3.Misses)
	if sched != nil {
		res.Sched = sched.LastRun()
	}
	return res
}

// Progress is an optional sink for per-run progress lines (nil to
// suppress); the CLI points it at stderr for the long sweeps.
type Progress func(format string, args ...any)

func (p Progress) printf(format string, args ...any) {
	if p != nil {
		p(format, args...)
	}
}
