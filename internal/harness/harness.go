// Package harness runs the paper's experiments — Tables 1 through 9 and
// Figure 4 — against the reproduction's simulator stack and renders
// paper-vs-measured tables.
//
// Geometry scaling: by default every experiment runs at laptop scale with
// cache capacities divided by Config.Scale and workload data shrunk to
// preserve the paper's data-to-cache ratios, so the *shape* of each result
// (who wins, by what factor, where the crossover falls) is reproduced in
// seconds instead of hours. Config.Full() selects the paper's exact sizes.
package harness

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"threadsched/internal/cache"
	"threadsched/internal/core"
	"threadsched/internal/machine"
	"threadsched/internal/obs"
	"threadsched/internal/sim"
	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

// Mode selects how a traced run feeds the cache simulator. All three
// modes are bit-exact: the hierarchy observes the identical reference
// sequence, so stats, miss classification, and rendered tables are
// byte-identical (enforced by the golden equivalence tests).
type Mode int

const (
	// ModeBatched (the default) buffers references in the model CPU and
	// hands them to the hierarchy in chunks — one virtual dispatch per
	// chunk instead of per reference.
	ModeBatched Mode = iota
	// ModeSerial is the original per-reference path: every emit is one
	// Recorder.Record interface call. Kept as the equivalence baseline.
	ModeSerial
	// ModePipelined batches and additionally moves the cache simulation
	// to its own goroutine behind a bounded SPSC chunk ring, overlapping
	// trace generation with simulation on multicore hosts.
	ModePipelined
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeBatched:
		return "batch"
	case ModeSerial:
		return "serial"
	case ModePipelined:
		return "pipeline"
	default:
		return "mode?"
	}
}

// Config selects workload sizes and cache scaling for the experiments.
type Config struct {
	// Scale divides cache capacities (power of two). Workload sizes below
	// should shrink consistently; the constructors handle this.
	Scale uint64
	// NBodyScale is the cache scale for the N-body experiments. The
	// Barnes–Hut traversal footprint shrinks only logarithmically in n,
	// so N-body scales less aggressively than the dense kernels.
	NBodyScale uint64

	MatmulN    int
	PDEN       int
	PDEIters   int
	SORN       int
	SORIters   int
	SORStrip   int // 0 = derive from cache size
	NBodyN     int
	NBodySteps int

	// Table1Threads is the null-thread count for the overhead benchmark.
	Table1Threads int

	// Mode selects the reference-stream path (batched by default).
	Mode Mode
	// Parallel bounds how many independent simulations a table runs
	// concurrently; 0 or 1 is serial. Experiments share nothing but
	// their table sink, so any value is exact.
	Parallel int

	// Obs, when non-nil, attaches the observability layer to every
	// simulation this Config runs: schedulers record their worker metrics
	// into it, pipelines their ring metrics, CPUs their reference counts,
	// and each harness job gets a wall-time histogram, a refs/sec gauge,
	// and a timeline span. Enabling it changes no simulation result (the
	// golden equivalence tests pin this).
	Obs *obs.Obs

	// Topology, when non-nil, threads a cache-hierarchy description into
	// every scheduler this Config builds (core.Config.Topology). The
	// simulated runs are single-worker, so the bin tour is unchanged — the
	// golden equivalence tests pin a 1-level topology bit-identical to
	// flat — but the per-level metrics and the tree partition become
	// observable for the hierarchical sweeps.
	Topology *core.Topology

	// Context, when non-nil, bounds every table this Config runs — and
	// every job inside it, mid-run: once the context is done, no further
	// simulation job starts, and running jobs cancel at their next
	// emission boundary (the CPU panics with a *sim.CancelledError, which
	// the per-job containment converts into an error; see RunJob). A
	// table rendered after cancellation covers only the jobs that
	// completed. Nil means run to completion.
	Context context.Context
}

// Scaled returns the default laptop-scale configuration: caches ÷16
// (N-body ÷16), matmul n=256 (paper 1024), PDE n=513 (paper 2049), SOR
// n=501 (paper 2005), N-body 8,000 bodies (paper 64,000). Every data:cache
// ratio matches the paper's.
func Scaled() Config {
	return Config{
		Scale:         16,
		NBodyScale:    16,
		MatmulN:       256,
		PDEN:          513,
		PDEIters:      5,
		SORN:          501,
		SORIters:      30,
		NBodyN:        8000,
		NBodySteps:    4,
		Table1Threads: 1 << 20,
	}
}

// Quick returns a further-reduced configuration used by the Go benchmark
// harness (bench_test.go), where each experiment may run several times:
// caches ÷64, matmul n=128, PDE n=257, SOR n=251, N-body 4,000 bodies.
func Quick() Config {
	return Config{
		Scale:         64,
		NBodyScale:    16,
		MatmulN:       128,
		PDEN:          257,
		PDEIters:      5,
		SORN:          251,
		SORIters:      10,
		NBodyN:        4000,
		NBodySteps:    2,
		Table1Threads: 1 << 17,
	}
}

// Full returns the paper's exact sizes. Simulating the matmul trace at
// n=1024 processes several billion references per variant; expect hours.
func Full() Config {
	return Config{
		Scale:         1,
		NBodyScale:    1,
		MatmulN:       1024,
		PDEN:          2049,
		PDEIters:      5,
		SORN:          2005,
		SORIters:      30,
		SORStrip:      18,
		NBodyN:        64000,
		NBodySteps:    4,
		Table1Threads: 1 << 20,
	}
}

// R8000 returns the scaled R8000 model for dense-kernel experiments.
func (c Config) R8000() machine.Machine { return machine.R8000().Scaled(c.Scale) }

// R10000 returns the scaled R10000 model.
func (c Config) R10000() machine.Machine { return machine.R10000().Scaled(c.Scale) }

// NBodyR8000 and NBodyR10000 return the N-body-scaled machines.
func (c Config) NBodyR8000() machine.Machine { return machine.R8000().Scaled(c.NBodyScale) }

// NBodyR10000 returns the N-body-scaled R10000 model.
func (c Config) NBodyR10000() machine.Machine { return machine.R10000().Scaled(c.NBodyScale) }

// SimResult is one traced run through one machine model.
type SimResult struct {
	Machine      machine.Machine
	Instructions uint64
	Summary      cache.Summary
	// Time is the cost-model estimate (the paper's crude analysis).
	Time time.Duration
	// Sched holds the last scheduler run's occupancy for threaded
	// variants (zero otherwise).
	Sched core.RunStats
}

// Seconds returns the modelled time in seconds.
func (r SimResult) Seconds() float64 { return r.Time.Seconds() }

// runner is a traced workload variant: given a CPU and address space,
// execute and return the scheduler if one was used (else nil).
type runner func(cpu *sim.CPU, as *vm.AddressSpace) *core.Scheduler

// simulate runs one traced variant against one machine model through the
// configured reference-stream mode. With Config.Obs attached, the run
// acquires a metrics track of its own and reports its wall time
// (sim.wall_ns), reference throughput (sim.refs_per_sec), and reference
// count (sim.refs, via the CPU) on it; the pipeline mode additionally
// records its ring metrics. None of it alters the reference stream.
func (c Config) simulate(m machine.Machine, fn runner) SimResult {
	h := cache.MustNewHierarchy(m.Caches, nil)
	var rec trace.Recorder = h
	var pipe *trace.Pipeline
	track := c.Obs.AcquireTrack()
	if c.Mode == ModePipelined {
		pipe = trace.NewPipeline(h, 0, 0).Observe(c.Obs, track)
		if c.Context != nil {
			pipe.WithContext(c.Context)
		}
		rec = pipe
	}
	cpu := sim.NewCPU(rec).Observe(c.Obs, track)
	if c.Context != nil {
		// Mid-run cancellation: once the context is done, the CPU panics
		// with a *sim.CancelledError at its next emission boundary, and
		// the per-job containment (runJobContained) converts it into an
		// error instead of a completed-but-meaningless result.
		cpu.WithCancel(c.Context)
	}
	if c.Mode != ModeSerial {
		cpu.Buffer(0)
	}
	as := vm.NewAddressSpace()
	closed := false
	if pipe != nil {
		defer func() {
			if closed {
				return
			}
			// The job is unwinding — a thread panic or a cancellation —
			// without having closed the pipeline. Release the consumer
			// goroutine, or it parks on the ring forever: in a server
			// running thousands of jobs, every contained panic would leak
			// a goroutine and its chunk buffers. The bound keeps even a
			// consumer wedged inside the hierarchy from hanging the
			// unwind.
			ctx, stop := context.WithTimeout(context.Background(), 5*time.Second)
			defer stop()
			_ = pipe.CloseContext(ctx)
		}()
	}
	var start time.Time
	if c.Obs.Enabled() {
		start = time.Now()
	}
	sched := fn(cpu, as)
	cpu.Flush()
	if pipe != nil {
		closed = true
		// A consumer failure means the hierarchy missed references and
		// every number below is wrong; treat it like any other job panic
		// so runJobs contains it instead of rendering a corrupt table.
		// A cancelled pipeline reports the context error the same way.
		if err := pipe.Close(); err != nil {
			panic(err)
		}
	}
	if c.Obs.Enabled() {
		wall := time.Since(start)
		reg := c.Obs.Registry()
		reg.Histogram("sim.wall_ns").Observe(track, uint64(wall))
		if secs := wall.Seconds(); secs > 0 {
			refs := h.Refs()
			reg.Gauge("sim.refs_per_sec").Set(track, uint64(float64(refs.Total())/secs))
		}
	}
	res := SimResult{
		Machine:      m,
		Instructions: cpu.Instructions,
		Summary:      h.Summarize(),
	}
	cm := machine.CostModel{Machine: m}
	res.Time = cm.Estimate3(res.Instructions, res.Summary.L1Misses,
		res.Summary.L2.Misses, res.Summary.L3.Misses)
	if sched != nil {
		res.Sched = sched.LastRun()
	}
	return res
}

// simJob is one independent simulation inside a table: a result key, a
// progress label, and the run itself.
type simJob struct {
	key  string
	what string
	run  func() SimResult
}

// JobPanicError is the panic value runJobs re-raises on its caller's
// goroutine when a simulation job panics. Without containment a panic in
// a parallel job would kill the process from an unrecoverable goroutine;
// with it, in-flight jobs quiesce first (queued ones are skipped) and the
// caller can recover a single typed value naming the job.
type JobPanicError struct {
	// Key and What identify the job within its table.
	Key  string
	What string
	// Value is the recovered panic value; a thread panic inside a
	// scheduler surfaces here as a *core.ThreadPanicError.
	Value any
	// Stack is the job goroutine's stack, captured at recovery.
	Stack []byte
}

// Error describes the panic and the job it happened in.
func (e *JobPanicError) Error() string {
	return fmt.Sprintf("harness: job %q (%s) panicked: %v", e.Key, e.What, e.Value)
}

// runJobs executes a table's simulations, concurrently when
// Config.Parallel allows, and returns results keyed for rendering. The
// jobs share nothing (each builds its own hierarchy, CPU, and address
// space), so the result map — and every table rendered from it — is
// identical at any parallelism. A job panic quiesces the table (running
// jobs finish, queued ones are skipped) and then re-panics on the calling
// goroutine with a *JobPanicError; a done Config.Context stops new jobs
// from starting AND interrupts running ones mid-simulation (the CPU's
// cancellation panic classifies as a cancel, not a failure), returning
// the results gathered so far.
func (c Config) runJobs(prog Progress, jobs []simJob) map[string]SimResult {
	ctx := c.Context
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(map[string]SimResult, len(jobs))
	if c.Parallel <= 1 {
		for _, j := range jobs {
			if ctx.Err() != nil {
				break
			}
			prog.printf("%s", j.what)
			r, perr := c.runJobContained(j)
			if perr != nil {
				if cancelCause(perr.Value) != nil {
					break
				}
				panic(perr)
			}
			out[j.key] = r
		}
		return out
	}
	var (
		mu     sync.Mutex
		wg     sync.WaitGroup
		sem    = make(chan struct{}, c.Parallel)
		failed atomic.Bool
		first  *JobPanicError
	)
	for _, j := range jobs {
		wg.Add(1)
		go func(j simJob) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if failed.Load() || ctx.Err() != nil {
				return
			}
			prog.printf("%s", j.what)
			r, perr := c.runJobContained(j)
			if perr != nil {
				// A cancellation unwinding as a panic is the context door
				// closing, not a job failure: drop the partial job and let
				// the ctx.Err() gate stop the rest.
				if cancelCause(perr.Value) != nil {
					return
				}
				failed.Store(true)
				mu.Lock()
				if first == nil {
					first = perr
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			out[j.key] = r
			mu.Unlock()
		}(j)
	}
	wg.Wait()
	if first != nil {
		panic(first)
	}
	return out
}

// runJobContained runs one job with its panic recovered into a typed
// error, so a blown-up simulation cannot take down sibling goroutines
// mid-table.
func (c Config) runJobContained(j simJob) (r SimResult, perr *JobPanicError) {
	defer func() {
		if v := recover(); v != nil {
			perr = &JobPanicError{Key: j.key, What: j.what, Value: v, Stack: debug.Stack()}
		}
	}()
	return c.runJob(j), nil
}

// runJob runs one simulation, wrapped — when Config.Obs is attached — in
// a timeline span named after the job and pprof labels, so a profile or
// Perfetto view of a parallel table shows which experiment each lane was
// busy with.
func (c Config) runJob(j simJob) SimResult {
	if !c.Obs.Enabled() {
		return j.run()
	}
	tk := c.Obs.AcquireTrack()
	var r SimResult
	c.Obs.Labeled(tk, "job", func() {
		sp := c.Obs.Timeline().Begin(tk, j.what)
		r = j.run()
		sp.End()
	})
	return r
}

// Progress is an optional sink for per-run progress lines (nil to
// suppress); the CLI points it at stderr for the long sweeps. When
// Config.Parallel is above one, the sink is invoked from multiple
// goroutines and must be safe for concurrent use.
type Progress func(format string, args ...any)

func (p Progress) printf(format string, args ...any) {
	if p != nil {
		p(format, args...)
	}
}
