package harness

import (
	"context"
	"runtime"
	"testing"
	"time"

	"threadsched/internal/sim"
)

func okJob(key string) simJob {
	return simJob{key: key, what: key, run: func() SimResult { return SimResult{} }}
}

func panicJob(key string, v any) simJob {
	return simJob{key: key, what: key, run: func() SimResult { panic(v) }}
}

// recoverJobs runs runJobs and returns the recovered *JobPanicError, if
// any, alongside the results it produced before panicking.
func recoverJobs(c Config, jobs []simJob) (perr *JobPanicError, out map[string]SimResult) {
	defer func() {
		if v := recover(); v != nil {
			perr = v.(*JobPanicError)
		}
	}()
	out = c.runJobs(nil, jobs)
	return
}

// TestRunJobsSerialPanicTyped: a serial job panic surfaces as a
// *JobPanicError naming the job, after the jobs before it completed.
func TestRunJobsSerialPanicTyped(t *testing.T) {
	perr, _ := recoverJobs(Config{}, []simJob{
		okJob("a"),
		panicJob("bad", "kernel blew up"),
		okJob("never"),
	})
	if perr == nil {
		t.Fatal("no JobPanicError recovered")
	}
	if perr.Key != "bad" || perr.Value != "kernel blew up" {
		t.Errorf("JobPanicError = %+v", perr)
	}
	if len(perr.Stack) == 0 {
		t.Error("no stack captured")
	}
	if perr.Error() == "" {
		t.Error("empty Error()")
	}
}

// TestRunJobsParallelPanicQuiesces: with parallel jobs, one panic must
// not crash the process from a worker goroutine; runJobs waits for
// in-flight jobs, skips queued ones, and re-panics typed on the caller.
func TestRunJobsParallelPanicQuiesces(t *testing.T) {
	before := countGoroutines()
	jobs := make([]simJob, 0, 16)
	for i := 0; i < 8; i++ {
		jobs = append(jobs, okJob(string(rune('a'+i))))
	}
	jobs = append(jobs, panicJob("bad", 42))
	for i := 0; i < 7; i++ {
		jobs = append(jobs, okJob(string(rune('p'+i))))
	}
	perr, _ := recoverJobs(Config{Parallel: 4}, jobs)
	if perr == nil {
		t.Fatal("no JobPanicError recovered")
	}
	if perr.Key != "bad" || perr.Value != 42 {
		t.Errorf("JobPanicError = %+v", perr)
	}
	for i := 0; i < 100; i++ {
		if countGoroutines() <= before {
			return
		}
	}
	t.Errorf("goroutines: %d before, %d after — job workers leaked", before, runtime.NumGoroutine())
}

// TestRunJobsContextStopsNewJobs: a done Config.Context prevents queued
// jobs from starting; completed results are returned.
func TestRunJobsContextStopsNewJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	jobs := []simJob{
		{key: "first", what: "first", run: func() SimResult { ran++; cancel(); return SimResult{} }},
		{key: "second", what: "second", run: func() SimResult { ran++; return SimResult{} }},
	}
	out := Config{Context: ctx}.runJobs(nil, jobs)
	if ran != 1 {
		t.Fatalf("%d jobs ran after cancellation, want 1", ran)
	}
	if _, ok := out["first"]; !ok || len(out) != 1 {
		t.Fatalf("results = %v, want only %q", out, "first")
	}
	// Already-cancelled context: nothing runs at any parallelism.
	for _, par := range []int{0, 4} {
		out := Config{Context: ctx, Parallel: par}.runJobs(nil, []simJob{okJob("x")})
		if len(out) != 0 {
			t.Fatalf("Parallel=%d: %d jobs ran under a done context", par, len(out))
		}
	}
}

// TestRunJobsCancelledMidRun is the regression test for the SIGINT
// crash: when Config.Context is cancelled *while a job is running*, the
// cancel-aware CPU unwinds the job with a panic chain ending in
// *sim.CancelledError. runJobs must classify that as the context door
// closing — stop dispatching and return the results gathered so far —
// not re-panic it at the caller (which turned a clean interrupt into a
// process crash). Exercises both the serial and parallel paths.
func TestRunJobsCancelledMidRun(t *testing.T) {
	for _, par := range []int{0, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		jobs := []simJob{
			{key: "ok", what: "ok", run: func() SimResult { return SimResult{} }},
			{key: "cut", what: "cut", run: func() SimResult {
				cancel()
				panic(&sim.CancelledError{Err: ctx.Err()})
			}},
			okJob("after"),
		}
		perr, out := recoverJobs(Config{Context: ctx, Parallel: par}, jobs)
		if perr != nil {
			t.Fatalf("Parallel=%d: cancellation re-panicked: %v", par, perr)
		}
		if _, ok := out["cut"]; ok {
			t.Errorf("Parallel=%d: cancelled job produced a result", par)
		}
		if par == 0 {
			if _, ok := out["ok"]; !ok {
				t.Errorf("Parallel=0: pre-cancel result dropped: %v", out)
			}
			if _, ok := out["after"]; ok {
				t.Errorf("Parallel=0: job after cancellation still ran")
			}
		}
		cancel()
	}
}

func countGoroutines() int {
	runtime.GC()
	time.Sleep(time.Millisecond)
	return runtime.NumGoroutine()
}
