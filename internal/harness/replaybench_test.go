package harness

import "testing"

// ReplayBench carries its own differential check (every sharded replay's
// cache summary must match the serial replay's); running it at a tiny
// geometry exercises that check plus the full stage sweep in a few
// hundred milliseconds.
func TestReplayBenchDifferential(t *testing.T) {
	c := Quick()
	c.MatmulN = 64
	res, err := c.ReplayBench(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refs == 0 {
		t.Fatal("empty replay trace")
	}
	if res.Chunks < 2 {
		t.Fatalf("replay trace has %d chunks; sharding needs at least 2", res.Chunks)
	}
	want := 1 + len(replayWorkers)
	if len(res.Decode) != want || len(res.EndToEnd) != want {
		t.Fatalf("got %d decode + %d end-to-end stages, want %d each",
			len(res.Decode), len(res.EndToEnd), want)
	}
	wantSliced := 1
	for _, w := range replayWorkers {
		if w >= 2 {
			wantSliced++
		}
	}
	if len(res.Sliced) != wantSliced {
		t.Fatalf("got %d sliced stages, want %d", len(res.Sliced), wantSliced)
	}
	for i, s := range res.Sliced {
		if i == 0 {
			continue // serial baseline
		}
		if s.Path != "sliced" || s.Slices < 2 {
			t.Errorf("sliced stage %d = %+v, want path=sliced with >=2 slices", i, s)
		}
	}
	for _, sweep := range [][]ReplayStage{res.Decode, res.EndToEnd, res.Sliced} {
		if sweep[0].Path != "serial" || sweep[0].Workers != 1 {
			t.Errorf("first stage %+v is not the serial baseline", sweep[0])
		}
		for _, s := range sweep {
			if s.WallNS <= 0 || s.RefsPerSec <= 0 || s.SpeedupVsSerial <= 0 {
				t.Errorf("stage %s w=%d has empty measurement: %+v", s.Path, s.Workers, s)
			}
		}
	}
}
