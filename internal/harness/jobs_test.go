package harness

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"threadsched/internal/obs"
)

func jobConfig() Config {
	c := Quick()
	c.MatmulN = 64
	c.SORN = 101
	c.SORIters = 4
	c.PDEN = 65
	c.PDEIters = 2
	c.NBodyN = 500
	c.NBodySteps = 1
	return c
}

// TestRunJobCompletes smoke-tests the spec mapping across kinds and pins
// that a served job's result is identical to the direct runner call — the
// spot-check the daemon's correctness claim rests on.
func TestRunJobCompletes(t *testing.T) {
	c := jobConfig()
	specs := []JobSpec{
		{Kind: JobMatmul, Variant: "interchanged"},
		{Kind: JobMatmul}, // default threaded/r8000
		{Kind: JobPDE, Variant: "threaded", Machine: "r10000"},
		{Kind: JobSOR, Variant: "untiled"},
		{Kind: JobNBody, Variant: "threaded"},
	}
	for _, spec := range specs {
		r, err := c.RunJob(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.What(), err)
		}
		if r.Instructions == 0 || r.Summary.DataRefs == 0 {
			t.Fatalf("%s: empty result %+v", spec.What(), r)
		}
	}
	direct := c.RunMatmul(MatmulThreaded, c.R8000())
	served, err := c.RunJob(context.Background(), JobSpec{Kind: JobMatmul, Variant: "threaded"})
	if err != nil {
		t.Fatal(err)
	}
	if served.Instructions != direct.Instructions || served.Summary != direct.Summary {
		t.Fatalf("served result differs from direct run:\n served %+v\n direct %+v", served.Summary, direct.Summary)
	}
}

// TestRunJobBadSpecs pins the ErrBadJobSpec classification for every
// validation failure a decoded request can carry.
func TestRunJobBadSpecs(t *testing.T) {
	c := jobConfig()
	bad := []JobSpec{
		{Kind: "fft"},
		{Kind: JobMatmul, Variant: "strassen"},
		{Kind: JobMatmul, Machine: "cray"},
		{Kind: JobSOR, Variant: "untiled", Block: 4096},
		{Kind: JobTable},
	}
	for _, spec := range bad {
		if _, err := c.RunJob(context.Background(), spec); !errors.Is(err, ErrBadJobSpec) {
			t.Fatalf("%+v: err = %v, want ErrBadJobSpec", spec, err)
		}
	}
	if _, err := c.RunExperiment(context.Background(), "table99"); !errors.Is(err, ErrBadJobSpec) {
		t.Fatalf("RunExperiment(table99) = %v, want ErrBadJobSpec", err)
	}
}

// TestRunJobPanicContained pins the panic → error conversion: a panic
// inside a served job (injected through the Hook seam) must come back as
// a *JobPanicError, never escape as a panic, and never poison a later
// job on the same Config.
func TestRunJobPanicContained(t *testing.T) {
	c := jobConfig()
	spec := JobSpec{Kind: JobMatmul, Variant: "threaded", Hook: func() { panic("injected") }}
	_, err := c.RunJob(context.Background(), spec)
	var jpe *JobPanicError
	if !errors.As(err, &jpe) {
		t.Fatalf("err = %v, want *JobPanicError", err)
	}
	if jpe.Value != "injected" {
		t.Fatalf("panic value = %v", jpe.Value)
	}
	// The Config (and its Obs, if any) must still serve.
	if _, err := c.RunJob(context.Background(), JobSpec{Kind: JobMatmul, Variant: "threaded"}); err != nil {
		t.Fatalf("job after contained panic: %v", err)
	}
}

// TestRunJobCancelledBeforeStart pins the fast path: an already-done
// context runs nothing.
func TestRunJobCancelledBeforeStart(t *testing.T) {
	c := jobConfig()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RunJob(ctx, JobSpec{Kind: JobMatmul}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunJobCancelLatency is the satellite-2 regression: cancellation
// must interrupt a job mid-run — not merely stop new jobs — within a
// bounded latency, on every mode. Before the CPU/pipeline cancellation
// hooks, this test hangs until the full simulation completes (tens of
// seconds at this geometry).
func TestRunJobCancelLatency(t *testing.T) {
	for _, mode := range []Mode{ModeBatched, ModeSerial, ModePipelined} {
		t.Run(mode.String(), func(t *testing.T) {
			c := Scaled()
			c.MatmulN = 512 // several hundred million references: minutes if not cancelled
			c.Mode = mode
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(30 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err := c.RunJob(ctx, JobSpec{Kind: JobMatmul, Variant: "threaded"})
			elapsed := time.Since(start)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// Worst-case cancel latency is one emission chunk plus one bin
			// of threads; 2s is orders of magnitude of headroom over that,
			// and orders of magnitude under the uncancelled run time.
			if elapsed > 2*time.Second {
				t.Fatalf("cancellation took %v, want < 2s", elapsed)
			}
		})
	}
}

// TestRunJobDeadline pins deadline classification end to end.
func TestRunJobDeadline(t *testing.T) {
	c := Scaled()
	c.MatmulN = 512
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.RunJob(ctx, JobSpec{Kind: JobMatmul, Variant: "threaded"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestPipelinedJobFailureLeaksNoGoroutine is the satellite-1 regression
// for the daemon's steady state: a pipelined job that dies mid-run (here
// via cancellation; a thread panic takes the same unwind) used to leak
// its pipeline consumer goroutine, parked on the ring forever — one
// goroutine plus chunk buffers per failed job, unbounded in a server.
// simulate's deferred CloseContext now releases it.
func TestPipelinedJobFailureLeaksNoGoroutine(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2)) // force the concurrent ring
	c := Scaled()
	c.MatmulN = 256
	c.Mode = ModePipelined
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(5 * time.Millisecond)
			cancel()
		}()
		if _, err := c.RunJob(ctx, JobSpec{Kind: JobMatmul, Variant: "threaded"}); !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: err = %v, want context.Canceled", i, err)
		}
		cancel()
	}
	// Give released consumers a moment to exit before counting.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before %d, after %d — pipeline consumers leaked", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestConfigReuseSequentialIdentical is the satellite-1 audit pin: one
// Config value reused across sequential jobs — including after a
// contained panic and a cancellation — produces results identical to a
// fresh Config every time. Any state carried over between jobs
// (memoized tours, pooled workers, obs tracks, lastRun) would show here.
func TestConfigReuseSequentialIdentical(t *testing.T) {
	c := jobConfig()
	spec := JobSpec{Kind: JobSOR, Variant: "threaded"}
	fresh, err := jobConfig().RunJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r, err := c.RunJob(context.Background(), spec)
		if err != nil {
			t.Fatalf("reuse %d: %v", i, err)
		}
		if r.Instructions != fresh.Instructions || r.Summary != fresh.Summary || r.Sched != fresh.Sched {
			t.Fatalf("reuse %d: result drifted from fresh Config", i)
		}
		// Interleave a failure and a cancellation between good runs.
		if _, err := c.RunJob(context.Background(), JobSpec{Kind: JobSOR, Variant: "threaded", Hook: func() { panic("boom") }}); err == nil {
			t.Fatal("hooked job did not fail")
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := c.RunJob(ctx, spec); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled job: %v", err)
		}
	}
}

// TestConfigReuseConcurrentRace drives one shared Config (with a shared
// Obs) from many goroutines at once — the daemon's worker-pool pattern,
// which no batch path exercises — under -race, asserting every result
// matches the fresh-Config baseline.
func TestConfigReuseConcurrentRace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	c := jobConfig()
	c.Obs = obs.New(4)
	specs := []JobSpec{
		{Kind: JobMatmul, Variant: "threaded"},
		{Kind: JobSOR, Variant: "threaded"},
		{Kind: JobPDE, Variant: "threaded"},
	}
	want := make([]SimResult, len(specs))
	for i, s := range specs {
		r, err := jobConfig().RunJob(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := specs[g%len(specs)]
			r, err := c.RunJob(context.Background(), s)
			if err != nil {
				errs <- err
				return
			}
			w := want[g%len(specs)]
			if r.Instructions != w.Instructions || r.Summary != w.Summary {
				errs <- errors.New(s.What() + ": concurrent result differs from fresh baseline")
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
