package harness

import (
	"strings"
	"testing"
)

// eqConfig is a reduced geometry for the golden equivalence suite: large
// enough that every app schedules real thread batches and takes all three
// miss classes, small enough that the full serial/batch/pipeline/parallel
// matrix — which this suite runs many times, including under -race —
// stays in test-suite time.
func eqConfig() Config {
	return Config{
		Scale:         64,
		NBodyScale:    16,
		MatmulN:       64,
		PDEN:          129,
		PDEIters:      3,
		SORN:          125,
		SORIters:      6,
		NBodyN:        1000,
		NBodySteps:    1,
		Table1Threads: 1 << 10,
	}
}

// eqModes is the reference-stream matrix every equivalence test sweeps:
// the serial per-reference path is the golden baseline.
var eqModes = []Mode{ModeSerial, ModeBatched, ModePipelined}

// requireSameResult asserts bit-identical simulation output: reference
// tallies, per-level stats including the L2 miss classification, the
// modelled time, and the scheduler occupancy.
func requireSameResult(t *testing.T, label string, want, got SimResult) {
	t.Helper()
	if got.Instructions != want.Instructions {
		t.Errorf("%s: instructions %d, want %d", label, got.Instructions, want.Instructions)
	}
	if got.Summary != want.Summary {
		t.Errorf("%s: summary diverges\n got %+v\nwant %+v", label, got.Summary, want.Summary)
	}
	if got.Time != want.Time {
		t.Errorf("%s: modelled time %v, want %v", label, got.Time, want.Time)
	}
	if got.Sched != want.Sched {
		t.Errorf("%s: sched stats %+v, want %+v", label, got.Sched, want.Sched)
	}
}

// eqApps is the four-workload set: each app's threaded variant, the
// hardest case (scheduler plus kernel share the reference stream).
func eqApps() []struct {
	name string
	run  func(Config) SimResult
} {
	return []struct {
		name string
		run  func(Config) SimResult
	}{
		{"matmul", func(c Config) SimResult { return c.RunMatmul(MatmulThreaded, c.R8000()) }},
		{"sor", func(c Config) SimResult { return c.RunSOR(SORThreaded, c.R8000()) }},
		{"pde", func(c Config) SimResult { return c.RunPDE(PDEThreaded, c.R8000()) }},
		{"nbody", func(c Config) SimResult { return c.RunNBody(NBodyThreaded, c.NBodyR8000(), 1) }},
	}
}

// TestGoldenEquivalenceStats pins the exactness contract at the
// simulation level: for each app, the batched and pipelined paths must
// reproduce the serial path's results bit for bit.
func TestGoldenEquivalenceStats(t *testing.T) {
	for _, app := range eqApps() {
		app := app
		t.Run(app.name, func(t *testing.T) {
			t.Parallel()
			base := eqConfig()
			base.Mode = ModeSerial
			want := app.run(base)
			if want.Summary.L2.Misses == 0 || want.Summary.L2.Compulsory == 0 {
				t.Fatalf("degenerate golden baseline (no classified L2 misses): %+v", want.Summary.L2)
			}
			for _, mode := range eqModes[1:] {
				c := eqConfig()
				c.Mode = mode
				requireSameResult(t, mode.String(), want, app.run(c))
			}
		})
	}
}

// TestGoldenEquivalenceParallelJobs pins the experiment pool: the same
// job set through runJobs at Parallel 1 and 4 must produce identical
// result maps (each job owns its hierarchy; only the sink is shared).
func TestGoldenEquivalenceParallelJobs(t *testing.T) {
	jobs := func(c Config) []simJob {
		var js []simJob
		for _, app := range eqApps() {
			app := app
			js = append(js, simJob{app.name, "eq: " + app.name,
				func() SimResult { return app.run(c) }})
		}
		return js
	}
	serial := eqConfig()
	serial.Mode = ModeSerial
	want := serial.runJobs(nil, jobs(serial))
	par := eqConfig()
	par.Mode = ModeBatched
	par.Parallel = 4
	got := par.runJobs(nil, jobs(par))
	if len(got) != len(want) {
		t.Fatalf("parallel pool returned %d results, want %d", len(got), len(want))
	}
	for key, w := range want {
		requireSameResult(t, "parallel/"+key, w, got[key])
	}
}

// TestGoldenEquivalenceTables renders the four apps' miss tables —
// Table 3 (matmul), 5 (PDE), 7 (SOR), and 9 (N-body) — through every
// mode and the parallel pool, demanding byte-identical text against the
// serial render. This is the end-to-end contract: whatever path the
// references take, the published numbers cannot move.
func TestGoldenEquivalenceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every miss-table simulation four times")
	}
	builders := []struct {
		name  string
		build func(Config) string
	}{
		{"table3", func(c Config) string { return c.Table3(nil).String() }},
		{"table5", func(c Config) string { return c.Table5(nil).String() }},
		{"table7", func(c Config) string { return c.Table7(nil).String() }},
		{"table9", func(c Config) string { return c.Table9(nil).String() }},
	}
	variants := []struct {
		name string
		cfg  Config
	}{
		{"batch", func() Config { c := eqConfig(); c.Mode = ModeBatched; return c }()},
		{"pipeline", func() Config { c := eqConfig(); c.Mode = ModePipelined; return c }()},
		{"parallel4", func() Config {
			c := eqConfig()
			c.Mode = ModeBatched
			c.Parallel = 4
			return c
		}()},
	}
	for _, b := range builders {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			serial := eqConfig()
			serial.Mode = ModeSerial
			want := b.build(serial)
			if !strings.Contains(want, "L2") {
				t.Fatalf("degenerate golden table render:\n%s", want)
			}
			for _, v := range variants {
				if got := b.build(v.cfg); got != want {
					t.Errorf("%s render diverges from serial:\n--- serial ---\n%s\n--- %s ---\n%s",
						v.name, want, v.name, got)
				}
			}
		})
	}
}
