package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"threadsched/internal/core"
	"threadsched/internal/machine"
	"threadsched/internal/sim"
	"threadsched/internal/tables"
	"threadsched/internal/trace"
)

// The serving surface: a JobSpec names one simulation (or one whole
// experiment) in plain strings, so a JSON request can be mapped onto the
// harness without the server knowing about variant enums, and
// Config.RunJob runs it with per-job containment — a panic inside the
// workload, the scheduler, or the pipeline comes back as an error, and a
// cancelled context comes back as that context's error, never as a
// panic. This is what cmd/tracesimd multiplexes tenants onto.

// ErrBadJobSpec is wrapped by every spec-validation failure RunJob
// reports, so servers can map it to a 400 rather than a 500.
var ErrBadJobSpec = errors.New("harness: bad job spec")

// JobKind names a served workload family.
type JobKind string

// Served job kinds: the four paper kernels plus whole experiments.
const (
	JobMatmul JobKind = "matmul"
	JobPDE    JobKind = "pde"
	JobSOR    JobKind = "sor"
	JobNBody  JobKind = "nbody"
	// JobTable runs a whole experiment (Variant "table1".."table9" or
	// "figure4") and returns its rendered table via RunExperiment.
	JobTable JobKind = "table"
)

// JobSpec selects one simulation for RunJob. The zero value of each
// field means "the default": machine r8000, the kernel's threaded
// variant, Config-derived sizes.
type JobSpec struct {
	// Kind is the workload family (JobMatmul, JobPDE, JobSOR, JobNBody).
	Kind JobKind
	// Variant is the kind-specific variant name, e.g. "interchanged",
	// "tiled-transposed" or "threaded" for matmul; "" selects "threaded".
	Variant string
	// Machine is "r8000" (default), "r10000", or "modern"; it is scaled
	// by the Config exactly as the table experiments scale it.
	Machine string
	// Steps overrides Config.NBodySteps for N-body jobs (0 = default).
	Steps int
	// Block overrides the scheduler block size for threaded variants
	// (0 = the variant's paper default).
	Block uint64
	// Hook, when non-nil, runs inside the job's containment just before
	// the simulation — the seam the server's fault-injection tests use to
	// make a served job panic without teaching any kernel to fail.
	Hook func()
}

// What renders a progress/diagnostic label for the spec.
func (s JobSpec) What() string {
	v := s.Variant
	if v == "" {
		v = "threaded"
	}
	m := s.Machine
	if m == "" {
		m = "r8000"
	}
	return fmt.Sprintf("%s/%s/%s", s.Kind, v, m)
}

// RunJob runs one simulation under full containment, bounded by ctx (nil
// falls back to Config.Context, then Background). The error is:
//
//   - nil: the job completed and the SimResult is valid;
//   - wrapping ErrBadJobSpec: the spec names no runnable simulation;
//   - ctx.Err(): the job was cancelled or timed out, possibly mid-run
//     (the CPU's cancellation panic and the pipeline's producer-side
//     cancellation both classify here, however deep they surfaced);
//   - a *JobPanicError: the job blew up for a non-cancellation reason —
//     the contained panic, with stack, for the server to report to the
//     one tenant that submitted it.
//
// The pool keeps serving either way: RunJob never panics.
func (c Config) RunJob(ctx context.Context, spec JobSpec) (SimResult, error) {
	if ctx != nil {
		c.Context = ctx
	} else {
		ctx = c.Context
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return SimResult{}, err
		}
	}
	run, err := c.jobRunner(spec)
	if err != nil {
		return SimResult{}, err
	}
	what := spec.What()
	if hook := spec.Hook; hook != nil {
		inner := run
		run = func() SimResult {
			hook()
			return inner()
		}
	}
	r, perr := c.runJobContained(simJob{key: what, what: what, run: run})
	if perr != nil {
		if cerr := cancelCause(perr.Value); cerr != nil {
			return SimResult{}, cerr
		}
		return SimResult{}, perr
	}
	return r, nil
}

// RunExperiment runs one whole experiment ("table1".."table9",
// "figure4") under the same containment and classification as RunJob,
// returning the rendered table text.
func (c Config) RunExperiment(ctx context.Context, name string) (string, error) {
	if ctx != nil {
		c.Context = ctx
	} else {
		ctx = c.Context
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return "", err
		}
	}
	fn, err := c.experimentRunner(name)
	if err != nil {
		return "", err
	}
	var text string
	_, perr := c.runJobContained(simJob{key: name, what: name, run: func() SimResult {
		text = fn().String()
		return SimResult{}
	}})
	if perr != nil {
		if cerr := cancelCause(perr.Value); cerr != nil {
			return "", cerr
		}
		return "", perr
	}
	return text, nil
}

// experimentRunner maps an experiment name onto its table function.
func (c Config) experimentRunner(name string) (func() *tables.Table, error) {
	switch strings.ToLower(name) {
	case "table1":
		return c.Table1, nil
	case "table2":
		return func() *tables.Table { return c.Table2(nil) }, nil
	case "table3":
		return func() *tables.Table { return c.Table3(nil) }, nil
	case "table4":
		return func() *tables.Table { return c.Table4(nil) }, nil
	case "table5":
		return func() *tables.Table { return c.Table5(nil) }, nil
	case "table6":
		return func() *tables.Table { return c.Table6(nil) }, nil
	case "table7":
		return func() *tables.Table { return c.Table7(nil) }, nil
	case "table8":
		return func() *tables.Table { return c.Table8(nil) }, nil
	case "table9":
		return func() *tables.Table { return c.Table9(nil) }, nil
	case "figure4":
		return func() *tables.Table { return c.Figure4(nil) }, nil
	default:
		return nil, fmt.Errorf("%w: unknown experiment %q", ErrBadJobSpec, name)
	}
}

// ValidateJob reports whether spec names a runnable job, without running
// it — the admission-time check servers use to reject a bad spec with a
// 400 instead of burning a pool slot to discover it. For JobTable specs
// the Variant is the experiment name.
func (c Config) ValidateJob(spec JobSpec) error {
	if spec.Kind == JobTable {
		if spec.Block > 0 || spec.Steps != 0 {
			return fmt.Errorf("%w: block/steps do not apply to experiment jobs", ErrBadJobSpec)
		}
		_, err := c.experimentRunner(spec.Variant)
		return err
	}
	_, err := c.jobRunner(spec)
	return err
}

// jobRunner maps a spec onto the table runners, validating every field.
func (c Config) jobRunner(spec JobSpec) (func() SimResult, error) {
	m, err := c.jobMachine(spec)
	if err != nil {
		return nil, err
	}
	variant := strings.ToLower(spec.Variant)
	if variant == "" {
		variant = "threaded"
	}
	if spec.Block > 0 && variant != "threaded" {
		return nil, fmt.Errorf("%w: block override needs the threaded variant, got %q", ErrBadJobSpec, spec.Variant)
	}
	switch spec.Kind {
	case JobMatmul:
		if spec.Block > 0 {
			return func() SimResult { return c.RunMatmulThreadedBlock(m, spec.Block) }, nil
		}
		v, ok := map[string]MatmulVariant{
			"interchanged":       MatmulInterchanged,
			"transposed":         MatmulTransposed,
			"tiled-interchanged": MatmulTiledInterchanged,
			"tiled-transposed":   MatmulTiledTransposed,
			"threaded":           MatmulThreaded,
		}[variant]
		if !ok {
			return nil, fmt.Errorf("%w: unknown matmul variant %q", ErrBadJobSpec, spec.Variant)
		}
		return func() SimResult { return c.RunMatmul(v, m) }, nil
	case JobPDE:
		if spec.Block > 0 {
			return func() SimResult { return c.RunPDEThreadedBlock(m, spec.Block) }, nil
		}
		v, ok := map[string]PDEVariant{
			"regular":         PDERegular,
			"cache-conscious": PDECacheConscious,
			"threaded":        PDEThreaded,
		}[variant]
		if !ok {
			return nil, fmt.Errorf("%w: unknown pde variant %q", ErrBadJobSpec, spec.Variant)
		}
		return func() SimResult { return c.RunPDE(v, m) }, nil
	case JobSOR:
		if spec.Block > 0 {
			return func() SimResult { return c.RunSORThreadedBlock(m, spec.Block) }, nil
		}
		v, ok := map[string]SORVariant{
			"untiled":    SORUntiled,
			"hand-tiled": SORHandTiled,
			"threaded":   SORThreaded,
		}[variant]
		if !ok {
			return nil, fmt.Errorf("%w: unknown sor variant %q", ErrBadJobSpec, spec.Variant)
		}
		return func() SimResult { return c.RunSOR(v, m) }, nil
	case JobNBody:
		steps := spec.Steps
		if steps <= 0 {
			steps = c.NBodySteps
		}
		if spec.Block > 0 {
			return func() SimResult { return c.RunNBodyThreadedBlock(m, spec.Block) }, nil
		}
		v, ok := map[string]NBodyVariant{
			"unthreaded": NBodyUnthreaded,
			"threaded":   NBodyThreaded,
		}[variant]
		if !ok {
			return nil, fmt.Errorf("%w: unknown nbody variant %q", ErrBadJobSpec, spec.Variant)
		}
		return func() SimResult { return c.RunNBody(v, m, steps) }, nil
	case JobTable:
		return nil, fmt.Errorf("%w: experiment jobs go through RunExperiment", ErrBadJobSpec)
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadJobSpec, spec.Kind)
	}
}

// jobMachine resolves the spec's machine model at the Config's scale;
// N-body jobs use the N-body scale exactly as the tables do.
func (c Config) jobMachine(spec JobSpec) (machine.Machine, error) {
	scale := c.Scale
	if spec.Kind == JobNBody {
		scale = c.NBodyScale
	}
	switch strings.ToLower(spec.Machine) {
	case "", "r8000":
		return machine.R8000().Scaled(scale), nil
	case "r10000":
		return machine.R10000().Scaled(scale), nil
	case "modern":
		return machine.Modern().Scaled(scale), nil
	default:
		return machine.Machine{}, fmt.Errorf("%w: unknown machine %q", ErrBadJobSpec, spec.Machine)
	}
}

// cancelCause walks a contained panic chain looking for a cancellation:
// a *sim.CancelledError however deeply wrapped (inside thread, consumer,
// or job panics), or any error chain containing the context sentinels.
// It returns the matched context error, or nil for a genuine failure.
func cancelCause(v any) error {
	for depth := 0; depth < 32; depth++ {
		switch e := v.(type) {
		case *JobPanicError:
			v = e.Value
		case *core.ThreadPanicError:
			v = e.Value
		case *trace.ConsumerPanicError:
			v = e.Value
		case *trace.SliceConsumerPanicError:
			v = e.Value
		case *sim.CancelledError:
			return e.Err
		case error:
			if errors.Is(e, context.Canceled) {
				return context.Canceled
			}
			if errors.Is(e, context.DeadlineExceeded) {
				return context.DeadlineExceeded
			}
			return nil
		default:
			return nil
		}
	}
	return nil
}
