package nbody

import (
	"fmt"
	"testing"
)

const (
	benchBodies = 4096
	benchL      = 2 << 20
)

func reportBodies(b *testing.B) {
	b.ReportMetric(float64(benchBodies)*float64(b.N)/b.Elapsed().Seconds(), "bodies/s")
}

// BenchmarkStepRef is the pre-optimization step: recursive build and
// traversal, fresh tree allocation every step.
func BenchmarkStepRef(b *testing.B) {
	s := NewSystem(benchBodies, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StepUnthreadedRef(s, nil)
	}
	reportBodies(b)
}

// BenchmarkStep is the optimized step: iterative build into a pooled
// tree, flattened traversal — allocation-free once the pool is warm.
func BenchmarkStep(b *testing.B) {
	s := NewSystem(benchBodies, 42)
	t := &Tree{}
	StepUnthreadedReuse(s, t, nil) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StepUnthreadedReuse(s, t, nil)
	}
	reportBodies(b)
}

// BenchmarkTreeBuild isolates the tree construction: recursive fresh
// build vs iterative pooled rebuild.
func BenchmarkTreeBuild(b *testing.B) {
	s := NewSystem(benchBodies, 42)
	b.Run("recursive-fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			BuildRef(s, nil)
		}
	})
	b.Run("iterative-pooled", func(b *testing.B) {
		t := &Tree{}
		t.Rebuild(s, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Rebuild(s, nil)
		}
	})
}

// BenchmarkStepThreaded measures the threaded step serial and through the
// parallel scheduler at 1/2/4 workers.
func BenchmarkStepThreaded(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		s := NewSystem(benchBodies, 42)
		sched := ThreadedScheduler(benchL)
		t := &Tree{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			StepThreadedReuse(s, t, sched, nil)
		}
		reportBodies(b)
	})
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallel-w%d", w), func(b *testing.B) {
			s := NewSystem(benchBodies, 42)
			sched := ParallelScheduler(benchL, w)
			defer sched.Close()
			t := &Tree{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				StepThreadedReuse(s, t, sched, nil)
			}
			reportBodies(b)
		})
	}
}
