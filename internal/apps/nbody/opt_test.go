package nbody

import "testing"

// TestRebuildMatchesBuildRef requires the iterative pooled build to
// produce node-for-node the same tree as the recursive reference build,
// including after pool reuse across steps.
func TestRebuildMatchesBuildRef(t *testing.T) {
	s := NewSystem(700, 9)
	pooled := &Tree{}
	for step := 0; step < 3; step++ {
		ref := BuildRef(s, nil)
		pooled.Rebuild(s, nil)
		if len(ref.nodes) != len(pooled.nodes) {
			t.Fatalf("step %d: %d nodes, ref %d", step, len(pooled.nodes), len(ref.nodes))
		}
		if ref.root != pooled.root || ref.Min != pooled.Min || ref.Edge != pooled.Edge {
			t.Fatalf("step %d: tree header diverged", step)
		}
		for k := range ref.nodes {
			if ref.nodes[k] != pooled.nodes[k] {
				t.Fatalf("step %d: node %d = %+v, ref %+v",
					step, k, pooled.nodes[k], ref.nodes[k])
			}
		}
		StepUnthreadedReuse(s, pooled, nil) // advance so reuse is exercised
	}
}

// TestAccelMatchesRef requires the flattened traversal to visit cells in
// the recursive order, giving bit-identical accelerations.
func TestAccelMatchesRef(t *testing.T) {
	s := NewSystem(700, 9)
	tree := Build(s, nil)
	for i := range s.Bodies {
		ref := tree.AccelRef(s, s.Bodies[i].Pos, nil)
		got := tree.Accel(s, s.Bodies[i].Pos, nil)
		if ref != got {
			t.Fatalf("body %d: accel %v, ref %v", i, got, ref)
		}
	}
}

// TestAccelMatchesRefDeepTree forces the coincident-body overflow chain
// (depth > maxDepth) and checks the flattened traversal still matches.
func TestAccelMatchesRefDeepTree(t *testing.T) {
	s := NewSystem(64, 3)
	for i := 1; i < 8; i++ {
		s.Bodies[i].Pos = s.Bodies[0].Pos // coincident cluster
	}
	tree := Build(s, nil)
	for i := range s.Bodies {
		ref := tree.AccelRef(s, s.Bodies[i].Pos, nil)
		got := tree.Accel(s, s.Bodies[i].Pos, nil)
		if ref != got {
			t.Fatalf("body %d: accel %v, ref %v", i, got, ref)
		}
	}
}

// TestStepMatchesRef requires the optimized full step (pooled build +
// flattened traversal) to reproduce the reference step bit-for-bit.
func TestStepMatchesRef(t *testing.T) {
	a := NewSystem(400, 21)
	b := a.Clone()
	tree := &Tree{}
	for step := 0; step < 3; step++ {
		StepUnthreadedRef(a, nil)
		StepUnthreadedReuse(b, tree, nil)
	}
	for i := range a.Bodies {
		if a.Bodies[i] != b.Bodies[i] {
			t.Fatalf("body %d diverged:\n%+v\n%+v", i, a.Bodies[i], b.Bodies[i])
		}
	}
}

// TestStepThreadedParallelMatchesSerial drives the threaded step through
// the parallel fork path and requires bit-identical trajectories and
// identical bin statistics.
func TestStepThreadedParallelMatchesSerial(t *testing.T) {
	for _, w := range []int{1, 2, 4} {
		a := NewSystem(400, 21)
		b := a.Clone()
		ss := ThreadedScheduler(1 << 16)
		ps := ParallelScheduler(1<<16, w)
		ta, tb := &Tree{}, &Tree{}
		for step := 0; step < 3; step++ {
			StepThreadedReuse(a, ta, ss, nil)
			StepThreadedReuse(b, tb, ps, nil)
			sa, sb := ss.LastRun(), ps.LastRun()
			if sa.Threads != sb.Threads || sa.Bins != sb.Bins {
				t.Fatalf("w=%d step %d: stats %+v, serial %+v", w, step, sb, sa)
			}
		}
		ps.Close()
		for i := range a.Bodies {
			if a.Bodies[i] != b.Bodies[i] {
				t.Fatalf("w=%d: body %d diverged:\n%+v\n%+v",
					w, i, a.Bodies[i], b.Bodies[i])
			}
		}
	}
}

// TestRebuildAllocationFree guards the pooled build: after one warm-up
// build the rebuild must not allocate.
func TestRebuildAllocationFree(t *testing.T) {
	s := NewSystem(1500, 5)
	tree := &Tree{}
	tree.Rebuild(s, nil)
	allocs := testing.AllocsPerRun(5, func() {
		tree.Rebuild(s, nil)
	})
	if allocs != 0 {
		t.Fatalf("Rebuild allocated %v objects/run after warm-up", allocs)
	}
}
